// Distributed control (§6): export the controller's file system over the
// distributed-FS protocol, mount it from "another machine", and run a
// remote application that computes routes against the mounted topology —
// the paper's NFS proof of concept. Also demonstrates WheelFS-style
// per-subtree consistency via xattrs and state migration with cp/mv
// semantics (§7.2).
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"yanc"
	"yanc/internal/dfs"
	"yanc/internal/yancfs"
)

func main() {
	// The "master server": a controller with a known topology.
	ctrl, err := yanc.NewController()
	if err != nil {
		log.Fatal(err)
	}
	defer ctrl.Close()
	p := ctrl.Root()
	// A 4-switch ring, recorded the yanc way: peer symlinks.
	for i := 1; i <= 4; i++ {
		if err := p.Mkdir(fmt.Sprintf("/switches/sw%d", i), 0o755); err != nil {
			log.Fatal(err)
		}
		for port := 2; port <= 3; port++ {
			if err := p.MkdirAll(fmt.Sprintf("/switches/sw%d/ports/%d", i, port), 0o755); err != nil {
				log.Fatal(err)
			}
		}
	}
	for i := 1; i <= 4; i++ {
		next := i%4 + 1
		a := fmt.Sprintf("/switches/sw%d/ports/3", i)
		b := fmt.Sprintf("/switches/sw%d/ports/2", next)
		if err := yancfs.SetPeer(p, a, b); err != nil {
			log.Fatal(err)
		}
		if err := yancfs.SetPeer(p, b, a); err != nil {
			log.Fatal(err)
		}
	}

	addr, srv, err := ctrl.ExportDFS("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("master exports its file system on %s\n", addr)

	// The "worker machine" mounts it with eventual consistency for bulk
	// writes and computes routes from the mounted topology.
	worker, err := yanc.MountDFS(addr, yanc.Root, dfs.Eventual)
	if err != nil {
		log.Fatal(err)
	}
	defer worker.Close() //yancvet:allow errdrop process is exiting

	entries, err := worker.ReadDir("/switches")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worker sees %d switches through the mount\n", len(entries))
	// Walk peer symlinks remotely — the topology representation *is* the
	// directory structure, so it distributes for free.
	links := 0
	for _, sw := range entries {
		ports, err := worker.ReadDir("/switches/" + sw.Name + "/ports")
		if err != nil {
			continue
		}
		for _, port := range ports {
			if tgt, err := worker.Readlink("/switches/" + sw.Name + "/ports/" + port.Name + "/peer"); err == nil {
				_ = tgt
				links++
			}
		}
	}
	fmt.Printf("worker read %d peer links remotely\n", links)

	// The worker writes routing results back; eventual mode batches them.
	start := time.Now()
	for i := 0; i < 200; i++ {
		if err := worker.WriteString(fmt.Sprintf("/hosts/route-%03d", i),
			fmt.Sprintf("sw1,sw%d", 1+i%4)); err != nil {
			log.Fatal(err)
		}
	}
	queued := time.Since(start)
	if err := worker.Flush(); err != nil {
		log.Fatal(err)
	}
	flushed := time.Since(start)
	fmt.Printf("200 eventual writes queued in %v, durable after flush in %v\n", queued, flushed)

	// Critical state can demand strict consistency per subtree (§6).
	if err := worker.Mkdir("/switches/sw1/flows/critical", 0o755); err != nil {
		log.Fatal(err)
	}
	if err := worker.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := worker.SetConsistency("/switches/sw1/flows", dfs.Strict); err != nil {
		log.Fatal(err)
	}
	if err := worker.WriteString("/switches/sw1/flows/critical/priority", "100\n"); err != nil {
		log.Fatal(err)
	}
	// Visible on the master immediately, no flush needed.
	if s, _ := p.ReadString("/switches/sw1/flows/critical/priority"); s != "100" {
		log.Fatal("strict write lagged")
	}
	fmt.Println("strict subtree write visible on master immediately (xattr-selected consistency)")

	// §7.2: middlebox state moves with cp/mv, not a custom protocol.
	if err := p.MkdirAll("/hosts/mbox-a/state", 0o755); err != nil {
		log.Fatal(err)
	}
	if err := p.WriteString("/hosts/mbox-a/state/conntrack", "flow 10.0.0.1:1234 -> 10.0.0.2:80 ESTABLISHED\n"); err != nil {
		log.Fatal(err)
	}
	var out strings.Builder
	sh := ctrl.Shell(&out)
	if err := sh.RunScript(`
mkdir -p /hosts/mbox-b
cp -r /hosts/mbox-a/state /hosts/mbox-b/state
rm -r /hosts/mbox-a/state
cat /hosts/mbox-b/state/conntrack
`); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("middlebox state migrated with cp/mv: %s", out.String())
}
