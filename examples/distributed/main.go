// Distributed control (§6): export the controller's file system over the
// distributed-FS protocol, mount it from "another machine", and run a
// remote application that computes routes against the mounted topology —
// the paper's NFS proof of concept. Also demonstrates WheelFS-style
// per-subtree consistency via xattrs and state migration with cp/mv
// semantics (§7.2).
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"yanc"
	"yanc/internal/dfs"
	"yanc/internal/yancfs"
)

func main() {
	// The "master server": a controller with a known topology.
	ctrl, err := yanc.NewController()
	if err != nil {
		log.Fatal(err)
	}
	defer ctrl.Close()
	p := ctrl.Root()
	// A 4-switch ring, recorded the yanc way: peer symlinks.
	for i := 1; i <= 4; i++ {
		if err := p.Mkdir(fmt.Sprintf("/switches/sw%d", i), 0o755); err != nil {
			log.Fatal(err)
		}
		for port := 2; port <= 3; port++ {
			if err := p.MkdirAll(fmt.Sprintf("/switches/sw%d/ports/%d", i, port), 0o755); err != nil {
				log.Fatal(err)
			}
		}
	}
	for i := 1; i <= 4; i++ {
		next := i%4 + 1
		a := fmt.Sprintf("/switches/sw%d/ports/3", i)
		b := fmt.Sprintf("/switches/sw%d/ports/2", next)
		if err := yancfs.SetPeer(p, a, b); err != nil {
			log.Fatal(err)
		}
		if err := yancfs.SetPeer(p, b, a); err != nil {
			log.Fatal(err)
		}
	}

	addr, srv, err := ctrl.ExportDFS("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("master exports its file system on %s\n", addr)

	// The "worker machine" mounts it with eventual consistency for bulk
	// writes and computes routes from the mounted topology.
	worker, err := yanc.MountDFS(addr, yanc.Root, dfs.Eventual)
	if err != nil {
		log.Fatal(err)
	}
	defer worker.Close() //yancvet:allow errdrop process is exiting

	entries, err := worker.ReadDir("/switches")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worker sees %d switches through the mount\n", len(entries))
	// Walk peer symlinks remotely — the topology representation *is* the
	// directory structure, so it distributes for free.
	links := 0
	for _, sw := range entries {
		ports, err := worker.ReadDir("/switches/" + sw.Name + "/ports")
		if err != nil {
			continue
		}
		for _, port := range ports {
			if tgt, err := worker.Readlink("/switches/" + sw.Name + "/ports/" + port.Name + "/peer"); err == nil {
				_ = tgt
				links++
			}
		}
	}
	fmt.Printf("worker read %d peer links remotely\n", links)

	// The worker writes routing results back; eventual mode batches them.
	start := time.Now()
	for i := 0; i < 200; i++ {
		if err := worker.WriteString(fmt.Sprintf("/hosts/route-%03d", i),
			fmt.Sprintf("sw1,sw%d", 1+i%4)); err != nil {
			log.Fatal(err)
		}
	}
	queued := time.Since(start)
	if err := worker.Flush(); err != nil {
		log.Fatal(err)
	}
	flushed := time.Since(start)
	fmt.Printf("200 eventual writes queued in %v, durable after flush in %v\n", queued, flushed)

	// Critical state can demand strict consistency per subtree (§6).
	if err := worker.Mkdir("/switches/sw1/flows/critical", 0o755); err != nil {
		log.Fatal(err)
	}
	if err := worker.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := worker.SetConsistency("/switches/sw1/flows", dfs.Strict); err != nil {
		log.Fatal(err)
	}
	if err := worker.WriteString("/switches/sw1/flows/critical/priority", "100\n"); err != nil {
		log.Fatal(err)
	}
	// Visible on the master immediately, no flush needed.
	if s, _ := p.ReadString("/switches/sw1/flows/critical/priority"); s != "100" {
		log.Fatal("strict write lagged")
	}
	fmt.Println("strict subtree write visible on master immediately (xattr-selected consistency)")

	// §7.2: middlebox state moves with cp/mv, not a custom protocol.
	if err := p.MkdirAll("/hosts/mbox-a/state", 0o755); err != nil {
		log.Fatal(err)
	}
	if err := p.WriteString("/hosts/mbox-a/state/conntrack", "flow 10.0.0.1:1234 -> 10.0.0.2:80 ESTABLISHED\n"); err != nil {
		log.Fatal(err)
	}
	var out strings.Builder
	sh := ctrl.Shell(&out)
	if err := sh.RunScript(`
mkdir -p /hosts/mbox-b
cp -r /hosts/mbox-a/state /hosts/mbox-b/state
rm -r /hosts/mbox-a/state
cat /hosts/mbox-b/state/conntrack
`); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("middlebox state migrated with cp/mv: %s", out.String())

	// Replicated control plane: three controllers form a dfs replica
	// group with a lease-elected leader; a strict mount follows the
	// leader across a mid-push failover and every acknowledged flow is
	// applied exactly once.
	addrs := make([]string, 3)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close() // reserve the address, the replica re-listens on it
	}
	reps := make([]*dfs.Replica, 3)
	ctrls := make([]*yanc.Controller, 3)
	for i := range reps {
		rc, err := yanc.NewController()
		if err != nil {
			log.Fatal(err)
		}
		defer rc.Close()
		_, rep, err := rc.ExportDFSReplica(yanc.ReplicaOptions{ID: i, Addrs: addrs})
		if err != nil {
			log.Fatal(err)
		}
		defer rep.Close()
		ctrls[i], reps[i] = rc, rep
	}
	leader := func() int {
		for {
			for i, r := range reps {
				if r.IsLeader() {
					return i
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	first := leader()
	fmt.Printf("replica group up, member %d holds the leader lease\n", first)

	ha, err := yanc.MountDFSReplicas(addrs, yanc.Root, dfs.Strict,
		yanc.DFSOptions{CallTimeout: 2 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer ha.Close() //yancvet:allow errdrop process is exiting
	if err := ha.MkdirAll("/hosts/ha-flows", 0o755); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if i == 10 {
			reps[first].Close() // leader dies mid flow-push
		}
		if err := ha.AppendFile("/hosts/ha-flows/log",
			[]byte(fmt.Sprintf("flow-%02d\n", i)), 0o644); err != nil {
			log.Fatalf("write %d: %v", i, err)
		}
	}
	second := leader()
	logBytes, err := ctrls[second].Root().ReadFile("/hosts/ha-flows/log")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if n := strings.Count(string(logBytes), fmt.Sprintf("flow-%02d\n", i)); n != 1 {
			log.Fatalf("flow-%02d applied %d times, want exactly once", i, n)
		}
	}
	st := ha.Stats()
	fmt.Printf("leader %d killed mid-push: mount failed over to %d (%d failovers, %d replayed writes), all 20 flows applied exactly once\n",
		first, second, st.Failovers, st.ReplayedWrites)
}
