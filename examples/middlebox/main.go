// Middleboxes (§7.2): a stateful firewall whose connection table lives
// in the file system. Policy changes are echo into policy files; elastic
// scale-out is cp of state directories — "we can use command line
// utilities such as cp or mv to move state around rather than custom
// protocols".
//
//	go run ./examples/middlebox
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"yanc"
	"yanc/internal/ethernet"
	"yanc/internal/middlebox"
)

func tcp(src, dst ethernet.IP4, sport, dport uint16) []byte {
	return ethernet.Frame{
		Dst: ethernet.MAC{0xaa}, Src: ethernet.MAC{0xbb},
		Type: ethernet.TypeIPv4,
		Payload: ethernet.IPv4{
			TTL: 64, Protocol: ethernet.ProtoTCP, Src: src, Dst: dst,
			Payload: ethernet.TCP{SrcPort: sport, DstPort: dport}.Serialize(),
		}.Serialize(),
	}.Serialize()
}

func waitFor(cond func() bool, what string) {
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func main() {
	ctrl, err := yanc.NewController()
	if err != nil {
		log.Fatal(err)
	}
	defer ctrl.Close()
	p := ctrl.Root()

	fw1, d1 := ctrl.NewMiddlebox("/", "fw1")
	fw2, d2 := ctrl.NewMiddlebox("/", "fw2")
	if err := d1.Start(); err != nil {
		log.Fatal(err)
	}
	defer d1.Stop()
	if err := d2.Start(); err != nil {
		log.Fatal(err)
	}
	defer d2.Stop()

	inside := ethernet.IP4{10, 0, 0, 5}
	outside := ethernet.IP4{93, 184, 216, 34}

	// Traffic through fw1: outbound creates state, the reply establishes.
	fw1.Process(middlebox.Outbound, tcp(inside, outside, 50000, 443))
	fw1.Process(middlebox.Inbound, tcp(outside, inside, 443, 50000))
	key := middlebox.ConnKey{Proto: 6, SrcIP: inside, DstIP: outside, SrcPort: 50000, DstPort: 443}
	statePath := "/middleboxes/fw1/state/" + key.String()
	waitFor(func() bool {
		s, _ := p.ReadString(statePath + "/state")
		return s == "established"
	}, "connection state in the fs")

	sh := ctrl.Shell(os.Stdout)
	fmt.Println("fw1's connection table, as files:")
	must(sh.Run("tree /middleboxes/fw1/state"))

	// Unsolicited inbound is dropped until the admin opens the port.
	attack := tcp(outside, inside, 31337, 8080)
	fmt.Printf("\nunsolicited inbound to :8080 -> %v\n", fw1.Process(middlebox.Inbound, attack))
	must(sh.Run("echo 8080 > /middleboxes/fw1/policy.allow_inbound_ports"))
	waitFor(func() bool { return len(fw1.PolicySnapshot().AllowInboundPorts) == 1 }, "policy reload")
	fmt.Printf("after 'echo 8080 > policy.allow_inbound_ports' -> %v\n", fw1.Process(middlebox.Inbound, attack))

	// Elastic scale-out: migrate the live connection to fw2 with cp.
	inbound := tcp(outside, inside, 443, 50000)
	fmt.Printf("\nfw2 before migration -> %v\n", fw2.Process(middlebox.Inbound, inbound))
	must(sh.Run("cp -r " + statePath + " /middleboxes/fw2/state/" + key.String()))
	waitFor(func() bool { _, known := fw2.Lookup(key); return known }, "fw2 state import")
	fmt.Printf("fw2 after 'cp -r fw1/state/... fw2/state/' -> %v\n", fw2.Process(middlebox.Inbound, inbound))

	fmt.Println("\nlive counters:")
	must(sh.Run("cat /middleboxes/fw1/counters/accepted /middleboxes/fw1/counters/dropped"))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
