// Shell tools (§5.4): administering a software-defined network with the
// coreutils one-liners from the paper — "from simple one-liners to more
// elaborate shell scripts."
//
//	go run ./examples/shelltools
package main

import (
	"fmt"
	"log"
	"os"

	"yanc"
)

func main() {
	ctrl, err := yanc.NewController()
	if err != nil {
		log.Fatal(err)
	}
	defer ctrl.Close()
	p := ctrl.Root()

	// Populate a small network: two switches, an ssh flow, a web flow.
	for _, sw := range []string{"sw1", "sw2"} {
		if err := p.Mkdir("/switches/"+sw, 0o755); err != nil {
			log.Fatal(err)
		}
		if err := p.MkdirAll("/switches/"+sw+"/ports/2", 0o755); err != nil {
			log.Fatal(err)
		}
	}
	for _, f := range []struct{ sw, name, match string }{
		{"sw1", "ssh-in", "dl_type=0x0800,nw_proto=6,tp_dst=22"},
		{"sw2", "web", "dl_type=0x0800,nw_proto=6,tp_dst=80"},
		{"sw2", "ssh-out", "dl_type=0x0800,nw_proto=6,tp_dst=22,nw_src=10.0.0.0/8"},
	} {
		m, err := yanc.ParseMatch(f.match)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := yanc.WriteFlow(p, "/switches/"+f.sw+"/flows/"+f.name, yanc.FlowSpec{
			Match: m, Priority: 10, Actions: []yanc.Action{yanc.Output(2)},
		}); err != nil {
			log.Fatal(err)
		}
	}

	sh := ctrl.Shell(os.Stdout)
	demo := func(line string) {
		fmt.Printf("$ %s\n", line)
		if err := sh.Run(line); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	// "A quick overview of the switches in a network" (§5.4).
	demo("ls -l /switches")
	// "To list flow entries which affect ssh traffic" (§5.4).
	demo("find /switches -name match.tp_dst | xargs grep -l 22")
	// Bring a port down with echo (§3.1).
	demo("echo 1 > /switches/sw1/ports/2/config.port_down")
	demo("cat /switches/sw1/ports/2/config.port_down")
	// Tag a switch for the distributed layer (§6).
	demo("setfattr -n user.yanc.consistency -v eventual /switches/sw2")
	demo("getfattr /switches/sw2")
	// Inventory script.
	fmt.Println("$ (inventory script)")
	if err := sh.RunScript(`
find /switches -type d -name flows | sort
find /switches -name priority | wc -l
`); err != nil {
		log.Fatal(err)
	}
}
