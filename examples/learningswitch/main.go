// Learning switch: a reactive application consuming packet-in events
// from its private event buffer (§3.5) — the event-driven app shape the
// paper describes, built on nothing but file I/O and a watch.
//
// The app subscribes by creating a directory under /events, learns MAC
// locations from packet sources, and either installs a forwarding flow
// (by writing a flow directory and bumping version) or floods via the
// packet_out control file.
//
//	go run ./examples/learningswitch
package main

import (
	"fmt"
	"log"
	"net"
	"strconv"
	"time"

	"yanc"
	"yanc/internal/ethernet"
	"yanc/internal/openflow"
	"yanc/internal/switchsim"
	"yanc/internal/yancfs"
)

func main() {
	ctrl, err := yanc.NewController()
	if err != nil {
		log.Fatal(err)
	}
	defer ctrl.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = ctrl.Serve(ln) }()

	// One switch, three hosts.
	network := switchsim.NewNetwork()
	network.AddSwitch(1, "sw1", openflow.Version10, 3)
	hosts := make([]*switchsim.Host, 3)
	for i := range hosts {
		hosts[i] = switchsim.NewHost(fmt.Sprintf("h%d", i+1), switchsim.HostAddr(uint32(i+1)))
		if err := network.AttachHost(hosts[i], 1, uint32(i+1)); err != nil {
			log.Fatal(err)
		}
	}
	go func() { _ = network.Switch(1).Dial(ln.Addr().String()) }()
	p := ctrl.Root()
	waitFor(func() bool { return p.Exists("/switches/sw1") }, "switch attach")

	// The learning switch app: a private buffer plus a watch.
	buf, watch, err := yanc.Subscribe(p, "/", "learner")
	if err != nil {
		log.Fatal(err)
	}
	defer watch.Close()
	macTable := make(map[ethernet.MAC]uint32) // MAC -> port
	installed := 0
	flooded := 0

	handle := func(msgPath string) {
		ev, err := yancfs.ConsumePacketIn(p, msgPath)
		if err != nil {
			return
		}
		f, err := ethernet.DecodeFrame(ev.Data)
		if err != nil {
			return
		}
		macTable[f.Src] = ev.InPort
		outPort, known := macTable[f.Dst]
		if !known || f.Dst.IsBroadcast() {
			// Flood via the packet_out control file.
			spec := "out=flood in_port=" + strconv.FormatUint(uint64(ev.InPort), 10) +
				" buffer_id=" + strconv.FormatUint(uint64(ev.BufferID), 10) + "\n"
			_ = p.WriteFile("/switches/sw1/packet_out", append([]byte(spec), ev.Data...), 0o644)
			flooded++
			return
		}
		// Install a pair of MAC-match flows by writing files.
		var m yanc.Match
		if err := m.SetField(openflow.FieldDLDst, f.Dst.String()); err != nil {
			return
		}
		name := "learn-" + f.Dst.String()
		if _, err := yanc.WriteFlow(p, "/switches/sw1/flows/"+name, yanc.FlowSpec{
			Match:       m,
			Priority:    100,
			IdleTimeout: 300,
			Actions:     []yanc.Action{yanc.Output(outPort)},
		}); err != nil {
			return
		}
		installed++
		// Release the packet toward its destination.
		spec := "out=" + strconv.FormatUint(uint64(outPort), 10) +
			" buffer_id=" + strconv.FormatUint(uint64(ev.BufferID), 10) + "\n"
		_ = p.WriteFile("/switches/sw1/packet_out", append([]byte(spec), ev.Data...), 0o644)
	}
	go func() {
		for range watch.C {
			msgs, _ := yancfs.PendingEvents(p, buf)
			for _, m := range msgs {
				handle(m)
			}
		}
	}()

	// Drive traffic: h1 -> h2 (flood: h2 unknown), h2 -> h1 (learned:
	// install), then h1 -> h2 again (hardware path, no event).
	hosts[0].Ping(hosts[1], 1)
	waitFor(func() bool { return hosts[1].ReceivedPing(1) }, "first ping (flooded)")
	hosts[1].Ping(hosts[0], 2)
	waitFor(func() bool { return hosts[0].ReceivedPing(2) }, "reply (installs flow)")
	waitFor(func() bool { return network.Switch(1).FlowCount() >= 1 }, "flow install")
	hosts[0].Ping(hosts[1], 3)
	waitFor(func() bool { return hosts[1].ReceivedPing(3) }, "hardware-forwarded ping")

	fmt.Printf("learning switch: %d floods, %d installs, %d hardware flows\n",
		flooded, installed, network.Switch(1).FlowCount())
	fmt.Println("mac table learned from packet-ins:")
	for mac, port := range macTable {
		fmt.Printf("  %s -> port %d\n", mac, port)
	}
}

func waitFor(cond func() bool, what string) {
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
