// Quickstart: bring up a controller and a simulated two-switch network,
// push a static flow by writing files, and watch traffic flow.
//
// This is the "hello world" of yanc: everything the controller knows is
// a file, and programming the network is writing to files and bumping a
// version number (§3).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"yanc"
	"yanc/internal/openflow"
	"yanc/internal/switchsim"
)

func main() {
	// 1. Start the controller and listen for switches on a random port.
	ctrl, err := yanc.NewController()
	if err != nil {
		log.Fatal(err)
	}
	defer ctrl.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = ctrl.Serve(ln) }()

	// 2. Bring up a simulated network: two switches in a line, one host
	// each, dialing the controller like hardware would.
	network, hosts := switchsim.BuildLinear(2, openflow.Version10)
	for _, sw := range network.Switches() {
		sw := sw
		go func() { _ = sw.Dial(ln.Addr().String()) }()
	}
	p := ctrl.Root()
	waitFor(func() bool {
		entries, _ := p.ReadDir("/switches")
		return len(entries) == 2
	}, "switches to attach")
	fmt.Println("switches attached:")
	sh := ctrl.Shell(os.Stdout)
	must(sh.Run("ls -l /switches"))

	// 3. Program the network through the file system: h1 is on sw1 port
	// 1, h2 on sw2 port 1, and the inter-switch link is sw1:3 <-> sw2:2.
	for _, flow := range []struct {
		path, match string
		out         uint32
	}{
		{"/switches/sw1/flows/to-h2", "in_port=1", 3},
		{"/switches/sw2/flows/to-h2", "in_port=2", 1},
		{"/switches/sw2/flows/to-h1", "in_port=1", 2},
		{"/switches/sw1/flows/to-h1", "in_port=3", 1},
	} {
		m, err := yanc.ParseMatch(flow.match)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := yanc.WriteFlow(p, flow.path, yanc.FlowSpec{
			Match:    m,
			Priority: 10,
			Actions:  []yanc.Action{yanc.Output(flow.out)},
		}); err != nil {
			log.Fatal(err)
		}
	}
	waitFor(func() bool {
		return network.Switch(1).FlowCount() == 2 && network.Switch(2).FlowCount() == 2
	}, "flows to reach hardware")
	fmt.Println("\nflow pushed through file writes:")
	must(sh.Run("tree /switches/sw1/flows/to-h2"))

	// 4. Traffic flows.
	h1, h2 := hosts[0], hosts[1]
	h1.Ping(h2, 1)
	waitFor(func() bool { return h2.ReceivedPing(1) }, "ping delivery")
	h2.Ping(h1, 2)
	waitFor(func() bool { return h1.ReceivedPing(2) }, "return ping")
	fmt.Println("\nping h1 <-> h2: OK")

	// 5. Live counters are just files.
	time.Sleep(50 * time.Millisecond)
	fmt.Println("\nflow counters (cat flows/to-h2/counters/packets):")
	must(sh.Run("cat /switches/sw1/flows/to-h2/counters/packets"))
}

func waitFor(cond func() bool, what string) {
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
