// Slicing and isolation: create an HTTP slice of the network (§4.2),
// confine a tenant application to it with a namespace (§5.3), and show
// that (a) the tenant's flows are rewritten into the slice's header
// space, (b) flows outside the slice are rejected, and (c) the tenant
// cannot even see the master region.
//
//	go run ./examples/slicing
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"yanc"
	"yanc/internal/openflow"
	"yanc/internal/switchsim"
)

func main() {
	ctrl, err := yanc.NewController()
	if err != nil {
		log.Fatal(err)
	}
	defer ctrl.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = ctrl.Serve(ln) }()
	network, _ := switchsim.BuildLinear(2, openflow.Version10)
	for _, sw := range network.Switches() {
		sw := sw
		go func() { _ = sw.Dial(ln.Addr().String()) }()
	}
	root := ctrl.Root()
	waitFor(func() bool {
		entries, _ := root.ReadDir("/switches")
		return len(entries) == 2
	}, "switch attach")

	// The administrator creates an HTTP slice over both switches.
	filter, err := yanc.ParseMatch("dl_type=0x0800,nw_proto=6,tp_dst=80")
	if err != nil {
		log.Fatal(err)
	}
	slice := ctrl.NewSlicer("/", "http", filter, []string{"sw1", "sw2"})
	if err := slice.Create(); err != nil {
		log.Fatal(err)
	}
	if err := slice.Start(); err != nil {
		log.Fatal(err)
	}
	defer slice.Stop()
	// Hand the slice's flow tables to the tenant user (uid 4000).
	for _, sw := range []string{"sw1", "sw2"} {
		if err := root.Chown("/views/http/switches/"+sw+"/flows", 4000, 4000); err != nil {
			log.Fatal(err)
		}
	}

	// The tenant's app runs inside a namespace rooted at the view: the
	// master region simply does not exist for it.
	tenant, err := ctrl.Launch(yanc.Namespace{
		Name: "http-tenant",
		Cred: yanc.Cred{UID: 4000, GID: 4000},
		Root: "/views/http",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tenant's world (its / is the view):")
	entries, _ := tenant.ReadDir("/switches")
	for _, e := range entries {
		fmt.Printf("  /switches/%s\n", e.Name)
	}
	// A marker that exists only in the master region must be invisible,
	// even via "..", which clamps at the namespace root.
	if err := root.WriteString("/master-only", "secret"); err != nil {
		log.Fatal(err)
	}
	if tenant.Exists("/master-only") || tenant.Exists("/../master-only") || tenant.Exists("/../../master-only") {
		log.Fatal("namespace escape!")
	}
	fmt.Println("  (master region unreachable, even via ..)")

	// The tenant writes a load-balancer flow. Inside its view it matches
	// all port-1 traffic; the slicer confines it to HTTP.
	m, err := yanc.ParseMatch("in_port=1")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := yanc.WriteFlow(tenant, "/switches/sw1/flows/lb", yanc.FlowSpec{
		Match:    m,
		Priority: 10,
		Actions:  []yanc.Action{yanc.Output(3)},
	}); err != nil {
		log.Fatal(err)
	}
	waitFor(func() bool { return root.Exists("/switches/sw1/flows/slice-http-lb") }, "slice translation")
	spec, err := yanc.ReadFlow(root, "/switches/sw1/flows/slice-http-lb")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntenant wrote match [%s]\n", "in_port=1")
	fmt.Printf("master received    [%s]  <- confined to the slice\n", spec.Match)

	// A flow outside the slice's header space is rejected.
	ssh, _ := yanc.ParseMatch("dl_type=0x0800,nw_proto=6,tp_dst=22")
	if _, err := yanc.WriteFlow(tenant, "/switches/sw1/flows/ssh", yanc.FlowSpec{
		Match:    ssh,
		Priority: 10,
		Actions:  []yanc.Action{yanc.Output(3)},
	}); err != nil {
		log.Fatal(err)
	}
	waitFor(func() bool { return tenant.Exists("/switches/sw1/flows/ssh/error") }, "rejection")
	reason, _ := tenant.ReadString("/switches/sw1/flows/ssh/error")
	fmt.Printf("\nssh flow rejected: %s\n", reason)

	fmt.Println("\nmaster flow table (administrator's view):")
	sh := ctrl.Shell(os.Stdout)
	if err := sh.Run("ls /switches/sw1/flows"); err != nil {
		log.Fatal(err)
	}
}

func waitFor(cond func() bool, what string) {
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
