package switchsim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"yanc/internal/ethernet"
	"yanc/internal/openflow"
)

// randomMatch builds a random match over a small field universe so
// overlaps are common.
func randomMatch(r *rand.Rand) openflow.Match {
	var m openflow.Match
	set := func(f openflow.Field, v string) {
		if err := m.SetField(f, v); err != nil {
			panic(err)
		}
	}
	if r.Intn(2) == 0 {
		set(openflow.FieldInPort, fmt.Sprint(1+r.Intn(3)))
	}
	if r.Intn(2) == 0 {
		set(openflow.FieldDLType, "0x0800")
		if r.Intn(2) == 0 {
			set(openflow.FieldNWProto, fmt.Sprint([]int{1, 6, 17}[r.Intn(3)]))
		}
		if r.Intn(2) == 0 {
			bits := []int{8, 16, 24, 32}[r.Intn(4)]
			set(openflow.FieldNWSrc, fmt.Sprintf("10.%d.0.0/%d", r.Intn(3), bits))
		}
		if r.Intn(3) == 0 {
			set(openflow.FieldTPDst, fmt.Sprint([]int{22, 80, 443}[r.Intn(3)]))
		}
	}
	return m
}

// randomPacket builds a packet whose fields land in the same universe.
func randomPacket(r *rand.Rand) openflow.PacketFields {
	pf := openflow.PacketFields{
		InPort: uint32(1 + r.Intn(3)),
		DLSrc:  ethernet.MACFromUint64(uint64(r.Intn(4))),
		DLDst:  ethernet.MACFromUint64(uint64(r.Intn(4))),
		DLType: 0x0800,
	}
	pf.NWProto = uint8([]int{1, 6, 17}[r.Intn(3)])
	pf.NWSrc = ethernet.IP4{10, byte(r.Intn(3)), byte(r.Intn(2)), 1}
	pf.NWDst = ethernet.IP4{192, 168, 0, 1}
	pf.TPDst = uint16([]int{22, 80, 443}[r.Intn(3)])
	return pf
}

// TestQuickTableLookupMatchesNaiveScan checks the table's lookup against
// a brute-force reference: highest priority wins, insertion order breaks
// ties.
func TestQuickTableLookupMatchesNaiveScan(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		tab := NewTable()
		type ref struct {
			e   *FlowEntry
			seq int
		}
		var refs []ref
		n := 1 + r.Intn(12)
		for i := 0; i < n; i++ {
			e := &FlowEntry{
				Match:    randomMatch(r),
				Priority: uint16(r.Intn(4)), // few priorities: many ties
				Actions:  []openflow.Action{openflow.Output(uint32(i))},
			}
			// Replacement semantics in the reference too.
			replaced := false
			for j, rf := range refs {
				if rf.e.Priority == e.Priority && rf.e.Match.Equal(e.Match) {
					refs[j] = ref{e: e, seq: rf.seq}
					replaced = true
					break
				}
			}
			if !replaced {
				refs = append(refs, ref{e: e, seq: i})
			}
			tab.Add(e)
		}
		for probe := 0; probe < 20; probe++ {
			pf := randomPacket(r)
			got := tab.Lookup(&pf)
			// Naive scan.
			var want *FlowEntry
			wantSeq := -1
			for _, rf := range refs {
				if !rf.e.Match.MatchesPacket(&pf) {
					continue
				}
				if want == nil || rf.e.Priority > want.Priority ||
					(rf.e.Priority == want.Priority && rf.seq < wantSeq) {
					want = rf.e
					wantSeq = rf.seq
				}
			}
			if got != want {
				t.Fatalf("trial %d probe %d: lookup mismatch\n got:  %+v\n want: %+v\n packet %+v",
					trial, probe, got, want, pf)
			}
		}
	}
}

// TestQuickDeleteCoversSubsetOfAdds checks that non-strict delete with a
// wildcard removes everything, and delete with each entry's own match
// removes at least that entry.
func TestQuickDeleteCoversSubsetOfAdds(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		tab := NewTable()
		var matches []openflow.Match
		for i := 0; i < 1+r.Intn(8); i++ {
			m := randomMatch(r)
			tab.Add(&FlowEntry{Match: m, Priority: uint16(i)})
			matches = append(matches, m)
		}
		// Self-delete removes at least one entry per distinct match.
		m := matches[r.Intn(len(matches))]
		removed := tab.Delete(m, openflow.PortAny)
		if len(removed) == 0 {
			t.Fatalf("trial %d: deleting an installed match removed nothing (%v)", trial, m)
		}
		// Wildcard delete empties the table.
		tab.Delete(openflow.Match{}, openflow.PortAny)
		if tab.Len() != 0 {
			t.Fatalf("trial %d: wildcard delete left %d entries", trial, tab.Len())
		}
	}
}

// TestQuickExpireNeverResurrects expires entries under a random clock
// walk and checks expired entries never come back and survivors are
// exactly the unexpired ones.
func TestQuickExpireNeverResurrects(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	base := time.Unix(10000, 0)
	tab := NewTable()
	type tracked struct {
		e       *FlowEntry
		expires time.Time
	}
	var live []tracked
	now := base
	for i := 0; i < 300; i++ {
		if r.Intn(3) > 0 {
			idle := uint16(r.Intn(20))
			e := &FlowEntry{
				Match:       randomMatch(r),
				Priority:    uint16(i), // unique priority: no replacement
				IdleTimeout: idle,
				Created:     now,
				LastUsed:    now,
			}
			tab.Add(e)
			exp := time.Time{}
			if idle > 0 {
				exp = now.Add(time.Duration(idle) * time.Second)
			}
			live = append(live, tracked{e: e, expires: exp})
		}
		now = now.Add(time.Duration(r.Intn(5)) * time.Second)
		expired := tab.Expire(now)
		for _, ex := range expired {
			found := false
			for j, tr := range live {
				if tr.e == ex.Entry {
					if tr.expires.IsZero() || now.Before(tr.expires) {
						t.Fatalf("op %d: entry expired early (now=%v expires=%v)", i, now, tr.expires)
					}
					live = append(live[:j], live[j+1:]...)
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("op %d: expired unknown entry", i)
			}
		}
		if tab.Len() != len(live) {
			t.Fatalf("op %d: table has %d, model has %d", i, tab.Len(), len(live))
		}
	}
}
