package switchsim

import (
	"net"
	"sync"
	"testing"
	"time"

	"yanc/internal/ethernet"
	"yanc/internal/openflow"
)

func mustMatch(t *testing.T, spec string) openflow.Match {
	t.Helper()
	m, err := openflow.ParseMatch(spec)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func addFlow(t *testing.T, sw *Switch, spec string, priority uint16, actions string) {
	t.Helper()
	acts, err := openflow.ParseActions(actions)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.FlowMod(&openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Match:    mustMatch(t, spec),
		Priority: priority,
		BufferID: openflow.NoBuffer,
		OutPort:  openflow.PortAny,
		Actions:  acts,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestTablePriorityAndReplace(t *testing.T) {
	tab := NewTable()
	low := &FlowEntry{Match: openflow.Match{}, Priority: 1, Actions: []openflow.Action{openflow.Output(1)}}
	high := &FlowEntry{Priority: 100, Actions: []openflow.Action{openflow.Output(2)}}
	var m openflow.Match
	if err := m.SetField(openflow.FieldDLType, "0x0800"); err != nil {
		t.Fatal(err)
	}
	high.Match = m
	tab.Add(low)
	tab.Add(high)
	pf := openflow.PacketFields{DLType: 0x0800}
	if got := tab.Lookup(&pf); got != high {
		t.Error("high priority entry must win")
	}
	pfARP := openflow.PacketFields{DLType: 0x0806}
	if got := tab.Lookup(&pfARP); got != low {
		t.Error("fallthrough to wildcard")
	}
	// Same identity replaces.
	repl := &FlowEntry{Match: m, Priority: 100, Actions: []openflow.Action{openflow.Output(9)}}
	tab.Add(repl)
	if tab.Len() != 2 {
		t.Errorf("len = %d", tab.Len())
	}
	if got := tab.Lookup(&pf); got != repl {
		t.Error("replacement must win")
	}
}

func TestTableDeleteNonStrictAndStrict(t *testing.T) {
	tab := NewTable()
	tcp := &FlowEntry{Match: func() openflow.Match { m, _ := openflow.ParseMatch("dl_type=0x0800,nw_proto=6"); return m }(), Priority: 10}
	ssh := &FlowEntry{Match: func() openflow.Match { m, _ := openflow.ParseMatch("dl_type=0x0800,nw_proto=6,tp_dst=22"); return m }(), Priority: 20, Actions: []openflow.Action{openflow.Output(3)}}
	tab.Add(tcp)
	tab.Add(ssh)
	// Strict with wrong priority removes nothing.
	if rm := tab.DeleteStrict(tcp.Match, 99, openflow.PortAny); len(rm) != 0 {
		t.Error("strict delete with wrong priority removed something")
	}
	// Non-strict with covering match removes both.
	wild, _ := openflow.ParseMatch("dl_type=0x0800")
	if rm := tab.Delete(wild, openflow.PortAny); len(rm) != 2 {
		t.Errorf("non-strict removed %d", len(rm))
	}
	if tab.Len() != 0 {
		t.Errorf("len = %d", tab.Len())
	}
	// out_port filter.
	tab.Add(ssh)
	if rm := tab.Delete(wild, 9); len(rm) != 0 {
		t.Error("out_port filter must block")
	}
	if rm := tab.Delete(wild, 3); len(rm) != 1 {
		t.Error("out_port filter must allow port 3")
	}
}

func TestTableExpire(t *testing.T) {
	tab := NewTable()
	t0 := time.Unix(1000, 0)
	idle := &FlowEntry{Priority: 1, IdleTimeout: 10, Created: t0, LastUsed: t0}
	hard := &FlowEntry{Priority: 2, HardTimeout: 30, Created: t0, LastUsed: t0}
	keep := &FlowEntry{Priority: 3, Created: t0, LastUsed: t0}
	tab.Add(idle)
	tab.Add(hard)
	tab.Add(keep)
	ex := tab.Expire(t0.Add(15 * time.Second))
	if len(ex) != 1 || ex[0].Entry != idle || ex[0].Reason != openflow.RemovedIdleTimeout {
		t.Fatalf("expire = %+v", ex)
	}
	ex = tab.Expire(t0.Add(31 * time.Second))
	if len(ex) != 1 || ex[0].Entry != hard || ex[0].Reason != openflow.RemovedHardTimeout {
		t.Fatalf("hard expire = %+v", ex)
	}
	if tab.Len() != 1 {
		t.Errorf("len = %d", tab.Len())
	}
}

func TestSwitchForwardAndCounters(t *testing.T) {
	n := NewNetwork()
	n.AddSwitch(1, "sw1", openflow.Version10, 2)
	h1 := NewHost("h1", HostAddr(1))
	h2 := NewHost("h2", HostAddr(2))
	if err := n.AttachHost(h1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost(h2, 1, 2); err != nil {
		t.Fatal(err)
	}
	sw := n.Switch(1)
	addFlow(t, sw, "in_port=1", 10, "out=2")
	addFlow(t, sw, "in_port=2", 10, "out=1")
	h1.Ping(h2, 1)
	if !h2.ReceivedPing(1) {
		t.Fatal("h2 did not receive the ping")
	}
	h2.Ping(h1, 2)
	if !h1.ReceivedPing(2) {
		t.Fatal("h1 did not receive the reply")
	}
	stats := sw.FlowStats(openflow.Match{})
	if len(stats) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	for _, s := range stats {
		if s.PacketCount != 1 || s.ByteCount == 0 {
			t.Errorf("flow counters = %+v", s)
		}
	}
	p1, _ := sw.PortCounters(1)
	if p1.RxPackets != 1 || p1.TxPackets != 1 {
		t.Errorf("port1 counters = %+v", p1)
	}
}

func TestTableMissPacketInAndBufferRelease(t *testing.T) {
	n := NewNetwork()
	n.AddSwitch(1, "sw1", openflow.Version10, 2)
	h1 := NewHost("h1", HostAddr(1))
	h2 := NewHost("h2", HostAddr(2))
	_ = n.AttachHost(h1, 1, 1)
	_ = n.AttachHost(h2, 1, 2)
	sw := n.Switch(1)
	var mu sync.Mutex
	var pins []*openflow.PacketIn
	sw.SetHandlers(func(pi *openflow.PacketIn) {
		mu.Lock()
		pins = append(pins, pi)
		mu.Unlock()
	}, nil, nil)

	h1.Ping(h2, 7)
	mu.Lock()
	if len(pins) != 1 {
		mu.Unlock()
		t.Fatalf("packet-ins = %d", len(pins))
	}
	pi := pins[0]
	mu.Unlock()
	if pi.Reason != openflow.ReasonNoMatch || pi.InPort != 1 {
		t.Fatalf("packet-in = %+v", pi)
	}
	if pi.BufferID == openflow.NoBuffer {
		t.Fatal("expected a buffered packet")
	}
	if h2.RxCount() != 0 {
		t.Fatal("packet leaked before flow install")
	}
	// Install the flow referencing the buffer: packet must be released.
	if err := sw.FlowMod(&openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Match:    mustMatch(t, "in_port=1"),
		Priority: 1,
		BufferID: pi.BufferID,
		Actions:  []openflow.Action{openflow.Output(2)},
	}); err != nil {
		t.Fatal(err)
	}
	if !h2.ReceivedPing(7) {
		t.Fatal("buffered packet was not released")
	}
}

func TestFloodAndRingLoopTermination(t *testing.T) {
	n, hosts := BuildRing(4, openflow.Version10)
	for _, sw := range n.Switches() {
		addFlow(t, sw, "*", 1, "out=flood")
	}
	hosts[0].Ping(hosts[2], 1)
	// The flood must reach every other host despite the cycle, and must
	// terminate (this test completing proves the hop limit works).
	for i, h := range hosts {
		if i == 0 {
			continue
		}
		if !h.ReceivedPing(1) {
			t.Errorf("host %d missed the flood", i)
		}
	}
	// No host should see a catastrophic number of copies.
	for i, h := range hosts {
		if c := h.RxCount(); c > 64 {
			t.Errorf("host %d saw %d copies", i, c)
		}
	}
}

func TestPortDownBlocksTraffic(t *testing.T) {
	n := NewNetwork()
	n.AddSwitch(1, "sw1", openflow.Version10, 2)
	h1 := NewHost("h1", HostAddr(1))
	h2 := NewHost("h2", HostAddr(2))
	_ = n.AttachHost(h1, 1, 1)
	_ = n.AttachHost(h2, 1, 2)
	sw := n.Switch(1)
	addFlow(t, sw, "in_port=1", 10, "out=2")

	var statuses []openflow.PortInfo
	sw.SetHandlers(nil, nil, func(reason uint8, info openflow.PortInfo) {
		statuses = append(statuses, info)
	})
	if err := sw.SetPortConfig(2, openflow.PortConfigDown); err != nil {
		t.Fatal(err)
	}
	if len(statuses) != 1 || statuses[0].Config&openflow.PortConfigDown == 0 {
		t.Fatalf("port status = %+v", statuses)
	}
	h1.Ping(h2, 1)
	if h2.RxCount() != 0 {
		t.Fatal("traffic crossed a downed port")
	}
	p, _ := sw.PortCounters(2)
	if p.TxDropped != 1 {
		t.Errorf("tx dropped = %d", p.TxDropped)
	}
	// Bring it back.
	if err := sw.SetPortConfig(2, 0); err != nil {
		t.Fatal(err)
	}
	h1.Ping(h2, 2)
	if !h2.ReceivedPing(2) {
		t.Fatal("traffic did not resume")
	}
}

func TestActionRewrite(t *testing.T) {
	n := NewNetwork()
	n.AddSwitch(1, "sw1", openflow.Version10, 2)
	h1 := NewHost("h1", HostAddr(1))
	h2 := NewHost("h2", HostAddr(2))
	_ = n.AttachHost(h1, 1, 1)
	_ = n.AttachHost(h2, 1, 2)
	sw := n.Switch(1)
	addFlow(t, sw, "in_port=1,dl_type=0x0800", 10, "set_nw_dst=192.168.9.9,set_tp_dst=8080,out=2")
	h1.SendTCP(h2, 1234, 80, []byte("GET /"))
	frames := h2.Received()
	if len(frames) != 1 {
		t.Fatalf("frames = %d", len(frames))
	}
	pf, err := openflow.ExtractFields(frames[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if pf.NWDst != (ethernet.IP4{192, 168, 9, 9}) || pf.TPDst != 8080 {
		t.Errorf("rewritten fields = %+v", pf)
	}
}

func TestFlowRemovedOnTimeoutAndDelete(t *testing.T) {
	sw := NewSwitch(1, "sw1", openflow.Version10)
	sw.AddPort(1, "p1")
	now := time.Unix(5000, 0)
	sw.SetClock(func() time.Time { return now })
	var removed []*openflow.FlowRemoved
	sw.SetHandlers(nil, func(fr *openflow.FlowRemoved) { removed = append(removed, fr) }, nil)
	if err := sw.FlowMod(&openflow.FlowMod{
		Command:     openflow.FlowAdd,
		Priority:    5,
		IdleTimeout: 10,
		Flags:       openflow.FlagSendFlowRem,
		BufferID:    openflow.NoBuffer,
		Cookie:      0xabc,
	}); err != nil {
		t.Fatal(err)
	}
	now = now.Add(11 * time.Second)
	sw.Tick(now)
	if len(removed) != 1 || removed[0].Reason != openflow.RemovedIdleTimeout || removed[0].Cookie != 0xabc {
		t.Fatalf("removed = %+v", removed)
	}
	// Delete-triggered notification.
	if err := sw.FlowMod(&openflow.FlowMod{
		Command: openflow.FlowAdd, Priority: 6,
		Flags: openflow.FlagSendFlowRem, BufferID: openflow.NoBuffer,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sw.FlowMod(&openflow.FlowMod{
		Command: openflow.FlowDelete, OutPort: openflow.PortAny, BufferID: openflow.NoBuffer,
	}); err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 || removed[1].Reason != openflow.RemovedDelete {
		t.Fatalf("after delete removed = %+v", removed)
	}
}

func TestLinearTopologyEndToEnd(t *testing.T) {
	n, hosts := BuildLinear(3, openflow.Version10)
	// Static path: h1 (sw1 port1) -> sw1 port3 -> sw2 port2, sw2 port3 ->
	// sw3 port2 -> h3 on port 1.
	addFlow(t, n.Switch(1), "in_port=1", 10, "out=3")
	addFlow(t, n.Switch(2), "in_port=2", 10, "out=3")
	addFlow(t, n.Switch(3), "in_port=2", 10, "out=1")
	hosts[0].Ping(hosts[2], 3)
	if !hosts[2].ReceivedPing(3) {
		t.Fatal("ping did not traverse the line")
	}
	// Every switch on the path counted it.
	for dpid := uint64(1); dpid <= 3; dpid++ {
		st := n.Switch(dpid).FlowStats(openflow.Match{})
		if len(st) != 1 || st[0].PacketCount != 1 {
			t.Errorf("sw%d stats = %+v", dpid, st)
		}
	}
}

func TestServeControllerProtocolLoop(t *testing.T) {
	for _, version := range []uint8{openflow.Version10, openflow.Version13} {
		n := NewNetwork()
		n.AddSwitch(1, "sw1", version, 2)
		h1 := NewHost("h1", HostAddr(1))
		h2 := NewHost("h2", HostAddr(2))
		_ = n.AttachHost(h1, 1, 1)
		_ = n.AttachHost(h2, 1, 2)
		sw := n.Switch(1)

		client, server := net.Pipe()
		serveDone := make(chan error, 1)
		go func() { serveDone <- sw.ServeController(server) }()

		ctrl := openflow.NewConn(client)
		features, err := ctrl.HandshakeController(openflow.Version13)
		if err != nil {
			t.Fatalf("v%d handshake: %v", version, err)
		}
		if features.DatapathID != 1 || len(features.Ports) != 2 {
			t.Fatalf("v%d features = %+v", version, features)
		}
		if ctrl.Version() != version {
			t.Fatalf("negotiated %d want %d", ctrl.Version(), version)
		}
		// Install a flow over the wire.
		fm := &openflow.FlowMod{
			Command:  openflow.FlowAdd,
			Match:    mustMatch(t, "in_port=1"),
			Priority: 10,
			BufferID: openflow.NoBuffer,
			OutPort:  openflow.PortAny,
			Actions:  []openflow.Action{openflow.Output(2)},
		}
		if err := ctrl.Write(fm); err != nil {
			t.Fatal(err)
		}
		// Barrier to ensure ordering.
		if err := ctrl.Write(&openflow.BarrierRequest{}); err != nil {
			t.Fatal(err)
		}
		if msg, err := ctrl.Read(); err != nil || msg.Type() != openflow.MsgBarrierReply {
			t.Fatalf("barrier reply: %v %v", msg, err)
		}
		// Dataplane works; a miss from h2 triggers a wire packet-in.
		h1.Ping(h2, 1)
		if !h2.ReceivedPing(1) {
			t.Fatalf("v%d: flow not installed", version)
		}
		h2.Ping(h1, 2)
		msg, err := ctrl.Read()
		if err != nil {
			t.Fatal(err)
		}
		pi, ok := msg.(*openflow.PacketIn)
		if !ok || pi.InPort != 2 {
			t.Fatalf("v%d packet-in = %+v", version, msg)
		}
		// Packet-out the buffered packet to port 1.
		if err := ctrl.Write(&openflow.PacketOut{
			BufferID: pi.BufferID,
			InPort:   openflow.PortController,
			Actions:  []openflow.Action{openflow.Output(1)},
			Data:     pi.Data,
		}); err != nil {
			t.Fatal(err)
		}
		if !h1.WaitFor(func(frames [][]byte) bool { return len(frames) > 0 }, time.Second) {
			t.Fatalf("v%d: packet-out not delivered", version)
		}
		// Flow stats over the wire.
		if err := ctrl.Write(&openflow.StatsRequest{Kind: openflow.StatsFlow}); err != nil {
			t.Fatal(err)
		}
		msg, err = ctrl.Read()
		if err != nil {
			t.Fatal(err)
		}
		rep, ok := msg.(*openflow.StatsReply)
		if !ok || len(rep.Flows) != 1 || rep.Flows[0].PacketCount != 1 {
			t.Fatalf("v%d stats = %+v", version, msg)
		}
		client.Close()
		server.Close()
		if err := <-serveDone; err != nil {
			t.Fatalf("v%d serve: %v", version, err)
		}
	}
}

func TestConcurrentDataplane(t *testing.T) {
	n := NewNetwork()
	n.AddSwitch(1, "sw1", openflow.Version10, 9)
	sw := n.Switch(1)
	hosts := make([]*Host, 8)
	for i := range hosts {
		hosts[i] = NewHost("h", HostAddr(uint32(i+1)))
		_ = n.AttachHost(hosts[i], 1, uint32(i+1))
	}
	addFlow(t, sw, "*", 1, "out=flood")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				hosts[i].Ping(hosts[(i+1)%8], uint16(j))
			}
		}(i)
	}
	wg.Wait()
	total := 0
	for _, h := range hosts {
		total += h.RxCount()
	}
	// 8 senders * 50 pings * 7 flood copies each.
	if total != 8*50*7 {
		t.Errorf("total received = %d, want %d", total, 8*50*7)
	}
}
