package switchsim

import (
	"fmt"
	"sort"
	"sync"
)

// defaultMaxHops bounds how many switch-to-switch hops a single frame may
// take; it is the loop-breaker for floods in cyclic topologies.
const defaultMaxHops = 64

type endpoint struct {
	dpid uint64
	port uint32
}

// Network is the fabric: switches, point-to-point links between switch
// ports, and hosts attached to switch ports. It stands in for the
// physical network under the controller.
type Network struct {
	mu       sync.RWMutex
	switches map[uint64]*Switch
	byName   map[string]*Switch
	links    map[endpoint]endpoint
	hosts    map[endpoint]*Host
	hostList []*Host
	maxHops  int
}

// NewNetwork creates an empty fabric.
func NewNetwork() *Network {
	return &Network{
		switches: make(map[uint64]*Switch),
		byName:   make(map[string]*Switch),
		links:    make(map[endpoint]endpoint),
		hosts:    make(map[endpoint]*Host),
		maxHops:  defaultMaxHops,
	}
}

// AddSwitch creates a switch with ports 1..numPorts and attaches it to
// the fabric.
func (n *Network) AddSwitch(dpid uint64, name string, version uint8, numPorts int) *Switch {
	sw := NewSwitch(dpid, name, version)
	for i := 1; i <= numPorts; i++ {
		sw.AddPort(uint32(i), fmt.Sprintf("%s-eth%d", name, i))
	}
	sw.SetOutput(n.forward)
	n.mu.Lock()
	n.switches[dpid] = sw
	n.byName[name] = sw
	n.mu.Unlock()
	return sw
}

// Switch returns a switch by datapath id.
func (n *Network) Switch(dpid uint64) *Switch {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.switches[dpid]
}

// SwitchByName returns a switch by name.
func (n *Network) SwitchByName(name string) *Switch {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.byName[name]
}

// Switches returns all switches sorted by datapath id.
func (n *Network) Switches() []*Switch {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]*Switch, 0, len(n.switches))
	for _, sw := range n.switches {
		out = append(out, sw)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DPID < out[j].DPID })
	return out
}

// Hosts returns all attached hosts in attachment order.
func (n *Network) Hosts() []*Host {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return append([]*Host(nil), n.hostList...)
}

// Link connects two switch ports with a bidirectional link.
func (n *Network) Link(dpidA uint64, portA uint32, dpidB uint64, portB uint32) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	a := endpoint{dpidA, portA}
	b := endpoint{dpidB, portB}
	if _, busy := n.links[a]; busy {
		return fmt.Errorf("switchsim: port %d/%d already linked", dpidA, portA)
	}
	if _, busy := n.links[b]; busy {
		return fmt.Errorf("switchsim: port %d/%d already linked", dpidB, portB)
	}
	if _, busy := n.hosts[a]; busy {
		return fmt.Errorf("switchsim: port %d/%d has a host", dpidA, portA)
	}
	if _, busy := n.hosts[b]; busy {
		return fmt.Errorf("switchsim: port %d/%d has a host", dpidB, portB)
	}
	n.links[a] = b
	n.links[b] = a
	return nil
}

// Links returns each link once as a 4-tuple (dpidA, portA, dpidB, portB)
// with dpidA < dpidB (or portA < portB for same-switch links).
func (n *Network) Links() [][4]uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var out [][4]uint64
	for a, b := range n.links {
		if a.dpid < b.dpid || (a.dpid == b.dpid && a.port < b.port) {
			out = append(out, [4]uint64{a.dpid, uint64(a.port), b.dpid, uint64(b.port)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		for k := 0; k < 4; k++ {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// AttachHost connects a host to a switch port.
func (n *Network) AttachHost(h *Host, dpid uint64, port uint32) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	ep := endpoint{dpid, port}
	if _, busy := n.links[ep]; busy {
		return fmt.Errorf("switchsim: port %d/%d already linked", dpid, port)
	}
	if _, busy := n.hosts[ep]; busy {
		return fmt.Errorf("switchsim: port %d/%d has a host", dpid, port)
	}
	if _, ok := n.switches[dpid]; !ok {
		return fmt.Errorf("switchsim: no switch %d", dpid)
	}
	n.hosts[ep] = h
	n.hostList = append(n.hostList, h)
	h.attach(n, dpid, port)
	return nil
}

// forward is the OutputFn installed on every switch: it carries a frame
// across the link (or to the attached host) at the far side of a port.
func (n *Network) forward(sw *Switch, port uint32, frame []byte, hops int) {
	if hops >= n.maxHops {
		return
	}
	ep := endpoint{sw.DPID, port}
	n.mu.RLock()
	peer, isLink := n.links[ep]
	host := n.hosts[ep]
	var peerSw *Switch
	if isLink {
		peerSw = n.switches[peer.dpid]
	}
	n.mu.RUnlock()
	switch {
	case host != nil:
		host.receive(frame)
	case peerSw != nil:
		peerSw.IngressHops(peer.port, frame, hops+1)
	}
}

// injectFromHost pushes a host-originated frame into its switch port.
func (n *Network) injectFromHost(h *Host, frame []byte) {
	n.mu.RLock()
	sw := n.switches[h.dpid]
	n.mu.RUnlock()
	if sw != nil {
		sw.Ingress(h.port, frame)
	}
}

// PeerOf reports the far side of a switch port: either another switch
// port or a host. Topology tests and the LLDP ground truth use it.
func (n *Network) PeerOf(dpid uint64, port uint32) (peerDPID uint64, peerPort uint32, host *Host, ok bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ep := endpoint{dpid, port}
	if p, isLink := n.links[ep]; isLink {
		return p.dpid, p.port, nil, true
	}
	if h, isHost := n.hosts[ep]; isHost {
		return 0, 0, h, true
	}
	return 0, 0, nil, false
}

// BuildLinear builds a linear topology of k switches (dpids 1..k), each
// with one host (10.0.0.i, attached on port 1); inter-switch links use
// ports 2 (left) and 3 (right). Returns the network and hosts.
func BuildLinear(k int, version uint8) (*Network, []*Host) {
	n := NewNetwork()
	hosts := make([]*Host, k)
	for i := 1; i <= k; i++ {
		n.AddSwitch(uint64(i), fmt.Sprintf("sw%d", i), version, 3)
		hosts[i-1] = NewHost(fmt.Sprintf("h%d", i), HostAddr(uint32(i)))
		if err := n.AttachHost(hosts[i-1], uint64(i), 1); err != nil {
			panic(err)
		}
	}
	for i := 1; i < k; i++ {
		if err := n.Link(uint64(i), 3, uint64(i+1), 2); err != nil {
			panic(err)
		}
	}
	return n, hosts
}

// BuildRing is BuildLinear plus a link closing the cycle, used to prove
// flood loops terminate.
func BuildRing(k int, version uint8) (*Network, []*Host) {
	n, hosts := BuildLinear(k, version)
	if k >= 2 {
		if err := n.Link(uint64(k), 3, 1, 2); err != nil {
			panic(err)
		}
	}
	return n, hosts
}
