package switchsim

import (
	"sync"
	"time"

	"yanc/internal/ethernet"
)

// HostAddr assigns the conventional simulation address 10.0.0.n.
func HostAddr(n uint32) ethernet.IP4 {
	return ethernet.IP4{10, 0, byte(n >> 8), byte(n)}
}

// Host is an end host attached to a switch port. It sends and receives
// raw Ethernet frames and keeps a receive log for assertions.
type Host struct {
	Name string
	MAC  ethernet.MAC
	IP   ethernet.IP4

	network *Network
	dpid    uint64
	port    uint32

	mu      sync.Mutex
	rxLog   [][]byte
	waiters []chan struct{}
}

// NewHost creates a host; its MAC is derived from the IP so addresses
// stay readable in dumps.
func NewHost(name string, ip ethernet.IP4) *Host {
	return &Host{
		Name: name,
		MAC:  ethernet.MACFromUint64(0x0200_0000_0000 | uint64(ip.Uint32())),
		IP:   ip,
	}
}

func (h *Host) attach(n *Network, dpid uint64, port uint32) {
	h.network = n
	h.dpid = dpid
	h.port = port
}

// Attachment reports where the host is plugged in.
func (h *Host) Attachment() (dpid uint64, port uint32) { return h.dpid, h.port }

// Send transmits a raw frame into the network.
func (h *Host) Send(frame []byte) {
	if h.network != nil {
		h.network.injectFromHost(h, frame)
	}
}

func (h *Host) receive(frame []byte) {
	h.mu.Lock()
	h.rxLog = append(h.rxLog, append([]byte(nil), frame...))
	waiters := h.waiters
	h.waiters = nil
	h.mu.Unlock()
	for _, w := range waiters {
		close(w)
	}
}

// Received returns a snapshot of all frames the host has received.
func (h *Host) Received() [][]byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([][]byte, len(h.rxLog))
	copy(out, h.rxLog)
	return out
}

// RxCount returns how many frames the host has received.
func (h *Host) RxCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.rxLog)
}

// ClearReceived empties the receive log.
func (h *Host) ClearReceived() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rxLog = nil
}

// WaitFor blocks until pred is satisfied by the receive log or the
// timeout elapses; it reports whether pred was satisfied. Delivery in the
// simulator is synchronous on the sending goroutine, so this exists for
// tests that send from other goroutines.
func (h *Host) WaitFor(pred func(frames [][]byte) bool, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout) //yancvet:wallclock WaitFor bounds real goroutine delivery, not simulated time
	for {
		h.mu.Lock()
		snapshot := make([][]byte, len(h.rxLog))
		copy(snapshot, h.rxLog)
		w := make(chan struct{})
		h.waiters = append(h.waiters, w)
		h.mu.Unlock()
		// pred runs without the lock so it may call back into the host
		// (Received, ReceivedPing, ...).
		if pred(snapshot) {
			return true
		}
		remain := time.Until(deadline) //yancvet:wallclock see deadline above
		if remain <= 0 {
			return false
		}
		select {
		case <-w:
		case <-time.After(remain): //yancvet:wallclock see deadline above
			return false
		}
	}
}

// SendIPv4 builds and sends an IPv4 packet to dst.
func (h *Host) SendIPv4(dstMAC ethernet.MAC, dstIP ethernet.IP4, proto uint8, payload []byte) {
	pkt := ethernet.IPv4{
		TTL:      64,
		Protocol: proto,
		Src:      h.IP,
		Dst:      dstIP,
		Payload:  payload,
	}
	h.Send(ethernet.Frame{
		Dst:     dstMAC,
		Src:     h.MAC,
		Type:    ethernet.TypeIPv4,
		Payload: pkt.Serialize(),
	}.Serialize())
}

// Ping sends an ICMP echo request to dst (addressed by its real MAC, as
// if ARP already resolved).
func (h *Host) Ping(dst *Host, seq uint16) {
	icmp := ethernet.ICMPEcho{Type: ethernet.ICMPEchoRequest, ID: 1, Seq: seq, Payload: []byte("yanc-ping")}
	h.SendIPv4(dst.MAC, dst.IP, ethernet.ProtoICMP, icmp.Serialize())
}

// SendTCP sends a TCP segment to dst.
func (h *Host) SendTCP(dst *Host, srcPort, dstPort uint16, payload []byte) {
	seg := ethernet.TCP{SrcPort: srcPort, DstPort: dstPort, Flags: ethernet.TCPPsh | ethernet.TCPAck, Window: 65535, Payload: payload}
	h.SendIPv4(dst.MAC, dst.IP, ethernet.ProtoTCP, seg.Serialize())
}

// SendARPRequest broadcasts an ARP request for targetIP.
func (h *Host) SendARPRequest(targetIP ethernet.IP4) {
	arp := ethernet.ARP{
		Op:       ethernet.ARPRequest,
		SenderHW: h.MAC,
		SenderIP: h.IP,
		TargetIP: targetIP,
	}
	h.Send(ethernet.Frame{
		Dst:     ethernet.Broadcast,
		Src:     h.MAC,
		Type:    ethernet.TypeARP,
		Payload: arp.Serialize(),
	}.Serialize())
}

// ReceivedPing reports whether the host received an ICMP echo request
// with the given sequence number.
func (h *Host) ReceivedPing(seq uint16) bool {
	for _, raw := range h.Received() {
		f, err := ethernet.DecodeFrame(raw)
		if err != nil || f.Type != ethernet.TypeIPv4 {
			continue
		}
		ip, err := ethernet.DecodeIPv4(f.Payload)
		if err != nil || ip.Protocol != ethernet.ProtoICMP {
			continue
		}
		ic, err := ethernet.DecodeICMPEcho(ip.Payload)
		if err == nil && ic.Seq == seq {
			return true
		}
	}
	return false
}
