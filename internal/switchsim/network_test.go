package switchsim

import (
	"net"
	"testing"
	"time"

	"yanc/internal/openflow"
)

func TestNetworkTopologyQueries(t *testing.T) {
	n, hosts := BuildLinear(3, openflow.Version10)
	if sw := n.SwitchByName("sw2"); sw == nil || sw.DPID != 2 {
		t.Fatalf("SwitchByName = %+v", sw)
	}
	if sw := n.SwitchByName("nope"); sw != nil {
		t.Fatal("phantom switch")
	}
	if got := n.Hosts(); len(got) != 3 || got[0] != hosts[0] {
		t.Fatalf("hosts = %v", got)
	}
	links := n.Links()
	if len(links) != 2 {
		t.Fatalf("links = %v", links)
	}
	// Canonical order: sw1/3 <-> sw2/2, then sw2/3 <-> sw3/2.
	if links[0] != [4]uint64{1, 3, 2, 2} || links[1] != [4]uint64{2, 3, 3, 2} {
		t.Fatalf("links = %v", links)
	}
	// PeerOf answers links, hosts, and unwired ports.
	if dpid, port, _, ok := n.PeerOf(1, 3); !ok || dpid != 2 || port != 2 {
		t.Fatalf("PeerOf link = %d %d %v", dpid, port, ok)
	}
	if _, _, h, ok := n.PeerOf(1, 1); !ok || h != hosts[0] {
		t.Fatalf("PeerOf host = %v %v", h, ok)
	}
	if _, _, _, ok := n.PeerOf(1, 2); ok {
		t.Fatal("PeerOf free port should be false")
	}
	// Attachment of hosts.
	if dpid, port := hosts[2].Attachment(); dpid != 3 || port != 1 {
		t.Fatalf("attachment = %d %d", dpid, port)
	}
}

func TestNetworkWiringErrors(t *testing.T) {
	n, _ := BuildLinear(2, openflow.Version10)
	// Port already linked.
	if err := n.Link(1, 3, 2, 2); err == nil {
		t.Error("double link allowed")
	}
	// Port has a host.
	if err := n.Link(1, 1, 2, 3); err == nil {
		t.Error("link over host allowed")
	}
	h := NewHost("hx", HostAddr(99))
	if err := n.AttachHost(h, 1, 3); err == nil {
		t.Error("host over link allowed")
	}
	if err := n.AttachHost(h, 99, 1); err == nil {
		t.Error("host on missing switch allowed")
	}
}

func TestTableModify(t *testing.T) {
	tab := NewTable()
	m1, _ := openflow.ParseMatch("dl_type=0x0800,nw_proto=6")
	m2, _ := openflow.ParseMatch("dl_type=0x0806")
	tab.Add(&FlowEntry{Match: m1, Priority: 10, Actions: []openflow.Action{openflow.Output(1)}})
	tab.Add(&FlowEntry{Match: m2, Priority: 20, Actions: []openflow.Action{openflow.Output(1)}})
	// Non-strict modify with a covering match hits only the covered one.
	cover, _ := openflow.ParseMatch("dl_type=0x0800")
	if got := tab.Modify(cover, []openflow.Action{openflow.Output(9)}); got != 1 {
		t.Fatalf("modify touched %d", got)
	}
	for _, e := range tab.Entries() {
		if e.Match.Equal(m1) && e.Actions[0].Port != 9 {
			t.Error("modify did not apply")
		}
		if e.Match.Equal(m2) && e.Actions[0].Port != 1 {
			t.Error("modify over-applied")
		}
	}
	// Strict modify needs the exact identity.
	if got := tab.ModifyStrict(m2, 19, []openflow.Action{openflow.Output(5)}); got != 0 {
		t.Fatalf("strict with wrong priority modified %d", got)
	}
	if got := tab.ModifyStrict(m2, 20, []openflow.Action{openflow.Output(5)}); got != 1 {
		t.Fatalf("strict modified %d", got)
	}
}

func TestFlowModModifyCommandsViaSwitch(t *testing.T) {
	sw := NewSwitch(1, "sw1", openflow.Version10)
	sw.AddPort(1, "p1")
	m, _ := openflow.ParseMatch("in_port=1")
	add := &openflow.FlowMod{Command: openflow.FlowAdd, Match: m, Priority: 5,
		BufferID: openflow.NoBuffer, Actions: []openflow.Action{openflow.Output(2)}}
	if err := sw.FlowMod(add); err != nil {
		t.Fatal(err)
	}
	if sw.FlowModCount() != 1 {
		t.Errorf("flowmod count = %d", sw.FlowModCount())
	}
	mod := &openflow.FlowMod{Command: openflow.FlowModifyStrict, Match: m, Priority: 5,
		BufferID: openflow.NoBuffer, Actions: []openflow.Action{openflow.Output(7)}}
	if err := sw.FlowMod(mod); err != nil {
		t.Fatal(err)
	}
	stats := sw.FlowStats(openflow.Match{})
	if len(stats) != 1 || stats[0].Actions[0].Port != 7 {
		t.Fatalf("after modify = %+v", stats)
	}
	// Unknown command errors.
	if err := sw.FlowMod(&openflow.FlowMod{Command: 99}); err == nil {
		t.Error("unknown command accepted")
	}
	// Out-of-range table errors.
	if err := sw.FlowMod(&openflow.FlowMod{Command: openflow.FlowAdd, TableID: 9}); err == nil {
		t.Error("bad table accepted")
	}
}

func TestPortStatsForFiltering(t *testing.T) {
	n := NewNetwork()
	n.AddSwitch(1, "sw1", openflow.Version10, 3)
	h1 := NewHost("h1", HostAddr(1))
	h2 := NewHost("h2", HostAddr(2))
	_ = n.AttachHost(h1, 1, 1)
	_ = n.AttachHost(h2, 1, 2)
	sw := n.Switch(1)
	if err := sw.FlowMod(&openflow.FlowMod{Command: openflow.FlowAdd,
		BufferID: openflow.NoBuffer, Actions: []openflow.Action{openflow.Output(2)}}); err != nil {
		t.Fatal(err)
	}
	h1.Ping(h2, 1)
	all := sw.PortStatsFor(openflow.PortAny)
	if len(all) != 3 {
		t.Fatalf("all ports = %d", len(all))
	}
	one := sw.PortStatsFor(2)
	if len(one) != 1 || one[0].PortNo != 2 || one[0].TxPackets != 1 {
		t.Fatalf("port 2 stats = %+v", one)
	}
	if got := sw.PortStatsFor(99); len(got) != 0 {
		t.Fatalf("missing port stats = %+v", got)
	}
}

func TestHostHelpers(t *testing.T) {
	n := NewNetwork()
	n.AddSwitch(1, "sw1", openflow.Version10, 2)
	h1 := NewHost("h1", HostAddr(1))
	h2 := NewHost("h2", HostAddr(2))
	_ = n.AttachHost(h1, 1, 1)
	_ = n.AttachHost(h2, 1, 2)
	sw := n.Switch(1)
	if err := sw.FlowMod(&openflow.FlowMod{Command: openflow.FlowAdd,
		BufferID: openflow.NoBuffer, Actions: []openflow.Action{openflow.Output(openflow.PortFlood)}}); err != nil {
		t.Fatal(err)
	}
	h1.SendARPRequest(h2.IP)
	if h2.RxCount() != 1 {
		t.Fatalf("arp rx = %d", h2.RxCount())
	}
	h2.ClearReceived()
	if h2.RxCount() != 0 {
		t.Fatal("clear failed")
	}
	// WaitFor with a pre-satisfied predicate returns immediately.
	if !h2.WaitFor(func([][]byte) bool { return true }, time.Millisecond) {
		t.Fatal("pre-satisfied WaitFor failed")
	}
	// And times out when never satisfied.
	if h2.WaitFor(func([][]byte) bool { return false }, 10*time.Millisecond) {
		t.Fatal("WaitFor should have timed out")
	}
}

func TestDialAgainstTCPController(t *testing.T) {
	// Dial covers the reconnect entry point used by ofswitchd.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	sw := NewSwitch(1, "sw1", openflow.Version10)
	sw.AddPort(1, "p1")
	done := make(chan error, 1)
	go func() { done <- sw.Dial(ln.Addr().String()) }()
	var ctrlConn net.Conn
	select {
	case ctrlConn = <-accepted:
	case <-time.After(2 * time.Second):
		t.Fatal("no connection")
	}
	conn := openflow.NewConn(ctrlConn)
	features, err := conn.HandshakeController(openflow.Version13)
	if err != nil {
		t.Fatal(err)
	}
	if features.DatapathID != 1 {
		t.Fatalf("features = %+v", features)
	}
	ctrlConn.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("dial returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("dial did not return after close")
	}
}
