// Package switchsim implements a simulated OpenFlow switch dataplane and
// the network fabric connecting switches and hosts. It stands in for the
// hardware switches the paper's prototype controlled: it keeps real flow
// tables with priorities, wildcards, and counters, generates packet-in
// messages on table misses, applies action lists to real Ethernet frames,
// and speaks the OpenFlow wire protocol (1.0 or 1.3) to whatever driver
// connects to it.
package switchsim

import (
	"sort"
	"time"

	"yanc/internal/openflow"
)

// FlowEntry is one installed flow-table entry with its counters.
type FlowEntry struct {
	Match       openflow.Match
	Priority    uint16
	Actions     []openflow.Action
	Cookie      uint64
	IdleTimeout uint16
	HardTimeout uint16
	Flags       uint16

	Packets  uint64
	Bytes    uint64
	Created  time.Time
	LastUsed time.Time
}

// matches is the strict identity used by modify/delete-strict.
func (e *FlowEntry) sameIdentity(m openflow.Match, priority uint16) bool {
	return e.Priority == priority && e.Match.Equal(m)
}

// Table is a single flow table: entries ordered by descending priority,
// ties broken by insertion order (first inserted wins), which is how
// hardware tables behave for overlapping same-priority entries.
type Table struct {
	entries []*FlowEntry
	seq     uint64
	order   map[*FlowEntry]uint64
}

// NewTable returns an empty flow table.
func NewTable() *Table {
	return &Table{order: make(map[*FlowEntry]uint64)}
}

// Len returns the number of installed entries.
func (t *Table) Len() int { return len(t.entries) }

// Entries returns the entries in match order (descending priority).
func (t *Table) Entries() []*FlowEntry {
	out := make([]*FlowEntry, len(t.entries))
	copy(out, t.entries)
	return out
}

func (t *Table) resort() {
	sort.SliceStable(t.entries, func(i, j int) bool {
		if t.entries[i].Priority != t.entries[j].Priority {
			return t.entries[i].Priority > t.entries[j].Priority
		}
		return t.order[t.entries[i]] < t.order[t.entries[j]]
	})
}

// Add installs an entry, replacing an entry with identical match and
// priority (OpenFlow add-overlap semantics with OFPFF_CHECK_OVERLAP off).
func (t *Table) Add(e *FlowEntry) {
	for i, ex := range t.entries {
		if ex.sameIdentity(e.Match, e.Priority) {
			t.seq++
			t.order[e] = t.order[ex]
			delete(t.order, ex)
			t.entries[i] = e
			return
		}
	}
	t.seq++
	t.order[e] = t.seq
	t.entries = append(t.entries, e)
	t.resort()
}

// Modify updates the actions of all entries covered by m (non-strict
// flow-modify). Returns the number of entries changed.
func (t *Table) Modify(m openflow.Match, actions []openflow.Action) int {
	n := 0
	for _, e := range t.entries {
		if m.Covers(e.Match) {
			e.Actions = append([]openflow.Action(nil), actions...)
			n++
		}
	}
	return n
}

// ModifyStrict updates the entry with exactly the given match+priority.
func (t *Table) ModifyStrict(m openflow.Match, priority uint16, actions []openflow.Action) int {
	for _, e := range t.entries {
		if e.sameIdentity(m, priority) {
			e.Actions = append([]openflow.Action(nil), actions...)
			return 1
		}
	}
	return 0
}

// Delete removes all entries covered by m (non-strict). outPort, when not
// PortAny, further restricts deletion to entries with an output action to
// that port. Removed entries are returned so the caller can emit
// flow-removed notifications.
func (t *Table) Delete(m openflow.Match, outPort uint32) []*FlowEntry {
	var removed []*FlowEntry
	kept := t.entries[:0]
	for _, e := range t.entries {
		if m.Covers(e.Match) && outputsTo(e, outPort) {
			removed = append(removed, e)
			delete(t.order, e)
			continue
		}
		kept = append(kept, e)
	}
	t.entries = kept
	return removed
}

// DeleteStrict removes the entry with exactly the given match+priority.
func (t *Table) DeleteStrict(m openflow.Match, priority uint16, outPort uint32) []*FlowEntry {
	for i, e := range t.entries {
		if e.sameIdentity(m, priority) && outputsTo(e, outPort) {
			t.entries = append(t.entries[:i], t.entries[i+1:]...)
			delete(t.order, e)
			return []*FlowEntry{e}
		}
	}
	return nil
}

func outputsTo(e *FlowEntry, port uint32) bool {
	if port == openflow.PortAny {
		return true
	}
	for _, a := range e.Actions {
		if a.Type == openflow.ActOutput && a.Port == port {
			return true
		}
	}
	return false
}

// Lookup returns the highest-priority entry matching the packet, or nil.
func (t *Table) Lookup(pf *openflow.PacketFields) *FlowEntry {
	for _, e := range t.entries {
		if e.Match.MatchesPacket(pf) {
			return e
		}
	}
	return nil
}

// Expire removes entries whose idle or hard timeout has elapsed at time
// now, returning them paired with the removal reason.
func (t *Table) Expire(now time.Time) []ExpiredFlow {
	var expired []ExpiredFlow
	kept := t.entries[:0]
	for _, e := range t.entries {
		switch {
		case e.HardTimeout > 0 && now.Sub(e.Created) >= time.Duration(e.HardTimeout)*time.Second:
			expired = append(expired, ExpiredFlow{Entry: e, Reason: openflow.RemovedHardTimeout})
			delete(t.order, e)
		case e.IdleTimeout > 0 && now.Sub(e.LastUsed) >= time.Duration(e.IdleTimeout)*time.Second:
			expired = append(expired, ExpiredFlow{Entry: e, Reason: openflow.RemovedIdleTimeout})
			delete(t.order, e)
		default:
			kept = append(kept, e)
		}
	}
	t.entries = kept
	return expired
}

// ExpiredFlow pairs a removed entry with its removal reason.
type ExpiredFlow struct {
	Entry  *FlowEntry
	Reason uint8
}
