package switchsim

import (
	"errors"
	"io"
	"net"
	"time"

	"yanc/internal/backoff"
	"yanc/internal/openflow"
)

// ServeController runs the switch's side of an OpenFlow control channel:
// handshake, then a message loop applying flow-mods and packet-outs and
// answering echoes, barriers, and stats requests. Asynchronous events
// (packet-in, flow-removed, port-status) flow the other way until the
// connection closes. It blocks until the channel dies.
//
// This is what a yanc driver talks to, byte-for-byte the same dialog a
// hardware OpenFlow switch would hold.
func (sw *Switch) ServeController(rw io.ReadWriter) error {
	return sw.ServeControllerReady(rw, nil)
}

// ServeControllerReady is ServeController with a hook: ready (if
// non-nil) is called once, after the handshake completes — the moment a
// reconnect loop should reset its backoff schedule.
func (sw *Switch) ServeControllerReady(rw io.ReadWriter, ready func()) error {
	conn := openflow.NewConn(rw)
	// Asynchronous events are queued and written by a dedicated goroutine
	// so a slow (or synchronous, e.g. net.Pipe) control channel never
	// stalls the dataplane; on overflow the switch drops events, as
	// hardware does. Handlers are installed BEFORE the handshake so a
	// table miss racing connection setup is queued rather than lost; the
	// writer starts only after the handshake so queued events cannot
	// interleave with the version negotiation.
	events := make(chan openflow.Message, 1024)
	quit := make(chan struct{})
	writerDone := make(chan struct{})
	enqueue := func(m openflow.Message) {
		select {
		case events <- m:
		default:
		}
	}
	// The events channel is never closed: a dataplane goroutine may still
	// be inside a handler when the serve loop exits, and sending on a
	// buffered open channel is always safe. The writer is stopped via
	// quit instead.
	defer func() {
		sw.SetHandlers(nil, nil, nil)
		close(quit)
		<-writerDone
	}()
	sw.SetHandlers(
		func(pi *openflow.PacketIn) { enqueue(pi) },
		func(fr *openflow.FlowRemoved) { enqueue(fr) },
		func(reason uint8, info openflow.PortInfo) {
			enqueue(&openflow.PortStatus{Reason: reason, Port: info})
		},
	)
	if err := conn.HandshakeSwitch(sw.Version, sw.Features()); err != nil {
		close(writerDone)
		sw.SetHandlers(nil, nil, nil)
		return err
	}
	if ready != nil {
		ready()
	}
	go func() {
		defer close(writerDone)
		for {
			select {
			case m := <-events:
				if err := conn.Write(m); err != nil {
					return
				}
			case <-quit:
				return
			}
		}
	}()
	for {
		msg, err := conn.Read()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrClosedPipe) {
				return nil
			}
			return err
		}
		switch m := msg.(type) {
		case *openflow.EchoRequest:
			if err := conn.Write(&openflow.EchoReply{Header: openflow.Header{Xid: m.Xid}, Data: m.Data}); err != nil {
				return err
			}
		case *openflow.FlowMod:
			if err := sw.FlowMod(m); err != nil {
				_ = conn.Write(&openflow.Error{Header: openflow.Header{Xid: m.Xid}, Code: 0x0003_0000})
			}
		case *openflow.PacketOut:
			sw.PacketOut(m)
		case *openflow.PortMod:
			if p, ok := sw.PortCounters(m.PortNo); ok {
				newConfig := p.Config&^m.Mask | m.Config&m.Mask
				_ = sw.SetPortConfig(m.PortNo, newConfig)
			}
		case *openflow.BarrierRequest:
			if err := conn.Write(&openflow.BarrierReply{Header: openflow.Header{Xid: m.Xid}}); err != nil {
				return err
			}
		case *openflow.StatsRequest:
			rep := &openflow.StatsReply{Header: openflow.Header{Xid: m.Xid}, Kind: m.Kind}
			switch m.Kind {
			case openflow.StatsFlow:
				rep.Flows = sw.FlowStats(m.Match)
			case openflow.StatsPort:
				rep.Ports = sw.PortStatsFor(m.Port)
			case openflow.StatsPortDesc:
				rep.PortDescs = sw.Ports()
			}
			if err := conn.Write(rep); err != nil {
				return err
			}
		case *openflow.FeaturesRequest:
			reply := sw.Features()
			reply.Xid = m.Xid
			if conn.Version() >= openflow.Version13 {
				reply.Ports = nil
			}
			if err := conn.Write(reply); err != nil {
				return err
			}
		default:
			// Hello retransmits, echo replies, and anything else are
			// ignored, as a tolerant datapath would.
		}
	}
}

// Dial connects the switch to a controller at addr (TCP) and serves the
// control channel until it closes.
func (sw *Switch) Dial(addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer c.Close()
	return sw.ServeController(c)
}

// DialRetry keeps the switch connected to the controller at addr for as
// long as stop stays open, redialing with capped exponential backoff on
// every failure — the discipline a real datapath follows when its
// controller goes away. A completed handshake resets the schedule, so a
// controller that flaps after a long outage is re-approached quickly.
// Failures are reported through logf (which may be nil).
// DialRetryStaggered is DialRetry with a deterministic initial delay
// derived from the DPID, spread uniformly over [0, maxStagger). A mass
// (re)connect of thousands of switches — a city block losing power and
// coming back — must not land on the controller as one thundering herd:
// the stagger spreads the dials so the listener's accept queue and the
// driver's handshake backlog absorb them without spurious timeouts.
// The delay is a pure function of the DPID, so reconnect schedules stay
// reproducible run to run.
func (sw *Switch) DialRetryStaggered(addr string, pol backoff.Policy, maxStagger time.Duration, stop <-chan struct{}, logf func(format string, args ...any)) {
	if maxStagger > 0 {
		// Knuth multiplicative hash decorrelates consecutive DPIDs.
		delay := time.Duration((sw.DPID * 2654435761) % uint64(maxStagger))
		select {
		case <-stop:
			return
		case <-time.After(delay): //yancvet:wallclock connect stagger paces a real TCP listener
		}
	}
	sw.DialRetry(addr, pol, stop, logf)
}

func (sw *Switch) DialRetry(addr string, pol backoff.Policy, stop <-chan struct{}, logf func(format string, args ...any)) {
	bo := backoff.New(pol)
	for {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			err = sw.ServeControllerReady(c, bo.Reset)
			c.Close()
		}
		if err != nil && logf != nil {
			logf("switchsim: %s: control channel: %v", sw.Name, err)
		}
		select {
		case <-stop:
			return
		case <-time.After(bo.Next()): //yancvet:wallclock reconnect backoff paces a real TCP listener
		}
	}
}
