package switchsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"yanc/internal/ethernet"
	"yanc/internal/openflow"
)

// missSendLen is how much of a missed packet rides inside a packet-in when
// the packet is buffered (OpenFlow's default miss_send_len).
const missSendLen = 128

// maxBuffers bounds the switch's packet-in buffer pool.
const maxBuffers = 256

// Port is one switch port. Link state and configuration mirror the bits
// the yanc file system exposes as config.port_down / state files.
type Port struct {
	No     uint32
	HWAddr ethernet.MAC
	Name   string
	Config uint32
	State  uint32
	Speed  uint32

	RxPackets uint64
	TxPackets uint64
	RxBytes   uint64
	TxBytes   uint64
	RxDropped uint64
	TxDropped uint64
}

func (p *Port) down() bool { return p.Config&openflow.PortConfigDown != 0 }

// PortStatusFn is notified when a port's config or state changes.
type PortStatusFn func(reason uint8, info openflow.PortInfo)

// PacketInFn receives packet-in messages headed for the controller.
type PacketInFn func(pi *openflow.PacketIn)

// FlowRemovedFn receives flow-removed notifications.
type FlowRemovedFn func(fr *openflow.FlowRemoved)

// OutputFn carries a frame leaving the switch on a physical port; the
// Network wires this to the peer port or host.
type OutputFn func(sw *Switch, port uint32, frame []byte, hops int)

// Switch is one simulated OpenFlow datapath.
type Switch struct {
	DPID    uint64
	Name    string
	NTables uint8
	Version uint8 // protocol version this switch speaks

	mu      sync.Mutex
	tables  []*Table
	ports   map[uint32]*Port
	buffers map[uint32][]byte
	nextBuf uint32
	started time.Time
	now     func() time.Time

	onPacketIn    PacketInFn
	onFlowRemoved FlowRemovedFn
	onPortStatus  PortStatusFn
	onFlowMod     func(fm *openflow.FlowMod)
	output        OutputFn

	flowModCount atomic.Uint64
}

// NewSwitch creates a datapath with the given identity speaking the given
// OpenFlow version.
func NewSwitch(dpid uint64, name string, version uint8) *Switch {
	sw := &Switch{
		DPID:    dpid,
		Name:    name,
		NTables: 1,
		Version: version,
		tables:  []*Table{NewTable()},
		ports:   make(map[uint32]*Port),
		buffers: make(map[uint32][]byte),
		now:     time.Now,
	}
	sw.started = sw.now()
	return sw
}

// SetClock replaces the time source for deterministic timeout tests.
func (sw *Switch) SetClock(clock func() time.Time) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.now = clock
}

// SetHandlers installs the controller-facing callbacks.
func (sw *Switch) SetHandlers(pi PacketInFn, fr FlowRemovedFn, ps PortStatusFn) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.onPacketIn = pi
	sw.onFlowRemoved = fr
	sw.onPortStatus = ps
}

// SetFlowModHook installs a callback invoked after every successfully
// applied flow-mod, with the message that was applied. Load harnesses
// use this as the "installed" timestamp for create→installed latency;
// it fires on the control-channel goroutine, so keep it cheap.
func (sw *Switch) SetFlowModHook(fn func(fm *openflow.FlowMod)) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.onFlowMod = fn
}

// SetOutput installs the dataplane egress hook.
func (sw *Switch) SetOutput(fn OutputFn) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.output = fn
}

// AddPort creates a port. Port numbers are assigned by the caller.
func (sw *Switch) AddPort(no uint32, name string) *Port {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	p := &Port{
		No:     no,
		HWAddr: ethernet.MACFromUint64(sw.DPID<<8 | uint64(no)),
		Name:   name,
		Speed:  10_000_000, // 10 Gbps in kbps
	}
	sw.ports[no] = p
	return p
}

// Ports returns the ports as PortInfo, sorted by number.
func (sw *Switch) Ports() []openflow.PortInfo {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.portInfosLocked()
}

func (sw *Switch) portInfosLocked() []openflow.PortInfo {
	infos := make([]openflow.PortInfo, 0, len(sw.ports))
	for _, p := range sw.ports {
		infos = append(infos, openflow.PortInfo{
			No: p.No, HWAddr: p.HWAddr, Name: p.Name,
			Config: p.Config, State: p.State, CurrSpeed: p.Speed,
		})
	}
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j-1].No > infos[j].No; j-- {
			infos[j-1], infos[j] = infos[j], infos[j-1]
		}
	}
	return infos
}

// Features builds the switch's features reply.
func (sw *Switch) Features() *openflow.FeaturesReply {
	return &openflow.FeaturesReply{
		DatapathID: sw.DPID,
		NBuffers:   maxBuffers,
		NTables:    sw.NTables,
		Ports:      sw.Ports(),
	}
}

// SetPortConfig updates a port's config bits (e.g. bringing it down) and
// emits a port-status notification, as a real switch would after a
// port-mod.
func (sw *Switch) SetPortConfig(no uint32, config uint32) error {
	sw.mu.Lock()
	p, ok := sw.ports[no]
	if !ok {
		sw.mu.Unlock()
		return fmt.Errorf("switchsim: %s has no port %d", sw.Name, no)
	}
	p.Config = config
	if config&openflow.PortConfigDown != 0 {
		p.State |= openflow.PortStateLinkDown
	} else {
		p.State &^= openflow.PortStateLinkDown
	}
	info := openflow.PortInfo{No: p.No, HWAddr: p.HWAddr, Name: p.Name, Config: p.Config, State: p.State, CurrSpeed: p.Speed}
	cb := sw.onPortStatus
	sw.mu.Unlock()
	if cb != nil {
		cb(openflow.PortModified, info)
	}
	return nil
}

// FlowModCount reports how many flow-mod messages the switch has applied
// — the "hardware programming operations" count benchmarks compare.
func (sw *Switch) FlowModCount() uint64 { return sw.flowModCount.Load() }

// FlowMod applies a flow-mod message to the tables.
func (sw *Switch) FlowMod(fm *openflow.FlowMod) error {
	sw.flowModCount.Add(1)
	sw.mu.Lock()
	if int(fm.TableID) >= len(sw.tables) {
		sw.mu.Unlock()
		return fmt.Errorf("switchsim: table %d out of range", fm.TableID)
	}
	t := sw.tables[fm.TableID]
	var removed []*FlowEntry
	switch fm.Command {
	case openflow.FlowAdd:
		now := sw.now()
		t.Add(&FlowEntry{
			Match:       fm.Match,
			Priority:    fm.Priority,
			Actions:     append([]openflow.Action(nil), fm.Actions...),
			Cookie:      fm.Cookie,
			IdleTimeout: fm.IdleTimeout,
			HardTimeout: fm.HardTimeout,
			Flags:       fm.Flags,
			Created:     now,
			LastUsed:    now,
		})
	case openflow.FlowModify:
		t.Modify(fm.Match, fm.Actions)
	case openflow.FlowModifyStrict:
		t.ModifyStrict(fm.Match, fm.Priority, fm.Actions)
	case openflow.FlowDelete:
		removed = t.Delete(fm.Match, fm.OutPort)
	case openflow.FlowDeleteStrict:
		removed = t.DeleteStrict(fm.Match, fm.Priority, fm.OutPort)
	default:
		sw.mu.Unlock()
		return fmt.Errorf("switchsim: flow-mod command %d", fm.Command)
	}
	frCB := sw.onFlowRemoved
	fmCB := sw.onFlowMod
	now := sw.now()
	sw.mu.Unlock()

	if fmCB != nil {
		fmCB(fm)
	}
	// Buffered packet attached to a flow add: release it through the new
	// tables.
	if fm.Command == openflow.FlowAdd && fm.BufferID != openflow.NoBuffer {
		if data, inPort, ok := sw.takeBuffer(fm.BufferID); ok {
			sw.Ingress(inPort, data)
		}
	}
	if frCB != nil {
		for _, e := range removed {
			if e.Flags&openflow.FlagSendFlowRem != 0 {
				frCB(flowRemovedMsg(e, openflow.RemovedDelete, now))
			}
		}
	}
	return nil
}

func flowRemovedMsg(e *FlowEntry, reason uint8, now time.Time) *openflow.FlowRemoved {
	return &openflow.FlowRemoved{
		Match:       e.Match,
		Cookie:      e.Cookie,
		Priority:    e.Priority,
		Reason:      reason,
		DurationSec: uint32(now.Sub(e.Created) / time.Second),
		PacketCount: e.Packets,
		ByteCount:   e.Bytes,
	}
}

// Tick advances flow timeouts to time now.
func (sw *Switch) Tick(now time.Time) {
	sw.mu.Lock()
	var expired []ExpiredFlow
	for _, t := range sw.tables {
		expired = append(expired, t.Expire(now)...)
	}
	frCB := sw.onFlowRemoved
	sw.mu.Unlock()
	if frCB != nil {
		for _, ex := range expired {
			if ex.Entry.Flags&openflow.FlagSendFlowRem != 0 {
				frCB(flowRemovedMsg(ex.Entry, ex.Reason, now))
			}
		}
	}
}

// FlowCount returns the number of entries in table 0.
func (sw *Switch) FlowCount() int {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.tables[0].Len()
}

// FlowStats answers a flow-stats request.
func (sw *Switch) FlowStats(m openflow.Match) []openflow.FlowStats {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	now := sw.now()
	var out []openflow.FlowStats
	for ti, t := range sw.tables {
		for _, e := range t.Entries() {
			if !m.Covers(e.Match) {
				continue
			}
			out = append(out, openflow.FlowStats{
				TableID:     uint8(ti),
				Match:       e.Match,
				Priority:    e.Priority,
				Cookie:      e.Cookie,
				DurationSec: uint32(now.Sub(e.Created) / time.Second),
				PacketCount: e.Packets,
				ByteCount:   e.Bytes,
				Actions:     append([]openflow.Action(nil), e.Actions...),
			})
		}
	}
	return out
}

// PortStatsFor answers a port-stats request; port PortAny returns all.
func (sw *Switch) PortStatsFor(port uint32) []openflow.PortStats {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	var out []openflow.PortStats
	for _, info := range sw.portInfosLocked() {
		p := sw.ports[info.No]
		if port != openflow.PortAny && p.No != port {
			continue
		}
		out = append(out, openflow.PortStats{
			PortNo:    p.No,
			RxPackets: p.RxPackets,
			TxPackets: p.TxPackets,
			RxBytes:   p.RxBytes,
			TxBytes:   p.TxBytes,
			RxDropped: p.RxDropped,
			TxDropped: p.TxDropped,
		})
	}
	return out
}

// PortCounters returns a snapshot of one port's counters.
func (sw *Switch) PortCounters(no uint32) (Port, bool) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	p, ok := sw.ports[no]
	if !ok {
		return Port{}, false
	}
	return *p, true
}

func (sw *Switch) takeBuffer(id uint32) (data []byte, inPort uint32, ok bool) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	buf, ok := sw.buffers[id]
	if !ok {
		return nil, 0, false
	}
	delete(sw.buffers, id)
	// The in-port rides in the first 4 bytes of the stored record.
	inPort = uint32(buf[0])<<24 | uint32(buf[1])<<16 | uint32(buf[2])<<8 | uint32(buf[3])
	return buf[4:], inPort, true
}

func (sw *Switch) storeBuffer(inPort uint32, frame []byte) uint32 {
	if len(sw.buffers) >= maxBuffers {
		return openflow.NoBuffer
	}
	sw.nextBuf++
	id := sw.nextBuf
	rec := make([]byte, 4+len(frame))
	rec[0], rec[1], rec[2], rec[3] = byte(inPort>>24), byte(inPort>>16), byte(inPort>>8), byte(inPort)
	copy(rec[4:], frame)
	sw.buffers[id] = rec
	return id
}

// Ingress processes a frame arriving on a port: table lookup, counter
// update, action application, and egress/packet-in.
func (sw *Switch) Ingress(inPort uint32, frame []byte) {
	sw.IngressHops(inPort, frame, 0)
}

// IngressHops is Ingress with an explicit hop budget, used by the Network
// to bound flood loops in cyclic topologies.
func (sw *Switch) IngressHops(inPort uint32, frame []byte, hops int) {
	sw.mu.Lock()
	p, ok := sw.ports[inPort]
	if !ok || p.down() || p.Config&openflow.PortConfigNoRx != 0 {
		if ok {
			p.RxDropped++
		}
		sw.mu.Unlock()
		return
	}
	p.RxPackets++
	p.RxBytes += uint64(len(frame))
	pf, err := openflow.ExtractFields(frame, inPort)
	if err != nil {
		p.RxDropped++
		sw.mu.Unlock()
		return
	}
	entry := sw.tables[0].Lookup(&pf)
	if entry == nil {
		// Table miss: buffer the packet and notify the controller.
		bufID := sw.storeBuffer(inPort, frame)
		data := frame
		totalLen := uint16(len(frame))
		if bufID != openflow.NoBuffer && len(frame) > missSendLen {
			data = frame[:missSendLen]
		}
		cb := sw.onPacketIn
		sw.mu.Unlock()
		if cb != nil {
			cb(&openflow.PacketIn{
				BufferID: bufID,
				TotalLen: totalLen,
				InPort:   inPort,
				Reason:   openflow.ReasonNoMatch,
				Data:     append([]byte(nil), data...),
			})
		}
		return
	}
	entry.Packets++
	entry.Bytes += uint64(len(frame))
	entry.LastUsed = sw.now()
	actions := append([]openflow.Action(nil), entry.Actions...)
	sw.mu.Unlock()
	sw.runActions(inPort, frame, actions, hops)
}

// PacketOut injects a controller-originated packet.
func (sw *Switch) PacketOut(po *openflow.PacketOut) {
	data := po.Data
	inPort := po.InPort
	if po.BufferID != openflow.NoBuffer {
		if buf, bufPort, ok := sw.takeBuffer(po.BufferID); ok {
			data = buf
			if inPort == openflow.PortController || inPort == openflow.PortAny {
				inPort = bufPort
			}
		}
	}
	if len(data) == 0 {
		return
	}
	sw.runActions(inPort, data, po.Actions, 0)
}

// runActions applies the action list and emits frames. Must be called
// without the lock held.
func (sw *Switch) runActions(inPort uint32, frame []byte, actions []openflow.Action, hops int) {
	out, ports, err := openflow.Apply(actions, frame)
	if err != nil {
		return
	}
	for _, port := range ports {
		switch port {
		case openflow.PortFlood, openflow.PortAll:
			sw.mu.Lock()
			var targets []uint32
			for no, p := range sw.ports {
				if no == inPort && port == openflow.PortFlood {
					continue
				}
				if p.down() || p.Config&openflow.PortConfigNoFwd != 0 {
					continue
				}
				targets = append(targets, no)
			}
			sw.mu.Unlock()
			for _, t := range targets {
				sw.egress(t, out, hops)
			}
		case openflow.PortController:
			sw.mu.Lock()
			cb := sw.onPacketIn
			sw.mu.Unlock()
			if cb != nil {
				cb(&openflow.PacketIn{
					BufferID: openflow.NoBuffer,
					TotalLen: uint16(len(out)),
					InPort:   inPort,
					Reason:   openflow.ReasonAction,
					Data:     append([]byte(nil), out...),
				})
			}
		case openflow.PortInPort:
			sw.egress(inPort, out, hops)
		default:
			sw.egress(port, out, hops)
		}
	}
}

// egress transmits a frame on a physical port.
func (sw *Switch) egress(port uint32, frame []byte, hops int) {
	sw.mu.Lock()
	p, ok := sw.ports[port]
	if !ok || p.down() || p.Config&openflow.PortConfigNoFwd != 0 {
		if ok {
			p.TxDropped++
		}
		sw.mu.Unlock()
		return
	}
	p.TxPackets++
	p.TxBytes += uint64(len(frame))
	out := sw.output
	sw.mu.Unlock()
	if out != nil {
		out(sw, port, frame, hops)
	}
}
