package namespace

import (
	"errors"
	"strings"
	"testing"
	"time"

	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

func TestGroupMaxOps(t *testing.T) {
	g := NewGroup("apps", Limits{MaxOps: 3})
	for i := 0; i < 3; i++ {
		if err := g.Charge("write", 10); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Charge("write", 10); !errors.Is(err, ErrLimit) {
		t.Errorf("4th op = %v", err)
	}
	u := g.Usage()
	if u.Ops != 3 || u.Bytes != 30 || u.Denied != 1 || u.PerOp["write"] != 3 {
		t.Errorf("usage = %+v", u)
	}
}

func TestGroupMaxBytes(t *testing.T) {
	g := NewGroup("apps", Limits{MaxBytes: 100})
	if err := g.Charge("write", 90); err != nil {
		t.Fatal(err)
	}
	if err := g.Charge("write", 20); !errors.Is(err, ErrLimit) {
		t.Errorf("over-bytes = %v", err)
	}
	if err := g.Charge("write", 10); err != nil {
		t.Errorf("exact fit = %v", err)
	}
}

func TestGroupRateLimit(t *testing.T) {
	g := NewGroup("apps", Limits{OpsPerSecond: 10, Burst: 2})
	now := time.Unix(0, 0)
	g.SetClock(func() time.Time { return now })
	if err := g.Charge("op", 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Charge("op", 0); err != nil {
		t.Fatal(err)
	}
	// Bucket empty.
	if err := g.Charge("op", 0); !errors.Is(err, ErrLimit) {
		t.Errorf("rate exceeded = %v", err)
	}
	// Refill after 100ms at 10/s = 1 token.
	now = now.Add(100 * time.Millisecond)
	if err := g.Charge("op", 0); err != nil {
		t.Errorf("after refill = %v", err)
	}
}

func TestGroupHierarchy(t *testing.T) {
	parent := NewGroup("all", Limits{MaxOps: 5})
	a := parent.NewChild("a", Limits{})
	b := parent.NewChild("b", Limits{MaxOps: 2})
	if a.Name() != "all/a" {
		t.Errorf("name = %s", a.Name())
	}
	// b hits its own limit first.
	_ = b.Charge("x", 0)
	_ = b.Charge("x", 0)
	if err := b.Charge("x", 0); !errors.Is(err, ErrLimit) {
		t.Error("child limit not enforced")
	}
	// a inherits the parent's remaining budget (5-2=3).
	for i := 0; i < 3; i++ {
		if err := a.Charge("x", 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Charge("x", 0); !errors.Is(err, ErrLimit) {
		t.Error("parent limit not enforced through child")
	}
	if parent.Usage().Ops != 5 {
		t.Errorf("parent ops = %d", parent.Usage().Ops)
	}
}

func TestNamespaceEnterConfinesToView(t *testing.T) {
	y, err := yancfs.New()
	if err != nil {
		t.Fatal(err)
	}
	root := y.Root()
	if err := root.Mkdir("/views/tenant-a", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := yancfs.CreateSwitch(root, "/views/tenant-a", "vsw1"); err != nil {
		t.Fatal(err)
	}
	if _, err := yancfs.CreateSwitch(root, "/", "real1"); err != nil {
		t.Fatal(err)
	}
	// Grant the tenant write access inside its view.
	if err := root.Chown("/views/tenant-a/switches/vsw1/flows", 4001, 4001); err != nil {
		t.Fatal(err)
	}
	ns := Namespace{
		Name: "tenant-a-app",
		Cred: vfs.Cred{UID: 4001, GID: 4001},
		Root: "/views/tenant-a",
	}
	p, err := ns.Enter(y.VFS())
	if err != nil {
		t.Fatal(err)
	}
	// The app sees its view as the root.
	if !p.IsDir("/switches/vsw1") {
		t.Fatal("view switch invisible inside namespace")
	}
	// The real network does not exist for it.
	if p.Exists("/switches/real1") || p.Exists("/../switches/real1") {
		t.Fatal("namespace escaped to master region")
	}
	// It can operate inside its granted subtree.
	if err := p.Mkdir("/switches/vsw1/flows/f1", 0o755); err != nil {
		t.Fatalf("tenant flow mkdir: %v", err)
	}
}

func TestNamespaceWithGroupMetersVFSOps(t *testing.T) {
	y, err := yancfs.New()
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(y.VFS())
	g := m.CreateGroup("tenant", Limits{MaxOps: 4})
	p, err := m.Launch(Namespace{Name: "app", Cred: vfs.Root, Group: g})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Mkdir("/hosts/h1", 0o755); err != nil { // 1 op
		t.Fatal(err)
	}
	if err := p.WriteString("/hosts/h1/ip", "10.0.0.1"); err != nil { // open+write
		t.Fatal(err)
	}
	// Budget is exhausted mid-operation eventually.
	var lastErr error
	for i := 0; i < 10 && lastErr == nil; i++ {
		_, lastErr = p.ReadFile("/hosts/h1/ip")
	}
	if !errors.Is(lastErr, vfs.ErrQuota) {
		t.Errorf("expected quota error, got %v", lastErr)
	}
	if g.Usage().Ops == 0 || g.Usage().Denied == 0 {
		t.Errorf("usage = %+v", g.Usage())
	}
	if got := m.List(); len(got) != 1 || got[0] != "app" {
		t.Errorf("list = %v", got)
	}
	if _, ok := m.Of("app"); !ok {
		t.Error("Of failed")
	}
	if m.Group("tenant") != g {
		t.Error("group lookup failed")
	}
}

func TestEnterMissingRootFails(t *testing.T) {
	fs := vfs.New()
	_, err := Namespace{Name: "x", Root: "/nope"}.Enter(fs)
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestLaunchPublishesProcApps(t *testing.T) {
	fs := vfs.New()
	root := fs.RootProc()
	if err := root.MkdirAll("/.proc/apps", 0o555); err != nil {
		t.Fatal(err)
	}
	if err := root.MkdirAll("/view", 0o777); err != nil {
		t.Fatal(err)
	}

	m := NewManager(fs)
	g := m.CreateGroup("tenant", Limits{})
	p, err := m.Launch(Namespace{
		Name: "fw", Cred: vfs.Cred{UID: 7, GID: 8}, Root: "/view", Group: g,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteString("/state", "up"); err != nil {
		t.Fatal(err)
	}

	s, err := root.ReadString("/.proc/apps/fw")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"name fw", "uid 7", "gid 8", "root /view", "group tenant"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
	// Accounting is live: the write above must show up on re-read.
	if !strings.Contains(s, "op.write 1") {
		t.Fatalf("write not accounted:\n%s", s)
	}
	// The file is a metric, not writable state.
	if err := fs.Proc(vfs.Cred{UID: 7, GID: 8}).WriteString("/.proc/apps/fw", "x"); err == nil {
		t.Fatal("app overwrote its own proc file")
	}
}

func TestLaunchWithoutProcTreeIsFine(t *testing.T) {
	fs := vfs.New()
	m := NewManager(fs)
	if _, err := m.Launch(Namespace{Name: "bare", Cred: vfs.Root}); err != nil {
		t.Fatal(err)
	}
	if fs.RootProc().Exists("/.proc/apps/bare") {
		t.Fatal("proc file appeared without an installed tree")
	}
}
