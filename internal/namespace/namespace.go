// Package namespace reproduces the Linux isolation facilities yanc leans
// on (§5.3): mount-namespace-style rebinding of an application's root to
// a view subtree, credentials per application, and cgroup-style resource
// controllers that meter and limit the file-system operations and bytes
// an application group may consume.
package namespace

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"yanc/internal/vfs"
)

// ErrLimit is returned (wrapped in ErrQuota by the VFS) when a control
// group's limit is exhausted.
var ErrLimit = errors.New("namespace: resource limit exceeded")

// Limits configures a control group. Zero values mean unlimited.
type Limits struct {
	// MaxOps caps total operations over the group's lifetime.
	MaxOps uint64
	// MaxBytes caps total bytes read+written.
	MaxBytes uint64
	// OpsPerSecond rate-limits operations with a token bucket.
	OpsPerSecond float64
	// Burst is the bucket size for OpsPerSecond (default: one second's
	// worth).
	Burst float64
}

// Usage is a control group's consumption snapshot.
type Usage struct {
	Ops    uint64
	Bytes  uint64
	Denied uint64
	PerOp  map[string]uint64
}

// Group is a cgroup-like controller: processes attached to it share its
// accounting and limits. Groups form a hierarchy; usage propagates to
// ancestors, and every group in the chain must admit an operation.
type Group struct {
	name   string
	parent *Group

	mu     sync.Mutex
	limits Limits
	ops    uint64
	bytes  uint64
	denied uint64
	perOp  map[string]uint64
	tokens float64
	last   time.Time
	clock  func() time.Time
}

// NewGroup creates a root control group.
func NewGroup(name string, limits Limits) *Group {
	return newGroup(name, limits, nil)
}

func newGroup(name string, limits Limits, parent *Group) *Group {
	if limits.OpsPerSecond > 0 && limits.Burst == 0 {
		limits.Burst = limits.OpsPerSecond
	}
	return &Group{
		name:   name,
		parent: parent,
		limits: limits,
		perOp:  make(map[string]uint64),
		tokens: limits.Burst,
		clock:  time.Now,
	}
}

// NewChild creates a nested group; operations must satisfy both the
// child's and every ancestor's limits.
func (g *Group) NewChild(name string, limits Limits) *Group {
	return newGroup(g.name+"/"+name, limits, g)
}

// Name returns the group's hierarchical name.
func (g *Group) Name() string { return g.name }

// SetClock replaces the rate-limiter clock (tests).
func (g *Group) SetClock(clock func() time.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.clock = clock
	g.last = time.Time{}
}

// Charge implements vfs.Limiter.
func (g *Group) Charge(op string, n int) error {
	// Admission must be checked the whole way up before committing, so a
	// denied ancestor does not leave the child half-charged.
	for cur := g; cur != nil; cur = cur.parent {
		if err := cur.admit(op, n); err != nil {
			for c2 := g; c2 != nil; c2 = c2.parent {
				c2.mu.Lock()
				c2.denied++
				c2.mu.Unlock()
			}
			return err
		}
	}
	for cur := g; cur != nil; cur = cur.parent {
		cur.commit(op, n)
	}
	return nil
}

func (g *Group) admit(op string, n int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.limits.MaxOps > 0 && g.ops+1 > g.limits.MaxOps {
		return fmt.Errorf("%w: %s ops", ErrLimit, g.name)
	}
	if g.limits.MaxBytes > 0 && g.bytes+uint64(n) > g.limits.MaxBytes {
		return fmt.Errorf("%w: %s bytes", ErrLimit, g.name)
	}
	if g.limits.OpsPerSecond > 0 {
		now := g.clock()
		if !g.last.IsZero() {
			g.tokens += now.Sub(g.last).Seconds() * g.limits.OpsPerSecond
			if g.tokens > g.limits.Burst {
				g.tokens = g.limits.Burst
			}
		}
		g.last = now
		if g.tokens < 1 {
			return fmt.Errorf("%w: %s rate", ErrLimit, g.name)
		}
	}
	return nil
}

func (g *Group) commit(op string, n int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ops++
	g.bytes += uint64(n)
	g.perOp[op]++
	if g.limits.OpsPerSecond > 0 {
		g.tokens--
	}
}

// Usage returns a snapshot of the group's consumption.
func (g *Group) Usage() Usage {
	g.mu.Lock()
	defer g.mu.Unlock()
	per := make(map[string]uint64, len(g.perOp))
	for k, v := range g.perOp {
		per[k] = v
	}
	return Usage{Ops: g.ops, Bytes: g.bytes, Denied: g.denied, PerOp: per}
}

// Namespace is one application's execution context: a name, a credential,
// an optional root subtree (the view it is confined to), and an optional
// control group.
type Namespace struct {
	Name  string
	Cred  vfs.Cred
	Root  string // "" = file system root
	Group *Group
}

// Enter materializes the namespace against a file system, returning the
// Proc the application should use for all its I/O. A non-empty Root pins
// the app inside that subtree — absolute paths, "..", and symlinks cannot
// escape it (§5.3: "isolate subsets of the network to individual
// processes").
func (ns Namespace) Enter(fs *vfs.FS) (*vfs.Proc, error) {
	p := fs.Proc(ns.Cred)
	if ns.Group != nil {
		p = p.WithLimiter(ns.Group)
	}
	if ns.Root != "" && ns.Root != "/" {
		jail, err := fs.RootProc().Chroot(ns.Root)
		if err != nil {
			return nil, fmt.Errorf("namespace %s: %w", ns.Name, err)
		}
		p = jail.WithCred(ns.Cred)
		if ns.Group != nil {
			p = p.WithLimiter(ns.Group)
		}
	}
	return p, nil
}

// Manager tracks the namespaces of running applications, like a tiny
// systemd for network apps.
type Manager struct {
	fs *vfs.FS

	mu     sync.Mutex
	spaces map[string]Namespace
	groups map[string]*Group
}

// NewManager creates a manager over one file system.
func NewManager(fs *vfs.FS) *Manager {
	return &Manager{
		fs:     fs,
		spaces: make(map[string]Namespace),
		groups: make(map[string]*Group),
	}
}

// CreateGroup registers a named control group.
func (m *Manager) CreateGroup(name string, limits Limits) *Group {
	g := NewGroup(name, limits)
	m.mu.Lock()
	m.groups[name] = g
	m.mu.Unlock()
	return g
}

// Group returns a registered control group.
func (m *Manager) Group(name string) *Group {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.groups[name]
}

// Launch registers a namespace and returns its Proc.
func (m *Manager) Launch(ns Namespace) (*vfs.Proc, error) {
	p, err := ns.Enter(m.fs)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.spaces[ns.Name] = ns
	m.mu.Unlock()
	m.publishProc(ns)
	return p, nil
}

// procAppsDir is where launches publish per-application accounting when a
// procfs-style metrics subtree is installed (see internal/procfs).
const procAppsDir = "/.proc/apps"

// publishProc exposes the namespace's identity and cgroup accounting as a
// synthetic /.proc/apps/<name> file. A controller without the metrics
// subtree simply skips this — the manager stays usable on a bare FS.
func (m *Manager) publishProc(ns Namespace) {
	_ = m.fs.WithTx(func(tx *vfs.Tx) error {
		if !tx.IsDir(procAppsDir) {
			return nil
		}
		return tx.SetSynthetic(vfs.Join(procAppsDir, ns.Name), &vfs.Synthetic{
			Read: func() ([]byte, error) { return renderNamespace(ns), nil },
		}, 0o444, 0, 0)
	})
}

func renderNamespace(ns Namespace) []byte {
	var b strings.Builder
	root := ns.Root
	if root == "" {
		root = "/"
	}
	fmt.Fprintf(&b, "name %s\nuid %d\ngid %d\nroot %s\n", ns.Name, ns.Cred.UID, ns.Cred.GID, root)
	if ns.Group == nil {
		b.WriteString("group -\n")
		return []byte(b.String())
	}
	u := ns.Group.Usage()
	fmt.Fprintf(&b, "group %s\nops %d\nbytes %d\ndenied %d\n", ns.Group.Name(), u.Ops, u.Bytes, u.Denied)
	ops := make([]string, 0, len(u.PerOp))
	for op := range u.PerOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		fmt.Fprintf(&b, "op.%s %d\n", op, u.PerOp[op])
	}
	return []byte(b.String())
}

// List returns registered namespace names in order.
func (m *Manager) List() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.spaces))
	for n := range m.spaces {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Of returns the namespace registered under name.
func (m *Manager) Of(name string) (Namespace, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ns, ok := m.spaces[name]
	return ns, ok
}
