package backoff

import (
	"errors"
	"testing"
	"time"
)

func TestPolicyGrowthAndCap(t *testing.T) {
	p := Policy{Min: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: -1}.withDefaults()
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := p.delay(i); got != w*time.Millisecond {
			t.Errorf("delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestZeroPolicyDefaults(t *testing.T) {
	p := Policy{}.withDefaults()
	if p.Min != DefaultMin || p.Max != DefaultMax || p.Factor != DefaultFactor || p.Jitter != DefaultJitter {
		t.Errorf("defaults = %+v", p)
	}
	// Max below Min is clamped, not inverted.
	q := Policy{Min: time.Second, Max: time.Millisecond}.withDefaults()
	if q.Max != time.Second {
		t.Errorf("clamped max = %v", q.Max)
	}
}

func TestJitterStaysWithinBounds(t *testing.T) {
	b := New(Policy{Min: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5})
	for i := 0; i < 50; i++ {
		b.Reset()
		d := b.Next()
		if d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("jittered first delay %v outside [50ms,100ms]", d)
		}
	}
}

func TestResetRewindsSchedule(t *testing.T) {
	b := New(Policy{Min: time.Millisecond, Max: time.Second, Factor: 2, Jitter: -1})
	first := b.Next()
	b.Next()
	b.Next()
	if b.Attempts() != 3 {
		t.Errorf("attempts = %d", b.Attempts())
	}
	b.Reset()
	if got := b.Next(); got != first {
		t.Errorf("after reset, Next = %v want %v", got, first)
	}
}

func TestRetrySucceedsAfterFailures(t *testing.T) {
	n := 0
	err := Retry(nil, Policy{Min: time.Millisecond, Max: 2 * time.Millisecond, Jitter: -1}, func() error {
		n++
		if n < 3 {
			return errors.New("nope")
		}
		return nil
	})
	if err != nil || n != 3 {
		t.Fatalf("retry = %v after %d attempts", err, n)
	}
}

func TestRetryStops(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	sentinel := errors.New("still failing")
	err := Retry(stop, Policy{Min: time.Millisecond, Jitter: -1}, func() error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("stopped retry = %v", err)
	}
}

// TestSetAfter drives Retry with an injected timer: no real sleeping,
// and the delays handed to the timer follow the policy schedule.
func TestSetAfter(t *testing.T) {
	var delays []time.Duration
	prev := SetAfter(func(d time.Duration) <-chan time.Time {
		delays = append(delays, d)
		ch := make(chan time.Time, 1)
		ch <- time.Time{}
		return ch
	})
	defer SetAfter(prev)

	attempts := 0
	err := Retry(nil, Policy{Min: time.Second, Max: 4 * time.Second, Jitter: -1}, func() error {
		attempts++
		if attempts < 4 {
			return errors.New("boom")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	want := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second}
	if len(delays) != len(want) {
		t.Fatalf("timer called %d times, want %d (%v)", len(delays), len(want), delays)
	}
	for i, d := range delays {
		if d != want[i] {
			t.Fatalf("delay[%d] = %v, want %v", i, d, want[i])
		}
	}
}
