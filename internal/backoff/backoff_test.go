package backoff

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestPolicyGrowthAndCap(t *testing.T) {
	p := Policy{Min: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: -1}.withDefaults()
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := p.delay(i); got != w*time.Millisecond {
			t.Errorf("delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestZeroPolicyDefaults(t *testing.T) {
	p := Policy{}.withDefaults()
	if p.Min != DefaultMin || p.Max != DefaultMax || p.Factor != DefaultFactor || p.Jitter != DefaultJitter {
		t.Errorf("defaults = %+v", p)
	}
	// Max below Min is clamped, not inverted.
	q := Policy{Min: time.Second, Max: time.Millisecond}.withDefaults()
	if q.Max != time.Second {
		t.Errorf("clamped max = %v", q.Max)
	}
}

func TestJitterStaysWithinBounds(t *testing.T) {
	b := New(Policy{Min: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5})
	for i := 0; i < 50; i++ {
		b.Reset()
		d := b.Next()
		if d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("jittered first delay %v outside [50ms,100ms]", d)
		}
	}
}

func TestResetRewindsSchedule(t *testing.T) {
	b := New(Policy{Min: time.Millisecond, Max: time.Second, Factor: 2, Jitter: -1})
	first := b.Next()
	b.Next()
	b.Next()
	if b.Attempts() != 3 {
		t.Errorf("attempts = %d", b.Attempts())
	}
	b.Reset()
	if got := b.Next(); got != first {
		t.Errorf("after reset, Next = %v want %v", got, first)
	}
}

func TestRetrySucceedsAfterFailures(t *testing.T) {
	n := 0
	err := Retry(nil, Policy{Min: time.Millisecond, Max: 2 * time.Millisecond, Jitter: -1}, func() error {
		n++
		if n < 3 {
			return errors.New("nope")
		}
		return nil
	})
	if err != nil || n != 3 {
		t.Fatalf("retry = %v after %d attempts", err, n)
	}
}

func TestRetryStops(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	sentinel := errors.New("still failing")
	err := Retry(stop, Policy{Min: time.Millisecond, Jitter: -1}, func() error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("stopped retry = %v", err)
	}
}

// TestSetAfter drives Retry with an injected timer: no real sleeping,
// and the delays handed to the timer follow the policy schedule.
func TestSetAfter(t *testing.T) {
	var delays []time.Duration
	prev := SetAfter(func(d time.Duration) <-chan time.Time {
		delays = append(delays, d)
		ch := make(chan time.Time, 1)
		ch <- time.Time{}
		return ch
	})
	defer SetAfter(prev)

	attempts := 0
	err := Retry(nil, Policy{Min: time.Second, Max: 4 * time.Second, Jitter: -1}, func() error {
		attempts++
		if attempts < 4 {
			return errors.New("boom")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	want := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second}
	if len(delays) != len(want) {
		t.Fatalf("timer called %d times, want %d (%v)", len(delays), len(want), delays)
	}
	for i, d := range delays {
		if d != want[i] {
			t.Fatalf("delay[%d] = %v, want %v", i, d, want[i])
		}
	}
}

// TestMaxElapsedSchedule checks the budget accounting: delays sum to
// exactly MaxElapsed (the final one clamped), then the schedule reports
// exhaustion.
func TestMaxElapsedSchedule(t *testing.T) {
	b := New(Policy{Min: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: -1, MaxElapsed: 350 * time.Millisecond})
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 50 * time.Millisecond}
	var total time.Duration
	for i, w := range want {
		d, ok := b.NextOK()
		if !ok {
			t.Fatalf("NextOK exhausted at attempt %d", i)
		}
		if d != w {
			t.Fatalf("delay[%d] = %v, want %v", i, d, w)
		}
		total += d
	}
	if total != 350*time.Millisecond {
		t.Fatalf("total = %v, want the exact budget", total)
	}
	if _, ok := b.NextOK(); ok {
		t.Fatal("schedule not exhausted after consuming the budget")
	}
	// Reset refunds the budget.
	b.Reset()
	if d, ok := b.NextOK(); !ok || d != 100*time.Millisecond {
		t.Fatalf("after reset NextOK = %v, %v", d, ok)
	}
}

// TestRetryMaxElapsed: Retry gives up with ErrMaxElapsed (wrapping the
// last attempt error) once the budget is gone, without real sleeping.
func TestRetryMaxElapsed(t *testing.T) {
	prev := SetAfter(func(d time.Duration) <-chan time.Time {
		ch := make(chan time.Time, 1)
		ch <- time.Time{}
		return ch
	})
	defer SetAfter(prev)

	sentinel := errors.New("still down")
	attempts := 0
	err := Retry(nil, Policy{Min: time.Second, Max: time.Second, Jitter: -1, MaxElapsed: 3 * time.Second}, func() error {
		attempts++
		return sentinel
	})
	if !errors.Is(err, ErrMaxElapsed) {
		t.Fatalf("err = %v, want ErrMaxElapsed", err)
	}
	if attempts != 4 { // three 1s delays consume the budget, then the fourth failure gives up
		t.Fatalf("attempts = %d, want 4", attempts)
	}
}

// TestRetryContextCancellation: a canceled context stops the loop
// between attempts and the error reports both the cancellation and the
// last attempt failure.
func TestRetryContextCancellation(t *testing.T) {
	prev := SetAfter(func(d time.Duration) <-chan time.Time {
		return make(chan time.Time) // never fires; cancellation must win
	})
	defer SetAfter(prev)

	ctx, cancel := context.WithCancel(context.Background())
	sentinel := errors.New("unreachable peer")
	errs := make(chan error, 1)
	go func() {
		errs <- RetryContext(ctx, Policy{Min: time.Second, Jitter: -1}, func() error { return sentinel })
	}()
	cancel()
	select {
	case err := <-errs:
		if !errors.Is(err, context.Canceled) || !errors.Is(err, sentinel) {
			t.Fatalf("err = %v, want both context.Canceled and the attempt error", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RetryContext ignored cancellation")
	}
}

// TestWaitUsesInjectedTimer: the exported Wait goes through SetAfter,
// so retry loops outside the package stay deterministic under test.
func TestWaitUsesInjectedTimer(t *testing.T) {
	var got time.Duration
	prev := SetAfter(func(d time.Duration) <-chan time.Time {
		got = d
		ch := make(chan time.Time, 1)
		ch <- time.Time{}
		return ch
	})
	defer SetAfter(prev)
	<-Wait(42 * time.Millisecond)
	if got != 42*time.Millisecond {
		t.Fatalf("Wait handed %v to the injected timer", got)
	}
}
