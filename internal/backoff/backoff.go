// Package backoff implements capped exponential backoff with jitter —
// the retry discipline shared by every reconnect path in the tree (the
// switch side of a control channel, the distributed-FS remount loop,
// the eventual-consistency flusher). Centralizing it keeps the failure
// behaviour of the system uniform and testable: all retry loops grow
// delays the same way, cap at the same knob, and decorrelate themselves
// with the same jitter so a mass disconnect does not become a
// synchronized reconnect stampede.
//
//yancvet:clocked retry delays must be injectable for deterministic tests
package backoff

import (
	"math/rand"
	"sync"
	"time"
)

// after is the timer the package's sleep paths (Retry) wait on. Tests
// replace it via SetAfter to drive retry schedules deterministically
// instead of sleeping through real backoff delays.
var after = time.After

var afterMu sync.Mutex

// SetAfter replaces the timer used by Retry and returns the previous
// one. Pass time.After to restore the real clock.
func SetAfter(f func(time.Duration) <-chan time.Time) func(time.Duration) <-chan time.Time {
	afterMu.Lock()
	defer afterMu.Unlock()
	prev := after
	after = f
	return prev
}

func wait(d time.Duration) <-chan time.Time {
	afterMu.Lock()
	f := after
	afterMu.Unlock()
	return f(d)
}

// Policy describes a backoff schedule. The zero value is usable and
// means: start at 50ms, double each attempt, cap at 5s, with 50%
// jitter.
type Policy struct {
	Min    time.Duration // first delay (default 50ms)
	Max    time.Duration // delay cap (default 5s)
	Factor float64       // growth factor per attempt (default 2)
	Jitter float64       // randomized fraction of each delay, 0..1 (default 0.5; negative disables)
}

// Defaults for zero-valued Policy fields.
const (
	DefaultMin    = 50 * time.Millisecond
	DefaultMax    = 5 * time.Second
	DefaultFactor = 2.0
	DefaultJitter = 0.5
)

func (p Policy) withDefaults() Policy {
	if p.Min <= 0 {
		p.Min = DefaultMin
	}
	if p.Max <= 0 {
		p.Max = DefaultMax
	}
	if p.Max < p.Min {
		p.Max = p.Min
	}
	if p.Factor < 1 {
		p.Factor = DefaultFactor
	}
	switch {
	case p.Jitter == 0:
		p.Jitter = DefaultJitter
	case p.Jitter < 0: // negative disables jitter
		p.Jitter = 0
	case p.Jitter > 1:
		p.Jitter = 1
	}
	return p
}

// delay computes the base (unjittered) delay for attempt n (0-based).
func (p Policy) delay(attempt int) time.Duration {
	d := float64(p.Min)
	for i := 0; i < attempt; i++ {
		d *= p.Factor
		if d >= float64(p.Max) {
			return p.Max
		}
	}
	if d > float64(p.Max) {
		return p.Max
	}
	return time.Duration(d)
}

// Backoff tracks the attempt count of one retry loop. It is safe for
// concurrent use.
type Backoff struct {
	mu      sync.Mutex
	pol     Policy
	attempt int
	rng     *rand.Rand
}

// New creates a Backoff following pol (zero fields take defaults).
func New(pol Policy) *Backoff {
	return &Backoff{
		pol: pol.withDefaults(),
		//yancvet:wallclock rng seed entropy, not a timestamp
		rng: rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Next returns the delay to sleep before the next attempt and advances
// the schedule. With Jitter j, the returned delay is uniform in
// [base*(1-j), base] so delays never exceed the cap.
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	base := b.pol.delay(b.attempt)
	b.attempt++
	if b.pol.Jitter == 0 {
		return base
	}
	spread := float64(base) * b.pol.Jitter
	return base - time.Duration(b.rng.Float64()*spread)
}

// Reset rewinds the schedule to the first delay; call it after a
// successful attempt (e.g. a completed handshake).
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.attempt = 0
	b.mu.Unlock()
}

// Attempts reports how many delays have been handed out since the last
// Reset.
func (b *Backoff) Attempts() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attempt
}

// Retry runs fn until it returns nil, sleeping per pol between
// failures. It stops early — returning the last error — when stop is
// closed. A nil stop channel means retry forever.
func Retry(stop <-chan struct{}, pol Policy, fn func() error) error {
	b := New(pol)
	for {
		err := fn()
		if err == nil {
			return nil
		}
		select {
		case <-stop:
			return err
		case <-wait(b.Next()):
		}
	}
}
