// Package backoff implements capped exponential backoff with jitter —
// the retry discipline shared by every reconnect path in the tree (the
// switch side of a control channel, the distributed-FS remount loop,
// the eventual-consistency flusher). Centralizing it keeps the failure
// behaviour of the system uniform and testable: all retry loops grow
// delays the same way, cap at the same knob, and decorrelate themselves
// with the same jitter so a mass disconnect does not become a
// synchronized reconnect stampede.
//
//yancvet:clocked retry delays must be injectable for deterministic tests
package backoff

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrMaxElapsed reports a retry schedule that exhausted its
// Policy.MaxElapsed budget without the attempt succeeding.
var ErrMaxElapsed = errors.New("backoff: retry budget exhausted")

// after is the timer the package's sleep paths (Retry) wait on. Tests
// replace it via SetAfter to drive retry schedules deterministically
// instead of sleeping through real backoff delays.
var after = time.After

var afterMu sync.Mutex

// SetAfter replaces the timer used by Retry and returns the previous
// one. Pass time.After to restore the real clock.
func SetAfter(f func(time.Duration) <-chan time.Time) func(time.Duration) <-chan time.Time {
	afterMu.Lock()
	defer afterMu.Unlock()
	prev := after
	after = f
	return prev
}

func wait(d time.Duration) <-chan time.Time {
	afterMu.Lock()
	f := after
	afterMu.Unlock()
	return f(d)
}

// Wait returns a channel that fires after d on the package's injectable
// timer. Retry loops outside this package select on it (instead of bare
// time.After) so tests that inject SetAfter control their schedules too.
func Wait(d time.Duration) <-chan time.Time { return wait(d) }

// Policy describes a backoff schedule. The zero value is usable and
// means: start at 50ms, double each attempt, cap at 5s, with 50%
// jitter.
type Policy struct {
	Min    time.Duration // first delay (default 50ms)
	Max    time.Duration // delay cap (default 5s)
	Factor float64       // growth factor per attempt (default 2)
	Jitter float64       // randomized fraction of each delay, 0..1 (default 0.5; negative disables)

	// MaxElapsed caps the cumulative jittered delay a schedule hands
	// out: once the sum of returned delays reaches it, NextOK reports
	// exhaustion and Retry/RetryContext give up with ErrMaxElapsed. The
	// final delay is clamped so the total never overshoots the budget.
	// Accounting is over the delays themselves — deterministic, no wall
	// clock — so injected-timer tests observe exactly the same schedule.
	// 0 means no cap. Next ignores the cap (but still accrues), for
	// loops bounded some other way.
	MaxElapsed time.Duration
}

// Defaults for zero-valued Policy fields.
const (
	DefaultMin    = 50 * time.Millisecond
	DefaultMax    = 5 * time.Second
	DefaultFactor = 2.0
	DefaultJitter = 0.5
)

func (p Policy) withDefaults() Policy {
	if p.Min <= 0 {
		p.Min = DefaultMin
	}
	if p.Max <= 0 {
		p.Max = DefaultMax
	}
	if p.Max < p.Min {
		p.Max = p.Min
	}
	if p.Factor < 1 {
		p.Factor = DefaultFactor
	}
	switch {
	case p.Jitter == 0:
		p.Jitter = DefaultJitter
	case p.Jitter < 0: // negative disables jitter
		p.Jitter = 0
	case p.Jitter > 1:
		p.Jitter = 1
	}
	return p
}

// delay computes the base (unjittered) delay for attempt n (0-based).
func (p Policy) delay(attempt int) time.Duration {
	d := float64(p.Min)
	for i := 0; i < attempt; i++ {
		d *= p.Factor
		if d >= float64(p.Max) {
			return p.Max
		}
	}
	if d > float64(p.Max) {
		return p.Max
	}
	return time.Duration(d)
}

// Backoff tracks the attempt count of one retry loop. It is safe for
// concurrent use.
type Backoff struct {
	mu      sync.Mutex
	pol     Policy
	attempt int
	elapsed time.Duration // cumulative delay handed out since the last Reset
	rng     *rand.Rand
}

// New creates a Backoff following pol (zero fields take defaults).
func New(pol Policy) *Backoff {
	return &Backoff{
		pol: pol.withDefaults(),
		//yancvet:wallclock rng seed entropy, not a timestamp
		rng: rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Next returns the delay to sleep before the next attempt and advances
// the schedule. With Jitter j, the returned delay is uniform in
// [base*(1-j), base] so delays never exceed the cap. Next ignores
// Policy.MaxElapsed; use NextOK in loops bounded by the budget.
func (b *Backoff) Next() time.Duration {
	d, _ := b.next(false)
	return d
}

// NextOK is Next honoring Policy.MaxElapsed: it returns false once the
// cumulative handed-out delay has consumed the budget, and clamps the
// final delay so the total lands exactly on it.
func (b *Backoff) NextOK() (time.Duration, bool) {
	return b.next(true)
}

func (b *Backoff) next(honorCap bool) (time.Duration, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	base := b.pol.delay(b.attempt)
	d := base
	if b.pol.Jitter != 0 {
		spread := float64(base) * b.pol.Jitter
		d = base - time.Duration(b.rng.Float64()*spread)
	}
	if honorCap && b.pol.MaxElapsed > 0 {
		if b.elapsed >= b.pol.MaxElapsed {
			return 0, false
		}
		if remaining := b.pol.MaxElapsed - b.elapsed; d > remaining {
			d = remaining
		}
	}
	b.attempt++
	b.elapsed += d
	return d, true
}

// Reset rewinds the schedule to the first delay and refunds the elapsed
// budget; call it after a successful attempt (e.g. a completed
// handshake).
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.attempt = 0
	b.elapsed = 0
	b.mu.Unlock()
}

// Attempts reports how many delays have been handed out since the last
// Reset.
func (b *Backoff) Attempts() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attempt
}

// Retry runs fn until it returns nil, sleeping per pol between
// failures. It stops early — returning the last error — when stop is
// closed, or with ErrMaxElapsed (wrapping the last error) when the
// policy's MaxElapsed budget runs out. A nil stop channel with no
// budget means retry forever.
func Retry(stop <-chan struct{}, pol Policy, fn func() error) error {
	b := New(pol)
	for {
		err := fn()
		if err == nil {
			return nil
		}
		d, ok := b.NextOK()
		if !ok {
			return fmt.Errorf("%w: %v", ErrMaxElapsed, err)
		}
		select {
		case <-stop:
			return err
		case <-wait(d):
		}
	}
}

// RetryContext is Retry bound to a context: cancellation stops the loop
// between attempts, returning the context's error joined with fn's last
// error (fn itself is responsible for honoring ctx mid-attempt).
func RetryContext(ctx context.Context, pol Policy, fn func() error) error {
	b := New(pol)
	for {
		err := fn()
		if err == nil {
			return nil
		}
		d, ok := b.NextOK()
		if !ok {
			return fmt.Errorf("%w: %v", ErrMaxElapsed, err)
		}
		select {
		case <-ctx.Done():
			return errors.Join(ctx.Err(), err)
		case <-wait(d):
		}
	}
}
