// Package driver implements yanc device drivers (§4.1): thin translators
// between the control protocol a switch speaks (OpenFlow 1.0 or 1.3) and
// the yanc file system. A driver
//
//   - accepts a switch's control connection and handshakes as the
//     controller, negotiating the protocol version per switch, so a
//     network can run mixed versions and be upgraded live;
//   - materializes the switch as a directory under switches/ and keeps
//     port files in sync with port-status messages;
//   - watches the switch's flows/ subtree and pushes committed flows
//     (version-file increments, §3.4) to the hardware as flow-mods;
//   - feeds packet-in messages into every subscriber's event buffer
//     (§3.5) and serves live counters for the counters/ files;
//   - exposes a packet_out control file for injecting packets.
//
// "With the file system as the API, supporting new protocols only
// requires a new driver" — here both protocol versions go through the
// same translation logic with a per-connection codec.
package driver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"yanc/internal/openflow"
	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

// statsTimeout bounds synchronous counter queries to the switch.
const statsTimeout = 2 * time.Second

// Liveness-probe defaults (overridable per Driver).
const (
	DefaultEchoInterval = 5 * time.Second
	DefaultEchoMisses   = 3
)

// Driver manages the control connections of all switches speaking some
// OpenFlow version range, translating to one yanc file system region.
type Driver struct {
	Y          *yancfs.FS
	Region     string // region the switches appear in (usually "/")
	MaxVersion uint8  // highest protocol version to offer
	NameFor    func(dpid uint64) string
	Logf       func(format string, args ...any)
	// PacketInHook, when set, receives every packet-in before file-system
	// delivery (the libyanc zero-copy fastpath plugs in here). Returning
	// true consumes the message and skips the event-directory copies.
	PacketInHook func(switchName string, pi *openflow.PacketIn) bool

	// FlowInstalledHook, when set, is called after a flow-mod has been
	// written to a switch's control channel: the libyanc completion ring
	// plugs in here (FlowRing.InstallHook) to report end-to-end
	// installed completions. It runs on driver mux workers — keep it
	// cheap and never call back into the file system.
	FlowInstalledHook func(flowPath string, version uint64)

	// EchoInterval is how often the driver probes each switch with an
	// OpenFlow echo request; EchoMisses is how many consecutive unanswered
	// probes tear the connection down. A hung switch — one whose TCP
	// connection never errors — is detected this way, so the status file
	// stays truthful about liveness even when the transport lies.
	// EchoInterval <= 0 disables probing.
	EchoInterval time.Duration
	EchoMisses   int

	// Clock overrides the time source for file-stamped timestamps
	// (last_seen). When nil the driver uses the file system's clock
	// (vfs.FS.SetClock), so simulated time in tests governs staleness the
	// same way it governs inode times.
	Clock func() time.Time

	// ProcDir, when non-empty, names a directory (usually
	// /.proc/driver) where the driver publishes per-switch telemetry
	// files: <ProcDir>/<name>/{rtt,echo,tx_rx}.
	ProcDir string

	mu    sync.Mutex
	conns map[string]*SwitchConn
	mux   *mux // lazily created on first Attach, stopped by Close
}

// New creates a driver for the master region offering up to OF 1.3.
func New(y *yancfs.FS) *Driver {
	return &Driver{
		Y:            y,
		Region:       "/",
		MaxVersion:   openflow.Version13,
		NameFor:      func(dpid uint64) string { return fmt.Sprintf("sw%d", dpid) },
		Logf:         func(string, ...any) {},
		EchoInterval: DefaultEchoInterval,
		EchoMisses:   DefaultEchoMisses,
	}
}

// VerboseLog routes driver logging to the standard logger.
func (d *Driver) VerboseLog() { d.Logf = log.Printf }

// flowState remembers what was last pushed to hardware for one flow
// directory, so renames/edits can delete the superseded entry.
type flowState struct {
	match    openflow.Match
	priority uint16
	version  uint64
}

// SwitchConn is one connected switch.
type SwitchConn struct {
	Name     string
	Path     string
	Features *openflow.FeaturesReply
	Protocol string

	driver *Driver
	conn   *openflow.Conn
	proc   *vfs.Proc
	mux    *mux

	mu         sync.Mutex
	flows      map[string]flowState // flow dir name -> pushed state
	portConfig map[uint32]uint32    // hardware port config as last seen
	pending    map[uint32]chan *openflow.StatsReply
	echoMiss   int // consecutive unanswered liveness probes
	closed     bool
	done       chan struct{}
	discOnce   sync.Once // onDisconnect runs exactly once

	// Mailbox (mux.go): the connection's serialized task queue.
	boxMu     sync.Mutex
	box       []func()
	boxActive bool

	// Multiplexed read path (poll_linux.go). rawConn is non-nil only for
	// OS-socket transports; readBuf/scratch are touched solely by the
	// mailbox-serialized pollRead.
	rawConn syscall.RawConn
	pollFd  int32
	readBuf []byte
	scratch []byte

	// Packet-in coalescing: the read path enqueues and schedules a drain
	// task that batches into DeliverPacketInBatch, so a flood of
	// packet-ins costs one file system transaction per batch instead of
	// one per message. pktinBatch is the drain's claim buffer, allocated
	// once per connection and reused every drain (it is touched only by
	// the mailbox-serialized drainPktin). drainBoxFn/drainPktinFn are the
	// bound method values, hoisted here so scheduling a drain does not
	// allocate a closure per wakeup.
	pktin          chan *openflow.PacketIn
	pktinScheduled atomic.Bool
	pktinBatch     []*openflow.PacketIn
	drainBoxFn     func()
	drainPktinFn   func()

	// Control-channel telemetry, published as <ProcDir>/<name> files.
	txMsgs       atomic.Uint64
	rxMsgs       atomic.Uint64
	echoSent     atomic.Uint64
	echoReplies  atomic.Uint64
	echoSentAt   atomic.Int64 // unixnano of the latest probe, for RTT
	rtt          vfs.Histogram
	pktinSeen    atomic.Uint64 // packet-ins read off the wire
	pktinDropped atomic.Uint64 // shed because the coalescing queue was full
	pktinBatches atomic.Uint64 // DeliverPacketInBatch calls issued
}

// maxPktInBatch bounds how many queued packet-ins one delivery
// transaction will coalesce.
const maxPktInBatch = 64

// pktInQueueLen is the readLoop->deliverLoop queue depth; beyond it the
// driver sheds packet-ins rather than stall the control channel reader.
const pktInQueueLen = 1024

// now returns the driver's timestamp source for file-stamped times: the
// Clock override when set, else the file system clock.
func (d *Driver) now() time.Time {
	if d.Clock != nil {
		return d.Clock()
	}
	return d.Y.VFS().Now()
}

// write sends one message to the switch, counting it.
func (sc *SwitchConn) write(msg openflow.Message) error {
	sc.txMsgs.Add(1)
	return sc.conn.Write(msg)
}

// handshakeBacklog bounds concurrent handshakes. A mass reconnect (a
// city's worth of switches redialing after a controller restart) must
// not fan a thousand simultaneous handshakes out across the scheduler:
// connections are accepted immediately — so the kernel accept queue
// never overflows and dialers never see spurious timeouts — and then
// handshake in bounded batches.
const handshakeBacklog = 64

// Serve accepts switch connections until the listener closes.
func (d *Driver) Serve(l net.Listener) error {
	sem := make(chan struct{}, handshakeBacklog)
	for {
		c, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			sem <- struct{}{}
			defer func() { <-sem }()
			if _, err := d.Attach(c); err != nil {
				d.Logf("driver: attach: %v", err)
				c.Close()
			}
		}()
	}
}

// ensureMux returns the driver's mux, creating it on first use (the
// switches directory must exist, so callers run it after populate).
func (d *Driver) ensureMux() (*mux, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.mux != nil {
		return d.mux, nil
	}
	m, err := newMux(d)
	if err != nil {
		return nil, err
	}
	d.mux = m
	return m, nil
}

// snapshotConns returns the live connections.
func (d *Driver) snapshotConns() []*SwitchConn {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*SwitchConn, 0, len(d.conns))
	for _, sc := range d.conns {
		out = append(out, sc)
	}
	return out
}

// Attach handshakes a switch control channel and wires it into the file
// system. It returns once the switch directory is fully populated; the
// translation loops run until the connection dies or Close is called.
func (d *Driver) Attach(rw io.ReadWriter) (*SwitchConn, error) {
	conn := openflow.NewConn(rw)
	features, err := conn.HandshakeController(d.MaxVersion)
	if err != nil {
		return nil, fmt.Errorf("driver: handshake: %w", err)
	}
	name := d.NameFor(features.DatapathID)
	sc := &SwitchConn{
		Name:       name,
		Path:       vfs.Join(d.Region, yancfs.DirSwitches, name),
		Features:   features,
		Protocol:   protocolName(conn.Version()),
		driver:     d,
		conn:       conn,
		proc:       d.Y.Root(),
		flows:      make(map[string]flowState),
		portConfig: make(map[uint32]uint32),
		pending:    make(map[uint32]chan *openflow.StatsReply),
		pktin:      make(chan *openflow.PacketIn, pktInQueueLen),
		pktinBatch: make([]*openflow.PacketIn, 0, maxPktInBatch),
		done:       make(chan struct{}),
	}
	sc.drainBoxFn = sc.drainBox
	sc.drainPktinFn = sc.drainPktin
	for _, p := range features.Ports {
		sc.portConfig[p.No] = p.Config
	}
	if err := sc.populate(); err != nil {
		return nil, err
	}
	// The shared switches/ watch (created with the mux) is registered
	// before the connection is, so no commit after this point can be
	// missed: events raced against registration are covered by the
	// syncAllFlows below, everything later reaches the mailbox.
	m, err := d.ensureMux()
	if err != nil {
		return nil, err
	}
	sc.mux = m
	d.mu.Lock()
	if d.conns == nil {
		d.conns = make(map[string]*SwitchConn)
	}
	old := d.conns[name]
	d.conns[name] = sc
	d.mu.Unlock()
	if old != nil {
		old.stop()
	}
	if d.ProcDir != "" {
		d.installProcFiles(name)
	}
	// The file system stays truthful about liveness from the moment
	// Attach returns.
	_ = sc.proc.WriteString(vfs.Join(sc.Path, "status"), "connected\n")
	sc.touchLastSeen()

	// Push any flows already committed in the file system (controller
	// restart / live protocol upgrade: the network state outlives the
	// connection), and any packet-outs staged while disconnected.
	sc.syncAllFlows()
	sc.drainPacketOut()

	// Read path: OS-socket transports are multiplexed over the shared
	// poller; anything else (net.Pipe rigs, fault-injection wrappers that
	// hide the fd) keeps a dedicated reader goroutine.
	started := false
	if m.poller != nil {
		if scc, ok := rw.(syscall.Conn); ok {
			if raw, rerr := scc.SyscallConn(); rerr == nil {
				sc.rawConn = raw
				sc.readBuf = conn.TakeBuffered()
				if m.poller.add(sc) {
					// Decode handshake leftovers (and arm the first drain)
					// through the mailbox, serialized with poller wakeups.
					sc.enqueue(sc.pollRead)
					started = true
				}
			}
		}
	}
	if !started {
		go sc.readLoop()
	}
	d.Logf("driver: %s attached (dpid %016x, %s, %d ports)",
		name, features.DatapathID, sc.Protocol, len(features.Ports))
	return sc, nil
}

// Lookup returns the connection for a switch name.
func (d *Driver) Lookup(name string) *SwitchConn {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.conns[name]
}

// Close stops all switch connections and the mux behind them. The
// driver is reusable: a later Attach lazily builds a fresh mux.
func (d *Driver) Close() {
	d.mu.Lock()
	conns := make([]*SwitchConn, 0, len(d.conns))
	for _, sc := range d.conns {
		conns = append(conns, sc)
	}
	d.conns = nil
	m := d.mux
	d.mux = nil
	d.mu.Unlock()
	for _, sc := range conns {
		sc.stop()
	}
	if m != nil {
		m.stop()
	}
}

func protocolName(version uint8) string {
	switch version {
	case openflow.Version10:
		return "openflow10"
	case openflow.Version13:
		return "openflow13"
	default:
		return fmt.Sprintf("openflow-%02x", version)
	}
}

// populate creates and fills the switch directory, installs the
// packet_out control file, and binds live counters.
func (sc *SwitchConn) populate() error {
	p := sc.proc
	if !p.Exists(sc.Path) {
		if _, err := yancfs.CreateSwitch(p, sc.driver.Region, sc.Name); err != nil {
			return err
		}
	}
	if err := yancfs.PopulateSwitch(p, sc.Path, sc.Features, sc.Protocol); err != nil {
		return err
	}
	// packet_out control file: writing an action spec plus payload sends
	// a packet-out to the switch. The pout/ directory next to it is the
	// zero-copy alternative: libyanc hard-links staged frames in and
	// rings the doorbell; the driver consumes them by reference.
	err := sc.driver.Y.VFS().WithTx(func(tx *vfs.Tx) error {
		pout := vfs.Join(sc.Path, yancfs.DirPacketOut)
		if !tx.Exists(pout) {
			if err := tx.Mkdir(pout, 0o755, 0, 0); err != nil {
				return err
			}
		}
		return tx.SetSynthetic(vfs.Join(sc.Path, "packet_out"), &vfs.Synthetic{
			Write: sc.handlePacketOutWrite,
		}, 0o644, 0, 0)
	})
	if err != nil {
		return err
	}
	sc.driver.Y.BindCounters(sc.Path, sc)
	return nil
}

// stop tears the connection down: deregister from the poller, close the
// transport (which ends a fallback reader goroutine), and run the
// disconnect bookkeeping exactly once.
func (sc *SwitchConn) stop() {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return
	}
	sc.closed = true
	close(sc.done)
	sc.mu.Unlock()
	if sc.rawConn != nil && sc.mux != nil && sc.mux.poller != nil {
		sc.mux.poller.del(sc)
	}
	sc.conn.Close()
	sc.discOnce.Do(sc.onDisconnect)
}

// onDisconnect is the disconnect bookkeeping shared by every teardown
// path. The switch directory (and its committed flows) persists across
// disconnects so a reconnecting or upgraded switch is resynced from it,
// but its status file says the control channel is down. If another
// connection has already replaced this one (fast reconnect), the
// replacement owns the status file and the write is skipped.
func (sc *SwitchConn) onDisconnect() {
	d := sc.driver
	d.mu.Lock()
	current := d.conns == nil || d.conns[sc.Name] == sc
	if d.conns != nil && d.conns[sc.Name] == sc {
		delete(d.conns, sc.Name)
	}
	d.mu.Unlock()
	if current {
		_ = sc.proc.WriteString(vfs.Join(sc.Path, "status"), "disconnected\n")
	}
}

// Done is closed when the connection has shut down.
func (sc *SwitchConn) Done() <-chan struct{} { return sc.done }

// touchLastSeen records proof-of-life from the switch in its last_seen
// file (unix seconds), so operators and apps can judge staleness by
// reading a file, per the everything-is-a-file discipline.
func (sc *SwitchConn) touchLastSeen() {
	_ = sc.proc.WriteString(vfs.Join(sc.Path, "last_seen"),
		strconv.FormatInt(sc.driver.now().Unix(), 10)+"\n")
}

// echoProbe is one liveness tick for this connection, scheduled by the
// mux's echo loop through the mailbox. When `misses` consecutive probes
// go unanswered the connection is torn down, which flips status to
// "disconnected" even though TCP never reported an error — the
// hung-switch case a production controller must detect.
func (sc *SwitchConn) echoProbe(misses int) {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return
	}
	missed := sc.echoMiss
	sc.echoMiss++
	sc.mu.Unlock()
	if missed >= misses {
		sc.driver.Logf("driver: %s: %d echo probes unanswered, tearing down", sc.Name, missed)
		sc.stop()
		return
	}
	sc.echoSent.Add(1)
	sc.echoSentAt.Store(sc.driver.now().UnixNano())
	_ = sc.write(&openflow.EchoRequest{})
}

// readLoop is the fallback read path for transports without an OS file
// descriptor: a dedicated goroutine blocked in Conn.Read. TCP-backed
// connections use the shared poller instead (poll_linux.go).
func (sc *SwitchConn) readLoop() {
	defer sc.stop()
	for {
		msg, err := sc.conn.Read()
		if err != nil {
			return
		}
		sc.handleMessage(msg)
	}
}

// decodeFrames extracts every complete frame from readBuf, dispatching
// each through handleMessage. Returns false after tearing the connection
// down on a malformed frame. Only the mailbox-serialized read task calls
// this.
func (sc *SwitchConn) decodeFrames() bool {
	buf := sc.readBuf
	off := 0
	for {
		if len(buf)-off < 8 {
			break
		}
		length := int(binary.BigEndian.Uint16(buf[off+2 : off+4]))
		if length < 8 {
			sc.stop()
			return false
		}
		if len(buf)-off < length {
			break
		}
		raw := make([]byte, length)
		copy(raw, buf[off:off+length])
		off += length
		msg, err := sc.conn.Decode(raw)
		if err != nil {
			sc.stop()
			return false
		}
		sc.handleMessage(msg)
	}
	if off > 0 {
		sc.readBuf = append(sc.readBuf[:0], buf[off:]...)
	}
	return true
}

// handleMessage dispatches one message arriving from the switch. It is
// called by exactly one reader at a time per connection (the fallback
// goroutine or the mailbox-serialized poller task).
func (sc *SwitchConn) handleMessage(msg openflow.Message) {
	sc.rxMsgs.Add(1)
	switch m := msg.(type) {
	case *openflow.PacketIn:
		sc.pktinSeen.Add(1)
		if hook := sc.driver.PacketInHook; hook != nil && hook(sc.Name, m) {
			return
		}
		// Hand off to the coalescing drain task; shedding here (full
		// queue = the file system cannot keep up) keeps the control
		// channel reader responsive to echoes and barriers.
		select {
		case sc.pktin <- m:
		default:
			sc.pktinDropped.Add(1)
			return
		}
		if sc.pktinScheduled.CompareAndSwap(false, true) {
			sc.enqueue(sc.drainPktinFn)
		}
	case *openflow.PortStatus:
		sc.handlePortStatus(m)
	case *openflow.FlowRemoved:
		sc.handleFlowRemoved(m)
	case *openflow.EchoRequest:
		_ = sc.write(&openflow.EchoReply{Header: openflow.Header{Xid: m.Xid}, Data: m.Data})
	case *openflow.EchoReply:
		sc.mu.Lock()
		sc.echoMiss = 0
		sc.mu.Unlock()
		sc.echoReplies.Add(1)
		if at := sc.echoSentAt.Swap(0); at > 0 {
			sc.rtt.Observe(time.Duration(sc.driver.now().UnixNano() - at))
		}
		sc.touchLastSeen()
	case *openflow.StatsReply:
		sc.mu.Lock()
		ch := sc.pending[m.Xid]
		delete(sc.pending, m.Xid)
		sc.mu.Unlock()
		if ch != nil {
			ch <- m
		}
	case *openflow.Error:
		sc.driver.Logf("driver: %s: switch error 0x%08x", sc.Name, m.Code)
	}
}

// drainPktin coalesces queued packet-ins into batched file-system
// deliveries (up to maxPktInBatch per transaction). It runs in the
// mailbox; the scheduled flag guarantees at most one drain is queued,
// and the re-check after clearing it closes the race against a producer
// that enqueued while the flag was still set. The claim buffer lives on
// the connection so a drain costs zero allocations of its own; the
// per-batch cost is the delivery transaction.
//
//yancvet:hotalloc
func (sc *SwitchConn) drainPktin() {
	batch := sc.pktinBatch[:0]
	for {
	collect:
		for len(batch) < maxPktInBatch {
			select {
			case pi := <-sc.pktin:
				batch = append(batch, pi)
			default:
				break collect
			}
		}
		if len(batch) > 0 {
			sc.pktinBatches.Add(1)
			//yancvet:alloc one delivery transaction per batch is the coalescing contract
			if err := sc.driver.Y.DeliverPacketInBatch(sc.driver.Region, sc.Name, batch); err != nil {
				sc.driver.Logf("driver: %s: deliver packet-in batch (%d): %v", sc.Name, len(batch), err) //yancvet:alloc error path
			}
			// Drop the packet refs so delivered messages are collectable
			// while the buffer idles between bursts.
			for i := range batch {
				batch[i] = nil
			}
			batch = batch[:0]
			continue
		}
		sc.pktinScheduled.Store(false)
		if len(sc.pktin) == 0 || !sc.pktinScheduled.CompareAndSwap(false, true) {
			return
		}
	}
}

// handlePortStatus reflects a hardware port change into the port files.
func (sc *SwitchConn) handlePortStatus(ps *openflow.PortStatus) {
	sc.mu.Lock()
	sc.portConfig[ps.Port.No] = ps.Port.Config
	sc.mu.Unlock()
	switch ps.Reason {
	case openflow.PortDeleted:
		_ = sc.proc.RemoveAll(vfs.Join(sc.Path, "ports", strconv.FormatUint(uint64(ps.Port.No), 10)))
	default:
		if err := yancfs.PopulatePort(sc.proc, sc.Path, ps.Port); err != nil {
			sc.driver.Logf("driver: %s: port status: %v", sc.Name, err)
		}
	}
}

// handleFlowRemoved deletes the corresponding flow directory when the
// hardware expires an entry, keeping the file system truthful.
func (sc *SwitchConn) handleFlowRemoved(fr *openflow.FlowRemoved) {
	key := fr.Match.Key()
	sc.mu.Lock()
	var name string
	for n, st := range sc.flows {
		if st.priority == fr.Priority && st.match.Key() == key {
			name = n
			break
		}
	}
	if name != "" {
		delete(sc.flows, name)
	}
	sc.mu.Unlock()
	if name != "" {
		_ = sc.proc.RemoveAll(vfs.Join(sc.Path, "flows", name))
	}
}

// handleWatchEvent reacts to one file-system change under the switch
// directory, demultiplexed from the driver's shared watch (mux.go) and
// serialized through the mailbox.
func (sc *SwitchConn) handleWatchEvent(ev vfs.Event) {
	switch {
	case ev.Op == vfs.OpWrite && vfs.Base(ev.Path) == yancfs.FileVersion:
		sc.syncFlow(flowNameFromPath(sc.Path, ev.Path))
	case ev.Op == vfs.OpRemove && ev.IsDir && isFlowDir(sc.Path, ev.Path):
		sc.removeFlow(vfs.Base(ev.Path))
	case ev.Op == vfs.OpRename && isFlowDir(sc.Path, ev.Path):
		// Renamed flows keep their hardware entry under the new name.
		sc.renameFlow(vfs.Base(ev.Path), vfs.Base(ev.NewPath))
	case ev.Op == vfs.OpWrite && vfs.Base(ev.Path) == yancfs.FileDoorbell && isPoutFile(sc.Path, ev.Path):
		sc.drainPacketOut()
	case ev.Op == vfs.OpWrite && vfs.Base(ev.Path) == "config.port_down" && isPortFile(sc.Path, ev.Path):
		sc.syncPortConfig(ev.Path)
	}
}

// flowNameFromPath extracts <flow> from <switch>/flows/<flow>/version.
func flowNameFromPath(switchPath, p string) string {
	rel := strings.TrimPrefix(p, switchPath+"/")
	parts := strings.Split(rel, "/")
	if len(parts) >= 2 && parts[0] == "flows" {
		return parts[1]
	}
	return ""
}

// isFlowDir reports whether p is <switch>/flows/<flow>.
func isFlowDir(switchPath, p string) bool {
	rel := strings.TrimPrefix(p, switchPath+"/")
	parts := strings.Split(rel, "/")
	return len(parts) == 2 && parts[0] == "flows"
}

// isPortFile reports whether p is <switch>/ports/<n>/<file>.
func isPortFile(switchPath, p string) bool {
	rel := strings.TrimPrefix(p, switchPath+"/")
	parts := strings.Split(rel, "/")
	return len(parts) == 3 && parts[0] == "ports"
}

// isPoutFile reports whether p is <switch>/pout/<file>.
func isPoutFile(switchPath, p string) bool {
	rel := strings.TrimPrefix(p, switchPath+"/")
	parts := strings.Split(rel, "/")
	return len(parts) == 2 && parts[0] == yancfs.DirPacketOut
}

// drainPacketOut consumes the switch's pout/ queue: each staged message
// is read by reference — the head line is a few bytes, the frame aliases
// the spooled payload block (vfs.ReadFileShared, no copy) — written to
// the control channel, and removed. Removal drops this switch's link on
// the block; the last switch to send reclaims it. Runs in the mailbox,
// keyed by the doorbell write event, so drains never race each other.
func (sc *SwitchConn) drainPacketOut() {
	p := sc.proc
	pout := vfs.Join(sc.Path, yancfs.DirPacketOut)
	entries, err := p.ReadDir(pout)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() || !yancfs.IsPacketOutName(e.Name) {
			continue
		}
		msg := vfs.Join(pout, e.Name)
		head, herr := p.ReadString(vfs.Join(msg, yancfs.PacketOutHead))
		frame, ferr := p.ReadFileShared(vfs.Join(msg, yancfs.PacketOutFrame))
		if herr == nil && ferr == nil {
			po, perr := openflow.ParsePacketOutSpec(head)
			if perr != nil {
				sc.driver.Logf("driver: %s: pout %s: %v", sc.Name, e.Name, perr)
			} else {
				po.Data = frame
				if werr := sc.write(po); werr != nil {
					sc.driver.Logf("driver: %s: pout %s: %v", sc.Name, e.Name, werr)
				}
			}
		}
		//yancvet:allow errdrop consumed message; a failed unlink is retried on the next doorbell
		_ = p.RemoveAll(msg)
	}
}

// syncAllFlows pushes every committed flow directory to hardware. The
// whole table is captured in one read-transaction snapshot — O(1) lock
// acquisitions and a mutually consistent view, instead of a separate
// locked read per flow file — and the flow-mods are pushed to the switch
// after the snapshot, outside any file system lock.
func (sc *SwitchConn) syncAllFlows() {
	snaps, err := sc.driver.Y.SnapshotFlows(sc.Path)
	if err != nil {
		sc.driver.Logf("driver: %s: snapshot flows: %v", sc.Name, err)
		return
	}
	for _, fs := range snaps {
		sc.pushFlow(fs.Name, fs.Version, fs.Spec)
	}
}

// syncFlow pushes one flow directory if its committed version is newer
// than what hardware has ("changes are only sent to hardware by the
// drivers once the version has been incremented", §3.4).
func (sc *SwitchConn) syncFlow(name string) {
	if name == "" {
		return
	}
	flowPath := vfs.Join(sc.Path, "flows", name)
	version, err := yancfs.FlowVersion(sc.proc, flowPath)
	if err != nil || version == 0 {
		return // uncommitted or gone
	}
	spec, err := yancfs.ReadFlow(sc.proc, flowPath)
	if err != nil {
		sc.driver.Logf("driver: %s: read flow %s: %v", sc.Name, name, err)
		return
	}
	sc.pushFlow(name, version, spec)
}

// pushFlow sends one already-read flow to hardware if its committed
// version is newer than what hardware has.
func (sc *SwitchConn) pushFlow(name string, version uint64, spec yancfs.FlowSpec) {
	sc.mu.Lock()
	prev, known := sc.flows[name]
	if known && prev.version >= version {
		sc.mu.Unlock()
		return
	}
	sc.flows[name] = flowState{match: spec.Match, priority: spec.Priority, version: version}
	sc.mu.Unlock()

	// Identity change: remove the superseded hardware entry first.
	if known && (prev.priority != spec.Priority || !prev.match.Equal(spec.Match)) {
		_ = sc.write(&openflow.FlowMod{
			Command:  openflow.FlowDeleteStrict,
			Match:    prev.match,
			Priority: prev.priority,
			BufferID: openflow.NoBuffer,
			OutPort:  openflow.PortAny,
		})
	}
	fm := &openflow.FlowMod{
		Command:     openflow.FlowAdd,
		Match:       spec.Match,
		Priority:    spec.Priority,
		IdleTimeout: spec.IdleTimeout,
		HardTimeout: spec.HardTimeout,
		Cookie:      spec.Cookie,
		BufferID:    openflow.NoBuffer,
		OutPort:     openflow.PortAny,
		Flags:       openflow.FlagSendFlowRem,
		Actions:     spec.Actions,
	}
	if err := sc.write(fm); err != nil {
		sc.driver.Logf("driver: %s: flow-mod: %v", sc.Name, err)
		return
	}
	if hook := sc.driver.FlowInstalledHook; hook != nil {
		hook(vfs.Join(sc.Path, "flows", name), version)
	}
}

// removeFlow deletes the hardware entry backing a removed flow directory.
func (sc *SwitchConn) removeFlow(name string) {
	sc.mu.Lock()
	st, ok := sc.flows[name]
	delete(sc.flows, name)
	sc.mu.Unlock()
	if !ok {
		return
	}
	_ = sc.write(&openflow.FlowMod{
		Command:  openflow.FlowDeleteStrict,
		Match:    st.match,
		Priority: st.priority,
		BufferID: openflow.NoBuffer,
		OutPort:  openflow.PortAny,
	})
}

// renameFlow transfers pushed state to the new directory name.
func (sc *SwitchConn) renameFlow(oldName, newName string) {
	sc.mu.Lock()
	if st, ok := sc.flows[oldName]; ok {
		delete(sc.flows, oldName)
		sc.flows[newName] = st
	}
	sc.mu.Unlock()
}

// syncPortConfig pushes an administrator's config.port_down write to the
// switch — but only when it differs from the hardware state, breaking the
// reflection loop with handlePortStatus.
func (sc *SwitchConn) syncPortConfig(path string) {
	portDir := vfs.Dir(path)
	no64, err := strconv.ParseUint(vfs.Base(portDir), 10, 32)
	if err != nil {
		return
	}
	no := uint32(no64)
	down, err := yancfs.PortDown(sc.proc, portDir)
	if err != nil {
		return
	}
	var want uint32
	if down {
		want = openflow.PortConfigDown
	}
	sc.mu.Lock()
	cur, known := sc.portConfig[no]
	sc.mu.Unlock()
	if known && cur&openflow.PortConfigDown == want {
		return
	}
	hw, _ := func() (openflow.PortInfo, bool) {
		for _, p := range sc.Features.Ports {
			if p.No == no {
				return p, true
			}
		}
		return openflow.PortInfo{}, false
	}()
	_ = sc.write(&openflow.PortMod{
		PortNo: no,
		HWAddr: hw.HWAddr,
		Config: want,
		Mask:   openflow.PortConfigDown,
	})
}

// handlePacketOutWrite parses the packet_out control file format:
// first line "out=<port>[,<more actions>] [in_port=<n>] [buffer_id=<id>]",
// remaining bytes are the raw frame.
func (sc *SwitchConn) handlePacketOutWrite(data []byte) error {
	head, payload, _ := strings.Cut(string(data), "\n")
	po, err := openflow.ParsePacketOutSpec(head)
	if err != nil {
		return fmt.Errorf("driver: %v: %w", err, vfs.ErrInvalid)
	}
	po.Data = []byte(payload)
	return sc.write(po)
}

// queryStats performs a synchronous stats round trip.
func (sc *SwitchConn) queryStats(req *openflow.StatsRequest) (*openflow.StatsReply, bool) {
	ch := make(chan *openflow.StatsReply, 1)
	xid := sc.conn.NewXID()
	req.Xid = xid
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return nil, false
	}
	sc.pending[xid] = ch
	sc.mu.Unlock()
	if err := sc.write(req); err != nil {
		sc.mu.Lock()
		delete(sc.pending, xid)
		sc.mu.Unlock()
		return nil, false
	}
	select {
	case rep := <-ch:
		return rep, true
	case <-time.After(statsTimeout): //yancvet:wallclock stats RPC timeout bounds real network I/O
		sc.mu.Lock()
		delete(sc.pending, xid)
		sc.mu.Unlock()
		return nil, false
	case <-sc.done:
		return nil, false
	}
}

// FlowCounters implements yancfs.CounterSource by querying the switch.
func (sc *SwitchConn) FlowCounters(flowName string) (packets, bytes uint64, ok bool) {
	sc.mu.Lock()
	st, known := sc.flows[flowName]
	sc.mu.Unlock()
	if !known {
		return 0, 0, false
	}
	rep, ok := sc.queryStats(&openflow.StatsRequest{Kind: openflow.StatsFlow, Match: st.match})
	if !ok {
		return 0, 0, false
	}
	for _, fl := range rep.Flows {
		if fl.Priority == st.priority && fl.Match.Equal(st.match) {
			return fl.PacketCount, fl.ByteCount, true
		}
	}
	return 0, 0, false
}

// PortCounters implements yancfs.CounterSource by querying the switch.
func (sc *SwitchConn) PortCounters(no uint32) (yancfs.PortCounterSet, bool) {
	rep, ok := sc.queryStats(&openflow.StatsRequest{Kind: openflow.StatsPort, Port: no})
	if !ok {
		return yancfs.PortCounterSet{}, false
	}
	for _, ps := range rep.Ports {
		if ps.PortNo == no {
			return yancfs.PortCounterSet{
				RxPackets: ps.RxPackets,
				TxPackets: ps.TxPackets,
				RxBytes:   ps.RxBytes,
				TxBytes:   ps.TxBytes,
				RxDropped: ps.RxDropped,
				TxDropped: ps.TxDropped,
			}, true
		}
	}
	return yancfs.PortCounterSet{}, false
}
