//go:build !linux

package driver

// Stub poller for platforms without epoll: newPoller returns nil and
// every connection falls back to a dedicated reader goroutine.
type poller struct{}

func newPoller() *poller                 { return nil }
func (p *poller) add(*SwitchConn) bool   { return false }
func (p *poller) rearm(*SwitchConn) bool { return false }
func (p *poller) del(*SwitchConn)        {}
func (p *poller) loop(m *mux)            { m.wg.Done() }
func (p *poller) close()                 {}

func (sc *SwitchConn) pollRead() {}
