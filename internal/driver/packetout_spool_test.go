package driver

import (
	"testing"
	"time"

	"yanc/internal/libyanc"
	"yanc/internal/openflow"
	"yanc/internal/switchsim"
	"yanc/internal/yancfs"
)

// TestPacketOutSpoolFanout drives the libyanc zero-copy packet-out path
// end to end: one PacketOut call fans a single staged frame out to two
// switches via hard links and doorbells, and both dataplanes deliver
// the identical frame.
func TestPacketOutSpoolFanout(t *testing.T) {
	r := newRig(t, openflow.Version10, 2)
	h1 := switchsim.NewHost("h1", switchsim.HostAddr(1))
	h2 := switchsim.NewHost("h2", switchsim.HostAddr(2))
	_ = r.net.AttachHost(h1, 1, 2)
	_ = r.net.AttachHost(h2, 2, 2)
	r.attach(t, 1)
	r.attach(t, 2)
	frame := []byte{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff, 1, 2, 3, 4, 5, 6, 0x08, 0x00, 7, 7}
	c := libyanc.New(r.y)
	if err := c.PacketOut([]string{"/switches/sw1", "/switches/sw2"}, "out=2", frame); err != nil {
		t.Fatal(err)
	}
	for i, h := range []*switchsim.Host{h1, h2} {
		if !h.WaitFor(func(f [][]byte) bool { return len(f) == 1 }, time.Second) {
			t.Fatalf("host %d: packet-out not delivered", i+1)
		}
		if got := h.Received()[0]; string(got) != string(frame) {
			t.Errorf("host %d frame = %x want %x", i+1, got, frame)
		}
	}
	// The driver consumes messages: the queues drain back to empty
	// (only the doorbell file remains).
	for _, sw := range []string{"sw1", "sw2"} {
		sw := sw
		eventually(t, sw+" pout queue drained", func() bool {
			ents, err := r.y.Root().ReadDir("/switches/" + sw + "/pout")
			if err != nil {
				return false
			}
			for _, e := range ents {
				if yancfs.IsPacketOutName(e.Name) {
					return false
				}
			}
			return true
		})
	}
}

// TestPacketOutSpoolDrainedOnAttach stages a packet-out while the
// switch is disconnected (its directory exists, no driver connection):
// the frame must sit in the pout queue and be delivered when the switch
// attaches, mirroring how flow dirs written offline sync on attach.
func TestPacketOutSpoolDrainedOnAttach(t *testing.T) {
	r := newRig(t, openflow.Version10, 1)
	h2 := switchsim.NewHost("h2", switchsim.HostAddr(2))
	_ = r.net.AttachHost(h2, 1, 2)
	if _, err := yancfs.CreateSwitch(r.y.Root(), "/", "sw1"); err != nil {
		t.Fatal(err)
	}
	frame := []byte{1, 2, 3, 4, 5, 6, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff, 0x08, 0x00, 1}
	if err := libyanc.New(r.y).PacketOut([]string{"/switches/sw1"}, "out=2", frame); err != nil {
		t.Fatal(err)
	}
	if h2.WaitFor(func(f [][]byte) bool { return len(f) > 0 }, 50*time.Millisecond) {
		t.Fatal("frame delivered with no switch attached")
	}
	r.attach(t, 1)
	if !h2.WaitFor(func(f [][]byte) bool { return len(f) == 1 }, time.Second) {
		t.Fatal("staged packet-out not delivered on attach")
	}
	if got := h2.Received()[0]; string(got) != string(frame) {
		t.Errorf("frame = %x want %x", got, frame)
	}
}
