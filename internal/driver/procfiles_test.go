package driver

import (
	"strings"
	"testing"

	"yanc/internal/openflow"
	"yanc/internal/yancfs"
)

func TestProcFilesPublishTelemetry(t *testing.T) {
	r := newRig(t, openflow.Version10, 1)
	r.d.ProcDir = "/.proc/driver"
	sc := r.attach(t, 1)
	p := r.y.Root()

	for _, f := range []string{"rtt", "echo", "tx_rx"} {
		if !p.Exists("/.proc/driver/sw1/" + f) {
			t.Fatalf("missing /.proc/driver/sw1/%s", f)
		}
	}

	// Install a flow so the driver sends a flow-mod; tx must be counted.
	m, _ := openflow.ParseMatch("in_port=1")
	if _, err := yancfs.WriteFlow(p, "/switches/sw1/flows/f", yancfs.FlowSpec{
		Match: m, Priority: 5, Actions: []openflow.Action{openflow.Output(2)},
	}); err != nil {
		t.Fatal(err)
	}
	eventually(t, "flow install", func() bool { return r.net.Switch(1).FlowCount() == 1 })
	eventually(t, "tx counted", func() bool {
		s, _ := p.ReadString("/.proc/driver/sw1/tx_rx")
		return strings.HasPrefix(s, "tx ") && !strings.HasPrefix(s, "tx 0\n")
	})

	echo, err := p.ReadString("/.proc/driver/sw1/echo")
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"sent", "replies", "miss_streak"} {
		if !strings.Contains(echo, field) {
			t.Fatalf("echo file missing %q:\n%s", field, echo)
		}
	}
	rtt, err := p.ReadString("/.proc/driver/sw1/rtt")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rtt, "count") || !strings.Contains(rtt, "p99") {
		t.Fatalf("rtt file malformed:\n%s", rtt)
	}

	// After the connection dies the files stay but report disconnected.
	sc.stop()
	eventually(t, "disconnected reported", func() bool {
		s, _ := p.ReadString("/.proc/driver/sw1/rtt")
		return s == "disconnected"
	})
}
