package driver

import (
	"net"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"yanc/internal/backoff"
	"yanc/internal/faultnet"
	"yanc/internal/openflow"
	"yanc/internal/switchsim"
	"yanc/internal/yancfs"
)

// TestEchoProbesDetectBlackholedSwitch is the headline chaos scenario:
// the control connection of a live switch is blackholed (writes swallowed,
// reads stalled — TCP itself never reports an error), and the driver's
// echo probes are the only thing that can notice. The status file must
// flip to disconnected within the miss window; after the partition heals
// and the switch redials, the flow table must be re-pushed.
func TestEchoProbesDetectBlackholedSwitch(t *testing.T) {
	base := runtime.NumGoroutine()
	y, err := yancfs.New()
	if err != nil {
		t.Fatal(err)
	}
	d := New(y)
	d.EchoInterval = 20 * time.Millisecond
	d.EchoMisses = 3

	inj := faultnet.New(1)
	ln, err := inj.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); _ = d.Serve(ln) }()

	n := switchsim.NewNetwork()
	n.AddSwitch(1, "sw1", openflow.Version10, 2)
	sw := n.Switch(1)
	stop := make(chan struct{})
	dialDone := make(chan struct{})
	go func() {
		defer close(dialDone)
		sw.DialRetry(ln.Addr().String(),
			backoff.Policy{Min: 5 * time.Millisecond, Max: 50 * time.Millisecond, Jitter: -1},
			stop, nil)
	}()

	p := y.Root()
	eventually(t, "initial attach", func() bool {
		s, _ := p.ReadString("/switches/sw1/status")
		return s == "connected"
	})
	m, _ := openflow.ParseMatch("in_port=1")
	if _, err := yancfs.WriteFlow(p, "/switches/sw1/flows/f", yancfs.FlowSpec{
		Match: m, Priority: 5, Actions: []openflow.Action{openflow.Output(2)},
	}); err != nil {
		t.Fatal(err)
	}
	eventually(t, "flow install", func() bool { return sw.FlowCount() == 1 })
	if !p.Exists("/switches/sw1/last_seen") {
		t.Fatal("last_seen missing on a live connection")
	}
	modsBefore := sw.FlowModCount()

	// Blackhole the existing control channel and refuse fresh ones, so
	// the only detection signal is the missed echoes.
	inj.RejectAccepts(true)
	inj.Partition()
	detect := time.Now()
	eventually(t, "echo-driven teardown", func() bool {
		s, _ := p.ReadString("/switches/sw1/status")
		return s == "disconnected"
	})
	// Detection must come from the miss window ((misses+1) probe ticks),
	// not some multi-second transport timeout.
	if elapsed := time.Since(detect); elapsed > 2*time.Second {
		t.Fatalf("detection took %v, want about %v",
			elapsed, time.Duration(d.EchoMisses+1)*d.EchoInterval)
	}

	inj.Heal()
	inj.RejectAccepts(false)
	eventually(t, "reattach after heal", func() bool {
		s, _ := p.ReadString("/switches/sw1/status")
		return s == "connected"
	})
	// The committed flow outlived the connection and was re-pushed to the
	// (empty-tabled, in a real outage possibly power-cycled) switch.
	eventually(t, "flow resync", func() bool {
		return sw.FlowModCount() > modsBefore && sw.FlowCount() == 1
	})

	close(stop)
	ln.Close()
	<-serveDone
	d.Close()
	<-dialDone
	eventually(t, "goroutines drained", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= base+3
	})
}

// TestEchoRepliesHoldConnectionOpen: a healthy switch answering probes
// must never be torn down, and last_seen keeps advancing.
func TestEchoRepliesHoldConnectionOpen(t *testing.T) {
	y, err := yancfs.New()
	if err != nil {
		t.Fatal(err)
	}
	d := New(y)
	d.EchoInterval = 10 * time.Millisecond
	d.EchoMisses = 2
	defer d.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = d.Serve(ln) }()
	defer ln.Close()

	n := switchsim.NewNetwork()
	n.AddSwitch(1, "sw1", openflow.Version10, 2)
	stop := make(chan struct{})
	defer close(stop)
	go n.Switch(1).DialRetry(ln.Addr().String(), backoff.Policy{Min: 5 * time.Millisecond}, stop, nil)

	p := y.Root()
	eventually(t, "attach", func() bool {
		s, _ := p.ReadString("/switches/sw1/status")
		return s == "connected"
	})
	first, _ := p.ReadString("/switches/sw1/last_seen")
	// Outlive several full miss windows.
	time.Sleep(10 * time.Duration(d.EchoMisses) * d.EchoInterval)
	if s, _ := p.ReadString("/switches/sw1/status"); s != "connected" {
		t.Fatalf("healthy switch torn down: status %q", s)
	}
	eventually(t, "last_seen advances", func() bool {
		now, _ := p.ReadString("/switches/sw1/last_seen")
		return now != "" && now >= first
	})
}

// fakeClock is a mutex-guarded settable time source safe to share between
// the test and the driver's goroutines.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Set(t time.Time) {
	c.mu.Lock()
	c.now = t
	c.mu.Unlock()
}

// TestLastSeenUsesFSClock is the regression test for last_seen being
// stamped from the wall clock instead of the file-system clock: under
// simulated time (vfs.FS.SetClock) the staleness judgement chaos tests
// make against last_seen was inconsistent — inode mtimes moved with the
// fake clock while the file's content moved with real time. The driver
// must route the timestamp through the FS clock.
func TestLastSeenUsesFSClock(t *testing.T) {
	y, err := yancfs.New()
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{now: time.Date(2031, 5, 4, 3, 2, 1, 0, time.UTC)}
	y.VFS().SetClock(clk.Now)

	d := New(y)
	d.EchoInterval = 5 * time.Millisecond
	d.EchoMisses = 100 // never tear down during the test
	defer d.Close()

	n := switchsim.NewNetwork()
	n.AddSwitch(1, "sw1", openflow.Version10, 2)
	a, b := net.Pipe()
	go func() { _ = n.Switch(1).ServeController(b) }()
	if _, err := d.Attach(a); err != nil {
		t.Fatal(err)
	}

	p := y.Root()
	eventually(t, "last_seen written", func() bool {
		return p.Exists("/switches/sw1/last_seen")
	})
	want := strconv.FormatInt(clk.Now().Unix(), 10)
	got, err := p.ReadString("/switches/sw1/last_seen")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("last_seen = %q, want fake-clock time %q: driver bypassed the FS clock", got, want)
	}

	// Advance simulated time; echo replies must move last_seen with it.
	clk.Set(clk.Now().Add(90 * time.Second))
	want = strconv.FormatInt(clk.Now().Unix(), 10)
	eventually(t, "last_seen tracks the fake clock", func() bool {
		got, _ := p.ReadString("/switches/sw1/last_seen")
		return got == want
	})
}

// TestLastSeenUsesClockOverride: an explicit Driver.Clock takes
// precedence over the file-system clock.
func TestLastSeenUsesClockOverride(t *testing.T) {
	y, err := yancfs.New()
	if err != nil {
		t.Fatal(err)
	}
	override := time.Date(2040, 1, 1, 0, 0, 0, 0, time.UTC)
	d := New(y)
	d.Clock = func() time.Time { return override }
	d.EchoInterval = 0 // attach stamps last_seen once; that is enough
	defer d.Close()

	n := switchsim.NewNetwork()
	n.AddSwitch(1, "sw1", openflow.Version10, 2)
	a, b := net.Pipe()
	go func() { _ = n.Switch(1).ServeController(b) }()
	if _, err := d.Attach(a); err != nil {
		t.Fatal(err)
	}
	p := y.Root()
	want := strconv.FormatInt(override.Unix(), 10)
	eventually(t, "last_seen follows Clock override", func() bool {
		got, _ := p.ReadString("/switches/sw1/last_seen")
		return got == want
	})
}
