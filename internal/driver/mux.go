package driver

import (
	"runtime"
	"strings"
	"sync"
	"time"

	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

// The driver's connection handling is multiplexed: instead of four
// goroutines per switch (reader, watch dispatcher, packet-in deliverer,
// echo prober), one mux per driver runs
//
//   - a small worker pool executing per-switch tasks,
//   - one recursive watch on <region>/switches demultiplexed to the
//     owning connection by path,
//   - one echo scheduler ticking for every connection, and
//   - (on Linux) one epoll poller owning the read side of every
//     TCP-backed control channel (poll_linux.go).
//
// Each SwitchConn serializes its own work through a mailbox — an
// unbounded FIFO of closures of which at most one is in a worker at a
// time — so per-switch handling keeps the ordering the dedicated
// goroutines provided while the goroutine count stays O(workers), not
// O(switches). A city-scale controller holding thousands of switch
// connections runs on a handful of goroutines.
//
// Transports that are not OS sockets (net.Pipe rigs, fault-injection
// wrappers) keep a dedicated reader goroutine but share everything else.
type mux struct {
	d      *Driver
	watch  *vfs.Watch
	poller *poller // nil when epoll is unavailable

	qmu   sync.Mutex
	cond  *sync.Cond
	queue []func()
	quit  bool

	quitCh chan struct{}
	wg     sync.WaitGroup
}

// muxWatchBuffer sizes the shared switches/ watch. Overflow is survivable
// (every connection resyncs) but at city scale a resync storm is exactly
// what we are trying to avoid, so the buffer is generous.
const muxWatchBuffer = 1 << 16

func newMux(d *Driver) (*mux, error) {
	w, err := d.Y.Root().AddWatch(vfs.Join(d.Region, yancfs.DirSwitches),
		vfs.OpWrite|vfs.OpRemove|vfs.OpRename, vfs.Recursive(), vfs.BufferSize(muxWatchBuffer))
	if err != nil {
		return nil, err
	}
	m := &mux{d: d, watch: w, quitCh: make(chan struct{})}
	m.cond = sync.NewCond(&m.qmu)
	m.poller = newPoller()
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	m.wg.Add(1)
	go m.demux()
	if m.poller != nil {
		m.wg.Add(1)
		go m.poller.loop(m)
	}
	if d.EchoInterval > 0 {
		misses := d.EchoMisses
		if misses <= 0 {
			misses = DefaultEchoMisses
		}
		m.wg.Add(1)
		go m.echoLoop(d.EchoInterval, misses)
	}
	return m, nil
}

// stop shuts every mux goroutine down and waits for them; called from
// Driver.Close after the connections are stopped.
func (m *mux) stop() {
	close(m.quitCh)
	m.qmu.Lock()
	m.quit = true
	m.qmu.Unlock()
	m.cond.Broadcast()
	m.watch.Close()
	if m.poller != nil {
		m.poller.close()
	}
	m.wg.Wait()
}

// submit queues one task for the worker pool.
//
//yancvet:hotalloc
func (m *mux) submit(f func()) {
	m.qmu.Lock()
	if m.quit {
		m.qmu.Unlock()
		return
	}
	m.queue = append(m.queue, f)
	m.qmu.Unlock()
	m.cond.Signal()
}

// worker drains the task queue until the mux stops.
//
//yancvet:hotalloc
func (m *mux) worker() {
	defer m.wg.Done()
	for {
		m.qmu.Lock()
		for len(m.queue) == 0 && !m.quit {
			m.cond.Wait()
		}
		if len(m.queue) == 0 {
			m.qmu.Unlock()
			return
		}
		f := m.queue[0]
		m.queue[0] = nil
		m.queue = m.queue[1:]
		m.qmu.Unlock()
		f()
	}
}

// demux routes shared-watch events to the owning connection's mailbox.
// Events for switches with no live connection are dropped: a later
// attach resyncs from the file system, which is also how events raced
// against registration are covered.
func (m *mux) demux() {
	defer m.wg.Done()
	root := vfs.Join(m.d.Region, yancfs.DirSwitches)
	for ev := range m.watch.C {
		if ev.Op == vfs.OpOverflow {
			// Lost events: every connection resyncs.
			for _, sc := range m.d.snapshotConns() {
				sc.enqueue(sc.syncAllFlows)
			}
			continue
		}
		name := switchNameFromPath(root, ev.Path)
		if name == "" {
			continue
		}
		sc := m.d.Lookup(name)
		if sc == nil {
			continue
		}
		ev := ev
		sc.enqueue(func() { sc.handleWatchEvent(ev) })
	}
}

// echoLoop is the single liveness scheduler: one ticker fans a probe
// task out to every connection's mailbox.
func (m *mux) echoLoop(interval time.Duration, misses int) {
	defer m.wg.Done()
	t := time.NewTicker(interval) //yancvet:wallclock echo pacing is real I/O cadence; tests tune EchoInterval instead
	defer t.Stop()
	for {
		select {
		case <-m.quitCh:
			return
		case <-t.C:
		}
		for _, sc := range m.d.snapshotConns() {
			sc := sc
			sc.enqueue(func() { sc.echoProbe(misses) })
		}
	}
}

// switchNameFromPath extracts the switch name from a path under the
// shared watch root (<root>/<switch>[/...]).
func switchNameFromPath(root, p string) string {
	if !strings.HasPrefix(p, root) {
		return ""
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(p, root), "/")
	if rel == "" {
		return ""
	}
	if i := strings.IndexByte(rel, '/'); i >= 0 {
		return rel[:i]
	}
	return rel
}

// enqueue appends a task to the connection's mailbox, scheduling a
// drain on the worker pool if one is not already running. The mailbox
// serializes a connection's work — watch events, echo probes, packet-in
// deliveries, poller reads — without pinning a goroutine per switch.
// The drain task submitted is the method value bound once at attach
// (drainBoxFn), not sc.drainBox, which would allocate a closure per
// wakeup.
//
//yancvet:hotalloc
func (sc *SwitchConn) enqueue(f func()) {
	sc.boxMu.Lock()
	sc.box = append(sc.box, f)
	start := !sc.boxActive
	if start {
		sc.boxActive = true
	}
	sc.boxMu.Unlock()
	if start {
		sc.mux.submit(sc.drainBoxFn)
	}
}

// drainBox runs mailbox tasks in FIFO order until the mailbox is empty.
//
//yancvet:hotalloc
func (sc *SwitchConn) drainBox() {
	for {
		sc.boxMu.Lock()
		if len(sc.box) == 0 {
			sc.boxActive = false
			sc.boxMu.Unlock()
			return
		}
		f := sc.box[0]
		sc.box[0] = nil
		sc.box = sc.box[1:]
		sc.boxMu.Unlock()
		f()
	}
}
