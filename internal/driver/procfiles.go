package driver

import (
	"fmt"
	"strings"

	"yanc/internal/vfs"
)

// installProcFiles publishes the switch's control-channel telemetry as
// synthetic files under <ProcDir>/<name>. The files capture the driver
// and the switch name — not the SwitchConn — and resolve the live
// connection through Lookup on every read, so they survive reconnects
// and report "disconnected" while the switch is away.
func (d *Driver) installProcFiles(name string) {
	dir := vfs.Join(d.ProcDir, name)
	file := func(render func(sc *SwitchConn) string) *vfs.Synthetic {
		return &vfs.Synthetic{Read: func() ([]byte, error) {
			sc := d.Lookup(name)
			if sc == nil {
				return []byte("disconnected\n"), nil
			}
			return []byte(render(sc)), nil
		}}
	}
	err := d.Y.VFS().WithTx(func(tx *vfs.Tx) error {
		if err := tx.MkdirAll(dir, 0o555, 0, 0); err != nil {
			return err
		}
		for fname, render := range map[string]func(*SwitchConn) string{
			"rtt":   renderRTT,
			"echo":  renderEcho,
			"tx_rx": renderTxRx,
			"pktin": renderPktIn,
		} {
			if err := tx.SetSynthetic(vfs.Join(dir, fname), file(render), 0o444, 0, 0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		d.Logf("driver: %s: install proc files: %v", name, err)
	}
}

// renderRTT reports the echo round-trip-time histogram.
func renderRTT(sc *SwitchConn) string {
	s := sc.rtt.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "count %d\n", s.Count)
	fmt.Fprintf(&b, "avg %v\n", s.Avg())
	fmt.Fprintf(&b, "p50 %v\n", s.Quantile(0.50))
	fmt.Fprintf(&b, "p99 %v\n", s.Quantile(0.99))
	fmt.Fprintf(&b, "max %v\n", s.Max)
	return b.String()
}

// renderEcho reports liveness-probe accounting.
func renderEcho(sc *SwitchConn) string {
	sc.mu.Lock()
	streak := sc.echoMiss
	sc.mu.Unlock()
	return fmt.Sprintf("sent %d\nreplies %d\nmiss_streak %d\n",
		sc.echoSent.Load(), sc.echoReplies.Load(), streak)
}

// renderTxRx reports control-channel message counts.
func renderTxRx(sc *SwitchConn) string {
	return fmt.Sprintf("tx %d\nrx %d\n", sc.txMsgs.Load(), sc.rxMsgs.Load())
}

// renderPktIn reports the packet-in coalescing pipeline: messages read
// off the wire, shed under backpressure, and delivery batches issued.
func renderPktIn(sc *SwitchConn) string {
	return fmt.Sprintf("seen %d\nshed %d\nbatches %d\n",
		sc.pktinSeen.Load(), sc.pktinDropped.Load(), sc.pktinBatches.Load())
}
