//go:build linux

package driver

import (
	"sync"
	"syscall"
)

// poller is the shared epoll instance owning the read side of every
// TCP-backed switch connection. Each fd is registered edge-less with
// EPOLLONESHOT: readiness fires exactly one pollRead task through the
// owning connection's mailbox, which drains the socket to EAGAIN and
// re-arms. That gives one-reader-at-a-time semantics per connection with
// no per-connection goroutine blocked in a read.
type poller struct {
	epfd int

	mu   sync.Mutex
	regs map[int32]*SwitchConn
	quit bool
}

const pollEvents = uint32(syscall.EPOLLIN | syscall.EPOLLRDHUP | syscall.EPOLLONESHOT)

// newPoller returns nil if epoll is unavailable; callers fall back to
// per-connection reader goroutines.
func newPoller() *poller {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil
	}
	return &poller{epfd: epfd, regs: make(map[int32]*SwitchConn)}
}

// add registers the connection's fd. The fd is captured under
// RawConn.Control so it cannot be closed (or reused) mid-registration.
func (p *poller) add(sc *SwitchConn) bool {
	var ok bool
	cerr := sc.rawConn.Control(func(fd uintptr) {
		ev := syscall.EpollEvent{Events: pollEvents, Fd: int32(fd)}
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.quit {
			return
		}
		if syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_ADD, int(fd), &ev) == nil {
			p.regs[int32(fd)] = sc
			sc.pollFd = int32(fd)
			ok = true
		}
	})
	return cerr == nil && ok
}

// rearm re-enables one-shot readiness after a drain.
func (p *poller) rearm(sc *SwitchConn) bool {
	var ok bool
	cerr := sc.rawConn.Control(func(fd uintptr) {
		ev := syscall.EpollEvent{Events: pollEvents, Fd: int32(fd)}
		ok = syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_MOD, int(fd), &ev) == nil
	})
	return cerr == nil && ok
}

// del deregisters the fd. Must run before the connection is closed so a
// reused fd number can never alias a stale registration; Control fails
// harmlessly if the fd is already gone (the kernel then dropped the
// epoll entry itself).
func (p *poller) del(sc *SwitchConn) {
	_ = sc.rawConn.Control(func(fd uintptr) {
		_ = syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_DEL, int(fd), nil)
	})
	p.mu.Lock()
	if p.regs[sc.pollFd] == sc {
		delete(p.regs, sc.pollFd)
	}
	p.mu.Unlock()
}

// loop waits for readiness and fans read tasks out to connection
// mailboxes. The 50ms wait tick bounds shutdown latency.
func (p *poller) loop(m *mux) {
	defer m.wg.Done()
	events := make([]syscall.EpollEvent, 128)
	for {
		n, err := syscall.EpollWait(p.epfd, events, 50)
		p.mu.Lock()
		quit := p.quit
		p.mu.Unlock()
		if quit {
			syscall.Close(p.epfd)
			return
		}
		if err != nil {
			if err == syscall.EINTR {
				continue
			}
			syscall.Close(p.epfd)
			return
		}
		for i := 0; i < n; i++ {
			p.mu.Lock()
			sc := p.regs[events[i].Fd]
			p.mu.Unlock()
			if sc == nil {
				continue
			}
			sc.enqueue(sc.pollRead)
		}
	}
}

func (p *poller) close() {
	p.mu.Lock()
	p.quit = true
	p.mu.Unlock()
}

// pollRead drains the socket to EAGAIN, decoding and dispatching every
// complete frame, then re-arms the one-shot registration. Runs in the
// connection's mailbox, so it is the only reader of readBuf. Reads go
// through RawConn.Read's callback (returning true, so it never blocks)
// to hold the fd alive against a concurrent Close.
func (sc *SwitchConn) pollRead() {
	sc.mu.Lock()
	closed := sc.closed
	sc.mu.Unlock()
	if closed {
		return
	}
	scratch := sc.scratch
	if scratch == nil {
		scratch = make([]byte, 1<<15)
		sc.scratch = scratch
	}
	for {
		var n int
		var rerr error
		cerr := sc.rawConn.Read(func(fd uintptr) bool {
			n, rerr = syscall.Read(int(fd), scratch)
			return true
		})
		if cerr != nil {
			sc.stop()
			return
		}
		if rerr == syscall.EAGAIN || rerr == syscall.EWOULDBLOCK {
			break
		}
		if rerr == syscall.EINTR {
			continue
		}
		if rerr != nil || n == 0 {
			sc.stop()
			return
		}
		sc.readBuf = append(sc.readBuf, scratch[:n]...)
		if !sc.decodeFrames() {
			return
		}
	}
	if !sc.mux.poller.rearm(sc) {
		sc.stop()
	}
}
