package driver

import (
	"net"
	"testing"
	"time"

	"yanc/internal/openflow"
	"yanc/internal/switchsim"
	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

// rig is a full controller-to-dataplane test setup: a yanc fs, a driver,
// and a simulated network whose switches are attached over net.Pipe.
type rig struct {
	y      *yancfs.FS
	d      *Driver
	net    *switchsim.Network
	conns  map[uint64]*SwitchConn
	serves map[uint64]chan error
}

func newRig(t *testing.T, version uint8, numSwitches int) *rig {
	t.Helper()
	y, err := yancfs.New()
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{
		y:      y,
		d:      New(y),
		net:    switchsim.NewNetwork(),
		conns:  make(map[uint64]*SwitchConn),
		serves: make(map[uint64]chan error),
	}
	for i := 1; i <= numSwitches; i++ {
		r.net.AddSwitch(uint64(i), nameFor(uint64(i)), version, 4)
	}
	t.Cleanup(r.d.Close)
	return r
}

func nameFor(dpid uint64) string { return New(nil).NameFor(dpid) }

// attach connects one simulated switch to the driver.
func (r *rig) attach(t *testing.T, dpid uint64) *SwitchConn {
	t.Helper()
	sw := r.net.Switch(dpid)
	a, b := net.Pipe()
	serveErr := make(chan error, 1)
	go func() { serveErr <- sw.ServeController(b) }()
	sc, err := r.d.Attach(a)
	if err != nil {
		t.Fatalf("attach sw%d: %v", dpid, err)
	}
	r.conns[dpid] = sc
	r.serves[dpid] = serveErr
	return sc
}

// eventually polls cond for up to a second.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestAttachPopulatesSwitchDirectory(t *testing.T) {
	for _, version := range []uint8{openflow.Version10, openflow.Version13} {
		r := newRig(t, version, 1)
		r.attach(t, 1)
		p := r.y.Root()
		if !p.IsDir("/switches/sw1") {
			t.Fatal("switch dir missing")
		}
		id, err := yancfs.SwitchID(p, "/switches/sw1")
		if err != nil || id != 1 {
			t.Fatalf("id = %d %v", id, err)
		}
		want := "openflow10"
		if version == openflow.Version13 {
			want = "openflow13"
		}
		if s, _ := p.ReadString("/switches/sw1/protocol"); s != want {
			t.Errorf("protocol = %q want %q", s, want)
		}
		ports, err := yancfs.ListPorts(p, "/switches/sw1")
		if err != nil || len(ports) != 4 {
			t.Fatalf("ports = %v %v", ports, err)
		}
		if s, _ := p.ReadString("/switches/sw1/ports/2/name"); s != "sw1-eth2" {
			t.Errorf("port name = %q", s)
		}
	}
}

func TestFlowCommitReachesHardware(t *testing.T) {
	for _, version := range []uint8{openflow.Version10, openflow.Version13} {
		r := newRig(t, version, 1)
		h1 := switchsim.NewHost("h1", switchsim.HostAddr(1))
		h2 := switchsim.NewHost("h2", switchsim.HostAddr(2))
		_ = r.net.AttachHost(h1, 1, 1)
		_ = r.net.AttachHost(h2, 1, 2)
		r.attach(t, 1)
		p := r.y.Root()
		m, _ := openflow.ParseMatch("in_port=1")
		// The static-flow-pusher path: write files, bump version.
		if _, err := yancfs.WriteFlow(p, "/switches/sw1/flows/fwd", yancfs.FlowSpec{
			Match:    m,
			Priority: 10,
			Actions:  []openflow.Action{openflow.Output(2)},
		}); err != nil {
			t.Fatal(err)
		}
		sw := r.net.Switch(1)
		eventually(t, "flow install", func() bool { return sw.FlowCount() == 1 })
		h1.Ping(h2, 1)
		if !h2.WaitFor(func(f [][]byte) bool { return len(f) > 0 }, time.Second) {
			t.Fatalf("v%d: dataplane did not forward", version)
		}
	}
}

func TestUncommittedFlowStaysOffHardware(t *testing.T) {
	r := newRig(t, openflow.Version10, 1)
	r.attach(t, 1)
	p := r.y.Root()
	if err := p.Mkdir("/switches/sw1/flows/staged", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteString("/switches/sw1/flows/staged/match.in_port", "1\n"); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteString("/switches/sw1/flows/staged/action.out", "2\n"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if n := r.net.Switch(1).FlowCount(); n != 0 {
		t.Fatalf("uncommitted flow reached hardware (%d entries)", n)
	}
	// Commit; now it lands.
	if _, err := yancfs.CommitFlow(p, "/switches/sw1/flows/staged"); err != nil {
		t.Fatal(err)
	}
	eventually(t, "post-commit install", func() bool { return r.net.Switch(1).FlowCount() == 1 })
}

func TestFlowDirRemovalDeletesHardwareEntry(t *testing.T) {
	r := newRig(t, openflow.Version10, 1)
	r.attach(t, 1)
	p := r.y.Root()
	m, _ := openflow.ParseMatch("in_port=1")
	if _, err := yancfs.WriteFlow(p, "/switches/sw1/flows/f", yancfs.FlowSpec{
		Match: m, Priority: 5, Actions: []openflow.Action{openflow.Output(2)},
	}); err != nil {
		t.Fatal(err)
	}
	sw := r.net.Switch(1)
	eventually(t, "install", func() bool { return sw.FlowCount() == 1 })
	if err := p.Remove("/switches/sw1/flows/f"); err != nil {
		t.Fatal(err)
	}
	eventually(t, "delete", func() bool { return sw.FlowCount() == 0 })
}

func TestFlowEditChangesIdentity(t *testing.T) {
	r := newRig(t, openflow.Version10, 1)
	r.attach(t, 1)
	p := r.y.Root()
	m1, _ := openflow.ParseMatch("in_port=1")
	if _, err := yancfs.WriteFlow(p, "/switches/sw1/flows/f", yancfs.FlowSpec{
		Match: m1, Priority: 5, Actions: []openflow.Action{openflow.Output(2)},
	}); err != nil {
		t.Fatal(err)
	}
	sw := r.net.Switch(1)
	eventually(t, "install", func() bool { return sw.FlowCount() == 1 })
	// Rewrite with a different match: hardware must end up with exactly
	// one entry, the new one.
	m2, _ := openflow.ParseMatch("in_port=3")
	if _, err := yancfs.WriteFlow(p, "/switches/sw1/flows/f", yancfs.FlowSpec{
		Match: m2, Priority: 7, Actions: []openflow.Action{openflow.Output(4)},
	}); err != nil {
		t.Fatal(err)
	}
	eventually(t, "replace", func() bool {
		stats := sw.FlowStats(openflow.Match{})
		return len(stats) == 1 && stats[0].Priority == 7 && stats[0].Match.Equal(m2)
	})
}

func TestPacketInLandsInEventBuffers(t *testing.T) {
	r := newRig(t, openflow.Version10, 1)
	h1 := switchsim.NewHost("h1", switchsim.HostAddr(1))
	h2 := switchsim.NewHost("h2", switchsim.HostAddr(2))
	_ = r.net.AttachHost(h1, 1, 1)
	_ = r.net.AttachHost(h2, 1, 2)
	p := r.y.Root()
	buf, w, err := yancfs.Subscribe(p, "/", "router")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	r.attach(t, 1)
	h1.Ping(h2, 9) // table miss
	eventually(t, "packet-in event", func() bool {
		msgs, _ := yancfs.PendingEvents(p, buf)
		return len(msgs) == 1
	})
	msgs, _ := yancfs.PendingEvents(p, buf)
	ev, err := yancfs.ReadPacketIn(p, msgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if ev.Switch != "sw1" || ev.InPort != 1 || ev.Reason != openflow.ReasonNoMatch {
		t.Errorf("event = %+v", ev)
	}
	if len(ev.Data) == 0 {
		t.Error("event has no frame data")
	}
}

func TestPacketOutControlFile(t *testing.T) {
	r := newRig(t, openflow.Version10, 1)
	h2 := switchsim.NewHost("h2", switchsim.HostAddr(2))
	_ = r.net.AttachHost(h2, 1, 2)
	r.attach(t, 1)
	p := r.y.Root()
	frame := []byte{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff, 1, 2, 3, 4, 5, 6, 0x08, 0x00, 9, 9}
	payload := append([]byte("out=2\n"), frame...)
	if err := p.WriteFile("/switches/sw1/packet_out", payload, 0o644); err != nil {
		t.Fatal(err)
	}
	if !h2.WaitFor(func(f [][]byte) bool { return len(f) == 1 }, time.Second) {
		t.Fatal("packet-out not delivered")
	}
	got := h2.Received()[0]
	if string(got) != string(frame) {
		t.Errorf("frame = %x want %x", got, frame)
	}
	// Bad spec is rejected at close time.
	if err := p.WriteFile("/switches/sw1/packet_out", []byte("nonsense\nxx"), 0o644); err == nil {
		t.Error("bad packet_out spec must fail")
	}
}

func TestPortDownFileReachesSwitchAndBack(t *testing.T) {
	r := newRig(t, openflow.Version10, 1)
	r.attach(t, 1)
	p := r.y.Root()
	// Administrator brings port 2 down via the file system (§3.1).
	if err := p.WriteString("/switches/sw1/ports/2/config.port_down", "1\n"); err != nil {
		t.Fatal(err)
	}
	sw := r.net.Switch(1)
	eventually(t, "hardware port down", func() bool {
		pc, ok := sw.PortCounters(2)
		return ok && pc.Config&openflow.PortConfigDown != 0
	})
	// The switch's port-status notification reflects back into the
	// status file.
	eventually(t, "status file update", func() bool {
		s, _ := p.ReadString("/switches/sw1/ports/2/config.port_status")
		return s == "down"
	})
	// And back up.
	if err := p.WriteString("/switches/sw1/ports/2/config.port_down", "0\n"); err != nil {
		t.Fatal(err)
	}
	eventually(t, "hardware port up", func() bool {
		pc, ok := sw.PortCounters(2)
		return ok && pc.Config&openflow.PortConfigDown == 0
	})
}

func TestLiveCountersThroughFS(t *testing.T) {
	r := newRig(t, openflow.Version10, 1)
	h1 := switchsim.NewHost("h1", switchsim.HostAddr(1))
	h2 := switchsim.NewHost("h2", switchsim.HostAddr(2))
	_ = r.net.AttachHost(h1, 1, 1)
	_ = r.net.AttachHost(h2, 1, 2)
	r.attach(t, 1)
	p := r.y.Root()
	m, _ := openflow.ParseMatch("in_port=1")
	if _, err := yancfs.WriteFlow(p, "/switches/sw1/flows/f", yancfs.FlowSpec{
		Match: m, Priority: 5, Actions: []openflow.Action{openflow.Output(2)},
	}); err != nil {
		t.Fatal(err)
	}
	eventually(t, "install", func() bool { return r.net.Switch(1).FlowCount() == 1 })
	for i := 0; i < 3; i++ {
		h1.Ping(h2, uint16(i))
	}
	// cat flows/f/counters/packets pulls live hardware counters.
	eventually(t, "flow counters", func() bool {
		s, err := p.ReadString("/switches/sw1/flows/f/counters/packets")
		return err == nil && s == "3"
	})
	eventually(t, "port counters", func() bool {
		s, err := p.ReadString("/switches/sw1/ports/1/counters/rx_packets")
		return err == nil && s == "3"
	})
}

func TestLiveProtocolUpgrade(t *testing.T) {
	// §4.1: "Nodes in such a system can therefore be gradually upgraded,
	// live, to newer protocols." The switch reconnects speaking OF 1.3;
	// the committed flows survive in the fs and are re-pushed.
	r := newRig(t, openflow.Version10, 1)
	sc := r.attach(t, 1)
	p := r.y.Root()
	m, _ := openflow.ParseMatch("in_port=1,dl_type=0x0800,nw_dst=10.0.0.0/24")
	if _, err := yancfs.WriteFlow(p, "/switches/sw1/flows/f", yancfs.FlowSpec{
		Match: m, Priority: 5, Actions: []openflow.Action{openflow.Output(2)},
	}); err != nil {
		t.Fatal(err)
	}
	eventually(t, "install", func() bool { return r.net.Switch(1).FlowCount() == 1 })
	if s, _ := p.ReadString("/switches/sw1/protocol"); s != "openflow10" {
		t.Fatalf("protocol = %q", s)
	}
	// Upgrade: tear down, replace with an OF 1.3 datapath (same dpid,
	// fresh tables — firmware upgrade wipes them).
	sc.stop()
	<-sc.Done()
	r.net = func() *switchsim.Network {
		n := switchsim.NewNetwork()
		n.AddSwitch(1, "sw1", openflow.Version13, 4)
		return n
	}()
	r.attach(t, 1)
	if s, _ := p.ReadString("/switches/sw1/protocol"); s != "openflow13" {
		t.Fatalf("upgraded protocol = %q", s)
	}
	// The driver re-pushed the committed flow over the new protocol.
	eventually(t, "re-push after upgrade", func() bool {
		stats := r.net.Switch(1).FlowStats(openflow.Match{})
		return len(stats) == 1 && stats[0].Match.Equal(m)
	})
}

func TestMixedVersionNetwork(t *testing.T) {
	// One driver, two switches, two protocol versions simultaneously.
	y, err := yancfs.New()
	if err != nil {
		t.Fatal(err)
	}
	d := New(y)
	defer d.Close()
	n := switchsim.NewNetwork()
	n.AddSwitch(1, "sw1", openflow.Version10, 2)
	n.AddSwitch(2, "sw2", openflow.Version13, 2)
	for dpid := uint64(1); dpid <= 2; dpid++ {
		a, b := net.Pipe()
		sw := n.Switch(dpid)
		go func() { _ = sw.ServeController(b) }()
		if _, err := d.Attach(a); err != nil {
			t.Fatal(err)
		}
	}
	p := y.Root()
	if s, _ := p.ReadString("/switches/sw1/protocol"); s != "openflow10" {
		t.Errorf("sw1 protocol = %q", s)
	}
	if s, _ := p.ReadString("/switches/sw2/protocol"); s != "openflow13" {
		t.Errorf("sw2 protocol = %q", s)
	}
	// The same file write works against both.
	m, _ := openflow.ParseMatch("dl_type=0x0800,tp_dst=80,nw_proto=6")
	for _, sw := range []string{"sw1", "sw2"} {
		if _, err := yancfs.WriteFlow(p, "/switches/"+sw+"/flows/web", yancfs.FlowSpec{
			Match: m, Priority: 9, Actions: []openflow.Action{openflow.Output(1)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	eventually(t, "both installed", func() bool {
		return n.Switch(1).FlowCount() == 1 && n.Switch(2).FlowCount() == 1
	})
	for dpid := uint64(1); dpid <= 2; dpid++ {
		stats := n.Switch(dpid).FlowStats(openflow.Match{})
		if len(stats) != 1 || !stats[0].Match.Equal(m) {
			t.Errorf("sw%d stats = %+v", dpid, stats)
		}
	}
}

func TestHardwareExpiryRemovesFlowDir(t *testing.T) {
	r := newRig(t, openflow.Version10, 1)
	r.attach(t, 1)
	p := r.y.Root()
	sw := r.net.Switch(1)
	clock := time.Now()
	sw.SetClock(func() time.Time { return clock })
	m, _ := openflow.ParseMatch("in_port=1")
	if _, err := yancfs.WriteFlow(p, "/switches/sw1/flows/f", yancfs.FlowSpec{
		Match: m, Priority: 5, IdleTimeout: 1, Actions: []openflow.Action{openflow.Output(2)},
	}); err != nil {
		t.Fatal(err)
	}
	eventually(t, "install", func() bool { return sw.FlowCount() == 1 })
	clock = clock.Add(5 * time.Second)
	sw.Tick(clock)
	eventually(t, "fs reflects expiry", func() bool {
		return !p.Exists("/switches/sw1/flows/f")
	})
}

func TestWatchEscalationOnOverflowResyncs(t *testing.T) {
	r := newRig(t, openflow.Version10, 1)
	r.attach(t, 1)
	p := r.y.Root()
	// Hammer commits; even if the driver's watch overflows, the final
	// state must converge to all flows installed.
	for i := 0; i < 50; i++ {
		m, _ := openflow.ParseMatch("tp_dst=" + itoa(2000+i) + ",dl_type=0x0800,nw_proto=6")
		if _, err := yancfs.WriteFlow(p, "/switches/sw1/flows/f"+itoa(i), yancfs.FlowSpec{
			Match: m, Priority: uint16(i), Actions: []openflow.Action{openflow.Output(2)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	eventually(t, "all 50 installed", func() bool { return r.net.Switch(1).FlowCount() == 50 })
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestDriverPermissionModel(t *testing.T) {
	// Flows pushed by root are untouchable by other users, but the
	// driver (root) still syncs its own.
	r := newRig(t, openflow.Version10, 1)
	r.attach(t, 1)
	root := r.y.Root()
	alice := r.y.Proc(vfs.Cred{UID: 1000})
	m, _ := openflow.ParseMatch("in_port=1")
	if _, err := yancfs.WriteFlow(root, "/switches/sw1/flows/f", yancfs.FlowSpec{
		Match: m, Priority: 5, Actions: []openflow.Action{openflow.Output(2)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := alice.WriteString("/switches/sw1/flows/f/priority", "0"); err == nil {
		t.Error("alice could overwrite a root flow")
	}
	if err := alice.Remove("/switches/sw1/flows/f"); err == nil {
		t.Error("alice could remove a root flow")
	}
}
