package driver

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"yanc/internal/backoff"
	"yanc/internal/openflow"
	"yanc/internal/switchsim"
	"yanc/internal/yancfs"
)

// TestMassConnectHandshakeBacklog is the regression test for the mass
// (re)connect path: 1000 switches dialing one listener concurrently must
// all end up attached and "connected" — no spurious handshake timeouts,
// no accept-queue overflow, no dialer left stuck in backoff. This is
// what forced the bounded handshake backlog in Serve, the staggered
// DialRetry in switchsim, and the multiplexed read path (goroutine-per-
// switch read loops would be 4000 goroutines here; the mux runs the
// same population on a worker pool).
func TestMassConnectHandshakeBacklog(t *testing.T) {
	const nSwitches = 1000
	y, err := yancfs.New()
	if err != nil {
		t.Fatal(err)
	}
	d := New(y)
	d.EchoInterval = 30 * time.Second // out of the way; liveness has its own tests
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); _ = d.Serve(ln) }()

	n := switchsim.NewNetwork()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	pol := backoff.Policy{Min: 20 * time.Millisecond, Max: 500 * time.Millisecond, Jitter: -1}
	for i := 1; i <= nSwitches; i++ {
		n.AddSwitch(uint64(i), fmt.Sprintf("sw%d", i), openflow.Version13, 2)
		sw := n.Switch(uint64(i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			sw.DialRetryStaggered(ln.Addr().String(), pol, 2*time.Second, stop, nil)
		}()
	}

	p := y.Root()
	connected := func() int {
		c := 0
		for i := 1; i <= nSwitches; i++ {
			if s, _ := p.ReadString(fmt.Sprintf("/switches/sw%d/status", i)); s == "connected" {
				c++
			}
		}
		return c
	}
	deadline := time.Now().Add(90 * time.Second)
	for {
		c := connected()
		if c == nSwitches {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d switches connected before the deadline", c, nSwitches)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Every connection is live in the driver's registry too.
	for i := 1; i <= nSwitches; i++ {
		if d.Lookup(fmt.Sprintf("sw%d", i)) == nil {
			t.Fatalf("sw%d missing from driver registry", i)
		}
	}

	close(stop)
	ln.Close()
	<-serveDone
	d.Close()
	wg.Wait()
}
