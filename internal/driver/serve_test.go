package driver

import (
	"net"
	"testing"
	"time"

	"yanc/internal/openflow"
	"yanc/internal/switchsim"
	"yanc/internal/yancfs"
)

// TestServeAcceptsTCPSwitches exercises the listener path used by yancd.
func TestServeAcceptsTCPSwitches(t *testing.T) {
	y, err := yancfs.New()
	if err != nil {
		t.Fatal(err)
	}
	d := New(y)
	defer d.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- d.Serve(ln) }()

	n := switchsim.NewNetwork()
	n.AddSwitch(7, "sw7", openflow.Version10, 2)
	go func() { _ = n.Switch(7).Dial(ln.Addr().String()) }()

	p := y.Root()
	eventually(t, "switch dir over TCP", func() bool { return p.IsDir("/switches/sw7") })
	// The directory appears during populate, slightly before the driver
	// registers the connection; wait for registration.
	eventually(t, "registration", func() bool { return d.Lookup("sw7") != nil })
	if sc := d.Lookup("sw7"); sc.Name != "sw7" {
		t.Fatalf("Lookup = %+v", sc)
	}
	if sc := d.Lookup("ghost"); sc != nil {
		t.Fatal("phantom lookup")
	}
	// Closing the listener ends Serve cleanly.
	ln.Close()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("serve did not return")
	}
}

// TestFlowDirRenameKeepsHardwareEntry: renaming a flow directory must not
// disturb the installed entry, and later edits under the new name apply.
func TestFlowDirRenameKeepsHardwareEntry(t *testing.T) {
	r := newRig(t, openflow.Version10, 1)
	r.attach(t, 1)
	p := r.y.Root()
	m, _ := openflow.ParseMatch("in_port=1")
	if _, err := yancfs.WriteFlow(p, "/switches/sw1/flows/old-name", yancfs.FlowSpec{
		Match: m, Priority: 5, Actions: []openflow.Action{openflow.Output(2)},
	}); err != nil {
		t.Fatal(err)
	}
	sw := r.net.Switch(1)
	eventually(t, "install", func() bool { return sw.FlowCount() == 1 })
	mods := sw.FlowModCount()
	if err := p.Rename("/switches/sw1/flows/old-name", "/switches/sw1/flows/new-name"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if sw.FlowCount() != 1 {
		t.Fatalf("rename disturbed hardware: %d entries", sw.FlowCount())
	}
	if sw.FlowModCount() != mods {
		t.Fatalf("rename sent %d extra flow-mods", sw.FlowModCount()-mods)
	}
	// Deleting under the new name removes the hardware entry: the pushed
	// state followed the rename.
	if err := p.Remove("/switches/sw1/flows/new-name"); err != nil {
		t.Fatal(err)
	}
	eventually(t, "delete after rename", func() bool { return sw.FlowCount() == 0 })
}

// TestPacketOutSpecEdgeCases covers the control-file parser's error and
// option paths.
func TestPacketOutSpecEdgeCases(t *testing.T) {
	r := newRig(t, openflow.Version10, 1)
	h2 := switchsim.NewHost("h2", switchsim.HostAddr(2))
	_ = r.net.AttachHost(h2, 1, 2)
	r.attach(t, 1)
	p := r.y.Root()
	frame := make([]byte, 20)
	for i := range frame {
		frame[i] = byte(i)
	}
	write := func(spec string) error {
		return p.WriteFile("/switches/sw1/packet_out", append([]byte(spec+"\n"), frame...), 0o644)
	}
	// in_port and explicit numeric out port.
	if err := write("out=2 in_port=1"); err != nil {
		t.Fatal(err)
	}
	if !h2.WaitFor(func(f [][]byte) bool { return len(f) == 1 }, time.Second) {
		t.Fatal("packet-out with in_port not delivered")
	}
	// Missing action rejected.
	if err := write("in_port=1"); err == nil {
		t.Error("no-action spec accepted")
	}
	// Bad tokens rejected.
	for _, bad := range []string{"out", "in_port=abc", "buffer_id=zz", "bogus=1"} {
		if err := write(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	// Unknown buffer id falls back to inline data.
	if err := write("out=2 buffer_id=424242"); err != nil {
		t.Fatal(err)
	}
	if !h2.WaitFor(func(f [][]byte) bool { return len(f) == 2 }, time.Second) {
		t.Fatal("packet-out with stale buffer not delivered inline")
	}
}

// TestStatusFileTracksLiveness: the status file reflects the control
// channel's state across disconnect and reconnect.
func TestStatusFileTracksLiveness(t *testing.T) {
	r := newRig(t, openflow.Version10, 1)
	sc := r.attach(t, 1)
	p := r.y.Root()
	eventually(t, "connected status", func() bool {
		s, _ := p.ReadString("/switches/sw1/status")
		return s == "connected"
	})
	sc.stop()
	<-sc.Done()
	eventually(t, "disconnected status", func() bool {
		s, _ := p.ReadString("/switches/sw1/status")
		return s == "disconnected"
	})
	// The directory itself — and its flows — survive for resync.
	if !p.IsDir("/switches/sw1/flows") {
		t.Fatal("switch state vanished on disconnect")
	}
	r.attach(t, 1)
	eventually(t, "reconnected status", func() bool {
		s, _ := p.ReadString("/switches/sw1/status")
		return s == "connected"
	})
}

// TestCounterQueryOnDeadConnection: synthetic counter reads fail soft
// (return zero) when the switch is gone, instead of wedging the fs.
func TestCounterQueryOnDeadConnection(t *testing.T) {
	r := newRig(t, openflow.Version10, 1)
	sc := r.attach(t, 1)
	p := r.y.Root()
	m, _ := openflow.ParseMatch("in_port=1")
	if _, err := yancfs.WriteFlow(p, "/switches/sw1/flows/f", yancfs.FlowSpec{
		Match: m, Priority: 5, Actions: []openflow.Action{openflow.Output(2)},
	}); err != nil {
		t.Fatal(err)
	}
	eventually(t, "install", func() bool { return r.net.Switch(1).FlowCount() == 1 })
	sc.stop()
	<-sc.Done()
	// The read returns promptly with a zero value rather than hanging.
	start := time.Now()
	s, err := p.ReadString("/switches/sw1/flows/f/counters/packets")
	if err != nil || s != "0" {
		t.Fatalf("dead counter read = %q %v", s, err)
	}
	if time.Since(start) > statsTimeout+time.Second {
		t.Fatal("counter read hung past the stats timeout")
	}
}
