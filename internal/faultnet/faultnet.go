// Package faultnet wraps net.Conn and net.Listener with injectable
// network faults, so every partial-failure mode a production controller
// meets — a hung switch, a partitioned control channel, a slow or lossy
// WAN between controllers — is reproducible inside an ordinary unit
// test. An Injector owns a fault configuration and every connection
// wrapped through it; tests flip faults on and off at runtime while
// traffic is flowing:
//
//	inj := faultnet.New(seed)
//	l, _ := inj.Listen("tcp", "127.0.0.1:0") // server side sees faults
//	...
//	inj.Partition()  // blackhole: writes vanish, reads stall, no error
//	inj.Heal()
//	inj.KillAll()    // mid-stream connection kills
//
// Faults injected:
//
//   - one-way latency plus uniform jitter on delivered bytes;
//   - a byte-rate cap (token-less: each op sleeps n/rate);
//   - probabilistic mid-stream connection kills per I/O op;
//   - partitions: writes are silently swallowed and incoming bytes are
//     dropped, exactly like a switch that is up but unreachable — the
//     failure TCP alone can never surface as an error;
//   - asymmetric (one-way) partitions via PartitionDir: silence only
//     the inbound or only the outbound half, modelling e.g. a leader
//     that can still send heartbeats but hears no acknowledgments;
//   - accept-time rejections, for servers that are up but refusing.
package faultnet

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is returned from I/O on a connection the injector killed.
var ErrInjected = errors.New("faultnet: injected connection kill")

// Config is the tunable fault set. The zero value injects nothing.
type Config struct {
	Latency  time.Duration // added delay per delivered read
	Jitter   time.Duration // uniform extra delay in [0, Jitter)
	ByteRate int           // max bytes/second per op direction (0 = unlimited)
	KillProb float64       // chance per I/O op of killing the connection
}

// Injector owns a fault configuration and the set of live wrapped
// connections. All methods are safe for concurrent use; fault changes
// apply immediately to existing connections.
// Clock abstracts the timers the injector uses to realize latency and
// scheduled heals. Tests virtualize fault timing by injecting their own
// (SetClock); the default reads the real clock.
type Clock struct {
	Sleep     func(time.Duration)
	AfterFunc func(time.Duration, func()) *time.Timer
}

func realClock() Clock {
	return Clock{Sleep: time.Sleep, AfterFunc: time.AfterFunc}
}

// SetClock replaces the injector's timers. Zero fields keep the real
// clock for that timer.
func (in *Injector) SetClock(c Clock) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	if c.AfterFunc == nil {
		c.AfterFunc = time.AfterFunc
	}
	in.clock = c
}

// Direction selects which half of the wrapped endpoints' traffic a
// partition silences. Inbound silences what the wrapped side receives
// (its reads stall and in-flight bytes are discarded); Outbound
// silences what it sends (writes "succeed" and vanish).
type Direction int

// Partition directions.
const (
	Inbound Direction = 1 << iota
	Outbound
	Both = Inbound | Outbound
)

type Injector struct {
	mu            sync.Mutex
	cond          *sync.Cond
	cfg           Config
	rng           *rand.Rand
	clock         Clock
	partitioned   Direction // bitmask of silenced directions
	rejectAccepts bool
	conns         map[*Conn]struct{}
}

// New creates an injector with no faults. The seed makes probabilistic
// kills reproducible.
func New(seed int64) *Injector {
	in := &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		clock: realClock(),
		conns: make(map[*Conn]struct{}),
	}
	in.cond = sync.NewCond(&in.mu)
	return in
}

// SetConfig replaces the fault configuration.
func (in *Injector) SetConfig(cfg Config) {
	in.mu.Lock()
	in.cfg = cfg
	in.mu.Unlock()
}

// Partition starts a blackhole: every wrapped connection's writes are
// swallowed and reads stall, with no error surfaced to either side.
func (in *Injector) Partition() { in.PartitionDir(Both) }

// PartitionDir starts an asymmetric partition silencing only the given
// direction(s) of the wrapped endpoints — the classic use being a
// leader whose outbound heartbeats still flow (Inbound partition: it
// hears nothing back) so only a lease, not a missed heartbeat, can
// dethrone it.
func (in *Injector) PartitionDir(d Direction) {
	in.mu.Lock()
	in.partitioned |= d
	in.mu.Unlock()
	in.cond.Broadcast() // a widened partition never unblocks, but a changed one may reorder waiters
}

// Heal ends the partition in every direction; stalled reads resume.
func (in *Injector) Heal() {
	in.mu.Lock()
	in.partitioned = 0
	in.mu.Unlock()
	in.cond.Broadcast()
}

// PartitionFor schedules a partition lasting d, returning immediately.
func (in *Injector) PartitionFor(d time.Duration) { in.PartitionDirFor(Both, d) }

// PartitionDirFor is PartitionDir with a heal scheduled after d on the
// injector's clock, so tests can drive even one-way outages on a
// virtual timeline.
func (in *Injector) PartitionDirFor(dir Direction, d time.Duration) {
	in.PartitionDir(dir)
	in.mu.Lock()
	afterFunc := in.clock.AfterFunc
	in.mu.Unlock()
	afterFunc(d, in.Heal)
}

// RejectAccepts toggles accept-time rejection: listeners accept and
// immediately drop new connections (the server is up but refusing).
func (in *Injector) RejectAccepts(v bool) {
	in.mu.Lock()
	in.rejectAccepts = v
	in.mu.Unlock()
}

// KillAll abruptly closes every live wrapped connection (a mid-stream
// kill of the whole fabric).
func (in *Injector) KillAll() {
	in.mu.Lock()
	conns := make([]*Conn, 0, len(in.conns))
	for c := range in.conns {
		conns = append(conns, c)
	}
	in.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Conns reports the number of live wrapped connections.
func (in *Injector) Conns() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.conns)
}

// Wrap returns c with this injector's faults applied to its I/O.
func (in *Injector) Wrap(c net.Conn) net.Conn {
	fc := &Conn{Conn: c, in: in}
	in.mu.Lock()
	in.conns[fc] = struct{}{}
	in.mu.Unlock()
	return fc
}

// Listen is a convenience: net.Listen then WrapListener.
func (in *Injector) Listen(network, addr string) (net.Listener, error) {
	l, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return in.WrapListener(l), nil
}

// WrapListener wraps every accepted connection with the injector.
func (in *Injector) WrapListener(l net.Listener) net.Listener {
	return &Listener{Listener: l, in: in}
}

func (in *Injector) isPartitioned(d Direction) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.partitioned&d != 0
}

// waitHealthy blocks while the fabric's inbound direction is
// partitioned; it returns an error only if the connection is closed
// while waiting.
func (in *Injector) waitHealthy(c *Conn) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	for in.partitioned&Inbound != 0 {
		if c.closed.Load() {
			return net.ErrClosed
		}
		in.cond.Wait()
	}
	if c.closed.Load() {
		return net.ErrClosed
	}
	return nil
}

// delay sleeps for the configured latency, jitter, and byte-rate cost
// of moving n bytes.
func (in *Injector) delay(n int) {
	in.mu.Lock()
	cfg := in.cfg
	sleep := in.clock.Sleep
	var jitter time.Duration
	if cfg.Jitter > 0 {
		jitter = time.Duration(in.rng.Int63n(int64(cfg.Jitter)))
	}
	in.mu.Unlock()
	d := cfg.Latency + jitter
	if cfg.ByteRate > 0 {
		d += time.Duration(float64(n) / float64(cfg.ByteRate) * float64(time.Second))
	}
	if d > 0 {
		sleep(d)
	}
}

// roll reports whether this I/O op should kill the connection.
func (in *Injector) roll() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.cfg.KillProb > 0 && in.rng.Float64() < in.cfg.KillProb
}

func (in *Injector) drop(c *Conn) {
	in.mu.Lock()
	delete(in.conns, c)
	in.mu.Unlock()
	in.cond.Broadcast()
}

// Conn is a fault-injected connection. Faults are controlled by the
// Injector that wrapped it.
type Conn struct {
	net.Conn
	in     *Injector
	closed atomic.Bool
}

// Read delivers bytes from the peer through the fault model: delayed by
// latency/jitter/rate, dropped during a partition, and occasionally
// killing the connection.
func (c *Conn) Read(b []byte) (int, error) {
	for {
		if err := c.in.waitHealthy(c); err != nil {
			return 0, err
		}
		n, err := c.Conn.Read(b)
		if err != nil {
			return n, err
		}
		// Bytes that were in flight when a partition hit are lost, not
		// delivered late: discard and stall like a real blackhole.
		if c.in.isPartitioned(Inbound) {
			continue
		}
		c.in.delay(n)
		if c.in.roll() {
			c.Close()
			return 0, ErrInjected
		}
		return n, nil
	}
}

// Write sends bytes through the fault model. During a partition the
// write "succeeds" and the bytes vanish — the caller cannot tell, which
// is the point.
func (c *Conn) Write(b []byte) (int, error) {
	if c.closed.Load() {
		return 0, net.ErrClosed
	}
	if c.in.isPartitioned(Outbound) {
		return len(b), nil
	}
	c.in.delay(len(b))
	if c.in.roll() {
		c.Close()
		return 0, ErrInjected
	}
	return c.Conn.Write(b)
}

// Close closes the underlying connection and wakes any reader stalled
// in a partition.
func (c *Conn) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	err := c.Conn.Close()
	c.in.drop(c)
	return err
}

// Listener applies an injector to every accepted connection.
type Listener struct {
	net.Listener
	in *Injector
}

// Accept waits for a connection, dropping it immediately when the
// injector is rejecting accepts.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if func() bool {
			l.in.mu.Lock()
			defer l.in.mu.Unlock()
			return l.in.rejectAccepts
		}() {
			c.Close()
			continue
		}
		return l.in.Wrap(c), nil
	}
}
