package faultnet

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// pair returns a wrapped server-side conn and a raw client-side conn
// joined over loopback TCP.
func pair(t *testing.T, in *Injector) (server net.Conn, client net.Conn) {
	t.Helper()
	l, err := in.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan net.Conn, 1)
	errs := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			errs <- err
			return
		}
		accepted <- c
	}()
	client, err = net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case server = <-accepted:
	case err := <-errs:
		t.Fatal(err)
	case <-time.After(2 * time.Second):
		t.Fatal("accept timed out")
	}
	t.Cleanup(func() { server.Close(); client.Close() })
	return server, client
}

func TestTransparentWhenHealthy(t *testing.T) {
	in := New(1)
	server, client := pair(t, in)
	if _, err := client.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(server, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("read = %q %v", buf, err)
	}
	if _, err := server.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(client, buf); err != nil || string(buf) != "pong" {
		t.Fatalf("reply = %q %v", buf, err)
	}
	if in.Conns() != 1 {
		t.Errorf("live conns = %d", in.Conns())
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	in := New(1)
	in.SetConfig(Config{Latency: 50 * time.Millisecond})
	server, client := pair(t, in)
	start := time.Now()
	client.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Errorf("delivery took %v, want >= ~50ms", d)
	}
}

func TestByteRateCapsThroughput(t *testing.T) {
	in := New(1)
	in.SetConfig(Config{ByteRate: 10_000}) // 10 KB/s
	server, client := pair(t, in)
	payload := make([]byte, 1000) // should cost ~100ms to deliver
	client.Write(payload)
	start := time.Now()
	if _, err := io.ReadFull(server, make([]byte, len(payload))); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Errorf("1000B at 10KB/s delivered in %v, want >= ~100ms", d)
	}
}

func TestPartitionBlackholesBothDirections(t *testing.T) {
	in := New(1)
	server, client := pair(t, in)
	in.Partition()
	// Wrapped-side writes "succeed" but vanish.
	if n, err := server.Write([]byte("lost")); n != 4 || err != nil {
		t.Fatalf("partitioned write = %d %v", n, err)
	}
	// Bytes sent toward the wrapped side are dropped, and the read stalls
	// with no error.
	client.Write([]byte("also lost"))
	readDone := make(chan struct{})
	go func() {
		buf := make([]byte, 16)
		n, _ := server.Read(buf)
		_ = n
		close(readDone)
	}()
	select {
	case <-readDone:
		t.Fatal("read returned during partition")
	case <-time.After(50 * time.Millisecond):
	}
	// Nothing reached the raw peer.
	client.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if n, err := client.Read(make([]byte, 16)); err == nil {
		t.Fatalf("peer received %d bytes through a partition", n)
	}
	client.SetReadDeadline(time.Time{})
	// Heal: traffic sent after the heal flows again.
	in.Heal()
	client.Write([]byte("fresh"))
	select {
	case <-readDone:
	case <-time.After(2 * time.Second):
		t.Fatal("read did not resume after heal")
	}
}

func TestKillProbKillsMidStream(t *testing.T) {
	in := New(7)
	in.SetConfig(Config{KillProb: 1})
	server, client := pair(t, in)
	if _, err := server.Write([]byte("doomed")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write on killed fabric = %v", err)
	}
	// The kill is a real close: the raw peer sees EOF/reset.
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := client.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer still alive after injected kill")
	}
	if in.Conns() != 0 {
		t.Errorf("conns after kill = %d", in.Conns())
	}
}

func TestKillAllClosesEverything(t *testing.T) {
	in := New(1)
	server, _ := pair(t, in)
	server2, _ := pair(t, in)
	if in.Conns() != 2 {
		t.Fatalf("conns = %d", in.Conns())
	}
	in.KillAll()
	if in.Conns() != 0 {
		t.Errorf("conns after KillAll = %d", in.Conns())
	}
	if _, err := server.Read(make([]byte, 1)); err == nil {
		t.Error("read succeeded on killed conn")
	}
	if _, err := server2.Read(make([]byte, 1)); err == nil {
		t.Error("read succeeded on killed conn 2")
	}
}

func TestPartitionedReadUnblocksOnClose(t *testing.T) {
	in := New(1)
	server, _ := pair(t, in)
	in.Partition()
	done := make(chan error, 1)
	go func() {
		_, err := server.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	server.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("read returned nil after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read stayed blocked after close")
	}
	in.Heal()
}

func TestRejectAccepts(t *testing.T) {
	in := New(1)
	l, err := in.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	in.RejectAccepts(true)
	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err) // TCP handshake completes; rejection is at accept time
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("rejected connection delivered data")
	}
	c.Close()
	// Accepts work again once rejection is lifted.
	in.RejectAccepts(false)
	c2, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if in.Conns() == 0 {
		// Give the accept loop a beat to wrap the conn.
		time.Sleep(50 * time.Millisecond)
	}
	if in.Conns() != 1 {
		t.Errorf("accepted conns = %d", in.Conns())
	}
}

// TestSetClock virtualizes fault timing: injected latency is realized
// through the injected sleeper and PartitionFor's heal timer fires via
// the injected AfterFunc instead of the real clock.
func TestSetClock(t *testing.T) {
	inj := New(1)
	var mu sync.Mutex
	var slept []time.Duration
	heals := make(chan func(), 1)
	inj.SetClock(Clock{
		Sleep: func(d time.Duration) {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
		},
		AfterFunc: func(d time.Duration, f func()) *time.Timer {
			heals <- f
			return nil
		},
	})

	inj.SetConfig(Config{Latency: 50 * time.Millisecond})
	server, client := pair(t, inj)
	defer server.Close()
	defer client.Close()
	if _, err := server.Write([]byte("ping")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(client, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("read = %q, %v", buf, err)
	}
	mu.Lock()
	nslept := len(slept)
	var total time.Duration
	for _, d := range slept {
		total += d
	}
	mu.Unlock()
	if nslept == 0 {
		t.Fatal("injected sleeper never invoked for latency")
	}
	if total < 50*time.Millisecond {
		t.Fatalf("injected sleeps total %v, want >= configured 50ms", total)
	}

	// The heal for a scheduled partition fires through the injected
	// timer: grab it and run it by hand instead of waiting an hour.
	inj.SetConfig(Config{})
	inj.PartitionFor(time.Hour)
	if _, err := server.Write([]byte("gone")); err != nil {
		t.Fatalf("partitioned write should swallow silently, got %v", err)
	}
	heal := <-heals
	heal()
	if _, err := server.Write([]byte("back")); err != nil {
		t.Fatalf("post-heal write: %v", err)
	}
	if _, err := io.ReadFull(client, buf); err != nil || string(buf) != "back" {
		t.Fatalf("post-heal read = %q, %v", buf, err)
	}
}

// TestPartitionDirOutbound silences only what the wrapped side sends:
// its writes vanish while traffic toward it still flows.
func TestPartitionDirOutbound(t *testing.T) {
	inj := New(7)
	server, client := pair(t, inj)

	inj.PartitionDir(Outbound)
	if _, err := server.Write([]byte("lost")); err != nil {
		t.Fatalf("outbound-partitioned write must swallow silently, got %v", err)
	}
	// Inbound is untouched: the client's bytes still reach the server.
	if _, err := client.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(server, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("inbound read = %q, %v", buf, err)
	}
	// The swallowed bytes never arrive, even after traffic progressed.
	client.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if n, err := client.Read(buf); err == nil {
		t.Fatalf("client read %q during outbound partition", buf[:n])
	}
	client.SetReadDeadline(time.Time{})

	inj.Heal()
	if _, err := server.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(client, buf); err != nil || string(buf) != "back" {
		t.Fatalf("post-heal read = %q, %v", buf, err)
	}
}

// TestPartitionDirInboundDeterministicHeal drives a one-way inbound
// outage entirely on the injected clock: the scheduled heal is captured
// and fired by hand, and the stalled read completes the moment it runs —
// no real time governs the outcome.
func TestPartitionDirInboundDeterministicHeal(t *testing.T) {
	inj := New(9)
	heals := make(chan func(), 1)
	inj.SetClock(Clock{
		AfterFunc: func(d time.Duration, f func()) *time.Timer {
			heals <- f
			return nil
		},
	})
	server, client := pair(t, inj)

	inj.PartitionDirFor(Inbound, time.Hour)
	// Outbound still flows: the wrapped side can send while deaf.
	if _, err := server.Write([]byte("hb")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(client, buf); err != nil || string(buf) != "hb" {
		t.Fatalf("outbound during inbound partition = %q, %v", buf, err)
	}

	// A read against the silenced direction parks until the heal.
	if _, err := client.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	got := make(chan string, 1)
	go func() {
		b := make([]byte, 2)
		if _, err := io.ReadFull(server, b); err == nil {
			got <- string(b)
		}
	}()
	select {
	case s := <-got:
		t.Fatalf("read %q delivered during inbound partition", s)
	case <-time.After(50 * time.Millisecond):
	}

	heal := <-heals
	heal()
	select {
	case s := <-got:
		if s != "ok" {
			t.Fatalf("post-heal read = %q", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read still stalled after injected heal fired")
	}
}
