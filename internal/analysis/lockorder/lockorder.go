// Package lockorder enforces the VFS lock-ordering discipline documented
// in internal/vfs/lock.go (DESIGN.md §8) at compile time:
//
//  1. tree lock before stripe lock, never the reverse — code holding a
//     stripe must not acquire the tree lock in any mode;
//  2. at most one stripe lock at a time;
//  3. code running under the tree lock (Tx methods, DirSemantics hooks,
//     WithTx/ReadTx callbacks) must not call a Proc-level entry point
//     that re-acquires the tree lock — sync.RWMutex is not reentrant;
//  4. Synthetic providers run outside all tree locks, so invoking a
//     provider while the tree lock is held is a self-deadlock (the PR 3
//     Tx.ReadFile/Synthetic.Read bug this analyzer exists to prevent).
//
// The lock package (internal/vfs) is recognized by shape — any package
// declaring lockTree and rlockTree methods on one receiver — and is
// checked intra-procedurally with a CFG dataflow plus an in-package
// static call graph. The analyzer then exports facts (which exported
// functions acquire the tree lock, which run callbacks under it) so that
// every downstream package's DirSemantics hooks and WithTx/ReadTx
// callbacks are checked against rule 3 as well.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"
	"golang.org/x/tools/go/types/typeutil"

	"yanc/internal/analysis/internal/directive"
	"yanc/internal/analysis/internal/lockset"
)

// AcquiresTreeLock marks a function that (transitively) acquires the VFS
// tree lock in some mode. Downstream hook code must not call it.
type AcquiresTreeLock struct{}

// IsLockPackage marks the package that defines the VFS locking
// vocabulary.
type IsLockPackage struct{}

// CallsParamUnderTreeLock marks a function that invokes one or more of
// its function-typed parameters while holding the tree lock (WithTx,
// ReadTx): arguments passed at Params run under the lock.
type CallsParamUnderTreeLock struct{ Params []int }

func (*AcquiresTreeLock) AFact()        {}
func (*IsLockPackage) AFact()           {}
func (*CallsParamUnderTreeLock) AFact() {}

func (*AcquiresTreeLock) String() string { return "acquiresTreeLock" }
func (*IsLockPackage) String() string    { return "isLockPackage" }
func (f *CallsParamUnderTreeLock) String() string {
	return fmt.Sprintf("callsParamUnderTreeLock%v", f.Params)
}

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "check the VFS lock-ordering rules: no tree-lock acquisition under a stripe or under itself, " +
		"one stripe at a time, and no Proc-level re-entry or Synthetic provider call under the tree lock",
	Requires:  []*analysis.Analyzer{ctrlflow.Analyzer},
	FactTypes: []analysis.Fact{(*AcquiresTreeLock)(nil), (*IsLockPackage)(nil), (*CallsParamUnderTreeLock)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	info := lockset.Find(pass)
	if info != nil {
		runLockPackage(pass, info)
	} else {
		runConsumer(pass)
	}
	return nil, nil
}

// lockState counts locks held at a program point: the tree lock (any
// mode) and inode-state stripes. Values merge by element-wise max, so a
// lock held on any path into a join counts as held.
type lockState struct{ tree, shard int }

func (s lockState) merge(o lockState) lockState {
	return lockState{tree: max(s.tree, o.tree), shard: max(s.shard, o.shard)}
}

// checker walks one function's CFG tracking lockState. Deferred releases
// do NOT clear state here: a defer runs at return, so for re-entry
// purposes the lock stays held for the rest of the function.
type checker struct {
	pass     *analysis.Pass
	info     *lockset.Info
	cfgs     *ctrlflow.CFGs
	treeAcq  map[*types.Func]bool // functions that transitively acquire the tree lock
	shardAcq map[*types.Func]bool // functions that transitively acquire a stripe
	params   map[*types.Var]int   // func-typed params of the current decl
	lockedPs map[int]bool         // params called while the tree lock was held
	reported map[token.Pos]bool
	inlined  map[*ast.FuncLit]bool // literals analyzed at their (immediate) call site
}

func runLockPackage(pass *analysis.Pass, info *lockset.Info) {
	graph := lockset.BuildGraph(pass)
	treeTargets := map[*types.Func]bool{}
	shardTargets := map[*types.Func]bool{}
	for fn, op := range info.Primitives {
		switch op {
		case lockset.OpLockTree, lockset.OpRLockTree:
			treeTargets[fn] = true
		case lockset.OpLockShard:
			shardTargets[fn] = true
		}
	}
	c := &checker{
		pass:     pass,
		info:     info,
		cfgs:     pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs),
		treeAcq:  graph.Reaches(treeTargets),
		shardAcq: graph.Reaches(shardTargets),
		reported: map[token.Pos]bool{},
		inlined:  map[*ast.FuncLit]bool{},
	}

	pass.ExportPackageFact(&IsLockPackage{})
	for fn := range c.treeAcq {
		fn := fn
		pass.ExportObjectFact(fn, &AcquiresTreeLock{})
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if _, isPrimitive := info.Primitives[obj]; isPrimitive {
				continue // the primitives manipulate the locks by definition
			}
			init := lockState{}
			if recvIsTx(obj, info) {
				// Tx methods run with the tree lock held by contract.
				init.tree = 1
			}
			c.params = map[*types.Var]int{}
			c.lockedPs = map[int]bool{}
			if sig, ok := obj.Type().(*types.Signature); ok {
				for i := 0; i < sig.Params().Len(); i++ {
					p := sig.Params().At(i)
					if _, isFunc := p.Type().Underlying().(*types.Signature); isFunc {
						c.params[p] = i
					}
				}
			}
			if g := c.cfgs.FuncDecl(fd); g != nil {
				c.analyzeCFG(g, init)
			}
			if len(c.lockedPs) > 0 {
				fact := &CallsParamUnderTreeLock{}
				for i := range c.lockedPs {
					fact.Params = append(fact.Params, i)
				}
				sortInts(fact.Params)
				pass.ExportObjectFact(obj, fact)
			}
		}
	}

	// Function literals that were not analyzed inline at a call site run
	// on their own (state: no locks held) — e.g. closures stored in
	// fields or passed to other packages.
	c.params = nil
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && !c.inlined[lit] {
				if g := c.cfgs.FuncLit(lit); g != nil {
					c.analyzeCFG(g, lockState{})
				}
			}
			return true
		})
	}
}

// analyzeCFG runs the lock-state dataflow over one function's CFG and
// returns the merged state at its exits.
func (c *checker) analyzeCFG(g *cfg.CFG, init lockState) lockState {
	in := make([]lockState, len(g.Blocks))
	seen := make([]bool, len(g.Blocks))
	if len(g.Blocks) == 0 {
		return init
	}
	in[0], seen[0] = init, true
	exit := lockState{}
	sawExit := false
	// Iterate to fixpoint; lock states are tiny and CFGs are small.
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			if !seen[b.Index] {
				continue
			}
			st := in[b.Index]
			for _, node := range b.Nodes {
				c.walk(node, &st)
			}
			if len(b.Succs) == 0 {
				if b.Live {
					exit = exit.merge(st)
					sawExit = true
				}
				continue
			}
			for _, succ := range b.Succs {
				if !seen[succ.Index] {
					seen[succ.Index] = true
					in[succ.Index] = st
					changed = true
				} else if merged := in[succ.Index].merge(st); merged != in[succ.Index] {
					in[succ.Index] = merged
					changed = true
				}
			}
		}
	}
	if !sawExit {
		return init
	}
	return exit
}

// walk visits node in approximate evaluation order, updating st and
// reporting violations at call sites.
func (c *checker) walk(node ast.Node, st *lockState) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Not invoked here: analyzed standalone later.
			return false
		case *ast.DeferStmt:
			c.visitCall(n.Call, st, true)
			return false
		case *ast.CallExpr:
			c.visitCall(n, st, false)
			return false
		}
		return true
	})
}

// visitCall processes one call: arguments first, then the call's own
// effect. deferred releases are ignored (the lock stays held until the
// function returns).
func (c *checker) visitCall(call *ast.CallExpr, st *lockState, deferred bool) {
	c.walk(call.Fun, st) // selector base may contain calls
	for _, arg := range call.Args {
		c.walk(arg, st)
	}

	// Immediately invoked literal: its body runs here, under the current
	// state. Deferred literals run at return, when every lock acquired
	// without a pending release is still held — same state, conservatively.
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		c.inlined[lit] = true
		if g := c.cfgs.FuncLit(lit); g != nil {
			*st = c.analyzeCFG(g, *st)
		}
		return
	}

	switch c.info.Classify(c.pass, call) {
	case lockset.OpLockTree, lockset.OpRLockTree:
		if st.tree > 0 {
			c.report(call, "tree lock acquired while the tree lock is already held (sync.RWMutex is not reentrant; lock.go rule 3)")
		}
		if st.shard > 0 {
			c.report(call, "tree lock acquired while holding a stripe lock (lock.go rule 1: tree before shard, never the reverse)")
		}
		st.tree++
		return
	case lockset.OpUnlockTree, lockset.OpRUnlockTree:
		if !deferred && st.tree > 0 {
			st.tree--
		}
		return
	case lockset.OpLockShard:
		if st.shard > 0 {
			c.report(call, "stripe lock acquired while another stripe is held (lock.go rule 2: at most one stripe at a time)")
		}
		st.shard++
		return
	case lockset.OpUnlockShard:
		if !deferred && st.shard > 0 {
			st.shard--
		}
		return
	}

	if name, ok := c.info.IsSyntheticProviderCall(c.pass, call); ok {
		if st.tree > 0 {
			c.report(call, fmt.Sprintf("%s provider invoked under the tree lock: providers may perform Proc I/O and must run outside all tree locks (lock.go rule 4; the PR 3 Tx.ReadFile self-deadlock)", name))
		}
		return
	}

	if callee := typeutil.StaticCallee(c.pass.TypesInfo, call); callee != nil && callee.Pkg() == c.pass.Pkg {
		if st.tree > 0 && c.treeAcq[callee] {
			c.report(call, fmt.Sprintf("call to %s may acquire the tree lock, but the tree lock is already held (lock.go rule 3: use the Tx)", callee.Name()))
		}
		if st.shard > 0 {
			if c.treeAcq[callee] {
				c.report(call, fmt.Sprintf("call to %s may acquire the tree lock while a stripe is held (lock.go rule 1)", callee.Name()))
			} else if c.shardAcq[callee] {
				c.report(call, fmt.Sprintf("call to %s may acquire a second stripe lock (lock.go rule 2)", callee.Name()))
			}
		}
	}

	// A function-typed parameter invoked under the tree lock: record it so
	// callers' arguments are checked as under-lock callbacks (WithTx).
	if st.tree > 0 && c.params != nil {
		if id, ok := call.Fun.(*ast.Ident); ok {
			if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
				if idx, ok := c.params[v]; ok {
					c.lockedPs[idx] = true
				}
			}
		}
	}
}

func (c *checker) report(call *ast.CallExpr, msg string) {
	if c.reported[call.Lparen] {
		return
	}
	c.reported[call.Lparen] = true
	if f := directive.FileFor(c.pass, call.Pos()); f != nil && directive.Allows(c.pass, f, call.Pos(), "lockorder") {
		return
	}
	c.pass.Reportf(call.Pos(), "%s", msg)
}

// ---- consumer packages: hooks and under-lock callbacks ----

// runConsumer checks rule 3 in packages that use a lock package: code
// bound as DirSemantics hooks, or passed as WithTx/ReadTx callbacks,
// must never call a function that acquires the tree lock.
func runConsumer(pass *analysis.Pass) {
	lockPkgs := map[*types.Package]bool{}
	for _, imp := range pass.Pkg.Imports() {
		if pass.ImportPackageFact(imp, &IsLockPackage{}) {
			lockPkgs[imp] = true
		}
	}
	if len(lockPkgs) == 0 {
		return
	}
	semTypes := map[types.Type]bool{}
	for p := range lockPkgs {
		if tn, ok := p.Scope().Lookup("DirSemantics").(*types.TypeName); ok {
			semTypes[tn.Type()] = true
		}
	}

	graph := lockset.BuildGraph(pass)
	type root struct {
		node lockset.Node
		desc string
	}
	var roots []root
	addRoot := func(expr ast.Expr, desc string) {
		switch e := expr.(type) {
		case *ast.FuncLit:
			roots = append(roots, root{lockset.LitNode(e), desc})
			return
		}
		// A named function or method value: if it is local, walk its body;
		// if it is from the lock package itself, check its fact directly.
		var obj types.Object
		switch e := expr.(type) {
		case *ast.Ident:
			obj = pass.TypesInfo.Uses[e]
		case *ast.SelectorExpr:
			obj = pass.TypesInfo.Uses[e.Sel]
		}
		fn, ok := obj.(*types.Func)
		if !ok {
			return
		}
		if fn.Pkg() == pass.Pkg {
			if node, ok := graph.Decls[fn]; ok {
				roots = append(roots, root{node, desc})
			}
			return
		}
		if pass.ImportObjectFact(fn, &AcquiresTreeLock{}) {
			reportConsumer(pass, expr.Pos(), fmt.Sprintf("%s acquires the tree lock but is bound as %s, which runs under the tree lock (lock.go rule 3)", fn.FullName(), desc))
		}
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				t := pass.TypesInfo.TypeOf(n)
				if t == nil || !semTypes[deref(t)] {
					return true
				}
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok || !isFuncExpr(pass, kv.Value) {
						continue
					}
					addRoot(kv.Value, "DirSemantics."+key.Name)
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok || i >= len(n.Rhs) {
						continue
					}
					selection, ok := pass.TypesInfo.Selections[sel]
					if !ok || selection.Kind() != types.FieldVal {
						continue
					}
					if owner := fieldOwner(selection); owner != nil && semTypes[owner] {
						addRoot(n.Rhs[i], "DirSemantics."+sel.Sel.Name)
					}
				}
			case *ast.CallExpr:
				callee := typeutil.StaticCallee(pass.TypesInfo, n)
				if callee == nil {
					return true
				}
				var fact CallsParamUnderTreeLock
				has := false
				if callee.Pkg() == pass.Pkg {
					has = pass.ImportObjectFact(callee, &fact)
				} else {
					has = pass.ImportObjectFact(callee, &fact)
				}
				if !has {
					return true
				}
				for _, idx := range fact.Params {
					if idx < len(n.Args) {
						addRoot(n.Args[idx], fmt.Sprintf("a %s callback (runs under the tree lock)", callee.Name()))
					}
				}
			}
			return true
		})
	}

	// BFS from the roots over the local call graph; any call to a
	// fact-carrying function is a rule-3 violation.
	visited := map[lockset.Node]string{}
	var queue []root
	for _, r := range roots {
		if _, ok := visited[r.node]; !ok {
			visited[r.node] = r.desc
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		body := graph.Bodies[r.node]
		if body == nil {
			continue
		}
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := typeutil.StaticCallee(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			if callee.Pkg() == pass.Pkg {
				if node, ok := graph.Decls[callee]; ok {
					if _, seen := visited[node]; !seen {
						visited[node] = r.desc
						queue = append(queue, root{node, r.desc})
					}
				}
				return true
			}
			if pass.ImportObjectFact(callee, &AcquiresTreeLock{}) {
				reportConsumer(pass, call.Pos(), fmt.Sprintf("%s acquires the tree lock, but this code is reached from %s and already runs under it (lock.go rule 3: only the Tx may touch the tree here)", callee.FullName(), r.desc))
			}
			return true
		})
	}
}

func reportConsumer(pass *analysis.Pass, pos token.Pos, msg string) {
	if f := directive.FileFor(pass, pos); f != nil && directive.Allows(pass, f, pos, "lockorder") {
		return
	}
	pass.Reportf(pos, "%s", msg)
}

func recvIsTx(fn *types.Func, info *lockset.Info) bool {
	if info.Tx == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return deref(sig.Recv().Type()) == info.Tx.Obj().Type()
}

func isFuncExpr(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

func fieldOwner(sel *types.Selection) types.Type {
	recv := sel.Recv()
	return deref(recv)
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
