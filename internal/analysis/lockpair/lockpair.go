// Package lockpair verifies that every VFS lock acquisition is paired
// with a release on all paths out of the function that acquired it. A
// lockTree without a deferred or explicit unlockTree on some return
// path, or a lockNode whose stripe is not released on an early return,
// leaks the lock and wedges every later writer.
//
// The analysis is a per-function CFG dataflow over the same lock
// vocabulary lockorder uses (detected by shape in the lock package). In
// contrast to lockorder, a deferred release discharges the acquisition
// immediately — `s := fs.lockNode(n); defer s.mu.Unlock()` is the
// canonical correct pairing — because defers run on every exit,
// including panics.
//
// Functions are allowed to acquire in one function and release in a
// callee only when the whole pattern stays inside one body (the
// analyzer is intra-procedural); helpers that intentionally return
// while holding a lock (the primitives themselves, or functions whose
// name says so) are skipped.
package lockpair

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"

	"yanc/internal/analysis/internal/directive"
	"yanc/internal/analysis/internal/lockset"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockpair",
	Doc: "check that every tree/stripe lock acquisition in the lock package is released on all paths " +
		"(early returns and panics must not leak a lock)",
	Requires: []*analysis.Analyzer{ctrlflow.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	info := lockset.Find(pass)
	if info == nil {
		return nil, nil // only the lock package defines pairing obligations
	}
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	c := &checker{pass: pass, info: info, cfgs: cfgs}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if _, isPrimitive := info.Primitives[obj]; isPrimitive {
				continue // primitives return holding/releasing by design
			}
			if g := cfgs.FuncDecl(fd); g != nil {
				c.check(g, fd.Name.Name)
			}
		}
		// Standalone literals: each body must balance on its own. Literals
		// are checked in place; acquisitions made by the enclosing function
		// are not visible inside, which matches the discipline — a closure
		// must not release a lock it did not take unless the author says so.
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				if g := cfgs.FuncLit(lit); g != nil {
					c.check(g, "func literal")
				}
			}
			return true
		})
	}
	return nil, nil
}

// state tracks the outstanding (undischarged) acquisitions along a path.
// Counters never go negative: releases beyond zero are attributed to
// locks taken by a caller (e.g. a closure releasing in an error path on
// behalf of its parent) and are ignored rather than reported.
type state struct{ tree, shard int }

func (s state) merge(o state) state {
	return state{tree: max(s.tree, o.tree), shard: max(s.shard, o.shard)}
}

type checker struct {
	pass *analysis.Pass
	info *lockset.Info
	cfgs *ctrlflow.CFGs
}

// check runs the leak dataflow over one function CFG. Any live exit
// block with outstanding acquisitions is a leak; the diagnostic points
// at the last acquisition site feeding that exit.
func (c *checker) check(g *cfg.CFG, name string) {
	if len(g.Blocks) == 0 {
		return
	}
	type blockState struct {
		st      state
		lastAcq ast.Node // most recent acquisition reaching this point
		seen    bool
	}
	in := make([]blockState, len(g.Blocks))
	in[0].seen = true
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			if !in[b.Index].seen {
				continue
			}
			st := in[b.Index].st
			last := in[b.Index].lastAcq
			for _, node := range b.Nodes {
				c.transfer(node, &st, &last)
			}
			if len(b.Succs) == 0 {
				if b.Live && (st.tree > 0 || st.shard > 0) && last != nil {
					c.reportLeak(last, st, name, b)
					// Report once per function: clear so fixpoint converges
					// without duplicate diagnostics.
					return
				}
				continue
			}
			for _, succ := range b.Succs {
				next := blockState{st: st, lastAcq: last, seen: true}
				cur := in[succ.Index]
				if !cur.seen {
					in[succ.Index] = next
					changed = true
					continue
				}
				merged := cur.st.merge(st)
				if merged != cur.st {
					cur.st = merged
					if last != nil {
						cur.lastAcq = last
					}
					in[succ.Index] = cur
					changed = true
				}
			}
		}
	}
}

// transfer applies one CFG node's lock effects to st. A defer of a
// release discharges immediately (defers run on all exits); an IIFE is
// folded through so acquire-in-closure/release-in-closure balances.
func (c *checker) transfer(node ast.Node, st *state, last *ast.Node) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // checked standalone
		case *ast.DeferStmt:
			c.applyCall(n.Call, st, last)
			return false
		case *ast.CallExpr:
			c.applyCall(n, st, last)
			return false
		}
		return true
	})
}

func (c *checker) applyCall(call *ast.CallExpr, st *state, last *ast.Node) {
	c.transfer(call.Fun, st, last)
	for _, arg := range call.Args {
		c.transfer(arg, st, last)
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		// Immediately invoked literal: its own body is checked standalone,
		// but releases it performs on the enclosing function's locks (the
		// openSlow error-path shape) cannot be tracked intra-procedurally.
		// Treat the IIFE as a no-op here; the enclosing function's explicit
		// unlock after the call keeps the common shape balanced.
		_ = lit
		return
	}
	switch c.info.Classify(c.pass, call) {
	case lockset.OpLockTree, lockset.OpRLockTree:
		st.tree++
		*last = call
	case lockset.OpUnlockTree, lockset.OpRUnlockTree:
		if st.tree > 0 {
			st.tree--
		}
	case lockset.OpLockShard:
		st.shard++
		*last = call
	case lockset.OpUnlockShard:
		if st.shard > 0 {
			st.shard--
		}
	}
}

func (c *checker) reportLeak(at ast.Node, st state, fn string, exit *cfg.Block) {
	pos := at.Pos()
	if f := directive.FileFor(c.pass, pos); f != nil && directive.Allows(c.pass, f, pos, "lockpair") {
		return
	}
	kind := "tree lock"
	if st.tree == 0 {
		kind = "stripe lock"
	}
	where := describeExit(exit)
	c.pass.Reportf(pos, "%s acquired here is not released on all paths out of %s (%s): add a defer or release before the exit", kind, fn, where)
}

func describeExit(b *cfg.Block) string {
	for _, n := range b.Nodes {
		if _, ok := n.(*ast.ReturnStmt); ok {
			return "leaks at a return"
		}
	}
	if b.Kind == cfg.KindBody {
		return "leaks at function end"
	}
	return "leaks at an early exit"
}
