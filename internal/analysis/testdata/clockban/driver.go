// Package driver mimics internal/driver's clock discipline: it carries
// an injectable Clock, so every bare wall-clock read is a bug unless it
// says why it is not.
package driver

import "time"

type Driver struct {
	// Clock overrides the time source, like internal/driver.Driver.Clock.
	Clock func() time.Time
}

func (d *Driver) now() time.Time {
	if d.Clock != nil {
		return d.Clock()
	}
	return time.Now() //yancvet:wallclock the injection point's own fallback
}

// A liveness stamp that forgot the injection point — the exact bug the
// analyzer exists for.
func (d *Driver) badTouch() int64 {
	return time.Now().UnixNano() // want "bare time.Now"
}

func (d *Driver) badSleep() {
	time.Sleep(time.Millisecond) // want "bare time.Sleep"
}

func (d *Driver) badTimeout() <-chan time.Time {
	return time.After(time.Second) // want "bare time.After"
}

// Routed through the injection point: clean.
func (d *Driver) goodTouch() int64 {
	return d.now().UnixNano()
}

// Annotated wall-clock site: clean.
func (d *Driver) goodAnnotated() time.Time {
	return time.Now() //yancvet:wallclock log timestamp, not control-plane time
}

// Constructors that do not read the clock: clean.
func (d *Driver) goodConstructors() time.Time {
	return time.Unix(0, 0).Add(3 * time.Second)
}
