module clockbanfixture

go 1.22
