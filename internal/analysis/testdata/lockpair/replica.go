// Replica-shaped code: a lease-holding replication layer sitting on top
// of the lock package. The apply and campaign paths follow the shapes
// in internal/dfs/replica.go — acquire, mutate log/lease state, release
// — and the deliberate bugs are the classic replication mistakes: an
// early return when the lease is lost, or when a stale term arrives,
// that leaks the lock it took.
package lockpair

type Replica struct {
	fs      *FS
	term    int
	applied int
	leader  bool
}

// A stale-term AppendEntries rejection that forgets to release: the
// next heartbeat then deadlocks on the tree lock.
func (r *Replica) badStaleTermLeak(reqTerm int) bool {
	r.fs.lockTree() // want "not released on all paths"
	if reqTerm < r.term {
		return false
	}
	r.applied++
	r.fs.unlockTree()
	return true
}

// A lease-expiry step-down that leaks the stripe lock on the
// follower branch.
func (r *Replica) badLeaseStripeLeak(n *Inode, leaseOK bool) int {
	s := r.fs.lockNode(n) // want "not released on all paths"
	if !leaseOK {
		r.leader = false
		return r.term
	}
	r.applied++
	s.mu.Unlock()
	return r.term
}

// The canonical correct shapes from the real replica must stay silent:
// defers discharge on every exit, including the rejection branches.
func (r *Replica) goodAppend(reqTerm int) bool {
	r.fs.lockTree()
	defer r.fs.unlockTree()
	if reqTerm < r.term {
		return false
	}
	r.term = reqTerm
	r.applied++
	return true
}

func (r *Replica) goodCampaign(votes, members int) {
	r.fs.lockTree()
	if votes*2 <= members {
		r.fs.unlockTree()
		return
	}
	r.leader = true
	r.fs.unlockTree()
}

func (r *Replica) goodApplyLoop(n *Inode, upto int) {
	for r.applied < upto {
		s := r.fs.lockNode(n)
		r.applied++
		s.mu.Unlock()
	}
}
