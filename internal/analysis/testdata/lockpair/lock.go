// Package lockpair exercises the lockpair analyzer: every acquisition
// must be released on all paths out of the function.
package lockpair

import "sync"

type Inode struct{}

type shardLock struct{ mu sync.RWMutex }

type FS struct {
	tree   sync.RWMutex
	shards [4]shardLock
}

func (fs *FS) lockTree()    { fs.tree.Lock() }
func (fs *FS) unlockTree()  { fs.tree.Unlock() }
func (fs *FS) rlockTree()   { fs.tree.RLock() }
func (fs *FS) runlockTree() { fs.tree.RUnlock() }

func (fs *FS) lockNode(n *Inode) *shardLock {
	s := &fs.shards[0]
	s.mu.Lock()
	return s
}

// An early return that leaks the tree lock.
func (fs *FS) badEarlyReturn(fail bool) error {
	fs.lockTree() // want "not released on all paths"
	if fail {
		return errDummy
	}
	fs.unlockTree()
	return nil
}

// A stripe leak: the error branch forgets to release.
func (fs *FS) badStripeLeak(n *Inode, ok bool) int {
	s := fs.lockNode(n) // want "not released on all paths"
	if !ok {
		return 0
	}
	s.mu.Unlock()
	return 1
}

// Suppressed: a function that deliberately returns holding the lock.
func (fs *FS) lockTreeAndReturn() {
	fs.lockTree() //yancvet:allow lockpair returns holding the lock by contract
}

// The canonical correct pairings must stay silent.
func (fs *FS) goodDefer() int {
	fs.rlockTree()
	defer fs.runlockTree()
	return 1
}

func (fs *FS) goodBranches(fail bool) error {
	fs.lockTree()
	if fail {
		fs.unlockTree()
		return errDummy
	}
	fs.unlockTree()
	return nil
}

func (fs *FS) goodStripeDefer(n *Inode) {
	s := fs.lockNode(n)
	defer s.mu.Unlock()
}

func (fs *FS) goodLoop(n *Inode) {
	for i := 0; i < 3; i++ {
		s := fs.lockNode(n)
		s.mu.Unlock()
	}
}

var errDummy = sentinel{}

type sentinel struct{}

func (sentinel) Error() string { return "dummy" }
