module lockpairfixture

go 1.22
