// Mini-vfs for the txescape analyzer: the same WithTx/ReadTx callback
// shape as internal/vfs, with the Tx-lifetime and blocking bugs planted.
// A *Tx is valid only for the dynamic extent of the callback, and the
// callback runs inside the whole-tree critical section.
package txfix

type Tx struct{ gen uint64 }

func (tx *Tx) Put(path string, v []byte) error { return nil }
func (tx *Tx) Remove(path string) error        { return nil }

type FS struct{}

func (fs *FS) WithTx(fn func(tx *Tx) error) error { return fn(&Tx{}) }
func (fs *FS) ReadTx(fn func(tx *Tx) error) error { return fn(&Tx{}) }
