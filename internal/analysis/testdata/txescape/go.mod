module txescapefixture

go 1.22
