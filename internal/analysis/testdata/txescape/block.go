// Blocking bugs: the callback parks the goroutine while the tree lock
// is held.
package txfix

import (
	"sync"
	"time"
)

type ring struct{}

func (r *ring) Submit(f func()) error { return nil }

func badSleep(fs *FS) error {
	return fs.WithTx(func(tx *Tx) error {
		time.Sleep(time.Millisecond) // want "time.Sleep inside the tree-lock critical section"
		return tx.Put("/x", nil)
	})
}

func badRecv(fs *FS, done chan struct{}) error {
	return fs.WithTx(func(tx *Tx) error {
		<-done // want "channel receive blocks inside the tree-lock critical section"
		return tx.Remove("/x")
	})
}

func badWaitGroup(fs *FS, wg *sync.WaitGroup) error {
	return fs.WithTx(func(tx *Tx) error {
		wg.Wait() // want "blocks inside the tree-lock critical section"
		return nil
	})
}

func badSelect(fs *FS, a, b chan int) error {
	return fs.WithTx(func(tx *Tx) error {
		select { // want "select blocks inside the tree-lock critical section"
		case <-a:
		case <-b:
		}
		return nil
	})
}

func badSubmit(fs *FS, r *ring) error {
	return fs.WithTx(func(tx *Tx) error {
		return r.Submit(func() {}) // want "Submit inside the tree-lock critical section"
	})
}

// goodPoll drains opportunistically with a default clause: non-blocking,
// allowed.
func goodPoll(fs *FS, events chan int) error {
	return fs.WithTx(func(tx *Tx) error {
		for {
			select {
			case ev := <-events:
				if err := tx.Put("/ev", []byte{byte(ev)}); err != nil {
					return err
				}
			default:
				return nil
			}
		}
	})
}
