// Escape bugs: the Tx handle (or an alias of it) outlives the callback.
package txfix

var leaked *Tx

func badGlobalStore(fs *FS) error {
	return fs.WithTx(func(tx *Tx) error {
		leaked = tx // want "stored to package variable"
		return nil
	})
}

func badOuterVar(fs *FS) (*Tx, error) {
	var keep *Tx
	err := fs.WithTx(func(tx *Tx) error {
		keep = tx // want "declared outside the callback"
		return nil
	})
	return keep, err
}

type cache struct{ tx *Tx }

func badFieldStore(fs *FS, c *cache) error {
	return fs.WithTx(func(tx *Tx) error {
		c.tx = tx // want "stored through a field/element/pointer"
		return nil
	})
}

func badChanSend(fs *FS, ch chan *Tx) error {
	return fs.WithTx(func(tx *Tx) error {
		// The try-send is non-blocking, but the handle still crosses the
		// channel to a receiver that outlives the lock.
		select {
		case ch <- tx: // want "sent on a channel"
		default:
		}
		return nil
	})
}

func badAliasAppend(fs *FS, keep []*Tx) ([]*Tx, error) {
	err := fs.ReadTx(func(tx *Tx) error {
		t := tx
		keep = append(keep, t) // want "appended to a slice"
		return nil
	})
	return keep, err
}

func badGoCapture(fs *FS) error {
	return fs.WithTx(func(tx *Tx) error {
		go func() { // want "captures the Tx handle"
			_ = tx.gen
		}()
		return nil
	})
}

// goodBorrow passes the handle down a call chain: the callee returns
// before the callback does, so the lifetime holds.
func goodBorrow(fs *FS) error {
	return fs.WithTx(func(tx *Tx) error {
		return writeDefaults(tx, "/defaults")
	})
}

func writeDefaults(tx *Tx, p string) error { return tx.Put(p, nil) }

// allowedHandoff is a deliberate, annotated violation: the receiver is
// known to complete before WithTx returns in this rig.
func allowedHandoff(fs *FS, ch chan *Tx) error {
	return fs.WithTx(func(tx *Tx) error {
		select {
		case ch <- tx: //yancvet:allow txescape rendezvous: the receiver completes before the callback returns
		default:
		}
		return nil
	})
}
