// Package render is the downstream side of the cross-package contract:
// AppendName carries the //yancvet:hotalloc annotation and therefore
// exports the AllocFree fact; Format does not. The parent package calls
// both from a hot path, and the analyzer must accept the first and flag
// the second purely from the imported facts.
package render

// AppendName renders name into caller-provided storage, allocation-free.
//
//yancvet:hotalloc
func AppendName(dst []byte, name string) []byte {
	dst = append(dst, name...)
	return dst
}

// Format allocates freely; it carries no fact, so hot callers in other
// packages must not call it.
func Format(name string) string {
	return "name=" + name
}
