module hotallocfixture

go 1.22
