// Deliberate-bug fixture for the hotalloc analyzer: every `want` line is
// a heap allocation inside a //yancvet:hotalloc hot path. The shapes
// mirror the real tree — renderers, drain loops, mailbox scheduling —
// with the allocation bug planted.
package hotfix

import (
	"fmt"

	"hotallocfixture/render"
)

type conn struct {
	buf []byte
}

// drain is an annotated root; helper below is pulled into the hot set as
// a same-package callee and checked under this root.
//
//yancvet:hotalloc
func (c *conn) drain(names []string) {
	for _, n := range names {
		c.buf = render.AppendName(c.buf, n) // AllocFree fact imported: clean
		c.buf = helper(c.buf, n)
	}
}

// helper is hot by reachability, not annotation.
func helper(dst []byte, name string) []byte {
	line := "name=" + name // want "string concatenation allocates on hot path"
	return append(dst, line...)
}

// describeVia calls an in-module function in another package that does
// NOT carry the AllocFree fact.
//
//yancvet:hotalloc
func describeVia(name string) string {
	return render.Format(name) // want "not marked //yancvet:hotalloc"
}

//yancvet:hotalloc
func renderStats(n int, out chan<- string) {
	counts := make(map[string]int) // want "make.map."
	counts["pkt"] = n
	buf := make([]byte, n) // want "make with non-constant size"
	out <- string(buf)     // want "conversion copies on hot path"
}

//yancvet:hotalloc
func describe(c *conn) string {
	return fmt.Sprintf("conn %p", c) // want "fmt call allocates on hot path"
}

type logger interface{ log(v interface{}) }

//yancvet:hotalloc
func record(l logger, seq uint64) {
	l.log(seq) // want "interface boxing allocates on hot path"
}

//yancvet:hotalloc
func newBuf() []byte {
	b := make([]byte, 0, 64) // want "make.* escapes"
	return b
}

//yancvet:hotalloc
func collect(names []string) int {
	var all []byte
	for _, n := range names {
		all = append(all, n...) // want "append to a fresh nil slice"
	}
	return len(all)
}

//yancvet:hotalloc
func spawnPerPacket(f func()) {
	go f() // want "goroutine launch allocates on hot path"
}

type ring struct{}

func (r *ring) drainOnce() {}

//yancvet:hotalloc
func schedule(r *ring, submit func(func())) {
	submit(r.drainOnce) // want "method value allocates a closure"
}

var hooks []func()

//yancvet:hotalloc
func install(n int) {
	f := func() { _ = n } // want "closure allocates on hot path"
	hooks = append(hooks, f)
}

type stats struct{ n int }

var latest *stats

//yancvet:hotalloc
func publish(n int) {
	s := &stats{n: n} // want "&composite literal escapes"
	latest = s
}

// adopt builds a table that outlives the call: the allocation is the
// product, annotated as deliberate — no diagnostic.
//
//yancvet:hotalloc
func adopt() map[string]int {
	m := make(map[string]int) //yancvet:alloc the table is the product, built once per reload
	return m
}
