module lockorderfixture

go 1.22
