package lockpkg

// Reentry: the tree lock is not reentrant.
func (fs *FS) badReentry() {
	fs.lockTree()
	fs.rlockTree() // want "already held"
	fs.runlockTree()
	fs.unlockTree()
}

// Rule 1: never take the tree lock while holding a stripe. (The same
// inversion is a wait-graph cycle, but it is single-package — pairwise
// lockorder territory — so waitgraph stays quiet here.)
func (fs *FS) badOrder(n *Inode) {
	s := fs.lockNode(n)
	fs.lockTree() // want "holding a stripe lock"
	fs.unlockTree()
	s.mu.Unlock()
}

// Rule 2: at most one stripe at a time.
func (fs *FS) badTwoStripes(a, b *Inode) {
	s1 := fs.lockNode(a)
	s2 := fs.lockNode(b) // want "another stripe is held"
	s2.mu.Unlock()
	s1.mu.Unlock()
}

// Rule 4 regression: the PR 3 Tx.ReadFile deadlock — a Synthetic
// provider invoked while the Tx holds the tree write lock.
func (tx *Tx) BadReadFile(n *Inode) ([]byte, error) {
	if n.Synth != nil && n.Synth.Read != nil {
		return n.Synth.Read() // want "provider invoked under the tree lock"
	}
	return nil, nil
}

// Rule 3: a Tx method must not call a Proc-level entry point.
func (tx *Tx) BadStat() int {
	return tx.FS.Stat() // want "tree lock is already held"
}

// A suppressed violation: the directive must silence the report.
func (tx *Tx) allowedStat() int {
	return tx.FS.Stat() //yancvet:allow lockorder exercised by the harness
}
