package lockpkg

// The clean shapes the real tree uses: defer pairs, explicit unlocks on
// branch paths, IIFEs under the lock, and providers invoked outside all
// locks. None of these may be reported.

func (fs *FS) goodDeferPair() int {
	fs.rlockTree()
	defer fs.runlockTree()
	return 1
}

func (fs *FS) goodBranchUnlock(n *Inode, trunc bool) {
	fs.rlockTree()
	if trunc {
		s := fs.lockNode(n)
		s.mu.Unlock()
	}
	fs.runlockTree()
}

func (fs *FS) goodIIFE() int {
	fs.lockTree()
	v := func() int {
		return 2
	}()
	fs.unlockTree()
	return v
}

func (fs *FS) goodSequential(n *Inode) {
	s := fs.lockNode(n)
	s.mu.Unlock()
	t := fs.lockNode(n)
	t.mu.Unlock()
}

// goodProviderOutside mirrors OpenFile: the provider runs after every
// lock has been released.
func (fs *FS) goodProviderOutside(n *Inode) ([]byte, error) {
	fs.rlockTree()
	fs.runlockTree()
	if n.Synth != nil && n.Synth.Read != nil {
		return n.Synth.Read()
	}
	return nil, nil
}
