// Package lockpkg is a miniature replica of internal/vfs's locking shape
// used to exercise the lockorder analyzer: a tree RWMutex, striped node
// locks, Synthetic providers, DirSemantics hooks, and a Tx whose methods
// run under the tree lock.
package lockpkg

import "sync"

type Inode struct {
	Synth *Synthetic
}

// Synthetic mirrors vfs.Synthetic: provider callbacks that must run
// outside all tree locks.
type Synthetic struct {
	Read  func() ([]byte, error)
	Write func([]byte) error
}

// DirSemantics mirrors vfs.DirSemantics: hooks invoked under the tree
// write lock.
type DirSemantics struct {
	OnMkdir  func(name string) error
	OnRemove func(name string)
}

type shardLock struct{ mu sync.RWMutex }

type FS struct {
	tree   sync.RWMutex
	shards [4]shardLock
}

func (fs *FS) lockTree()    { fs.tree.Lock() }
func (fs *FS) unlockTree()  { fs.tree.Unlock() }
func (fs *FS) rlockTree()   { fs.tree.RLock() }
func (fs *FS) runlockTree() { fs.tree.RUnlock() }

func (fs *FS) lockNode(n *Inode) *shardLock {
	s := &fs.shards[0]
	s.mu.Lock()
	return s
}

type Tx struct{ FS *FS }

// WithTx runs fn under the tree write lock, like vfs.FS.WithTx.
func (fs *FS) WithTx(fn func(tx *Tx)) {
	fs.lockTree()
	fn(&Tx{FS: fs})
	fs.unlockTree()
}

// Stat is a Proc-level entry point: it takes the tree lock itself.
func (fs *FS) Stat() int {
	fs.rlockTree()
	defer fs.runlockTree()
	return 1
}
