// Package consumer exercises lockorder's cross-package mode: hooks and
// callbacks that run under lockpkg's tree lock must not re-enter it.
// The facts exported while analyzing lockpkg drive every check here.
package consumer

import "lockorderfixture/lockpkg"

// A hook literal calling an entry point directly.
func bindBadHook(fs *lockpkg.FS) *lockpkg.DirSemantics {
	return &lockpkg.DirSemantics{
		OnMkdir: func(name string) error {
			fs.Stat() // want "runs under it"
			return nil
		},
	}
}

// A hook calling through a local helper: the BFS must follow it.
func bindBadHookIndirect(fs *lockpkg.FS) *lockpkg.DirSemantics {
	return &lockpkg.DirSemantics{
		OnMkdir: func(name string) error {
			helper(fs)
			return nil
		},
	}
}

func helper(fs *lockpkg.FS) {
	fs.Stat() // want "runs under it"
}

// A WithTx callback re-entering the tree lock via an entry point.
func badCallback(fs *lockpkg.FS) {
	fs.WithTx(func(tx *lockpkg.Tx) {
		fs.Stat() // want "runs under it"
	})
}

// Clean consumers: hooks that stay inside the Tx, and work done after
// the transaction ends.
func bindGoodHook(fs *lockpkg.FS) *lockpkg.DirSemantics {
	return &lockpkg.DirSemantics{
		OnRemove: func(name string) {},
	}
}

func goodCallback(fs *lockpkg.FS) int {
	n := 0
	fs.WithTx(func(tx *lockpkg.Tx) {
		n++
	})
	return fs.Stat()
}
