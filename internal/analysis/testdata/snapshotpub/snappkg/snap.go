// Package snappkg is a miniature replica of internal/vfs's snapshot
// publication shape used to exercise the snapshotpub analyzer: a tree
// RWMutex with the lockTree vocabulary, an inode whose children map is
// an atomic snapshot with a generation counter, and the copy-on-write
// publisher helpers.
package snappkg

import (
	"sync"
	"sync/atomic"
)

type FS struct {
	tree sync.RWMutex
	root *inode
}

func (fs *FS) lockTree()    { fs.tree.Lock() }
func (fs *FS) unlockTree()  { fs.tree.Unlock() }
func (fs *FS) rlockTree()   { fs.tree.RLock() }
func (fs *FS) runlockTree() { fs.tree.RUnlock() }

// Tx methods run under the tree write lock by contract.
type Tx struct{ fs *FS }

type inode struct {
	children atomic.Pointer[map[string]*inode]
	gen      atomic.Uint64
}

// kids returns the published children snapshot; callers may only read.
func (n *inode) kids() map[string]*inode {
	if m := n.children.Load(); m != nil {
		return *m
	}
	return nil
}

// setKids publishes m: generation bump, then swap. Tree write lock held.
func (n *inode) setKids(m map[string]*inode) {
	n.gen.Add(1)
	n.children.Store(&m)
}

// cowInsert copy-on-writes name into n's children. Tree write lock held.
func (n *inode) cowInsert(name string, c *inode) {
	old := n.kids()
	m := make(map[string]*inode, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	m[name] = c
	n.setKids(m)
}

// cowDelete copy-on-writes name out of n's children. Tree write lock held.
func (n *inode) cowDelete(name string) {
	old := n.kids()
	m := make(map[string]*inode, len(old))
	for k, v := range old {
		if k != name {
			m[k] = v
		}
	}
	n.setKids(m)
}
