package snappkg

// Tx methods are write-locked contexts by contract: publishing from one
// is the canonical correct shape.
func (tx *Tx) Mkdir(name string) {
	tx.fs.root.cowInsert(name, &inode{})
}

// An entry point that takes the tree write lock itself may publish.
func (fs *FS) CreateLocked(name string) {
	fs.lockTree()
	defer fs.unlockTree()
	fs.root.cowInsert(name, &inode{})
}

// A helper with no lock of its own is fine when every caller is a
// locked context (CreateTwo below, a lockTree holder).
func (fs *FS) insertBoth(a, b string) {
	fs.root.cowInsert(a, &inode{})
	fs.root.cowInsert(b, &inode{})
}

func (fs *FS) CreateTwo(a, b string) {
	fs.lockTree()
	defer fs.unlockTree()
	fs.insertBoth(a, b)
}

// Reading a snapshot is always legal, lock or no lock: lookups range and
// index, they never write.
func (fs *FS) Lookup(name string) *inode {
	return fs.root.kids()[name]
}

// Copying into a fresh map and publishing the copy is the whole point of
// copy-on-write — the new map is private until setKids swaps it in.
func (tx *Tx) Replace(name string, c *inode) {
	old := tx.fs.root.kids()
	m := make(map[string]*inode, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	m[name] = c
	tx.fs.root.setKids(m)
}

// A recursive helper (the shape of a subtree teardown) is as locked as
// the entry points that reach it: the self-edge must not condemn it.
func (fs *FS) removeRec(n *inode, name string) {
	for cname, c := range n.kids() {
		fs.removeRec(c, cname)
	}
	n.cowDelete(name)
}

func (fs *FS) RemoveLocked(name string) {
	fs.lockTree()
	defer fs.unlockTree()
	fs.removeRec(fs.root, name)
}

// A dynamic entry point (no static caller) can vouch for its context
// with an allow directive when the lock is taken by machinery the call
// graph cannot see.
func (fs *FS) hookBody(name string) {
	fs.root.cowInsert(name, &inode{}) //yancvet:allow snapshotpub hook registered under WithTx only
}
