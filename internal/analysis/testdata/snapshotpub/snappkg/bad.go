package snappkg

// Publishing with no lock anywhere in sight: the deliberate bug the
// rule exists for. Another writer's copy-on-write cycle can interleave
// and one of the two inserts is silently lost.
func (fs *FS) CreateUnlocked(name string) {
	fs.root.cowInsert(name, &inode{}) // want "published outside the tree write lock"
}

// The read lock is not enough: concurrent read-locked publishers race
// each other exactly like unlocked ones.
func (fs *FS) CreateUnderReadLock(name string) {
	fs.rlockTree()
	defer fs.runlockTree()
	fs.root.setKids(map[string]*inode{name: {}}) // want "published outside the tree write lock"
}

// A helper is only as locked as its callers: reachable from an unlocked
// entry point, the publish inside it is a bug at the publish site.
func (fs *FS) insertViaHelper(name string) {
	fs.root.cowInsert(name, &inode{}) // want "published outside the tree write lock"
}

func (fs *FS) CreateViaHelper(name string) {
	fs.insertViaHelper(name)
}

// Recursion does not launder an unlocked entry point: the cycle is
// reachable from RemoveUnlocked, so the publish inside it is a bug.
func (fs *FS) removeRecUnlocked(n *inode, name string) {
	for cname, c := range n.kids() {
		fs.removeRecUnlocked(c, cname)
	}
	n.cowDelete(name) // want "published outside the tree write lock"
}

func (fs *FS) RemoveUnlocked(name string) {
	fs.removeRecUnlocked(fs.root, name)
}

// Storing the pointer directly skips the generation bump, so a lock-free
// reader can validate the new map against the old generation and see a
// path that never existed.
func (fs *FS) StoreWithoutGenBump(m map[string]*inode) {
	fs.lockTree()
	defer fs.unlockTree()
	fs.root.children.Store(&m) // want "use setKids"
}

// Editing a loaded snapshot in place — even under the write lock — races
// every lock-free reader currently ranging over it.
func (tx *Tx) MutateLoaded(name string, c *inode) {
	m := tx.fs.root.kids()
	m[name] = c // want "mutated after publish"
}

// delete through an alias of the snapshot is the same bug.
func (tx *Tx) DeleteLoaded(name string) {
	m := tx.fs.root.kids()
	alias := m
	delete(alias, name) // want "mutated after publish"
}

// Writing through the accessor call directly, without even a variable.
func (tx *Tx) MutateInline(name string, c *inode) {
	tx.fs.root.kids()[name] = c // want "mutated after publish"
}
