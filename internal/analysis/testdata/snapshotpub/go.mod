module snapshotpubfixture

go 1.22
