module atomicfieldfixture

go 1.22
