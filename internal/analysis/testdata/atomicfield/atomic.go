// Package atomicfield exercises the mixed-atomic-access analyzer.
package atomicfield

import "sync/atomic"

type counters struct {
	hits  uint64 // accessed via atomic.AddUint64: atomic everywhere
	acq   atomic.Uint64
	plain int // never atomic: free to use
}

func (c *counters) bump() {
	atomic.AddUint64(&c.hits, 1)
	c.acq.Add(1)
	c.plain++
}

func (c *counters) badRead() uint64 {
	return c.hits // want "plain access to hits"
}

func (c *counters) badWrite() {
	c.hits = 0 // want "plain access to hits"
}

func (c *counters) badCopy() uint64 {
	a := c.acq // want "whole-value use of atomic field acq"
	return a.Load()
}

func (c *counters) goodLoad() uint64 {
	return atomic.LoadUint64(&c.hits) + c.acq.Load()
}

func (c *counters) goodAddr() *uint64 {
	return &c.hits // address may feed another atomic call
}

func (c *counters) goodPlain() int {
	return c.plain
}

// Suppressed: constructor-time access before the struct is shared.
func newCounters() *counters {
	c := &counters{}
	c.hits = 0 //yancvet:allow atomicfield not yet shared
	return c
}
