module waitgraphfixture

go 1.22
