// Package store contributes one half of a cross-package wait cycle: the
// publisher sends on the event channel while holding the store lock, so
// the edge Store.Mu -> Store.Events is observed here and exported in
// this package's Edges fact. Within this package alone there is no
// cycle — only the importer closes it.
package store

import "sync"

type Store struct {
	Mu     sync.Mutex
	Events chan int
	n      int
}

// Publish records a value and notifies the drain loop. The send happens
// under the lock: fine by itself, deadly combined with a consumer that
// takes the lock while servicing Events.
func (s *Store) Publish(v int) {
	s.Mu.Lock()
	s.n++
	s.Events <- v
	s.Mu.Unlock()
}

// Len is an exported locked read; its FuncBlocks fact advertises that
// calling it may wait on Store.Mu.
func (s *Store) Len() int {
	s.Mu.Lock()
	n := s.n
	s.Mu.Unlock()
	return n
}
