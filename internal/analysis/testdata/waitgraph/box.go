// The importer closes a cross-package wait cycle that neither package
// can see alone: store.Publish sends on Store.Events while holding
// Store.Mu (edge observed in the store package), and the drain loop here
// takes Store.Mu while servicing Store.Events (edge observed here). A
// publisher blocked on a full Events channel holds the lock the drain
// loop needs to make progress: deadlock.
package waitfix

import (
	"sync"

	"waitgraphfixture/store"
)

type Box struct {
	mu    sync.Mutex
	total int
	st    *store.Store
}

// drain services the store's event channel; folding an event into the
// box takes the store lock for a consistent read.
func (b *Box) drain() {
	for {
		v := <-b.st.Events
		b.st.Mu.Lock() // want "lock acquisition cycle across packages"
		b.total += v
		b.st.Mu.Unlock()
	}
}

// tally holds the box lock and calls the store's locked reader: the
// imported FuncBlocks fact for Len yields the edge Box.mu -> Store.Mu.
// No cycle — nothing acquires Box.mu downstream of the store.
func (b *Box) tally() int {
	b.mu.Lock()
	n := b.st.Len() + b.total
	b.mu.Unlock()
	return n
}

// reconcile takes the locks in the reverse of tally's order, which
// would close a second cycle through Box.mu; it runs only during
// single-threaded shutdown, so the edge is annotated away.
func (b *Box) reconcile() {
	b.st.Mu.Lock()
	b.mu.Lock() //yancvet:allow waitgraph shutdown path: nothing runs tally concurrently by construction
	b.total += b.st.Len()
	b.mu.Unlock()
	b.st.Mu.Unlock()
}
