// Replica-shaped errdrop cases: the failover client replays buffered
// writes against a new leader, and every dropped error is a flow that
// the caller believes committed. These mirror the propose/replay paths
// in the real replication layer.
package errdrop

import "errdropfixture/dfs"

func badProposeDrop(r *dfs.Replica) {
	r.Propose("append /flows/log") // want "discarded on a guarded path"
}

func badReplayLoop(r *dfs.Replica, seqs []uint64) {
	// Replaying after failover and ignoring per-write outcomes: a
	// rejected duplicate and a lost write look identical to the caller.
	for _, seq := range seqs {
		_ = r.ReplayWrite(seq) // want "discarded on a guarded path"
	}
}

func badHeartbeatDefer(r *dfs.Replica) {
	defer r.AppendEntries(7) // want "discarded on a guarded path"
}

func goodProposeHandled(r *dfs.Replica) error {
	if err := r.Propose("append /flows/log"); err != nil {
		return err
	}
	return r.AppendEntries(7)
}

func goodReplayAllowed(r *dfs.Replica) {
	// A deliberately best-effort catch-up probe, annotated.
	_ = r.ReplayWrite(0) //yancvet:allow errdrop probe only, outcome read from stats
}
