package dfs

// Replica stands in for the replicated control plane: propose, append,
// and replay errors decide whether an acknowledged write really
// committed, so dropping them silently loses flows.
type Replica struct{}

func (r *Replica) Propose(op string) error      { return nil }
func (r *Replica) AppendEntries(term int) error { return nil }
func (r *Replica) ReplayWrite(seq uint64) error { return nil }
