// Package dfs stands in for the RPC surface: every function's error is
// load-bearing.
package dfs

type Client struct{}

func (c *Client) Call(op string) error { return nil }
