module errdropfixture

go 1.22
