// FlowRing-shaped errdrop cases: the submission ring is asynchronous,
// so the error returned by Submit/Flush/Close is the only synchronous
// signal a caller gets. Dropping it means believing a flow-mod is in
// flight that was never enqueued, or missing every per-entry failure a
// Flush would have surfaced.
package errdrop

type FlowRing struct{}

type ringSQE struct {
	Path string
}

// CQE mirrors the completion shape: the error rides inside the struct,
// so discarding the struct discards the completion error with it.
type CQE struct {
	SQE ringSQE
	Err error
}

func (r *FlowRing) Submit(e ringSQE) error      { return nil }
func (r *FlowRing) TrySubmit(e ringSQE) error   { return nil }
func (r *FlowRing) Flush() error                { return nil }
func (r *FlowRing) Close() error                { return nil }
func (r *FlowRing) Reap(block bool) (CQE, bool) { return CQE{}, false }

func badSubmitDrop(r *FlowRing) {
	r.Submit(ringSQE{Path: "/switches/sw1/flows/f1"}) // want "discarded on a guarded path"
}

func badSubmitBlank(r *FlowRing, entries []ringSQE) {
	// A bulk push that blanks each submit outcome: a full ring silently
	// sheds the tail of the batch.
	for _, e := range entries {
		_ = r.TrySubmit(e) // want "discarded on a guarded path"
	}
}

func badFlushDrop(r *FlowRing) {
	r.Flush() // want "discarded on a guarded path"
}

func badCloseDefer(r *FlowRing) {
	defer r.Close() // want "discarded on a guarded path"
}

func badReapDrop(r *FlowRing) {
	// Popping a completion and throwing it away: the per-entry commit
	// error inside the CQE is lost.
	r.Reap(false) // want "CQE.Err completion error is dropped"
}

func badReapBlankCQE(r *FlowRing) bool {
	// Keeping only the ok flag blanks the completion itself.
	_, ok := r.Reap(false) // want "CQE.Err completion error is dropped"
	return ok
}

func goodReapHandled(r *FlowRing) error {
	if c, ok := r.Reap(true); ok && c.Err != nil {
		return c.Err
	}
	return nil
}

func goodReapOkBlank(r *FlowRing) error {
	// Blanking the ok flag keeps the completion (and its error) bound.
	c, _ := r.Reap(true)
	return c.Err
}

func goodSubmitHandled(r *FlowRing, entries []ringSQE) error {
	for _, e := range entries {
		if err := r.Submit(e); err != nil {
			return err
		}
	}
	return r.Flush()
}

func goodCloseAllowed(r *FlowRing) {
	// Teardown on an already-drained ring, annotated as deliberate.
	_ = r.Close() //yancvet:allow errdrop ring drained, close cannot fail meaningfully
}
