// Package errdrop exercises the discarded-error analyzer on the guarded
// receiver types (Tx, Watch) and the dfs package.
package errdrop

import "errdropfixture/dfs"

type Tx struct{}

func (tx *Tx) WriteFile(path string, data []byte) error { return nil }
func (tx *Tx) Stat(path string) (int, error)            { return 0, nil }

type Watch struct{}

func (w *Watch) Deliver(ev string) error { return nil }

type logger struct{}

func (l *logger) Printf(format string, args ...interface{}) error { return nil }

func badStatement(tx *Tx) {
	tx.WriteFile("/a", nil) // want "discarded on a guarded path"
}

func badBlank(tx *Tx) {
	_ = tx.WriteFile("/a", nil) // want "discarded on a guarded path"
}

func badTupleBlank(tx *Tx) {
	n, _ := tx.Stat("/a") // want "discarded on a guarded path"
	_ = n
}

func badDefer(w *Watch) {
	defer w.Deliver("x") // want "discarded on a guarded path"
}

func badRPC(c *dfs.Client) {
	c.Call("op") // want "discarded on a guarded path"
}

func goodHandled(tx *Tx) error {
	if err := tx.WriteFile("/a", nil); err != nil {
		return err
	}
	n, err := tx.Stat("/a")
	_ = n
	return err
}

func goodAllowed(tx *Tx) {
	_ = tx.WriteFile("/a", nil) //yancvet:allow errdrop best-effort in the fixture
}

// Unguarded receivers are not errdrop's business.
func goodUnguarded(l *logger) {
	l.Printf("hello")
}
