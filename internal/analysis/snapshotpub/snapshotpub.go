// Package snapshotpub enforces rule 5 of the VFS locking discipline
// (internal/vfs/lock.go): directory children snapshots are immutable
// after publish and may only be replaced — never edited — via an atomic
// swap performed under the tree write lock.
//
// The snapshot vocabulary is detected by shape, like lockset does for
// the lock primitives: the "snapshot type" is any named type declaring
// both a `kids` and a `setKids` method, in a package that also defines
// the lock vocabulary. Three rules follow:
//
//  1. The publishers (setKids and the copy-on-write helpers cowInsert /
//     cowDelete) may only be called from a write-locked context: a Tx
//     method, a function that takes the tree write lock itself, or a
//     helper reachable only from such functions (computed over the
//     in-package static call graph). A publisher reachable from an
//     unlocked or read-locked entry point races every other writer's
//     copy-on-write cycle.
//  2. The `children` atomic pointer may only be Stored inside setKids
//     (or setSnap, the low-level publisher in the overlay-bearing real
//     package): a direct Store skips the generation bump that lock-free
//     readers use to detect concurrent change, so a reader could
//     validate a new snapshot against a stale generation and assemble a
//     path that never existed.
//  3. A map obtained from `kids()` (or by dereferencing a children
//     Load) must never be written through — no index assignment, no
//     delete. Published maps are read concurrently with no lock; Go
//     maps fatally throw on concurrent read/write, and even a benign
//     edit would change history under a reader mid-walk.
//
// The context check is an approximation in the safe direction: a
// function "holds the write lock" if its body contains a lockTree call
// anywhere (no release tracking — lockpair owns pairing), and a helper
// is accepted when no unlocked entry point reaches it through the
// in-package static call graph — recursion included, so a recursive
// teardown called only from Tx methods is clean. Dynamic calls (hooks,
// stored closures) have no callers in the static graph, count as entry
// points, and are therefore reported unless suppressed with
// `//yancvet:allow snapshotpub <reason>`.
package snapshotpub

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"yanc/internal/analysis/internal/directive"
	"yanc/internal/analysis/internal/lockset"
)

var Analyzer = &analysis.Analyzer{
	Name: "snapshotpub",
	Doc: "check that children-map snapshots are replaced only via atomic swap under the tree write lock " +
		"and never mutated after publish",
	Run: run,
}

// publisherNames are the methods on the snapshot type that publish a new
// children snapshot. setSnap is the low-level publisher the others sit
// on (present only in the overlay-bearing real package, optional in
// fixtures). bumpGen is deliberately absent: a spurious generation bump
// only costs lock-free readers a retry, it cannot corrupt a walk.
var publisherNames = []string{"setKids", "setSnap", "cowInsert", "cowDelete"}

func run(pass *analysis.Pass) (interface{}, error) {
	info := lockset.Find(pass)
	if info == nil {
		return nil, nil // only the lock package carries snapshot obligations
	}
	v := findVocab(pass)
	if v == nil {
		return nil, nil
	}
	g := lockset.BuildGraph(pass)
	c := &checker{
		pass: pass, info: info, v: v, graph: g,
		locked:  make(map[*types.Func]bool),
		callers: make(map[*types.Func][]*types.Func),
		bad:     make(map[*types.Func]bool),
	}
	for fn, node := range g.Decls {
		if c.isTxMethod(fn) || v.publishers[fn] {
			c.locked[fn] = true
			continue
		}
		if body, ok := g.Bodies[node]; ok && c.takesWriteLock(body) {
			c.locked[fn] = true
		}
	}
	for fn, node := range g.Decls {
		for _, callee := range g.Calls[node] {
			c.callers[callee] = append(c.callers[callee], fn)
		}
	}
	c.markBadContexts()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c.checkPublishes(obj, fd.Body)
			c.checkMutations(fd.Body)
		}
	}
	return nil, nil
}

// vocab is the snapshot vocabulary detected in the package.
type vocab struct {
	snap       *types.Named         // the snapshot (inode) type
	publishers map[*types.Func]bool // setKids / setSnap / cowInsert / cowDelete
	kids       *types.Func          // the kids() accessor
	setKids    *types.Func          // legal Store site (map-shaped packages)
	setSnap    *types.Func          // legal Store site when the package has the low-level publisher
	children   *types.Var           // the atomic snapshot field, if named "children"
}

func findVocab(pass *analysis.Pass) *vocab {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		kids := methodNamed(named, "kids")
		set := methodNamed(named, "setKids")
		if kids == nil || set == nil {
			continue
		}
		v := &vocab{snap: named, publishers: map[*types.Func]bool{}, kids: kids, setKids: set,
			setSnap: methodNamed(named, "setSnap")}
		for _, pn := range publisherNames {
			if m := methodNamed(named, pn); m != nil {
				v.publishers[m] = true
			}
		}
		if st, ok := named.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i).Name() == "children" {
					v.children = st.Field(i)
				}
			}
		}
		return v
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	info    *lockset.Info
	v       *vocab
	graph   *lockset.Graph
	locked  map[*types.Func]bool // functions that establish write-lock context
	callers map[*types.Func][]*types.Func
	bad     map[*types.Func]bool // reachable from an unlocked entry without crossing a locked context
}

func (c *checker) isTxMethod(fn *types.Func) bool {
	if c.info.Tx == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedOf(sig.Recv().Type()) == c.info.Tx
}

// takesWriteLock reports whether body contains a lockTree call anywhere
// (including nested literals — a closure run by its owner shares the
// owner's lock context in every shape the VFS uses).
func (c *checker) takesWriteLock(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if c.info.Classify(c.pass, call) == lockset.OpLockTree {
				found = true
			}
		}
		return true
	})
	return found
}

// markBadContexts computes the set of functions that an unlocked code
// path can reach. Entry points are the non-locked functions with no
// in-package callers (exported API surface, dynamic hooks); bad-ness
// propagates forward along call edges but stops at locked functions,
// which establish their own context. Forward reachability handles
// recursion and mutual cycles by construction: a cycle is judged solely
// by the entry points that can reach it, so a recursive helper called
// only from locked contexts (removeNode's shape) is clean, while the
// same cycle hanging off one unlocked caller is bad in every member.
func (c *checker) markBadContexts() {
	var queue []*types.Func
	for fn := range c.graph.Decls {
		if !c.locked[fn] && len(c.callers[fn]) == 0 {
			c.bad[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range c.graph.Calls[c.graph.Decls[fn]] {
			if !c.locked[callee] && !c.bad[callee] {
				c.bad[callee] = true
				queue = append(queue, callee)
			}
		}
	}
}

// okContext reports whether fn only runs with the tree write lock held:
// no unlocked entry point reaches it. A function outside the call graph
// entirely is not ok — it is a dynamic entry the graph cannot vouch for.
func (c *checker) okContext(fn *types.Func) bool {
	if c.locked[fn] {
		return true
	}
	if _, known := c.graph.Decls[fn]; !known {
		return false
	}
	return !c.bad[fn]
}

// checkPublishes walks one declared function's body (nested literals
// included — they inherit the enclosing lock context) and reports
// publisher calls and direct children Stores from unproven contexts.
func (c *checker) checkPublishes(owner *types.Func, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := typeutil.StaticCallee(c.pass.TypesInfo, call); callee != nil {
			if c.v.publishers[callee] && !c.okContext(owner) {
				c.report(call.Pos(), "children snapshot published outside the tree write lock: %s may only be called from a Tx method, a lockTree holder, or their helpers", callee.Name())
			}
		}
		legalStore := owner == c.v.setKids || (c.v.setSnap != nil && owner == c.v.setSnap)
		if c.isChildrenStore(call) && !legalStore {
			c.report(call.Pos(), "children snapshot replaced by a direct Store: use setKids so the generation is bumped before the swap")
		}
		return true
	})
}

// isChildrenStore matches `<snap expr>.children.Store(...)`.
func (c *checker) isChildrenStore(call *ast.CallExpr) bool {
	if c.v.children == nil {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Store" {
		return false
	}
	field, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := c.pass.TypesInfo.Selections[field]
	if !ok || selection.Kind() != types.FieldVal {
		return false
	}
	return selection.Obj() == c.v.children
}

// checkMutations flags writes through a published snapshot: index
// assignment to, or delete from, a map obtained via kids() (directly or
// through local variables, with simple ident-to-ident propagation).
func (c *checker) checkMutations(body ast.Node) {
	tainted := make(map[types.Object]bool)
	isTainted := func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.Ident:
			return tainted[c.pass.TypesInfo.ObjectOf(e)]
		case *ast.CallExpr:
			if callee := typeutil.StaticCallee(c.pass.TypesInfo, e); callee != nil {
				return callee == c.v.kids
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Propagate taint through ident = ident/kids() assignments,
			// then flag writes through tainted index expressions.
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				lhs, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if isTainted(rhs) {
					tainted[c.pass.TypesInfo.ObjectOf(lhs)] = true
				}
			}
			for _, lhs := range n.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok && isTainted(ix.X) {
					c.report(lhs.Pos(), "children snapshot mutated after publish: copy-on-write a new map and publish it with setKids")
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 && isTainted(n.Args[0]) {
				if _, isBuiltin := c.pass.TypesInfo.ObjectOf(id).(*types.Builtin); isBuiltin {
					c.report(n.Pos(), "children snapshot mutated after publish: copy-on-write a new map and publish it with setKids")
				}
			}
		}
		return true
	})
}

func (c *checker) report(pos token.Pos, format string, args ...interface{}) {
	if f := directive.FileFor(c.pass, pos); f != nil && directive.Allows(c.pass, f, pos, "snapshotpub") {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

func methodNamed(n *types.Named, name string) *types.Func {
	for i := 0; i < n.NumMethods(); i++ {
		if m := n.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}
