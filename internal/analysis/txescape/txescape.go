// Package txescape enforces the lifetime and non-blocking contract of
// VFS transaction handles. A *Tx handed to a WithTx/ReadTx callback is
// a borrowed view of the tree under the tree lock: it is valid only for
// the dynamic extent of the callback, and the callback runs inside the
// whole-tree critical section. Two families of bugs follow — the class
// that froze the event-delivery rework — and both are value-flow
// properties this analyzer checks per callback:
//
//  1. Escape: the handle (or any local alias of it) must not outlive
//     the callback. Flagged: stores through fields, globals, map/slice
//     elements or pointers; sends on channels; appends; assignment to a
//     variable declared OUTSIDE the callback; capture by a goroutine
//     launched inside the callback. Passing the handle down a call
//     chain is fine — that is borrowing, and the callee returns before
//     the callback does.
//
//  2. Blocking while held: the callback body must not park the
//     goroutine while the tree lock is held. Flagged: channel sends and
//     receives (selects with a default clause are non-blocking and
//     allowed), select statements, time.Sleep, sync.WaitGroup.Wait and
//     sync.Cond.Wait, calls to methods named Submit (the mux/ring
//     enqueue vocabulary), and direct net.* I/O.
//
// The check is shape-based so fixtures can replicate it: any call to a
// method named WithTx or ReadTx whose argument is a function literal
// taking a single *Tx (a pointer to a named type called Tx) parameter.
// Suppress a deliberate violation with //yancvet:allow txescape <why>.
package txescape

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"yanc/internal/analysis/internal/directive"
)

var Analyzer = &analysis.Analyzer{
	Name: "txescape",
	Doc: "check that vfs.Tx handles do not outlive their WithTx/ReadTx callback " +
		"and that callbacks do not block inside the tree-lock critical section",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			lit, txParam := txCallback(pass, call)
			if lit == nil {
				return true
			}
			c := &checker{pass: pass, file: file, lit: lit}
			c.check(txParam)
			return true
		})
	}
	return nil, nil
}

// txCallback recognizes fs.WithTx(func(tx *Tx) error {...}) shapes and
// returns the callback literal and its Tx parameter object.
func txCallback(pass *analysis.Pass, call *ast.CallExpr) (*ast.FuncLit, *types.Var) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "WithTx" && sel.Sel.Name != "ReadTx") {
		return nil, nil
	}
	if len(call.Args) == 0 {
		return nil, nil
	}
	lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
	if !ok {
		return nil, nil
	}
	ft := lit.Type
	if ft.Params == nil || len(ft.Params.List) != 1 || len(ft.Params.List[0].Names) != 1 {
		return nil, nil
	}
	name := ft.Params.List[0].Names[0]
	v, ok := pass.TypesInfo.Defs[name].(*types.Var)
	if !ok || !isTxPointer(v.Type()) {
		return nil, nil
	}
	return lit, v
}

func isTxPointer(t types.Type) bool {
	p, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Tx"
}

type checker struct {
	pass *analysis.Pass
	file *ast.File
	lit  *ast.FuncLit
}

func (c *checker) check(txParam *types.Var) {
	aliases := c.collectAliases(txParam)
	c.checkEscapes(aliases)
	c.checkBlocking(c.lit.Body, false)
}

// collectAliases returns the tx parameter plus every local variable it
// is copied into (t := tx; u := t), to a fixpoint.
func (c *checker) collectAliases(txParam *types.Var) map[*types.Var]bool {
	aliases := map[*types.Var]bool{txParam: true}
	for changed := true; changed; {
		changed = false
		ast.Inspect(c.lit.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				if !c.isAlias(rhs, aliases) {
					continue
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := c.pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = c.pass.TypesInfo.Uses[id]
				}
				if v, ok := obj.(*types.Var); ok && !aliases[v] && c.declaredInside(v) {
					aliases[v] = true
					changed = true
				}
			}
			return true
		})
	}
	return aliases
}

// isAlias reports whether e evaluates to the tx handle itself.
func (c *checker) isAlias(e ast.Expr, aliases map[*types.Var]bool) bool {
	switch e := e.(type) {
	case *ast.Ident:
		v, ok := c.pass.TypesInfo.Uses[e].(*types.Var)
		return ok && aliases[v]
	case *ast.ParenExpr:
		return c.isAlias(e.X, aliases)
	}
	return false
}

// declaredInside reports whether v's declaration lies within the
// callback literal.
func (c *checker) declaredInside(v *types.Var) bool {
	return v.Pos() >= c.lit.Pos() && v.Pos() < c.lit.End()
}

func (c *checker) checkEscapes(aliases map[*types.Var]bool) {
	ast.Inspect(c.lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) || !c.isAlias(rhs, aliases) {
					continue
				}
				lhs := n.Lhs[i]
				if id, ok := lhs.(*ast.Ident); ok {
					if id.Name == "_" {
						continue
					}
					obj := c.pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = c.pass.TypesInfo.Uses[id]
					}
					if v, ok := obj.(*types.Var); ok {
						if isGlobal(v) {
							c.reportf(n.Pos(), "Tx handle stored to package variable %s: it outlives the WithTx callback and the tree lock", v.Name())
						} else if !c.declaredInside(v) {
							c.reportf(n.Pos(), "Tx handle assigned to %s declared outside the callback: any use after WithTx returns races the tree lock", v.Name())
						}
						continue
					}
				}
				// Field, index, or pointer store: the handle escapes to the
				// heap no matter who owns the target.
				c.reportf(n.Pos(), "Tx handle stored through a field/element/pointer: it outlives the WithTx callback")
			}
		case *ast.SendStmt:
			if c.isAlias(n.Value, aliases) {
				c.reportf(n.Pos(), "Tx handle sent on a channel: the receiver would use it outside the tree lock")
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && id.Name == "append" {
					for _, arg := range n.Args[1:] {
						if c.isAlias(arg, aliases) {
							c.reportf(n.Pos(), "Tx handle appended to a slice: it outlives the WithTx callback")
						}
					}
				}
			}
		case *ast.GoStmt:
			if c.goUsesTx(n, aliases) {
				c.reportf(n.Pos(), "goroutine launched in a WithTx callback captures the Tx handle: it runs after the tree lock is released")
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if c.isAlias(res, aliases) {
					c.reportf(n.Pos(), "Tx handle returned from the callback: it is invalid once WithTx returns")
				}
			}
		}
		return true
	})
}

// goUsesTx reports whether a go statement's call or closure references
// the tx handle.
func (c *checker) goUsesTx(g *ast.GoStmt, aliases map[*types.Var]bool) bool {
	used := false
	ast.Inspect(g.Call, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok && aliases[v] {
				used = true
			}
		}
		return true
	})
	return used
}

// checkBlocking walks the callback body flagging operations that park
// the goroutine while the tree lock is held. inGo marks subtrees that
// run in a launched goroutine: those do not hold the lock, and the
// launch itself is handled by the escape check.
func (c *checker) checkBlocking(body ast.Node, inGo bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false // separate goroutine: not under the lock
		case *ast.SelectStmt:
			if hasDefault(n) {
				return true // non-blocking poll; still walk the clause bodies
			}
			c.reportf(n.Pos(), "select blocks inside the tree-lock critical section")
			return true
		case *ast.SendStmt:
			if !isSelectComm(body, n) {
				c.reportf(n.Pos(), "channel send blocks inside the tree-lock critical section")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !isSelectComm(body, n) {
				c.reportf(n.Pos(), "channel receive blocks inside the tree-lock critical section")
			}
		case *ast.CallExpr:
			c.checkBlockingCall(n)
		}
		return true
	})
}

func (c *checker) checkBlockingCall(call *ast.CallExpr) {
	callee := typeutil.StaticCallee(c.pass.TypesInfo, call)
	if callee == nil {
		// Dynamic call: the only name-level signal we act on is the mux/
		// ring Submit vocabulary.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Submit" {
			c.reportf(call.Pos(), "Submit inside the tree-lock critical section: the mailbox/ring may be full and block under the tree lock")
		}
		return
	}
	pkg := callee.Pkg()
	name := callee.Name()
	switch {
	case name == "Submit":
		c.reportf(call.Pos(), "Submit inside the tree-lock critical section: the mailbox/ring may be full and block under the tree lock")
	case pkg != nil && pkg.Path() == "time" && name == "Sleep":
		c.reportf(call.Pos(), "time.Sleep inside the tree-lock critical section")
	case pkg != nil && pkg.Path() == "sync" && name == "Wait":
		c.reportf(call.Pos(), "sync %s.Wait blocks inside the tree-lock critical section", recvTypeName(callee))
	case pkg != nil && (pkg.Path() == "net" || pkg.Path() == "net/http"):
		c.reportf(call.Pos(), "network I/O (%s.%s) inside the tree-lock critical section", pkg.Path(), name)
	}
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "?"
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// isSelectComm reports whether op is the comm statement of some select
// clause. Comm ops of a default-bearing select are non-blocking; comm
// ops of a blocking select are covered by that select's own diagnostic.
func isSelectComm(root ast.Node, op ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			comm := cc.Comm
			if comm == op {
				found = true
				continue
			}
			// recv shapes: `v := <-ch` / `<-ch` as expr stmt
			switch s := comm.(type) {
			case *ast.AssignStmt:
				for _, r := range s.Rhs {
					if r == op {
						found = true
					}
				}
			case *ast.ExprStmt:
				if s.X == op {
					found = true
				}
			}
		}
		return true
	})
	return found
}

func (c *checker) reportf(pos token.Pos, format string, args ...interface{}) {
	if directive.Allows(c.pass, c.file, pos, "txescape") {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

func isGlobal(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
