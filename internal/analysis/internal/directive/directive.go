// Package directive implements the yancvet comment directives that let a
// specific line opt out of one analyzer. Three forms exist:
//
//	//yancvet:allow <analyzer> [reason...]
//	//yancvet:wallclock [reason...]          (sugar for "allow clockban")
//	//yancvet:alloc [reason...]              (sugar for "allow hotalloc")
//
// A directive suppresses the named analyzer on its own line and on the
// next source line — so both trailing and preceding annotations read
// naturally:
//
//	t := time.Now() //yancvet:wallclock latency measurement
//
//	//yancvet:wallclock rng seed entropy, not a timestamp
//	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
//
// There is also one package-scope directive, "//yancvet:clocked", which
// clockban uses to treat a package as clock-disciplined even when the
// injectable-clock shape cannot be detected structurally.
package directive

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

const prefix = "//yancvet:"

// Allows reports whether a yancvet directive in file suppresses the named
// analyzer at pos. file must be the *ast.File containing pos.
func Allows(pass *analysis.Pass, file *ast.File, pos token.Pos, name string) bool {
	fset := pass.Fset
	line := fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			dir, ok := parse(c.Text)
			if !ok || !dir.allows(name) {
				continue
			}
			cline := fset.Position(c.Pos()).Line
			if cline == line || cline == line-1 {
				return true
			}
		}
	}
	return false
}

// HasPackageDirective reports whether any file of the pass carries the
// package-scope directive //yancvet:<name>.
func HasPackageDirective(pass *analysis.Pass, name string) bool {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if d, ok := parse(c.Text); ok && d.verb == name {
					return true
				}
			}
		}
	}
	return false
}

// FileFor returns the *ast.File of pass containing pos.
func FileFor(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

type parsed struct {
	verb string // "allow", "wallclock", "clocked", ...
	arg  string // first word after the verb ("" if none)
}

func (d parsed) allows(analyzer string) bool {
	switch d.verb {
	case "allow":
		return d.arg == analyzer
	case "wallclock":
		return analyzer == "clockban"
	case "alloc":
		return analyzer == "hotalloc"
	}
	return false
}

func parse(text string) (parsed, bool) {
	if !strings.HasPrefix(text, prefix) {
		return parsed{}, false
	}
	rest := text[len(prefix):]
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return parsed{}, false
	}
	d := parsed{verb: fields[0]}
	if len(fields) > 1 {
		d.arg = fields[1]
	}
	return d, true
}
