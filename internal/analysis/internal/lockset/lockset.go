// Package lockset identifies the VFS locking vocabulary in a package and
// builds the in-package static call graph the lockorder and lockpair
// analyzers walk. The "lock package" (internal/vfs in this repo) is
// recognized by shape, not by import path, so analysistest fixtures can
// replicate it: it is any package that declares both a lockTree and an
// rlockTree method on some receiver type. From that anchor the rest of
// the vocabulary is resolved by name on the same receiver (unlockTree,
// runlockTree, lockNode, rlockNode), plus the Synthetic provider struct,
// the DirSemantics hook struct, and the Tx transaction type.
package lockset

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// Op classifies what a call to a lock primitive does.
type Op int

const (
	OpNone Op = iota
	OpLockTree
	OpRLockTree
	OpUnlockTree
	OpRUnlockTree
	OpLockShard   // lockNode / rlockNode
	OpUnlockShard // <stripe>.mu.Unlock / <stripe>.mu.RUnlock
)

// Info describes the locking vocabulary found in one package.
type Info struct {
	// FS is the receiver type (named type) of the lock primitives.
	FS *types.Named
	// Primitives maps the *types.Func of each primitive to its Op.
	Primitives map[*types.Func]Op
	// ShardType is the named type returned by lockNode (nil if lockNode
	// does not exist or returns nothing).
	ShardType *types.Named
	// Synthetic is the provider struct type (nil if absent).
	Synthetic *types.Named
	// DirSemantics is the hook struct type (nil if absent).
	DirSemantics *types.Named
	// Tx is the transaction type whose methods run under the tree lock
	// (nil if absent).
	Tx *types.Named
}

// Find looks for the lock-package shape in pass's package. It returns nil
// when the package does not define the locking vocabulary.
func Find(pass *analysis.Pass) *Info {
	scope := pass.Pkg.Scope()
	var fs *types.Named
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if methodNamed(named, "lockTree") != nil && methodNamed(named, "rlockTree") != nil {
			fs = named
			break
		}
	}
	if fs == nil {
		return nil
	}
	info := &Info{FS: fs, Primitives: make(map[*types.Func]Op)}
	for name, op := range map[string]Op{
		"lockTree":    OpLockTree,
		"rlockTree":   OpRLockTree,
		"unlockTree":  OpUnlockTree,
		"runlockTree": OpRUnlockTree,
		"lockNode":    OpLockShard,
		"rlockNode":   OpLockShard,
	} {
		if m := methodNamed(fs, name); m != nil {
			info.Primitives[m] = op
			if op == OpLockShard && info.ShardType == nil {
				if sig, ok := m.Type().(*types.Signature); ok && sig.Results().Len() == 1 {
					info.ShardType = namedOf(sig.Results().At(0).Type())
				}
			}
		}
	}
	if tn, ok := scope.Lookup("Synthetic").(*types.TypeName); ok {
		info.Synthetic = namedOf(tn.Type())
	}
	if tn, ok := scope.Lookup("DirSemantics").(*types.TypeName); ok {
		info.DirSemantics = namedOf(tn.Type())
	}
	if tn, ok := scope.Lookup("Tx").(*types.TypeName); ok {
		info.Tx = namedOf(tn.Type())
	}
	return info
}

// Classify returns the lock Op a call expression performs, resolving both
// the FS primitives and stripe mu.Unlock/mu.RUnlock releases.
func (in *Info) Classify(pass *analysis.Pass, call *ast.CallExpr) Op {
	if callee := typeutil.StaticCallee(pass.TypesInfo, call); callee != nil {
		if op, ok := in.Primitives[callee]; ok {
			return op
		}
	}
	// <shardvar>.mu.Unlock() / RUnlock(): a method call on a sync mutex
	// reached through a field of the stripe type.
	if in.ShardType != nil {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock" {
				if inner, ok := sel.X.(*ast.SelectorExpr); ok {
					if t := pass.TypesInfo.TypeOf(inner.X); t != nil && namedOf(t) == in.ShardType {
						return OpUnlockShard
					}
				}
			}
		}
	}
	return OpNone
}

// IsSyntheticProviderCall reports whether call invokes a func-typed field
// of the Synthetic provider struct (e.g. n.synth.Read()). Such providers
// must never run under any tree lock.
func (in *Info) IsSyntheticProviderCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	if in.Synthetic == nil {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return "", false
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok {
		return "", false
	}
	st, ok := in.Synthetic.Underlying().(*types.Struct)
	if !ok {
		return "", false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i) == field {
			return "Synthetic." + field.Name(), true
		}
	}
	return "", false
}

// Graph is the in-package static call graph: declared functions and
// function literals are nodes; only statically resolvable calls to
// same-package functions are edges. Dynamic calls (interface methods,
// func values, hook fields) are invisible, which is exactly right for
// the locking rules: hooks and providers are checked at their binding
// or invocation contract instead.
type Graph struct {
	// Calls maps each function node to the set of same-package declared
	// functions it calls directly.
	Calls map[Node][]*types.Func
	// Decls maps a declared function to its body node, when the body is
	// in this package.
	Decls map[*types.Func]Node
	// Bodies maps each node to its body syntax, for reporting walks.
	Bodies map[Node]ast.Node
}

// Node is a call-graph node: a declared function or a function literal.
type Node interface{ isNode() }

type declNode struct{ fn *types.Func }
type litNode struct{ lit *ast.FuncLit }

func (declNode) isNode() {}
func (litNode) isNode()  {}

// DeclNode returns the graph node for a declared function.
func DeclNode(fn *types.Func) Node { return declNode{fn} }

// LitNode returns the graph node for a function literal.
func LitNode(lit *ast.FuncLit) Node { return litNode{lit} }

// BuildGraph walks every function body in the pass and records its
// direct same-package callees.
func BuildGraph(pass *analysis.Pass) *Graph {
	g := &Graph{
		Calls:  make(map[Node][]*types.Func),
		Decls:  make(map[*types.Func]Node),
		Bodies: make(map[Node]ast.Node),
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := DeclNode(obj)
			g.Decls[obj] = node
			g.Bodies[node] = fd.Body
			g.collect(pass, node, fd.Body)
		}
	}
	return g
}

// collect records the same-package callees of body under node, descending
// into nested function literals as their own nodes. A function literal is
// also treated as called by its enclosing function: literals are almost
// always invoked (immediately or via defer) in the VFS code shapes, and
// folding them in keeps reachability conservative.
func (g *Graph) collect(pass *analysis.Pass, node Node, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lit := LitNode(n)
			g.Bodies[lit] = n.Body
			g.collect(pass, lit, n.Body)
			// Fold literal reachability into the enclosing function.
			g.Calls[node] = append(g.Calls[node], g.litCallees(lit)...)
			return false
		case *ast.CallExpr:
			if callee := typeutil.StaticCallee(pass.TypesInfo, n); callee != nil && callee.Pkg() == pass.Pkg {
				g.Calls[node] = append(g.Calls[node], callee)
			}
		}
		return true
	})
}

func (g *Graph) litCallees(lit Node) []*types.Func {
	return g.Calls[lit]
}

// Reaches computes the set of declared functions from which a call to any
// function in targets is reachable, following in-package static edges.
func (g *Graph) Reaches(targets map[*types.Func]bool) map[*types.Func]bool {
	reach := make(map[*types.Func]bool, len(targets))
	for fn := range targets {
		reach[fn] = true
	}
	for changed := true; changed; {
		changed = false
		for fn, node := range g.Decls {
			if reach[fn] {
				continue
			}
			for _, callee := range g.Calls[node] {
				if reach[callee] {
					reach[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return reach
}

func methodNamed(n *types.Named, name string) *types.Func {
	for i := 0; i < n.NumMethods(); i++ {
		if m := n.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}
