package analysis_test

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The fixtures live in self-contained modules under testdata/ (the go
// tool ignores testdata directories, so they never build as part of the
// main module). Each fixture file marks the diagnostics it expects with
// trailing `// want "regexp"` comments; the harness runs the real
// yancvet binary through `go vet -vettool` — the same path CI uses — and
// demands an exact match: every want satisfied, no diagnostic unclaimed.

var wantRE = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// buildYancvet compiles cmd/yancvet once per test binary.
func buildYancvet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "yancvet")
	cmd := exec.Command("go", "build", "-o", bin, "yanc/cmd/yancvet")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building yancvet: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Clean(filepath.Join(wd, "..", ".."))
}

// vetJSON runs `go vet -vettool=bin -json ./...` in dir and returns the
// parsed diagnostics keyed by "file.go:line". A non-zero exit is normal
// when diagnostics exist.
func vetJSON(t *testing.T, bin, dir string) map[string][]string {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+bin, "-json", "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOWORK=off")
	out, _ := cmd.CombinedOutput()

	// The stream interleaves `# pkg` comment lines with JSON objects:
	// strip the comments, then decode the concatenated objects.
	var jsonText strings.Builder
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		jsonText.WriteString(line)
		jsonText.WriteString("\n")
	}
	type diagnostic struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	diags := map[string][]string{}
	dec := json.NewDecoder(strings.NewReader(jsonText.String()))
	for dec.More() {
		var pkgs map[string]map[string][]diagnostic
		if err := dec.Decode(&pkgs); err != nil {
			t.Fatalf("decoding go vet -json output: %v\nfull output:\n%s", err, out)
		}
		for _, byAnalyzer := range pkgs {
			for _, ds := range byAnalyzer {
				for _, d := range ds {
					// posn is /abs/path/file.go:line:col.
					parts := strings.Split(d.Posn, ":")
					if len(parts) < 3 {
						t.Fatalf("unparseable position %q", d.Posn)
					}
					key := filepath.Base(parts[0]) + ":" + parts[1]
					diags[key] = append(diags[key], d.Message)
				}
			}
		}
	}
	return diags
}

// wants scans every .go file under dir for `// want "re"` comments.
func wants(t *testing.T, dir string) map[string][]string {
	t.Helper()
	ws := map[string][]string{}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				unq, err := strconv.Unquote(`"` + m[1] + `"`)
				if err != nil {
					return fmt.Errorf("%s:%d: bad want %q: %v", path, i+1, m[1], err)
				}
				key := filepath.Base(path) + ":" + strconv.Itoa(i+1)
				ws[key] = append(ws[key], unq)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ws
}

func TestFixtures(t *testing.T) {
	bin := buildYancvet(t)
	fixtures, err := filepath.Glob(filepath.Join("testdata", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) == 0 {
		t.Fatal("no fixtures under testdata/")
	}
	for _, dir := range fixtures {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			diags := vetJSON(t, bin, dir)
			expected := wants(t, dir)
			for key, patterns := range expected {
				got := diags[key]
				for _, pat := range patterns {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					idx := -1
					for i, msg := range got {
						if re.MatchString(msg) {
							idx = i
							break
						}
					}
					if idx < 0 {
						t.Errorf("%s: no diagnostic matching %q (got %q)", key, pat, got)
						continue
					}
					got = append(got[:idx], got[idx+1:]...)
				}
				if len(got) > 0 {
					t.Errorf("%s: unexpected extra diagnostics %q", key, got)
				}
				delete(diags, key)
			}
			for key, msgs := range diags {
				t.Errorf("%s: unexpected diagnostics %q", key, msgs)
			}
		})
	}
}

// TestHotallocFactPropagation pins the cross-package half of hotalloc.
// The fixture's hot root calls two functions from its render subpackage:
// AppendName (annotated //yancvet:hotalloc, exports the AllocFree fact)
// and Format (unannotated). Both judgments depend on facts crossing the
// package boundary through go vet's fact files — if propagation breaks,
// AppendName gets flagged as unverified, and if the flag logic breaks,
// Format sails through.
func TestHotallocFactPropagation(t *testing.T) {
	bin := buildYancvet(t)
	diags := vetJSON(t, bin, filepath.Join("testdata", "hotalloc"))
	flaggedUnverified := false
	for _, msgs := range diags {
		for _, m := range msgs {
			if strings.Contains(m, "render.AppendName") {
				t.Errorf("annotated render.AppendName flagged despite its imported AllocFree fact: %s", m)
			}
			if strings.Contains(m, "render.Format") && strings.Contains(m, "not marked") {
				flaggedUnverified = true
			}
		}
	}
	if !flaggedUnverified {
		t.Error("unannotated render.Format not flagged: AllocFree facts are not crossing the package boundary")
	}
}

// TestYancvetExitCodes is the meta-test from the issue: the binary must
// fail on a violating module (the PR 3 regression fixture among them)
// and pass on the real module.
func TestYancvetExitCodes(t *testing.T) {
	bin := buildYancvet(t)

	t.Run("violating module fails", func(t *testing.T) {
		cmd := exec.Command(bin, "./...")
		cmd.Dir = filepath.Join("testdata", "lockorder")
		cmd.Env = append(os.Environ(), "GOWORK=off")
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("yancvet exited zero on the violating fixture; output:\n%s", out)
		}
		if !strings.Contains(string(out), "provider invoked under the tree lock") {
			t.Fatalf("missing the PR 3 Synthetic-under-lock diagnostic; output:\n%s", out)
		}
	})

	t.Run("real module passes", func(t *testing.T) {
		if testing.Short() {
			t.Skip("short mode: full-module vet is covered by the ci.sh yancvet leg")
		}
		cmd := exec.Command(bin, "./...")
		cmd.Dir = repoRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("yancvet failed on the real module: %v\n%s", err, out)
		}
	})

	t.Run("json output", func(t *testing.T) {
		cmd := exec.Command(bin, "-json", "./...")
		cmd.Dir = filepath.Join("testdata", "errdrop")
		cmd.Env = append(os.Environ(), "GOWORK=off")
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatal("expected non-zero exit on the errdrop fixture")
		}
		if !strings.Contains(string(out), `"errdrop"`) {
			t.Fatalf("-json output does not mention the errdrop analyzer:\n%s", out)
		}
	})
}
