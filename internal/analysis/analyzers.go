// Package analysis aggregates the yancvet analyzer suite: the static
// checks that turn the VFS locking discipline (DESIGN.md §8), the
// clock-injection convention, and the error-handling contracts into
// compile-time law. cmd/yancvet runs them all; see DESIGN.md §11 for
// the rule-to-analyzer map.
package analysis

import (
	"golang.org/x/tools/go/analysis"

	"yanc/internal/analysis/atomicfield"
	"yanc/internal/analysis/clockban"
	"yanc/internal/analysis/errdrop"
	"yanc/internal/analysis/hotalloc"
	"yanc/internal/analysis/lockorder"
	"yanc/internal/analysis/lockpair"
	"yanc/internal/analysis/snapshotpub"
	"yanc/internal/analysis/txescape"
	"yanc/internal/analysis/waitgraph"
)

// All returns the full yancvet suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		lockorder.Analyzer,
		lockpair.Analyzer,
		snapshotpub.Analyzer,
		clockban.Analyzer,
		atomicfield.Analyzer,
		errdrop.Analyzer,
		hotalloc.Analyzer,
		txescape.Analyzer,
		waitgraph.Analyzer,
	}
}
