// Package clockban bans bare time.Now() (and the sibling entropy/timer
// escapes time.Since, time.After, time.Sleep, time.AfterFunc) in
// packages that provide an injectable clock. Such packages promised
// their tests deterministic time; a stray wall-clock read re-introduces
// the flake the injection point was built to remove.
//
// A package is considered clock-disciplined when any of the following
// holds:
//
//   - it declares a type or interface named Clock, or a SetClock func;
//   - it declares a struct field or package var of type func() time.Time;
//   - any file carries the package directive //yancvet:clocked.
//
// Legitimate wall-clock sites (latency histograms, log timestamps, rng
// seeding) opt out per line:
//
//	t := time.Now() //yancvet:wallclock request latency histogram
package clockban

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"yanc/internal/analysis/internal/directive"
)

var Analyzer = &analysis.Analyzer{
	Name: "clockban",
	Doc: "ban bare time.Now/time.Since/time.After/time.Sleep in packages with an injectable Clock " +
		"(use the injected clock; annotate true wall-clock sites with //yancvet:wallclock)",
	Run: run,
}

// banned are the time package functions that read or wait on the real
// clock. Conversions and constructors (time.Unix, time.Date) are fine.
var banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"Sleep":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !clocked(pass) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue // tests drive the fake clock and may also use the real one
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !banned[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || pkg.Imported().Path() != "time" {
				return true
			}
			if directive.Allows(pass, file, call.Pos(), "clockban") {
				return true
			}
			pass.Reportf(call.Pos(), "bare time.%s in a clock-disciplined package: route through the injectable clock, or annotate with //yancvet:wallclock <reason>", sel.Sel.Name)
			return true
		})
	}
	return nil, nil
}

// clocked reports whether the package has an injectable-clock shape.
func clocked(pass *analysis.Pass) bool {
	if directive.HasPackageDirective(pass, "clocked") {
		return true
	}
	scope := pass.Pkg.Scope()
	if _, ok := scope.Lookup("Clock").(*types.TypeName); ok {
		return true
	}
	if obj := scope.Lookup("SetClock"); obj != nil {
		if _, ok := obj.(*types.Func); ok {
			return true
		}
	}
	// A struct field or package var of type func() time.Time is the
	// lighter-weight injection idiom (vfs.FS.clock, middlebox.Engine.now).
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		switch o := obj.(type) {
		case *types.Var:
			if isClockFunc(o.Type()) {
				return true
			}
		case *types.TypeName:
			st, ok := o.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if isClockFunc(st.Field(i).Type()) {
					return true
				}
			}
		}
	}
	return false
}

// isClockFunc reports whether t is func() time.Time.
func isClockFunc(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Time" && obj.Pkg() != nil && obj.Pkg().Path() == "time"
}

func isTestFile(pass *analysis.Pass, file *ast.File) bool {
	name := pass.Fset.Position(file.Package).Filename
	return len(name) >= 8 && name[len(name)-8:] == "_test.go"
}
