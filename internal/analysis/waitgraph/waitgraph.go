// Package waitgraph assembles a whole-program wait-for graph and
// reports cross-package cycles that the per-package, pairwise lockorder
// rules cannot see.
//
// Nodes are named wait resources:
//
//   - mutex fields:   "pkg.Type.field"  (x.mu.Lock / x.mu.RLock, and
//     methods promoted from an embedded sync.Mutex/RWMutex)
//   - global mutexes: "pkg.var"
//   - the VFS tree lock: "pkg.FS.tree" (lockTree/rlockTree inside the
//     lock package; WithTx/ReadTx from consumers)
//   - channel fields: "pkg.Type.field" for blocking sends/receives
//   - condition vars: "pkg.Type.field" for sync.Cond Wait
//
// Edges mean "while waiting for/holding the first resource, the
// goroutine needed the second":
//
//   - acquire B while holding A            →  A → B
//   - blocking send/receive/Wait on C while holding A  →  A → C
//   - acquire B after a blocking receive on C (a drain loop: servicing
//     C's senders requires B)              →  C → B
//   - call a function that (transitively) acquires or blocks on R
//     while holding A                      →  A → R
//
// Summaries cross package boundaries as facts: each function exports a
// FuncBlocks object fact listing the resources it may wait on, and each
// package exports an Edges fact that unions its own edges with every
// dependency's, so by the time the leaf importer is analyzed the graph
// is global. A cycle is reported in the package contributing the edge
// that closes it — e.g. driver mux worker → stripe lock → watch drain →
// mux mailbox — at that edge's position.
//
// Reentrant self-edges (A → A) are lockorder/lockpair territory and are
// skipped here. Suppress a known-benign edge with
// //yancvet:allow waitgraph <why> on the acquiring line.
package waitgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"yanc/internal/analysis/internal/directive"
	"yanc/internal/analysis/internal/lockset"
)

// Edge is one wait-for dependency, with the package that observed it.
type Edge struct {
	From, To string
	Pkg      string // package path where the edge was observed
	Pos      string // "file:line" in that package, for diagnostics
}

// Edges is the package fact: this package's own wait-for edges unioned
// with those of every dependency.
type Edges struct{ List []Edge }

func (*Edges) AFact()           {}
func (e *Edges) String() string { return fmt.Sprintf("waitEdges(%d)", len(e.List)) }

// FuncBlocks is the object fact for a function: the wait resources the
// function may acquire or block on, transitively within its package.
type FuncBlocks struct{ Resources []string }

func (*FuncBlocks) AFact()           {}
func (f *FuncBlocks) String() string { return "blocks(" + strings.Join(f.Resources, ",") + ")" }

var Analyzer = &analysis.Analyzer{
	Name:      "waitgraph",
	Doc:       "build the cross-package lock/channel wait-for graph and report acquisition cycles",
	FactTypes: []analysis.Fact{(*Edges)(nil), (*FuncBlocks)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	w := &walker{
		pass:      pass,
		info:      lockset.Find(pass),
		summaries: map[*types.Func][]string{},
	}

	// Pass 1: per-function direct summaries (resources touched directly).
	var fns []*ast.FuncDecl
	objs := map[*ast.FuncDecl]*types.Func{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fns = append(fns, fd)
			objs[fd] = obj
			w.summaries[obj] = w.directResources(fd.Body)
		}
	}

	// Pass 2: close summaries over in-package static calls.
	graph := lockset.BuildGraph(pass)
	for changed := true; changed; {
		changed = false
		for fn, node := range graph.Decls {
			have := w.summaries[fn]
			set := map[string]bool{}
			for _, r := range have {
				set[r] = true
			}
			for _, callee := range graph.Calls[node] {
				for _, r := range w.summaries[callee] {
					if !set[r] {
						set[r] = true
						have = append(have, r)
						changed = true
					}
				}
			}
			w.summaries[fn] = have
		}
	}
	for fn, resources := range w.summaries {
		if len(resources) > 0 {
			sort.Strings(resources)
			pass.ExportObjectFact(fn, &FuncBlocks{Resources: resources})
		}
	}

	// Pass 3: per-function edge scan.
	for _, fd := range fns {
		w.scanFunc(fd)
	}

	// Union with every dependency's edges and export.
	union := append([]Edge(nil), w.edges...)
	seen := map[string]bool{}
	for _, e := range union {
		seen[e.From+"\x00"+e.To+"\x00"+e.Pkg] = true
	}
	for _, imp := range pass.Pkg.Imports() {
		var dep Edges
		if !pass.ImportPackageFact(imp, &dep) {
			continue
		}
		for _, e := range dep.List {
			k := e.From + "\x00" + e.To + "\x00" + e.Pkg
			if !seen[k] {
				seen[k] = true
				union = append(union, e)
			}
		}
	}
	sort.Slice(union, func(i, j int) bool {
		if union[i].From != union[j].From {
			return union[i].From < union[j].From
		}
		if union[i].To != union[j].To {
			return union[i].To < union[j].To
		}
		return union[i].Pkg < union[j].Pkg
	})
	pass.ExportPackageFact(&Edges{List: union})

	w.reportCycles(union)
	return nil, nil
}

type walker struct {
	pass      *analysis.Pass
	info      *lockset.Info // non-nil only in the lock package itself
	summaries map[*types.Func][]string
	edges     []Edge
	ownPos    map[string]token.Pos // "from\x00to" -> first own position
}

// directResources lists the wait resources body touches directly.
func (w *walker) directResources(body ast.Node) []string {
	var out []string
	seen := map[string]bool{}
	add := func(r string) {
		if r != "" && !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if r, _ := w.acquireResource(n); r != "" {
				add(r)
			} else if r, _ := w.blockResource(n); r != "" {
				add(r)
			} else if callee := typeutil.StaticCallee(w.pass.TypesInfo, n); callee != nil && callee.Pkg() != nil && callee.Pkg() != w.pass.Pkg {
				var fb FuncBlocks
				if w.pass.ImportObjectFact(callee, &fb) {
					for _, r := range fb.Resources {
						add(r)
					}
				}
				if r := w.treeLockEntry(callee); r != "" {
					add(r)
				}
			}
		case *ast.SendStmt:
			if !inNonBlockingSelect(body, n) {
				add(w.chanResource(n.Chan))
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !inNonBlockingSelect(body, n) {
				add(w.chanResource(n.X))
			}
		}
		return true
	})
	return out
}

// scanFunc walks one function in source order maintaining the held set
// and emitting edges.
func (w *walker) scanFunc(fd *ast.FuncDecl) {
	var held []string    // acquired locks, in order
	var drained []string // channels this body blocks receiving from
	file := directive.FileFor(w.pass, fd.Pos())

	emit := func(from, to string, pos token.Pos) {
		if from == to {
			return // reentrancy: lockorder/lockpair's job
		}
		if file != nil && directive.Allows(w.pass, file, pos, "waitgraph") {
			return
		}
		p := w.pass.Fset.Position(pos)
		short := p.Filename
		if i := strings.LastIndexByte(short, '/'); i >= 0 {
			short = short[i+1:]
		}
		w.edges = append(w.edges, Edge{
			From: from, To: to,
			Pkg: w.pass.Pkg.Path(),
			Pos: fmt.Sprintf("%s:%d", short, p.Line),
		})
		if w.ownPos == nil {
			w.ownPos = map[string]token.Pos{}
		}
		key := from + "\x00" + to
		if _, ok := w.ownPos[key]; !ok {
			w.ownPos[key] = pos
		}
	}

	acquire := func(r string, pos token.Pos) {
		for _, h := range held {
			emit(h, r, pos)
		}
		for _, d := range drained {
			emit(d, r, pos)
		}
		held = append(held, r)
	}
	block := func(r string, pos token.Pos) {
		for _, h := range held {
			emit(h, r, pos)
		}
	}
	release := func(r string) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i] == r {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}

	var scan func(n ast.Node, deferred bool)
	scan = func(root ast.Node, deferred bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				// A deferred release keeps the lock held to the end of the
				// function, which the linear scan models by ignoring it.
				// A deferred acquire would be bizarre; skip the subtree.
				return false
			case *ast.GoStmt:
				return false // runs on its own goroutine with an empty held set
			case *ast.SelectStmt:
				if hasDefault(n) {
					return true // non-blocking poll
				}
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CommClause)
					if !ok || cc.Comm == nil {
						continue
					}
					switch s := cc.Comm.(type) {
					case *ast.SendStmt:
						if r := w.chanResource(s.Chan); r != "" {
							block(r, s.Pos())
						}
					case *ast.AssignStmt:
						for _, rhs := range s.Rhs {
							if ue, ok := rhs.(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
								if r := w.chanResource(ue.X); r != "" {
									block(r, ue.Pos())
									drained = append(drained, r)
								}
							}
						}
					case *ast.ExprStmt:
						if ue, ok := s.X.(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
							if r := w.chanResource(ue.X); r != "" {
								block(r, ue.Pos())
								drained = append(drained, r)
							}
						}
					}
				}
				return true
			case *ast.SendStmt:
				if r := w.chanResource(n.Chan); r != "" && !inNonBlockingSelect(fd.Body, n) {
					block(r, n.Pos())
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					if r := w.chanResource(n.X); r != "" && !inNonBlockingSelect(fd.Body, n) {
						block(r, n.Pos())
						drained = append(drained, r)
					}
				}
			case *ast.CallExpr:
				if r, isAcquire := w.acquireResource(n); r != "" {
					if isAcquire {
						acquire(r, n.Pos())
					} else {
						release(r)
					}
					return true
				}
				if r, isCond := w.blockResource(n); r != "" {
					if isCond {
						// cond.Wait atomically releases the cond's mutex —
						// by convention the innermost held lock — so only
						// OUTER locks are held across the wait, and the
						// wait services nothing (no drained entry).
						for i := 0; i+1 < len(held); i++ {
							emit(held[i], r, n.Pos())
						}
					} else {
						block(r, n.Pos())
					}
					return true
				}
				callee := typeutil.StaticCallee(w.pass.TypesInfo, n)
				if callee == nil {
					return true
				}
				if callee.Pkg() == w.pass.Pkg {
					for _, r := range w.summaries[callee] {
						block(r, n.Pos())
					}
					return true
				}
				var fb FuncBlocks
				if w.pass.ImportObjectFact(callee, &fb) {
					for _, r := range fb.Resources {
						block(r, n.Pos())
					}
				}
				if r := w.treeLockEntry(callee); r != "" {
					block(r, n.Pos())
				}
			}
			return true
		})
	}
	scan(fd.Body, false)
}

// acquireResource classifies call as a lock acquire (true) or release
// (false) of a named resource, or neither ("").
func (w *walker) acquireResource(call *ast.CallExpr) (string, bool) {
	// VFS tree/shard primitives inside the lock package.
	if w.info != nil {
		switch w.info.Classify(w.pass, call) {
		case lockset.OpLockTree, lockset.OpRLockTree:
			return w.pass.Pkg.Path() + ".FS.tree", true
		case lockset.OpUnlockTree, lockset.OpRUnlockTree:
			return w.pass.Pkg.Path() + ".FS.tree", false
		case lockset.OpLockShard:
			return w.pass.Pkg.Path() + ".stripe.mu", true
		case lockset.OpUnlockShard:
			return w.pass.Pkg.Path() + ".stripe.mu", false
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	callee := typeutil.StaticCallee(w.pass.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return "", false
	}
	recv := recvName(callee)
	if recv != "Mutex" && recv != "RWMutex" {
		return "", false
	}
	var isAcquire bool
	switch callee.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		isAcquire = true
	case "Unlock", "RUnlock":
		isAcquire = false
	default:
		return "", false
	}
	return w.resourceOf(sel.X), isAcquire
}

// blockResource classifies call as a blocking wait on a named resource:
// sync.Cond Wait (isCond=true) or sync.WaitGroup Wait.
func (w *walker) blockResource(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	callee := typeutil.StaticCallee(w.pass.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync" || callee.Name() != "Wait" {
		return "", false
	}
	switch recvName(callee) {
	case "Cond":
		return w.resourceOf(sel.X), true
	case "WaitGroup":
		return w.resourceOf(sel.X), false
	}
	return "", false
}

// chanResource names the channel a send/receive operates on, when it is
// a field of a named type or a package-level variable.
func (w *walker) chanResource(e ast.Expr) string {
	if t := w.pass.TypesInfo.TypeOf(e); t != nil {
		if _, ok := t.Underlying().(*types.Chan); !ok {
			return ""
		}
	}
	return w.resourceOf(e)
}

// treeLockEntry maps cross-package WithTx/ReadTx (and exported locked
// entry points on an FS receiver) to the tree-lock resource.
func (w *walker) treeLockEntry(callee *types.Func) string {
	if callee.Name() != "WithTx" && callee.Name() != "ReadTx" {
		return ""
	}
	if recvName(callee) != "FS" {
		return ""
	}
	return callee.Pkg().Path() + ".FS.tree"
}

// resourceOf names the resource a lock/chan/cond expression denotes:
// "pkg.Type.field" for a field access, "pkg.var" for a package-level
// variable, "pkg.Type.(embedded)" for a promoted method receiver, and
// "" for locals (not shared by name).
func (w *walker) resourceOf(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := w.pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if named := namedOf(sel.Recv()); named != nil && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name
			}
		}
		// Package-qualified global: pkg.Var
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := w.pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
				if v, ok := w.pass.TypesInfo.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
					return v.Pkg().Path() + "." + v.Name()
				}
			}
		}
	case *ast.Ident:
		if v, ok := w.pass.TypesInfo.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		// Method promoted from an embedded mutex on a named receiver type:
		// x.Lock() resolves here with e the receiver ident. A bare local
		// sync.Mutex is NOT shared by name — naming it would unify every
		// local mutex into one false resource — so sync types are skipped.
		if t := w.pass.TypesInfo.TypeOf(e); t != nil {
			if named := namedOf(t); named != nil && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() != "sync" {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + ".(embedded)"
			}
		}
	}
	return ""
}

// reportCycles finds cycles in the union graph that an own edge closes.
// When several own edges lie on the same cycle, the diagnostic goes to
// the MINORITY edge — the acquisition order observed at the fewest
// sites is the anomaly, the dominant order is the discipline it
// violates — with the key as a deterministic tiebreak.
func (w *walker) reportCycles(union []Edge) {
	adj := map[string][]Edge{}
	for _, e := range union {
		adj[e.From] = append(adj[e.From], e)
	}
	count := map[string]int{}
	for _, e := range w.edges {
		count[e.From+"\x00"+e.To]++
	}
	keys := make([]string, 0, len(w.ownPos))
	for key := range w.ownPos {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if count[keys[i]] != count[keys[j]] {
			return count[keys[i]] < count[keys[j]]
		}
		return keys[i] < keys[j]
	})
	reported := map[string]bool{}
	for _, key := range keys {
		pos := w.ownPos[key]
		parts := strings.SplitN(key, "\x00", 2)
		from, to := parts[0], parts[1]
		path := shortestPath(adj, to, from)
		if path == nil {
			continue
		}
		// Cycle: from -> to -> ... -> from. Canonicalize for dedup.
		cycle := append([]string{from, to}, path...)
		sig := canonical(cycle[:len(cycle)-1]) // last repeats the first
		if reported[sig] {
			continue
		}
		reported[sig] = true
		var pkgs []string
		pkgSeen := map[string]bool{}
		for _, e := range union {
			for i := 0; i+1 < len(cycle); i++ {
				if e.From == cycle[i] && e.To == cycle[i+1] && !pkgSeen[e.Pkg] {
					pkgSeen[e.Pkg] = true
					pkgs = append(pkgs, e.Pkg)
				}
			}
		}
		if len(pkgs) < 2 {
			// A cycle whose every edge is observed in one package is
			// pairwise-visible there: lockorder/lockpair territory. This
			// analyzer exists for the cycles no single package can see.
			continue
		}
		sort.Strings(pkgs)
		w.pass.Reportf(pos,
			"lock acquisition cycle across packages: %s (edges observed in %s); two goroutines taking these in opposite order deadlock",
			strings.Join(cycle, " -> "), strings.Join(pkgs, ", "))
	}
}

// shortestPath returns the node path from start to goal (exclusive of
// start, inclusive of goal), or nil.
func shortestPath(adj map[string][]Edge, start, goal string) []string {
	type item struct {
		node string
		path []string
	}
	visited := map[string]bool{start: true}
	queue := []item{{start, nil}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if it.node == goal {
			return it.path
		}
		for _, e := range adj[it.node] {
			if visited[e.To] {
				continue
			}
			visited[e.To] = true
			next := append(append([]string(nil), it.path...), e.To)
			queue = append(queue, item{e.To, next})
		}
	}
	return nil
}

// canonical rotates a cycle's node list to start at its smallest element
// so the same cycle found from different edges dedups.
func canonical(nodes []string) string {
	if len(nodes) == 0 {
		return ""
	}
	min := 0
	for i, n := range nodes {
		if n < nodes[min] {
			min = i
		}
	}
	rot := append(append([]string(nil), nodes[min:]...), nodes[:min]...)
	return strings.Join(rot, "->")
}

func recvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func inNonBlockingSelect(root ast.Node, op ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok || !hasDefault(sel) {
			return true
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			if cc.Comm == op {
				found = true
				continue
			}
			switch s := cc.Comm.(type) {
			case *ast.AssignStmt:
				for _, r := range s.Rhs {
					if r == op {
						found = true
					}
				}
			case *ast.ExprStmt:
				if s.X == op {
					found = true
				}
			}
		}
		return true
	})
	return found
}
