// Package errdrop forbids silently discarding errors on the paths where
// an ignored error corrupts state rather than just losing a message:
// VFS transactions (Tx methods mutate the tree under the big lock —
// a dropped error means a half-applied transaction nobody notices),
// watch delivery, and dfs RPCs (a dropped RPC error breaks the
// replication contract).
//
// A call is on a guarded path when its static callee is a method on a
// type named Tx, Watch or Watcher, or any function of a package named
// dfs. Discarding means invoking such a call as a bare statement (also
// via defer or go) or assigning its error result to the blank
// identifier. Deliberate discards must say so:
//
//	_ = tx.Remove(path) //yancvet:allow errdrop best-effort cleanup
package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"yanc/internal/analysis/internal/directive"
)

var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc: "forbid discarded errors from Tx methods, watch delivery, and dfs RPCs " +
		"(annotate deliberate discards with //yancvet:allow errdrop <reason>)",
	Run: run,
}

// guardedReceivers are receiver type names whose methods' errors must
// not be dropped. FlowRing is guarded because its submission errors are
// the ONLY synchronous signal the ring gives: a dropped Submit error
// (ring closed, queue full) means the caller believes a flow-mod is in
// flight that was never enqueued, and a dropped Flush error hides every
// per-entry commit failure of the batch.
var guardedReceivers = map[string]bool{
	"Tx":       true,
	"Watch":    true,
	"Watcher":  true,
	"FlowRing": true,
}

// guardedPackages are package names all of whose error returns are
// load-bearing (RPC surfaces).
var guardedPackages = map[string]bool{
	"dfs": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		// Test cleanup (defer c.Close()) is idiomatic and harmless; the
		// guarded paths matter in production code.
		name := pass.Fset.Position(file.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					check(pass, file, call, -1)
				}
			case *ast.DeferStmt:
				check(pass, file, n.Call, -1)
			case *ast.GoStmt:
				check(pass, file, n.Call, -1)
			case *ast.AssignStmt:
				// a, _ := f() or _ = f(): the error position must not be
				// blank. Only the single-call tuple form and the 1:1 form
				// are considered.
				if len(n.Rhs) == 1 {
					if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
						for i, lhs := range n.Lhs {
							if isBlank(lhs) {
								check(pass, file, call, i)
							}
						}
						return true
					}
				}
				for i, rhs := range n.Rhs {
					if call, ok := rhs.(*ast.CallExpr); ok && i < len(n.Lhs) && isBlank(n.Lhs[i]) {
						check(pass, file, call, 0)
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// check reports call if it is guarded and its error result is dropped.
// blankIdx < 0 means the whole result tuple is discarded; otherwise it
// is the tuple index assigned to the blank identifier.
func check(pass *analysis.Pass, file *ast.File, call *ast.CallExpr, blankIdx int) {
	fn := typeutil.StaticCallee(pass.TypesInfo, call)
	if fn == nil || !isGuarded(fn) {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	errIdx := -1
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			errIdx = i
		}
	}
	if errIdx < 0 {
		return
	}
	if blankIdx >= 0 && blankIdx != errIdx {
		return // some other result is blanked; the error is still bound
	}
	if directive.Allows(pass, file, call.Pos(), "errdrop") {
		return
	}
	pass.Reportf(call.Pos(), "error from %s discarded on a guarded path (Tx/watch/dfs): handle it or annotate //yancvet:allow errdrop <reason>", fn.FullName())
}

func isGuarded(fn *types.Func) bool {
	if fn.Pkg() != nil && guardedPackages[fn.Pkg().Name()] {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return guardedReceivers[named.Obj().Name()]
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
