// Package errdrop forbids silently discarding errors on the paths where
// an ignored error corrupts state rather than just losing a message:
// VFS transactions (Tx methods mutate the tree under the big lock —
// a dropped error means a half-applied transaction nobody notices),
// watch delivery, and dfs RPCs (a dropped RPC error breaks the
// replication contract).
//
// A call is on a guarded path when its static callee is a method on a
// type named Tx, Watch, Watcher or FlowRing, or any function of a
// package named dfs. Discarding means invoking such a call as a bare
// statement (also via defer or go) or assigning its error result to the
// blank identifier. A guarded method whose result is a struct carrying
// an error-typed field (FlowRing.Reap's CQE.Err) is held to the same
// rule: discarding the struct discards the completion error. Deliberate
// discards must say so:
//
//	_ = tx.Remove(path) //yancvet:allow errdrop best-effort cleanup
package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"yanc/internal/analysis/internal/directive"
)

var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc: "forbid discarded errors from Tx methods, watch delivery, and dfs RPCs " +
		"(annotate deliberate discards with //yancvet:allow errdrop <reason>)",
	Run: run,
}

// guardedReceivers are receiver type names whose methods' errors must
// not be dropped. FlowRing is guarded because its submission errors are
// the ONLY synchronous signal the ring gives: a dropped Submit error
// (ring closed, queue full) means the caller believes a flow-mod is in
// flight that was never enqueued, and a dropped Flush error hides every
// per-entry commit failure of the batch.
var guardedReceivers = map[string]bool{
	"Tx":       true,
	"Watch":    true,
	"Watcher":  true,
	"FlowRing": true,
}

// guardedPackages are package names all of whose error returns are
// load-bearing (RPC surfaces).
var guardedPackages = map[string]bool{
	"dfs": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		// Test cleanup (defer c.Close()) is idiomatic and harmless; the
		// guarded paths matter in production code.
		name := pass.Fset.Position(file.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					check(pass, file, call, -1)
				}
			case *ast.DeferStmt:
				check(pass, file, n.Call, -1)
			case *ast.GoStmt:
				check(pass, file, n.Call, -1)
			case *ast.AssignStmt:
				// a, _ := f() or _ = f(): the error position must not be
				// blank. Only the single-call tuple form and the 1:1 form
				// are considered.
				if len(n.Rhs) == 1 {
					if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
						for i, lhs := range n.Lhs {
							if isBlank(lhs) {
								check(pass, file, call, i)
							}
						}
						return true
					}
				}
				for i, rhs := range n.Rhs {
					if call, ok := rhs.(*ast.CallExpr); ok && i < len(n.Lhs) && isBlank(n.Lhs[i]) {
						check(pass, file, call, 0)
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// check reports call if it is guarded and its error result is dropped.
// blankIdx < 0 means the whole result tuple is discarded; otherwise it
// is the tuple index assigned to the blank identifier.
func check(pass *analysis.Pass, file *ast.File, call *ast.CallExpr, blankIdx int) {
	fn := typeutil.StaticCallee(pass.TypesInfo, call)
	if fn == nil || !isGuarded(fn) {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	errIdx := -1
	carrier := "" // non-empty when the dropped result is a struct carrying an error field
	for i := 0; i < sig.Results().Len(); i++ {
		rt := sig.Results().At(i).Type()
		if isErrorType(rt) {
			errIdx, carrier = i, ""
			continue
		}
		// A completion-style result (libyanc's CQE) embeds the error as a
		// field: discarding the struct discards the error with it.
		if errIdx < 0 {
			if f := errorField(rt); f != "" {
				errIdx, carrier = i, typeName(rt)+"."+f
			}
		}
	}
	if errIdx < 0 {
		return
	}
	if blankIdx >= 0 && blankIdx != errIdx {
		return // some other result is blanked; the error is still bound
	}
	if directive.Allows(pass, file, call.Pos(), "errdrop") {
		return
	}
	if carrier != "" {
		pass.Reportf(call.Pos(), "result of %s discarded on a guarded path: the %s completion error is dropped with it — handle it or annotate //yancvet:allow errdrop <reason>", fn.FullName(), carrier)
		return
	}
	pass.Reportf(call.Pos(), "error from %s discarded on a guarded path (Tx/watch/dfs): handle it or annotate //yancvet:allow errdrop <reason>", fn.FullName())
}

func isGuarded(fn *types.Func) bool {
	if fn.Pkg() != nil && guardedPackages[fn.Pkg().Name()] {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return guardedReceivers[named.Obj().Name()]
}

// errorField returns the name of the first error-typed field of t when t
// (possibly behind a pointer) is a named struct, else "".
func errorField(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if isErrorType(st.Field(i).Type()) {
			return st.Field(i).Name()
		}
	}
	return ""
}

func typeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
