// Package atomicfield enforces all-or-nothing atomicity for fields: a
// struct field (or package var) that is ever accessed through
// sync/atomic — either `atomic.AddUint64(&s.f, 1)`-style calls or a
// typed atomic like atomic.Uint64 — must never also be touched with a
// plain read or write. Mixed access is a data race that -race only
// catches when the schedule cooperates; this analyzer catches it from
// the source alone.
//
// Two rules:
//
//  1. any field passed by address to a sync/atomic function is "atomic";
//     every other use of that field must also be an atomic call (taking
//     its address is allowed, dereferencing it plainly is not);
//  2. a field whose type is a sync/atomic typed value (atomic.Uint64,
//     atomic.Bool, ...) may only be used as a method-call receiver or
//     have its address taken — assigning or copying the whole value
//     bypasses the atomicity (and copies the internal state).
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"yanc/internal/analysis/internal/directive"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "flag plain reads/writes of fields that are elsewhere accessed via sync/atomic " +
		"(mixed atomic and non-atomic access is a data race)",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Phase 1: find every object whose address is passed to a sync/atomic
	// function anywhere in the package, and remember the exact selector
	// nodes used in those calls so phase 2 does not flag them.
	atomicObjs := map[*types.Var]token.Pos{} // object -> first atomic use
	sanctioned := map[ast.Expr]bool{}        // operand nodes inside atomic calls

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if obj := referentVar(pass, un.X); obj != nil {
					if _, seen := atomicObjs[obj]; !seen {
						atomicObjs[obj] = call.Pos()
					}
					sanctioned[un.X] = true
				}
			}
			return true
		})
	}

	// Phase 2: every other use of those objects, and every whole-value use
	// of a typed-atomic field, is a violation.
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			defer func() { stack = append(stack, n) }()
			expr, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			obj := referentVar(pass, expr)
			if obj == nil {
				return true
			}
			// Only the outermost reference expression counts: x in s.x.f
			// resolves too, but the parent selector is the real use.
			parent := parentOf(stack)
			if p, ok := parent.(*ast.SelectorExpr); ok && p.X == expr {
				if sel, isSel := pass.TypesInfo.Selections[p]; !isSel || sel.Kind() == types.FieldVal {
					return true // inner part of a longer field path
				}
				// p is a method call base (typed atomic receiver): allowed.
				return true
			}
			if isTypedAtomic(obj.Type()) {
				if sanctionedNode(parent, expr) {
					return true
				}
				report(pass, file, expr.Pos(), "whole-value use of atomic field %s: typed atomics must only be used via their methods (Load/Store/Add/...)", obj.Name())
				return true
			}
			first, tracked := atomicObjs[obj]
			if !tracked || sanctioned[expr] {
				return true
			}
			if sanctionedNode(parent, expr) {
				return true // address-taken: may feed another atomic call
			}
			report(pass, file, expr.Pos(),
				"plain access to %s, which is accessed atomically at %s: use sync/atomic for every access",
				obj.Name(), pass.Fset.Position(first))
			return true
		})
	}
	return nil, nil
}

// sanctionedNode reports whether expr appears in a context that keeps
// the atomicity contract: having its address taken.
func sanctionedNode(parent ast.Node, expr ast.Expr) bool {
	if un, ok := parent.(*ast.UnaryExpr); ok && un.Op == token.AND && un.X == expr {
		return true
	}
	return false
}

func parentOf(stack []ast.Node) ast.Node {
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

func report(pass *analysis.Pass, file *ast.File, pos token.Pos, format string, args ...interface{}) {
	if directive.Allows(pass, file, pos, "atomicfield") {
		return
	}
	pass.Reportf(pos, format, args...)
}

// isAtomicCall reports whether call invokes a function in sync/atomic.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := typeutil.StaticCallee(pass.TypesInfo, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// isTypedAtomic reports whether t is a named type from sync/atomic
// (atomic.Uint64, atomic.Bool, atomic.Pointer[T], ...).
func isTypedAtomic(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// referentVar resolves expr to the field or package-level variable it
// denotes, or nil. Locals are excluded: a local is confined to one
// goroutine unless captured, and tracking captures is out of scope.
func referentVar(pass *analysis.Pass, expr ast.Expr) *types.Var {
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
		}
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok {
			// Package-level vars only.
			if v.Parent() == pass.Pkg.Scope() {
				return v
			}
		}
	}
	return nil
}
