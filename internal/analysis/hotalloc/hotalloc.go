// Package hotalloc enforces the zero-allocation contract on the tree's
// hot paths at compile time. A function annotated with a
// //yancvet:hotalloc doc-comment directive — the E18 renderers, the
// libyanc ring drain loop, the lock-free resolver, the fan-out
// primitives, the driver's packet-in and mailbox drains — and every
// same-package function it transitively calls must be free of
// per-call heap allocation. The dynamic AllocsPerRun pins catch the
// configurations a benchmark happens to run; this analyzer catches the
// rest, and keeps catching them as the code moves.
//
// What is flagged (an SSA-style value-flow pass over each function):
//
//   - make/new and composite literals whose value ESCAPES — returned,
//     stored through a pointer/field/global, sent on a channel, or
//     captured by an escaping closure. A non-escaping, constant-sized
//     make or literal is stack-allocatable and allowed.
//   - make of maps and channels, and make with a non-constant size
//     (always heap).
//   - append to a slice that started as nil/empty in this function
//     (guaranteed growth on every call); append to caller-provided or
//     pooled storage is the amortized arena contract and is allowed.
//   - interface boxing: a non-pointer-shaped concrete value converted
//     to an interface (call argument, assignment, return, send,
//     composite-literal element).
//   - string concatenation and string<->[]byte/[]rune conversions.
//   - fmt calls, goroutine launches, and method-value bindings (each
//     allocates a closure).
//   - calls to in-module functions in OTHER packages that do not carry
//     the AllocFree fact (annotate the callee //yancvet:hotalloc so the
//     contract propagates), and calls to standard-library functions not
//     on the known-allocation-free allowlist.
//
// Deliberate allocations — an arena handed off to inode storage, a
// cold error path — must say so:
//
//	arena := make([]byte, 0, 160) //yancvet:alloc arena is adopted by the written inodes
//
// Dynamic calls (func values, interface methods) are not flagged: the
// contract sits with whoever binds the hook, checked in its own
// package.
package hotalloc

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"yanc/internal/analysis/internal/directive"
	"yanc/internal/analysis/internal/lockset"
)

// AllocFree marks a function annotated //yancvet:hotalloc: it is under
// the hot-path allocation discipline and may be called from hot code in
// downstream packages.
type AllocFree struct{}

func (*AllocFree) AFact()         {}
func (*AllocFree) String() string { return "allocFree" }

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "forbid heap allocation in //yancvet:hotalloc functions and their same-package callees " +
		"(annotate deliberate allocations with //yancvet:alloc <reason>)",
	FactTypes: []analysis.Fact{(*AllocFree)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Annotated roots: //yancvet:hotalloc in the function's doc comment.
	roots := map[*types.Func]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			if !hasHotallocDirective(fd.Doc) {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				roots[obj] = true
				pass.ExportObjectFact(obj, &AllocFree{})
			}
		}
	}
	if len(roots) == 0 {
		return nil, nil
	}

	// Hot set: annotated functions plus their transitive same-package
	// callees, each attributed to one annotated root for diagnostics.
	graph := lockset.BuildGraph(pass)
	rootOf := map[*types.Func]string{}
	var queue []*types.Func
	for fn := range roots {
		rootOf[fn] = fn.Name()
		queue = append(queue, fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node, ok := graph.Decls[fn]
		if !ok {
			continue
		}
		for _, callee := range graph.Calls[node] {
			if _, seen := rootOf[callee]; !seen {
				rootOf[callee] = rootOf[fn]
				queue = append(queue, callee)
			}
		}
	}

	c := &checker{pass: pass, reported: map[token.Pos]bool{}}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			root, hot := rootOf[obj]
			if !hot {
				continue
			}
			c.checkFunc(file, fd, root)
		}
	}
	return nil, nil
}

func hasHotallocDirective(doc *ast.CommentGroup) bool {
	for _, cm := range doc.List {
		if strings.HasPrefix(cm.Text, "//yancvet:hotalloc") {
			return true
		}
	}
	return false
}

// checker analyzes one hot function at a time.
type checker struct {
	pass     *analysis.Pass
	file     *ast.File
	root     string
	reported map[token.Pos]bool

	// Per-function value-flow state.
	escaped  map[ast.Node]bool // alloc sites whose value escapes
	varAlloc map[*types.Var][]ast.Node
	freshNil map[*types.Var]bool // locals that started nil/empty
	litLocal map[*ast.FuncLit]bool
}

func (c *checker) checkFunc(file *ast.File, fd *ast.FuncDecl, root string) {
	c.file, c.root = file, root
	c.escaped = map[ast.Node]bool{}
	c.varAlloc = map[*types.Var][]ast.Node{}
	c.freshNil = map[*types.Var]bool{}
	c.litLocal = map[*ast.FuncLit]bool{}
	c.classifyLits(fd.Body)
	c.flow(fd.Body)
	c.report(fd.Body)
}

// classifyLits decides which function literals stay local: immediately
// invoked, or bound to a local variable that is only ever called.
// Everything else — passed to a call, stored, returned, launched —
// escapes, and so does anything it captures.
func (c *checker) classifyLits(body ast.Node) {
	// Literals bound at `name := func(...){...}` with the variable used
	// only in call position are local helper closures (the `seal` idiom).
	localVars := map[*types.Var]*ast.FuncLit{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				c.litLocal[lit] = true
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				lit, ok := rhs.(*ast.FuncLit)
				if !ok {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok {
						localVars[v] = lit
					}
				}
			}
		}
		return true
	})
	// A bound literal stays local only if every use of its variable is a
	// direct call.
	for v, lit := range localVars {
		local := true
		ast.Inspect(body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || c.pass.TypesInfo.Uses[id] != v {
				return true
			}
			if !c.isCallFun(body, id) {
				local = false
			}
			return true
		})
		if local {
			c.litLocal[lit] = true
		}
	}
}

// isCallFun reports whether id appears as the Fun of some call.
func (c *checker) isCallFun(body ast.Node, id *ast.Ident) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && call.Fun == id {
			found = true
		}
		return true
	})
	return found
}

// flow runs the value-flow pass: it finds allocation expressions, traces
// them through local assignments, and marks the ones that escape.
func (c *checker) flow(body ast.Node) {
	// Seed: which expressions are allocations we track for escape.
	track := func(e ast.Expr) []ast.Node {
		switch e := e.(type) {
		case *ast.CallExpr:
			if name, ok := builtinName(c.pass, e); ok && (name == "make" || name == "new") {
				return []ast.Node{e}
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := e.X.(*ast.CompositeLit); ok {
					return []ast.Node{e}
				}
			}
		case *ast.CompositeLit:
			switch c.typeOf(e).Underlying().(type) {
			case *types.Slice, *types.Map:
				return []ast.Node{e}
			}
		case *ast.Ident:
			if v, ok := c.pass.TypesInfo.Uses[e].(*types.Var); ok {
				return c.varAlloc[v]
			}
		}
		return nil
	}
	escape := func(e ast.Expr) {
		for _, site := range track(e) {
			c.escaped[site] = true
		}
	}

	// Iterate to a fixpoint so chains (a := alloc; b := a; return b)
	// resolve regardless of statement order.
	for changed := true; changed; {
		changed = false
		bind := func(v *types.Var, sites []ast.Node) {
			have := c.varAlloc[v]
			for _, s := range sites {
				dup := false
				for _, h := range have {
					if h == s {
						dup = true
						break
					}
				}
				if !dup {
					have = append(have, s)
					changed = true
				}
			}
			c.varAlloc[v] = have
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					var rhs ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					} else if len(n.Rhs) == 1 {
						rhs = n.Rhs[0] // tuple assign: conservatively reuse
					}
					if rhs == nil {
						continue
					}
					sites := track(rhs)
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						obj := c.pass.TypesInfo.Defs[id]
						if obj == nil {
							obj = c.pass.TypesInfo.Uses[id]
						}
						if v, ok := obj.(*types.Var); ok && !isGlobal(v) {
							bind(v, sites)
							// `xs := []T{}` / later overwritten tracking for
							// fresh-nil appends.
							if n.Tok == token.DEFINE && isEmptySliceExpr(c.pass, rhs) {
								if !c.freshNil[v] {
									c.freshNil[v] = true
									changed = true
								}
							}
							continue
						}
					}
					// Store through a field, index, deref, or global.
					if len(sites) > 0 {
						for _, s := range sites {
							if !c.escaped[s] {
								c.escaped[s] = true
								changed = true
							}
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					v, ok := c.pass.TypesInfo.Defs[name].(*types.Var)
					if !ok || isGlobal(v) {
						continue
					}
					if i < len(n.Values) {
						bind(v, track(n.Values[i]))
						if isEmptySliceExpr(c.pass, n.Values[i]) && !c.freshNil[v] {
							c.freshNil[v] = true
							changed = true
						}
					} else if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
						// var xs []T — fresh nil slice.
						if !c.freshNil[v] {
							c.freshNil[v] = true
							changed = true
						}
					}
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					escape(res)
				}
			case *ast.SendStmt:
				escape(n.Value)
			case *ast.GoStmt:
				for _, arg := range n.Call.Args {
					escape(arg)
				}
			case *ast.CallExpr:
				// Arguments are borrowed, not escaped: external callees are
				// judged at the call (fact/allowlist), same-package callees
				// are themselves hot-checked. append's result flows like its
				// base; builtin append(base, ...) keeps base's sites.
				if name, ok := builtinName(c.pass, n); ok && name == "append" && len(n.Args) > 0 {
					// The result expression tracks the base slice's sites —
					// handled by track() when the result is assigned.
				}
			case *ast.FuncLit:
				if !c.litLocal[n] {
					// Escaping closure: everything it captures escapes.
					ast.Inspect(n.Body, func(inner ast.Node) bool {
						if id, ok := inner.(*ast.Ident); ok {
							if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
								for _, s := range c.varAlloc[v] {
									if !c.escaped[s] {
										c.escaped[s] = true
										changed = true
									}
								}
							}
						}
						return true
					})
				}
			}
			return true
		})
		// append result tracking: `x = append(y, ...)` binds y's sites to x.
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				if name, ok := builtinName(c.pass, call); !ok || name != "append" || len(call.Args) == 0 {
					continue
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := c.pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = c.pass.TypesInfo.Uses[id]
				}
				v, ok := obj.(*types.Var)
				if !ok {
					continue
				}
				sites := track(call.Args[0])
				have := c.varAlloc[v]
				for _, s := range sites {
					dup := false
					for _, h := range have {
						if h == s {
							dup = true
							break
						}
					}
					if !dup {
						have = append(have, s)
						changed = true
					}
				}
				c.varAlloc[v] = have
			}
			return true
		})
	}
}

// report walks the body and emits diagnostics for allocation sites.
func (c *checker) report(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok && c.escaped[n] {
					c.reportf(n.Pos(), "heap allocation on hot path (root %s): &composite literal escapes", c.root)
				}
			}
		case *ast.CompositeLit:
			if c.escaped[n] {
				switch c.typeOf(n).Underlying().(type) {
				case *types.Slice:
					c.reportf(n.Pos(), "heap allocation on hot path (root %s): slice literal escapes", c.root)
				case *types.Map:
					c.reportf(n.Pos(), "heap allocation on hot path (root %s): map literal escapes", c.root)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(c.typeOf(n)) && c.pass.TypesInfo.Types[n].Value == nil {
				c.reportf(n.Pos(), "string concatenation allocates on hot path (root %s): use an append renderer", c.root)
			}
		case *ast.GoStmt:
			c.reportf(n.Pos(), "goroutine launch allocates on hot path (root %s)", c.root)
		case *ast.FuncLit:
			// An escaping literal is a heap closure: one allocation per
			// evaluation, plus one per captured variable moved to the heap.
			if !c.litLocal[n] {
				c.reportf(n.Pos(), "closure allocates on hot path (root %s): it escapes, so it and its captures are heap-allocated", c.root)
			}
		case *ast.SelectorExpr:
			// Method value (not a call): binds a closure per evaluation.
			if sel, ok := c.pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.MethodVal {
				if !c.isCallee(body, n) {
					c.reportf(n.Pos(), "method value allocates a closure on hot path (root %s): hoist the bound func out of the hot loop", c.root)
				}
			}
		}
		// Boxing checks need typed contexts:
		c.checkBoxingAt(n)
		return true
	})
}

// isCallee reports whether sel is directly invoked (sel(...)).
func (c *checker) isCallee(body ast.Node, sel *ast.SelectorExpr) bool {
	invoked := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && call.Fun == sel {
			invoked = true
		}
		return true
	})
	return invoked
}

func (c *checker) checkCall(call *ast.CallExpr) {
	// Builtins.
	if name, ok := builtinName(c.pass, call); ok {
		switch name {
		case "make":
			c.checkMake(call)
		case "new":
			if c.escaped[call] {
				c.reportf(call.Pos(), "heap allocation on hot path (root %s): new(...) escapes", c.root)
			}
		case "append":
			c.checkAppend(call)
		}
		return
	}
	// Type conversion?
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type)
		return
	}
	callee := typeutil.StaticCallee(c.pass.TypesInfo, call)
	if callee == nil {
		return // dynamic call: contract sits with the hook provider
	}
	pkg := callee.Pkg()
	if pkg == nil || pkg == c.pass.Pkg {
		return // builtins handled above; same-package callees are hot-checked
	}
	if samePathRoot(pkg.Path(), c.pass.Pkg.Path()) {
		// In-module cross-package call: the callee must carry the
		// //yancvet:hotalloc contract.
		if !c.pass.ImportObjectFact(callee, &AllocFree{}) {
			c.reportf(call.Pos(), "call to %s on hot path (root %s): callee is not marked //yancvet:hotalloc, so its allocation behavior is unverified", callee.FullName(), c.root)
		}
		return
	}
	if pkg.Path() == "fmt" {
		c.reportf(call.Pos(), "fmt call allocates on hot path (root %s): use strconv/append renderers", c.root)
		return
	}
	if !allowedExternal(callee) {
		c.reportf(call.Pos(), "call to %s on hot path (root %s): not on the allocation-free allowlist", callee.FullName(), c.root)
	}
}

func (c *checker) checkMake(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	t := c.typeOf(call)
	switch t.Underlying().(type) {
	case *types.Map:
		c.reportf(call.Pos(), "heap allocation on hot path (root %s): make(map)", c.root)
	case *types.Chan:
		c.reportf(call.Pos(), "heap allocation on hot path (root %s): make(chan)", c.root)
	case *types.Slice:
		for _, arg := range call.Args[1:] {
			if c.pass.TypesInfo.Types[arg].Value == nil {
				c.reportf(call.Pos(), "heap allocation on hot path (root %s): make with non-constant size", c.root)
				return
			}
		}
		if c.escaped[call] {
			c.reportf(call.Pos(), "heap allocation on hot path (root %s): make(...) escapes", c.root)
		}
	}
}

// checkAppend flags appends that are guaranteed to grow: the base slice
// started as nil/empty in this function, so every call allocates. Append
// to caller-provided or pooled storage is the arena contract and is
// checked dynamically by the AllocsPerRun pins.
func (c *checker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return
	}
	v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return
	}
	if c.freshNil[v] && len(c.varAlloc[v]) == 0 {
		c.reportf(call.Pos(), "append to a fresh nil slice on hot path (root %s): grows (allocates) on every call — pre-size it or reuse a buffer", c.root)
	}
}

func (c *checker) checkConversion(call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	src := c.typeOf(call.Args[0])
	if c.pass.TypesInfo.Types[call.Args[0]].Value != nil {
		return // constant conversion, folded at compile time
	}
	tu, su := target.Underlying(), src.Underlying()
	if isStringType(tu) && isByteOrRuneSlice(su) {
		c.reportf(call.Pos(), "string(...) conversion copies on hot path (root %s)", c.root)
		return
	}
	if isByteOrRuneSlice(tu) && isStringType(su) {
		c.reportf(call.Pos(), "[]byte/[]rune(string) conversion copies on hot path (root %s)", c.root)
		return
	}
	if types.IsInterface(target) {
		c.checkBox(call.Args[0], target)
	}
}

// checkBoxingAt inspects typed contexts (call args, assignments, returns,
// sends, composite elements) for implicit interface conversions of
// non-pointer-shaped values.
func (c *checker) checkBoxingAt(n ast.Node) {
	switch n := n.(type) {
	case *ast.CallExpr:
		callee := typeutil.StaticCallee(c.pass.TypesInfo, n)
		var sig *types.Signature
		if callee != nil {
			sig = callee.Type().(*types.Signature)
		} else if tv, ok := c.pass.TypesInfo.Types[n.Fun]; ok && !tv.IsType() {
			sig, _ = tv.Type.Underlying().(*types.Signature)
		}
		if sig == nil {
			return
		}
		params := sig.Params()
		for i, arg := range n.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= params.Len()-1:
				if n.Ellipsis != token.NoPos {
					continue // s... passes the slice itself
				}
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			case i < params.Len():
				pt = params.At(i).Type()
			default:
				continue
			}
			if types.IsInterface(pt) {
				c.checkBox(arg, pt)
			}
		}
	case *ast.SendStmt:
		if ch, ok := c.typeOf(n.Chan).Underlying().(*types.Chan); ok && types.IsInterface(ch.Elem()) {
			c.checkBox(n.Value, ch.Elem())
		}
	case *ast.CompositeLit:
		t := c.typeOf(n)
		var elem types.Type
		switch tt := t.Underlying().(type) {
		case *types.Slice:
			elem = tt.Elem()
		case *types.Array:
			elem = tt.Elem()
		case *types.Map:
			elem = tt.Elem()
		}
		if elem == nil || !types.IsInterface(elem) {
			return
		}
		for _, el := range n.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			c.checkBox(el, elem)
		}
	}
}

func (c *checker) checkBox(e ast.Expr, target types.Type) {
	src := c.typeOf(e)
	if src == nil || types.IsInterface(src) {
		return // interface-to-interface carries the word pair, no alloc
	}
	if c.pass.TypesInfo.Types[e].IsNil() {
		return
	}
	if isPointerShaped(src) {
		return // the data word holds the pointer directly
	}
	if c.pass.TypesInfo.Types[e].Value != nil && isSmallIntConstant(c.pass, e) {
		return // runtime staticuint64s table: no allocation for small ints
	}
	c.reportf(e.Pos(), "interface boxing allocates on hot path (root %s): %s converted to %s", c.root, src, target)
}

func (c *checker) reportf(pos token.Pos, format string, args ...interface{}) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	if f := directive.FileFor(c.pass, pos); f != nil && directive.Allows(c.pass, f, pos, "hotalloc") {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return types.Typ[types.Invalid]
	}
	return t
}

// ---- helpers ----

func builtinName(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return "", false
	}
	if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
		return id.Name, true
	}
	return "", false
}

func isGlobal(v *types.Var) bool {
	return v.Parent() == v.Pkg().Scope()
}

func isEmptySliceExpr(pass *analysis.Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		if _, ok := pass.TypesInfo.TypeOf(e).Underlying().(*types.Slice); ok {
			return len(e.Elts) == 0
		}
	case *ast.Ident:
		return e.Name == "nil"
	}
	return false
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isPointerShaped reports whether values of t fit an interface data word
// without allocation.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Slice:
		// Slices are 3 words and DO box; exclude them.
		_, isSlice := t.Underlying().(*types.Slice)
		return !isSlice
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return true
	}
	return false
}

func isSmallIntConstant(pass *analysis.Pass, e ast.Expr) bool {
	tv := pass.TypesInfo.Types[e]
	if tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	v, ok := constant.Int64Val(tv.Value)
	return ok && v >= 0 && v < 256
}

func recvNamed(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func samePathRoot(a, b string) bool {
	return firstElem(a) == firstElem(b)
}

func firstElem(p string) string {
	if i := strings.IndexByte(p, '/'); i >= 0 {
		return p[:i]
	}
	return p
}

// allowedExternal is the allocation-free allowlist for calls outside the
// module. Everything not listed is flagged: the discipline is deny-by-
// default, with //yancvet:alloc as the per-line release valve.
func allowedExternal(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return true // error.Error etc. — interface methods resolved oddly
	}
	switch pkg.Path() {
	case "sync", "sync/atomic", "math", "math/bits", "unsafe", "encoding/binary", "runtime":
		return true
	case "time":
		// Time/Duration arithmetic is allocation-free; constructors that
		// build timers/tickers are not.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true
		}
		return fn.Name() == "Now" || fn.Name() == "Since"
	case "strconv":
		if strings.HasPrefix(fn.Name(), "Append") {
			return true
		}
		switch fn.Name() {
		case "ParseUint", "ParseInt", "ParseFloat", "Atoi":
			return true // allocation only on the error path
		}
		return false
	case "strings":
		// Builder writes are amortized-free once Grow has sized the buffer,
		// and Builder.String is a zero-copy conversion; Grow itself is the
		// one deliberate allocation and stays flagged.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if recvNamed(sig.Recv().Type()) == "Builder" && fn.Name() != "Grow" {
				return true
			}
			return false
		}
		switch fn.Name() {
		case "HasPrefix", "HasSuffix", "Contains", "ContainsRune", "Index", "IndexByte",
			"IndexRune", "LastIndex", "LastIndexByte", "Compare", "EqualFold", "Cut",
			"TrimPrefix", "TrimSuffix", "TrimSpace", "Count":
			return true
		}
		return false
	case "bytes":
		switch fn.Name() {
		case "Equal", "Compare", "Contains", "HasPrefix", "HasSuffix", "Index",
			"IndexByte", "LastIndex", "LastIndexByte", "Cut", "TrimSpace", "Count":
			return true
		}
		return false
	case "errors":
		return fn.Name() == "Is" || fn.Name() == "As" || fn.Name() == "Unwrap"
	case "sort":
		return fn.Name() == "Search" || fn.Name() == "SearchStrings"
	}
	return false
}
