package apps

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"yanc/internal/driver"
	"yanc/internal/ethernet"
	"yanc/internal/libyanc"
	"yanc/internal/openflow"
	"yanc/internal/switchsim"
	"yanc/internal/yancfs"
)

// rig wires a simulated linear network to a driver over net.Pipe and
// registers the hosts in the hosts/ directory.
type rig struct {
	y     *yancfs.FS
	d     *driver.Driver
	net   *switchsim.Network
	hosts []*switchsim.Host
}

func newLinearRig(t *testing.T, k int) *rig {
	t.Helper()
	y, err := yancfs.New()
	if err != nil {
		t.Fatal(err)
	}
	n, hosts := switchsim.BuildLinear(k, openflow.Version10)
	r := &rig{y: y, d: driver.New(y), net: n, hosts: hosts}
	t.Cleanup(r.d.Close)
	for _, sw := range n.Switches() {
		a, b := net.Pipe()
		sw := sw
		go func() { _ = sw.ServeController(b) }()
		if _, err := r.d.Attach(a); err != nil {
			t.Fatal(err)
		}
	}
	p := y.Root()
	for i, h := range hosts {
		dpid, port := h.Attachment()
		if err := yancfs.AddHost(p, "/", h.Name, h.MAC.String(), h.IP.String(),
			fmt.Sprintf("sw%d", dpid), port); err != nil {
			t.Fatal(err)
		}
		_ = i
	}
	return r
}

func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestTopologyPathBFS(t *testing.T) {
	topo := &Topology{
		Links: map[PortRef]PortRef{
			{"a", 1}: {"b", 1}, {"b", 1}: {"a", 1},
			{"b", 2}: {"c", 1}, {"c", 1}: {"b", 2},
			{"a", 2}: {"d", 1}, {"d", 1}: {"a", 2},
			{"d", 2}: {"c", 2}, {"c", 2}: {"d", 2},
		},
		Ports: map[string][]uint32{"a": {1, 2}, "b": {1, 2}, "c": {1, 2}, "d": {1, 2}},
	}
	hops, ok := topo.Path("a", "c")
	if !ok || len(hops) != 2 {
		t.Fatalf("path = %v %v", hops, ok)
	}
	// Two equal-length routes exist; BFS with sorted ports picks via b
	// (a's port 1 sorts before port 2).
	if hops[0].sw != "a" || hops[0].outPort != 1 || hops[1].sw != "b" || hops[1].outPort != 2 {
		t.Errorf("hops = %+v", hops)
	}
	if _, ok := topo.Path("a", "zzz"); ok {
		t.Error("unreachable must fail")
	}
	if hops, ok := topo.Path("a", "a"); !ok || len(hops) != 0 {
		t.Error("self path must be empty")
	}
	if got := topo.Switches(); strings.Join(got, "") != "abcd" {
		t.Errorf("switches = %v", got)
	}
}

func TestTopodDiscoversLinearTopology(t *testing.T) {
	r := newLinearRig(t, 3)
	td := NewTopod(r.y.Root(), "/")
	if err := td.DiscoverOnce(); err != nil {
		t.Fatal(err)
	}
	topo, err := LoadTopology(r.y.Root(), "/")
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth from the fabric: sw_i port3 <-> sw_{i+1} port2.
	want := map[PortRef]PortRef{
		{"sw1", 3}: {"sw2", 2}, {"sw2", 2}: {"sw1", 3},
		{"sw2", 3}: {"sw3", 2}, {"sw3", 2}: {"sw2", 3},
	}
	if len(topo.Links) != len(want) {
		t.Fatalf("links = %v", topo.Links)
	}
	for a, b := range want {
		if topo.Links[a] != b {
			t.Errorf("link %v = %v, want %v", a, topo.Links[a], b)
		}
	}
	// The symlinks themselves are the representation (§3.3).
	tgt, err := r.y.Root().Readlink("/switches/sw1/ports/3/peer")
	if err != nil || !strings.HasSuffix(tgt, "/switches/sw2/ports/2") {
		t.Errorf("peer symlink = %q %v", tgt, err)
	}
	td.Stop()
}

func TestRouterReactivePathSetup(t *testing.T) {
	r := newLinearRig(t, 3)
	td := NewTopod(r.y.Root(), "/")
	if err := td.DiscoverOnce(); err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(r.y.Root(), "/")
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	h1, h3 := r.hosts[0], r.hosts[2]
	h3.ClearReceived() // discard topod's LLDP probes
	h1.Ping(h3, 1)
	// The router sets up the path and the packet arrives (possibly after
	// a second miss downstream while flow-mods are in flight — the same
	// eventual convergence real reactive controllers exhibit).
	if !h3.WaitFor(func([][]byte) bool { return h3.ReceivedPing(1) }, 2*time.Second) {
		t.Fatal("first packet never arrived")
	}
	installs, _ := rt.Stats()
	if installs < 1 {
		t.Errorf("installs = %d", installs)
	}
	// Path flows exist on every switch along the way (plus topod's LLDP
	// flow).
	eventually(t, "path flows", func() bool {
		for dpid := uint64(1); dpid <= 3; dpid++ {
			if r.net.Switch(dpid).FlowCount() < 2 {
				return false
			}
		}
		return true
	})
	// Second packet of the same flow is hardware-forwarded: no new
	// packet-in, no new install.
	installsBefore, _ := rt.Stats()
	h1.Ping(h3, 2)
	if !h3.WaitFor(func([][]byte) bool { return h3.ReceivedPing(2) }, 2*time.Second) {
		t.Fatal("second packet never arrived")
	}
	installs2, _ := rt.Stats()
	if installs2 != installsBefore {
		t.Errorf("second packet caused %d new installs", installs2-installsBefore)
	}
}

func TestRouterFastpathEquivalence(t *testing.T) {
	// The libyanc-backed router must produce the same outcome as the
	// file-I/O router: same delivery, same flow directories.
	r := newLinearRig(t, 3)
	td := NewTopod(r.y.Root(), "/")
	if err := td.DiscoverOnce(); err != nil {
		t.Fatal(err)
	}
	td.Stop()
	rt := NewRouter(r.y.Root(), "/")
	rt.Fast = libyanc.New(r.y)
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	h1, h3 := r.hosts[0], r.hosts[2]
	h3.ClearReceived()
	h1.Ping(h3, 1)
	if !h3.WaitFor(func([][]byte) bool { return h3.ReceivedPing(1) }, 2*time.Second) {
		t.Fatal("fast router did not deliver")
	}
	// The path flows are ordinary committed flow directories.
	p := r.y.Root()
	found := 0
	for _, sw := range []string{"sw1", "sw2", "sw3"} {
		names, _ := yancfs.ListFlows(p, "/switches/"+sw)
		for _, n := range names {
			if strings.HasPrefix(n, "router-") {
				v, err := yancfs.FlowVersion(p, "/switches/"+sw+"/flows/"+n)
				if err != nil || v == 0 {
					t.Errorf("%s/%s not committed: %d %v", sw, n, v, err)
				}
				found++
			}
		}
	}
	if found < 3 {
		t.Errorf("path flows = %d", found)
	}
}

func TestRouterFloodsUnknownDestination(t *testing.T) {
	r := newLinearRig(t, 2)
	// Remove hosts/ records so the destination is truly unknown.
	if err := r.y.Root().RemoveAll("/hosts/h2"); err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(r.y.Root(), "/")
	if err := rt.EnsureSubscribed(); err != nil {
		t.Fatal(err)
	}
	h1 := r.hosts[0]
	ghost := ethernet.MACFromUint64(0xdeadbeef)
	h1.Send(ethernet.Frame{Dst: ghost, Src: h1.MAC, Type: 0x1234, Payload: []byte("x")}.Serialize())
	// The flood from sw1 re-misses at sw2 and floods again, eventually
	// reaching h2; keep draining until it does.
	eventually(t, "flood reaches h2", func() bool {
		rt.Drain()
		return r.hosts[1].RxCount() > 0
	})
	if _, floods := rt.Stats(); floods == 0 {
		t.Error("no floods recorded")
	}
}

func TestARPdAnswersFromHostsDir(t *testing.T) {
	r := newLinearRig(t, 2)
	ad := NewARPd(r.y.Root(), "/")
	if err := ad.Start(); err != nil {
		t.Fatal(err)
	}
	defer ad.Stop()
	h1, h2 := r.hosts[0], r.hosts[1]
	h1.SendARPRequest(h2.IP)
	if !h1.WaitFor(func(frames [][]byte) bool {
		for _, raw := range frames {
			f, err := ethernet.DecodeFrame(raw)
			if err != nil || f.Type != ethernet.TypeARP {
				continue
			}
			rep, err := ethernet.DecodeARP(f.Payload)
			if err == nil && rep.Op == ethernet.ARPReply && rep.SenderHW == h2.MAC && rep.SenderIP == h2.IP {
				return true
			}
		}
		return false
	}, 2*time.Second) {
		t.Fatal("no ARP reply")
	}
	// The reply reaches the host before the daemon's counter increments;
	// poll rather than assert immediately.
	eventually(t, "reply counter", func() bool { return ad.Replies() == 1 })
}

func TestFlowPusherConfig(t *testing.T) {
	r := newLinearRig(t, 2)
	fp := NewFlowPusher(r.y.Root(), "/")
	config := `
# static flows
switch=sw1 flow=arp match=dl_type=0x0806 actions=out=flood priority=10
switch=sw2 flow=ssh match="dl_type=0x0800,nw_proto=6,tp_dst=22" actions=out=1 priority=20 idle=30 cookie=7
`
	n, err := fp.Push(config)
	if err != nil || n != 2 {
		t.Fatalf("push = %d %v", n, err)
	}
	eventually(t, "pushed flows on hardware", func() bool {
		return r.net.Switch(1).FlowCount() == 1 && r.net.Switch(2).FlowCount() == 1
	})
	spec, err := yancfs.ReadFlow(r.y.Root(), "/switches/sw2/flows/ssh")
	if err != nil || spec.Priority != 20 || spec.IdleTimeout != 30 || spec.Cookie != 7 {
		t.Errorf("spec = %+v %v", spec, err)
	}
	// Parse errors carry line numbers.
	if _, err := fp.Push("switch=sw1 flow=x match=bogus=1 actions=out=1"); err == nil {
		t.Error("bad match must fail")
	}
	if _, err := fp.Push("flow=x actions=out=1"); err == nil || !strings.Contains(err.Error(), "switch=") {
		t.Errorf("missing switch err = %v", err)
	}
	if _, err := fp.Push("switch=sw1 flow=x"); err == nil {
		t.Error("missing actions must fail")
	}
}

func TestSlicerFlowTranslation(t *testing.T) {
	r := newLinearRig(t, 2)
	filter, _ := openflow.ParseMatch("dl_type=0x0800,nw_proto=6,tp_dst=80")
	sl := NewSlicer(r.y, "/", "http", filter, []string{"sw1", "sw2"})
	if err := sl.Create(); err != nil {
		t.Fatal(err)
	}
	if err := sl.Start(); err != nil {
		t.Fatal(err)
	}
	defer sl.Stop()
	p := r.y.Root()
	// The view mirrors the member switches and their ports.
	if !p.IsDir("/views/http/switches/sw1/ports/2") {
		t.Fatal("view port mirror missing")
	}
	// A flow inside the slice's header space translates to the master,
	// intersected with the filter.
	viewMatch, _ := openflow.ParseMatch("in_port=1,nw_src=10.0.0.0/24")
	if _, err := yancfs.WriteFlow(p, "/views/http/switches/sw1/flows/lb", yancfs.FlowSpec{
		Match: viewMatch, Priority: 5, Actions: []openflow.Action{openflow.Output(3)},
	}); err != nil {
		t.Fatal(err)
	}
	masterFlow := "/switches/sw1/flows/slice-http-lb"
	eventually(t, "translated flow", func() bool {
		v, err := yancfs.FlowVersion(p, masterFlow)
		return err == nil && v >= 1
	})
	spec, err := yancfs.ReadFlow(p, masterFlow)
	if err != nil {
		t.Fatal(err)
	}
	// The intersection carries both the view's and the filter's fields.
	if !spec.Match.Has(openflow.FieldTPDst) || spec.Match.TPDst != 80 ||
		!spec.Match.Has(openflow.FieldInPort) || spec.Match.InPort != 1 ||
		!spec.Match.Has(openflow.FieldNWSrc) {
		t.Errorf("intersected match = %v", spec.Match)
	}
	// And it reaches hardware.
	eventually(t, "hardware", func() bool { return r.net.Switch(1).FlowCount() == 1 })
	// A flow outside the slice is rejected with an error file.
	sshMatch, _ := openflow.ParseMatch("dl_type=0x0800,nw_proto=6,tp_dst=22")
	if _, err := yancfs.WriteFlow(p, "/views/http/switches/sw1/flows/ssh", yancfs.FlowSpec{
		Match: sshMatch, Priority: 5, Actions: []openflow.Action{openflow.Output(3)},
	}); err != nil {
		t.Fatal(err)
	}
	eventually(t, "rejection error file", func() bool {
		return p.Exists("/views/http/switches/sw1/flows/ssh/error")
	})
	if p.Exists("/switches/sw1/flows/slice-http-ssh") {
		t.Error("disjoint flow escaped the slice")
	}
	// Deleting the view flow removes the master twin.
	if err := p.Remove("/views/http/switches/sw1/flows/lb"); err != nil {
		t.Fatal(err)
	}
	eventually(t, "translated delete", func() bool { return !p.Exists(masterFlow) })
}

func TestSlicerEventTranslation(t *testing.T) {
	r := newLinearRig(t, 2)
	filter, _ := openflow.ParseMatch("dl_type=0x0800,nw_proto=6,tp_dst=80")
	sl := NewSlicer(r.y, "/", "http", filter, []string{"sw1"})
	if err := sl.Create(); err != nil {
		t.Fatal(err)
	}
	if err := sl.Start(); err != nil {
		t.Fatal(err)
	}
	defer sl.Stop()
	p := r.y.Root()
	buf, w, err := yancfs.Subscribe(p, "/views/http", "lb-app")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// HTTP traffic from h1 misses and should surface inside the view.
	r.hosts[0].SendTCP(r.hosts[1], 1234, 80, []byte("GET /"))
	eventually(t, "view event", func() bool {
		msgs, _ := yancfs.PendingEvents(p, buf)
		return len(msgs) == 1
	})
	// SSH traffic must not.
	r.hosts[0].SendTCP(r.hosts[1], 1234, 22, []byte("ssh"))
	time.Sleep(50 * time.Millisecond)
	msgs, _ := yancfs.PendingEvents(p, buf)
	if len(msgs) != 1 {
		t.Errorf("ssh leaked into the http slice: %d msgs", len(msgs))
	}
}

func TestBigSwitchCompilation(t *testing.T) {
	r := newLinearRig(t, 3)
	td := NewTopod(r.y.Root(), "/")
	if err := td.DiscoverOnce(); err != nil {
		t.Fatal(err)
	}
	td.Stop()
	// Virtual ports: v1 = sw1 port1 (h1), v2 = sw3 port1 (h3).
	bs := NewBigSwitch(r.y, "/", "corp", map[uint32]PortRef{
		1: {Switch: "sw1", Port: 1},
		2: {Switch: "sw3", Port: 1},
	})
	if err := bs.Create(); err != nil {
		t.Fatal(err)
	}
	if err := bs.Start(); err != nil {
		t.Fatal(err)
	}
	defer bs.Stop()
	p := r.y.Root()
	if !p.IsDir("/views/corp/switches/big0/ports/1") {
		t.Fatal("virtual port missing")
	}
	if v, err := p.GetXattrString("/views/corp/switches/big0/ports/1", "user.yanc.vport.maps-to"); err != nil || v != "sw1/1" {
		t.Errorf("vport xattr = %q %v", v, err)
	}
	// One virtual flow: everything from v1 to v2.
	vm, _ := openflow.ParseMatch("in_port=1")
	if _, err := yancfs.WriteFlow(p, "/views/corp/switches/big0/flows/fwd", yancfs.FlowSpec{
		Match: vm, Priority: 50, Actions: []openflow.Action{openflow.Output(2)},
	}); err != nil {
		t.Fatal(err)
	}
	// Compiles into one flow per physical switch on the path.
	eventually(t, "compiled flows", func() bool {
		total := 0
		for _, sw := range []string{"sw1", "sw2", "sw3"} {
			names, _ := yancfs.ListFlows(p, "/switches/"+sw)
			for _, n := range names {
				if strings.HasPrefix(n, "vnet-corp-fwd-") {
					total++
				}
			}
		}
		return total == 3
	})
	// The dataplane actually forwards h1 -> h3 end to end.
	eventually(t, "hardware flows", func() bool {
		// 1 topod LLDP flow + 1 compiled flow per switch.
		for dpid := uint64(1); dpid <= 3; dpid++ {
			if r.net.Switch(dpid).FlowCount() < 2 {
				return false
			}
		}
		return true
	})
	r.hosts[0].Ping(r.hosts[2], 1)
	if !r.hosts[2].WaitFor(func(f [][]byte) bool { return len(f) > 0 }, 2*time.Second) {
		t.Fatal("big-switch path does not forward")
	}
	// Removing the virtual flow removes every compiled flow.
	if err := p.Remove("/views/corp/switches/big0/flows/fwd"); err != nil {
		t.Fatal(err)
	}
	eventually(t, "compiled flows removed", func() bool {
		for _, sw := range []string{"sw1", "sw2", "sw3"} {
			names, _ := yancfs.ListFlows(p, "/switches/"+sw)
			for _, n := range names {
				if strings.HasPrefix(n, "vnet-corp-") {
					return false
				}
			}
		}
		return true
	})
}

func TestBigSwitchRejectsUnmappedPorts(t *testing.T) {
	r := newLinearRig(t, 2)
	bs := NewBigSwitch(r.y, "/", "v", map[uint32]PortRef{1: {Switch: "sw1", Port: 1}})
	if err := bs.Create(); err != nil {
		t.Fatal(err)
	}
	if err := bs.Start(); err != nil {
		t.Fatal(err)
	}
	defer bs.Stop()
	p := r.y.Root()
	vm, _ := openflow.ParseMatch("in_port=1")
	if _, err := yancfs.WriteFlow(p, "/views/v/switches/big0/flows/bad", yancfs.FlowSpec{
		Match: vm, Priority: 1, Actions: []openflow.Action{openflow.Output(99)},
	}); err != nil {
		t.Fatal(err)
	}
	eventually(t, "error file", func() bool {
		return p.Exists("/views/v/switches/big0/flows/bad/error")
	})
	// No in_port is also rejected.
	if _, err := yancfs.WriteFlow(p, "/views/v/switches/big0/flows/noport", yancfs.FlowSpec{
		Priority: 1, Actions: []openflow.Action{openflow.Output(1)},
	}); err != nil {
		t.Fatal(err)
	}
	eventually(t, "no-in_port error", func() bool {
		return p.Exists("/views/v/switches/big0/flows/noport/error")
	})
}

func TestBigSwitchEventTranslation(t *testing.T) {
	r := newLinearRig(t, 2)
	bs := NewBigSwitch(r.y, "/", "v", map[uint32]PortRef{
		7: {Switch: "sw1", Port: 1},
	})
	if err := bs.Create(); err != nil {
		t.Fatal(err)
	}
	if err := bs.Start(); err != nil {
		t.Fatal(err)
	}
	defer bs.Stop()
	p := r.y.Root()
	buf, w, err := yancfs.Subscribe(p, "/views/v", "tenant")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Miss on the mapped port: appears in the view on virtual port 7.
	r.hosts[0].Ping(r.hosts[1], 1)
	eventually(t, "translated event", func() bool {
		msgs, _ := yancfs.PendingEvents(p, buf)
		if len(msgs) != 1 {
			return false
		}
		ev, err := yancfs.ReadPacketIn(p, msgs[0])
		return err == nil && ev.Switch == "big0" && ev.InPort == 7
	})
	// Miss on an unmapped port (h2 at sw2 port 1) stays out of the view.
	r.hosts[1].Ping(r.hosts[0], 2)
	time.Sleep(50 * time.Millisecond)
	if msgs, _ := yancfs.PendingEvents(p, buf); len(msgs) != 1 {
		t.Errorf("unmapped event leaked: %d", len(msgs))
	}
}

func TestAuditorFindings(t *testing.T) {
	r := newLinearRig(t, 1)
	p := r.y.Root()
	// A healthy flow.
	ok, _ := openflow.ParseMatch("dl_type=0x0806")
	if _, err := yancfs.WriteFlow(p, "/switches/sw1/flows/good", yancfs.FlowSpec{
		Match: ok, Priority: 10, Actions: []openflow.Action{openflow.Output(1)},
	}); err != nil {
		t.Fatal(err)
	}
	// A drop flow (no actions).
	if _, err := yancfs.WriteFlow(p, "/switches/sw1/flows/blackhole", yancfs.FlowSpec{
		Match: ok, Priority: 1,
	}); err != nil {
		t.Fatal(err)
	}
	// A staged-never-committed flow.
	if err := p.Mkdir("/switches/sw1/flows/staged", 0o755); err != nil {
		t.Fatal(err)
	}
	// A banned-port flow.
	telnet, _ := openflow.ParseMatch("dl_type=0x0800,nw_proto=6,tp_dst=23")
	if _, err := yancfs.WriteFlow(p, "/switches/sw1/flows/telnet", yancfs.FlowSpec{
		Match: telnet, Priority: 10, Actions: []openflow.Action{openflow.Output(1)},
	}); err != nil {
		t.Fatal(err)
	}
	// A shadowed flow: wildcard at high priority covers it.
	var all openflow.Match
	if _, err := yancfs.WriteFlow(p, "/switches/sw1/flows/catchall", yancfs.FlowSpec{
		Match: all, Priority: 1000, Actions: []openflow.Action{openflow.Output(1)},
	}); err != nil {
		t.Fatal(err)
	}
	a := NewAuditor(p, "/")
	a.BannedTPPorts = []uint16{23}
	findings, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.String())
	}
	joined := strings.Join(got, "\n")
	for _, want := range []string{
		"blackhole: no actions",
		"staged: staged but never committed",
		"telnet: permits banned destination port 23",
		"shadowed by catchall",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing finding %q in:\n%s", want, joined)
		}
	}
	// The report file is readable with cat.
	report, err := p.ReadString("/audit-report")
	if err != nil || !strings.Contains(report, "finding(s)") {
		t.Errorf("report = %q %v", report, err)
	}
}

func TestHostLocations(t *testing.T) {
	r := newLinearRig(t, 2)
	locs, arps, err := HostLocations(r.y.Root(), "/")
	if err != nil {
		t.Fatal(err)
	}
	h1 := r.hosts[0]
	if loc, ok := locs[h1.MAC]; !ok || loc.Switch != "sw1" || loc.Port != 1 {
		t.Errorf("h1 loc = %+v %v", locs[h1.MAC], ok)
	}
	if mac, ok := arps[h1.IP]; !ok || mac != h1.MAC {
		t.Errorf("h1 arp = %v %v", mac, ok)
	}
}

func TestIntersectViaSlicerSemantics(t *testing.T) {
	// Intersect unit behaviour used by the slicer.
	a, _ := openflow.ParseMatch("nw_src=10.0.0.0/8")
	b, _ := openflow.ParseMatch("nw_src=10.1.0.0/16,tp_dst=80,dl_type=0x0800,nw_proto=6")
	got, err := openflow.Intersect(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.NWSrc.Bits != 16 || got.TPDst != 80 {
		t.Errorf("intersect = %v", got)
	}
	c, _ := openflow.ParseMatch("nw_src=192.168.0.0/16")
	if _, err := openflow.Intersect(a, c); err == nil {
		t.Error("disjoint prefixes must fail")
	}
	d1, _ := openflow.ParseMatch("tp_dst=22")
	d2, _ := openflow.ParseMatch("tp_dst=80")
	if _, err := openflow.Intersect(d1, d2); err == nil {
		t.Error("conflicting exact fields must fail")
	}
	var wild openflow.Match
	same, err := openflow.Intersect(wild, b)
	if err != nil || !same.Equal(b) {
		t.Errorf("wildcard intersect = %v %v", same, err)
	}
}

func TestSlicerUnknownSwitchFails(t *testing.T) {
	y, err := yancfs.New()
	if err != nil {
		t.Fatal(err)
	}
	sl := NewSlicer(y, "/", "v", openflow.Match{}, []string{"ghost"})
	if err := sl.Create(); err == nil || !errors.Is(err, err) || !strings.Contains(err.Error(), "no switch") {
		t.Errorf("create = %v", err)
	}
}

func TestStackedViews(t *testing.T) {
	// "Views can be stacked arbitrarily" (§4.2): a big switch built over
	// a slice region.
	r := newLinearRig(t, 2)
	td := NewTopod(r.y.Root(), "/")
	if err := td.DiscoverOnce(); err != nil {
		t.Fatal(err)
	}
	td.Stop()
	filter, _ := openflow.ParseMatch("dl_type=0x0800")
	sl := NewSlicer(r.y, "/", "ip-only", filter, []string{"sw1", "sw2"})
	if err := sl.Create(); err != nil {
		t.Fatal(err)
	}
	if err := sl.Start(); err != nil {
		t.Fatal(err)
	}
	defer sl.Stop()
	// The inner view lives inside the slice's region.
	bs := NewBigSwitch(r.y, "/views/ip-only", "flat", map[uint32]PortRef{
		1: {Switch: "sw1", Port: 1},
		2: {Switch: "sw2", Port: 1},
	})
	if err := bs.Create(); err != nil {
		t.Fatal(err)
	}
	if err := bs.Start(); err != nil {
		t.Fatal(err)
	}
	defer bs.Stop()
	p := r.y.Root()
	if !p.IsDir("/views/ip-only/views/flat/switches/big0") {
		t.Fatal("stacked view structure missing")
	}
	vm, _ := openflow.ParseMatch("in_port=1")
	if _, err := yancfs.WriteFlow(p, "/views/ip-only/views/flat/switches/big0/flows/f", yancfs.FlowSpec{
		Match: vm, Priority: 7, Actions: []openflow.Action{openflow.Output(2)},
	}); err != nil {
		t.Fatal(err)
	}
	// Compiled into the slice region by the big switch, then translated
	// into the master by the slicer — two stacked translations. Wait for
	// the committed version, not just the directory.
	eventually(t, "stacked translation", func() bool {
		names, _ := yancfs.ListFlows(p, "/switches/sw1")
		for _, n := range names {
			if strings.HasPrefix(n, "slice-ip-only-vnet-flat-f") {
				v, err := yancfs.FlowVersion(p, "/switches/sw1/flows/"+n)
				return err == nil && v >= 1
			}
		}
		return false
	})
	// The final master flow carries the slice's filter.
	names, _ := yancfs.ListFlows(p, "/switches/sw1")
	for _, n := range names {
		if strings.HasPrefix(n, "slice-ip-only-vnet-flat-f") {
			spec, err := yancfs.ReadFlow(p, "/switches/sw1/flows/"+n)
			if err != nil || !spec.Match.Has(openflow.FieldDLType) || spec.Match.DLType != 0x0800 {
				t.Errorf("stacked flow match = %+v %v", spec.Match, err)
			}
		}
	}
}
