package apps

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"yanc/internal/openflow"
	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

// BigSwitch implements the virtualization half of network views (§4.2):
// "combining multiple switches and forming a new topology" — here the
// classic single-big-switch abstraction. The view contains one virtual
// switch whose ports map onto physical (switch, port) pairs anywhere in
// the network. A flow written to the virtual switch with in_port=vX and
// out=vY compiles into a chain of flows along the shortest physical path
// between the mapped ports; packet-ins at mapped ports are translated
// into the view with virtual port numbers.
//
// Views stack: the region the big switch virtualizes over can itself be a
// view (e.g. a slice), "to facilitate any logical topology and federated
// control required of the network".
type BigSwitch struct {
	Y      *yancfs.FS
	Region string // underlying region (master or another view)
	Name   string // view name
	// VSwitchName is the virtual switch's name inside the view.
	VSwitchName string
	// PortMap maps virtual port numbers to physical ports.
	PortMap map[uint32]PortRef

	mu      sync.Mutex
	p       *vfs.Proc
	watch   *vfs.Watch
	evWatch *vfs.Watch
	stop    chan struct{}
	stopped chan struct{}
	// compiled maps a view flow path to its compilation state.
	compiled map[string]compiledFlow
}

type compiledFlow struct {
	version uint64
	paths   []string
}

// NewBigSwitch configures a single-big-switch view.
func NewBigSwitch(y *yancfs.FS, region, name string, portMap map[uint32]PortRef) *BigSwitch {
	return &BigSwitch{
		Y:           y,
		Region:      region,
		Name:        name,
		VSwitchName: "big0",
		PortMap:     portMap,
		p:           y.Root(),
		compiled:    make(map[string]compiledFlow),
	}
}

// ViewPath returns the view's region path.
func (b *BigSwitch) ViewPath() string {
	return vfs.Join(b.Region, yancfs.DirViews, b.Name)
}

// vswitchPath returns the virtual switch's path.
func (b *BigSwitch) vswitchPath() string {
	return vfs.Join(b.ViewPath(), yancfs.DirSwitches, b.VSwitchName)
}

// Create materializes the view and the virtual switch with its ports.
func (b *BigSwitch) Create() error {
	p := b.p
	view := b.ViewPath()
	if !p.Exists(view) {
		if err := p.Mkdir(view, 0o755); err != nil {
			return err
		}
	}
	vsw := b.vswitchPath()
	if !p.Exists(vsw) {
		if err := p.Mkdir(vsw, 0o755); err != nil {
			return err
		}
	}
	var vports []uint32
	for vp := range b.PortMap {
		vports = append(vports, vp)
	}
	sort.Slice(vports, func(i, j int) bool { return vports[i] < vports[j] })
	for _, vp := range vports {
		phys := b.PortMap[vp]
		portPath := vfs.Join(vsw, "ports", strconv.FormatUint(uint64(vp), 10))
		if !p.Exists(portPath) {
			if err := p.Mkdir(portPath, 0o755); err != nil {
				return err
			}
		}
		// Record the mapping as an xattr so administrators can inspect
		// the virtualization with getfattr.
		if err := p.SetXattr(portPath, "user.yanc.vport.maps-to", []byte(phys.String())); err != nil {
			return err
		}
	}
	return nil
}

// Start begins compiling committed virtual flows and translating events.
func (b *BigSwitch) Start() error {
	w, err := b.p.AddWatch(vfs.Join(b.vswitchPath(), "flows"),
		vfs.OpWrite|vfs.OpRemove, vfs.Recursive(), vfs.BufferSize(4096))
	if err != nil {
		return err
	}
	b.watch = w
	_, evw, err := yancfs.Subscribe(b.p, b.Region, "vnet-"+b.Name)
	if err != nil {
		w.Close()
		return err
	}
	b.evWatch = evw
	b.stop = make(chan struct{})
	b.stopped = make(chan struct{}, 2)
	go b.flowLoop()
	go b.eventLoop()
	return nil
}

// Stop shuts the virtualizer down.
func (b *BigSwitch) Stop() {
	if b.stop == nil {
		return
	}
	close(b.stop)
	b.watch.Close()
	b.evWatch.Close()
	<-b.stopped
	<-b.stopped
}

func (b *BigSwitch) flowLoop() {
	defer func() { b.stopped <- struct{}{} }()
	for ev := range b.watch.C {
		switch {
		case ev.Op == vfs.OpWrite && vfs.Base(ev.Path) == yancfs.FileVersion:
			b.compileFlow(vfs.Dir(ev.Path))
		case ev.Op == vfs.OpRemove && ev.IsDir && vfs.Dir(ev.Path) == vfs.Join(b.vswitchPath(), "flows"):
			b.removeCompiled(ev.Path)
		}
	}
}

// compileFlow turns one committed virtual flow into physical path flows.
func (b *BigSwitch) compileFlow(viewFlowPath string) {
	p := b.p
	version, err := yancfs.FlowVersion(p, viewFlowPath)
	if err != nil || version == 0 {
		return
	}
	b.mu.Lock()
	already := b.compiled[viewFlowPath].version >= version
	b.mu.Unlock()
	if already {
		return
	}
	spec, err := yancfs.ReadFlow(p, viewFlowPath)
	if err != nil {
		return
	}
	paths, err := b.compile(vfs.Base(viewFlowPath), spec)
	if err != nil {
		_ = p.WriteString(vfs.Join(viewFlowPath, "error"), err.Error()+"\n")
		return
	}
	b.mu.Lock()
	stale := b.compiled[viewFlowPath].paths
	b.compiled[viewFlowPath] = compiledFlow{version: version, paths: paths}
	b.mu.Unlock()
	// Physical flows from a superseded compilation that the new one no
	// longer writes are removed.
	current := make(map[string]bool, len(paths))
	for _, fp := range paths {
		current[fp] = true
	}
	for _, fp := range stale {
		if !current[fp] {
			_ = p.RemoveAll(fp)
		}
	}
}

// compile computes and writes the physical flows for a virtual flow and
// returns their paths. The virtual match must pin in_port; each output
// action must target a mapped virtual port.
func (b *BigSwitch) compile(flowName string, spec yancfs.FlowSpec) ([]string, error) {
	if !spec.Match.Has(openflow.FieldInPort) {
		return nil, fmt.Errorf("apps: big switch flow %s: match.in_port is required", flowName)
	}
	src, ok := b.PortMap[spec.Match.InPort]
	if !ok {
		return nil, fmt.Errorf("apps: big switch flow %s: unmapped in_port %d", flowName, spec.Match.InPort)
	}
	var rewrites []openflow.Action
	var outs []PortRef
	for _, a := range spec.Actions {
		if a.Type != openflow.ActOutput {
			rewrites = append(rewrites, a)
			continue
		}
		dst, ok := b.PortMap[a.Port]
		if !ok {
			return nil, fmt.Errorf("apps: big switch flow %s: unmapped out port %d", flowName, a.Port)
		}
		outs = append(outs, dst)
	}
	if len(outs) == 0 {
		return nil, fmt.Errorf("apps: big switch flow %s: no output action", flowName)
	}
	topo, err := LoadTopology(b.p, b.Region)
	if err != nil {
		return nil, err
	}
	var written []string
	cleanupOnErr := func(err error) ([]string, error) {
		for _, w := range written {
			_ = b.p.RemoveAll(w)
		}
		return nil, err
	}
	for _, dst := range outs {
		type step struct {
			sw              string
			inPort, outPort uint32
		}
		var steps []step
		if src.Switch == dst.Switch {
			steps = []step{{sw: src.Switch, inPort: src.Port, outPort: dst.Port}}
		} else {
			hops, ok := topo.Path(src.Switch, dst.Switch)
			if !ok {
				return cleanupOnErr(fmt.Errorf("apps: big switch flow %s: no path %s -> %s", flowName, src.Switch, dst.Switch))
			}
			inPort := src.Port
			for _, h := range hops {
				steps = append(steps, step{sw: h.sw, inPort: inPort, outPort: h.outPort})
				peer := topo.Links[PortRef{h.sw, h.outPort}]
				inPort = peer.Port
			}
			steps = append(steps, step{sw: dst.Switch, inPort: inPort, outPort: dst.Port})
		}
		for i, s := range steps {
			match := spec.Match
			match.InPort = s.inPort
			actions := []openflow.Action{openflow.Output(s.outPort)}
			if i == len(steps)-1 {
				// Header rewrites apply once, at the egress switch.
				actions = append(append([]openflow.Action(nil), rewrites...), openflow.Output(s.outPort))
			}
			name := fmt.Sprintf("vnet-%s-%s-%s-%d", b.Name, flowName, s.sw, i)
			flowPath := vfs.Join(b.Region, yancfs.DirSwitches, s.sw, "flows", name)
			if _, err := yancfs.WriteFlow(b.p, flowPath, yancfs.FlowSpec{
				Match:       match,
				Priority:    spec.Priority,
				IdleTimeout: spec.IdleTimeout,
				HardTimeout: spec.HardTimeout,
				Cookie:      spec.Cookie,
				Actions:     actions,
			}); err != nil {
				return cleanupOnErr(err)
			}
			written = append(written, flowPath)
		}
	}
	return written, nil
}

// removeCompiled deletes the physical flows backing a removed virtual flow.
func (b *BigSwitch) removeCompiled(viewFlowPath string) {
	b.mu.Lock()
	cf := b.compiled[viewFlowPath]
	delete(b.compiled, viewFlowPath)
	b.mu.Unlock()
	for _, fp := range cf.paths {
		_ = b.p.RemoveAll(fp)
	}
}

func (b *BigSwitch) eventLoop() {
	defer func() { b.stopped <- struct{}{} }()
	buf := vfs.Join(b.Region, yancfs.DirEvents, "vnet-"+b.Name)
	// Reverse map: physical port -> virtual port.
	rev := make(map[PortRef]uint32, len(b.PortMap))
	for vp, phys := range b.PortMap {
		rev[phys] = vp
	}
	for range b.evWatch.C {
		msgs, err := yancfs.PendingEvents(b.p, buf)
		if err != nil {
			continue
		}
		for _, msg := range msgs {
			ev, err := yancfs.ConsumePacketIn(b.p, msg)
			if err != nil {
				continue
			}
			vp, mapped := rev[PortRef{Switch: ev.Switch, Port: ev.InPort}]
			if !mapped {
				continue
			}
			// Translate: the event appears to come from the big switch's
			// virtual port ("one application needs to alter a packet-in
			// before it is received by another", §3.5).
			_ = b.Y.DeliverPacketIn(b.ViewPath(), b.VSwitchName, &openflow.PacketIn{
				BufferID: openflow.NoBuffer, // physical buffer ids are meaningless in the view
				TotalLen: ev.TotalLen,
				InPort:   vp,
				Reason:   ev.Reason,
				Data:     ev.Data,
			})
		}
	}
}
