package apps

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"yanc/internal/ethernet"
	"yanc/internal/openflow"
	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

// mustLLDPMatch builds the dl_type=0x88cc match.
func mustLLDPMatch() openflow.Match {
	var m openflow.Match
	if err := m.SetField(openflow.FieldDLType, "0x88cc"); err != nil {
		panic(err)
	}
	return m
}

// lldpTTL is the TTL advertised in discovery frames.
const lldpTTL = 120

// Topod is the topology discovery daemon of §4.3: it installs
// LLDP-to-controller flows on every switch, emits LLDP probes out every
// port through the packet_out control files, and turns the resulting
// packet-in events into peer symbolic links.
type Topod struct {
	P      *vfs.Proc
	Region string
	// App is the event-buffer name (default "topod").
	App string

	mu      sync.Mutex
	buf     string
	watch   *vfs.Watch
	stop    chan struct{}
	stopped chan struct{}
	// seen tracks links created by this daemon (for pruning).
	seen map[PortRef]PortRef
}

// NewTopod creates the daemon over a region.
func NewTopod(p *vfs.Proc, region string) *Topod {
	return &Topod{P: p, Region: region, App: "topod", seen: make(map[PortRef]PortRef)}
}

// Start subscribes to events and begins consuming them in the background.
func (t *Topod) Start() error {
	buf, w, err := yancfs.Subscribe(t.P, t.Region, t.App)
	if err != nil {
		return err
	}
	t.buf = buf
	t.watch = w
	t.stop = make(chan struct{})
	t.stopped = make(chan struct{})
	go t.loop()
	return nil
}

// Stop shuts the daemon down.
func (t *Topod) Stop() {
	if t.stop == nil {
		return
	}
	close(t.stop)
	t.watch.Close()
	<-t.stopped
}

func (t *Topod) loop() {
	defer close(t.stopped)
	for {
		select {
		case <-t.stop:
			return
		case _, ok := <-t.watch.C:
			if !ok {
				return
			}
			t.drain()
		}
	}
}

// drain consumes all pending events in the buffer, returning how many it
// processed.
func (t *Topod) drain() int {
	msgs, err := yancfs.PendingEvents(t.P, t.buf)
	if err != nil {
		return 0
	}
	for _, msg := range msgs {
		ev, err := yancfs.ConsumePacketIn(t.P, msg)
		if err != nil {
			continue
		}
		t.handlePacketIn(ev)
	}
	return len(msgs)
}

// drainUntilQuiet keeps draining until the buffer stays empty for a few
// consecutive polls. Probes travel asynchronously through the drivers and
// switches, so a single drain immediately after Probe would race them.
func (t *Topod) drainUntilQuiet() {
	quiet := 0
	//yancvet:wallclock probe settling races real goroutines, not simulated time
	deadline := time.Now().Add(2 * time.Second)
	for quiet < 3 && time.Now().Before(deadline) { //yancvet:wallclock see deadline above
		if t.drain() == 0 {
			quiet++
		} else {
			quiet = 0
		}
		time.Sleep(5 * time.Millisecond) //yancvet:wallclock polling pace for real goroutines
	}
}

// InstallDiscoveryFlows writes the LLDP-to-controller flow on every
// switch in the region (priority above normal traffic).
func (t *Topod) InstallDiscoveryFlows() error {
	switches, err := yancfs.ListSwitches(t.P, t.Region)
	if err != nil {
		return err
	}
	var m = mustLLDPMatch()
	for _, sw := range switches {
		flowPath := vfs.Join(t.Region, yancfs.DirSwitches, sw, "flows", "topod-lldp")
		if _, err := yancfs.WriteFlow(t.P, flowPath, yancfs.FlowSpec{
			Match:    m,
			Priority: 65000,
			Actions:  []openflow.Action{openflow.OutputController(0xffff)},
		}); err != nil {
			return err
		}
	}
	return nil
}

// Probe sends one LLDP frame out of every port of every switch. Combined
// with a following drain, one Probe performs a full discovery round.
func (t *Topod) Probe() error {
	switches, err := yancfs.ListSwitches(t.P, t.Region)
	if err != nil {
		return err
	}
	for _, sw := range switches {
		swPath := vfs.Join(t.Region, yancfs.DirSwitches, sw)
		ports, err := yancfs.ListPorts(t.P, swPath)
		if err != nil {
			continue
		}
		for _, port := range ports {
			lldp := ethernet.LLDP{
				ChassisID: sw,
				PortID:    strconv.FormatUint(uint64(port), 10),
				TTL:       lldpTTL,
			}
			frame := ethernet.Frame{
				Dst:     ethernet.LLDPMulticast,
				Src:     ethernet.MACFromUint64(uint64(port)),
				Type:    ethernet.TypeLLDP,
				Payload: lldp.Serialize(),
			}.Serialize()
			spec := fmt.Sprintf("out=%d\n", port)
			payload := append([]byte(spec), frame...)
			if err := t.P.WriteFile(vfs.Join(swPath, "packet_out"), payload, 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

// handlePacketIn processes one event; only LLDP frames are interesting.
func (t *Topod) handlePacketIn(ev yancfs.PacketInEvent) {
	f, err := ethernet.DecodeFrame(ev.Data)
	if err != nil || f.Type != ethernet.TypeLLDP {
		return
	}
	lldp, err := ethernet.DecodeLLDP(f.Payload)
	if err != nil || lldp.ChassisID == "" || lldp.PortID == "" {
		return
	}
	srcPort, err := strconv.ParseUint(lldp.PortID, 10, 32)
	if err != nil {
		return
	}
	// The probe left (ChassisID, PortID) and arrived at (ev.Switch,
	// ev.InPort): that's a physical link. Record it in both directions.
	a := PortRef{Switch: lldp.ChassisID, Port: uint32(srcPort)}
	b := PortRef{Switch: ev.Switch, Port: ev.InPort}
	t.link(a, b)
	t.link(b, a)
}

// link points a's peer symlink at b.
func (t *Topod) link(a, b PortRef) {
	t.mu.Lock()
	if t.seen[a] == b {
		t.mu.Unlock()
		return
	}
	t.seen[a] = b
	t.mu.Unlock()
	aPath := vfs.Join(t.Region, yancfs.DirSwitches, a.Switch, "ports", strconv.FormatUint(uint64(a.Port), 10))
	bPath := vfs.Join(t.Region, yancfs.DirSwitches, b.Switch, "ports", strconv.FormatUint(uint64(b.Port), 10))
	_ = yancfs.SetPeer(t.P, aPath, bPath)
}

// DiscoverOnce runs a full synchronous discovery round: install flows,
// probe, consume everything pending. Tests and cron-style callers use it.
func (t *Topod) DiscoverOnce() error {
	if t.buf == "" {
		buf, w, err := yancfs.Subscribe(t.P, t.Region, t.App)
		if err != nil {
			return err
		}
		t.buf = buf
		t.watch = w
	}
	if err := t.InstallDiscoveryFlows(); err != nil {
		return err
	}
	if err := t.Probe(); err != nil {
		return err
	}
	t.drainUntilQuiet()
	return nil
}
