package apps

import (
	"testing"
	"time"

	"yanc/internal/ethernet"
)

// dhcpFrame builds a client DHCP message as a broadcast frame.
func dhcpFrame(hw ethernet.MAC, msgType uint8, reqIP ethernet.IP4) []byte {
	msg := ethernet.DHCP{Op: 1, XID: 0x1234, ClientHW: hw, MsgType: msgType, ReqIP: reqIP}
	return ethernet.Frame{
		Dst:  ethernet.Broadcast,
		Src:  hw,
		Type: ethernet.TypeIPv4,
		Payload: ethernet.IPv4{
			TTL: 64, Protocol: ethernet.ProtoUDP,
			Src: ethernet.IP4{}, Dst: ethernet.IP4{255, 255, 255, 255},
			Payload: ethernet.UDP{
				SrcPort: ethernet.DHCPClientPort,
				DstPort: ethernet.DHCPServerPort,
				Payload: msg.Serialize(),
			}.Serialize(),
		}.Serialize(),
	}.Serialize()
}

// findDHCPReply scans a host's received frames for a server message.
func findDHCPReply(frames [][]byte, msgType uint8) (ethernet.DHCP, bool) {
	for _, raw := range frames {
		f, err := ethernet.DecodeFrame(raw)
		if err != nil || f.Type != ethernet.TypeIPv4 {
			continue
		}
		ip, err := ethernet.DecodeIPv4(f.Payload)
		if err != nil || ip.Protocol != ethernet.ProtoUDP {
			continue
		}
		udp, err := ethernet.DecodeUDP(ip.Payload)
		if err != nil || udp.DstPort != ethernet.DHCPClientPort {
			continue
		}
		d, err := ethernet.DecodeDHCP(udp.Payload)
		if err == nil && d.Op == 2 && d.MsgType == msgType {
			return d, true
		}
	}
	return ethernet.DHCP{}, false
}

func TestDHCPRoundTripCodec(t *testing.T) {
	d := ethernet.DHCP{
		Op: 2, XID: 99, ClientHW: ethernet.MAC{1, 2, 3, 4, 5, 6},
		YourIP: ethernet.IP4{10, 1, 0, 7}, ServerIP: ethernet.IP4{10, 1, 0, 1},
		MsgType: ethernet.DHCPAck, Mask: ethernet.IP4{255, 255, 255, 0},
		Router: ethernet.IP4{10, 1, 0, 1}, LeaseSec: 600,
	}
	got, err := ethernet.DecodeDHCP(d.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if got.XID != 99 || got.YourIP != d.YourIP || got.MsgType != ethernet.DHCPAck ||
		got.Mask != d.Mask || got.Router != d.Router || got.LeaseSec != 600 {
		t.Fatalf("round trip = %+v", got)
	}
	if _, err := ethernet.DecodeDHCP(make([]byte, 100)); err == nil {
		t.Error("short dhcp accepted")
	}
	bad := d.Serialize()
	bad[236] = 0 // clobber magic
	if _, err := ethernet.DecodeDHCP(bad); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestDHCPdFullHandshake(t *testing.T) {
	r := newLinearRig(t, 1)
	dh := NewDHCPd(r.y.Root(), "/", ethernet.IP4{10, 1, 0, 10}, 5)
	if err := dh.Start(); err != nil {
		t.Fatal(err)
	}
	defer dh.Stop()
	// Wait for the intercept flow to reach hardware: full-size DHCP
	// packets need the output-to-controller path, not a truncated miss.
	eventually(t, "intercept flow", func() bool { return r.net.Switch(1).FlowCount() >= 1 })
	h1 := r.hosts[0]
	h1.ClearReceived()
	// DISCOVER -> OFFER.
	h1.Send(dhcpFrame(h1.MAC, ethernet.DHCPDiscover, ethernet.IP4{}))
	var offer ethernet.DHCP
	if !h1.WaitFor(func(frames [][]byte) bool {
		var ok bool
		offer, ok = findDHCPReply(frames, ethernet.DHCPOffer)
		return ok
	}, 2*time.Second) {
		t.Fatal("no OFFER")
	}
	if offer.YourIP != (ethernet.IP4{10, 1, 0, 10}) {
		t.Fatalf("offered %v", offer.YourIP)
	}
	// REQUEST -> ACK, and the lease materializes as files.
	h1.Send(dhcpFrame(h1.MAC, ethernet.DHCPRequest, offer.YourIP))
	if !h1.WaitFor(func(frames [][]byte) bool {
		_, ok := findDHCPReply(frames, ethernet.DHCPAck)
		return ok
	}, 2*time.Second) {
		t.Fatal("no ACK")
	}
	leases, err := dh.Leases()
	if err != nil {
		t.Fatal(err)
	}
	if leases[h1.MAC.String()] != "10.1.0.10" {
		t.Fatalf("leases = %v", leases)
	}
	// The lease is an ordinary file.
	p := r.y.Root()
	macDir := "02-00-0a-00-00-01" // h1's MAC with dashes
	if s, _ := p.ReadString("/services/dhcp/leases/" + macDir + "/ip"); s != "10.1.0.10" {
		t.Errorf("lease file = %q", s)
	}
	// The reply reaches the host before the counters increment; poll.
	eventually(t, "stats", func() bool {
		offers, acks := dh.Stats()
		return offers == 1 && acks == 1
	})
}

func TestDHCPdPoolExhaustionAndStability(t *testing.T) {
	r := newLinearRig(t, 1)
	dh := NewDHCPd(r.y.Root(), "/", ethernet.IP4{10, 1, 0, 10}, 2)
	if err := dh.EnsureSubscribed(); err != nil {
		t.Fatal(err)
	}
	eventually(t, "intercept flow", func() bool { return r.net.Switch(1).FlowCount() >= 1 })
	h1 := r.hosts[0]
	// sendAndAwait injects a client frame, keeps draining (delivery is
	// asynchronous), and returns the daemon's reply of the wanted type.
	sendAndAwait := func(frame []byte, msgType uint8) ethernet.DHCP {
		t.Helper()
		h1.ClearReceived()
		h1.Send(frame)
		var got ethernet.DHCP
		eventually(t, "dhcp reply", func() bool {
			dh.Drain()
			var ok bool
			got, ok = findDHCPReply(h1.Received(), msgType)
			return ok
		})
		return got
	}
	// Three clients against a pool of two; the third gets no offer.
	macs := []ethernet.MAC{
		ethernet.MACFromUint64(0x020000000001),
		ethernet.MACFromUint64(0x020000000002),
		ethernet.MACFromUint64(0x020000000003),
	}
	sendAndAwait(dhcpFrame(macs[0], ethernet.DHCPDiscover, ethernet.IP4{}), ethernet.DHCPOffer)
	sendAndAwait(dhcpFrame(macs[1], ethernet.DHCPDiscover, ethernet.IP4{}), ethernet.DHCPOffer)
	h1.Send(dhcpFrame(macs[2], ethernet.DHCPDiscover, ethernet.IP4{}))
	eventually(t, "third discover consumed", func() bool { return dh.Drain() > 0 })
	if offers, _ := dh.Stats(); offers != 2 {
		t.Fatalf("offers = %d (pool of 2)", offers)
	}
	// Repeat DISCOVER from a known client re-offers the same address.
	offer := sendAndAwait(dhcpFrame(macs[0], ethernet.DHCPDiscover, ethernet.IP4{}), ethernet.DHCPOffer)
	if offer.YourIP != (ethernet.IP4{10, 1, 0, 10}) {
		t.Fatalf("stable re-offer = %+v", offer)
	}
	// REQUEST for someone else's address is NAKed.
	sendAndAwait(dhcpFrame(macs[0], ethernet.DHCPRequest, ethernet.IP4{10, 1, 0, 11}), ethernet.DHCPNak)
	// Release frees the address for the third client.
	if err := dh.ReleaseLease(macs[0]); err != nil {
		t.Fatal(err)
	}
	offer = sendAndAwait(dhcpFrame(macs[2], ethernet.DHCPDiscover, ethernet.IP4{}), ethernet.DHCPOffer)
	if offer.YourIP != (ethernet.IP4{10, 1, 0, 10}) {
		t.Fatalf("post-release offer = %+v", offer)
	}
}
