package apps

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"yanc/internal/openflow"
	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

// Slicer implements the slicing half of network views (§4.2): "a slice of
// a network is a subset of the hardware and header space across one or
// more switches; the original topology is not changed." The slicer
// creates a view containing mirror directories for the member switches
// and translates between the two regions of the file system:
//
//   - flows committed inside the view are intersected with the slice's
//     header-space filter and written into the master region (prefixed,
//     so slices cannot collide);
//   - flow removals propagate;
//   - packet-in events that belong to the slice (member switch + filter
//     match) are re-delivered into the view's event buffers.
//
// Disjoint flows (outside the slice's header space) are rejected by
// writing the reason into the flow's "error" file.
type Slicer struct {
	Y        *yancfs.FS
	Region   string // parent region (usually "/")
	Name     string // view name
	Filter   openflow.Match
	Switches []string

	mu      sync.Mutex
	p       *vfs.Proc
	watch   *vfs.Watch
	evWatch *vfs.Watch
	stop    chan struct{}
	stopped chan struct{}
	// pushed maps view flow path -> its translated master state.
	pushed map[string]pushedFlow
}

type pushedFlow struct {
	master  string
	version uint64
}

// NewSlicer configures a slice of the given switches and header space.
func NewSlicer(y *yancfs.FS, region, name string, filter openflow.Match, switches []string) *Slicer {
	return &Slicer{
		Y:        y,
		Region:   region,
		Name:     name,
		Filter:   filter,
		Switches: switches,
		p:        y.Root(),
		pushed:   make(map[string]pushedFlow),
	}
}

// ViewPath returns the view's region path.
func (s *Slicer) ViewPath() string {
	return vfs.Join(s.Region, yancfs.DirViews, s.Name)
}

// masterFlowName prefixes a view flow so slices cannot collide with each
// other or with master flows.
func (s *Slicer) masterFlowName(viewFlow string) string {
	return "slice-" + s.Name + "-" + viewFlow
}

// Create materializes the view: the region skeleton (via semantic mkdir),
// one mirror switch directory per member with its ports, and peer links
// for the intra-slice topology. The filter is recorded as an xattr for
// introspection.
func (s *Slicer) Create() error {
	p := s.p
	view := s.ViewPath()
	if !p.Exists(view) {
		if err := p.Mkdir(view, 0o755); err != nil {
			return err
		}
	}
	if err := p.SetXattr(view, "user.yanc.slice.filter", []byte(s.Filter.String())); err != nil {
		return err
	}
	member := make(map[string]bool, len(s.Switches))
	for _, sw := range s.Switches {
		member[sw] = true
	}
	for _, sw := range s.Switches {
		masterSw := vfs.Join(s.Region, yancfs.DirSwitches, sw)
		if !p.IsDir(masterSw) {
			return fmt.Errorf("apps: slicer: no switch %s in %s", sw, s.Region)
		}
		viewSw := vfs.Join(view, yancfs.DirSwitches, sw)
		if !p.Exists(viewSw) {
			if err := p.Mkdir(viewSw, 0o755); err != nil {
				return err
			}
		}
		// Mirror identity and ports.
		for _, file := range []string{"id", "protocol", "capabilities", "actions"} {
			if b, err := p.ReadFile(vfs.Join(masterSw, file)); err == nil {
				if err := p.WriteFile(vfs.Join(viewSw, file), b, 0o644); err != nil {
					return err
				}
			}
		}
		ports, err := yancfs.ListPorts(p, masterSw)
		if err != nil {
			return err
		}
		for _, port := range ports {
			portName := strconv.FormatUint(uint64(port), 10)
			viewPort := vfs.Join(viewSw, "ports", portName)
			if !p.Exists(viewPort) {
				if err := p.Mkdir(viewPort, 0o755); err != nil {
					return err
				}
			}
		}
	}
	// Second pass for the intra-slice topology: every member port now
	// exists, so peer links can be mirrored in both directions ("the
	// original topology is not changed", just subsetted).
	for _, sw := range s.Switches {
		masterSw := vfs.Join(s.Region, yancfs.DirSwitches, sw)
		ports, err := yancfs.ListPorts(p, masterSw)
		if err != nil {
			return err
		}
		for _, port := range ports {
			portName := strconv.FormatUint(uint64(port), 10)
			masterPort := vfs.Join(masterSw, "ports", portName)
			peerSw, peerPort, ok := yancfs.Peer(p, masterPort)
			if !ok || !member[peerSw] {
				continue
			}
			viewPort := vfs.Join(view, yancfs.DirSwitches, sw, "ports", portName)
			peerPath := vfs.Join(view, yancfs.DirSwitches, peerSw, "ports",
				strconv.FormatUint(uint64(peerPort), 10))
			if p.IsDir(peerPath) {
				if err := yancfs.SetPeer(p, viewPort, peerPath); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Start begins the two translation loops.
func (s *Slicer) Start() error {
	view := s.ViewPath()
	w, err := s.p.AddWatch(vfs.Join(view, yancfs.DirSwitches),
		vfs.OpWrite|vfs.OpRemove, vfs.Recursive(), vfs.BufferSize(4096))
	if err != nil {
		return err
	}
	s.watch = w
	// Subscribe to master packet-ins for event translation.
	_, evw, err := yancfs.Subscribe(s.p, s.Region, "slicer-"+s.Name)
	if err != nil {
		w.Close()
		return err
	}
	s.evWatch = evw
	s.stop = make(chan struct{})
	s.stopped = make(chan struct{}, 2)
	go s.flowLoop()
	go s.eventLoop()
	return nil
}

// Stop shuts the translation down.
func (s *Slicer) Stop() {
	if s.stop == nil {
		return
	}
	close(s.stop)
	s.watch.Close()
	s.evWatch.Close()
	<-s.stopped
	<-s.stopped
}

func (s *Slicer) flowLoop() {
	defer func() { s.stopped <- struct{}{} }()
	for ev := range s.watch.C {
		switch {
		case ev.Op == vfs.OpWrite && vfs.Base(ev.Path) == yancfs.FileVersion:
			s.translateFlow(vfs.Dir(ev.Path))
		case ev.Op == vfs.OpRemove && ev.IsDir && s.isViewFlowDir(ev.Path):
			s.removeTranslated(ev.Path)
		}
	}
}

// isViewFlowDir reports whether p is <view>/switches/<sw>/flows/<flow>.
func (s *Slicer) isViewFlowDir(path string) bool {
	rel := strings.TrimPrefix(path, vfs.Join(s.ViewPath(), yancfs.DirSwitches)+"/")
	parts := strings.Split(rel, "/")
	return len(parts) == 3 && parts[1] == "flows"
}

// translateFlow pushes one committed view flow into the master region.
func (s *Slicer) translateFlow(viewFlowPath string) {
	p := s.p
	version, err := yancfs.FlowVersion(p, viewFlowPath)
	if err != nil || version == 0 {
		return
	}
	s.mu.Lock()
	already := s.pushed[viewFlowPath].version >= version
	s.mu.Unlock()
	if already {
		return
	}
	spec, err := yancfs.ReadFlow(p, viewFlowPath)
	if err != nil {
		return
	}
	// Confine to the slice's header space.
	confined, err := openflow.Intersect(spec.Match, s.Filter)
	if err != nil {
		// The flow escapes the slice: record the rejection in the view.
		_ = p.WriteString(vfs.Join(viewFlowPath, "error"), err.Error()+"\n")
		return
	}
	spec.Match = confined
	// Locate the switch this flow belongs to.
	rel := strings.TrimPrefix(viewFlowPath, vfs.Join(s.ViewPath(), yancfs.DirSwitches)+"/")
	parts := strings.Split(rel, "/")
	if len(parts) != 3 {
		return
	}
	sw, flowName := parts[0], parts[2]
	masterFlow := vfs.Join(s.Region, yancfs.DirSwitches, sw, "flows", s.masterFlowName(flowName))
	if _, err := yancfs.WriteFlow(p, masterFlow, spec); err != nil {
		_ = p.WriteString(vfs.Join(viewFlowPath, "error"), err.Error()+"\n")
		return
	}
	s.mu.Lock()
	s.pushed[viewFlowPath] = pushedFlow{master: masterFlow, version: version}
	s.mu.Unlock()
}

// removeTranslated removes the master twin of a deleted view flow.
func (s *Slicer) removeTranslated(viewFlowPath string) {
	s.mu.Lock()
	pf, ok := s.pushed[viewFlowPath]
	delete(s.pushed, viewFlowPath)
	s.mu.Unlock()
	if ok {
		_ = s.p.RemoveAll(pf.master)
	}
}

func (s *Slicer) eventLoop() {
	defer func() { s.stopped <- struct{}{} }()
	buf := vfs.Join(s.Region, yancfs.DirEvents, "slicer-"+s.Name)
	member := make(map[string]bool, len(s.Switches))
	for _, sw := range s.Switches {
		member[sw] = true
	}
	for range s.evWatch.C {
		msgs, err := yancfs.PendingEvents(s.p, buf)
		if err != nil {
			continue
		}
		for _, msg := range msgs {
			ev, err := yancfs.ConsumePacketIn(s.p, msg)
			if err != nil {
				continue
			}
			if !member[ev.Switch] {
				continue
			}
			pf, err := openflow.ExtractFields(ev.Data, ev.InPort)
			if err != nil || !s.Filter.MatchesPacket(&pf) {
				continue
			}
			// Re-deliver into the view, unchanged: the slice preserves
			// the original topology, so ports need no renaming.
			_ = s.Y.DeliverPacketIn(s.ViewPath(), ev.Switch, &openflow.PacketIn{
				BufferID: ev.BufferID,
				TotalLen: ev.TotalLen,
				InPort:   ev.InPort,
				Reason:   ev.Reason,
				Data:     ev.Data,
			})
		}
	}
}
