package apps

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"yanc/internal/ethernet"
	"yanc/internal/openflow"
	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

// DHCPd is the address-assignment daemon from the goals section's
// protocol-app trio (DHCP, ARP, LLDP): a separate process answering
// DISCOVER/REQUEST from a configured pool. True to yanc's design, its
// lease table is not private state — every lease is a file under
// <region>/services/dhcp/leases/<mac>, so `ls` shows who has an address
// and removing the file revokes the lease.
type DHCPd struct {
	P      *vfs.Proc
	Region string
	App    string

	// Pool configuration.
	ServerIP  ethernet.IP4
	PoolStart ethernet.IP4
	Count     int
	Mask      ethernet.IP4
	Router    ethernet.IP4
	LeaseSec  uint32

	mu      sync.Mutex
	buf     string
	watch   *vfs.Watch
	stop    chan struct{}
	stopped chan struct{}
	leases  map[ethernet.MAC]ethernet.IP4
	inUse   map[ethernet.IP4]bool
	now     func() time.Time
	offers  uint64
	acks    uint64
}

// NewDHCPd creates a daemon serving a /24-ish pool starting at start.
func NewDHCPd(p *vfs.Proc, region string, start ethernet.IP4, count int) *DHCPd {
	return &DHCPd{
		P:         p,
		Region:    region,
		App:       "dhcpd",
		ServerIP:  ethernet.IP4{start[0], start[1], start[2], 1},
		PoolStart: start,
		Count:     count,
		Mask:      ethernet.IP4{255, 255, 255, 0},
		Router:    ethernet.IP4{start[0], start[1], start[2], 1},
		LeaseSec:  3600,
		leases:    make(map[ethernet.MAC]ethernet.IP4),
		inUse:     make(map[ethernet.IP4]bool),
		now:       time.Now,
	}
}

// leaseDir returns the leases directory path.
func (d *DHCPd) leaseDir() string {
	return vfs.Join(d.Region, "services", "dhcp", "leases")
}

// Start subscribes and begins serving in the background.
func (d *DHCPd) Start() error {
	if err := d.EnsureSubscribed(); err != nil {
		return err
	}
	d.stop = make(chan struct{})
	d.stopped = make(chan struct{})
	go func() {
		defer close(d.stopped)
		for {
			select {
			case <-d.stop:
				return
			case _, ok := <-d.watch.C:
				if !ok {
					return
				}
				d.Drain()
			}
		}
	}()
	return nil
}

// Stop shuts the daemon down.
func (d *DHCPd) Stop() {
	if d.stop == nil {
		return
	}
	close(d.stop)
	d.watch.Close()
	<-d.stopped
}

// EnsureSubscribed prepares the buffer, the lease directory, and the
// intercept flows, without starting the loop.
func (d *DHCPd) EnsureSubscribed() error {
	if d.buf != "" {
		return nil
	}
	if err := d.P.MkdirAll(d.leaseDir(), 0o755); err != nil {
		return err
	}
	buf, w, err := yancfs.Subscribe(d.P, d.Region, d.App)
	if err != nil {
		return err
	}
	d.buf = buf
	d.watch = w
	return d.InstallInterceptFlows()
}

// InstallInterceptFlows writes a DHCP-to-controller flow on every switch.
// A table miss only carries the first miss_send_len bytes of the packet;
// an explicit output-to-controller action delivers the whole message,
// which a ~300-byte DHCP packet needs.
func (d *DHCPd) InstallInterceptFlows() error {
	var m openflow.Match
	for f, v := range map[openflow.Field]string{
		openflow.FieldDLType:  "0x0800",
		openflow.FieldNWProto: "17",
		openflow.FieldTPDst:   strconv.Itoa(ethernet.DHCPServerPort),
	} {
		if err := m.SetField(f, v); err != nil {
			return err
		}
	}
	switches, err := yancfs.ListSwitches(d.P, d.Region)
	if err != nil {
		return err
	}
	for _, sw := range switches {
		flowPath := vfs.Join(d.Region, yancfs.DirSwitches, sw, "flows", "dhcpd-intercept")
		if _, err := yancfs.WriteFlow(d.P, flowPath, yancfs.FlowSpec{
			Match:    m,
			Priority: 64000,
			Actions:  []openflow.Action{openflow.OutputController(0xffff)},
		}); err != nil {
			return err
		}
	}
	return nil
}

// Stats reports offers and acks served.
func (d *DHCPd) Stats() (offers, acks uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.offers, d.acks
}

// Drain synchronously serves every pending request, returning how many
// events it consumed.
func (d *DHCPd) Drain() int {
	msgs, err := yancfs.PendingEvents(d.P, d.buf)
	if err != nil {
		return 0
	}
	for _, msg := range msgs {
		ev, err := yancfs.ConsumePacketIn(d.P, msg)
		if err != nil {
			continue
		}
		d.handle(ev)
	}
	return len(msgs)
}

func (d *DHCPd) handle(ev yancfs.PacketInEvent) {
	f, err := ethernet.DecodeFrame(ev.Data)
	if err != nil || f.Type != ethernet.TypeIPv4 {
		return
	}
	ip, err := ethernet.DecodeIPv4(f.Payload)
	if err != nil || ip.Protocol != ethernet.ProtoUDP {
		return
	}
	udp, err := ethernet.DecodeUDP(ip.Payload)
	if err != nil || udp.DstPort != ethernet.DHCPServerPort {
		return
	}
	req, err := ethernet.DecodeDHCP(udp.Payload)
	if err != nil || req.Op != 1 {
		return
	}
	switch req.MsgType {
	case ethernet.DHCPDiscover:
		addr, ok := d.allocate(req.ClientHW)
		if !ok {
			return
		}
		d.reply(ev, req, ethernet.DHCPOffer, addr)
		d.mu.Lock()
		d.offers++
		d.mu.Unlock()
	case ethernet.DHCPRequest:
		addr, ok := d.confirm(req.ClientHW, req.ReqIP)
		if !ok {
			d.reply(ev, req, ethernet.DHCPNak, ethernet.IP4{})
			return
		}
		if err := d.writeLease(req.ClientHW, addr); err != nil {
			return
		}
		d.reply(ev, req, ethernet.DHCPAck, addr)
		d.mu.Lock()
		d.acks++
		d.mu.Unlock()
	}
}

// allocate picks (or re-finds) an address for a client.
func (d *DHCPd) allocate(hw ethernet.MAC) (ethernet.IP4, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if addr, ok := d.leases[hw]; ok {
		return addr, true
	}
	base := d.PoolStart.Uint32()
	for i := 0; i < d.Count; i++ {
		addr := ethernet.IP4FromUint32(base + uint32(i))
		if !d.inUse[addr] {
			d.leases[hw] = addr
			d.inUse[addr] = true
			return addr, true
		}
	}
	return ethernet.IP4{}, false
}

// confirm validates a REQUEST against the allocation.
func (d *DHCPd) confirm(hw ethernet.MAC, req ethernet.IP4) (ethernet.IP4, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	addr, ok := d.leases[hw]
	if !ok {
		return ethernet.IP4{}, false
	}
	if req != (ethernet.IP4{}) && req != addr {
		return ethernet.IP4{}, false
	}
	return addr, true
}

// writeLease records the lease in the file system.
func (d *DHCPd) writeLease(hw ethernet.MAC, addr ethernet.IP4) error {
	base := vfs.Join(d.leaseDir(), strings.ReplaceAll(hw.String(), ":", "-"))
	if !d.P.Exists(base) {
		if err := d.P.Mkdir(base, 0o755); err != nil {
			return err
		}
	}
	expires := d.now().Add(time.Duration(d.LeaseSec) * time.Second).UTC()
	for file, content := range map[string]string{
		"ip":      addr.String(),
		"mac":     hw.String(),
		"expires": expires.Format(time.RFC3339),
	} {
		if err := d.P.WriteString(vfs.Join(base, file), content+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// Leases reads the lease table back from the file system (what any other
// app — or cat — would see).
func (d *DHCPd) Leases() (map[string]string, error) {
	out := make(map[string]string)
	entries, err := d.P.ReadDir(d.leaseDir())
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		mac, err1 := d.P.ReadString(vfs.Join(d.leaseDir(), e.Name, "mac"))
		ip, err2 := d.P.ReadString(vfs.Join(d.leaseDir(), e.Name, "ip"))
		if err1 == nil && err2 == nil {
			out[mac] = ip
		}
	}
	return out, nil
}

// reply sends a DHCP server message out the requesting port.
func (d *DHCPd) reply(ev yancfs.PacketInEvent, req ethernet.DHCP, msgType uint8, addr ethernet.IP4) {
	resp := ethernet.DHCP{
		Op:       2,
		XID:      req.XID,
		ClientHW: req.ClientHW,
		YourIP:   addr,
		ServerIP: d.ServerIP,
		MsgType:  msgType,
		Mask:     d.Mask,
		Router:   d.Router,
		LeaseSec: d.LeaseSec,
	}
	serverMAC := ethernet.MACFromUint64(0x02_44_48_43_50_00) // "DHCP" vendor-ish
	frame := ethernet.Frame{
		Dst:  ethernet.Broadcast,
		Src:  serverMAC,
		Type: ethernet.TypeIPv4,
		Payload: ethernet.IPv4{
			TTL:      64,
			Protocol: ethernet.ProtoUDP,
			Src:      d.ServerIP,
			Dst:      ethernet.IP4{255, 255, 255, 255},
			Payload: ethernet.UDP{
				SrcPort: ethernet.DHCPServerPort,
				DstPort: ethernet.DHCPClientPort,
				Payload: resp.Serialize(),
			}.Serialize(),
		}.Serialize(),
	}.Serialize()
	spec := "out=" + strconv.FormatUint(uint64(ev.InPort), 10) + "\n"
	swPath := vfs.Join(d.Region, yancfs.DirSwitches, ev.Switch)
	_ = d.P.WriteFile(vfs.Join(swPath, "packet_out"), append([]byte(spec), frame...), 0o644)
}

// ReleaseLease revokes a lease by MAC, removing its files — the same
// effect an administrator gets with rm -r.
func (d *DHCPd) ReleaseLease(hw ethernet.MAC) error {
	d.mu.Lock()
	addr, ok := d.leases[hw]
	if ok {
		delete(d.leases, hw)
		delete(d.inUse, addr)
	}
	d.mu.Unlock()
	base := vfs.Join(d.leaseDir(), strings.ReplaceAll(hw.String(), ":", "-"))
	if d.P.Exists(base) {
		return d.P.RemoveAll(base)
	}
	if !ok {
		return fmt.Errorf("apps: dhcpd: no lease for %s", hw)
	}
	return nil
}
