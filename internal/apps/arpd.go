package apps

import (
	"strconv"
	"sync"

	"yanc/internal/ethernet"
	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

// ARPd is the distinct-protocol daemon the goals section calls for
// ("there should be a distinct application for each protocol the network
// needs to support such as DHCP, ARP, and LLDP"). It answers ARP requests
// from the hosts/ directory's IP-to-MAC records, keeping broadcast ARP
// traffic off the rest of the network.
type ARPd struct {
	P      *vfs.Proc
	Region string
	App    string

	mu      sync.Mutex
	buf     string
	watch   *vfs.Watch
	stop    chan struct{}
	stopped chan struct{}
	// learned supplements hosts/ records with observed sender mappings.
	learned map[ethernet.IP4]ethernet.MAC
	replies uint64
}

// NewARPd creates the daemon over a region.
func NewARPd(p *vfs.Proc, region string) *ARPd {
	return &ARPd{P: p, Region: region, App: "arpd", learned: make(map[ethernet.IP4]ethernet.MAC)}
}

// Start subscribes and begins answering in the background.
func (a *ARPd) Start() error {
	buf, w, err := yancfs.Subscribe(a.P, a.Region, a.App)
	if err != nil {
		return err
	}
	a.buf = buf
	a.watch = w
	a.stop = make(chan struct{})
	a.stopped = make(chan struct{})
	go func() {
		defer close(a.stopped)
		for {
			select {
			case <-a.stop:
				return
			case _, ok := <-a.watch.C:
				if !ok {
					return
				}
				a.Drain()
			}
		}
	}()
	return nil
}

// Stop shuts the daemon down.
func (a *ARPd) Stop() {
	if a.stop == nil {
		return
	}
	close(a.stop)
	a.watch.Close()
	<-a.stopped
}

// Replies reports how many ARP replies were sent.
func (a *ARPd) Replies() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.replies
}

// EnsureSubscribed subscribes without starting the loop.
func (a *ARPd) EnsureSubscribed() error {
	if a.buf != "" {
		return nil
	}
	buf, w, err := yancfs.Subscribe(a.P, a.Region, a.App)
	if err != nil {
		return err
	}
	a.buf = buf
	a.watch = w
	return nil
}

// Drain synchronously answers every pending ARP request.
func (a *ARPd) Drain() {
	msgs, err := yancfs.PendingEvents(a.P, a.buf)
	if err != nil {
		return
	}
	for _, msg := range msgs {
		ev, err := yancfs.ConsumePacketIn(a.P, msg)
		if err != nil {
			continue
		}
		a.handle(ev)
	}
}

func (a *ARPd) handle(ev yancfs.PacketInEvent) {
	f, err := ethernet.DecodeFrame(ev.Data)
	if err != nil || f.Type != ethernet.TypeARP {
		return
	}
	req, err := ethernet.DecodeARP(f.Payload)
	if err != nil {
		return
	}
	a.mu.Lock()
	a.learned[req.SenderIP] = req.SenderHW
	a.mu.Unlock()
	if req.Op != ethernet.ARPRequest {
		return
	}
	mac, ok := a.resolve(req.TargetIP)
	if !ok {
		return
	}
	reply := ethernet.ARP{
		Op:       ethernet.ARPReply,
		SenderHW: mac,
		SenderIP: req.TargetIP,
		TargetHW: req.SenderHW,
		TargetIP: req.SenderIP,
	}
	frame := ethernet.Frame{
		Dst:     req.SenderHW,
		Src:     mac,
		Type:    ethernet.TypeARP,
		Payload: reply.Serialize(),
	}.Serialize()
	spec := "out=" + strconv.FormatUint(uint64(ev.InPort), 10) + "\n"
	payload := append([]byte(spec), frame...)
	swPath := vfs.Join(a.Region, yancfs.DirSwitches, ev.Switch)
	if err := a.P.WriteFile(vfs.Join(swPath, "packet_out"), payload, 0o644); err == nil {
		a.mu.Lock()
		a.replies++
		a.mu.Unlock()
	}
}

// resolve looks an IP up in learned mappings, then the hosts/ directory.
func (a *ARPd) resolve(ip ethernet.IP4) (ethernet.MAC, bool) {
	a.mu.Lock()
	mac, ok := a.learned[ip]
	a.mu.Unlock()
	if ok {
		return mac, true
	}
	_, arps, err := HostLocations(a.P, a.Region)
	if err != nil {
		return ethernet.MAC{}, false
	}
	mac, ok = arps[ip]
	return mac, ok
}
