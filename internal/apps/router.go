package apps

import (
	"fmt"
	"strconv"
	"sync"

	"yanc/internal/ethernet"
	"yanc/internal/libyanc"
	"yanc/internal/openflow"
	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

// Router is the paper's router daemon (§8): it "handles all table misses
// and sets up paths based on exact match through the network". It learns
// host locations from packet sources, computes shortest paths over the
// peer-symlink topology, installs one exact-match flow per switch on the
// path (via ordinary flow-directory writes), and releases the triggering
// packet with a packet-out.
type Router struct {
	P      *vfs.Proc
	Region string
	App    string
	// IdleTimeout for installed path flows, seconds (default 60).
	IdleTimeout uint16
	// Priority of installed flows (default 100).
	Priority uint16
	// Fast, when set, installs path flows through the libyanc batch
	// fastpath: one atomic commit for the whole path instead of ~47 file
	// operations per switch (§8.1). The resulting file-system state is
	// identical; only the cost changes.
	Fast *libyanc.Client

	mu       sync.Mutex
	buf      string
	watch    *vfs.Watch
	stop     chan struct{}
	stopped  chan struct{}
	learned  map[ethernet.MAC]PortRef
	flowSeq  uint64
	installs uint64
	floods   uint64
}

// NewRouter creates the daemon over a region.
func NewRouter(p *vfs.Proc, region string) *Router {
	return &Router{
		P: p, Region: region, App: "router",
		IdleTimeout: 60, Priority: 100,
		learned: make(map[ethernet.MAC]PortRef),
	}
}

// Start subscribes and begins consuming table misses.
func (r *Router) Start() error {
	buf, w, err := yancfs.Subscribe(r.P, r.Region, r.App)
	if err != nil {
		return err
	}
	r.buf = buf
	r.watch = w
	r.stop = make(chan struct{})
	r.stopped = make(chan struct{})
	go r.loop()
	return nil
}

// Stop shuts the daemon down.
func (r *Router) Stop() {
	if r.stop == nil {
		return
	}
	close(r.stop)
	r.watch.Close()
	<-r.stopped
}

// Stats reports how many paths were installed and packets flooded.
func (r *Router) Stats() (installs, floods uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.installs, r.floods
}

func (r *Router) loop() {
	defer close(r.stopped)
	for {
		select {
		case <-r.stop:
			return
		case _, ok := <-r.watch.C:
			if !ok {
				return
			}
			r.Drain()
		}
	}
}

// Drain synchronously consumes every pending table miss.
func (r *Router) Drain() {
	msgs, err := yancfs.PendingEvents(r.P, r.buf)
	if err != nil {
		return
	}
	for _, msg := range msgs {
		ev, err := yancfs.ConsumePacketIn(r.P, msg)
		if err != nil {
			continue
		}
		r.HandleMiss(ev)
	}
}

// EnsureSubscribed subscribes without starting the background loop
// (for synchronous use in tests and benchmarks).
func (r *Router) EnsureSubscribed() error {
	if r.buf != "" {
		return nil
	}
	buf, w, err := yancfs.Subscribe(r.P, r.Region, r.App)
	if err != nil {
		return err
	}
	r.buf = buf
	r.watch = w
	return nil
}

// HandleMiss processes one table-miss event.
func (r *Router) HandleMiss(ev yancfs.PacketInEvent) {
	f, err := ethernet.DecodeFrame(ev.Data)
	if err != nil {
		return
	}
	if f.Type == ethernet.TypeLLDP {
		return // topod's business
	}
	// Learn the source location.
	src := PortRef{Switch: ev.Switch, Port: ev.InPort}
	r.mu.Lock()
	r.learned[f.Src] = src
	dst, known := r.learned[f.Dst]
	r.mu.Unlock()
	if !known {
		if loc, ok := r.hostLocation(f.Dst); ok {
			dst = loc
			known = true
		}
	}
	if f.Dst.IsBroadcast() || f.Dst.IsMulticast() || !known {
		// Unknown destination: flood from the ingress switch.
		r.packetOut(ev.Switch, openflow.PortFlood, ev)
		r.mu.Lock()
		r.floods++
		r.mu.Unlock()
		return
	}
	if err := r.installPath(src, dst, ev); err != nil {
		r.packetOut(ev.Switch, openflow.PortFlood, ev)
		r.mu.Lock()
		r.floods++
		r.mu.Unlock()
	}
}

// hostLocation consults the hosts/ directory for a static attachment.
func (r *Router) hostLocation(mac ethernet.MAC) (PortRef, bool) {
	locs, _, err := HostLocations(r.P, r.Region)
	if err != nil {
		return PortRef{}, false
	}
	loc, ok := locs[mac]
	return loc, ok
}

// installPath installs exact-match flows from src's switch to dst and
// releases the packet at the ingress switch.
func (r *Router) installPath(src, dst PortRef, ev yancfs.PacketInEvent) error {
	topo, err := LoadTopology(r.P, r.Region)
	if err != nil {
		return err
	}
	pf, err := openflow.ExtractFields(ev.Data, ev.InPort)
	if err != nil {
		return err
	}
	hops, ok := topo.Path(src.Switch, dst.Switch)
	if !ok {
		return fmt.Errorf("apps: no path %s -> %s", src.Switch, dst.Switch)
	}
	// Egress ports along the path; the final hop exits at dst.Port.
	type step struct {
		sw      string
		inPort  uint32
		outPort uint32
	}
	var steps []step
	inPort := src.Port
	for _, h := range hops {
		steps = append(steps, step{sw: h.sw, inPort: inPort, outPort: h.outPort})
		peer := topo.Links[PortRef{h.sw, h.outPort}]
		inPort = peer.Port
	}
	steps = append(steps, step{sw: dst.Switch, inPort: inPort, outPort: dst.Port})

	r.mu.Lock()
	r.flowSeq++
	seq := r.flowSeq
	r.installs++
	r.mu.Unlock()
	var batch *libyanc.Batch
	if r.Fast != nil {
		batch = r.Fast.NewBatch()
	}
	for _, s := range steps {
		match := openflow.ExactMatch(pf)
		match.Set |= openflow.FieldInPort
		match.InPort = s.inPort
		flowName := fmt.Sprintf("router-%d-%s", seq, s.sw)
		flowPath := vfs.Join(r.Region, yancfs.DirSwitches, s.sw, "flows", flowName)
		spec := yancfs.FlowSpec{
			Match:       match,
			Priority:    r.Priority,
			IdleTimeout: r.IdleTimeout,
			Actions:     []openflow.Action{openflow.Output(s.outPort)},
		}
		if batch != nil {
			batch.Put(flowPath, spec)
			continue
		}
		if _, err := yancfs.WriteFlow(r.P, flowPath, spec); err != nil {
			return err
		}
	}
	if batch != nil {
		if err := batch.Commit(); err != nil {
			return err
		}
	}
	// Release the triggering packet along the fresh path.
	r.packetOut(src.Switch, steps[0].outPort, ev)
	return nil
}

// packetOut releases a buffered packet (or resends its bytes) on a port.
func (r *Router) packetOut(sw string, port uint32, ev yancfs.PacketInEvent) {
	spec := "out=" + portToken(port)
	if ev.BufferID != openflow.NoBuffer {
		spec += " buffer_id=" + strconv.FormatUint(uint64(ev.BufferID), 10)
	}
	spec += " in_port=" + strconv.FormatUint(uint64(ev.InPort), 10) + "\n"
	payload := append([]byte(spec), ev.Data...)
	_ = r.P.WriteFile(vfs.Join(r.Region, yancfs.DirSwitches, sw, "packet_out"), payload, 0o644)
}

func portToken(port uint32) string {
	if port == openflow.PortFlood {
		return "flood"
	}
	return strconv.FormatUint(uint64(port), 10)
}
