package apps

import (
	"fmt"
	"sort"
	"strings"

	"yanc/internal/openflow"
	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

// Auditor is the cron-style application from the goals section: "an
// auditor might run periodically via a cron job". One Run walks the
// region's flow tables through ordinary file I/O and reports policy
// findings; the report is also written into the file system so other
// tools (or `cat`) can read it.
type Auditor struct {
	P      *vfs.Proc
	Region string
	// BannedTPPorts flags flows that permit traffic to these ports.
	BannedTPPorts []uint16
	// ReportPath is where the text report lands (default
	// <region>/audit-report).
	ReportPath string
}

// NewAuditor creates an auditor over a region.
func NewAuditor(p *vfs.Proc, region string) *Auditor {
	return &Auditor{P: p, Region: region}
}

// Finding is one audit observation.
type Finding struct {
	Severity string // "warn" or "error"
	Switch   string
	Flow     string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s %s/%s: %s", f.Severity, f.Switch, f.Flow, f.Message)
}

// Run performs one audit pass and returns the findings sorted by
// switch/flow. The report file is rewritten on every run.
func (a *Auditor) Run() ([]Finding, error) {
	var findings []Finding
	switches, err := yancfs.ListSwitches(a.P, a.Region)
	if err != nil {
		return nil, err
	}
	for _, sw := range switches {
		swPath := vfs.Join(a.Region, yancfs.DirSwitches, sw)
		names, err := yancfs.ListFlows(a.P, swPath)
		if err != nil {
			continue
		}
		type flowInfo struct {
			name string
			spec yancfs.FlowSpec
		}
		var committed []flowInfo
		for _, name := range names {
			flowPath := vfs.Join(swPath, "flows", name)
			version, err := yancfs.FlowVersion(a.P, flowPath)
			if err != nil {
				continue
			}
			if version == 0 {
				findings = append(findings, Finding{
					Severity: "warn", Switch: sw, Flow: name,
					Message: "staged but never committed (version 0)",
				})
				continue
			}
			spec, err := yancfs.ReadFlow(a.P, flowPath)
			if err != nil {
				findings = append(findings, Finding{
					Severity: "error", Switch: sw, Flow: name,
					Message: "unparseable: " + err.Error(),
				})
				continue
			}
			if len(spec.Actions) == 0 {
				findings = append(findings, Finding{
					Severity: "warn", Switch: sw, Flow: name,
					Message: "no actions: matched traffic is dropped",
				})
			}
			for _, banned := range a.BannedTPPorts {
				if spec.Match.Has(openflow.FieldTPDst) && spec.Match.TPDst == banned && len(spec.Actions) > 0 {
					findings = append(findings, Finding{
						Severity: "error", Switch: sw, Flow: name,
						Message: fmt.Sprintf("permits banned destination port %d", banned),
					})
				}
			}
			committed = append(committed, flowInfo{name: name, spec: spec})
		}
		// Shadowing: a higher-priority flow whose match covers a
		// lower-priority one makes the latter dead.
		for i := range committed {
			for j := range committed {
				if i == j {
					continue
				}
				hi, lo := committed[i], committed[j]
				if hi.spec.Priority > lo.spec.Priority && hi.spec.Match.Covers(lo.spec.Match) {
					findings = append(findings, Finding{
						Severity: "warn", Switch: sw, Flow: lo.name,
						Message: fmt.Sprintf("shadowed by %s (priority %d > %d)",
							hi.name, hi.spec.Priority, lo.spec.Priority),
					})
				}
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Switch != findings[j].Switch {
			return findings[i].Switch < findings[j].Switch
		}
		if findings[i].Flow != findings[j].Flow {
			return findings[i].Flow < findings[j].Flow
		}
		return findings[i].Message < findings[j].Message
	})
	report := a.ReportPath
	if report == "" {
		report = vfs.Join(a.Region, "audit-report")
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "yanc audit: %d finding(s)\n", len(findings))
	for _, f := range findings {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	if err := a.P.WriteFile(report, []byte(sb.String()), 0o644); err != nil {
		return findings, err
	}
	return findings, nil
}
