// Package apps contains the yanc system applications from §4 and §8 of
// the paper: topology discovery (LLDP), the static flow pusher, the
// reactive router daemon, an ARP responder, the slicer and big-switch
// virtualizer (network views, §4.2), and a cron-style auditor. Every app
// is an ordinary client of the file system — it reads and writes files,
// places watches, and consumes its private event buffer. None of them
// link against the driver or each other.
package apps

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"yanc/internal/ethernet"
	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

// PortRef names one switch port.
type PortRef struct {
	Switch string
	Port   uint32
}

func (r PortRef) String() string { return fmt.Sprintf("%s/%d", r.Switch, r.Port) }

// Topology is the link graph read from the peer symlinks (§3.3: topology
// is represented in the directory layout, not a parsed info file).
type Topology struct {
	// Links maps a port to its peer port.
	Links map[PortRef]PortRef
	// Ports lists each switch's ports.
	Ports map[string][]uint32
}

// LoadTopology builds the graph from a region's switches directory.
func LoadTopology(p *vfs.Proc, region string) (*Topology, error) {
	topo := &Topology{
		Links: make(map[PortRef]PortRef),
		Ports: make(map[string][]uint32),
	}
	switches, err := yancfs.ListSwitches(p, region)
	if err != nil {
		return nil, err
	}
	for _, sw := range switches {
		swPath := vfs.Join(region, yancfs.DirSwitches, sw)
		ports, err := yancfs.ListPorts(p, swPath)
		if err != nil {
			continue
		}
		topo.Ports[sw] = ports
		for _, port := range ports {
			portPath := vfs.Join(swPath, "ports", strconv.FormatUint(uint64(port), 10))
			if peerSw, peerPort, ok := yancfs.Peer(p, portPath); ok {
				topo.Links[PortRef{sw, port}] = PortRef{peerSw, peerPort}
			}
		}
	}
	return topo, nil
}

// Switches returns switch names in sorted order.
func (t *Topology) Switches() []string {
	names := make([]string, 0, len(t.Ports))
	for sw := range t.Ports {
		names = append(names, sw)
	}
	sort.Strings(names)
	return names
}

// hop is one step on a path: leave fromSwitch via outPort.
type hop struct {
	sw      string
	outPort uint32
}

// Path computes the shortest switch path from src to dst switch and
// returns, for each switch on the path, the egress port toward dst.
// ok is false when dst is unreachable.
func (t *Topology) Path(src, dst string) (hops []hop, ok bool) {
	if src == dst {
		return nil, true
	}
	type queueEntry struct {
		sw   string
		path []hop
	}
	visited := map[string]bool{src: true}
	queue := []queueEntry{{sw: src}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		// Deterministic iteration: sort the outgoing links.
		var outs []PortRef
		for from := range t.Links {
			if from.Switch == cur.sw {
				outs = append(outs, from)
			}
		}
		sort.Slice(outs, func(i, j int) bool { return outs[i].Port < outs[j].Port })
		for _, from := range outs {
			to := t.Links[from]
			if visited[to.Switch] {
				continue
			}
			visited[to.Switch] = true
			next := append(append([]hop(nil), cur.path...), hop{sw: cur.sw, outPort: from.Port})
			if to.Switch == dst {
				return next, true
			}
			queue = append(queue, queueEntry{sw: to.Switch, path: next})
		}
	}
	return nil, false
}

// HostLocations reads the hosts/ directory into MAC → attachment.
func HostLocations(p *vfs.Proc, region string) (map[ethernet.MAC]PortRef, map[ethernet.IP4]ethernet.MAC, error) {
	locs := make(map[ethernet.MAC]PortRef)
	arps := make(map[ethernet.IP4]ethernet.MAC)
	dir := vfs.Join(region, yancfs.DirHosts)
	entries, err := p.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		base := vfs.Join(dir, e.Name)
		macStr, err := p.ReadString(vfs.Join(base, "mac"))
		if err != nil {
			continue
		}
		mac, err := ethernet.ParseMAC(macStr)
		if err != nil {
			continue
		}
		swName, _ := p.ReadString(vfs.Join(base, "switch"))
		portStr, _ := p.ReadString(vfs.Join(base, "port"))
		port, _ := strconv.ParseUint(strings.TrimSpace(portStr), 10, 32)
		locs[mac] = PortRef{Switch: strings.TrimSpace(swName), Port: uint32(port)}
		if ipStr, err := p.ReadString(vfs.Join(base, "ip")); err == nil {
			if ip, err := ethernet.ParseIP4(ipStr); err == nil {
				arps[ip] = mac
			}
		}
	}
	return locs, arps, nil
}
