package apps

import (
	"fmt"
	"strconv"
	"strings"

	"yanc/internal/openflow"
	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

// FlowPusher is the "simple static flow pusher" of §8: it turns a
// declarative text format into flow-directory writes. The prototype's
// version was a shell script; ours accepts the same shape of input:
//
//	# comment
//	switch=sw1 flow=arp match=dl_type=0x0806 actions=out=flood priority=10
//	switch=sw2 flow=ssh match="dl_type=0x0800,nw_proto=6,tp_dst=22" actions=out=2 idle=30
type FlowPusher struct {
	P      *vfs.Proc
	Region string
}

// NewFlowPusher creates a pusher over a region.
func NewFlowPusher(p *vfs.Proc, region string) *FlowPusher {
	return &FlowPusher{P: p, Region: region}
}

// StaticFlow is one parsed line.
type StaticFlow struct {
	Switch string
	Name   string
	Spec   yancfs.FlowSpec
}

// ParseConfig parses the static flow configuration format.
func ParseConfig(config string) ([]StaticFlow, error) {
	var out []StaticFlow
	for lineNo, line := range strings.Split(config, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sf := StaticFlow{}
		for _, tok := range splitConfigTokens(line) {
			k, v, ok := strings.Cut(tok, "=")
			if !ok {
				return nil, fmt.Errorf("apps: flowpusher line %d: bad token %q", lineNo+1, tok)
			}
			v = strings.Trim(v, `"`)
			switch k {
			case "switch":
				sf.Switch = v
			case "flow":
				sf.Name = v
			case "match":
				m, err := openflow.ParseMatch(v)
				if err != nil {
					return nil, fmt.Errorf("apps: flowpusher line %d: %w", lineNo+1, err)
				}
				sf.Spec.Match = m
			case "actions":
				a, err := openflow.ParseActions(v)
				if err != nil {
					return nil, fmt.Errorf("apps: flowpusher line %d: %w", lineNo+1, err)
				}
				sf.Spec.Actions = a
			case "priority":
				n, err := strconv.ParseUint(v, 10, 16)
				if err != nil {
					return nil, fmt.Errorf("apps: flowpusher line %d: priority %q", lineNo+1, v)
				}
				sf.Spec.Priority = uint16(n)
			case "idle":
				n, err := strconv.ParseUint(v, 10, 16)
				if err != nil {
					return nil, fmt.Errorf("apps: flowpusher line %d: idle %q", lineNo+1, v)
				}
				sf.Spec.IdleTimeout = uint16(n)
			case "hard":
				n, err := strconv.ParseUint(v, 10, 16)
				if err != nil {
					return nil, fmt.Errorf("apps: flowpusher line %d: hard %q", lineNo+1, v)
				}
				sf.Spec.HardTimeout = uint16(n)
			case "cookie":
				n, err := strconv.ParseUint(v, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("apps: flowpusher line %d: cookie %q", lineNo+1, v)
				}
				sf.Spec.Cookie = n
			default:
				return nil, fmt.Errorf("apps: flowpusher line %d: unknown key %q", lineNo+1, k)
			}
		}
		if sf.Switch == "" || sf.Name == "" {
			return nil, fmt.Errorf("apps: flowpusher line %d: switch= and flow= are required", lineNo+1)
		}
		if len(sf.Spec.Actions) == 0 {
			return nil, fmt.Errorf("apps: flowpusher line %d: actions= is required", lineNo+1)
		}
		out = append(out, sf)
	}
	return out, nil
}

// splitConfigTokens splits on spaces outside double quotes.
func splitConfigTokens(line string) []string {
	var toks []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ' ' && !inQuote:
			if cur.Len() > 0 {
				toks = append(toks, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteByte(c)
		}
	}
	if cur.Len() > 0 {
		toks = append(toks, cur.String())
	}
	return toks
}

// Push writes every configured flow; the switch directory must exist
// (a driver creates it when the switch connects). Returns the number of
// flows written.
func (fp *FlowPusher) Push(config string) (int, error) {
	flows, err := ParseConfig(config)
	if err != nil {
		return 0, err
	}
	for i, sf := range flows {
		flowPath := vfs.Join(fp.Region, yancfs.DirSwitches, sf.Switch, "flows", sf.Name)
		if _, err := yancfs.WriteFlow(fp.P, flowPath, sf.Spec); err != nil {
			return i, fmt.Errorf("apps: flowpusher %s/%s: %w", sf.Switch, sf.Name, err)
		}
	}
	return len(flows), nil
}
