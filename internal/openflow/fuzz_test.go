package openflow

import (
	"math/rand"
	"testing"

	"yanc/internal/ethernet"
)

// TestDecodeRandomBytesNeverPanics throws random garbage at both codecs:
// every outcome except a panic is acceptable. A driver reads these bytes
// off the network, so decoder robustness is a security property.
func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	codecs := []Codec{Codec10{}, Codec13{}}
	for i := 0; i < 20000; i++ {
		n := r.Intn(200)
		b := make([]byte, n)
		r.Read(b)
		if n > 0 {
			// Bias toward plausible headers so decoding goes deeper.
			switch i % 3 {
			case 0:
				b[0] = Version10
			case 1:
				b[0] = Version13
			}
			if n >= 4 {
				b[2] = byte(n >> 8)
				b[3] = byte(n)
			}
			if n >= 2 {
				b[1] = byte(r.Intn(22)) // message type range
			}
		}
		for _, c := range codecs {
			_, _ = c.Decode(b) // must not panic
		}
	}
}

// TestDecodeMutatedMessagesNeverPanics flips bytes in valid messages —
// the classic structure-aware mutation pass.
func TestDecodeMutatedMessagesNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var m Match
	for f, v := range map[Field]string{
		FieldInPort: "3", FieldDLType: "0x0800", FieldNWProto: "6",
		FieldNWSrc: "10.0.0.0/24", FieldTPDst: "22",
	} {
		if err := m.SetField(f, v); err != nil {
			t.Fatal(err)
		}
	}
	msgs := []Message{
		&Hello{},
		&FlowMod{Match: m, Actions: []Action{Output(1), {Type: ActSetDLDst}}},
		&PacketIn{InPort: 2, Data: make([]byte, 64)},
		&PacketOut{InPort: 1, Actions: []Action{Output(2)}, Data: make([]byte, 32)},
		&StatsReply{Kind: StatsFlow, Flows: []FlowStats{{Match: m, Actions: []Action{Output(1)}}}},
		&StatsReply{Kind: StatsPortDesc, PortDescs: []PortInfo{{No: 1, Name: "p"}}},
		&PortStatus{Port: PortInfo{No: 1, Name: "x"}},
		&FlowRemoved{Match: m},
		&PortMod{PortNo: 1},
	}
	for _, c := range []Codec{Codec10{}, Codec13{}} {
		for _, msg := range msgs {
			msg.SetXID(1)
			enc, err := c.Encode(msg)
			if err != nil {
				continue // some messages are version-specific
			}
			for trial := 0; trial < 500; trial++ {
				mut := append([]byte(nil), enc...)
				// 1-4 random byte flips (never the version byte, so the
				// right codec stays engaged).
				for k := 0; k < 1+r.Intn(4); k++ {
					pos := 1 + r.Intn(len(mut)-1)
					mut[pos] ^= byte(1 << r.Intn(8))
				}
				_, _ = c.Decode(mut)
				// Truncations too.
				cut := r.Intn(len(mut))
				_, _ = c.Decode(mut[:cut])
			}
		}
	}
}

// TestEthernetDecodersNeverPanic drives the packet library with garbage.
func TestEthernetDecodersNeverPanic(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		b := make([]byte, r.Intn(400))
		r.Read(b)
		if f, err := ethernet.DecodeFrame(b); err == nil {
			_, _ = ethernet.DecodeARP(f.Payload)
			if ip, err := ethernet.DecodeIPv4(f.Payload); err == nil {
				_, _ = ethernet.DecodeTCP(ip.Payload)
				_, _ = ethernet.DecodeUDP(ip.Payload)
				_, _ = ethernet.DecodeICMPEcho(ip.Payload)
				_, _ = ethernet.DecodeDHCP(ip.Payload)
			}
			_, _ = ethernet.DecodeLLDP(f.Payload)
		}
		// ExtractFields is the hot dataplane path.
		_, _ = ExtractFields(b, 1)
	}
}
