package openflow

import (
	"testing"

	"yanc/internal/ethernet"
)

// TestActionFileMatchesStringForm guards the fast ActionFile renderer
// against drifting from the canonical String-based form: the libyanc
// ring writes flows through ActionFile while the file-I/O path goes
// through ActionFileName/ActionFileValue, and the two must stay
// byte-identical for every action kind or the layouts diverge.
func TestActionFileMatchesStringForm(t *testing.T) {
	mac := ethernet.MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x2a}
	ip := ethernet.IP4{10, 1, 2, 3}
	actions := []Action{
		Output(4),
		Output(PortController),
		Output(PortFlood),
		{Type: ActSetVLANID, VLANID: 4094},
		{Type: ActSetVLANPCP, VLANPCP: 7},
		{Type: ActStripVLAN},
		{Type: ActSetDLSrc, DL: mac},
		{Type: ActSetDLDst, DL: mac},
		{Type: ActSetNWSrc, NW: ip},
		{Type: ActSetNWDst, NW: ip},
		{Type: ActSetNWTos, TOS: 16},
		{Type: ActSetTPSrc, TP: 1024},
		{Type: ActSetTPDst, TP: 80},
		{Type: ActionType(99)}, // unknown kind falls back the same way
	}
	for _, a := range actions {
		name, value := a.ActionFile()
		if want := a.ActionFileName(); name != want {
			t.Errorf("%v: ActionFile name = %q, ActionFileName = %q", a, name, want)
		}
		if want := a.ActionFileValue(); value != want {
			t.Errorf("%v: ActionFile value = %q, ActionFileValue = %q", a, value, want)
		}
	}
}

// TestAllocRenderersAllocFree is the dynamic half of the hot-path
// allocation contract. The static half is yancvet's hotalloc analyzer
// (DESIGN.md §11): AppendField, FileName, AppendFileValue and their
// callees are annotated //yancvet:hotalloc, so the analyzer proves the
// shapes can't allocate. This pin catches what the analyzer can't see —
// whatever codegen and the escape analyzer of the current toolchain
// actually do with those shapes. Keep both: neither is redundant.
func TestAllocRenderersAllocFree(t *testing.T) {
	var m Match
	if err := m.SetField(FieldDLSrc, "de:ad:be:ef:00:2a"); err != nil {
		t.Fatal(err)
	}
	if err := m.SetField(FieldNWDst, "10.1.2.0/24"); err != nil {
		t.Fatal(err)
	}
	actions := []Action{
		Output(PortController),
		{Type: ActSetDLDst, DL: ethernet.MAC{1, 2, 3, 4, 5, 6}},
		{Type: ActSetNWTos, TOS: 16},
	}
	buf := make([]byte, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		for _, f := range AllFields {
			buf = m.AppendField(buf[:0], f)
		}
		for _, a := range actions {
			_ = a.FileName()
			buf = a.AppendFileValue(buf[:0])
		}
	})
	if allocs != 0 {
		t.Errorf("renderers allocated %v times per run; want 0 (the //yancvet:hotalloc annotations promise none)", allocs)
	}
}

// TestAppendFieldMatchesFieldString pins the allocation-free AppendField
// renderer to FieldString for every canonical field.
func TestAppendFieldMatchesFieldString(t *testing.T) {
	var m Match
	set := func(f Field, v string) {
		t.Helper()
		if err := m.SetField(f, v); err != nil {
			t.Fatalf("SetField(%v, %q): %v", f, v, err)
		}
	}
	set(FieldInPort, "3")
	set(FieldDLSrc, "de:ad:be:ef:00:2a")
	set(FieldDLDst, "ff:ff:ff:ff:ff:ff")
	set(FieldDLType, "0x0800")
	set(FieldDLVLAN, "4094")
	set(FieldDLVLANPCP, "7")
	set(FieldNWSrc, "10.1.2.0/24")
	set(FieldNWDst, "192.168.0.1")
	set(FieldNWProto, "6")
	set(FieldNWTos, "16")
	set(FieldTPSrc, "1024")
	set(FieldTPDst, "80")
	for _, f := range AllFields {
		got := string(m.AppendField(nil, f))
		if want := m.FieldString(f); got != want {
			t.Errorf("%s: AppendField = %q, FieldString = %q", f.Name(), got, want)
		}
	}
}
