package openflow

import (
	"testing"

	"yanc/internal/ethernet"
)

// TestActionFileMatchesStringForm guards the fast ActionFile renderer
// against drifting from the canonical String-based form: the libyanc
// ring writes flows through ActionFile while the file-I/O path goes
// through ActionFileName/ActionFileValue, and the two must stay
// byte-identical for every action kind or the layouts diverge.
func TestActionFileMatchesStringForm(t *testing.T) {
	mac := ethernet.MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x2a}
	ip := ethernet.IP4{10, 1, 2, 3}
	actions := []Action{
		Output(4),
		Output(PortController),
		Output(PortFlood),
		{Type: ActSetVLANID, VLANID: 4094},
		{Type: ActSetVLANPCP, VLANPCP: 7},
		{Type: ActStripVLAN},
		{Type: ActSetDLSrc, DL: mac},
		{Type: ActSetDLDst, DL: mac},
		{Type: ActSetNWSrc, NW: ip},
		{Type: ActSetNWDst, NW: ip},
		{Type: ActSetNWTos, TOS: 16},
		{Type: ActSetTPSrc, TP: 1024},
		{Type: ActSetTPDst, TP: 80},
		{Type: ActionType(99)}, // unknown kind falls back the same way
	}
	for _, a := range actions {
		name, value := a.ActionFile()
		if want := a.ActionFileName(); name != want {
			t.Errorf("%v: ActionFile name = %q, ActionFileName = %q", a, name, want)
		}
		if want := a.ActionFileValue(); value != want {
			t.Errorf("%v: ActionFile value = %q, ActionFileValue = %q", a, value, want)
		}
	}
}

// TestAppendFieldMatchesFieldString pins the allocation-free AppendField
// renderer to FieldString for every canonical field.
func TestAppendFieldMatchesFieldString(t *testing.T) {
	var m Match
	set := func(f Field, v string) {
		t.Helper()
		if err := m.SetField(f, v); err != nil {
			t.Fatalf("SetField(%v, %q): %v", f, v, err)
		}
	}
	set(FieldInPort, "3")
	set(FieldDLSrc, "de:ad:be:ef:00:2a")
	set(FieldDLDst, "ff:ff:ff:ff:ff:ff")
	set(FieldDLType, "0x0800")
	set(FieldDLVLAN, "4094")
	set(FieldDLVLANPCP, "7")
	set(FieldNWSrc, "10.1.2.0/24")
	set(FieldNWDst, "192.168.0.1")
	set(FieldNWProto, "6")
	set(FieldNWTos, "16")
	set(FieldTPSrc, "1024")
	set(FieldTPDst, "80")
	for _, f := range AllFields {
		got := string(m.AppendField(nil, f))
		if want := m.FieldString(f); got != want {
			t.Errorf("%s: AppendField = %q, FieldString = %q", f.Name(), got, want)
		}
	}
}
