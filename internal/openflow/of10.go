package openflow

import (
	"encoding/binary"
	"fmt"
)

// Protocol version bytes.
const (
	Version10 uint8 = 0x01
	Version13 uint8 = 0x04
)

// ErrBadMessage reports an undecodable wire message.
var ErrBadMessage = fmt.Errorf("openflow: bad message")

// Codec encodes and decodes whole OpenFlow packets (header included) for
// one protocol version. A yanc driver instantiates the codec matching the
// protocol its switches speak (§4.1).
type Codec interface {
	Version() uint8
	Encode(m Message) ([]byte, error)
	Decode(b []byte) (Message, error)
}

// NewCodec returns the codec for a protocol version byte.
func NewCodec(version uint8) (Codec, error) {
	switch version {
	case Version10:
		return Codec10{}, nil
	case Version13:
		return Codec13{}, nil
	default:
		return nil, fmt.Errorf("%w: unsupported version 0x%02x", ErrBadMessage, version)
	}
}

// OF 1.0 wire message types.
const (
	of10Hello          = 0
	of10Error          = 1
	of10EchoRequest    = 2
	of10EchoReply      = 3
	of10FeaturesReq    = 5
	of10FeaturesRep    = 6
	of10PacketIn       = 10
	of10FlowRemoved    = 11
	of10PortStatus     = 12
	of10PacketOut      = 13
	of10FlowMod        = 14
	of10PortMod        = 15
	of10StatsRequest   = 16
	of10StatsReply     = 17
	of10BarrierRequest = 18
	of10BarrierReply   = 19
)

// OF 1.0 wildcard bits.
const (
	fw10InPort     = 1 << 0
	fw10DLVLAN     = 1 << 1
	fw10DLSrc      = 1 << 2
	fw10DLDst      = 1 << 3
	fw10DLType     = 1 << 4
	fw10NWProto    = 1 << 5
	fw10TPSrc      = 1 << 6
	fw10TPDst      = 1 << 7
	fw10NWSrcShift = 8
	fw10NWDstShift = 14
	fw10DLVLANPCP  = 1 << 20
	fw10NWTos      = 1 << 21
	fw10All        = (1 << 22) - 1
)

// Codec10 is the OpenFlow 1.0 wire codec.
type Codec10 struct{}

// Version implements Codec.
func (Codec10) Version() uint8 { return Version10 }

func putHeader(dst []byte, version, typ uint8, xid uint32) []byte {
	dst = append(dst, version, typ, 0, 0) // length patched at the end
	return binary.BigEndian.AppendUint32(dst, xid)
}

func patchLength(b []byte) []byte {
	binary.BigEndian.PutUint16(b[2:4], uint16(len(b)))
	return b
}

func port10(p uint32) uint16 { return uint16(p & 0xffff) }

func port10Up(v uint16) uint32 {
	if v >= 0xff00 {
		return uint32(v) | 0xffff0000
	}
	return uint32(v)
}

// appendMatch10 serializes the 40-byte ofp_match.
func appendMatch10(dst []byte, m *Match) []byte {
	wc := uint32(fw10All)
	clear := func(bit uint32) { wc &^= bit }
	if m.Has(FieldInPort) {
		clear(fw10InPort)
	}
	if m.Has(FieldDLVLAN) {
		clear(fw10DLVLAN)
	}
	if m.Has(FieldDLSrc) {
		clear(fw10DLSrc)
	}
	if m.Has(FieldDLDst) {
		clear(fw10DLDst)
	}
	if m.Has(FieldDLType) {
		clear(fw10DLType)
	}
	if m.Has(FieldNWProto) {
		clear(fw10NWProto)
	}
	if m.Has(FieldTPSrc) {
		clear(fw10TPSrc)
	}
	if m.Has(FieldTPDst) {
		clear(fw10TPDst)
	}
	if m.Has(FieldDLVLANPCP) {
		clear(fw10DLVLANPCP)
	}
	if m.Has(FieldNWTos) {
		clear(fw10NWTos)
	}
	// nw_src/nw_dst wildcard = number of low bits ignored (0 = exact, >=32
	// = fully wildcarded).
	wc &^= uint32(0x3f) << fw10NWSrcShift
	srcIgnore := 32
	if m.Has(FieldNWSrc) {
		srcIgnore = 32 - m.NWSrc.Bits
	}
	wc |= uint32(srcIgnore&0x3f) << fw10NWSrcShift
	wc &^= uint32(0x3f) << fw10NWDstShift
	dstIgnore := 32
	if m.Has(FieldNWDst) {
		dstIgnore = 32 - m.NWDst.Bits
	}
	wc |= uint32(dstIgnore&0x3f) << fw10NWDstShift

	dst = binary.BigEndian.AppendUint32(dst, wc)
	dst = binary.BigEndian.AppendUint16(dst, port10(m.InPort))
	dst = append(dst, m.DLSrc[:]...)
	dst = append(dst, m.DLDst[:]...)
	dst = binary.BigEndian.AppendUint16(dst, m.VLANID)
	dst = append(dst, m.VLANPCP, 0)
	dst = binary.BigEndian.AppendUint16(dst, m.DLType)
	dst = append(dst, m.NWTos, m.NWProto, 0, 0)
	dst = append(dst, m.NWSrc.Addr[:]...)
	dst = append(dst, m.NWDst.Addr[:]...)
	dst = binary.BigEndian.AppendUint16(dst, m.TPSrc)
	dst = binary.BigEndian.AppendUint16(dst, m.TPDst)
	return dst
}

func decodeMatch10(b []byte) (Match, error) {
	var m Match
	if len(b) < 40 {
		return m, fmt.Errorf("%w: match %d bytes", ErrBadMessage, len(b))
	}
	wc := binary.BigEndian.Uint32(b[0:4])
	set := func(bit uint32, f Field) {
		if wc&bit == 0 {
			m.Set |= f
		}
	}
	set(fw10InPort, FieldInPort)
	set(fw10DLVLAN, FieldDLVLAN)
	set(fw10DLSrc, FieldDLSrc)
	set(fw10DLDst, FieldDLDst)
	set(fw10DLType, FieldDLType)
	set(fw10NWProto, FieldNWProto)
	set(fw10TPSrc, FieldTPSrc)
	set(fw10TPDst, FieldTPDst)
	set(fw10DLVLANPCP, FieldDLVLANPCP)
	set(fw10NWTos, FieldNWTos)
	m.InPort = port10Up(binary.BigEndian.Uint16(b[4:6]))
	copy(m.DLSrc[:], b[6:12])
	copy(m.DLDst[:], b[12:18])
	m.VLANID = binary.BigEndian.Uint16(b[18:20])
	m.VLANPCP = b[20]
	m.DLType = binary.BigEndian.Uint16(b[22:24])
	m.NWTos = b[24]
	m.NWProto = b[25]
	srcIgnore := int(wc >> fw10NWSrcShift & 0x3f)
	if srcIgnore < 32 {
		m.Set |= FieldNWSrc
		copy(m.NWSrc.Addr[:], b[28:32])
		m.NWSrc.Bits = 32 - srcIgnore
	}
	dstIgnore := int(wc >> fw10NWDstShift & 0x3f)
	if dstIgnore < 32 {
		m.Set |= FieldNWDst
		copy(m.NWDst.Addr[:], b[32:36])
		m.NWDst.Bits = 32 - dstIgnore
	}
	m.TPSrc = binary.BigEndian.Uint16(b[36:38])
	m.TPDst = binary.BigEndian.Uint16(b[38:40])
	return m, nil
}

// OF 1.0 action type codes.
const (
	at10Output     = 0
	at10SetVLANVID = 1
	at10SetVLANPCP = 2
	at10StripVLAN  = 3
	at10SetDLSrc   = 4
	at10SetDLDst   = 5
	at10SetNWSrc   = 6
	at10SetNWDst   = 7
	at10SetNWTos   = 8
	at10SetTPSrc   = 9
	at10SetTPDst   = 10
)

func appendActions10(dst []byte, actions []Action) []byte {
	for _, a := range actions {
		switch a.Type {
		case ActOutput:
			dst = binary.BigEndian.AppendUint16(dst, at10Output)
			dst = binary.BigEndian.AppendUint16(dst, 8)
			dst = binary.BigEndian.AppendUint16(dst, port10(a.Port))
			dst = binary.BigEndian.AppendUint16(dst, a.MaxLen)
		case ActSetVLANID:
			dst = binary.BigEndian.AppendUint16(dst, at10SetVLANVID)
			dst = binary.BigEndian.AppendUint16(dst, 8)
			dst = binary.BigEndian.AppendUint16(dst, a.VLANID)
			dst = append(dst, 0, 0)
		case ActSetVLANPCP:
			dst = binary.BigEndian.AppendUint16(dst, at10SetVLANPCP)
			dst = binary.BigEndian.AppendUint16(dst, 8)
			dst = append(dst, a.VLANPCP, 0, 0, 0)
		case ActStripVLAN:
			dst = binary.BigEndian.AppendUint16(dst, at10StripVLAN)
			dst = binary.BigEndian.AppendUint16(dst, 8)
			dst = append(dst, 0, 0, 0, 0)
		case ActSetDLSrc, ActSetDLDst:
			code := uint16(at10SetDLSrc)
			if a.Type == ActSetDLDst {
				code = at10SetDLDst
			}
			dst = binary.BigEndian.AppendUint16(dst, code)
			dst = binary.BigEndian.AppendUint16(dst, 16)
			dst = append(dst, a.DL[:]...)
			dst = append(dst, 0, 0, 0, 0, 0, 0)
		case ActSetNWSrc, ActSetNWDst:
			code := uint16(at10SetNWSrc)
			if a.Type == ActSetNWDst {
				code = at10SetNWDst
			}
			dst = binary.BigEndian.AppendUint16(dst, code)
			dst = binary.BigEndian.AppendUint16(dst, 8)
			dst = append(dst, a.NW[:]...)
		case ActSetNWTos:
			dst = binary.BigEndian.AppendUint16(dst, at10SetNWTos)
			dst = binary.BigEndian.AppendUint16(dst, 8)
			dst = append(dst, a.TOS, 0, 0, 0)
		case ActSetTPSrc, ActSetTPDst:
			code := uint16(at10SetTPSrc)
			if a.Type == ActSetTPDst {
				code = at10SetTPDst
			}
			dst = binary.BigEndian.AppendUint16(dst, code)
			dst = binary.BigEndian.AppendUint16(dst, 8)
			dst = binary.BigEndian.AppendUint16(dst, a.TP)
			dst = append(dst, 0, 0)
		}
	}
	return dst
}

func decodeActions10(b []byte) ([]Action, error) {
	var out []Action
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("%w: action header", ErrBadMessage)
		}
		typ := binary.BigEndian.Uint16(b[0:2])
		length := int(binary.BigEndian.Uint16(b[2:4]))
		if length < 8 || length > len(b) {
			return nil, fmt.Errorf("%w: action length %d", ErrBadMessage, length)
		}
		body := b[4:length]
		b = b[length:]
		var a Action
		switch typ {
		case at10Output:
			a = Action{Type: ActOutput, Port: port10Up(binary.BigEndian.Uint16(body[0:2])), MaxLen: binary.BigEndian.Uint16(body[2:4])}
		case at10SetVLANVID:
			a = Action{Type: ActSetVLANID, VLANID: binary.BigEndian.Uint16(body[0:2])}
		case at10SetVLANPCP:
			a = Action{Type: ActSetVLANPCP, VLANPCP: body[0]}
		case at10StripVLAN:
			a = Action{Type: ActStripVLAN}
		case at10SetDLSrc, at10SetDLDst:
			t := ActSetDLSrc
			if typ == at10SetDLDst {
				t = ActSetDLDst
			}
			a = Action{Type: t}
			copy(a.DL[:], body[0:6])
		case at10SetNWSrc, at10SetNWDst:
			t := ActSetNWSrc
			if typ == at10SetNWDst {
				t = ActSetNWDst
			}
			a = Action{Type: t}
			copy(a.NW[:], body[0:4])
		case at10SetNWTos:
			a = Action{Type: ActSetNWTos, TOS: body[0]}
		case at10SetTPSrc, at10SetTPDst:
			t := ActSetTPSrc
			if typ == at10SetTPDst {
				t = ActSetTPDst
			}
			a = Action{Type: t, TP: binary.BigEndian.Uint16(body[0:2])}
		default:
			return nil, fmt.Errorf("%w: action type %d", ErrBadMessage, typ)
		}
		out = append(out, a)
	}
	return out, nil
}

func appendPhyPort10(dst []byte, p PortInfo) []byte {
	dst = binary.BigEndian.AppendUint16(dst, port10(p.No))
	dst = append(dst, p.HWAddr[:]...)
	var name [16]byte
	copy(name[:], p.Name)
	dst = append(dst, name[:]...)
	dst = binary.BigEndian.AppendUint32(dst, p.Config)
	dst = binary.BigEndian.AppendUint32(dst, p.State)
	dst = binary.BigEndian.AppendUint32(dst, p.CurrSpeed) // curr feature word reused for speed
	dst = append(dst, make([]byte, 12)...)                // advertised/supported/peer
	return dst
}

func decodePhyPort10(b []byte) (PortInfo, error) {
	var p PortInfo
	if len(b) < 48 {
		return p, fmt.Errorf("%w: phy port %d bytes", ErrBadMessage, len(b))
	}
	p.No = port10Up(binary.BigEndian.Uint16(b[0:2]))
	copy(p.HWAddr[:], b[2:8])
	p.Name = cString(b[8:24])
	p.Config = binary.BigEndian.Uint32(b[24:28])
	p.State = binary.BigEndian.Uint32(b[28:32])
	p.CurrSpeed = binary.BigEndian.Uint32(b[32:36])
	return p, nil
}

func cString(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}

// Encode implements Codec.
func (c Codec10) Encode(m Message) ([]byte, error) {
	xid := m.XID()
	hdr := func(typ uint8) []byte { return putHeader(make([]byte, 0, 64), Version10, typ, xid) }
	switch msg := m.(type) {
	case *Hello:
		return patchLength(hdr(of10Hello)), nil
	case *Error:
		b := hdr(of10Error)
		b = binary.BigEndian.AppendUint16(b, uint16(msg.Code>>16))
		b = binary.BigEndian.AppendUint16(b, uint16(msg.Code))
		b = append(b, msg.Data...)
		return patchLength(b), nil
	case *EchoRequest:
		return patchLength(append(hdr(of10EchoRequest), msg.Data...)), nil
	case *EchoReply:
		return patchLength(append(hdr(of10EchoReply), msg.Data...)), nil
	case *FeaturesRequest:
		return patchLength(hdr(of10FeaturesReq)), nil
	case *FeaturesReply:
		b := hdr(of10FeaturesRep)
		b = binary.BigEndian.AppendUint64(b, msg.DatapathID)
		b = binary.BigEndian.AppendUint32(b, msg.NBuffers)
		b = append(b, msg.NTables, 0, 0, 0)
		b = binary.BigEndian.AppendUint32(b, msg.Capabilities)
		b = binary.BigEndian.AppendUint32(b, 0xfff) // supported actions
		for _, p := range msg.Ports {
			b = appendPhyPort10(b, p)
		}
		return patchLength(b), nil
	case *PacketIn:
		b := hdr(of10PacketIn)
		b = binary.BigEndian.AppendUint32(b, msg.BufferID)
		b = binary.BigEndian.AppendUint16(b, msg.TotalLen)
		b = binary.BigEndian.AppendUint16(b, port10(msg.InPort))
		b = append(b, msg.Reason, 0)
		b = append(b, msg.Data...)
		return patchLength(b), nil
	case *FlowRemoved:
		b := hdr(of10FlowRemoved)
		b = appendMatch10(b, &msg.Match)
		b = binary.BigEndian.AppendUint64(b, msg.Cookie)
		b = binary.BigEndian.AppendUint16(b, msg.Priority)
		b = append(b, msg.Reason, 0)
		b = binary.BigEndian.AppendUint32(b, msg.DurationSec)
		b = binary.BigEndian.AppendUint32(b, 0) // nsec
		b = append(b, 0, 0, 0, 0)               // idle_timeout + pad
		b = binary.BigEndian.AppendUint64(b, msg.PacketCount)
		b = binary.BigEndian.AppendUint64(b, msg.ByteCount)
		return patchLength(b), nil
	case *PortStatus:
		b := hdr(of10PortStatus)
		b = append(b, msg.Reason, 0, 0, 0, 0, 0, 0, 0)
		b = appendPhyPort10(b, msg.Port)
		return patchLength(b), nil
	case *PacketOut:
		b := hdr(of10PacketOut)
		b = binary.BigEndian.AppendUint32(b, msg.BufferID)
		b = binary.BigEndian.AppendUint16(b, port10(msg.InPort))
		actions := appendActions10(nil, msg.Actions)
		b = binary.BigEndian.AppendUint16(b, uint16(len(actions)))
		b = append(b, actions...)
		b = append(b, msg.Data...)
		return patchLength(b), nil
	case *FlowMod:
		b := hdr(of10FlowMod)
		b = appendMatch10(b, &msg.Match)
		b = binary.BigEndian.AppendUint64(b, msg.Cookie)
		b = binary.BigEndian.AppendUint16(b, uint16(msg.Command))
		b = binary.BigEndian.AppendUint16(b, msg.IdleTimeout)
		b = binary.BigEndian.AppendUint16(b, msg.HardTimeout)
		b = binary.BigEndian.AppendUint16(b, msg.Priority)
		b = binary.BigEndian.AppendUint32(b, msg.BufferID)
		b = binary.BigEndian.AppendUint16(b, port10(msg.OutPort))
		b = binary.BigEndian.AppendUint16(b, msg.Flags)
		b = appendActions10(b, msg.Actions)
		return patchLength(b), nil
	case *PortMod:
		b := hdr(of10PortMod)
		b = binary.BigEndian.AppendUint16(b, port10(msg.PortNo))
		b = append(b, msg.HWAddr[:]...)
		b = binary.BigEndian.AppendUint32(b, msg.Config)
		b = binary.BigEndian.AppendUint32(b, msg.Mask)
		b = binary.BigEndian.AppendUint32(b, 0) // advertise
		b = append(b, 0, 0, 0, 0)
		return patchLength(b), nil
	case *BarrierRequest:
		return patchLength(hdr(of10BarrierRequest)), nil
	case *BarrierReply:
		return patchLength(hdr(of10BarrierReply)), nil
	case *StatsRequest:
		b := hdr(of10StatsRequest)
		b = binary.BigEndian.AppendUint16(b, msg.Kind)
		b = binary.BigEndian.AppendUint16(b, 0) // flags
		switch msg.Kind {
		case StatsFlow:
			b = appendMatch10(b, &msg.Match)
			b = append(b, 0xff, 0) // table_id ALL, pad
			b = binary.BigEndian.AppendUint16(b, port10(PortAny))
		case StatsPort:
			b = binary.BigEndian.AppendUint16(b, port10(msg.Port))
			b = append(b, 0, 0, 0, 0, 0, 0)
		}
		return patchLength(b), nil
	case *StatsReply:
		b := hdr(of10StatsReply)
		b = binary.BigEndian.AppendUint16(b, msg.Kind)
		b = binary.BigEndian.AppendUint16(b, 0)
		switch msg.Kind {
		case StatsFlow:
			for _, fl := range msg.Flows {
				actions := appendActions10(nil, fl.Actions)
				entryLen := 88 + len(actions)
				b = binary.BigEndian.AppendUint16(b, uint16(entryLen))
				b = append(b, fl.TableID, 0)
				b = appendMatch10(b, &fl.Match)
				b = binary.BigEndian.AppendUint32(b, fl.DurationSec)
				b = binary.BigEndian.AppendUint32(b, 0)
				b = binary.BigEndian.AppendUint16(b, fl.Priority)
				b = append(b, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0) // idle, hard, pad6
				b = binary.BigEndian.AppendUint64(b, fl.Cookie)
				b = binary.BigEndian.AppendUint64(b, fl.PacketCount)
				b = binary.BigEndian.AppendUint64(b, fl.ByteCount)
				b = append(b, actions...)
			}
		case StatsPort:
			for _, ps := range msg.Ports {
				b = binary.BigEndian.AppendUint16(b, port10(ps.PortNo))
				b = append(b, 0, 0, 0, 0, 0, 0)
				b = binary.BigEndian.AppendUint64(b, ps.RxPackets)
				b = binary.BigEndian.AppendUint64(b, ps.TxPackets)
				b = binary.BigEndian.AppendUint64(b, ps.RxBytes)
				b = binary.BigEndian.AppendUint64(b, ps.TxBytes)
				b = binary.BigEndian.AppendUint64(b, ps.RxDropped)
				b = binary.BigEndian.AppendUint64(b, ps.TxDropped)
				b = append(b, make([]byte, 48)...) // error counters unused
			}
		}
		return patchLength(b), nil
	}
	return nil, fmt.Errorf("%w: cannot encode %T for OF1.0", ErrBadMessage, m)
}

// Decode implements Codec.
func (c Codec10) Decode(b []byte) (Message, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("%w: short header", ErrBadMessage)
	}
	if b[0] != Version10 {
		return nil, fmt.Errorf("%w: version 0x%02x", ErrBadMessage, b[0])
	}
	typ := b[1]
	length := int(binary.BigEndian.Uint16(b[2:4]))
	if length < 8 || length > len(b) {
		return nil, fmt.Errorf("%w: length %d", ErrBadMessage, length)
	}
	xid := binary.BigEndian.Uint32(b[4:8])
	body := b[8:length]
	h := Header{Xid: xid}
	switch typ {
	case of10Hello:
		return &Hello{Header: h, MaxVersion: Version10}, nil
	case of10Error:
		if len(body) < 4 {
			return nil, fmt.Errorf("%w: error body", ErrBadMessage)
		}
		code := uint32(binary.BigEndian.Uint16(body[0:2]))<<16 | uint32(binary.BigEndian.Uint16(body[2:4]))
		return &Error{Header: h, Code: code, Data: append([]byte(nil), body[4:]...)}, nil
	case of10EchoRequest:
		return &EchoRequest{Header: h, Data: append([]byte(nil), body...)}, nil
	case of10EchoReply:
		return &EchoReply{Header: h, Data: append([]byte(nil), body...)}, nil
	case of10FeaturesReq:
		return &FeaturesRequest{Header: h}, nil
	case of10FeaturesRep:
		if len(body) < 24 {
			return nil, fmt.Errorf("%w: features body", ErrBadMessage)
		}
		msg := &FeaturesReply{Header: h}
		msg.DatapathID = binary.BigEndian.Uint64(body[0:8])
		msg.NBuffers = binary.BigEndian.Uint32(body[8:12])
		msg.NTables = body[12]
		msg.Capabilities = binary.BigEndian.Uint32(body[16:20])
		for rest := body[24:]; len(rest) >= 48; rest = rest[48:] {
			p, err := decodePhyPort10(rest[:48])
			if err != nil {
				return nil, err
			}
			msg.Ports = append(msg.Ports, p)
		}
		return msg, nil
	case of10PacketIn:
		if len(body) < 10 {
			return nil, fmt.Errorf("%w: packet_in body", ErrBadMessage)
		}
		return &PacketIn{
			Header:   h,
			BufferID: binary.BigEndian.Uint32(body[0:4]),
			TotalLen: binary.BigEndian.Uint16(body[4:6]),
			InPort:   port10Up(binary.BigEndian.Uint16(body[6:8])),
			Reason:   body[8],
			Data:     append([]byte(nil), body[10:]...),
		}, nil
	case of10FlowRemoved:
		if len(body) < 80 {
			return nil, fmt.Errorf("%w: flow_removed body", ErrBadMessage)
		}
		m, err := decodeMatch10(body[0:40])
		if err != nil {
			return nil, err
		}
		return &FlowRemoved{
			Header:      h,
			Match:       m,
			Cookie:      binary.BigEndian.Uint64(body[40:48]),
			Priority:    binary.BigEndian.Uint16(body[48:50]),
			Reason:      body[50],
			DurationSec: binary.BigEndian.Uint32(body[52:56]),
			PacketCount: binary.BigEndian.Uint64(body[64:72]),
			ByteCount:   binary.BigEndian.Uint64(body[72:80]),
		}, nil
	case of10PortStatus:
		if len(body) < 56 {
			return nil, fmt.Errorf("%w: port_status body", ErrBadMessage)
		}
		p, err := decodePhyPort10(body[8:56])
		if err != nil {
			return nil, err
		}
		return &PortStatus{Header: h, Reason: body[0], Port: p}, nil
	case of10PacketOut:
		if len(body) < 8 {
			return nil, fmt.Errorf("%w: packet_out body", ErrBadMessage)
		}
		alen := int(binary.BigEndian.Uint16(body[6:8]))
		if 8+alen > len(body) {
			return nil, fmt.Errorf("%w: packet_out actions", ErrBadMessage)
		}
		actions, err := decodeActions10(body[8 : 8+alen])
		if err != nil {
			return nil, err
		}
		return &PacketOut{
			Header:   h,
			BufferID: binary.BigEndian.Uint32(body[0:4]),
			InPort:   port10Up(binary.BigEndian.Uint16(body[4:6])),
			Actions:  actions,
			Data:     append([]byte(nil), body[8+alen:]...),
		}, nil
	case of10FlowMod:
		if len(body) < 64 {
			return nil, fmt.Errorf("%w: flow_mod body", ErrBadMessage)
		}
		m, err := decodeMatch10(body[0:40])
		if err != nil {
			return nil, err
		}
		actions, err := decodeActions10(body[64:])
		if err != nil {
			return nil, err
		}
		return &FlowMod{
			Header:      h,
			Match:       m,
			Cookie:      binary.BigEndian.Uint64(body[40:48]),
			Command:     uint8(binary.BigEndian.Uint16(body[48:50])),
			IdleTimeout: binary.BigEndian.Uint16(body[50:52]),
			HardTimeout: binary.BigEndian.Uint16(body[52:54]),
			Priority:    binary.BigEndian.Uint16(body[54:56]),
			BufferID:    binary.BigEndian.Uint32(body[56:60]),
			OutPort:     port10Up(binary.BigEndian.Uint16(body[60:62])),
			Flags:       binary.BigEndian.Uint16(body[62:64]),
			Actions:     actions,
		}, nil
	case of10PortMod:
		if len(body) < 24 {
			return nil, fmt.Errorf("%w: port_mod body", ErrBadMessage)
		}
		msg := &PortMod{Header: h, PortNo: port10Up(binary.BigEndian.Uint16(body[0:2]))}
		copy(msg.HWAddr[:], body[2:8])
		msg.Config = binary.BigEndian.Uint32(body[8:12])
		msg.Mask = binary.BigEndian.Uint32(body[12:16])
		return msg, nil
	case of10BarrierRequest:
		return &BarrierRequest{Header: h}, nil
	case of10BarrierReply:
		return &BarrierReply{Header: h}, nil
	case of10StatsRequest:
		if len(body) < 4 {
			return nil, fmt.Errorf("%w: stats_request body", ErrBadMessage)
		}
		msg := &StatsRequest{Header: h, Kind: binary.BigEndian.Uint16(body[0:2])}
		rest := body[4:]
		switch msg.Kind {
		case StatsFlow:
			if len(rest) < 44 {
				return nil, fmt.Errorf("%w: flow stats request", ErrBadMessage)
			}
			m, err := decodeMatch10(rest[0:40])
			if err != nil {
				return nil, err
			}
			msg.Match = m
		case StatsPort:
			if len(rest) < 2 {
				return nil, fmt.Errorf("%w: port stats request", ErrBadMessage)
			}
			msg.Port = port10Up(binary.BigEndian.Uint16(rest[0:2]))
		}
		return msg, nil
	case of10StatsReply:
		if len(body) < 4 {
			return nil, fmt.Errorf("%w: stats_reply body", ErrBadMessage)
		}
		msg := &StatsReply{Header: h, Kind: binary.BigEndian.Uint16(body[0:2])}
		rest := body[4:]
		switch msg.Kind {
		case StatsFlow:
			for len(rest) >= 88 {
				entryLen := int(binary.BigEndian.Uint16(rest[0:2]))
				if entryLen < 88 || entryLen > len(rest) {
					return nil, fmt.Errorf("%w: flow stats entry", ErrBadMessage)
				}
				var fl FlowStats
				fl.TableID = rest[2]
				m, err := decodeMatch10(rest[4:44])
				if err != nil {
					return nil, err
				}
				fl.Match = m
				fl.DurationSec = binary.BigEndian.Uint32(rest[44:48])
				fl.Priority = binary.BigEndian.Uint16(rest[52:54])
				fl.Cookie = binary.BigEndian.Uint64(rest[64:72])
				fl.PacketCount = binary.BigEndian.Uint64(rest[72:80])
				fl.ByteCount = binary.BigEndian.Uint64(rest[80:88])
				actions, err := decodeActions10(rest[88:entryLen])
				if err != nil {
					return nil, err
				}
				fl.Actions = actions
				msg.Flows = append(msg.Flows, fl)
				rest = rest[entryLen:]
			}
		case StatsPort:
			for len(rest) >= 104 {
				var ps PortStats
				ps.PortNo = port10Up(binary.BigEndian.Uint16(rest[0:2]))
				ps.RxPackets = binary.BigEndian.Uint64(rest[8:16])
				ps.TxPackets = binary.BigEndian.Uint64(rest[16:24])
				ps.RxBytes = binary.BigEndian.Uint64(rest[24:32])
				ps.TxBytes = binary.BigEndian.Uint64(rest[32:40])
				ps.RxDropped = binary.BigEndian.Uint64(rest[40:48])
				ps.TxDropped = binary.BigEndian.Uint64(rest[48:56])
				msg.Ports = append(msg.Ports, ps)
				rest = rest[104:]
			}
		}
		return msg, nil
	}
	return nil, fmt.Errorf("%w: type %d", ErrBadMessage, typ)
}
