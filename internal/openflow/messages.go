// Package openflow implements the OpenFlow control protocol: a
// version-neutral message model plus wire codecs for OpenFlow 1.0 and an
// OpenFlow 1.3 subset (OXM matches, instructions). Drivers translate
// between these messages and the yanc file system; the simulated switches
// speak the same bytes a hardware switch would.
//
// Encoding follows the gopacket idiom: AppendTo/Decode functions over
// byte slices, big-endian, no reflection.
package openflow

import (
	"fmt"
	"strconv"
	"strings"

	"yanc/internal/ethernet"
)

// MsgType is the version-neutral message discriminator.
type MsgType uint8

// Message kinds shared by both protocol versions.
const (
	MsgHello MsgType = iota
	MsgError
	MsgEchoRequest
	MsgEchoReply
	MsgFeaturesRequest
	MsgFeaturesReply
	MsgPacketIn
	MsgFlowRemoved
	MsgPortStatus
	MsgPacketOut
	MsgFlowMod
	MsgBarrierRequest
	MsgBarrierReply
	MsgStatsRequest
	MsgStatsReply
	MsgPortMod
)

func (t MsgType) String() string {
	names := [...]string{
		"HELLO", "ERROR", "ECHO_REQUEST", "ECHO_REPLY",
		"FEATURES_REQUEST", "FEATURES_REPLY", "PACKET_IN", "FLOW_REMOVED",
		"PORT_STATUS", "PACKET_OUT", "FLOW_MOD",
		"BARRIER_REQUEST", "BARRIER_REPLY", "STATS_REQUEST", "STATS_REPLY",
		"PORT_MOD",
	}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("MSG(%d)", uint8(t))
}

// Message is any OpenFlow message in the neutral model.
type Message interface {
	Type() MsgType
	XID() uint32
	SetXID(uint32)
}

// Header carries the transaction id every message has.
type Header struct {
	Xid uint32
}

// XID returns the transaction id.
func (h *Header) XID() uint32 { return h.Xid }

// SetXID sets the transaction id.
func (h *Header) SetXID(x uint32) { h.Xid = x }

// Hello opens the version negotiation.
type Hello struct {
	Header
	// MaxVersion is the highest protocol version the sender supports
	// (the header version byte on the wire).
	MaxVersion uint8
}

// Type implements Message.
func (*Hello) Type() MsgType { return MsgHello }

// Error reports a protocol error.
type Error struct {
	Header
	Code uint32 // encoded as type<<16|code on the wire
	Data []byte
}

// Type implements Message.
func (*Error) Type() MsgType { return MsgError }

// EchoRequest is a liveness probe.
type EchoRequest struct {
	Header
	Data []byte
}

// Type implements Message.
func (*EchoRequest) Type() MsgType { return MsgEchoRequest }

// EchoReply answers an EchoRequest.
type EchoReply struct {
	Header
	Data []byte
}

// Type implements Message.
func (*EchoReply) Type() MsgType { return MsgEchoReply }

// FeaturesRequest asks for the switch datapath description.
type FeaturesRequest struct{ Header }

// Type implements Message.
func (*FeaturesRequest) Type() MsgType { return MsgFeaturesRequest }

// PortConfig bits (subset shared between versions).
const (
	PortConfigDown  uint32 = 1 << 0
	PortConfigNoRx  uint32 = 1 << 2
	PortConfigNoFwd uint32 = 1 << 5
)

// PortState bits.
const (
	PortStateLinkDown uint32 = 1 << 0
)

// PortInfo describes one switch port.
type PortInfo struct {
	No        uint32
	HWAddr    ethernet.MAC
	Name      string
	Config    uint32
	State     uint32
	CurrSpeed uint32 // kbps
}

// FeaturesReply describes the datapath. In OF 1.0 ports ride along; in
// OF 1.3 they are fetched via a PortDesc stats request, and the codec
// performs that split transparently.
type FeaturesReply struct {
	Header
	DatapathID   uint64
	NBuffers     uint32
	NTables      uint8
	Capabilities uint32
	Ports        []PortInfo // empty on the wire for OF 1.3
}

// Type implements Message.
func (*FeaturesReply) Type() MsgType { return MsgFeaturesReply }

// PacketIn reasons.
const (
	ReasonNoMatch = 0
	ReasonAction  = 1
)

// PacketIn delivers a packet (or its prefix) to the controller.
type PacketIn struct {
	Header
	BufferID uint32
	TotalLen uint16
	InPort   uint32
	TableID  uint8
	Reason   uint8
	Data     []byte
}

// Type implements Message.
func (*PacketIn) Type() MsgType { return MsgPacketIn }

// Flow-removed reasons.
const (
	RemovedIdleTimeout = 0
	RemovedHardTimeout = 1
	RemovedDelete      = 2
)

// FlowRemoved notifies that a flow expired or was deleted.
type FlowRemoved struct {
	Header
	Match       Match
	Cookie      uint64
	Priority    uint16
	Reason      uint8
	TableID     uint8
	DurationSec uint32
	PacketCount uint64
	ByteCount   uint64
}

// Type implements Message.
func (*FlowRemoved) Type() MsgType { return MsgFlowRemoved }

// Port-status reasons.
const (
	PortAdded    = 0
	PortDeleted  = 1
	PortModified = 2
)

// PortStatus reports a port change.
type PortStatus struct {
	Header
	Reason uint8
	Port   PortInfo
}

// Type implements Message.
func (*PortStatus) Type() MsgType { return MsgPortStatus }

// PacketOut injects a packet into the dataplane.
type PacketOut struct {
	Header
	BufferID uint32
	InPort   uint32
	Actions  []Action
	Data     []byte
}

// ParsePacketOutSpec parses the one-line packet-out header shared by the
// packet_out control file and the libyanc spool path:
// "out=<port>[,<more actions>] [in_port=<n>] [buffer_id=<id>]".
// The returned message has no payload; callers attach Data themselves.
func ParsePacketOutSpec(head string) (*PacketOut, error) {
	po := &PacketOut{
		BufferID: NoBuffer,
		InPort:   PortController,
	}
	for _, tok := range strings.Fields(head) {
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			return nil, fmt.Errorf("openflow: packet_out: bad token %q", tok)
		}
		switch k {
		case "in_port":
			n, err := strconv.ParseUint(v, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("openflow: packet_out in_port %q: %w", v, err)
			}
			po.InPort = uint32(n)
		case "buffer_id":
			n, err := strconv.ParseUint(v, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("openflow: packet_out buffer_id %q: %w", v, err)
			}
			po.BufferID = uint32(n)
		default:
			a, err := ParseAction(k, v)
			if err != nil {
				return nil, err
			}
			po.Actions = append(po.Actions, a)
		}
	}
	if len(po.Actions) == 0 {
		return nil, fmt.Errorf("openflow: packet_out needs an action")
	}
	return po, nil
}

// Type implements Message.
func (*PacketOut) Type() MsgType { return MsgPacketOut }

// Flow-mod commands.
const (
	FlowAdd          = 0
	FlowModify       = 1
	FlowModifyStrict = 2
	FlowDelete       = 3
	FlowDeleteStrict = 4
)

// Flow-mod flags.
const (
	FlagSendFlowRem uint16 = 1 << 0
)

// FlowMod installs, modifies, or deletes flow entries.
type FlowMod struct {
	Header
	TableID     uint8 // OF 1.3 only; 0 under OF 1.0
	Command     uint8
	Match       Match
	Cookie      uint64
	IdleTimeout uint16
	HardTimeout uint16
	Priority    uint16
	BufferID    uint32
	OutPort     uint32
	Flags       uint16
	Actions     []Action
}

// Type implements Message.
func (*FlowMod) Type() MsgType { return MsgFlowMod }

// PortMod changes a port's configuration; the driver sends one when an
// administrator writes a port's config.port_down file.
type PortMod struct {
	Header
	PortNo uint32
	HWAddr ethernet.MAC
	Config uint32
	Mask   uint32
}

// Type implements Message.
func (*PortMod) Type() MsgType { return MsgPortMod }

// BarrierRequest forces ordering.
type BarrierRequest struct{ Header }

// Type implements Message.
func (*BarrierRequest) Type() MsgType { return MsgBarrierRequest }

// BarrierReply acknowledges a BarrierRequest.
type BarrierReply struct{ Header }

// Type implements Message.
func (*BarrierReply) Type() MsgType { return MsgBarrierReply }

// Stats kinds (neutral). The values match the OF 1.3 multipart types;
// OF 1.0 shares the Flow and Port values and has no PortDesc (ports ride
// in its FeaturesReply instead).
const (
	StatsFlow     = 1
	StatsPort     = 4
	StatsPortDesc = 13
)

// StatsRequest asks for flow or port statistics.
type StatsRequest struct {
	Header
	Kind  uint16
	Match Match  // for StatsFlow
	Port  uint32 // for StatsPort; PortAny = all
}

// Type implements Message.
func (*StatsRequest) Type() MsgType { return MsgStatsRequest }

// FlowStats is one flow's counters.
type FlowStats struct {
	TableID     uint8
	Match       Match
	Priority    uint16
	Cookie      uint64
	DurationSec uint32
	PacketCount uint64
	ByteCount   uint64
	Actions     []Action
}

// PortStats is one port's counters.
type PortStats struct {
	PortNo    uint32
	RxPackets uint64
	TxPackets uint64
	RxBytes   uint64
	TxBytes   uint64
	RxDropped uint64
	TxDropped uint64
}

// StatsReply carries statistics.
type StatsReply struct {
	Header
	Kind      uint16
	Flows     []FlowStats
	Ports     []PortStats
	PortDescs []PortInfo // StatsPortDesc (OF 1.3)
}

// Type implements Message.
func (*StatsReply) Type() MsgType { return MsgStatsReply }
