package openflow

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// maxMessageSize bounds a single OpenFlow message (the 16-bit length field
// allows 65535; we accept exactly that).
const maxMessageSize = 0xffff

// Conn frames OpenFlow messages over a byte stream. It is safe for one
// concurrent reader and any number of writers.
type Conn struct {
	rw      io.ReadWriter
	br      *bufio.Reader
	codec   Codec
	writeMu sync.Mutex
	nextXID atomic.Uint32
	closer  io.Closer
}

// NewConn wraps a stream. The codec is chosen during Handshake; callers
// that skip handshaking must call SetCodec.
func NewConn(rw io.ReadWriter) *Conn {
	c := &Conn{rw: rw, br: bufio.NewReaderSize(rw, 1<<16)}
	if cl, ok := rw.(io.Closer); ok {
		c.closer = cl
	}
	return c
}

// SetCodec fixes the protocol version codec.
func (c *Conn) SetCodec(codec Codec) { c.codec = codec }

// Codec returns the negotiated codec (nil before handshake).
func (c *Conn) Codec() Codec { return c.codec }

// Version returns the negotiated wire version (0 before handshake).
func (c *Conn) Version() uint8 {
	if c.codec == nil {
		return 0
	}
	return c.codec.Version()
}

// NewXID allocates a fresh transaction id.
func (c *Conn) NewXID() uint32 { return c.nextXID.Add(1) }

// ReadRaw reads one whole framed message (header + body) without
// decoding it.
func (c *Conn) ReadRaw() ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, err
	}
	length := int(binary.BigEndian.Uint16(hdr[2:4]))
	if length < 8 || length > maxMessageSize {
		return nil, fmt.Errorf("%w: frame length %d", ErrBadMessage, length)
	}
	buf := make([]byte, length)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(c.br, buf[8:]); err != nil {
		return nil, err
	}
	return buf, nil
}

// Read reads and decodes the next message.
func (c *Conn) Read() (Message, error) {
	raw, err := c.ReadRaw()
	if err != nil {
		return nil, err
	}
	return c.Decode(raw)
}

// Decode decodes one already-framed message with the negotiated codec,
// falling back to the frame's own version byte exactly as Read does.
// Callers that take over framing (the driver's multiplexed poller reads
// raw frames off the socket) decode through this so version-mismatch
// handling stays in one place.
func (c *Conn) Decode(raw []byte) (Message, error) {
	if len(raw) < 8 {
		return nil, fmt.Errorf("%w: short frame", ErrBadMessage)
	}
	if c.codec == nil || raw[0] != c.codec.Version() {
		codec, err := NewCodec(raw[0])
		if err != nil {
			return nil, err
		}
		return codec.Decode(raw)
	}
	return c.codec.Decode(raw)
}

// TakeBuffered drains and returns whatever bytes are sitting unread in
// the connection's read buffer. A caller that switches from Conn.Read to
// reading the underlying file descriptor directly (after the handshake)
// must consume these first: the handshake's buffered reader may have
// slurped the start of the next message.
func (c *Conn) TakeBuffered() []byte {
	n := c.br.Buffered()
	if n == 0 {
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(c.br, b); err != nil {
		return nil
	}
	return b
}

// Write encodes and sends a message, assigning an xid if none is set.
func (c *Conn) Write(m Message) error {
	if c.codec == nil {
		return fmt.Errorf("%w: no codec negotiated", ErrBadMessage)
	}
	if m.XID() == 0 {
		m.SetXID(c.NewXID())
	}
	b, err := c.codec.Encode(m)
	if err != nil {
		return err
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	_, err = c.rw.Write(b)
	return err
}

// Close closes the underlying stream if it supports closing.
func (c *Conn) Close() error {
	if c.closer != nil {
		return c.closer.Close()
	}
	return nil
}

// negotiate picks the common version: min(ours, theirs), which is correct
// for OpenFlow's version-field negotiation.
func negotiate(ours, theirs uint8) (Codec, error) {
	v := ours
	if theirs < v {
		v = theirs
	}
	return NewCodec(v)
}

// HandshakeController performs the controller-side handshake: exchange
// HELLO, negotiate the version, request features, and (for OF 1.3) fetch
// the port descriptions so the returned FeaturesReply always carries
// ports. This is exactly the sequence a yanc driver runs when a switch
// connects.
func (c *Conn) HandshakeController(maxVersion uint8) (*FeaturesReply, error) {
	tmp, err := NewCodec(maxVersion)
	if err != nil {
		return nil, err
	}
	c.codec = tmp
	// Both peers send HELLO immediately; send concurrently with the read
	// so unbuffered transports (net.Pipe) cannot deadlock.
	helloErr := make(chan error, 1)
	go func() { helloErr <- c.Write(&Hello{MaxVersion: maxVersion}) }()
	msg, err := c.Read()
	if err != nil {
		return nil, err
	}
	if err := <-helloErr; err != nil {
		return nil, err
	}
	hello, ok := msg.(*Hello)
	if !ok {
		return nil, fmt.Errorf("%w: expected HELLO, got %v", ErrBadMessage, msg.Type())
	}
	codec, err := negotiate(maxVersion, hello.MaxVersion)
	if err != nil {
		return nil, err
	}
	c.codec = codec
	if err := c.Write(&FeaturesRequest{}); err != nil {
		return nil, err
	}
	var features *FeaturesReply
	for features == nil {
		msg, err := c.Read()
		if err != nil {
			return nil, err
		}
		switch m := msg.(type) {
		case *FeaturesReply:
			features = m
		case *EchoRequest:
			if err := c.Write(&EchoReply{Header: Header{Xid: m.Xid}, Data: m.Data}); err != nil {
				return nil, err
			}
		default:
			// Ignore anything else during handshake.
		}
	}
	if codec.Version() >= Version13 && len(features.Ports) == 0 {
		if err := c.Write(&StatsRequest{Kind: StatsPortDesc}); err != nil {
			return nil, err
		}
		for {
			msg, err := c.Read()
			if err != nil {
				return nil, err
			}
			if rep, ok := msg.(*StatsReply); ok && rep.Kind == StatsPortDesc {
				features.Ports = rep.PortDescs
				break
			}
		}
	}
	return features, nil
}

// HandshakeSwitch performs the switch-side handshake: exchange HELLO,
// negotiate, then answer the features request with the supplied reply
// (and, under OF 1.3, answer the follow-up port-desc request). The
// simulated datapath calls this when it connects to a controller.
func (c *Conn) HandshakeSwitch(maxVersion uint8, features *FeaturesReply) error {
	tmp, err := NewCodec(maxVersion)
	if err != nil {
		return err
	}
	c.codec = tmp
	helloErr := make(chan error, 1)
	go func() { helloErr <- c.Write(&Hello{MaxVersion: maxVersion}) }()
	msg, err := c.Read()
	if err != nil {
		return err
	}
	if err := <-helloErr; err != nil {
		return err
	}
	hello, ok := msg.(*Hello)
	if !ok {
		return fmt.Errorf("%w: expected HELLO, got %v", ErrBadMessage, msg.Type())
	}
	codec, err := negotiate(maxVersion, hello.MaxVersion)
	if err != nil {
		return err
	}
	c.codec = codec
	for {
		msg, err := c.Read()
		if err != nil {
			return err
		}
		if _, ok := msg.(*FeaturesRequest); ok {
			reply := *features
			reply.Xid = msg.XID()
			if err := c.Write(&reply); err != nil {
				return err
			}
			break
		}
	}
	if codec.Version() >= Version13 {
		// The controller asks for port descriptions next; answer once.
		msg, err := c.Read()
		if err != nil {
			return err
		}
		if req, ok := msg.(*StatsRequest); ok && req.Kind == StatsPortDesc {
			rep := &StatsReply{Kind: StatsPortDesc, PortDescs: features.Ports}
			rep.Xid = msg.XID()
			return c.Write(rep)
		}
	}
	return nil
}
