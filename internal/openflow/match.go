package openflow

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"yanc/internal/ethernet"
)

// Field identifies one matchable header field. The names mirror the
// match.* file names in the yanc flow representation (§3.4).
type Field uint16

// Match fields.
const (
	FieldInPort Field = 1 << iota
	FieldDLSrc
	FieldDLDst
	FieldDLType
	FieldDLVLAN
	FieldDLVLANPCP
	FieldNWTos
	FieldNWProto
	FieldNWSrc
	FieldNWDst
	FieldTPSrc
	FieldTPDst
)

var fieldNames = map[Field]string{
	FieldInPort:    "in_port",
	FieldDLSrc:     "dl_src",
	FieldDLDst:     "dl_dst",
	FieldDLType:    "dl_type",
	FieldDLVLAN:    "dl_vlan",
	FieldDLVLANPCP: "dl_vlan_pcp",
	FieldNWTos:     "nw_tos",
	FieldNWProto:   "nw_proto",
	FieldNWSrc:     "nw_src",
	FieldNWDst:     "nw_dst",
	FieldTPSrc:     "tp_src",
	FieldTPDst:     "tp_dst",
}

// AllFields lists every field in canonical order.
var AllFields = []Field{
	FieldInPort, FieldDLSrc, FieldDLDst, FieldDLType, FieldDLVLAN,
	FieldDLVLANPCP, FieldNWTos, FieldNWProto, FieldNWSrc, FieldNWDst,
	FieldTPSrc, FieldTPDst,
}

// Name returns the yanc file-name spelling of the field ("nw_src").
func (f Field) Name() string { return fieldNames[f] }

// FieldByName resolves a yanc match file name to its Field.
func FieldByName(name string) (Field, bool) {
	for f, n := range fieldNames {
		if n == name {
			return f, true
		}
	}
	return 0, false
}

// Match is the version-neutral flow match. Set records which fields
// participate; absence of a field means wildcard, exactly as the absence
// of a match.* file does in the file system (§3.4).
type Match struct {
	Set     Field
	InPort  uint32
	DLSrc   ethernet.MAC
	DLDst   ethernet.MAC
	DLType  uint16
	VLANID  uint16
	VLANPCP uint8
	NWTos   uint8
	NWProto uint8
	NWSrc   ethernet.Prefix
	NWDst   ethernet.Prefix
	TPSrc   uint16
	TPDst   uint16
}

// Has reports whether field f participates in the match.
//
//yancvet:hotalloc
func (m *Match) Has(f Field) bool { return m.Set&f != 0 }

// IsWildcardAll reports whether the match matches everything.
func (m *Match) IsWildcardAll() bool { return m.Set == 0 }

// SetField assigns a field from its yanc string representation, the same
// parsing a driver performs when reading match.* files.
func (m *Match) SetField(f Field, value string) error {
	value = strings.TrimSpace(value)
	switch f {
	case FieldInPort:
		v, err := strconv.ParseUint(value, 10, 32)
		if err != nil {
			return fmt.Errorf("openflow: in_port %q: %w", value, err)
		}
		m.InPort = uint32(v)
	case FieldDLSrc, FieldDLDst:
		mac, err := ethernet.ParseMAC(value)
		if err != nil {
			return err
		}
		if f == FieldDLSrc {
			m.DLSrc = mac
		} else {
			m.DLDst = mac
		}
	case FieldDLType:
		v, err := parseUintAuto(value, 16)
		if err != nil {
			return fmt.Errorf("openflow: dl_type %q: %w", value, err)
		}
		m.DLType = uint16(v)
	case FieldDLVLAN:
		v, err := strconv.ParseUint(value, 10, 12)
		if err != nil {
			return fmt.Errorf("openflow: dl_vlan %q: %w", value, err)
		}
		m.VLANID = uint16(v)
	case FieldDLVLANPCP:
		v, err := strconv.ParseUint(value, 10, 3)
		if err != nil {
			return fmt.Errorf("openflow: dl_vlan_pcp %q: %w", value, err)
		}
		m.VLANPCP = uint8(v)
	case FieldNWTos:
		v, err := strconv.ParseUint(value, 10, 8)
		if err != nil {
			return fmt.Errorf("openflow: nw_tos %q: %w", value, err)
		}
		m.NWTos = uint8(v)
	case FieldNWProto:
		v, err := strconv.ParseUint(value, 10, 8)
		if err != nil {
			return fmt.Errorf("openflow: nw_proto %q: %w", value, err)
		}
		m.NWProto = uint8(v)
	case FieldNWSrc, FieldNWDst:
		p, err := ethernet.ParsePrefix(value)
		if err != nil {
			return err
		}
		if f == FieldNWSrc {
			m.NWSrc = p
		} else {
			m.NWDst = p
		}
	case FieldTPSrc, FieldTPDst:
		v, err := strconv.ParseUint(value, 10, 16)
		if err != nil {
			return fmt.Errorf("openflow: tp port %q: %w", value, err)
		}
		if f == FieldTPSrc {
			m.TPSrc = uint16(v)
		} else {
			m.TPDst = uint16(v)
		}
	default:
		return fmt.Errorf("openflow: unknown match field %v", f)
	}
	m.Set |= f
	return nil
}

// FieldString renders a participating field back to its yanc file value.
func (m *Match) FieldString(f Field) string {
	switch f {
	case FieldInPort:
		return strconv.FormatUint(uint64(m.InPort), 10)
	case FieldDLSrc:
		return m.DLSrc.String()
	case FieldDLDst:
		return m.DLDst.String()
	case FieldDLType:
		return fmt.Sprintf("0x%04x", m.DLType)
	case FieldDLVLAN:
		return strconv.FormatUint(uint64(m.VLANID), 10)
	case FieldDLVLANPCP:
		return strconv.FormatUint(uint64(m.VLANPCP), 10)
	case FieldNWTos:
		return strconv.FormatUint(uint64(m.NWTos), 10)
	case FieldNWProto:
		return strconv.FormatUint(uint64(m.NWProto), 10)
	case FieldNWSrc:
		return m.NWSrc.String()
	case FieldNWDst:
		return m.NWDst.String()
	case FieldTPSrc:
		return strconv.FormatUint(uint64(m.TPSrc), 10)
	case FieldTPDst:
		return strconv.FormatUint(uint64(m.TPDst), 10)
	}
	return ""
}

// AppendField appends the FieldString rendering of f to dst and returns
// the extended slice. Bulk writers (the libyanc ring's flow renderer)
// use this to build every field value in one arena instead of one
// string allocation per field.
//
//yancvet:hotalloc
func (m *Match) AppendField(dst []byte, f Field) []byte {
	switch f {
	case FieldInPort:
		return strconv.AppendUint(dst, uint64(m.InPort), 10)
	case FieldDLSrc:
		return m.DLSrc.AppendString(dst)
	case FieldDLDst:
		return m.DLDst.AppendString(dst)
	case FieldDLType:
		dst = append(dst, '0', 'x')
		for shift := 12; shift >= 0; shift -= 4 {
			dst = append(dst, "0123456789abcdef"[m.DLType>>shift&0xf])
		}
		return dst
	case FieldDLVLAN:
		return strconv.AppendUint(dst, uint64(m.VLANID), 10)
	case FieldDLVLANPCP:
		return strconv.AppendUint(dst, uint64(m.VLANPCP), 10)
	case FieldNWTos:
		return strconv.AppendUint(dst, uint64(m.NWTos), 10)
	case FieldNWProto:
		return strconv.AppendUint(dst, uint64(m.NWProto), 10)
	case FieldNWSrc:
		return m.NWSrc.AppendString(dst)
	case FieldNWDst:
		return m.NWDst.AppendString(dst)
	case FieldTPSrc:
		return strconv.AppendUint(dst, uint64(m.TPSrc), 10)
	case FieldTPDst:
		return strconv.AppendUint(dst, uint64(m.TPDst), 10)
	}
	return dst
}

// String renders the match in a stable, human-readable form.
func (m Match) String() string {
	if m.Set == 0 {
		return "*"
	}
	var parts []string
	for _, f := range AllFields {
		if m.Has(f) {
			parts = append(parts, f.Name()+"="+m.FieldString(f))
		}
	}
	return strings.Join(parts, ",")
}

// Key returns a canonical identity string: two matches with the same key
// match exactly the same packets. Used for strict flow-mod matching.
func (m Match) Key() string { return m.String() }

// Equal reports whether two matches are identical.
func (m Match) Equal(o Match) bool { return m.Key() == o.Key() }

// Covers reports whether every packet matched by o is matched by m
// (m is equal to or strictly more general than o). Used by non-strict
// flow delete and by the slicer to confine view flows.
func (m Match) Covers(o Match) bool {
	for _, f := range AllFields {
		if !m.Has(f) {
			continue
		}
		if !o.Has(f) {
			return false
		}
		switch f {
		case FieldNWSrc, FieldNWDst:
			mp, op := m.NWSrc, o.NWSrc
			if f == FieldNWDst {
				mp, op = m.NWDst, o.NWDst
			}
			if op.Bits < mp.Bits || !mp.Contains(op.Addr) {
				return false
			}
		default:
			if m.FieldString(f) != o.FieldString(f) {
				return false
			}
		}
	}
	return true
}

// MatchesPacket reports whether a parsed packet satisfies the match.
func (m *Match) MatchesPacket(pkt *PacketFields) bool {
	if m.Has(FieldInPort) && m.InPort != pkt.InPort {
		return false
	}
	if m.Has(FieldDLSrc) && m.DLSrc != pkt.DLSrc {
		return false
	}
	if m.Has(FieldDLDst) && m.DLDst != pkt.DLDst {
		return false
	}
	if m.Has(FieldDLVLAN) && m.VLANID != pkt.VLANID {
		return false
	}
	if m.Has(FieldDLVLANPCP) && m.VLANPCP != pkt.VLANPCP {
		return false
	}
	if m.Has(FieldDLType) && m.DLType != pkt.DLType {
		return false
	}
	if m.Has(FieldNWTos) && m.NWTos != pkt.NWTos {
		return false
	}
	if m.Has(FieldNWProto) && m.NWProto != pkt.NWProto {
		return false
	}
	if m.Has(FieldNWSrc) && !m.NWSrc.Contains(pkt.NWSrc) {
		return false
	}
	if m.Has(FieldNWDst) && !m.NWDst.Contains(pkt.NWDst) {
		return false
	}
	if m.Has(FieldTPSrc) && m.TPSrc != pkt.TPSrc {
		return false
	}
	if m.Has(FieldTPDst) && m.TPDst != pkt.TPDst {
		return false
	}
	return true
}

// Intersect returns the match satisfied exactly by packets matching both
// a and b — the operation a slicer uses to confine a view's flows to its
// header space (§4.2). It fails when the two are disjoint (a flow outside
// the slice).
func Intersect(a, b Match) (Match, error) {
	out := a
	for _, f := range AllFields {
		if !b.Has(f) {
			continue
		}
		if !a.Has(f) {
			// Adopt b's constraint.
			switch f {
			case FieldNWSrc:
				out.NWSrc = b.NWSrc
			case FieldNWDst:
				out.NWDst = b.NWDst
			default:
				if err := out.SetField(f, b.FieldString(f)); err != nil {
					return Match{}, err
				}
			}
			out.Set |= f
			continue
		}
		switch f {
		case FieldNWSrc, FieldNWDst:
			ap, bp := a.NWSrc, b.NWSrc
			if f == FieldNWDst {
				ap, bp = a.NWDst, b.NWDst
			}
			// The narrower prefix must sit inside the wider one.
			narrow, wide := ap, bp
			if bp.Bits > ap.Bits {
				narrow, wide = bp, ap
			}
			if !wide.Contains(narrow.Addr) {
				return Match{}, fmt.Errorf("openflow: disjoint %s: %v vs %v", f.Name(), ap, bp)
			}
			if f == FieldNWSrc {
				out.NWSrc = narrow
			} else {
				out.NWDst = narrow
			}
		default:
			if a.FieldString(f) != b.FieldString(f) {
				return Match{}, fmt.Errorf("openflow: disjoint %s: %s vs %s",
					f.Name(), a.FieldString(f), b.FieldString(f))
			}
		}
	}
	return out, nil
}

// PacketFields is the header tuple extracted from a packet for matching.
type PacketFields struct {
	InPort  uint32
	DLSrc   ethernet.MAC
	DLDst   ethernet.MAC
	DLType  uint16
	VLANID  uint16
	VLANPCP uint8
	NWTos   uint8
	NWProto uint8
	NWSrc   ethernet.IP4
	NWDst   ethernet.IP4
	TPSrc   uint16
	TPDst   uint16
}

// ExtractFields parses an Ethernet frame into the matchable tuple.
func ExtractFields(frame []byte, inPort uint32) (PacketFields, error) {
	var pf PacketFields
	pf.InPort = inPort
	f, err := ethernet.DecodeFrame(frame)
	if err != nil {
		return pf, err
	}
	pf.DLSrc = f.Src
	pf.DLDst = f.Dst
	pf.DLType = uint16(f.Type)
	pf.VLANID = f.VLANID
	pf.VLANPCP = f.VLANPCP
	switch f.Type {
	case ethernet.TypeIPv4:
		ip, err := ethernet.DecodeIPv4(f.Payload)
		if err != nil {
			return pf, nil // L2 fields still valid
		}
		pf.NWTos = ip.TOS
		pf.NWProto = ip.Protocol
		pf.NWSrc = ip.Src
		pf.NWDst = ip.Dst
		switch ip.Protocol {
		case ethernet.ProtoTCP:
			if t, err := ethernet.DecodeTCP(ip.Payload); err == nil {
				pf.TPSrc, pf.TPDst = t.SrcPort, t.DstPort
			}
		case ethernet.ProtoUDP:
			if u, err := ethernet.DecodeUDP(ip.Payload); err == nil {
				pf.TPSrc, pf.TPDst = u.SrcPort, u.DstPort
			}
		case ethernet.ProtoICMP:
			if ic, err := ethernet.DecodeICMPEcho(ip.Payload); err == nil {
				pf.TPSrc = uint16(ic.Type) // OF convention: icmp type/code in tp ports
			}
		}
	case ethernet.TypeARP:
		if a, err := ethernet.DecodeARP(f.Payload); err == nil {
			pf.NWProto = uint8(a.Op)
			pf.NWSrc = a.SenderIP
			pf.NWDst = a.TargetIP
		}
	}
	return pf, nil
}

// ExactMatch builds the fully-specified match for a packet, the shape the
// router daemon installs for table misses ("sets up paths based on exact
// match", §8).
func ExactMatch(pf PacketFields) Match {
	var m Match
	m.Set = FieldInPort | FieldDLSrc | FieldDLDst | FieldDLType
	m.InPort = pf.InPort
	m.DLSrc = pf.DLSrc
	m.DLDst = pf.DLDst
	m.DLType = pf.DLType
	if pf.VLANID != 0 {
		m.Set |= FieldDLVLAN | FieldDLVLANPCP
		m.VLANID = pf.VLANID
		m.VLANPCP = pf.VLANPCP
	}
	if pf.DLType == uint16(ethernet.TypeIPv4) || pf.DLType == uint16(ethernet.TypeARP) {
		m.Set |= FieldNWProto | FieldNWSrc | FieldNWDst
		m.NWProto = pf.NWProto
		m.NWSrc = ethernet.Prefix{Addr: pf.NWSrc, Bits: 32}
		m.NWDst = ethernet.Prefix{Addr: pf.NWDst, Bits: 32}
		if pf.NWProto == ethernet.ProtoTCP || pf.NWProto == ethernet.ProtoUDP {
			m.Set |= FieldTPSrc | FieldTPDst
			m.TPSrc = pf.TPSrc
			m.TPDst = pf.TPDst
		}
	}
	return m
}

// ParseMatch builds a Match from "field=value" pairs, the textual form
// the static flow pusher accepts.
func ParseMatch(spec string) (Match, error) {
	var m Match
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "*" {
		return m, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return m, fmt.Errorf("openflow: bad match element %q", kv)
		}
		f, ok := FieldByName(strings.TrimSpace(k))
		if !ok {
			return m, fmt.Errorf("openflow: unknown match field %q", k)
		}
		if err := m.SetField(f, v); err != nil {
			return m, err
		}
	}
	return m, nil
}

// SortedFieldNames returns the participating field names sorted, useful
// for deterministic file layouts.
func (m *Match) SortedFieldNames() []string {
	var names []string
	for _, f := range AllFields {
		if m.Has(f) {
			names = append(names, f.Name())
		}
	}
	sort.Strings(names)
	return names
}

func parseUintAuto(s string, bits int) (uint64, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return strconv.ParseUint(s[2:], 16, bits)
	}
	return strconv.ParseUint(s, 10, bits)
}
