package openflow

import (
	"fmt"
	"strconv"
	"strings"

	"yanc/internal/ethernet"
)

// Reserved port numbers in the neutral (OF 1.3-style) port space. The
// OF 1.0 codec maps them to their 16-bit equivalents.
const (
	PortMax        uint32 = 0xffffff00
	PortInPort     uint32 = 0xfffffff8
	PortTable      uint32 = 0xfffffff9
	PortNormal     uint32 = 0xfffffffa
	PortFlood      uint32 = 0xfffffffb
	PortAll        uint32 = 0xfffffffc
	PortController uint32 = 0xfffffffd
	PortLocal      uint32 = 0xfffffffe
	PortAny        uint32 = 0xffffffff
)

// NoBuffer is the buffer id meaning "full packet included".
const NoBuffer uint32 = 0xffffffff

// ActionType enumerates the neutral action set (the OF 1.0 action list,
// which both codecs support; OF 1.3 encodes the set-field actions as OXM
// set-field).
type ActionType uint8

// Actions.
const (
	ActOutput ActionType = iota
	ActSetVLANID
	ActSetVLANPCP
	ActStripVLAN
	ActSetDLSrc
	ActSetDLDst
	ActSetNWSrc
	ActSetNWDst
	ActSetNWTos
	ActSetTPSrc
	ActSetTPDst
)

// Action is one packet transformation or output.
type Action struct {
	Type    ActionType
	Port    uint32       // ActOutput
	MaxLen  uint16       // ActOutput to controller
	VLANID  uint16       // ActSetVLANID
	VLANPCP uint8        // ActSetVLANPCP
	DL      ethernet.MAC // ActSetDLSrc / ActSetDLDst
	NW      ethernet.IP4 // ActSetNWSrc / ActSetNWDst
	TOS     uint8        // ActSetNWTos
	TP      uint16       // ActSetTPSrc / ActSetTPDst
}

// Output builds an output action.
func Output(port uint32) Action { return Action{Type: ActOutput, Port: port} }

// OutputController builds an output-to-controller action with a payload cap.
func OutputController(maxLen uint16) Action {
	return Action{Type: ActOutput, Port: PortController, MaxLen: maxLen}
}

// portName renders special ports symbolically.
func portName(p uint32) string {
	switch p {
	case PortInPort:
		return "in_port"
	case PortTable:
		return "table"
	case PortNormal:
		return "normal"
	case PortFlood:
		return "flood"
	case PortAll:
		return "all"
	case PortController:
		return "controller"
	case PortLocal:
		return "local"
	case PortAny:
		return "any"
	default:
		return strconv.FormatUint(uint64(p), 10)
	}
}

func parsePortName(s string) (uint32, error) {
	switch strings.TrimSpace(s) {
	case "in_port":
		return PortInPort, nil
	case "table":
		return PortTable, nil
	case "normal":
		return PortNormal, nil
	case "flood":
		return PortFlood, nil
	case "all":
		return PortAll, nil
	case "controller":
		return PortController, nil
	case "local":
		return PortLocal, nil
	case "any":
		return PortAny, nil
	}
	v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 32)
	if err != nil {
		return 0, fmt.Errorf("openflow: bad port %q", s)
	}
	return uint32(v), nil
}

// String renders the action in yanc's action-file syntax: the value of an
// action.out file is a port, action.set_dl_dst a MAC, and so on.
func (a Action) String() string {
	switch a.Type {
	case ActOutput:
		return "out=" + portName(a.Port)
	case ActSetVLANID:
		return fmt.Sprintf("set_vlan_vid=%d", a.VLANID)
	case ActSetVLANPCP:
		return fmt.Sprintf("set_vlan_pcp=%d", a.VLANPCP)
	case ActStripVLAN:
		return "strip_vlan"
	case ActSetDLSrc:
		return "set_dl_src=" + a.DL.String()
	case ActSetDLDst:
		return "set_dl_dst=" + a.DL.String()
	case ActSetNWSrc:
		return "set_nw_src=" + a.NW.String()
	case ActSetNWDst:
		return "set_nw_dst=" + a.NW.String()
	case ActSetNWTos:
		return fmt.Sprintf("set_nw_tos=%d", a.TOS)
	case ActSetTPSrc:
		return fmt.Sprintf("set_tp_src=%d", a.TP)
	case ActSetTPDst:
		return fmt.Sprintf("set_tp_dst=%d", a.TP)
	}
	return "unknown"
}

// ActionFileName returns the yanc file name for the action ("out" →
// action.out). Each action kind is one file in a flow directory.
func (a Action) ActionFileName() string {
	name, _, _ := strings.Cut(a.String(), "=")
	return name
}

// ActionFileValue returns the yanc file content for the action.
func (a Action) ActionFileValue() string {
	_, val, ok := strings.Cut(a.String(), "=")
	if !ok {
		return "1" // presence-only actions like strip_vlan
	}
	return val
}

// ActionFile returns both file-form halves directly, rendering the
// value without the Sprintf round-trip of String. Presence-only actions
// like strip_vlan carry the value "1". The returned value is a fresh
// string allocation; bulk writers use FileName/AppendFileValue instead.
func (a Action) ActionFile() (name, value string) {
	var buf [18]byte // longest value: a CIDR-free MAC, 17 bytes
	return a.FileName(), string(a.AppendFileValue(buf[:0]))
}

// FileName returns the yanc file name for the action ("out" →
// action.out) as a constant string — no allocation, unlike
// ActionFileName which round-trips through String.
//
//yancvet:hotalloc
func (a Action) FileName() string {
	switch a.Type {
	case ActOutput:
		return "out"
	case ActSetVLANID:
		return "set_vlan_vid"
	case ActSetVLANPCP:
		return "set_vlan_pcp"
	case ActStripVLAN:
		return "strip_vlan"
	case ActSetDLSrc:
		return "set_dl_src"
	case ActSetDLDst:
		return "set_dl_dst"
	case ActSetNWSrc:
		return "set_nw_src"
	case ActSetNWDst:
		return "set_nw_dst"
	case ActSetNWTos:
		return "set_nw_tos"
	case ActSetTPSrc:
		return "set_tp_src"
	case ActSetTPDst:
		return "set_tp_dst"
	}
	return "unknown"
}

// AppendFileValue appends the action-file value to dst and returns the
// extended slice — the allocation-free renderer the libyanc ring's flow
// writer builds its arena with.
//
//yancvet:hotalloc
func (a Action) AppendFileValue(dst []byte) []byte {
	switch a.Type {
	case ActOutput:
		return appendPortName(dst, a.Port)
	case ActSetVLANID:
		return strconv.AppendUint(dst, uint64(a.VLANID), 10)
	case ActSetVLANPCP:
		return strconv.AppendUint(dst, uint64(a.VLANPCP), 10)
	case ActStripVLAN:
		return append(dst, '1')
	case ActSetDLSrc, ActSetDLDst:
		return a.DL.AppendString(dst)
	case ActSetNWSrc, ActSetNWDst:
		return a.NW.AppendString(dst)
	case ActSetNWTos:
		return strconv.AppendUint(dst, uint64(a.TOS), 10)
	case ActSetTPSrc, ActSetTPDst:
		return strconv.AppendUint(dst, uint64(a.TP), 10)
	}
	return append(dst, '1')
}

// appendPortName is portName in append form.
//
//yancvet:hotalloc
func appendPortName(dst []byte, p uint32) []byte {
	switch p {
	case PortInPort:
		return append(dst, "in_port"...)
	case PortTable:
		return append(dst, "table"...)
	case PortNormal:
		return append(dst, "normal"...)
	case PortFlood:
		return append(dst, "flood"...)
	case PortAll:
		return append(dst, "all"...)
	case PortController:
		return append(dst, "controller"...)
	case PortLocal:
		return append(dst, "local"...)
	case PortAny:
		return append(dst, "any"...)
	default:
		return strconv.AppendUint(dst, uint64(p), 10)
	}
}

// ParseAction parses the "name=value" (or bare name) form used in
// action.* files and flow-pusher specs.
func ParseAction(name, value string) (Action, error) {
	name = strings.TrimSpace(name)
	value = strings.TrimSpace(value)
	var a Action
	switch name {
	case "out", "output":
		p, err := parsePortName(value)
		if err != nil {
			return a, err
		}
		a = Action{Type: ActOutput, Port: p}
		if p == PortController {
			a.MaxLen = 0xffff
		}
	case "set_vlan_vid":
		v, err := strconv.ParseUint(value, 10, 12)
		if err != nil {
			return a, fmt.Errorf("openflow: vlan vid %q: %w", value, err)
		}
		a = Action{Type: ActSetVLANID, VLANID: uint16(v)}
	case "set_vlan_pcp":
		v, err := strconv.ParseUint(value, 10, 3)
		if err != nil {
			return a, fmt.Errorf("openflow: vlan pcp %q: %w", value, err)
		}
		a = Action{Type: ActSetVLANPCP, VLANPCP: uint8(v)}
	case "strip_vlan":
		a = Action{Type: ActStripVLAN}
	case "set_dl_src", "set_dl_dst":
		mac, err := ethernet.ParseMAC(value)
		if err != nil {
			return a, err
		}
		t := ActSetDLSrc
		if name == "set_dl_dst" {
			t = ActSetDLDst
		}
		a = Action{Type: t, DL: mac}
	case "set_nw_src", "set_nw_dst":
		ip, err := ethernet.ParseIP4(value)
		if err != nil {
			return a, err
		}
		t := ActSetNWSrc
		if name == "set_nw_dst" {
			t = ActSetNWDst
		}
		a = Action{Type: t, NW: ip}
	case "set_nw_tos":
		v, err := strconv.ParseUint(value, 10, 8)
		if err != nil {
			return a, fmt.Errorf("openflow: nw tos %q: %w", value, err)
		}
		a = Action{Type: ActSetNWTos, TOS: uint8(v)}
	case "set_tp_src", "set_tp_dst":
		v, err := strconv.ParseUint(value, 10, 16)
		if err != nil {
			return a, fmt.Errorf("openflow: tp port %q: %w", value, err)
		}
		t := ActSetTPSrc
		if name == "set_tp_dst" {
			t = ActSetTPDst
		}
		a = Action{Type: t, TP: uint16(v)}
	default:
		return a, fmt.Errorf("openflow: unknown action %q", name)
	}
	return a, nil
}

// ParseActions parses a comma-separated action list
// ("out=2,set_nw_tos=4").
func ParseActions(spec string) ([]Action, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []Action
	for _, el := range strings.Split(spec, ",") {
		name, value, _ := strings.Cut(el, "=")
		a, err := ParseAction(name, value)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// FormatActions renders an action list back to the comma form.
func FormatActions(actions []Action) string {
	parts := make([]string, len(actions))
	for i, a := range actions {
		parts[i] = a.String()
	}
	return strings.Join(parts, ",")
}

// Apply transforms a frame according to the non-output actions and
// returns the (possibly re-serialized) frame together with the list of
// output ports. The dataplane simulator runs this for every matched
// packet.
func Apply(actions []Action, frame []byte) (out []byte, ports []uint32, err error) {
	f, err := ethernet.DecodeFrame(frame)
	if err != nil {
		return nil, nil, err
	}
	mutatedL2 := false
	mutatedL3 := false
	var ip ethernet.IPv4
	haveIP := false
	if f.Type == ethernet.TypeIPv4 {
		if dec, derr := ethernet.DecodeIPv4(f.Payload); derr == nil {
			ip = dec
			haveIP = true
		}
	}
	for _, a := range actions {
		switch a.Type {
		case ActOutput:
			ports = append(ports, a.Port)
		case ActSetVLANID:
			f.VLANID = a.VLANID
			mutatedL2 = true
		case ActSetVLANPCP:
			f.VLANPCP = a.VLANPCP
			mutatedL2 = true
		case ActStripVLAN:
			f.VLANID = 0
			f.VLANPCP = 0
			mutatedL2 = true
		case ActSetDLSrc:
			f.Src = a.DL
			mutatedL2 = true
		case ActSetDLDst:
			f.Dst = a.DL
			mutatedL2 = true
		case ActSetNWSrc:
			if haveIP {
				ip.Src = a.NW
				mutatedL3 = true
			}
		case ActSetNWDst:
			if haveIP {
				ip.Dst = a.NW
				mutatedL3 = true
			}
		case ActSetNWTos:
			if haveIP {
				ip.TOS = a.TOS
				mutatedL3 = true
			}
		case ActSetTPSrc, ActSetTPDst:
			if haveIP && (ip.Protocol == ethernet.ProtoTCP || ip.Protocol == ethernet.ProtoUDP) {
				mutateTP(&ip, a)
				mutatedL3 = true
			}
		}
	}
	if !mutatedL2 && !mutatedL3 {
		return frame, ports, nil
	}
	if mutatedL3 {
		f.Payload = ip.Serialize()
	}
	return f.Serialize(), ports, nil
}

func mutateTP(ip *ethernet.IPv4, a Action) {
	switch ip.Protocol {
	case ethernet.ProtoTCP:
		t, err := ethernet.DecodeTCP(ip.Payload)
		if err != nil {
			return
		}
		if a.Type == ActSetTPSrc {
			t.SrcPort = a.TP
		} else {
			t.DstPort = a.TP
		}
		ip.Payload = t.Serialize()
	case ethernet.ProtoUDP:
		u, err := ethernet.DecodeUDP(ip.Payload)
		if err != nil {
			return
		}
		if a.Type == ActSetTPSrc {
			u.SrcPort = a.TP
		} else {
			u.DstPort = a.TP
		}
		ip.Payload = u.Serialize()
	}
}
