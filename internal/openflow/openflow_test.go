package openflow

import (
	"net"
	"reflect"
	"testing"
	"testing/quick"

	"yanc/internal/ethernet"
)

func mustPrefix(t *testing.T, s string) ethernet.Prefix {
	t.Helper()
	p, err := ethernet.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func sampleMatch(t *testing.T) Match {
	t.Helper()
	var m Match
	for f, v := range map[Field]string{
		FieldInPort:  "3",
		FieldDLSrc:   "00:00:00:00:00:01",
		FieldDLDst:   "00:00:00:00:00:02",
		FieldDLType:  "0x0800",
		FieldNWProto: "6",
		FieldNWSrc:   "10.0.0.0/24",
		FieldNWDst:   "10.0.1.5",
		FieldTPSrc:   "1000",
		FieldTPDst:   "22",
	} {
		if err := m.SetField(f, v); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func sampleActions() []Action {
	return []Action{
		{Type: ActSetDLDst, DL: ethernet.MAC{1, 2, 3, 4, 5, 6}},
		{Type: ActSetNWSrc, NW: ethernet.IP4{192, 168, 0, 1}},
		{Type: ActSetNWTos, TOS: 16},
		{Type: ActSetTPDst, TP: 8080},
		{Type: ActOutput, Port: 7},
	}
}

func codecs() []Codec { return []Codec{Codec10{}, Codec13{}} }

func roundTrip(t *testing.T, c Codec, m Message) Message {
	t.Helper()
	b, err := c.Encode(m)
	if err != nil {
		t.Fatalf("%T encode (v%d): %v", m, c.Version(), err)
	}
	got, err := c.Decode(b)
	if err != nil {
		t.Fatalf("%T decode (v%d): %v", m, c.Version(), err)
	}
	return got
}

func TestHelloEchoBarrierRoundTrip(t *testing.T) {
	for _, c := range codecs() {
		h := roundTrip(t, c, &Hello{Header: Header{Xid: 9}})
		if h.Type() != MsgHello || h.XID() != 9 {
			t.Errorf("v%d hello = %+v", c.Version(), h)
		}
		er := roundTrip(t, c, &EchoRequest{Header: Header{Xid: 1}, Data: []byte("ping")}).(*EchoRequest)
		if string(er.Data) != "ping" {
			t.Errorf("v%d echo data = %q", c.Version(), er.Data)
		}
		roundTrip(t, c, &EchoReply{Header: Header{Xid: 1}, Data: []byte("pong")})
		if m := roundTrip(t, c, &BarrierRequest{Header: Header{Xid: 2}}); m.Type() != MsgBarrierRequest {
			t.Errorf("v%d barrier req type = %v", c.Version(), m.Type())
		}
		if m := roundTrip(t, c, &BarrierReply{Header: Header{Xid: 3}}); m.Type() != MsgBarrierReply {
			t.Errorf("v%d barrier rep type = %v", c.Version(), m.Type())
		}
		e := roundTrip(t, c, &Error{Header: Header{Xid: 4}, Code: 0x00030002, Data: []byte{9}}).(*Error)
		if e.Code != 0x00030002 || len(e.Data) != 1 {
			t.Errorf("v%d error = %+v", c.Version(), e)
		}
	}
}

func TestFeaturesRoundTrip(t *testing.T) {
	ports := []PortInfo{
		{No: 1, HWAddr: ethernet.MAC{2, 0, 0, 0, 0, 1}, Name: "eth1", CurrSpeed: 10_000_000},
		{No: 2, HWAddr: ethernet.MAC{2, 0, 0, 0, 0, 2}, Name: "eth2", Config: PortConfigDown, State: PortStateLinkDown},
	}
	fr := &FeaturesReply{
		Header:     Header{Xid: 5},
		DatapathID: 0xabcdef0123456789,
		NBuffers:   256,
		NTables:    4,
		Ports:      ports,
	}
	// OF 1.0 carries ports inline.
	got := roundTrip(t, Codec10{}, fr).(*FeaturesReply)
	if got.DatapathID != fr.DatapathID || got.NBuffers != 256 || got.NTables != 4 {
		t.Errorf("of10 features = %+v", got)
	}
	if !reflect.DeepEqual(got.Ports, ports) {
		t.Errorf("of10 ports = %+v", got.Ports)
	}
	// OF 1.3 drops ports from FEATURES_REPLY; they travel via PortDesc.
	got13 := roundTrip(t, Codec13{}, fr).(*FeaturesReply)
	if got13.DatapathID != fr.DatapathID || len(got13.Ports) != 0 {
		t.Errorf("of13 features = %+v", got13)
	}
	pd := roundTrip(t, Codec13{}, &StatsReply{Header: Header{Xid: 6}, Kind: StatsPortDesc, PortDescs: ports}).(*StatsReply)
	if !reflect.DeepEqual(pd.PortDescs, ports) {
		t.Errorf("of13 port descs = %+v", pd.PortDescs)
	}
}

func TestFlowModRoundTrip(t *testing.T) {
	for _, c := range codecs() {
		fm := &FlowMod{
			Header:      Header{Xid: 77},
			Command:     FlowAdd,
			Match:       sampleMatch(t),
			Cookie:      0xfeed,
			IdleTimeout: 30,
			HardTimeout: 300,
			Priority:    500,
			BufferID:    NoBuffer,
			OutPort:     PortAny,
			Flags:       FlagSendFlowRem,
			Actions:     sampleActions(),
		}
		got := roundTrip(t, c, fm).(*FlowMod)
		if !got.Match.Equal(fm.Match) {
			t.Errorf("v%d match: got %v want %v", c.Version(), got.Match, fm.Match)
		}
		if got.Cookie != fm.Cookie || got.Priority != 500 || got.IdleTimeout != 30 ||
			got.HardTimeout != 300 || got.Command != FlowAdd || got.Flags != FlagSendFlowRem {
			t.Errorf("v%d flowmod fields = %+v", c.Version(), got)
		}
		if FormatActions(got.Actions) != FormatActions(fm.Actions) {
			t.Errorf("v%d actions: got %v want %v", c.Version(),
				FormatActions(got.Actions), FormatActions(fm.Actions))
		}
	}
}

func TestFlowModVLANAndWildcardRoundTrip(t *testing.T) {
	for _, c := range codecs() {
		var m Match
		if err := m.SetField(FieldDLVLAN, "100"); err != nil {
			t.Fatal(err)
		}
		if err := m.SetField(FieldDLVLANPCP, "5"); err != nil {
			t.Fatal(err)
		}
		if err := m.SetField(FieldNWTos, "32"); err != nil {
			t.Fatal(err)
		}
		fm := &FlowMod{Header: Header{Xid: 1}, Match: m, Actions: []Action{{Type: ActStripVLAN}, Output(PortFlood)}}
		got := roundTrip(t, c, fm).(*FlowMod)
		if !got.Match.Equal(m) {
			t.Errorf("v%d vlan match: got %v want %v", c.Version(), got.Match, m)
		}
		if len(got.Actions) != 2 || got.Actions[0].Type != ActStripVLAN ||
			got.Actions[1].Port != PortFlood {
			t.Errorf("v%d actions = %v", c.Version(), FormatActions(got.Actions))
		}
		// Wildcard-all match survives.
		all := &FlowMod{Header: Header{Xid: 2}, Command: FlowDelete, OutPort: PortAny}
		gotAll := roundTrip(t, c, all).(*FlowMod)
		if !gotAll.Match.IsWildcardAll() {
			t.Errorf("v%d wildcard-all = %v", c.Version(), gotAll.Match)
		}
	}
}

func TestPacketInOutRoundTrip(t *testing.T) {
	payload := []byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, c := range codecs() {
		pi := &PacketIn{
			Header:   Header{Xid: 3},
			BufferID: NoBuffer,
			TotalLen: uint16(len(payload)),
			InPort:   4,
			Reason:   ReasonNoMatch,
			Data:     payload,
		}
		got := roundTrip(t, c, pi).(*PacketIn)
		if got.InPort != 4 || got.Reason != ReasonNoMatch || string(got.Data) != string(payload) {
			t.Errorf("v%d packet_in = %+v", c.Version(), got)
		}
		po := &PacketOut{
			Header:   Header{Xid: 4},
			BufferID: NoBuffer,
			InPort:   PortController,
			Actions:  []Action{Output(2), Output(5)},
			Data:     payload,
		}
		gotPO := roundTrip(t, c, po).(*PacketOut)
		if gotPO.InPort != PortController || len(gotPO.Actions) != 2 ||
			gotPO.Actions[1].Port != 5 || string(gotPO.Data) != string(payload) {
			t.Errorf("v%d packet_out = %+v", c.Version(), gotPO)
		}
	}
}

func TestPortStatusRoundTrip(t *testing.T) {
	for _, c := range codecs() {
		ps := &PortStatus{
			Header: Header{Xid: 8},
			Reason: PortModified,
			Port:   PortInfo{No: 3, Name: "eth3", Config: PortConfigDown, State: PortStateLinkDown},
		}
		got := roundTrip(t, c, ps).(*PortStatus)
		if got.Reason != PortModified || got.Port.No != 3 || got.Port.Name != "eth3" ||
			got.Port.Config != PortConfigDown {
			t.Errorf("v%d port_status = %+v", c.Version(), got)
		}
	}
}

func TestPortModRoundTrip(t *testing.T) {
	for _, c := range codecs() {
		pm := &PortMod{
			Header: Header{Xid: 21},
			PortNo: 4,
			HWAddr: ethernet.MAC{2, 0, 0, 0, 0, 4},
			Config: PortConfigDown,
			Mask:   PortConfigDown,
		}
		got := roundTrip(t, c, pm).(*PortMod)
		if got.PortNo != 4 || got.HWAddr != pm.HWAddr || got.Config != PortConfigDown ||
			got.Mask != PortConfigDown {
			t.Errorf("v%d port_mod = %+v", c.Version(), got)
		}
	}
}

func TestFlowRemovedRoundTrip(t *testing.T) {
	for _, c := range codecs() {
		fr := &FlowRemoved{
			Header:      Header{Xid: 10},
			Match:       sampleMatch(t),
			Cookie:      0xc0ffee,
			Priority:    77,
			Reason:      RemovedIdleTimeout,
			DurationSec: 12,
			PacketCount: 100,
			ByteCount:   6400,
		}
		got := roundTrip(t, c, fr).(*FlowRemoved)
		if !got.Match.Equal(fr.Match) || got.Cookie != 0xc0ffee || got.Priority != 77 ||
			got.Reason != RemovedIdleTimeout || got.PacketCount != 100 || got.ByteCount != 6400 {
			t.Errorf("v%d flow_removed = %+v", c.Version(), got)
		}
	}
}

func TestStatsRoundTrip(t *testing.T) {
	for _, c := range codecs() {
		req := &StatsRequest{Header: Header{Xid: 11}, Kind: StatsFlow, Match: sampleMatch(t)}
		gotReq := roundTrip(t, c, req).(*StatsRequest)
		if gotReq.Kind != StatsFlow || !gotReq.Match.Equal(req.Match) {
			t.Errorf("v%d stats req = %+v", c.Version(), gotReq)
		}
		rep := &StatsReply{
			Header: Header{Xid: 12},
			Kind:   StatsFlow,
			Flows: []FlowStats{
				{Match: sampleMatch(t), Priority: 5, Cookie: 1, DurationSec: 2, PacketCount: 3, ByteCount: 4, Actions: []Action{Output(1)}},
				{Priority: 0, Actions: []Action{OutputController(128)}},
			},
		}
		gotRep := roundTrip(t, c, rep).(*StatsReply)
		if len(gotRep.Flows) != 2 || !gotRep.Flows[0].Match.Equal(rep.Flows[0].Match) ||
			gotRep.Flows[0].PacketCount != 3 || gotRep.Flows[1].Actions[0].Port != PortController {
			t.Errorf("v%d flow stats = %+v", c.Version(), gotRep.Flows)
		}
		preq := &StatsRequest{Header: Header{Xid: 13}, Kind: StatsPort, Port: PortAny}
		if got := roundTrip(t, c, preq).(*StatsRequest); got.Kind != StatsPort || got.Port != PortAny {
			t.Errorf("v%d port stats req = %+v", c.Version(), got)
		}
		prep := &StatsReply{
			Header: Header{Xid: 14},
			Kind:   StatsPort,
			Ports: []PortStats{
				{PortNo: 1, RxPackets: 10, TxPackets: 20, RxBytes: 30, TxBytes: 40, RxDropped: 1, TxDropped: 2},
			},
		}
		gotP := roundTrip(t, c, prep).(*StatsReply)
		if len(gotP.Ports) != 1 || gotP.Ports[0] != prep.Ports[0] {
			t.Errorf("v%d port stats = %+v", c.Version(), gotP.Ports)
		}
	}
}

func TestMatchParseFormatRoundTrip(t *testing.T) {
	m, err := ParseMatch("dl_type=0x0800,nw_dst=10.0.0.0/8,tp_dst=22,nw_proto=6")
	if err != nil {
		t.Fatal(err)
	}
	if !m.Has(FieldTPDst) || m.TPDst != 22 || m.NWDst.Bits != 8 {
		t.Errorf("parsed = %+v", m)
	}
	m2, err := ParseMatch(m.String())
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(m2) {
		t.Errorf("string round trip: %v vs %v", m, m2)
	}
	if _, err := ParseMatch("bogus=1"); err == nil {
		t.Error("expected error for unknown field")
	}
	if _, err := ParseMatch("no-equals"); err == nil {
		t.Error("expected error for bad element")
	}
	empty, err := ParseMatch("*")
	if err != nil || !empty.IsWildcardAll() {
		t.Errorf("wildcard parse = %+v %v", empty, err)
	}
}

func TestMatchCovers(t *testing.T) {
	wild, _ := ParseMatch("*")
	tcp, _ := ParseMatch("dl_type=0x0800,nw_proto=6")
	ssh, _ := ParseMatch("dl_type=0x0800,nw_proto=6,tp_dst=22")
	subnet, _ := ParseMatch("dl_type=0x0800,nw_src=10.0.0.0/8")
	host, _ := ParseMatch("dl_type=0x0800,nw_src=10.1.2.3")

	if !wild.Covers(tcp) || !wild.Covers(ssh) {
		t.Error("wildcard must cover everything")
	}
	if !tcp.Covers(ssh) {
		t.Error("tcp must cover ssh")
	}
	if ssh.Covers(tcp) {
		t.Error("ssh must not cover tcp")
	}
	if !subnet.Covers(host) {
		t.Error("/8 must cover /32 inside it")
	}
	if host.Covers(subnet) {
		t.Error("/32 must not cover /8")
	}
	if !ssh.Covers(ssh) {
		t.Error("covers must be reflexive")
	}
}

func TestMatchesPacket(t *testing.T) {
	frame := ethernet.Frame{
		Dst:  ethernet.MAC{0, 0, 0, 0, 0, 2},
		Src:  ethernet.MAC{0, 0, 0, 0, 0, 1},
		Type: ethernet.TypeIPv4,
		Payload: ethernet.IPv4{
			TTL: 64, Protocol: ethernet.ProtoTCP,
			Src: ethernet.IP4{10, 0, 0, 1}, Dst: ethernet.IP4{10, 0, 1, 5},
			Payload: ethernet.TCP{SrcPort: 1000, DstPort: 22}.Serialize(),
		}.Serialize(),
	}.Serialize()
	pf, err := ExtractFields(frame, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := sampleMatch(t)
	m2 := m
	m2.Set &^= FieldDLSrc | FieldDLDst // sampleMatch uses different MACs
	if err := m2.SetField(FieldDLSrc, "00:00:00:00:00:01"); err != nil {
		t.Fatal(err)
	}
	if err := m2.SetField(FieldDLDst, "00:00:00:00:00:02"); err != nil {
		t.Fatal(err)
	}
	if !m2.MatchesPacket(&pf) {
		t.Errorf("match %v should match packet %+v", m2, pf)
	}
	// Different port misses.
	miss := m2
	miss.TPDst = 23
	if miss.MatchesPacket(&pf) {
		t.Error("tp_dst=23 must not match ssh packet")
	}
	// Wildcard matches.
	var wild Match
	if !wild.MatchesPacket(&pf) {
		t.Error("wildcard must match")
	}
	// In-port mismatch.
	inp := wild
	if err := inp.SetField(FieldInPort, "9"); err != nil {
		t.Fatal(err)
	}
	if inp.MatchesPacket(&pf) {
		t.Error("in_port=9 must not match port 3")
	}
}

func TestExactMatch(t *testing.T) {
	frame := ethernet.Frame{
		Dst:  ethernet.MAC{0, 0, 0, 0, 0, 2},
		Src:  ethernet.MAC{0, 0, 0, 0, 0, 1},
		Type: ethernet.TypeIPv4,
		Payload: ethernet.IPv4{
			TTL: 64, Protocol: ethernet.ProtoUDP,
			Src: ethernet.IP4{10, 0, 0, 1}, Dst: ethernet.IP4{10, 0, 0, 2},
			Payload: ethernet.UDP{SrcPort: 5000, DstPort: 53}.Serialize(),
		}.Serialize(),
	}.Serialize()
	pf, err := ExtractFields(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := ExactMatch(pf)
	if !m.MatchesPacket(&pf) {
		t.Error("exact match must match its own packet")
	}
	if !m.Has(FieldTPDst) || m.TPDst != 53 || !m.Has(FieldNWSrc) || m.NWSrc.Bits != 32 {
		t.Errorf("exact = %v", m)
	}
}

func TestActionParsing(t *testing.T) {
	actions, err := ParseActions("out=flood,set_dl_dst=aa:bb:cc:dd:ee:ff,set_tp_dst=80,strip_vlan")
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 4 || actions[0].Port != PortFlood || actions[2].TP != 80 ||
		actions[3].Type != ActStripVLAN {
		t.Errorf("actions = %v", FormatActions(actions))
	}
	round, err := ParseActions(FormatActions(actions))
	if err != nil {
		t.Fatal(err)
	}
	if FormatActions(round) != FormatActions(actions) {
		t.Errorf("round trip = %v", FormatActions(round))
	}
	if _, err := ParseActions("bogus=1"); err == nil {
		t.Error("expected unknown action error")
	}
	if a, err := ParseAction("out", "controller"); err != nil || a.Port != PortController || a.MaxLen == 0 {
		t.Errorf("controller out = %+v %v", a, err)
	}
	// File-name mapping.
	a := Output(3)
	if a.ActionFileName() != "out" || a.ActionFileValue() != "3" {
		t.Errorf("file form = %s %s", a.ActionFileName(), a.ActionFileValue())
	}
	strip := Action{Type: ActStripVLAN}
	if strip.ActionFileName() != "strip_vlan" || strip.ActionFileValue() != "1" {
		t.Errorf("strip file form = %q %q", strip.ActionFileName(), strip.ActionFileValue())
	}
}

func TestApplyActions(t *testing.T) {
	frame := ethernet.Frame{
		Dst:  ethernet.MAC{0, 0, 0, 0, 0, 2},
		Src:  ethernet.MAC{0, 0, 0, 0, 0, 1},
		Type: ethernet.TypeIPv4,
		Payload: ethernet.IPv4{
			TTL: 64, Protocol: ethernet.ProtoTCP,
			Src: ethernet.IP4{10, 0, 0, 1}, Dst: ethernet.IP4{10, 0, 0, 2},
			Payload: ethernet.TCP{SrcPort: 1000, DstPort: 80}.Serialize(),
		}.Serialize(),
	}.Serialize()
	actions := []Action{
		{Type: ActSetDLDst, DL: ethernet.MAC{9, 9, 9, 9, 9, 9}},
		{Type: ActSetNWDst, NW: ethernet.IP4{192, 168, 1, 1}},
		{Type: ActSetTPDst, TP: 8080},
		Output(4),
		Output(5),
	}
	out, ports, err := Apply(actions, frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(ports) != 2 || ports[0] != 4 || ports[1] != 5 {
		t.Errorf("ports = %v", ports)
	}
	pf, err := ExtractFields(out, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pf.DLDst != (ethernet.MAC{9, 9, 9, 9, 9, 9}) || pf.NWDst != (ethernet.IP4{192, 168, 1, 1}) || pf.TPDst != 8080 {
		t.Errorf("rewritten = %+v", pf)
	}
	// Output-only action list leaves the frame untouched (same slice).
	same, ports2, err := Apply([]Action{Output(1)}, frame)
	if err != nil || len(ports2) != 1 {
		t.Fatal(err)
	}
	if &same[0] != &frame[0] {
		t.Error("output-only must not copy the frame")
	}
}

func TestConnReadWrite(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ca, cb := NewConn(a), NewConn(b)
	ca.SetCodec(Codec10{})
	cb.SetCodec(Codec10{})
	done := make(chan error, 1)
	go func() {
		done <- ca.Write(&FlowMod{Match: Match{}, Priority: 10, Actions: []Action{Output(1)}})
	}()
	msg, err := cb.Read()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	fm, ok := msg.(*FlowMod)
	if !ok || fm.Priority != 10 {
		t.Fatalf("read = %+v", msg)
	}
	if fm.XID() == 0 {
		t.Error("xid must be auto-assigned")
	}
}

func TestHandshake10And13(t *testing.T) {
	for _, swVersion := range []uint8{Version10, Version13} {
		a, b := net.Pipe()
		features := &FeaturesReply{
			DatapathID: 42,
			NBuffers:   64,
			NTables:    2,
			Ports: []PortInfo{
				{No: 1, Name: "p1"},
				{No: 2, Name: "p2"},
			},
		}
		swErr := make(chan error, 1)
		go func() {
			conn := NewConn(b)
			swErr <- conn.HandshakeSwitch(swVersion, features)
		}()
		ctrl := NewConn(a)
		got, err := ctrl.HandshakeController(Version13)
		if err != nil {
			t.Fatalf("v%d controller handshake: %v", swVersion, err)
		}
		if err := <-swErr; err != nil {
			t.Fatalf("v%d switch handshake: %v", swVersion, err)
		}
		if ctrl.Version() != swVersion {
			t.Errorf("negotiated %d, want %d", ctrl.Version(), swVersion)
		}
		if got.DatapathID != 42 || len(got.Ports) != 2 || got.Ports[1].Name != "p2" {
			t.Errorf("v%d features = %+v", swVersion, got)
		}
		a.Close()
		b.Close()
	}
}

func TestMatchQuickRoundTripBothCodecs(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	for _, c := range codecs() {
		c := c
		f := func(inPort uint32, dlt uint16, proto uint8, srcIP, dstIP uint32, srcBits, dstBits uint8, tps, tpd uint16, useFields uint16) bool {
			var m Match
			if useFields&1 != 0 {
				m.Set |= FieldInPort
				m.InPort = inPort % 0xff00 // valid physical-port range
			}
			if useFields&2 != 0 {
				m.Set |= FieldDLType
				m.DLType = dlt
			}
			if useFields&4 != 0 {
				m.Set |= FieldNWProto
				m.NWProto = proto
			}
			if useFields&8 != 0 {
				m.Set |= FieldNWSrc
				bits := int(srcBits%32) + 1
				p := ethernet.Prefix{Addr: ethernet.IP4FromUint32(srcIP), Bits: bits}
				p.Addr = ethernet.IP4FromUint32(srcIP & p.Mask()) // canonical
				m.NWSrc = p
			}
			if useFields&16 != 0 {
				m.Set |= FieldNWDst
				bits := int(dstBits%32) + 1
				p := ethernet.Prefix{Addr: ethernet.IP4FromUint32(dstIP), Bits: bits}
				p.Addr = ethernet.IP4FromUint32(dstIP & p.Mask())
				m.NWDst = p
			}
			if useFields&32 != 0 {
				m.Set |= FieldTPSrc
				m.TPSrc = tps
			}
			if useFields&64 != 0 {
				m.Set |= FieldTPDst
				m.TPDst = tpd
			}
			fm := &FlowMod{Header: Header{Xid: 1}, Match: m, OutPort: PortAny, BufferID: NoBuffer}
			b, err := c.Encode(fm)
			if err != nil {
				return false
			}
			dec, err := c.Decode(b)
			if err != nil {
				return false
			}
			return dec.(*FlowMod).Match.Equal(m)
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("v%d: %v", c.Version(), err)
		}
	}
}

func TestDecodeTruncatedAndBadInput(t *testing.T) {
	for _, c := range codecs() {
		if _, err := c.Decode([]byte{1, 2, 3}); err == nil {
			t.Errorf("v%d short header must fail", c.Version())
		}
		fm := &FlowMod{Header: Header{Xid: 1}, Match: sampleMatch(t), Actions: sampleActions()}
		b, err := c.Encode(fm)
		if err != nil {
			t.Fatal(err)
		}
		// Truncate mid-body but keep the declared length: decode must fail,
		// not panic.
		for cut := 8; cut < len(b); cut += 7 {
			if _, err := c.Decode(b[:cut]); err == nil {
				t.Errorf("v%d truncated at %d must fail", c.Version(), cut)
			}
		}
		// Wrong version byte.
		bad := append([]byte(nil), b...)
		bad[0] = 0x77
		if _, err := c.Decode(bad); err == nil {
			t.Errorf("v%d wrong version must fail", c.Version())
		}
	}
}

func TestNewCodecVersions(t *testing.T) {
	if _, err := NewCodec(Version10); err != nil {
		t.Error(err)
	}
	if _, err := NewCodec(Version13); err != nil {
		t.Error(err)
	}
	if _, err := NewCodec(0x02); err == nil {
		t.Error("OF 1.1 must be rejected")
	}
}

func TestPrefixMaskHelpers(t *testing.T) {
	p := mustPrefix(t, "10.0.0.0/8")
	if maskToBits(p.Mask()) != 8 {
		t.Errorf("maskToBits(/8 mask) = %d", maskToBits(p.Mask()))
	}
	if maskToBits(0xffffffff) != 32 || maskToBits(0) != 0 {
		t.Error("mask edge cases")
	}
}
