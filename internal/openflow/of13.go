package openflow

import (
	"encoding/binary"
	"fmt"

	"yanc/internal/ethernet"
)

// OF 1.3 wire message types.
const (
	of13Hello          = 0
	of13Error          = 1
	of13EchoRequest    = 2
	of13EchoReply      = 3
	of13FeaturesReq    = 5
	of13FeaturesRep    = 6
	of13PacketIn       = 10
	of13FlowRemoved    = 11
	of13PortStatus     = 12
	of13PacketOut      = 13
	of13FlowMod        = 14
	of13PortMod        = 16
	of13MultipartReq   = 18
	of13MultipartRep   = 19
	of13BarrierRequest = 20
	of13BarrierReply   = 21
)

// OXM basic-class field codes.
const (
	oxmClassBasic uint16 = 0x8000

	oxmInPort  = 0
	oxmEthDst  = 3
	oxmEthSrc  = 4
	oxmEthType = 5
	oxmVLANVID = 6
	oxmVLANPCP = 7
	oxmIPDSCP  = 8
	oxmIPProto = 10
	oxmIPv4Src = 11
	oxmIPv4Dst = 12
	oxmTCPSrc  = 13
	oxmTCPDst  = 14
	oxmUDPSrc  = 15
	oxmUDPDst  = 16
)

// vlanPresent is the OFPVID_PRESENT bit in a VLAN_VID OXM.
const vlanPresent uint16 = 0x1000

// of13 instruction and action codes.
const (
	instrApplyActions = 4

	act13Output   = 0
	act13PopVLAN  = 18
	act13SetField = 25
)

// Codec13 is the OpenFlow 1.3 wire codec (OXM matches, instructions,
// multipart port description).
type Codec13 struct{}

// Version implements Codec.
func (Codec13) Version() uint8 { return Version13 }

func appendOXM(dst []byte, field uint8, value []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, oxmClassBasic)
	dst = append(dst, field<<1, uint8(len(value)))
	return append(dst, value...)
}

func appendOXMMasked(dst []byte, field uint8, value, mask []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, oxmClassBasic)
	dst = append(dst, field<<1|1, uint8(len(value)+len(mask)))
	dst = append(dst, value...)
	return append(dst, mask...)
}

func u16bytes(v uint16) []byte { var b [2]byte; binary.BigEndian.PutUint16(b[:], v); return b[:] }
func u32bytes(v uint32) []byte { var b [4]byte; binary.BigEndian.PutUint32(b[:], v); return b[:] }

// appendOXMsForMatch serializes the participating fields of m as OXM TLVs
// (no ofp_match framing).
func appendOXMsForMatch(dst []byte, m *Match) []byte {
	if m.Has(FieldInPort) {
		dst = appendOXM(dst, oxmInPort, u32bytes(m.InPort))
	}
	if m.Has(FieldDLDst) {
		dst = appendOXM(dst, oxmEthDst, m.DLDst[:])
	}
	if m.Has(FieldDLSrc) {
		dst = appendOXM(dst, oxmEthSrc, m.DLSrc[:])
	}
	if m.Has(FieldDLType) {
		dst = appendOXM(dst, oxmEthType, u16bytes(m.DLType))
	}
	if m.Has(FieldDLVLAN) {
		dst = appendOXM(dst, oxmVLANVID, u16bytes(m.VLANID|vlanPresent))
	}
	if m.Has(FieldDLVLANPCP) {
		dst = appendOXM(dst, oxmVLANPCP, []byte{m.VLANPCP})
	}
	if m.Has(FieldNWTos) {
		dst = appendOXM(dst, oxmIPDSCP, []byte{m.NWTos >> 2})
	}
	if m.Has(FieldNWProto) {
		dst = appendOXM(dst, oxmIPProto, []byte{m.NWProto})
	}
	if m.Has(FieldNWSrc) {
		if m.NWSrc.Bits >= 32 {
			dst = appendOXM(dst, oxmIPv4Src, m.NWSrc.Addr[:])
		} else {
			dst = appendOXMMasked(dst, oxmIPv4Src, m.NWSrc.Addr[:], u32bytes(m.NWSrc.Mask()))
		}
	}
	if m.Has(FieldNWDst) {
		if m.NWDst.Bits >= 32 {
			dst = appendOXM(dst, oxmIPv4Dst, m.NWDst.Addr[:])
		} else {
			dst = appendOXMMasked(dst, oxmIPv4Dst, m.NWDst.Addr[:], u32bytes(m.NWDst.Mask()))
		}
	}
	udp := m.Has(FieldNWProto) && m.NWProto == ethernet.ProtoUDP
	if m.Has(FieldTPSrc) {
		f := uint8(oxmTCPSrc)
		if udp {
			f = oxmUDPSrc
		}
		dst = appendOXM(dst, f, u16bytes(m.TPSrc))
	}
	if m.Has(FieldTPDst) {
		f := uint8(oxmTCPDst)
		if udp {
			f = oxmUDPDst
		}
		dst = appendOXM(dst, f, u16bytes(m.TPDst))
	}
	return dst
}

// appendMatch13 serializes a full ofp_match (type OXM) with padding.
func appendMatch13(dst []byte, m *Match) []byte {
	oxms := appendOXMsForMatch(nil, m)
	length := 4 + len(oxms)
	dst = binary.BigEndian.AppendUint16(dst, 1) // OFPMT_OXM
	dst = binary.BigEndian.AppendUint16(dst, uint16(length))
	dst = append(dst, oxms...)
	for pad := (8 - length%8) % 8; pad > 0; pad-- {
		dst = append(dst, 0)
	}
	return dst
}

func maskToBits(mask uint32) int {
	bits := 0
	for mask&0x80000000 != 0 {
		bits++
		mask <<= 1
	}
	return bits
}

// decodeOXM parses one OXM TLV into the match; returns bytes consumed.
func decodeOXM(m *Match, b []byte) (int, error) {
	if len(b) < 4 {
		return 0, fmt.Errorf("%w: oxm header", ErrBadMessage)
	}
	class := binary.BigEndian.Uint16(b[0:2])
	field := b[2] >> 1
	hasMask := b[2]&1 != 0
	length := int(b[3])
	if len(b) < 4+length {
		return 0, fmt.Errorf("%w: oxm value", ErrBadMessage)
	}
	val := b[4 : 4+length]
	if class != oxmClassBasic {
		return 4 + length, nil // skip experimenter classes
	}
	vlen := length
	if hasMask {
		vlen = length / 2
	}
	// Every field has a fixed value size; a mismatch is a malformed
	// message, never an out-of-range read.
	wantLen := map[uint8]int{
		oxmInPort: 4, oxmEthDst: 6, oxmEthSrc: 6, oxmEthType: 2,
		oxmVLANVID: 2, oxmVLANPCP: 1, oxmIPDSCP: 1, oxmIPProto: 1,
		oxmIPv4Src: 4, oxmIPv4Dst: 4,
		oxmTCPSrc: 2, oxmTCPDst: 2, oxmUDPSrc: 2, oxmUDPDst: 2,
	}
	if want, known := wantLen[field]; known {
		if vlen < want || (hasMask && length < 2*want) {
			return 0, fmt.Errorf("%w: oxm field %d length %d", ErrBadMessage, field, length)
		}
	}
	switch field {
	case oxmInPort:
		m.Set |= FieldInPort
		m.InPort = binary.BigEndian.Uint32(val[0:4])
	case oxmEthDst:
		m.Set |= FieldDLDst
		copy(m.DLDst[:], val[0:6])
	case oxmEthSrc:
		m.Set |= FieldDLSrc
		copy(m.DLSrc[:], val[0:6])
	case oxmEthType:
		m.Set |= FieldDLType
		m.DLType = binary.BigEndian.Uint16(val[0:2])
	case oxmVLANVID:
		m.Set |= FieldDLVLAN
		m.VLANID = binary.BigEndian.Uint16(val[0:2]) &^ vlanPresent
	case oxmVLANPCP:
		m.Set |= FieldDLVLANPCP
		m.VLANPCP = val[0]
	case oxmIPDSCP:
		m.Set |= FieldNWTos
		m.NWTos = val[0] << 2
	case oxmIPProto:
		m.Set |= FieldNWProto
		m.NWProto = val[0]
	case oxmIPv4Src, oxmIPv4Dst:
		var p ethernet.Prefix
		copy(p.Addr[:], val[0:4])
		p.Bits = 32
		if hasMask {
			p.Bits = maskToBits(binary.BigEndian.Uint32(val[4:8]))
		}
		if field == oxmIPv4Src {
			m.Set |= FieldNWSrc
			m.NWSrc = p
		} else {
			m.Set |= FieldNWDst
			m.NWDst = p
		}
	case oxmTCPSrc, oxmUDPSrc:
		m.Set |= FieldTPSrc
		m.TPSrc = binary.BigEndian.Uint16(val[0:2])
	case oxmTCPDst, oxmUDPDst:
		m.Set |= FieldTPDst
		m.TPDst = binary.BigEndian.Uint16(val[0:2])
	}
	return 4 + length, nil
}

// decodeMatch13 parses an ofp_match and returns the match plus total
// bytes consumed (including padding).
func decodeMatch13(b []byte) (Match, int, error) {
	var m Match
	if len(b) < 4 {
		return m, 0, fmt.Errorf("%w: match header", ErrBadMessage)
	}
	mtype := binary.BigEndian.Uint16(b[0:2])
	length := int(binary.BigEndian.Uint16(b[2:4]))
	if length < 4 || length > len(b)+4 {
		return m, 0, fmt.Errorf("%w: match length %d", ErrBadMessage, length)
	}
	padded := length + (8-length%8)%8
	if padded > len(b) {
		return m, 0, fmt.Errorf("%w: match padding", ErrBadMessage)
	}
	if mtype != 1 { // standard match: unsupported, treat as wildcard-all
		return m, padded, nil
	}
	rest := b[4:length]
	for len(rest) > 0 {
		n, err := decodeOXM(&m, rest)
		if err != nil {
			return m, 0, err
		}
		rest = rest[n:]
	}
	return m, padded, nil
}

// appendActions13 serializes the neutral action list as OF 1.3 actions.
func appendActions13(dst []byte, actions []Action) []byte {
	appendSetField := func(dst []byte, field uint8, value []byte) []byte {
		oxm := appendOXM(nil, field, value)
		length := 4 + len(oxm)
		padded := length + (8-length%8)%8
		dst = binary.BigEndian.AppendUint16(dst, act13SetField)
		dst = binary.BigEndian.AppendUint16(dst, uint16(padded))
		dst = append(dst, oxm...)
		for i := length; i < padded; i++ {
			dst = append(dst, 0)
		}
		return dst
	}
	for _, a := range actions {
		switch a.Type {
		case ActOutput:
			dst = binary.BigEndian.AppendUint16(dst, act13Output)
			dst = binary.BigEndian.AppendUint16(dst, 16)
			dst = binary.BigEndian.AppendUint32(dst, a.Port)
			dst = binary.BigEndian.AppendUint16(dst, a.MaxLen)
			dst = append(dst, 0, 0, 0, 0, 0, 0)
		case ActStripVLAN:
			dst = binary.BigEndian.AppendUint16(dst, act13PopVLAN)
			dst = binary.BigEndian.AppendUint16(dst, 8)
			dst = append(dst, 0, 0, 0, 0)
		case ActSetVLANID:
			dst = appendSetField(dst, oxmVLANVID, u16bytes(a.VLANID|vlanPresent))
		case ActSetVLANPCP:
			dst = appendSetField(dst, oxmVLANPCP, []byte{a.VLANPCP})
		case ActSetDLSrc:
			dst = appendSetField(dst, oxmEthSrc, a.DL[:])
		case ActSetDLDst:
			dst = appendSetField(dst, oxmEthDst, a.DL[:])
		case ActSetNWSrc:
			dst = appendSetField(dst, oxmIPv4Src, a.NW[:])
		case ActSetNWDst:
			dst = appendSetField(dst, oxmIPv4Dst, a.NW[:])
		case ActSetNWTos:
			dst = appendSetField(dst, oxmIPDSCP, []byte{a.TOS >> 2})
		case ActSetTPSrc:
			dst = appendSetField(dst, oxmTCPSrc, u16bytes(a.TP))
		case ActSetTPDst:
			dst = appendSetField(dst, oxmTCPDst, u16bytes(a.TP))
		}
	}
	return dst
}

func decodeActions13(b []byte) ([]Action, error) {
	var out []Action
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("%w: action header", ErrBadMessage)
		}
		typ := binary.BigEndian.Uint16(b[0:2])
		length := int(binary.BigEndian.Uint16(b[2:4]))
		if length < 8 || length > len(b) {
			return nil, fmt.Errorf("%w: action length %d", ErrBadMessage, length)
		}
		body := b[4:length]
		b = b[length:]
		switch typ {
		case act13Output:
			if len(body) < 6 {
				return nil, fmt.Errorf("%w: output action", ErrBadMessage)
			}
			out = append(out, Action{
				Type:   ActOutput,
				Port:   binary.BigEndian.Uint32(body[0:4]),
				MaxLen: binary.BigEndian.Uint16(body[4:6]),
			})
		case act13PopVLAN:
			out = append(out, Action{Type: ActStripVLAN})
		case act13SetField:
			var m Match
			if _, err := decodeOXM(&m, body); err != nil {
				return nil, err
			}
			a, ok := setFieldToAction(&m)
			if !ok {
				return nil, fmt.Errorf("%w: set-field oxm", ErrBadMessage)
			}
			out = append(out, a)
		default:
			// Skip unsupported actions (e.g. push_vlan emitted by other
			// controllers) rather than failing the whole message.
		}
	}
	return out, nil
}

func setFieldToAction(m *Match) (Action, bool) {
	switch {
	case m.Has(FieldDLVLAN):
		return Action{Type: ActSetVLANID, VLANID: m.VLANID}, true
	case m.Has(FieldDLVLANPCP):
		return Action{Type: ActSetVLANPCP, VLANPCP: m.VLANPCP}, true
	case m.Has(FieldDLSrc):
		return Action{Type: ActSetDLSrc, DL: m.DLSrc}, true
	case m.Has(FieldDLDst):
		return Action{Type: ActSetDLDst, DL: m.DLDst}, true
	case m.Has(FieldNWSrc):
		return Action{Type: ActSetNWSrc, NW: m.NWSrc.Addr}, true
	case m.Has(FieldNWDst):
		return Action{Type: ActSetNWDst, NW: m.NWDst.Addr}, true
	case m.Has(FieldNWTos):
		return Action{Type: ActSetNWTos, TOS: m.NWTos}, true
	case m.Has(FieldTPSrc):
		return Action{Type: ActSetTPSrc, TP: m.TPSrc}, true
	case m.Has(FieldTPDst):
		return Action{Type: ActSetTPDst, TP: m.TPDst}, true
	}
	return Action{}, false
}

func appendPort13(dst []byte, p PortInfo) []byte {
	dst = binary.BigEndian.AppendUint32(dst, p.No)
	dst = append(dst, 0, 0, 0, 0)
	dst = append(dst, p.HWAddr[:]...)
	dst = append(dst, 0, 0)
	var name [16]byte
	copy(name[:], p.Name)
	dst = append(dst, name[:]...)
	dst = binary.BigEndian.AppendUint32(dst, p.Config)
	dst = binary.BigEndian.AppendUint32(dst, p.State)
	dst = append(dst, make([]byte, 16)...) // curr/advertised/supported/peer
	dst = binary.BigEndian.AppendUint32(dst, p.CurrSpeed)
	dst = binary.BigEndian.AppendUint32(dst, 0) // max speed
	return dst
}

func decodePort13(b []byte) (PortInfo, error) {
	var p PortInfo
	if len(b) < 64 {
		return p, fmt.Errorf("%w: port %d bytes", ErrBadMessage, len(b))
	}
	p.No = binary.BigEndian.Uint32(b[0:4])
	copy(p.HWAddr[:], b[8:14])
	p.Name = cString(b[16:32])
	p.Config = binary.BigEndian.Uint32(b[32:36])
	p.State = binary.BigEndian.Uint32(b[36:40])
	p.CurrSpeed = binary.BigEndian.Uint32(b[56:60])
	return p, nil
}

// Encode implements Codec.
func (c Codec13) Encode(m Message) ([]byte, error) {
	xid := m.XID()
	hdr := func(typ uint8) []byte { return putHeader(make([]byte, 0, 64), Version13, typ, xid) }
	switch msg := m.(type) {
	case *Hello:
		return patchLength(hdr(of13Hello)), nil
	case *Error:
		b := hdr(of13Error)
		b = binary.BigEndian.AppendUint16(b, uint16(msg.Code>>16))
		b = binary.BigEndian.AppendUint16(b, uint16(msg.Code))
		b = append(b, msg.Data...)
		return patchLength(b), nil
	case *EchoRequest:
		return patchLength(append(hdr(of13EchoRequest), msg.Data...)), nil
	case *EchoReply:
		return patchLength(append(hdr(of13EchoReply), msg.Data...)), nil
	case *FeaturesRequest:
		return patchLength(hdr(of13FeaturesReq)), nil
	case *FeaturesReply:
		b := hdr(of13FeaturesRep)
		b = binary.BigEndian.AppendUint64(b, msg.DatapathID)
		b = binary.BigEndian.AppendUint32(b, msg.NBuffers)
		b = append(b, msg.NTables, 0, 0, 0)
		b = binary.BigEndian.AppendUint32(b, msg.Capabilities)
		b = binary.BigEndian.AppendUint32(b, 0)
		return patchLength(b), nil
	case *PacketIn:
		b := hdr(of13PacketIn)
		b = binary.BigEndian.AppendUint32(b, msg.BufferID)
		b = binary.BigEndian.AppendUint16(b, msg.TotalLen)
		b = append(b, msg.Reason, msg.TableID)
		b = binary.BigEndian.AppendUint64(b, 0) // cookie
		inMatch := Match{Set: FieldInPort, InPort: msg.InPort}
		b = appendMatch13(b, &inMatch)
		b = append(b, 0, 0)
		b = append(b, msg.Data...)
		return patchLength(b), nil
	case *FlowRemoved:
		b := hdr(of13FlowRemoved)
		b = binary.BigEndian.AppendUint64(b, msg.Cookie)
		b = binary.BigEndian.AppendUint16(b, msg.Priority)
		b = append(b, msg.Reason, msg.TableID)
		b = binary.BigEndian.AppendUint32(b, msg.DurationSec)
		b = binary.BigEndian.AppendUint32(b, 0)
		b = append(b, 0, 0, 0, 0) // idle, hard
		b = binary.BigEndian.AppendUint64(b, msg.PacketCount)
		b = binary.BigEndian.AppendUint64(b, msg.ByteCount)
		b = appendMatch13(b, &msg.Match)
		return patchLength(b), nil
	case *PortStatus:
		b := hdr(of13PortStatus)
		b = append(b, msg.Reason, 0, 0, 0, 0, 0, 0, 0)
		b = appendPort13(b, msg.Port)
		return patchLength(b), nil
	case *PacketOut:
		b := hdr(of13PacketOut)
		b = binary.BigEndian.AppendUint32(b, msg.BufferID)
		b = binary.BigEndian.AppendUint32(b, msg.InPort)
		actions := appendActions13(nil, msg.Actions)
		b = binary.BigEndian.AppendUint16(b, uint16(len(actions)))
		b = append(b, 0, 0, 0, 0, 0, 0)
		b = append(b, actions...)
		b = append(b, msg.Data...)
		return patchLength(b), nil
	case *FlowMod:
		b := hdr(of13FlowMod)
		b = binary.BigEndian.AppendUint64(b, msg.Cookie)
		b = binary.BigEndian.AppendUint64(b, 0) // cookie mask
		b = append(b, msg.TableID, msg.Command)
		b = binary.BigEndian.AppendUint16(b, msg.IdleTimeout)
		b = binary.BigEndian.AppendUint16(b, msg.HardTimeout)
		b = binary.BigEndian.AppendUint16(b, msg.Priority)
		b = binary.BigEndian.AppendUint32(b, msg.BufferID)
		b = binary.BigEndian.AppendUint32(b, msg.OutPort)
		b = binary.BigEndian.AppendUint32(b, PortAny) // out group
		b = binary.BigEndian.AppendUint16(b, msg.Flags)
		b = append(b, 0, 0)
		b = appendMatch13(b, &msg.Match)
		actions := appendActions13(nil, msg.Actions)
		b = binary.BigEndian.AppendUint16(b, instrApplyActions)
		b = binary.BigEndian.AppendUint16(b, uint16(8+len(actions)))
		b = append(b, 0, 0, 0, 0)
		b = append(b, actions...)
		return patchLength(b), nil
	case *PortMod:
		b := hdr(of13PortMod)
		b = binary.BigEndian.AppendUint32(b, msg.PortNo)
		b = append(b, 0, 0, 0, 0)
		b = append(b, msg.HWAddr[:]...)
		b = append(b, 0, 0)
		b = binary.BigEndian.AppendUint32(b, msg.Config)
		b = binary.BigEndian.AppendUint32(b, msg.Mask)
		b = binary.BigEndian.AppendUint32(b, 0) // advertise
		b = append(b, 0, 0, 0, 0)
		return patchLength(b), nil
	case *BarrierRequest:
		return patchLength(hdr(of13BarrierRequest)), nil
	case *BarrierReply:
		return patchLength(hdr(of13BarrierReply)), nil
	case *StatsRequest:
		b := hdr(of13MultipartReq)
		b = binary.BigEndian.AppendUint16(b, msg.Kind)
		b = binary.BigEndian.AppendUint16(b, 0)
		b = append(b, 0, 0, 0, 0)
		switch msg.Kind {
		case StatsFlow:
			b = append(b, 0xff, 0, 0, 0) // table ALL + pad
			b = binary.BigEndian.AppendUint32(b, PortAny)
			b = binary.BigEndian.AppendUint32(b, PortAny) // out group
			b = append(b, 0, 0, 0, 0)                     // pad
			b = binary.BigEndian.AppendUint64(b, 0)       // cookie
			b = binary.BigEndian.AppendUint64(b, 0)       // cookie mask
			b = appendMatch13(b, &msg.Match)
		case StatsPort:
			b = binary.BigEndian.AppendUint32(b, msg.Port)
			b = append(b, 0, 0, 0, 0)
		case StatsPortDesc:
			// empty body
		}
		return patchLength(b), nil
	case *StatsReply:
		b := hdr(of13MultipartRep)
		b = binary.BigEndian.AppendUint16(b, msg.Kind)
		b = binary.BigEndian.AppendUint16(b, 0)
		b = append(b, 0, 0, 0, 0)
		switch msg.Kind {
		case StatsFlow:
			for _, fl := range msg.Flows {
				match := appendMatch13(nil, &fl.Match)
				actions := appendActions13(nil, fl.Actions)
				entryLen := 48 + len(match) + 8 + len(actions)
				b = binary.BigEndian.AppendUint16(b, uint16(entryLen))
				b = append(b, fl.TableID, 0)
				b = binary.BigEndian.AppendUint32(b, fl.DurationSec)
				b = binary.BigEndian.AppendUint32(b, 0)
				b = binary.BigEndian.AppendUint16(b, fl.Priority)
				b = append(b, 0, 0, 0, 0, 0, 0) // idle, hard, flags
				b = append(b, 0, 0, 0, 0)       // pad
				b = binary.BigEndian.AppendUint64(b, fl.Cookie)
				b = binary.BigEndian.AppendUint64(b, fl.PacketCount)
				b = binary.BigEndian.AppendUint64(b, fl.ByteCount)
				b = append(b, match...)
				b = binary.BigEndian.AppendUint16(b, instrApplyActions)
				b = binary.BigEndian.AppendUint16(b, uint16(8+len(actions)))
				b = append(b, 0, 0, 0, 0)
				b = append(b, actions...)
			}
		case StatsPort:
			for _, ps := range msg.Ports {
				b = binary.BigEndian.AppendUint32(b, ps.PortNo)
				b = append(b, 0, 0, 0, 0)
				b = binary.BigEndian.AppendUint64(b, ps.RxPackets)
				b = binary.BigEndian.AppendUint64(b, ps.TxPackets)
				b = binary.BigEndian.AppendUint64(b, ps.RxBytes)
				b = binary.BigEndian.AppendUint64(b, ps.TxBytes)
				b = binary.BigEndian.AppendUint64(b, ps.RxDropped)
				b = binary.BigEndian.AppendUint64(b, ps.TxDropped)
				b = append(b, make([]byte, 56)...) // error counters + duration
			}
		case StatsPortDesc:
			for _, p := range msg.PortDescs {
				b = appendPort13(b, p)
			}
		}
		return patchLength(b), nil
	}
	return nil, fmt.Errorf("%w: cannot encode %T for OF1.3", ErrBadMessage, m)
}

// Decode implements Codec.
func (c Codec13) Decode(b []byte) (Message, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("%w: short header", ErrBadMessage)
	}
	if b[0] != Version13 {
		return nil, fmt.Errorf("%w: version 0x%02x", ErrBadMessage, b[0])
	}
	typ := b[1]
	length := int(binary.BigEndian.Uint16(b[2:4]))
	if length < 8 || length > len(b) {
		return nil, fmt.Errorf("%w: length %d", ErrBadMessage, length)
	}
	xid := binary.BigEndian.Uint32(b[4:8])
	body := b[8:length]
	h := Header{Xid: xid}
	switch typ {
	case of13Hello:
		return &Hello{Header: h, MaxVersion: Version13}, nil
	case of13Error:
		if len(body) < 4 {
			return nil, fmt.Errorf("%w: error body", ErrBadMessage)
		}
		code := uint32(binary.BigEndian.Uint16(body[0:2]))<<16 | uint32(binary.BigEndian.Uint16(body[2:4]))
		return &Error{Header: h, Code: code, Data: append([]byte(nil), body[4:]...)}, nil
	case of13EchoRequest:
		return &EchoRequest{Header: h, Data: append([]byte(nil), body...)}, nil
	case of13EchoReply:
		return &EchoReply{Header: h, Data: append([]byte(nil), body...)}, nil
	case of13FeaturesReq:
		return &FeaturesRequest{Header: h}, nil
	case of13FeaturesRep:
		if len(body) < 24 {
			return nil, fmt.Errorf("%w: features body", ErrBadMessage)
		}
		return &FeaturesReply{
			Header:       h,
			DatapathID:   binary.BigEndian.Uint64(body[0:8]),
			NBuffers:     binary.BigEndian.Uint32(body[8:12]),
			NTables:      body[12],
			Capabilities: binary.BigEndian.Uint32(body[16:20]),
		}, nil
	case of13PacketIn:
		if len(body) < 16 {
			return nil, fmt.Errorf("%w: packet_in body", ErrBadMessage)
		}
		msg := &PacketIn{
			Header:   h,
			BufferID: binary.BigEndian.Uint32(body[0:4]),
			TotalLen: binary.BigEndian.Uint16(body[4:6]),
			Reason:   body[6],
			TableID:  body[7],
		}
		m, consumed, err := decodeMatch13(body[16:])
		if err != nil {
			return nil, err
		}
		msg.InPort = m.InPort
		rest := body[16+consumed:]
		if len(rest) < 2 {
			return nil, fmt.Errorf("%w: packet_in pad", ErrBadMessage)
		}
		msg.Data = append([]byte(nil), rest[2:]...)
		return msg, nil
	case of13FlowRemoved:
		if len(body) < 40 {
			return nil, fmt.Errorf("%w: flow_removed body", ErrBadMessage)
		}
		msg := &FlowRemoved{
			Header:      h,
			Cookie:      binary.BigEndian.Uint64(body[0:8]),
			Priority:    binary.BigEndian.Uint16(body[8:10]),
			Reason:      body[10],
			TableID:     body[11],
			DurationSec: binary.BigEndian.Uint32(body[12:16]),
			PacketCount: binary.BigEndian.Uint64(body[24:32]),
			ByteCount:   binary.BigEndian.Uint64(body[32:40]),
		}
		m, _, err := decodeMatch13(body[40:])
		if err != nil {
			return nil, err
		}
		msg.Match = m
		return msg, nil
	case of13PortStatus:
		if len(body) < 72 {
			return nil, fmt.Errorf("%w: port_status body", ErrBadMessage)
		}
		p, err := decodePort13(body[8:72])
		if err != nil {
			return nil, err
		}
		return &PortStatus{Header: h, Reason: body[0], Port: p}, nil
	case of13PacketOut:
		if len(body) < 16 {
			return nil, fmt.Errorf("%w: packet_out body", ErrBadMessage)
		}
		alen := int(binary.BigEndian.Uint16(body[8:10]))
		if 16+alen > len(body) {
			return nil, fmt.Errorf("%w: packet_out actions", ErrBadMessage)
		}
		actions, err := decodeActions13(body[16 : 16+alen])
		if err != nil {
			return nil, err
		}
		return &PacketOut{
			Header:   h,
			BufferID: binary.BigEndian.Uint32(body[0:4]),
			InPort:   binary.BigEndian.Uint32(body[4:8]),
			Actions:  actions,
			Data:     append([]byte(nil), body[16+alen:]...),
		}, nil
	case of13FlowMod:
		if len(body) < 40 {
			return nil, fmt.Errorf("%w: flow_mod body", ErrBadMessage)
		}
		msg := &FlowMod{
			Header:      h,
			Cookie:      binary.BigEndian.Uint64(body[0:8]),
			TableID:     body[16],
			Command:     body[17],
			IdleTimeout: binary.BigEndian.Uint16(body[18:20]),
			HardTimeout: binary.BigEndian.Uint16(body[20:22]),
			Priority:    binary.BigEndian.Uint16(body[22:24]),
			BufferID:    binary.BigEndian.Uint32(body[24:28]),
			OutPort:     binary.BigEndian.Uint32(body[28:32]),
			Flags:       binary.BigEndian.Uint16(body[36:38]),
		}
		m, consumed, err := decodeMatch13(body[40:])
		if err != nil {
			return nil, err
		}
		msg.Match = m
		rest := body[40+consumed:]
		for len(rest) >= 4 {
			itype := binary.BigEndian.Uint16(rest[0:2])
			ilen := int(binary.BigEndian.Uint16(rest[2:4]))
			if ilen < 8 || ilen > len(rest) {
				return nil, fmt.Errorf("%w: instruction length", ErrBadMessage)
			}
			if itype == instrApplyActions {
				actions, err := decodeActions13(rest[8:ilen])
				if err != nil {
					return nil, err
				}
				msg.Actions = append(msg.Actions, actions...)
			}
			rest = rest[ilen:]
		}
		return msg, nil
	case of13PortMod:
		if len(body) < 24 {
			return nil, fmt.Errorf("%w: port_mod body", ErrBadMessage)
		}
		msg := &PortMod{Header: h, PortNo: binary.BigEndian.Uint32(body[0:4])}
		copy(msg.HWAddr[:], body[8:14])
		msg.Config = binary.BigEndian.Uint32(body[16:20])
		msg.Mask = binary.BigEndian.Uint32(body[20:24])
		return msg, nil
	case of13BarrierRequest:
		return &BarrierRequest{Header: h}, nil
	case of13BarrierReply:
		return &BarrierReply{Header: h}, nil
	case of13MultipartReq:
		if len(body) < 8 {
			return nil, fmt.Errorf("%w: multipart body", ErrBadMessage)
		}
		msg := &StatsRequest{Header: h, Kind: binary.BigEndian.Uint16(body[0:2])}
		rest := body[8:]
		switch msg.Kind {
		case StatsFlow:
			if len(rest) < 32 {
				return nil, fmt.Errorf("%w: flow stats request", ErrBadMessage)
			}
			m, _, err := decodeMatch13(rest[32:])
			if err != nil {
				return nil, err
			}
			msg.Match = m
		case StatsPort:
			if len(rest) < 4 {
				return nil, fmt.Errorf("%w: port stats request", ErrBadMessage)
			}
			msg.Port = binary.BigEndian.Uint32(rest[0:4])
		}
		return msg, nil
	case of13MultipartRep:
		if len(body) < 8 {
			return nil, fmt.Errorf("%w: multipart body", ErrBadMessage)
		}
		msg := &StatsReply{Header: h, Kind: binary.BigEndian.Uint16(body[0:2])}
		rest := body[8:]
		switch msg.Kind {
		case StatsFlow:
			for len(rest) >= 48 {
				entryLen := int(binary.BigEndian.Uint16(rest[0:2]))
				if entryLen < 48 || entryLen > len(rest) {
					return nil, fmt.Errorf("%w: flow stats entry", ErrBadMessage)
				}
				var fl FlowStats
				fl.TableID = rest[2]
				fl.DurationSec = binary.BigEndian.Uint32(rest[4:8])
				fl.Priority = binary.BigEndian.Uint16(rest[12:14])
				fl.Cookie = binary.BigEndian.Uint64(rest[24:32])
				fl.PacketCount = binary.BigEndian.Uint64(rest[32:40])
				fl.ByteCount = binary.BigEndian.Uint64(rest[40:48])
				m, consumed, err := decodeMatch13(rest[48:entryLen])
				if err != nil {
					return nil, err
				}
				fl.Match = m
				irest := rest[48+consumed : entryLen]
				for len(irest) >= 4 {
					itype := binary.BigEndian.Uint16(irest[0:2])
					ilen := int(binary.BigEndian.Uint16(irest[2:4]))
					if ilen < 8 || ilen > len(irest) {
						break
					}
					if itype == instrApplyActions {
						actions, err := decodeActions13(irest[8:ilen])
						if err != nil {
							return nil, err
						}
						fl.Actions = append(fl.Actions, actions...)
					}
					irest = irest[ilen:]
				}
				msg.Flows = append(msg.Flows, fl)
				rest = rest[entryLen:]
			}
		case StatsPort:
			for len(rest) >= 112 {
				var ps PortStats
				ps.PortNo = binary.BigEndian.Uint32(rest[0:4])
				ps.RxPackets = binary.BigEndian.Uint64(rest[8:16])
				ps.TxPackets = binary.BigEndian.Uint64(rest[16:24])
				ps.RxBytes = binary.BigEndian.Uint64(rest[24:32])
				ps.TxBytes = binary.BigEndian.Uint64(rest[32:40])
				ps.RxDropped = binary.BigEndian.Uint64(rest[40:48])
				ps.TxDropped = binary.BigEndian.Uint64(rest[48:56])
				msg.Ports = append(msg.Ports, ps)
				rest = rest[112:]
			}
		case StatsPortDesc:
			for len(rest) >= 64 {
				p, err := decodePort13(rest[:64])
				if err != nil {
					return nil, err
				}
				msg.PortDescs = append(msg.PortDescs, p)
				rest = rest[64:]
			}
		}
		return msg, nil
	}
	return nil, fmt.Errorf("%w: type %d", ErrBadMessage, typ)
}
