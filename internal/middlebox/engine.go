// Package middlebox implements §7.2 of the paper, "Extending to
// Middleboxes": a stateful firewall whose connection state is exposed
// through the yanc file system by a middlebox driver, so that state can
// be inspected with cat, modified with echo, and — the paper's
// headline — migrated between middlebox instances with cp and mv instead
// of a bespoke state-transfer protocol ("we envision that we can use
// command line utilities such as cp or mv to move state around").
//
// The engine is a classic outbound-initiated stateful firewall: traffic
// from the inside interface creates connection entries; traffic arriving
// on the outside interface is admitted only when it matches an
// established entry (or an explicit allow rule).
package middlebox

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"yanc/internal/ethernet"
)

// Direction of a packet relative to the protected network.
type Direction int

// Directions.
const (
	Outbound Direction = iota // inside -> outside
	Inbound                   // outside -> inside
)

// Verdict is the engine's decision for one packet.
type Verdict int

// Verdicts.
const (
	Accept Verdict = iota
	Drop
)

func (v Verdict) String() string {
	if v == Accept {
		return "accept"
	}
	return "drop"
}

// ConnKey identifies a connection by its inside-perspective 5-tuple.
type ConnKey struct {
	Proto   uint8
	SrcIP   ethernet.IP4
	DstIP   ethernet.IP4
	SrcPort uint16
	DstPort uint16
}

// String renders the key in the form used for state directory names.
func (k ConnKey) String() string {
	return fmt.Sprintf("%d-%s-%d-%s-%d", k.Proto, k.SrcIP, k.SrcPort, k.DstIP, k.DstPort)
}

// ParseConnKey parses the directory-name form back into a key.
func ParseConnKey(s string) (ConnKey, error) {
	var k ConnKey
	parts := strings.Split(s, "-")
	if len(parts) != 5 {
		return k, fmt.Errorf("middlebox: bad conn key %q", s)
	}
	var proto, sport, dport int
	if _, err := fmt.Sscanf(parts[0], "%d", &proto); err != nil {
		return k, fmt.Errorf("middlebox: bad conn proto %q", s)
	}
	src, err := ethernet.ParseIP4(parts[1])
	if err != nil {
		return k, err
	}
	if _, err := fmt.Sscanf(parts[2], "%d", &sport); err != nil {
		return k, fmt.Errorf("middlebox: bad conn sport %q", s)
	}
	dst, err := ethernet.ParseIP4(parts[3])
	if err != nil {
		return k, err
	}
	if _, err := fmt.Sscanf(parts[4], "%d", &dport); err != nil {
		return k, fmt.Errorf("middlebox: bad conn dport %q", s)
	}
	k.Proto = uint8(proto)
	k.SrcIP = src
	k.SrcPort = uint16(sport)
	k.DstIP = dst
	k.DstPort = uint16(dport)
	return k, nil
}

// reverse returns the key as seen from the other direction.
func (k ConnKey) reverse() ConnKey {
	return ConnKey{
		Proto:   k.Proto,
		SrcIP:   k.DstIP,
		DstIP:   k.SrcIP,
		SrcPort: k.DstPort,
		DstPort: k.SrcPort,
	}
}

// Conn is one tracked connection.
type Conn struct {
	Key      ConnKey
	State    string // "new", "established"
	Created  time.Time
	LastSeen time.Time
	Packets  uint64
	Bytes    uint64
}

// Policy configures the firewall.
type Policy struct {
	// DefaultDenyInbound drops outside-originated traffic with no
	// matching state (the classic stateful-firewall posture). Default on.
	DefaultDenyInbound bool
	// AllowInboundPorts lists destination ports admitted inbound without
	// state (e.g. a public web server on 80).
	AllowInboundPorts []uint16
}

// Engine is the middlebox dataplane.
type Engine struct {
	Name string

	mu       sync.Mutex
	policy   Policy
	conns    map[ConnKey]*Conn
	now      func() time.Time
	accepted uint64
	dropped  uint64

	// onConnChange notifies the driver about state transitions
	// (created/updated/removed) so the file system mirrors the table.
	onConnChange func(c Conn, removed bool)
}

// NewEngine creates a firewall with default-deny-inbound policy.
func NewEngine(name string) *Engine {
	return &Engine{
		Name:   name,
		policy: Policy{DefaultDenyInbound: true},
		conns:  make(map[ConnKey]*Conn),
		now:    time.Now,
	}
}

// SetClock replaces the time source.
func (e *Engine) SetClock(clock func() time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.now = clock
}

// Now reads the engine's time source, honoring SetClock overrides.
func (e *Engine) Now() time.Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now()
}

// SetPolicy replaces the policy.
func (e *Engine) SetPolicy(p Policy) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.policy = p
}

// PolicySnapshot returns the current policy.
func (e *Engine) PolicySnapshot() Policy {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.policy
}

// setConnChange installs the driver hook.
func (e *Engine) setConnChange(fn func(c Conn, removed bool)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.onConnChange = fn
}

// keyFor extracts the connection key from a frame, nil when untrackable.
func keyFor(frame []byte) (ConnKey, bool) {
	f, err := ethernet.DecodeFrame(frame)
	if err != nil || f.Type != ethernet.TypeIPv4 {
		return ConnKey{}, false
	}
	ip, err := ethernet.DecodeIPv4(f.Payload)
	if err != nil {
		return ConnKey{}, false
	}
	k := ConnKey{Proto: ip.Protocol, SrcIP: ip.Src, DstIP: ip.Dst}
	switch ip.Protocol {
	case ethernet.ProtoTCP:
		t, err := ethernet.DecodeTCP(ip.Payload)
		if err != nil {
			return ConnKey{}, false
		}
		k.SrcPort, k.DstPort = t.SrcPort, t.DstPort
	case ethernet.ProtoUDP:
		u, err := ethernet.DecodeUDP(ip.Payload)
		if err != nil {
			return ConnKey{}, false
		}
		k.SrcPort, k.DstPort = u.SrcPort, u.DstPort
	case ethernet.ProtoICMP:
		// ICMP echo tracked by (id in SrcPort).
		ic, err := ethernet.DecodeICMPEcho(ip.Payload)
		if err != nil {
			return ConnKey{}, false
		}
		k.SrcPort = ic.ID
	default:
		return ConnKey{}, false
	}
	return k, true
}

// Process runs one frame through the firewall and returns the verdict.
func (e *Engine) Process(dir Direction, frame []byte) Verdict {
	key, ok := keyFor(frame)
	if !ok {
		// Non-IP (ARP etc.) passes: the firewall is an L3/L4 device.
		return Accept
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	size := uint64(len(frame))
	switch dir {
	case Outbound:
		c, exists := e.conns[key]
		if !exists {
			c = &Conn{Key: key, State: "new", Created: now}
			e.conns[key] = c
		}
		c.LastSeen = now
		c.Packets++
		c.Bytes += size
		e.accepted++
		if e.onConnChange != nil {
			e.onConnChange(*c, false)
		}
		return Accept
	default: // Inbound
		// Reply to an inside-originated connection?
		if c, exists := e.conns[key.reverse()]; exists {
			c.State = "established"
			c.LastSeen = now
			c.Packets++
			c.Bytes += size
			e.accepted++
			if e.onConnChange != nil {
				e.onConnChange(*c, false)
			}
			return Accept
		}
		for _, port := range e.policy.AllowInboundPorts {
			if key.DstPort == port {
				e.accepted++
				return Accept
			}
		}
		if e.policy.DefaultDenyInbound {
			e.dropped++
			return Drop
		}
		e.accepted++
		return Accept
	}
}

// InsertConn installs connection state directly — the driver calls this
// when state files appear (e.g. copied in from another middlebox).
func (e *Engine) InsertConn(c Conn) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cc := c
	e.conns[c.Key] = &cc
}

// RemoveConn evicts connection state.
func (e *Engine) RemoveConn(key ConnKey) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.conns, key)
}

// Conns returns a sorted snapshot of the connection table.
func (e *Engine) Conns() []Conn {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Conn, 0, len(e.conns))
	for _, c := range e.conns {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.String() < out[j].Key.String() })
	return out
}

// Lookup returns one connection's state.
func (e *Engine) Lookup(key ConnKey) (Conn, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.conns[key]
	if !ok {
		return Conn{}, false
	}
	return *c, true
}

// Stats returns accept/drop counters.
func (e *Engine) Stats() (accepted, dropped uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.accepted, e.dropped
}

// Expire drops connections idle longer than maxIdle at time now,
// returning the evicted keys.
func (e *Engine) Expire(now time.Time, maxIdle time.Duration) []ConnKey {
	e.mu.Lock()
	defer e.mu.Unlock()
	var evicted []ConnKey
	for k, c := range e.conns {
		if now.Sub(c.LastSeen) >= maxIdle {
			evicted = append(evicted, k)
			if e.onConnChange != nil {
				e.onConnChange(*c, true)
			}
			delete(e.conns, k)
		}
	}
	return evicted
}
