package middlebox

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

// DirMiddleboxes is the region directory middlebox drivers populate.
const DirMiddleboxes = "/middleboxes"

// Driver is the yanc middlebox driver of §7.2: it materializes a
// middlebox under <region>/middleboxes/<name>/ and keeps the file system
// and the engine in sync in both directions:
//
//	state/<conn-key>/        one directory per tracked connection
//	    proto src_ip src_port dst_ip dst_port state packets bytes
//	policy.default_deny_inbound
//	policy.allow_inbound_ports
//	counters/accepted counters/dropped   (live, procfs-style)
//
// Writing policy files reconfigures the engine. Creating a connection
// directory (for instance by cp-ing one from another middlebox's state/)
// inserts live state; removing it evicts — "moving state around" with
// coreutils instead of a custom protocol.
type Driver struct {
	Y      *yancfs.FS
	Region string
	Engine *Engine

	mu      sync.Mutex
	p       *vfs.Proc
	base    string
	watch   *vfs.Watch
	stopped chan struct{}
	// selfWrites guards against reacting to our own mirror writes.
	selfWrites map[string]int
}

// NewDriver creates a driver binding one engine into a region.
func NewDriver(y *yancfs.FS, region string, engine *Engine) *Driver {
	return &Driver{
		Y:          y,
		Region:     region,
		Engine:     engine,
		p:          y.Root(),
		selfWrites: make(map[string]int),
	}
}

// Base returns the middlebox's directory path.
func (d *Driver) Base() string {
	return vfs.Join(d.Region, DirMiddleboxes, d.Engine.Name)
}

// Start populates the directory and begins the two sync loops.
func (d *Driver) Start() error {
	d.base = d.Base()
	p := d.p
	if err := p.MkdirAll(vfs.Join(d.base, "state"), 0o755); err != nil {
		return err
	}
	if err := p.MkdirAll(vfs.Join(d.base, "counters"), 0o755); err != nil {
		return err
	}
	if err := d.writePolicyFiles(); err != nil {
		return err
	}
	// Live counters, procfs-style.
	if err := d.Y.VFS().WithTx(func(tx *vfs.Tx) error {
		for _, name := range []string{"accepted", "dropped"} {
			file := name
			if err := tx.SetSynthetic(vfs.Join(d.base, "counters", file), &vfs.Synthetic{
				Read: func() ([]byte, error) {
					a, dr := d.Engine.Stats()
					v := a
					if file == "dropped" {
						v = dr
					}
					return []byte(strconv.FormatUint(v, 10) + "\n"), nil
				},
			}, 0o444, 0, 0); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	// Engine -> fs mirroring.
	d.Engine.setConnChange(d.mirrorConn)
	// fs -> engine: watch for policy writes and state dirs appearing or
	// vanishing (the cp/mv migration path).
	w, err := p.AddWatch(d.base, vfs.OpWrite|vfs.OpCreate|vfs.OpRemove, vfs.Recursive(), vfs.BufferSize(4096))
	if err != nil {
		return err
	}
	d.watch = w
	d.stopped = make(chan struct{})
	go d.watchLoop()
	return nil
}

// Stop shuts the driver down.
func (d *Driver) Stop() {
	if d.watch == nil {
		return
	}
	d.Engine.setConnChange(nil)
	d.watch.Close()
	<-d.stopped
}

func (d *Driver) writePolicyFiles() error {
	pol := d.Engine.PolicySnapshot()
	deny := "0"
	if pol.DefaultDenyInbound {
		deny = "1"
	}
	ports := make([]string, len(pol.AllowInboundPorts))
	for i, pt := range pol.AllowInboundPorts {
		ports[i] = strconv.FormatUint(uint64(pt), 10)
	}
	for file, content := range map[string]string{
		"policy.default_deny_inbound": deny,
		"policy.allow_inbound_ports":  strings.Join(ports, ","),
	} {
		path := vfs.Join(d.base, file)
		d.noteSelfWrite(path)
		if err := d.p.WriteString(path, content+"\n"); err != nil {
			return err
		}
	}
	return nil
}

func (d *Driver) noteSelfWrite(path string) {
	d.mu.Lock()
	d.selfWrites[path]++
	d.mu.Unlock()
}

func (d *Driver) isSelfWrite(path string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.selfWrites[path] > 0 {
		d.selfWrites[path]--
		if d.selfWrites[path] == 0 {
			delete(d.selfWrites, path)
		}
		return true
	}
	return false
}

// mirrorConn reflects one engine state change into the file system.
func (d *Driver) mirrorConn(c Conn, removed bool) {
	// Run outside the engine lock's caller context via the fs transaction.
	base := vfs.Join(d.base, "state", c.Key.String())
	if removed {
		_ = d.Y.VFS().WithTx(func(tx *vfs.Tx) error {
			if tx.Exists(base) {
				return tx.Remove(base)
			}
			return nil
		})
		return
	}
	_ = d.Y.VFS().WithTx(func(tx *vfs.Tx) error {
		if !tx.Exists(base) {
			if err := tx.Mkdir(base, 0o755, 0, 0); err != nil {
				return err
			}
		}
		for file, content := range map[string]string{
			"proto":    strconv.FormatUint(uint64(c.Key.Proto), 10),
			"src_ip":   c.Key.SrcIP.String(),
			"src_port": strconv.FormatUint(uint64(c.Key.SrcPort), 10),
			"dst_ip":   c.Key.DstIP.String(),
			"dst_port": strconv.FormatUint(uint64(c.Key.DstPort), 10),
			"state":    c.State,
			"packets":  strconv.FormatUint(c.Packets, 10),
			"bytes":    strconv.FormatUint(c.Bytes, 10),
		} {
			if err := tx.WriteFile(vfs.Join(base, file), []byte(content+"\n"), 0o644, 0, 0); err != nil {
				return err
			}
		}
		return nil
	})
}

func (d *Driver) watchLoop() {
	defer close(d.stopped)
	stateDir := vfs.Join(d.base, "state")
	for ev := range d.watch.C {
		switch {
		case ev.Op == vfs.OpWrite && strings.HasPrefix(vfs.Base(ev.Path), "policy."):
			if !d.isSelfWrite(ev.Path) {
				d.reloadPolicy()
			}
		case ev.Op == vfs.OpCreate && ev.IsDir && vfs.Dir(ev.Path) == stateDir:
			// State directory appeared: if the engine doesn't know it,
			// someone imported it (cp from another middlebox). Wait a
			// beat for its files, then load.
			d.importConn(ev.Path)
		case ev.Op == vfs.OpRemove && ev.IsDir && vfs.Dir(ev.Path) == stateDir:
			if key, err := ParseConnKey(vfs.Base(ev.Path)); err == nil {
				if _, known := d.Engine.Lookup(key); known {
					d.Engine.RemoveConn(key)
				}
			}
		}
	}
}

func (d *Driver) reloadPolicy() {
	pol := Policy{}
	if s, err := d.p.ReadString(vfs.Join(d.base, "policy.default_deny_inbound")); err == nil {
		pol.DefaultDenyInbound = strings.TrimSpace(s) == "1"
	}
	if s, err := d.p.ReadString(vfs.Join(d.base, "policy.allow_inbound_ports")); err == nil {
		for _, tok := range strings.Split(s, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			if v, err := strconv.ParseUint(tok, 10, 16); err == nil {
				pol.AllowInboundPorts = append(pol.AllowInboundPorts, uint16(v))
			}
		}
	}
	d.Engine.SetPolicy(pol)
}

// importConn loads a state directory into the engine (retrying briefly:
// a cp writes the directory before its files).
func (d *Driver) importConn(path string) {
	key, err := ParseConnKey(vfs.Base(path))
	if err != nil {
		return
	}
	if _, known := d.Engine.Lookup(key); known {
		return // our own mirror write
	}
	for attempt := 0; attempt < 20; attempt++ {
		c, err := d.readConn(path, key)
		if err == nil {
			d.Engine.InsertConn(c)
			return
		}
		time.Sleep(2 * time.Millisecond) //yancvet:wallclock watch/mirror settle retry paces real goroutines
	}
}

func (d *Driver) readConn(path string, key ConnKey) (Conn, error) {
	now := d.Engine.Now()
	c := Conn{Key: key, Created: now, LastSeen: now}
	state, err := d.p.ReadString(vfs.Join(path, "state"))
	if err != nil {
		return c, err
	}
	c.State = strings.TrimSpace(state)
	if c.State == "" {
		return c, fmt.Errorf("middlebox: empty state file")
	}
	if s, err := d.p.ReadString(vfs.Join(path, "packets")); err == nil {
		c.Packets, _ = strconv.ParseUint(strings.TrimSpace(s), 10, 64)
	}
	if s, err := d.p.ReadString(vfs.Join(path, "bytes")); err == nil {
		c.Bytes, _ = strconv.ParseUint(strings.TrimSpace(s), 10, 64)
	}
	return c, nil
}
