package middlebox

import (
	"strings"
	"testing"
	"time"

	"yanc/internal/ethernet"
	"yanc/internal/shell"
	"yanc/internal/yancfs"
)

// tcpFrame builds a TCP frame between two addresses.
func tcpFrame(srcIP, dstIP ethernet.IP4, srcPort, dstPort uint16) []byte {
	return ethernet.Frame{
		Dst: ethernet.MAC{0xaa}, Src: ethernet.MAC{0xbb},
		Type: ethernet.TypeIPv4,
		Payload: ethernet.IPv4{
			TTL: 64, Protocol: ethernet.ProtoTCP, Src: srcIP, Dst: dstIP,
			Payload: ethernet.TCP{SrcPort: srcPort, DstPort: dstPort}.Serialize(),
		}.Serialize(),
	}.Serialize()
}

var (
	insideIP  = ethernet.IP4{10, 0, 0, 5}
	outsideIP = ethernet.IP4{93, 184, 216, 34}
)

func TestStatefulFirewallBasics(t *testing.T) {
	e := NewEngine("fw1")
	out := tcpFrame(insideIP, outsideIP, 44321, 443)
	back := tcpFrame(outsideIP, insideIP, 443, 44321)
	unsolicited := tcpFrame(outsideIP, insideIP, 31337, 22)

	// Unsolicited inbound drops.
	if v := e.Process(Inbound, unsolicited); v != Drop {
		t.Fatalf("unsolicited inbound = %v", v)
	}
	// Outbound creates state.
	if v := e.Process(Outbound, out); v != Accept {
		t.Fatalf("outbound = %v", v)
	}
	conns := e.Conns()
	if len(conns) != 1 || conns[0].State != "new" {
		t.Fatalf("conns = %+v", conns)
	}
	// The reply is admitted and establishes.
	if v := e.Process(Inbound, back); v != Accept {
		t.Fatalf("reply = %v", v)
	}
	if conns = e.Conns(); conns[0].State != "established" || conns[0].Packets != 2 {
		t.Fatalf("after reply = %+v", conns)
	}
	// Allow-listed port admits without state.
	e.SetPolicy(Policy{DefaultDenyInbound: true, AllowInboundPorts: []uint16{22}})
	if v := e.Process(Inbound, unsolicited); v != Accept {
		t.Fatalf("allow-listed inbound = %v", v)
	}
	// ARP passes through an L3 device.
	arp := ethernet.Frame{Dst: ethernet.Broadcast, Type: ethernet.TypeARP,
		Payload: ethernet.ARP{Op: ethernet.ARPRequest}.Serialize()}.Serialize()
	if v := e.Process(Inbound, arp); v != Accept {
		t.Fatalf("arp = %v", v)
	}
	// Untrackable frames (ARP) pass without touching the counters.
	accepted, dropped := e.Stats()
	if accepted != 3 || dropped != 1 {
		t.Errorf("stats = %d/%d", accepted, dropped)
	}
}

func TestConnKeyRoundTrip(t *testing.T) {
	k := ConnKey{Proto: 6, SrcIP: insideIP, DstIP: outsideIP, SrcPort: 1234, DstPort: 443}
	got, err := ParseConnKey(k.String())
	if err != nil || got != k {
		t.Fatalf("round trip = %+v %v (from %q)", got, err, k.String())
	}
	for _, bad := range []string{"", "1-2-3", "x-10.0.0.1-1-10.0.0.2-2", "6-nope-1-10.0.0.2-2"} {
		if _, err := ParseConnKey(bad); err == nil {
			t.Errorf("ParseConnKey(%q) must fail", bad)
		}
	}
}

func TestExpire(t *testing.T) {
	e := NewEngine("fw1")
	now := time.Unix(0, 0)
	e.SetClock(func() time.Time { return now })
	e.Process(Outbound, tcpFrame(insideIP, outsideIP, 1000, 80))
	now = now.Add(10 * time.Minute)
	e.Process(Outbound, tcpFrame(insideIP, outsideIP, 2000, 80))
	evicted := e.Expire(now, 5*time.Minute)
	if len(evicted) != 1 || evicted[0].SrcPort != 1000 {
		t.Fatalf("evicted = %+v", evicted)
	}
	if len(e.Conns()) != 1 {
		t.Fatalf("conns = %+v", e.Conns())
	}
}

func newY(t *testing.T) *yancfs.FS {
	t.Helper()
	y, err := yancfs.New()
	if err != nil {
		t.Fatal(err)
	}
	return y
}

func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestDriverMirrorsStateToFS(t *testing.T) {
	y := newY(t)
	e := NewEngine("fw1")
	d := NewDriver(y, "/", e)
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	p := y.Root()
	e.Process(Outbound, tcpFrame(insideIP, outsideIP, 44321, 443))
	key := ConnKey{Proto: 6, SrcIP: insideIP, DstIP: outsideIP, SrcPort: 44321, DstPort: 443}
	base := "/middleboxes/fw1/state/" + key.String()
	eventually(t, "state dir", func() bool { return p.IsDir(base) })
	if s, _ := p.ReadString(base + "/state"); s != "new" {
		t.Errorf("state = %q", s)
	}
	if s, _ := p.ReadString(base + "/dst_port"); s != "443" {
		t.Errorf("dst_port = %q", s)
	}
	// Establishment updates the file.
	e.Process(Inbound, tcpFrame(outsideIP, insideIP, 443, 44321))
	eventually(t, "established", func() bool {
		s, _ := p.ReadString(base + "/state")
		return s == "established"
	})
	// Live counters.
	if s, _ := p.ReadString("/middleboxes/fw1/counters/accepted"); s != "2" {
		t.Errorf("accepted = %q", s)
	}
	// Expiry removes the directory.
	e.setConnChange(d.mirrorConn) // ensure hook present
	e.Expire(time.Now().Add(time.Hour), time.Minute)
	eventually(t, "state removed", func() bool { return !p.Exists(base) })
}

func TestPolicyFilesReconfigureEngine(t *testing.T) {
	y := newY(t)
	e := NewEngine("fw1")
	d := NewDriver(y, "/", e)
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	p := y.Root()
	unsolicited := tcpFrame(outsideIP, insideIP, 31337, 8080)
	if v := e.Process(Inbound, unsolicited); v != Drop {
		t.Fatal("expected drop before policy change")
	}
	// The administrator opens port 8080 with echo.
	if err := p.WriteString("/middleboxes/fw1/policy.allow_inbound_ports", "8080\n"); err != nil {
		t.Fatal(err)
	}
	eventually(t, "policy reload", func() bool {
		pol := e.PolicySnapshot()
		return len(pol.AllowInboundPorts) == 1 && pol.AllowInboundPorts[0] == 8080
	})
	if v := e.Process(Inbound, unsolicited); v != Accept {
		t.Fatal("expected accept after policy change")
	}
	// Turning off default-deny admits everything.
	if err := p.WriteString("/middleboxes/fw1/policy.default_deny_inbound", "0\n"); err != nil {
		t.Fatal(err)
	}
	eventually(t, "deny off", func() bool { return !e.PolicySnapshot().DefaultDenyInbound })
}

func TestStateMigrationWithCp(t *testing.T) {
	// §7.2's headline: move live middlebox state with cp, no custom
	// protocol. fw1 has an established connection; we cp its state dir
	// into fw2; fw2 then admits the inbound traffic of that connection.
	y := newY(t)
	fw1 := NewEngine("fw1")
	fw2 := NewEngine("fw2")
	d1 := NewDriver(y, "/", fw1)
	d2 := NewDriver(y, "/", fw2)
	for _, d := range []*Driver{d1, d2} {
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
		defer d.Stop()
	}
	p := y.Root()
	// Establish a connection through fw1.
	fw1.Process(Outbound, tcpFrame(insideIP, outsideIP, 50000, 443))
	fw1.Process(Inbound, tcpFrame(outsideIP, insideIP, 443, 50000))
	key := ConnKey{Proto: 6, SrcIP: insideIP, DstIP: outsideIP, SrcPort: 50000, DstPort: 443}
	src := "/middleboxes/fw1/state/" + key.String()
	eventually(t, "fw1 state", func() bool {
		s, _ := p.ReadString(src + "/state")
		return s == "established"
	})
	// fw2 drops the inbound reply today (no state).
	inbound := tcpFrame(outsideIP, insideIP, 443, 50000)
	if v := fw2.Process(Inbound, inbound); v != Drop {
		t.Fatal("fw2 should drop before migration")
	}
	// Migrate with the shell: cp -r fw1's conn dir into fw2's state/.
	var out strings.Builder
	sh := shell.NewEnv(p, &out)
	if err := sh.Run("cp -r " + src + " /middleboxes/fw2/state/" + key.String()); err != nil {
		t.Fatal(err)
	}
	eventually(t, "fw2 imported state", func() bool {
		_, known := fw2.Lookup(key)
		return known
	})
	// fw2 now carries the connection.
	if v := fw2.Process(Inbound, inbound); v != Accept {
		t.Fatal("fw2 should accept after migration")
	}
	// And mv (rm at the source) completes the move: fw1 forgets.
	if err := sh.Run("rm -r " + src); err != nil {
		t.Fatal(err)
	}
	eventually(t, "fw1 evicted", func() bool {
		_, known := fw1.Lookup(key)
		return !known
	})
	if v := fw1.Process(Inbound, inbound); v != Drop {
		t.Fatal("fw1 should drop after the state moved away")
	}
}
