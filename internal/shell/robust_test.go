package shell

import (
	"io"
	"math/rand"
	"strings"
	"testing"

	"yanc/internal/vfs"
)

// TestRunRandomLinesNeverPanics drives the tokenizer/pipeline machinery
// with random command lines; errors are fine, panics are not.
func TestRunRandomLinesNeverPanics(t *testing.T) {
	fs := vfs.New()
	p := fs.RootProc()
	if err := p.MkdirAll("/a/b", 0o755); err != nil {
		t.Fatal(err)
	}
	e := NewEnv(p, io.Discard)
	r := rand.New(rand.NewSource(4))
	pieces := []string{
		"ls", "cat", "find", "grep", "echo", "tree", "rm", "mkdir", "mv",
		"cp", "ln", "-l", "-r", "-p", "-s", "-name", "-type", "|", ">",
		">>", `"`, "/a", "/a/b", "*", "?", "x y", "", "head", "-n", "2",
		"xargs", "wc", "sort", "uniq", "cd", "pwd", "stat", "chmod", "777",
	}
	for i := 0; i < 5000; i++ {
		n := r.Intn(8)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteString(pieces[r.Intn(len(pieces))])
			sb.WriteByte(' ')
		}
		_ = e.Run(sb.String()) // must not panic
	}
}
