package shell

import (
	"strings"
	"testing"

	"yanc/internal/dfs"
	"yanc/internal/openflow"
	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

// TestShellOverRemoteMount runs the coreutils against a dfs mount — the
// yancsh scenario: administering a remote controller with ls/find/grep.
func TestShellOverRemoteMount(t *testing.T) {
	y, err := yancfs.New()
	if err != nil {
		t.Fatal(err)
	}
	p := y.Root()
	if _, err := yancfs.CreateSwitch(p, "/", "sw1"); err != nil {
		t.Fatal(err)
	}
	m, _ := openflow.ParseMatch("dl_type=0x0800,nw_proto=6,tp_dst=22")
	if _, err := yancfs.WriteFlow(p, "/switches/sw1/flows/ssh", yancfs.FlowSpec{
		Match: m, Priority: 10, Actions: []openflow.Action{openflow.Output(2)},
	}); err != nil {
		t.Fatal(err)
	}

	srv := dfs.NewServer(y.VFS())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := dfs.Mount(addr, vfs.Root, dfs.Strict)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var out strings.Builder
	e := NewEnv(client, &out)

	run := func(line string) string {
		t.Helper()
		out.Reset()
		if err := e.Run(line); err != nil {
			t.Fatalf("%s: %v", line, err)
		}
		return out.String()
	}

	if got := run("ls /switches"); got != "sw1\n" {
		t.Errorf("remote ls = %q", got)
	}
	got := run("find /switches -name match.tp_dst | xargs grep -l 22")
	if !strings.Contains(got, "/switches/sw1/flows/ssh/match.tp_dst") {
		t.Errorf("remote find|grep = %q", got)
	}
	// Remote writes through the shell land on the server.
	run("echo 99 > /switches/sw1/flows/ssh/priority")
	if s, _ := p.ReadString("/switches/sw1/flows/ssh/priority"); s != "99" {
		t.Errorf("remote echo redirect = %q", s)
	}
	// tree, stat, xattrs all work over the wire.
	if got := run("tree /switches/sw1/flows"); !strings.Contains(got, "ssh/") {
		t.Errorf("remote tree = %q", got)
	}
	run("setfattr -n user.note -v remote /switches/sw1")
	if got := run("getfattr /switches/sw1"); !strings.Contains(got, `user.note="remote"`) {
		t.Errorf("remote xattr = %q", got)
	}
	// cp and rm -r across the mount.
	run("cp -r /switches/sw1/flows/ssh /switches/sw1/flows/ssh-copy")
	if !p.IsDir("/switches/sw1/flows/ssh-copy") {
		t.Error("remote cp -r failed")
	}
	run("rm -r /switches/sw1/flows/ssh-copy")
	if p.Exists("/switches/sw1/flows/ssh-copy") {
		t.Error("remote rm -r failed")
	}
}
