// Package shell implements the coreutils workflow of §5.4 against the
// yanc VFS: ls, cat, find, grep, tree, and friends, plus a small pipeline
// runner so administrators' one-liners work the way the paper writes them:
//
//	ls -l /net/switches
//	find /net -name tp_dst | xargs grep -l 22
//	echo 1 > /net/switches/sw1/ports/2/config.port_down
//
// Commands are plain Go functions over a vfs.Proc; nothing here touches
// the host OS.
package shell

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"yanc/internal/vfs"
)

// ErrUsage reports a malformed command line.
var ErrUsage = errors.New("shell: usage error")

// ErrUnknownCommand reports an unrecognized command name.
var ErrUnknownCommand = errors.New("shell: unknown command")

// FileSystem is the operation set the shell needs. Both a local
// *vfs.Proc and a remote *dfs.Client satisfy it, so the same one-liners
// administer the local controller or a mounted remote one (§6).
type FileSystem interface {
	Mkdir(path string, mode vfs.FileMode) error
	MkdirAll(path string, mode vfs.FileMode) error
	WriteFile(path string, data []byte, mode vfs.FileMode) error
	AppendFile(path string, data []byte, mode vfs.FileMode) error
	ReadFile(path string) ([]byte, error)
	Remove(path string) error
	RemoveAll(path string) error
	Rename(oldPath, newPath string) error
	Symlink(target, linkPath string) error
	Readlink(path string) (string, error)
	ReadDir(path string) ([]vfs.DirEntry, error)
	Stat(path string) (vfs.Stat, error)
	Lstat(path string) (vfs.Stat, error)
	Exists(path string) bool
	IsDir(path string) bool
	Chmod(path string, mode vfs.FileMode) error
	SetXattr(path, attr string, value []byte) error
	GetXattr(path, attr string) ([]byte, error)
	ListXattr(path string) ([]string, error)
}

// Env is a shell execution environment: a file system, a working
// directory, and the output stream.
type Env struct {
	P   FileSystem
	Cwd string
	Out io.Writer
}

// NewEnv creates an environment rooted at "/".
func NewEnv(p FileSystem, out io.Writer) *Env {
	return &Env{P: p, Cwd: "/", Out: out}
}

// walk traverses depth-first in name order using only ReadDir and Lstat,
// reporting (not following) symlinks.
func (e *Env) walk(root string, fn func(path string, st vfs.Stat) error) error {
	st, err := e.P.Lstat(root)
	if err != nil {
		return err
	}
	var rec func(path string, st vfs.Stat) error
	rec = func(path string, st vfs.Stat) error {
		if err := fn(path, st); err != nil {
			return err
		}
		if !st.IsDir() {
			return nil
		}
		entries, err := e.P.ReadDir(path)
		if err != nil {
			return err
		}
		for _, de := range entries {
			child := vfs.Join(path, de.Name)
			cst, err := e.P.Lstat(child)
			if err != nil {
				continue
			}
			if err := rec(child, cst); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(vfs.Clean(root), st)
}

// abs resolves a possibly-relative path against the working directory.
func (e *Env) abs(path string) string {
	if strings.HasPrefix(path, "/") {
		return vfs.Clean(path)
	}
	return vfs.Join(e.Cwd, path)
}

// command is one built-in: args (without the command name), stdin lines
// (nil when first in a pipeline), and the output writer.
type command func(e *Env, args []string, stdin []string, out io.Writer) error

// commands is populated in init: xargs dispatches back into the table,
// which would otherwise be an initialization cycle.
var commands map[string]command

func init() {
	commands = map[string]command{
		"ls":       cmdLs,
		"cat":      cmdCat,
		"echo":     cmdEcho,
		"tree":     cmdTree,
		"find":     cmdFind,
		"grep":     cmdGrep,
		"stat":     cmdStat,
		"rm":       cmdRm,
		"mkdir":    cmdMkdir,
		"rmdir":    cmdRm,
		"mv":       cmdMv,
		"cp":       cmdCp,
		"ln":       cmdLn,
		"readlink": cmdReadlink,
		"touch":    cmdTouch,
		"wc":       cmdWc,
		"head":     cmdHead,
		"sort":     cmdSort,
		"uniq":     cmdUniq,
		"xargs":    cmdXargs,
		"chmod":    cmdChmod,
		"getfattr": cmdGetfattr,
		"setfattr": cmdSetfattr,
		"pwd":      cmdPwd,
		"cd":       cmdCd,
	}
}

// Run executes a command line: a pipeline of built-ins separated by "|",
// with optional ">" or ">>" redirection on the final stage.
func (e *Env) Run(line string) error {
	stages, redirect, appendMode, err := splitPipeline(line)
	if err != nil {
		return err
	}
	if len(stages) == 0 {
		return nil
	}
	var stdin []string
	for i, stage := range stages {
		args, err := tokenize(stage)
		if err != nil {
			return err
		}
		if len(args) == 0 {
			return fmt.Errorf("%w: empty pipeline stage", ErrUsage)
		}
		cmd, ok := commands[args[0]]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownCommand, args[0])
		}
		last := i == len(stages)-1
		var buf strings.Builder
		var out io.Writer = &buf
		if last && redirect == "" {
			out = e.Out
		}
		if err := cmd(e, args[1:], stdin, out); err != nil {
			return err
		}
		if !last {
			stdin = splitLines(buf.String())
			continue
		}
		if redirect != "" {
			target := e.abs(redirect)
			if appendMode {
				return e.P.AppendFile(target, []byte(buf.String()), 0o644)
			}
			return e.P.WriteFile(target, []byte(buf.String()), 0o644)
		}
	}
	return nil
}

// RunScript executes multiple newline-separated commands, skipping blanks
// and "#" comments.
func (e *Env) RunScript(script string) error {
	for _, line := range strings.Split(script, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := e.Run(line); err != nil {
			return fmt.Errorf("%s: %w", line, err)
		}
	}
	return nil
}

// splitPipeline splits on "|" (respecting quotes) and extracts a trailing
// "> path" / ">> path" redirection.
func splitPipeline(line string) (stages []string, redirect string, appendMode bool, err error) {
	var cur strings.Builder
	inQuote := false
	flush := func() {
		s := strings.TrimSpace(cur.String())
		if s != "" {
			stages = append(stages, s)
		}
		cur.Reset()
	}
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == '|' && !inQuote:
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		return nil, "", false, fmt.Errorf("%w: unterminated quote", ErrUsage)
	}
	flush()
	if len(stages) == 0 {
		return stages, "", false, nil
	}
	last := stages[len(stages)-1]
	if idx := strings.LastIndex(last, ">>"); idx >= 0 && !strings.Contains(last[idx:], "\"") {
		redirect = strings.TrimSpace(last[idx+2:])
		appendMode = true
		stages[len(stages)-1] = strings.TrimSpace(last[:idx])
	} else if idx := strings.LastIndex(last, ">"); idx >= 0 && !strings.Contains(last[idx:], "\"") {
		redirect = strings.TrimSpace(last[idx+1:])
		stages[len(stages)-1] = strings.TrimSpace(last[:idx])
	}
	if redirect == "" && appendMode {
		return nil, "", false, fmt.Errorf("%w: redirect without target", ErrUsage)
	}
	return stages, redirect, appendMode, nil
}

// tokenize splits a stage into arguments with double-quote support.
func tokenize(s string) ([]string, error) {
	var args []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			args = append(args, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			if inQuote {
				args = append(args, cur.String())
				cur.Reset()
			}
			inQuote = !inQuote
		case (c == ' ' || c == '\t') && !inQuote:
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("%w: unterminated quote", ErrUsage)
	}
	flush()
	return args, nil
}

func splitLines(s string) []string {
	s = strings.TrimRight(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// sortedCommandNames lists the built-ins (for help output).
func sortedCommandNames() []string {
	names := make([]string, 0, len(commands))
	for n := range commands {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Commands returns the available built-in names.
func Commands() []string { return sortedCommandNames() }
