package shell

import (
	"errors"
	"strings"
	"testing"

	"yanc/internal/openflow"
	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

// testEnv builds a small populated yanc fs and a shell over it.
func testEnv(t *testing.T) (*Env, *strings.Builder) {
	t.Helper()
	y, err := yancfs.New()
	if err != nil {
		t.Fatal(err)
	}
	p := y.Root()
	for _, sw := range []string{"sw1", "sw2"} {
		if _, err := yancfs.CreateSwitch(p, "/", sw); err != nil {
			t.Fatal(err)
		}
	}
	m, _ := openflow.ParseMatch("dl_type=0x0800,nw_proto=6,tp_dst=22")
	if _, err := yancfs.WriteFlow(p, "/switches/sw1/flows/ssh", yancfs.FlowSpec{
		Match: m, Priority: 10, Actions: []openflow.Action{openflow.Output(2)},
	}); err != nil {
		t.Fatal(err)
	}
	m80, _ := openflow.ParseMatch("dl_type=0x0800,nw_proto=6,tp_dst=80")
	if _, err := yancfs.WriteFlow(p, "/switches/sw2/flows/web", yancfs.FlowSpec{
		Match: m80, Priority: 10, Actions: []openflow.Action{openflow.Output(1)},
	}); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	return NewEnv(p, &out), &out
}

func run(t *testing.T, e *Env, out *strings.Builder, line string) string {
	t.Helper()
	out.Reset()
	if err := e.Run(line); err != nil {
		t.Fatalf("%s: %v", line, err)
	}
	return out.String()
}

func TestLsSwitches(t *testing.T) {
	e, out := testEnv(t)
	// "$ ls -l /net/switches" (§5.4) — our fs root is the /net mount.
	got := run(t, e, out, "ls -l /switches")
	if !strings.Contains(got, "sw1") || !strings.Contains(got, "sw2") {
		t.Errorf("ls -l = %q", got)
	}
	if !strings.HasPrefix(got, "d") {
		t.Errorf("long listing must show modes: %q", got)
	}
	// Short form.
	got = run(t, e, out, "ls /switches")
	if got != "sw1\nsw2\n" {
		t.Errorf("ls = %q", got)
	}
}

func TestFindFlowsAffectingSSH(t *testing.T) {
	e, out := testEnv(t)
	// The paper's one-liner: find flow entries affecting ssh traffic.
	got := run(t, e, out, "find /switches -name match.tp_dst | xargs grep -l 22")
	if !strings.Contains(got, "/switches/sw1/flows/ssh/match.tp_dst") {
		t.Errorf("ssh finder = %q", got)
	}
	if strings.Contains(got, "sw2") {
		t.Errorf("web flow matched ssh query: %q", got)
	}
}

func TestEchoRedirectBringsPortDown(t *testing.T) {
	e, out := testEnv(t)
	if err := e.P.Mkdir("/switches/sw1/ports/2", 0o755); err != nil {
		t.Fatal(err)
	}
	// "# echo 1 > port_2/config.port_down" (§3.1).
	run(t, e, out, "echo 1 > /switches/sw1/ports/2/config.port_down")
	if b, _ := e.P.ReadFile("/switches/sw1/ports/2/config.port_down"); strings.TrimSpace(string(b)) != "1" {
		t.Errorf("config.port_down = %q", b)
	}
	// Append mode.
	run(t, e, out, "echo note >> /switches/sw1/ports/2/config.port_down")
	b, _ := e.P.ReadFile("/switches/sw1/ports/2/config.port_down")
	if string(b) != "1\nnote\n" {
		t.Errorf("appended = %q", b)
	}
}

func TestCatAndGrep(t *testing.T) {
	e, out := testEnv(t)
	got := run(t, e, out, "cat /switches/sw1/flows/ssh/match.tp_dst")
	if strings.TrimSpace(got) != "22" {
		t.Errorf("cat = %q", got)
	}
	got = run(t, e, out, "cat /switches/sw1/flows/ssh/priority | grep 10")
	if strings.TrimSpace(got) != "10" {
		t.Errorf("grep = %q", got)
	}
	// grep -v inverts.
	got = run(t, e, out, "cat /switches/sw1/flows/ssh/priority | grep -v 10")
	if got != "" {
		t.Errorf("grep -v = %q", got)
	}
}

func TestTree(t *testing.T) {
	e, out := testEnv(t)
	got := run(t, e, out, "tree /switches/sw1/flows")
	for _, want := range []string{"ssh/", "match.tp_dst", "version", "counters/"} {
		if !strings.Contains(got, want) {
			t.Errorf("tree missing %q:\n%s", want, got)
		}
	}
}

func TestPipelineSortUniqHeadWc(t *testing.T) {
	e, out := testEnv(t)
	got := run(t, e, out, "find /switches -name version | sort | wc -l")
	if strings.TrimSpace(got) != "2" {
		t.Errorf("wc -l = %q", got)
	}
	got = run(t, e, out, "find /switches -type d -name flows | sort | head -n 1")
	if strings.TrimSpace(got) != "/switches/sw1/flows" {
		t.Errorf("head = %q", got)
	}
	got = run(t, e, out, "echo b | sort")
	if got != "b\n" {
		t.Errorf("sort = %q", got)
	}
}

func TestMkdirTouchMvCpRm(t *testing.T) {
	e, out := testEnv(t)
	run(t, e, out, "mkdir -p /tmp/a/b")
	run(t, e, out, "touch /tmp/a/b/f")
	run(t, e, out, "echo hello > /tmp/a/b/f")
	run(t, e, out, "cp -r /tmp/a /tmp/a2")
	if b, _ := e.P.ReadFile("/tmp/a2/b/f"); strings.TrimSpace(string(b)) != "hello" {
		t.Errorf("cp -r content = %q", b)
	}
	run(t, e, out, "mv /tmp/a2 /tmp/a3")
	if e.P.Exists("/tmp/a2") || !e.P.Exists("/tmp/a3/b/f") {
		t.Error("mv failed")
	}
	run(t, e, out, "rm -r /tmp/a3")
	if e.P.Exists("/tmp/a3") {
		t.Error("rm -r failed")
	}
	// cp without -r on a dir fails.
	out.Reset()
	if err := e.Run("cp /tmp/a /tmp/a4"); !errors.Is(err, ErrUsage) {
		t.Errorf("cp dir = %v", err)
	}
}

func TestLnAndReadlink(t *testing.T) {
	e, out := testEnv(t)
	if err := e.P.MkdirAll("/switches/sw1/ports/1", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := e.P.MkdirAll("/switches/sw2/ports/2", 0o755); err != nil {
		t.Fatal(err)
	}
	run(t, e, out, "ln -s /switches/sw2/ports/2 /switches/sw1/ports/1/peer")
	got := run(t, e, out, "readlink /switches/sw1/ports/1/peer")
	if strings.TrimSpace(got) != "/switches/sw2/ports/2" {
		t.Errorf("readlink = %q", got)
	}
	// ls -l shows the arrow.
	got = run(t, e, out, "ls -l /switches/sw1/ports/1")
	if !strings.Contains(got, "peer -> /switches/sw2/ports/2") {
		t.Errorf("ls -l symlink = %q", got)
	}
}

func TestXattrsCommands(t *testing.T) {
	e, out := testEnv(t)
	run(t, e, out, "setfattr -n user.consistency -v eventual /switches/sw1")
	got := run(t, e, out, "getfattr /switches/sw1")
	if !strings.Contains(got, `user.consistency="eventual"`) {
		t.Errorf("getfattr = %q", got)
	}
}

func TestChmodAndStat(t *testing.T) {
	e, out := testEnv(t)
	run(t, e, out, "chmod 700 /switches/sw1")
	got := run(t, e, out, "stat /switches/sw1")
	if !strings.Contains(got, "drwx------") {
		t.Errorf("stat after chmod = %q", got)
	}
}

func TestCdPwd(t *testing.T) {
	e, out := testEnv(t)
	run(t, e, out, "cd /switches/sw1")
	if got := run(t, e, out, "pwd"); strings.TrimSpace(got) != "/switches/sw1" {
		t.Errorf("pwd = %q", got)
	}
	// Relative paths resolve against cwd.
	got := run(t, e, out, "ls flows")
	if strings.TrimSpace(got) != "ssh" {
		t.Errorf("relative ls = %q", got)
	}
	out.Reset()
	if err := e.Run("cd /switches/sw1/id"); err == nil {
		t.Error("cd to a file must fail")
	}
}

func TestRunScript(t *testing.T) {
	e, out := testEnv(t)
	script := `
# bring up a maintenance note
mkdir -p /tmp/notes
echo "sw1 under maintenance" > /tmp/notes/sw1
cat /tmp/notes/sw1
`
	out.Reset()
	if err := e.RunScript(script); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "under maintenance") {
		t.Errorf("script output = %q", out.String())
	}
	// A failing line reports which line failed.
	err := e.RunScript("cat /does/not/exist")
	if err == nil || !strings.Contains(err.Error(), "cat /does/not/exist") {
		t.Errorf("script error = %v", err)
	}
}

func TestErrorsAndUnknown(t *testing.T) {
	e, _ := testEnv(t)
	if err := e.Run("frobnicate /x"); !errors.Is(err, ErrUnknownCommand) {
		t.Errorf("unknown = %v", err)
	}
	if err := e.Run(`echo "unterminated`); !errors.Is(err, ErrUsage) {
		t.Errorf("unterminated = %v", err)
	}
	if err := e.Run(""); err != nil {
		t.Errorf("empty = %v", err)
	}
	if err := e.Run("find"); !errors.Is(err, ErrUsage) {
		t.Errorf("find usage = %v", err)
	}
}

func TestQuotedArguments(t *testing.T) {
	e, out := testEnv(t)
	got := run(t, e, out, `echo "two words"`)
	if got != "two words\n" {
		t.Errorf("quoted echo = %q", got)
	}
	// A quoted pipe is not a pipeline separator.
	got = run(t, e, out, `echo "a|b"`)
	if got != "a|b\n" {
		t.Errorf("quoted pipe = %q", got)
	}
}

func TestPermissionDeniedSurfacing(t *testing.T) {
	e, _ := testEnv(t)
	alice := e.P.(*vfs.Proc).WithCred(vfs.Cred{UID: 1000})
	ae := NewEnv(alice, &strings.Builder{})
	if err := ae.Run("mkdir /switches/sw1/flows/evil"); !errors.Is(err, vfs.ErrAccess) {
		t.Errorf("unprivileged mkdir = %v", err)
	}
}

func TestCommandsList(t *testing.T) {
	names := Commands()
	if len(names) < 20 {
		t.Errorf("commands = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("not sorted at %d: %v", i, names)
		}
	}
}
