package shell

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"yanc/internal/vfs"
)

// modeString renders a stat like ls -l does (drwxr-xr-x).
func modeString(st vfs.Stat) string {
	var b [10]byte
	switch st.Kind {
	case vfs.KindDir:
		b[0] = 'd'
	case vfs.KindSymlink:
		b[0] = 'l'
	default:
		b[0] = '-'
	}
	perms := "rwxrwxrwx"
	for i := 0; i < 9; i++ {
		if st.Mode>>(8-i)&1 == 1 {
			b[i+1] = perms[i]
		} else {
			b[i+1] = '-'
		}
	}
	return string(b[:])
}

func cmdLs(e *Env, args []string, _ []string, out io.Writer) error {
	long := false
	var paths []string
	for _, a := range args {
		if a == "-l" {
			long = true
			continue
		}
		if a == "-la" || a == "-al" {
			long = true
			continue
		}
		paths = append(paths, a)
	}
	if len(paths) == 0 {
		paths = []string{e.Cwd}
	}
	printEntry := func(path string, st vfs.Stat, name string) {
		if !long {
			fmt.Fprintln(out, name)
			return
		}
		suffix := ""
		if st.Kind == vfs.KindSymlink {
			if tgt, err := e.P.Readlink(path); err == nil {
				suffix = " -> " + tgt
			}
		}
		fmt.Fprintf(out, "%s %2d %4d %4d %6d %s%s\n",
			modeString(st), st.Nlink, st.UID, st.GID, st.Size, name, suffix)
	}
	for _, p := range paths {
		full := e.abs(p)
		st, err := e.P.Lstat(full)
		if err != nil {
			return err
		}
		if !st.IsDir() {
			printEntry(full, st, full)
			continue
		}
		entries, err := e.P.ReadDir(full)
		if err != nil {
			return err
		}
		for _, de := range entries {
			child := vfs.Join(full, de.Name)
			cst, err := e.P.Lstat(child)
			if err != nil {
				continue
			}
			printEntry(child, cst, de.Name)
		}
	}
	return nil
}

func cmdCat(e *Env, args []string, stdin []string, out io.Writer) error {
	if len(args) == 0 {
		for _, l := range stdin {
			fmt.Fprintln(out, l)
		}
		return nil
	}
	for _, a := range args {
		b, err := e.P.ReadFile(e.abs(a))
		if err != nil {
			return err
		}
		if _, err := out.Write(b); err != nil {
			return err
		}
		if len(b) > 0 && b[len(b)-1] != '\n' {
			fmt.Fprintln(out)
		}
	}
	return nil
}

func cmdEcho(e *Env, args []string, _ []string, out io.Writer) error {
	fmt.Fprintln(out, strings.Join(args, " "))
	return nil
}

func cmdTree(e *Env, args []string, _ []string, out io.Writer) error {
	root := e.Cwd
	if len(args) > 0 {
		root = e.abs(args[0])
	}
	fmt.Fprintln(out, root)
	var walk func(dir, prefix string) error
	walk = func(dir, prefix string) error {
		entries, err := e.P.ReadDir(dir)
		if err != nil {
			return err
		}
		for i, de := range entries {
			connector, childPrefix := "├── ", prefix+"│   "
			if i == len(entries)-1 {
				connector, childPrefix = "└── ", prefix+"    "
			}
			child := vfs.Join(dir, de.Name)
			label := de.Name
			st, err := e.P.Lstat(child)
			if err == nil && st.Kind == vfs.KindSymlink {
				if tgt, err := e.P.Readlink(child); err == nil {
					label += " -> " + tgt
				}
			}
			if de.IsDir() {
				label += "/"
			}
			fmt.Fprintln(out, prefix+connector+label)
			if de.IsDir() {
				if err := walk(child, childPrefix); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return walk(root, "")
}

func cmdFind(e *Env, args []string, _ []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("%w: find <path> [-name pat] [-type f|d|l]", ErrUsage)
	}
	root := e.abs(args[0])
	var namePat, typeFilter string
	rest := args[1:]
	for i := 0; i < len(rest); i++ {
		switch rest[i] {
		case "-name":
			if i+1 >= len(rest) {
				return fmt.Errorf("%w: -name needs a pattern", ErrUsage)
			}
			i++
			namePat = rest[i]
		case "-type":
			if i+1 >= len(rest) {
				return fmt.Errorf("%w: -type needs f|d|l", ErrUsage)
			}
			i++
			typeFilter = rest[i]
		default:
			return fmt.Errorf("%w: find: unknown predicate %q", ErrUsage, rest[i])
		}
	}
	return e.walk(root, func(path string, st vfs.Stat) error {
		if namePat != "" {
			ok, _ := matchGlob(namePat, vfs.Base(path))
			if !ok {
				return nil
			}
		}
		switch typeFilter {
		case "f":
			if st.Kind != vfs.KindFile {
				return nil
			}
		case "d":
			if st.Kind != vfs.KindDir {
				return nil
			}
		case "l":
			if st.Kind != vfs.KindSymlink {
				return nil
			}
		}
		fmt.Fprintln(out, path)
		return nil
	})
}

// matchGlob is find's -name matcher: '*' and '?' wildcards.
func matchGlob(pattern, name string) (bool, error) {
	var match func(p, s string) bool
	match = func(p, s string) bool {
		for len(p) > 0 {
			switch p[0] {
			case '*':
				for i := 0; i <= len(s); i++ {
					if match(p[1:], s[i:]) {
						return true
					}
				}
				return false
			case '?':
				if len(s) == 0 {
					return false
				}
				p, s = p[1:], s[1:]
			default:
				if len(s) == 0 || s[0] != p[0] {
					return false
				}
				p, s = p[1:], s[1:]
			}
		}
		return len(s) == 0
	}
	return match(pattern, name), nil
}

func cmdGrep(e *Env, args []string, stdin []string, out io.Writer) error {
	listOnly := false
	invert := false
	var rest []string
	for _, a := range args {
		switch a {
		case "-l":
			listOnly = true
		case "-v":
			invert = true
		default:
			rest = append(rest, a)
		}
	}
	if len(rest) == 0 {
		return fmt.Errorf("%w: grep [-l] [-v] <pattern> [files|stdin]", ErrUsage)
	}
	pattern := rest[0]
	files := rest[1:]
	if len(files) == 0 {
		for _, l := range stdin {
			if strings.Contains(l, pattern) != invert {
				fmt.Fprintln(out, l)
			}
		}
		return nil
	}
	for _, f := range files {
		full := e.abs(f)
		b, err := e.P.ReadFile(full)
		if err != nil {
			continue // grep skips unreadable files
		}
		matched := false
		for _, l := range splitLines(string(b)) {
			if strings.Contains(l, pattern) != invert {
				matched = true
				if listOnly {
					break
				}
				if len(files) > 1 {
					fmt.Fprintf(out, "%s:%s\n", full, l)
				} else {
					fmt.Fprintln(out, l)
				}
			}
		}
		if matched && listOnly {
			fmt.Fprintln(out, full)
		}
	}
	return nil
}

func cmdStat(e *Env, args []string, _ []string, out io.Writer) error {
	for _, a := range args {
		st, err := e.P.Lstat(e.abs(a))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: %s ino=%d nlink=%d uid=%d gid=%d size=%d version=%d\n",
			e.abs(a), modeString(st), st.Ino, st.Nlink, st.UID, st.GID, st.Size, st.Version)
	}
	return nil
}

func cmdRm(e *Env, args []string, stdin []string, out io.Writer) error {
	recursive := false
	var paths []string
	for _, a := range args {
		if a == "-r" || a == "-rf" {
			recursive = true
			continue
		}
		paths = append(paths, a)
	}
	if len(paths) == 0 {
		paths = stdin
	}
	for _, a := range paths {
		full := e.abs(a)
		var err error
		if recursive {
			err = e.P.RemoveAll(full)
		} else {
			err = e.P.Remove(full)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func cmdMkdir(e *Env, args []string, _ []string, out io.Writer) error {
	parents := false
	var paths []string
	for _, a := range args {
		if a == "-p" {
			parents = true
			continue
		}
		paths = append(paths, a)
	}
	for _, a := range paths {
		full := e.abs(a)
		var err error
		if parents {
			err = e.P.MkdirAll(full, 0o755)
		} else {
			err = e.P.Mkdir(full, 0o755)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func cmdMv(e *Env, args []string, _ []string, out io.Writer) error {
	if len(args) != 2 {
		return fmt.Errorf("%w: mv <src> <dst>", ErrUsage)
	}
	return e.P.Rename(e.abs(args[0]), e.abs(args[1]))
}

func cmdCp(e *Env, args []string, _ []string, out io.Writer) error {
	recursive := false
	var paths []string
	for _, a := range args {
		if a == "-r" {
			recursive = true
			continue
		}
		paths = append(paths, a)
	}
	if len(paths) != 2 {
		return fmt.Errorf("%w: cp [-r] <src> <dst>", ErrUsage)
	}
	src, dst := e.abs(paths[0]), e.abs(paths[1])
	return copyTree(e.P, src, dst, recursive)
}

func copyTree(p FileSystem, src, dst string, recursive bool) error {
	st, err := p.Lstat(src)
	if err != nil {
		return err
	}
	// Copying into an existing directory targets dst/<base>.
	if dstSt, err := p.Lstat(dst); err == nil && dstSt.IsDir() {
		dst = vfs.Join(dst, vfs.Base(src))
	}
	switch st.Kind {
	case vfs.KindSymlink:
		target, err := p.Readlink(src)
		if err != nil {
			return err
		}
		return p.Symlink(target, dst)
	case vfs.KindDir:
		if !recursive {
			return fmt.Errorf("%w: cp: %s is a directory (use -r)", ErrUsage, src)
		}
		if err := p.MkdirAll(dst, st.Mode.Perm()); err != nil {
			return err
		}
		entries, err := p.ReadDir(src)
		if err != nil {
			return err
		}
		for _, de := range entries {
			if err := copyTree(p, vfs.Join(src, de.Name), vfs.Join(dst, de.Name), true); err != nil {
				return err
			}
		}
		return nil
	default:
		b, err := p.ReadFile(src)
		if err != nil {
			return err
		}
		return p.WriteFile(dst, b, st.Mode.Perm())
	}
}

func cmdLn(e *Env, args []string, _ []string, out io.Writer) error {
	if len(args) != 3 || args[0] != "-s" {
		return fmt.Errorf("%w: ln -s <target> <link>", ErrUsage)
	}
	return e.P.Symlink(args[1], e.abs(args[2]))
}

func cmdReadlink(e *Env, args []string, _ []string, out io.Writer) error {
	for _, a := range args {
		tgt, err := e.P.Readlink(e.abs(a))
		if err != nil {
			return err
		}
		fmt.Fprintln(out, tgt)
	}
	return nil
}

func cmdTouch(e *Env, args []string, _ []string, out io.Writer) error {
	for _, a := range args {
		full := e.abs(a)
		if e.P.Exists(full) {
			continue
		}
		if err := e.P.WriteFile(full, nil, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func cmdWc(e *Env, args []string, stdin []string, out io.Writer) error {
	if len(args) == 1 && args[0] == "-l" {
		fmt.Fprintln(out, len(stdin))
		return nil
	}
	if len(args) == 2 && args[0] == "-l" {
		b, err := e.P.ReadFile(e.abs(args[1]))
		if err != nil {
			return err
		}
		fmt.Fprintln(out, len(splitLines(string(b))))
		return nil
	}
	return fmt.Errorf("%w: wc -l [file]", ErrUsage)
}

func cmdHead(e *Env, args []string, stdin []string, out io.Writer) error {
	n := 10
	if len(args) == 2 && args[0] == "-n" {
		v, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("%w: head -n <count>", ErrUsage)
		}
		n = v
	}
	for i, l := range stdin {
		if i >= n {
			break
		}
		fmt.Fprintln(out, l)
	}
	return nil
}

func cmdSort(e *Env, args []string, stdin []string, out io.Writer) error {
	lines := append([]string(nil), stdin...)
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(out, l)
	}
	return nil
}

func cmdUniq(e *Env, args []string, stdin []string, out io.Writer) error {
	var prev string
	first := true
	for _, l := range stdin {
		if first || l != prev {
			fmt.Fprintln(out, l)
		}
		prev = l
		first = false
	}
	return nil
}

func cmdXargs(e *Env, args []string, stdin []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("%w: xargs <command> [args...]", ErrUsage)
	}
	cmd, ok := commands[args[0]]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownCommand, args[0])
	}
	return cmd(e, append(args[1:], stdin...), nil, out)
}

func cmdChmod(e *Env, args []string, _ []string, out io.Writer) error {
	if len(args) != 2 {
		return fmt.Errorf("%w: chmod <octal> <path>", ErrUsage)
	}
	mode, err := strconv.ParseUint(args[0], 8, 16)
	if err != nil {
		return fmt.Errorf("%w: chmod mode %q", ErrUsage, args[0])
	}
	return e.P.Chmod(e.abs(args[1]), vfs.FileMode(mode))
}

func cmdGetfattr(e *Env, args []string, _ []string, out io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("%w: getfattr <path>", ErrUsage)
	}
	full := e.abs(args[0])
	names, err := e.P.ListXattr(full)
	if err != nil {
		return err
	}
	for _, n := range names {
		v, err := e.P.GetXattr(full, n)
		if err != nil {
			continue
		}
		fmt.Fprintf(out, "%s=%q\n", n, v)
	}
	return nil
}

func cmdSetfattr(e *Env, args []string, _ []string, out io.Writer) error {
	// setfattr -n name -v value path
	if len(args) != 5 || args[0] != "-n" || args[2] != "-v" {
		return fmt.Errorf("%w: setfattr -n <name> -v <value> <path>", ErrUsage)
	}
	return e.P.SetXattr(e.abs(args[4]), args[1], []byte(args[3]))
}

func cmdPwd(e *Env, _ []string, _ []string, out io.Writer) error {
	fmt.Fprintln(out, e.Cwd)
	return nil
}

func cmdCd(e *Env, args []string, _ []string, out io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("%w: cd <dir>", ErrUsage)
	}
	full := e.abs(args[0])
	if !e.P.IsDir(full) {
		return fmt.Errorf("cd %s: %w", full, vfs.ErrNotDir)
	}
	e.Cwd = full
	return nil
}
