package vfs

import (
	"strings"
	"sync"
)

// Interning pools for the strings and small payloads that repeat across
// giant control trees. A network with 10⁶ flow directories stores the
// same child names (match.in_port, action.output, version, ...) and the
// same small attribute values ("5\n", "in_port=1", ...) over and over;
// without deduplication those copies dominate resident memory long
// before the inodes themselves do. Both pools are bounded: once full
// they stop admitting new entries and callers fall back to private
// copies, so adversarial unique-key workloads cannot grow them.
//
// Interned values are shared across inodes and are therefore immutable;
// the data pool's users mark the owning inode dataShared and copy on
// write (see File.Write). Name strings are immutable in Go already, so
// sharing them needs no flag.

const (
	// internNameCap bounds the name pool. Component-name vocabularies
	// are tiny (a few dozen per object schema); 4096 leaves room for
	// many applications without letting unique names bloat the pool.
	internNameCap = 4096
	// internDataCap bounds the payload pool, and internDataMax the size
	// of an admissible payload: small single-value attribute files are
	// where duplication pays; big payloads are rarely identical.
	internDataCap = 4096
	internDataMax = 64
)

var names = struct {
	mu sync.RWMutex
	m  map[string]string
}{m: make(map[string]string, 256)}

// internName returns a canonical string equal to name. Repeated
// component names collapse to one backing array, and — as important —
// the result never aliases a larger path string: resolution hands out
// names as substrings of the caller's full path, and storing one in an
// inode would pin the whole path in memory for the inode's lifetime.
func internName(name string) string {
	names.mu.RLock()
	c, ok := names.m[name]
	names.mu.RUnlock()
	if ok {
		return c
	}
	c = strings.Clone(name)
	names.mu.Lock()
	if have, ok := names.m[c]; ok {
		c = have
	} else if len(names.m) < internNameCap {
		names.m[c] = c
	}
	names.mu.Unlock()
	return c
}

var payloads = struct {
	mu sync.RWMutex
	m  map[string][]byte
}{m: make(map[string][]byte, 256)}

// internBytes returns a canonical shared slice equal to b when b is
// small enough to pool and the pool admits it. ok=false means the
// caller must keep its own copy. A returned slice is shared across
// inodes: the caller must mark the inode dataShared and never write
// into the slice (canonical slices are allocated with exact capacity,
// so even an append can never land inside one).
func internBytes(b []byte) (data []byte, ok bool) {
	if len(b) == 0 || len(b) > internDataMax {
		return nil, false
	}
	payloads.mu.RLock()
	c, ok := payloads.m[string(b)] // no alloc: map lookup special case
	payloads.mu.RUnlock()
	if ok {
		return c, true
	}
	payloads.mu.Lock()
	defer payloads.mu.Unlock()
	if c, ok := payloads.m[string(b)]; ok {
		return c, true
	}
	if len(payloads.m) >= internDataCap {
		return nil, false
	}
	c = make([]byte, len(b))
	copy(c, b)
	payloads.m[string(c)] = c
	return c, true
}
