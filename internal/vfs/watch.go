package vfs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// EventOp is a bitmask of file-system event kinds, mirroring the inotify
// mask bits the paper's applications subscribe with (§5.2).
type EventOp uint32

const (
	OpCreate EventOp = 1 << iota
	OpWrite
	OpRemove
	OpRename
	OpChmod
	OpCloseWrite
	OpOverflow
)

// OpAll subscribes to every event kind.
const OpAll = OpCreate | OpWrite | OpRemove | OpRename | OpChmod | OpCloseWrite

func (op EventOp) String() string {
	var parts []string
	add := func(bit EventOp, name string) {
		if op&bit != 0 {
			parts = append(parts, name)
		}
	}
	add(OpCreate, "CREATE")
	add(OpWrite, "WRITE")
	add(OpRemove, "REMOVE")
	add(OpRename, "RENAME")
	add(OpChmod, "CHMOD")
	add(OpCloseWrite, "CLOSE_WRITE")
	add(OpOverflow, "OVERFLOW")
	if len(parts) == 0 {
		return "NONE"
	}
	return strings.Join(parts, "|")
}

// Event describes one file-system change.
type Event struct {
	Op      EventOp
	Path    string // absolute path of the affected object
	NewPath string // for OpRename: the destination path
	IsDir   bool
}

// Watch is a subscription to events on a path (and optionally its whole
// subtree). Events arrive on C; if the consumer falls behind by more than
// the buffer capacity, events are dropped and a single Overflow event is
// queued, matching inotify's IN_Q_OVERFLOW behaviour.
type Watch struct {
	C <-chan Event

	id        uint64
	path      string // watched path, cleaned; "" never matches
	mask      EventOp
	recursive bool
	ch        chan Event
	set       *watchSet

	mu         sync.Mutex
	overflowed bool
	closed     bool

	// Queue-pressure accounting, exported via Info for the .proc/watch
	// files. drops counts events discarded (including marker evictions);
	// overflows counts distinct overflow episodes.
	drops     atomic.Uint64
	overflows atomic.Uint64
}

// Close removes the watch and closes its channel.
func (w *Watch) Close() {
	w.set.remove(w)
}

// WatchOption configures AddWatch.
type WatchOption func(*Watch)

// Recursive makes the watch cover the entire subtree under the path.
func Recursive() WatchOption {
	return func(w *Watch) { w.recursive = true }
}

// BufferSize sets the event channel capacity (default 1024).
func BufferSize(n int) WatchOption {
	return func(w *Watch) {
		if n > 0 {
			w.ch = make(chan Event, n)
		}
	}
}

type watchSet struct {
	mu      sync.RWMutex
	nextID  uint64
	watches map[uint64]*Watch
	// snap is an immutable snapshot of the watch list, rebuilt under mu
	// whenever a watch is added or removed, so fanout grabs a slice header
	// instead of copying the map on every batch.
	snap []*Watch
	// live mirrors len(snap) so hot paths (one interest probe per flow
	// in a bulk ring drain) can skip the RLock entirely while no watch
	// exists.
	live atomic.Int64

	// Async dispatch queue. Writers enqueue under qmu and return; a single
	// lazily-started worker goroutine drains the queue in FIFO order and
	// exits when it is empty. drained signals queue-empty to SyncWatches.
	// The queue holds whole per-transaction batches: dispatch takes
	// ownership of the caller's slice, so enqueueing never copies events.
	qmu     sync.Mutex
	queue   [][]Event
	running bool
	drained *sync.Cond
	batches atomic.Uint64 // worker drain batches, for .proc
	queued  atomic.Uint64 // events ever enqueued, for .proc

	// bufPool recycles transaction event buffers: WithTx borrows a slice,
	// dispatch takes ownership, and the drain worker returns it after
	// fanout. The write path then allocates no event storage at steady
	// state.
	bufPool sync.Pool
}

// getBuf returns a recycled event buffer (or nil, letting append size it).
func (s *watchSet) getBuf() []Event {
	if v := s.bufPool.Get(); v != nil {
		return v.([]Event)[:0]
	}
	return nil
}

// putBuf returns an event buffer to the pool. Oversized buffers are
// dropped so one huge transaction doesn't pin memory forever.
func (s *watchSet) putBuf(b []Event) {
	if cap(b) == 0 || cap(b) > 8192 {
		return
	}
	s.bufPool.Put(b[:0]) //nolint:staticcheck // slice header boxing is fine here
}

// AddWatch subscribes to events under path. The path need not exist yet —
// a watch on a directory sees events for entries created later, the usage
// pattern from §5.2 ("to monitor for new switches a watch can be placed
// on the switches directory").
func (p *Proc) AddWatch(path string, mask EventOp, opts ...WatchOption) (*Watch, error) {
	p.fs.stats.watches.Add(1)
	if mask == 0 {
		mask = OpAll
	}
	w := &Watch{
		path: Clean(path),
		mask: mask,
		ch:   make(chan Event, 1024),
		set:  &p.fs.watches,
	}
	for _, o := range opts {
		o(w)
	}
	w.C = w.ch
	set := &p.fs.watches
	// Drain the async queue before registering: events that happened
	// before this call must not reach the new watch (inotify semantics —
	// a subscription starts from "now", not from the dispatcher backlog).
	set.waitDrained()
	set.mu.Lock()
	if set.watches == nil {
		set.watches = make(map[uint64]*Watch)
	}
	set.nextID++
	w.id = set.nextID
	set.watches[w.id] = w
	set.rebuildSnapLocked()
	set.mu.Unlock()
	return w, nil
}

// rebuildSnapLocked refreshes the immutable watch snapshot. mu must be
// held for writing.
func (s *watchSet) rebuildSnapLocked() {
	snap := make([]*Watch, 0, len(s.watches))
	for _, w := range s.watches {
		snap = append(snap, w)
	}
	s.snap = snap
	s.live.Store(int64(len(snap)))
}

func (s *watchSet) remove(w *Watch) {
	s.mu.Lock()
	_, present := s.watches[w.id]
	delete(s.watches, w.id)
	s.rebuildSnapLocked()
	s.mu.Unlock()
	if present {
		w.mu.Lock()
		if !w.closed {
			w.closed = true
			close(w.ch)
		}
		w.mu.Unlock()
	}
}

// matches reports whether the watch covers an event at path: either the
// path is directly inside the watched directory (inotify semantics: a
// watch on a dir reports its children and the dir itself), or anywhere
// beneath it when recursive.
func (w *Watch) matches(path string) bool {
	return w.matchesDir(path, Dir(path))
}

// matchesDir is matches with the event path's parent precomputed: fanout
// checks one event against every watch, so Dir is hoisted out of the
// per-watch loop.
func (w *Watch) matchesDir(path, dir string) bool {
	if path == w.path || dir == w.path {
		return true
	}
	if w.recursive {
		prefix := w.path
		if prefix != "/" {
			prefix += "/"
		}
		return strings.HasPrefix(path, prefix)
	}
	return false
}

// interestedInChildren reports whether any live watch could observe an
// event strictly inside dir: a recursive watch whose subtree intersects
// dir, or any watch rooted at or below dir. Subtree teardown uses this to
// skip queueing per-descendant events nobody can receive.
func (s *watchSet) interestedInChildren(dir string) bool {
	if s.live.Load() == 0 {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, w := range s.watches {
		if w.path == dir || strings.HasPrefix(w.path, dir+"/") {
			return true
		}
		if w.recursive && (w.path == "/" || strings.HasPrefix(dir, w.path+"/")) {
			return true
		}
	}
	return false
}

// interestedInGrandchildren reports whether any watch could observe an
// event strictly inside *some child* of dir — a conservative superset of
// interestedInChildren(child) over all children. Batch removal (drop-oldest
// evicting many message dirs from one buffer) computes this once per batch
// instead of scanning the watch list once per evicted directory.
func (s *watchSet) interestedInGrandchildren(dir string) bool {
	if s.live.Load() == 0 {
		return false
	}
	prefix := dir + "/"
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, w := range s.watches {
		if strings.HasPrefix(w.path, prefix) {
			return true
		}
		if w.recursive && (w.path == "/" || w.path == dir || strings.HasPrefix(dir, w.path+"/")) {
			return true
		}
	}
	return false
}

// condLocked returns the queue-drained condition, creating it on first
// use. qmu must be held.
func (s *watchSet) condLocked() *sync.Cond {
	if s.drained == nil {
		s.drained = sync.NewCond(&s.qmu)
	}
	return s.drained
}

// dispatch hands events to the asynchronous dispatcher and returns
// immediately: the write path never pays matching or delivery cost, and a
// watch-heavy workload can never stall writers. Called without the tree
// lock — and, critically, only after the transaction's children-snapshot
// swaps have been published, so a subscriber that reacts to an event by
// resolving the event's path (lock-free or not) always observes the
// post-swap tree (pinned by TestStressWatchPostSwapVisibility).
// Ordering is preserved — a single worker drains the queue FIFO.
// dispatch takes ownership of events; the caller must not reuse the slice.
func (s *watchSet) dispatch(events []Event) {
	if len(events) == 0 {
		s.putBuf(events)
		return
	}
	s.mu.RLock()
	empty := len(s.watches) == 0
	s.mu.RUnlock()
	if empty {
		// No subscribers: drop without queueing. A watch added after this
		// point could not have seen these events under the synchronous
		// scheme either.
		s.putBuf(events)
		return
	}
	s.qmu.Lock()
	s.queue = append(s.queue, events)
	s.queued.Add(uint64(len(events)))
	if !s.running {
		s.running = true
		go s.drain()
	}
	s.qmu.Unlock()
}

// drain is the dispatcher worker: it repeatedly swaps the queue out and
// fans each batch out to the matching watches, exiting when the queue is
// empty. Delivery itself never blocks (deliver drops on a full channel),
// so the queue empties at memory speed regardless of consumers.
func (s *watchSet) drain() {
	for {
		s.qmu.Lock()
		if len(s.queue) == 0 {
			s.running = false
			s.condLocked().Broadcast()
			s.qmu.Unlock()
			return
		}
		batches := s.queue
		s.queue = nil
		s.batches.Add(1)
		s.qmu.Unlock()
		for _, batch := range batches {
			s.fanout(batch)
			s.putBuf(batch)
		}
	}
}

// fanout synchronously delivers a batch to all matching watches.
func (s *watchSet) fanout(events []Event) {
	s.mu.RLock()
	watches := s.snap
	s.mu.RUnlock()
	if len(watches) == 0 {
		return
	}
	for _, ev := range events {
		dir := Dir(ev.Path)
		newDir := ""
		if ev.Op == OpRename {
			newDir = Dir(ev.NewPath)
		}
		for _, w := range watches {
			if ev.Op&w.mask == 0 {
				continue
			}
			if !w.matchesDir(ev.Path, dir) &&
				!(ev.Op == OpRename && w.matchesDir(ev.NewPath, newDir)) {
				continue
			}
			w.deliver(ev)
		}
	}
}

// waitDrained blocks until the dispatch queue is empty and the worker has
// exited. Callers must not hold the tree lock (the worker never takes it,
// but a writer blocked on the tree lock could never enqueue the events
// this wait would otherwise race with).
func (s *watchSet) waitDrained() {
	s.qmu.Lock()
	for s.running || len(s.queue) > 0 {
		s.condLocked().Wait()
	}
	s.qmu.Unlock()
}

// SyncWatches blocks until every event enqueued before the call has been
// delivered (or counted as dropped) on all watches. Tests and anything
// that asserts on watch channels after performing writes should call this
// barrier; production consumers just read their channels.
func (fs *FS) SyncWatches() {
	fs.watches.waitDrained()
}

// DispatchStats reports async-dispatcher gauges for .proc: events ever
// enqueued, worker drain batches, and the current backlog.
func (fs *FS) DispatchStats() (queued, batches uint64, backlog int) {
	s := &fs.watches
	s.qmu.Lock()
	for _, b := range s.queue {
		backlog += len(b)
	}
	s.qmu.Unlock()
	return s.queued.Load(), s.batches.Load(), backlog
}

func (w *Watch) deliver(ev Event) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	select {
	case w.ch <- ev:
		w.overflowed = false
		return
	default:
	}
	// Queue full: the event is lost either way. The consumer must learn
	// about the gap (IN_Q_OVERFLOW), so on the first drop of an episode the
	// marker slot is reserved unconditionally — evict queued events until
	// the marker fits, never bailing out on a failed send the way a single
	// non-blocking attempt could if the consumer raced a slot away.
	w.drops.Add(1)
	if w.overflowed {
		return
	}
	w.overflowed = true
	w.overflows.Add(1)
	for {
		select {
		case w.ch <- Event{Op: OpOverflow}:
			return
		default:
		}
		select {
		case <-w.ch:
			w.drops.Add(1)
		default:
		}
	}
}

// WatchInfo is a point-in-time description of one watch's subscription and
// queue pressure, the row format behind .proc/watch/queues.
type WatchInfo struct {
	ID        uint64
	Path      string
	Mask      EventOp
	Recursive bool
	Depth     int // events currently queued
	Capacity  int
	Drops     uint64
	Overflows uint64
}

// Info snapshots the watch's subscription and queue gauges.
func (w *Watch) Info() WatchInfo {
	return WatchInfo{
		ID:        w.id,
		Path:      w.path,
		Mask:      w.mask,
		Recursive: w.recursive,
		Depth:     len(w.ch),
		Capacity:  cap(w.ch),
		Drops:     w.drops.Load(),
		Overflows: w.overflows.Load(),
	}
}

// WatchInfos snapshots every live watch, ordered by id.
func (fs *FS) WatchInfos() []WatchInfo {
	s := &fs.watches
	s.mu.RLock()
	out := make([]WatchInfo, 0, len(s.watches))
	for _, w := range s.watches {
		out = append(out, w.Info())
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
