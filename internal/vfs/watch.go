package vfs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// EventOp is a bitmask of file-system event kinds, mirroring the inotify
// mask bits the paper's applications subscribe with (§5.2).
type EventOp uint32

const (
	OpCreate EventOp = 1 << iota
	OpWrite
	OpRemove
	OpRename
	OpChmod
	OpCloseWrite
	OpOverflow
)

// OpAll subscribes to every event kind.
const OpAll = OpCreate | OpWrite | OpRemove | OpRename | OpChmod | OpCloseWrite

func (op EventOp) String() string {
	var parts []string
	add := func(bit EventOp, name string) {
		if op&bit != 0 {
			parts = append(parts, name)
		}
	}
	add(OpCreate, "CREATE")
	add(OpWrite, "WRITE")
	add(OpRemove, "REMOVE")
	add(OpRename, "RENAME")
	add(OpChmod, "CHMOD")
	add(OpCloseWrite, "CLOSE_WRITE")
	add(OpOverflow, "OVERFLOW")
	if len(parts) == 0 {
		return "NONE"
	}
	return strings.Join(parts, "|")
}

// Event describes one file-system change.
type Event struct {
	Op      EventOp
	Path    string // absolute path of the affected object
	NewPath string // for OpRename: the destination path
	IsDir   bool
}

// Watch is a subscription to events on a path (and optionally its whole
// subtree). Events arrive on C; if the consumer falls behind by more than
// the buffer capacity, events are dropped and a single Overflow event is
// queued, matching inotify's IN_Q_OVERFLOW behaviour.
type Watch struct {
	C <-chan Event

	id        uint64
	path      string // watched path, cleaned; "" never matches
	mask      EventOp
	recursive bool
	ch        chan Event
	set       *watchSet

	mu         sync.Mutex
	overflowed bool
	closed     bool

	// Queue-pressure accounting, exported via Info for the .proc/watch
	// files. drops counts events discarded (including marker evictions);
	// overflows counts distinct overflow episodes.
	drops     atomic.Uint64
	overflows atomic.Uint64
}

// Close removes the watch and closes its channel.
func (w *Watch) Close() {
	w.set.remove(w)
}

// WatchOption configures AddWatch.
type WatchOption func(*Watch)

// Recursive makes the watch cover the entire subtree under the path.
func Recursive() WatchOption {
	return func(w *Watch) { w.recursive = true }
}

// BufferSize sets the event channel capacity (default 1024).
func BufferSize(n int) WatchOption {
	return func(w *Watch) {
		if n > 0 {
			w.ch = make(chan Event, n)
		}
	}
}

type watchSet struct {
	mu      sync.RWMutex
	nextID  uint64
	watches map[uint64]*Watch
}

// AddWatch subscribes to events under path. The path need not exist yet —
// a watch on a directory sees events for entries created later, the usage
// pattern from §5.2 ("to monitor for new switches a watch can be placed
// on the switches directory").
func (p *Proc) AddWatch(path string, mask EventOp, opts ...WatchOption) (*Watch, error) {
	p.fs.stats.watches.Add(1)
	if mask == 0 {
		mask = OpAll
	}
	w := &Watch{
		path: Clean(path),
		mask: mask,
		ch:   make(chan Event, 1024),
		set:  &p.fs.watches,
	}
	for _, o := range opts {
		o(w)
	}
	w.C = w.ch
	set := &p.fs.watches
	set.mu.Lock()
	if set.watches == nil {
		set.watches = make(map[uint64]*Watch)
	}
	set.nextID++
	w.id = set.nextID
	set.watches[w.id] = w
	set.mu.Unlock()
	return w, nil
}

func (s *watchSet) remove(w *Watch) {
	s.mu.Lock()
	_, present := s.watches[w.id]
	delete(s.watches, w.id)
	s.mu.Unlock()
	if present {
		w.mu.Lock()
		if !w.closed {
			w.closed = true
			close(w.ch)
		}
		w.mu.Unlock()
	}
}

// matches reports whether the watch covers an event at path: either the
// path is directly inside the watched directory (inotify semantics: a
// watch on a dir reports its children and the dir itself), or anywhere
// beneath it when recursive.
func (w *Watch) matches(path string) bool {
	if path == w.path {
		return true
	}
	dir := Dir(path)
	if dir == w.path {
		return true
	}
	if w.recursive {
		prefix := w.path
		if prefix != "/" {
			prefix += "/"
		}
		return strings.HasPrefix(path, prefix)
	}
	return false
}

// dispatch fans events out to all matching watches. Called without the
// tree lock so a slow consumer can never stall file-system operations;
// per-watch buffering with overflow drop bounds memory.
func (s *watchSet) dispatch(events []Event) {
	if len(events) == 0 {
		return
	}
	s.mu.RLock()
	if len(s.watches) == 0 {
		s.mu.RUnlock()
		return
	}
	watches := make([]*Watch, 0, len(s.watches))
	for _, w := range s.watches {
		watches = append(watches, w)
	}
	s.mu.RUnlock()
	for _, ev := range events {
		for _, w := range watches {
			if ev.Op&w.mask == 0 {
				continue
			}
			if !w.matches(ev.Path) && !(ev.Op == OpRename && w.matches(ev.NewPath)) {
				continue
			}
			w.deliver(ev)
		}
	}
}

func (w *Watch) deliver(ev Event) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	select {
	case w.ch <- ev:
		w.overflowed = false
		return
	default:
	}
	// Queue full: the event is lost either way. The consumer must learn
	// about the gap (IN_Q_OVERFLOW), so on the first drop of an episode the
	// marker slot is reserved unconditionally — evict queued events until
	// the marker fits, never bailing out on a failed send the way a single
	// non-blocking attempt could if the consumer raced a slot away.
	w.drops.Add(1)
	if w.overflowed {
		return
	}
	w.overflowed = true
	w.overflows.Add(1)
	for {
		select {
		case w.ch <- Event{Op: OpOverflow}:
			return
		default:
		}
		select {
		case <-w.ch:
			w.drops.Add(1)
		default:
		}
	}
}

// WatchInfo is a point-in-time description of one watch's subscription and
// queue pressure, the row format behind .proc/watch/queues.
type WatchInfo struct {
	ID        uint64
	Path      string
	Mask      EventOp
	Recursive bool
	Depth     int // events currently queued
	Capacity  int
	Drops     uint64
	Overflows uint64
}

// Info snapshots the watch's subscription and queue gauges.
func (w *Watch) Info() WatchInfo {
	return WatchInfo{
		ID:        w.id,
		Path:      w.path,
		Mask:      w.mask,
		Recursive: w.recursive,
		Depth:     len(w.ch),
		Capacity:  cap(w.ch),
		Drops:     w.drops.Load(),
		Overflows: w.overflows.Load(),
	}
}

// WatchInfos snapshots every live watch, ordered by id.
func (fs *FS) WatchInfos() []WatchInfo {
	s := &fs.watches
	s.mu.RLock()
	out := make([]WatchInfo, 0, len(s.watches))
	for _, w := range s.watches {
		out = append(out, w.Info())
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
