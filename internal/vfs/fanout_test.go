package vfs

import (
	"errors"
	"slices"
	"testing"
)

// TestWriteTree checks the batched directory-population primitive: one call
// creates the directory and all its files, watchers of the parent see the
// directory appear, and recreating an existing path fails.
func TestWriteTree(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	if err := p.Mkdir("/spool", 0o755); err != nil {
		t.Fatal(err)
	}
	files := []FileData{
		{Name: "data", Data: []byte("payload")},
		{Name: "in_port", Data: []byte("3\n")},
	}
	err := fs.WithTx(func(tx *Tx) error {
		return tx.WriteTree("/spool/m1", files, 0o755, 0o444, 0, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		got, err := p.ReadFile("/spool/m1/" + f.Name)
		if err != nil || string(got) != string(f.Data) {
			t.Fatalf("%s: %q, %v", f.Name, got, err)
		}
	}
	if err := fs.WithTx(func(tx *Tx) error {
		return tx.WriteTree("/spool/m1", files, 0o755, 0o444, 0, 0)
	}); !errors.Is(err, ErrExist) {
		t.Fatalf("recreating existing tree: got %v, want ErrExist", err)
	}
	if err := fs.WithTx(func(tx *Tx) error {
		return tx.WriteTree("/spool/bad", []FileData{{Name: "a/b"}}, 0o755, 0o444, 0, 0)
	}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("slash in file name: got %v, want ErrInvalid", err)
	}
}

// TestRemoveChildrenAndDirNames checks the batched eviction path used by
// drop-oldest: RemoveChildren skips missing names and reports the count,
// and DirNames reflects the surviving membership.
func TestRemoveChildrenAndDirNames(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	if err := p.Mkdir("/buf", 0o755); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"m1", "m2", "m3", "m4"} {
		if err := p.Mkdir("/buf/"+n, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := p.WriteString("/buf/"+n+"/data", "x"); err != nil {
			t.Fatal(err)
		}
	}
	var removed int
	err := fs.WithTx(func(tx *Tx) error {
		var err error
		removed, err = tx.RemoveChildren("/buf", []string{"m1", "m3", "missing"})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("removed = %d, want 2", removed)
	}
	var names []string
	if err := fs.ReadTx(func(tx *Tx) error {
		var err error
		names, err = tx.DirNames("/buf", nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	slices.Sort(names)
	if !slices.Equal(names, []string{"m2", "m4"}) {
		t.Fatalf("surviving children = %v", names)
	}
	if err := fs.ReadTx(func(tx *Tx) error {
		_, err := tx.DirNames("/buf/m2/data", nil)
		return err
	}); !errors.Is(err, ErrNotDir) {
		t.Fatalf("DirNames on a file: got %v, want ErrNotDir", err)
	}
}

// TestLinkDirFanout checks the multi-destination form: one source resolve,
// per-destination linked() callbacks, stale destinations skipped without
// aborting the rest, and child nlink batched across all links.
func TestLinkDirFanout(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	err := fs.WithTx(func(tx *Tx) error {
		if err := tx.MkdirAll("/spool/m", 0o755, 0, 0); err != nil {
			return err
		}
		if err := tx.WriteFile("/spool/m/data", []byte("d"), 0o444, 0, 0); err != nil {
			return err
		}
		for _, d := range []string{"/b1", "/b2"} {
			if err := tx.Mkdir(d, 0o755, 0, 0); err != nil {
				return err
			}
		}
		// /b2/m already exists: that destination must be skipped.
		return tx.Mkdir("/b2/m", 0o755, 0, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	err = fs.WithTx(func(tx *Tx) error {
		dsts := []string{"/b1/m", "/b2/m", "/gone/m"}
		return tx.LinkDirFanout("/spool/m", dsts, 0o755, 0, 0, func(i int) {
			got = append(got, i)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, []int{0}) {
		t.Fatalf("linked callbacks = %v, want [0]", got)
	}
	st, err := p.Stat("/b1/m/data")
	if err != nil {
		t.Fatal(err)
	}
	if st.Nlink != 2 { // spool + b1
		t.Fatalf("nlink = %d, want 2", st.Nlink)
	}
	if p.Exists("/b2/m/data") {
		t.Fatal("existing destination was overwritten")
	}
}

// TestLinkDirFanoutRefs checks the pre-resolved-destination form used by
// the packet-in hot path: refs resolved once keep working across
// deliveries, a ref whose directory was removed is skipped via the
// parent-pointer test, and shared child inodes count every link.
func TestLinkDirFanoutRefs(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	err := fs.WithTx(func(tx *Tx) error {
		if err := tx.MkdirAll("/spool/m", 0o755, 0, 0); err != nil {
			return err
		}
		if err := tx.WriteFile("/spool/m/data", []byte("d"), 0o444, 0, 0); err != nil {
			return err
		}
		for _, d := range []string{"/b1", "/b2", "/b3"} {
			if err := tx.Mkdir(d, 0o755, 0, 0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]DirRef, 3)
	for i, d := range []string{"/b1", "/b2", "/b3"} {
		if refs[i], err = p.DirRef(d); err != nil {
			t.Fatal(err)
		}
	}
	if (DirRef{}).Valid() {
		t.Fatal("zero DirRef reports valid")
	}
	// Unsubscribe /b2 after the refs were cached — its ref must go stale.
	if err := p.Remove("/b2"); err != nil {
		t.Fatal(err)
	}
	var got []int
	err = fs.WithTx(func(tx *Tx) error {
		return tx.LinkDirFanoutRefs("/spool/m", refs, "m", 0o755, 0, 0, func(i int) {
			got = append(got, i)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, []int{0, 2}) {
		t.Fatalf("linked callbacks = %v, want [0 2]", got)
	}
	st1, err := p.Stat("/b1/m/data")
	if err != nil {
		t.Fatal(err)
	}
	st3, err := p.Stat("/b3/m/data")
	if err != nil {
		t.Fatal(err)
	}
	if st1.Ino != st3.Ino {
		t.Fatalf("refs fan-out copied instead of linked: ino %d vs %d", st1.Ino, st3.Ino)
	}
	if st1.Nlink != 3 { // spool + b1 + b3
		t.Fatalf("nlink = %d, want 3", st1.Nlink)
	}
	// The shared-map alias means every linked dir sees one children set;
	// consuming one copy must still leave the others readable.
	if err := p.RemoveAll("/b1/m"); err != nil {
		t.Fatal(err)
	}
	if data, err := p.ReadFile("/b3/m/data"); err != nil || string(data) != "d" {
		t.Fatalf("surviving copy: %q, %v", data, err)
	}
	if err := fs.WithTx(func(tx *Tx) error {
		return tx.LinkDirFanoutRefs("/spool/m", refs, "bad/name", 0o755, 0, 0, nil)
	}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("slash in link name: got %v, want ErrInvalid", err)
	}
	if _, err := p.DirRef("/b3/m/data"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("DirRef on a file: got %v, want ErrNotDir", err)
	}
}
