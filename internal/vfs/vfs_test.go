package vfs

import (
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCleanAndPathHelpers(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "/"},
		{"/", "/"},
		{"a/b", "/a/b"},
		{"/a//b/", "/a/b"},
		{"/a/./b", "/a/b"},
		{"/a/../b", "/b"},
		{"/../..", "/"},
		{"/a/b/../../c", "/c"},
	}
	for _, c := range cases {
		if got := Clean(c.in); got != c.want {
			t.Errorf("Clean(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if Base("/a/b/c") != "c" || Base("/") != "/" {
		t.Errorf("Base wrong: %q %q", Base("/a/b/c"), Base("/"))
	}
	if Dir("/a/b/c") != "/a/b" || Dir("/a") != "/" || Dir("/") != "/" {
		t.Errorf("Dir wrong")
	}
	if Join("/a", "b", "c") != "/a/b/c" {
		t.Errorf("Join wrong: %q", Join("/a", "b", "c"))
	}
}

func TestMkdirAndStat(t *testing.T) {
	p := New().RootProc()
	if err := p.Mkdir("/switches", 0o755); err != nil {
		t.Fatal(err)
	}
	st, err := p.Stat("/switches")
	if err != nil {
		t.Fatal(err)
	}
	if !st.IsDir() || st.Mode.Perm() != 0o755 {
		t.Errorf("stat = %+v", st)
	}
	if err := p.Mkdir("/switches", 0o755); !errors.Is(err, ErrExist) {
		t.Errorf("second mkdir err = %v, want ErrExist", err)
	}
	if err := p.Mkdir("/missing/child", 0o755); !errors.Is(err, ErrNotExist) {
		t.Errorf("mkdir under missing parent err = %v, want ErrNotExist", err)
	}
}

func TestMkdirAll(t *testing.T) {
	p := New().RootProc()
	if err := p.MkdirAll("/a/b/c/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if !p.IsDir("/a/b/c/d") {
		t.Fatal("deep dir missing")
	}
	// Idempotent.
	if err := p.MkdirAll("/a/b/c/d", 0o755); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadFile(t *testing.T) {
	p := New().RootProc()
	if err := p.WriteString("/priority", "100\n"); err != nil {
		t.Fatal(err)
	}
	got, err := p.ReadString("/priority")
	if err != nil {
		t.Fatal(err)
	}
	if got != "100" {
		t.Errorf("ReadString = %q, want 100", got)
	}
	b, err := p.ReadFile("/priority")
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "100\n" {
		t.Errorf("ReadFile = %q", b)
	}
}

func TestOpenFlags(t *testing.T) {
	p := New().RootProc()
	if _, err := p.Open("/nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("open missing = %v", err)
	}
	if err := p.WriteString("/f", "hello"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.OpenFile("/f", O_CREATE|O_EXCL, 0o644); !errors.Is(err, ErrExist) {
		t.Errorf("O_EXCL on existing = %v", err)
	}
	// O_TRUNC clears.
	f, err := p.OpenFile("/f", O_WRONLY|O_TRUNC, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if s, _ := p.ReadString("/f"); s != "" {
		t.Errorf("after trunc content = %q", s)
	}
	// O_APPEND appends.
	if err := p.WriteString("/f", "a"); err != nil {
		t.Fatal(err)
	}
	if err := p.AppendFile("/f", []byte("b"), 0o644); err != nil {
		t.Fatal(err)
	}
	if s, _ := p.ReadString("/f"); s != "ab" {
		t.Errorf("append got %q", s)
	}
	// Writing a read-only handle fails.
	rf, err := p.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rf.Write([]byte("x")); !errors.Is(err, ErrBadHandle) {
		t.Errorf("write on rdonly = %v", err)
	}
	rf.Close()
	// Opening a directory for write fails.
	if err := p.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := p.OpenFile("/d", O_WRONLY, 0); !errors.Is(err, ErrIsDir) {
		t.Errorf("open dir for write = %v", err)
	}
}

func TestSeekAndReadAt(t *testing.T) {
	p := New().RootProc()
	if err := p.WriteString("/f", "0123456789"); err != nil {
		t.Fatal(err)
	}
	f, err := p.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Seek(4, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	n, err := f.Read(buf)
	if err != nil || n != 3 || string(buf) != "456" {
		t.Errorf("read after seek: %d %v %q", n, err, buf)
	}
	if _, err := f.Seek(-2, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	n, _ = f.Read(buf)
	if string(buf[:n]) != "89" {
		t.Errorf("seek end read = %q", buf[:n])
	}
	if _, err := f.Read(buf); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
	if _, err := f.Seek(-100, io.SeekStart); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative seek = %v", err)
	}
}

func TestSparseWrite(t *testing.T) {
	p := New().RootProc()
	f, err := p.Create("/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(5, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("xy")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	b, _ := p.ReadFile("/f")
	if len(b) != 7 || string(b[5:]) != "xy" || b[0] != 0 {
		t.Errorf("sparse content = %q", b)
	}
}

func TestTruncate(t *testing.T) {
	p := New().RootProc()
	if err := p.WriteString("/f", "abcdef"); err != nil {
		t.Fatal(err)
	}
	f, err := p.OpenFile("/f", O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(3); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	f.Close()
	b, _ := p.ReadFile("/f")
	if string(b) != "abc\x00\x00" {
		t.Errorf("truncate content = %q", b)
	}
}

func TestRemove(t *testing.T) {
	p := New().RootProc()
	if err := p.MkdirAll("/a/b", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteString("/a/b/f", "x"); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove("/a/b"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("remove non-empty = %v", err)
	}
	if err := p.Remove("/a/b/f"); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove("/a/b"); err != nil {
		t.Fatal(err)
	}
	if p.Exists("/a/b") {
		t.Fatal("dir still exists")
	}
	if err := p.Remove("/a/b"); !errors.Is(err, ErrNotExist) {
		t.Errorf("remove missing = %v", err)
	}
	if err := p.RemoveAll("/nonexistent"); err != nil {
		t.Errorf("RemoveAll missing = %v", err)
	}
	if err := p.MkdirAll("/x/y/z", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := p.RemoveAll("/x"); err != nil {
		t.Fatal(err)
	}
	if p.Exists("/x") {
		t.Fatal("subtree still exists")
	}
}

func TestRename(t *testing.T) {
	p := New().RootProc()
	if err := p.MkdirAll("/sw/ports", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteString("/sw/id", "1"); err != nil {
		t.Fatal(err)
	}
	if err := p.Rename("/sw", "/sw1"); err != nil {
		t.Fatal(err)
	}
	if !p.Exists("/sw1/ports") || !p.Exists("/sw1/id") || p.Exists("/sw") {
		t.Fatal("rename did not move subtree")
	}
	// Rename onto existing file replaces it.
	if err := p.WriteString("/f1", "a"); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteString("/f2", "b"); err != nil {
		t.Fatal(err)
	}
	if err := p.Rename("/f1", "/f2"); err != nil {
		t.Fatal(err)
	}
	if s, _ := p.ReadString("/f2"); s != "a" {
		t.Errorf("replaced content = %q", s)
	}
	// Dir onto non-empty dir fails.
	if err := p.MkdirAll("/d1", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := p.Rename("/d1", "/sw1"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("rename onto non-empty dir = %v", err)
	}
	// Moving a dir into its own subtree fails.
	if err := p.Rename("/sw1", "/sw1/ports/sub"); !errors.Is(err, ErrInvalid) {
		t.Errorf("rename into own subtree = %v", err)
	}
}

func TestSymlinks(t *testing.T) {
	p := New().RootProc()
	if err := p.MkdirAll("/switches/sw1/ports/1", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := p.MkdirAll("/switches/sw2/ports/2", 0o755); err != nil {
		t.Fatal(err)
	}
	// Absolute target.
	if err := p.Symlink("/switches/sw2/ports/2", "/switches/sw1/ports/1/peer"); err != nil {
		t.Fatal(err)
	}
	tgt, err := p.Readlink("/switches/sw1/ports/1/peer")
	if err != nil || tgt != "/switches/sw2/ports/2" {
		t.Fatalf("readlink = %q %v", tgt, err)
	}
	// Stat follows; Lstat doesn't.
	st, err := p.Stat("/switches/sw1/ports/1/peer")
	if err != nil || !st.IsDir() {
		t.Fatalf("stat through link = %+v %v", st, err)
	}
	lst, err := p.Lstat("/switches/sw1/ports/1/peer")
	if err != nil || lst.Kind != KindSymlink {
		t.Fatalf("lstat = %+v %v", lst, err)
	}
	// Relative target.
	if err := p.WriteString("/switches/sw2/ports/2/hw_addr", "aa:bb"); err != nil {
		t.Fatal(err)
	}
	if err := p.Symlink("../../../sw2/ports/2", "/switches/sw1/ports/1/rel"); err != nil {
		t.Fatal(err)
	}
	if s, err := p.ReadString("/switches/sw1/ports/1/rel/hw_addr"); err != nil || s != "aa:bb" {
		t.Fatalf("through relative link: %q %v", s, err)
	}
	// Dangling link: Lstat works, Stat fails... actually resolve returns nil node.
	if err := p.Symlink("/missing", "/dangle"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Stat("/dangle"); !errors.Is(err, ErrNotExist) {
		t.Errorf("stat dangling = %v", err)
	}
	if _, err := p.Lstat("/dangle"); err != nil {
		t.Errorf("lstat dangling = %v", err)
	}
	// Loop detection.
	if err := p.Symlink("/loop2", "/loop1"); err != nil {
		t.Fatal(err)
	}
	if err := p.Symlink("/loop1", "/loop2"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Stat("/loop1"); !errors.Is(err, ErrTooManyLinks) {
		t.Errorf("loop stat = %v", err)
	}
	// Readlink on non-symlink.
	if _, err := p.Readlink("/switches"); !errors.Is(err, ErrInvalid) {
		t.Errorf("readlink dir = %v", err)
	}
}

func TestCreateThroughDanglingSymlink(t *testing.T) {
	p := New().RootProc()
	if err := p.Mkdir("/data", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := p.Symlink("/data/real", "/alias"); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteString("/alias", "x"); err != nil {
		t.Fatal(err)
	}
	if s, err := p.ReadString("/data/real"); err != nil || s != "x" {
		t.Errorf("create-through-symlink: %q %v", s, err)
	}
}

func TestHardLinks(t *testing.T) {
	p := New().RootProc()
	if err := p.WriteString("/f", "shared"); err != nil {
		t.Fatal(err)
	}
	if err := p.Link("/f", "/g"); err != nil {
		t.Fatal(err)
	}
	st, _ := p.Stat("/f")
	if st.Nlink != 2 {
		t.Errorf("nlink = %d", st.Nlink)
	}
	if err := p.WriteString("/g", "updated"); err != nil {
		t.Fatal(err)
	}
	if s, _ := p.ReadString("/f"); s != "updated" {
		t.Errorf("hard link content = %q", s)
	}
	if err := p.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	if s, _ := p.ReadString("/g"); s != "updated" {
		t.Errorf("after unlink other name = %q", s)
	}
	// Hard links to dirs are refused.
	if err := p.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := p.Link("/d", "/d2"); !errors.Is(err, ErrPerm) {
		t.Errorf("link dir = %v", err)
	}
}

func TestPermissions(t *testing.T) {
	fs := New()
	root := fs.RootProc()
	alice := fs.Proc(Cred{UID: 1000, GID: 1000})
	bob := fs.Proc(Cred{UID: 1001, GID: 1001})
	carol := fs.Proc(Cred{UID: 1002, GID: 1000}) // same group as alice

	if err := root.Mkdir("/net", 0o755); err != nil {
		t.Fatal(err)
	}
	// alice can't create in root-owned 0755 dir.
	if err := alice.Mkdir("/net/x", 0o755); !errors.Is(err, ErrAccess) {
		t.Errorf("alice mkdir in 0755 root dir = %v", err)
	}
	if err := root.Mkdir("/net/shared", 0o775); err != nil {
		t.Fatal(err)
	}
	if err := root.Chown("/net/shared", 1000, 1000); err != nil {
		t.Fatal(err)
	}
	// alice (owner) can write.
	if err := alice.WriteString("/net/shared/flow", "v"); err != nil {
		t.Fatal(err)
	}
	// carol (group) can write via group bits.
	if err := carol.WriteString("/net/shared/flow2", "v"); err != nil {
		t.Fatal(err)
	}
	// bob (other) cannot.
	if err := bob.WriteString("/net/shared/flow3", "v"); !errors.Is(err, ErrAccess) {
		t.Errorf("bob write = %v", err)
	}
	// File mode 0600: only alice reads.
	if err := alice.Chmod("/net/shared/flow", 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.ReadFile("/net/shared/flow"); !errors.Is(err, ErrAccess) {
		t.Errorf("bob read 0600 = %v", err)
	}
	if _, err := root.ReadFile("/net/shared/flow"); err != nil {
		t.Errorf("root read = %v", err)
	}
	// Chmod by non-owner denied.
	if err := bob.Chmod("/net/shared/flow", 0o777); !errors.Is(err, ErrPerm) {
		t.Errorf("bob chmod = %v", err)
	}
	// Chown by non-root denied.
	if err := alice.Chown("/net/shared/flow", 1001, 1001); !errors.Is(err, ErrPerm) {
		t.Errorf("alice chown = %v", err)
	}
	// Missing exec on a path component blocks traversal.
	if err := root.Mkdir("/net/private", 0o700); err != nil {
		t.Fatal(err)
	}
	if err := root.WriteString("/net/private/f", "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.ReadFile("/net/private/f"); !errors.Is(err, ErrAccess) {
		t.Errorf("traverse 0700 = %v", err)
	}
}

func TestReadDirOrderAndPerm(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := p.Mkdir("/"+n, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := p.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name)
	}
	if strings.Join(names, ",") != "alpha,mid,zeta" {
		t.Errorf("order = %v", names)
	}
	// No read permission on the dir: denied.
	if err := p.Chmod("/alpha", 0o311); err != nil {
		t.Fatal(err)
	}
	alice := fs.Proc(Cred{UID: 5})
	if _, err := alice.ReadDir("/alpha"); !errors.Is(err, ErrAccess) {
		t.Errorf("readdir without r = %v", err)
	}
}

func TestXattrs(t *testing.T) {
	p := New().RootProc()
	if err := p.Mkdir("/sw", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := p.SetXattr("/sw", "user.consistency", []byte("eventual")); err != nil {
		t.Fatal(err)
	}
	if err := p.SetXattr("/sw", "user.owner-app", []byte("topod")); err != nil {
		t.Fatal(err)
	}
	v, err := p.GetXattr("/sw", "user.consistency")
	if err != nil || string(v) != "eventual" {
		t.Fatalf("getxattr = %q %v", v, err)
	}
	names, err := p.ListXattr("/sw")
	if err != nil || len(names) != 2 || names[0] != "user.consistency" {
		t.Fatalf("listxattr = %v %v", names, err)
	}
	if err := p.RemoveXattr("/sw", "user.consistency"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.GetXattr("/sw", "user.consistency"); !errors.Is(err, ErrNoAttr) {
		t.Errorf("get removed = %v", err)
	}
	if err := p.RemoveXattr("/sw", "user.consistency"); !errors.Is(err, ErrNoAttr) {
		t.Errorf("remove removed = %v", err)
	}
}

func collectEvents(w *Watch, n int, timeout time.Duration) []Event {
	var out []Event
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case ev, ok := <-w.C:
			if !ok {
				return out
			}
			out = append(out, ev)
		case <-deadline:
			return out
		}
	}
	return out
}

func TestWatchBasic(t *testing.T) {
	p := New().RootProc()
	if err := p.Mkdir("/switches", 0o755); err != nil {
		t.Fatal(err)
	}
	w, err := p.AddWatch("/switches", OpCreate|OpRemove)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := p.Mkdir("/switches/sw1", 0o755); err != nil {
		t.Fatal(err)
	}
	evs := collectEvents(w, 1, time.Second)
	if len(evs) != 1 || evs[0].Op != OpCreate || evs[0].Path != "/switches/sw1" || !evs[0].IsDir {
		t.Fatalf("events = %+v", evs)
	}
	// Not recursive: grandchildren unseen.
	if err := p.Mkdir("/switches/sw1/ports", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove("/switches/sw1/ports"); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove("/switches/sw1"); err != nil {
		t.Fatal(err)
	}
	evs = collectEvents(w, 1, time.Second)
	if len(evs) != 1 || evs[0].Op != OpRemove || evs[0].Path != "/switches/sw1" {
		t.Fatalf("remove events = %+v", evs)
	}
}

func TestWatchRecursiveAndMask(t *testing.T) {
	p := New().RootProc()
	if err := p.MkdirAll("/net/switches/sw1/flows", 0o755); err != nil {
		t.Fatal(err)
	}
	w, err := p.AddWatch("/net", OpWrite, Recursive())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Create events are masked out; writes anywhere below /net arrive.
	if err := p.WriteString("/net/switches/sw1/flows/version", "1"); err != nil {
		t.Fatal(err)
	}
	evs := collectEvents(w, 1, time.Second)
	if len(evs) != 1 || evs[0].Op != OpWrite || evs[0].Path != "/net/switches/sw1/flows/version" {
		t.Fatalf("events = %+v", evs)
	}
}

func TestWatchCloseWrite(t *testing.T) {
	p := New().RootProc()
	if err := p.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	w, _ := p.AddWatch("/d", OpCloseWrite)
	defer w.Close()
	f, err := p.Create("/d/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	evs := collectEvents(w, 1, time.Second)
	if len(evs) != 1 || evs[0].Op != OpCloseWrite {
		t.Fatalf("events = %+v", evs)
	}
	// Read-only open+close emits nothing.
	rf, _ := p.Open("/d/f")
	rf.Close()
	if evs := collectEvents(w, 1, 50*time.Millisecond); len(evs) != 0 {
		t.Fatalf("unexpected events %+v", evs)
	}
}

func TestWatchOverflow(t *testing.T) {
	p := New().RootProc()
	if err := p.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	w, _ := p.AddWatch("/d", OpWrite, BufferSize(4))
	defer w.Close()
	for i := 0; i < 100; i++ {
		if err := p.WriteString("/d/f", "x"); err != nil {
			t.Fatal(err)
		}
	}
	sawOverflow := false
	for _, ev := range collectEvents(w, 10, 200*time.Millisecond) {
		if ev.Op == OpOverflow {
			sawOverflow = true
		}
	}
	if !sawOverflow {
		t.Fatal("expected an overflow event")
	}
}

func TestWatchRename(t *testing.T) {
	p := New().RootProc()
	if err := p.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteString("/d/a", "x"); err != nil {
		t.Fatal(err)
	}
	w, _ := p.AddWatch("/d", OpRename|OpCreate)
	defer w.Close()
	if err := p.Rename("/d/a", "/d/b"); err != nil {
		t.Fatal(err)
	}
	evs := collectEvents(w, 2, time.Second)
	if len(evs) < 2 || evs[0].Op != OpRename || evs[0].NewPath != "/d/b" || evs[1].Op != OpCreate {
		t.Fatalf("rename events = %+v", evs)
	}
}

func TestSemanticMkdirHook(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	if err := p.Mkdir("/views", 0o755); err != nil {
		t.Fatal(err)
	}
	err := fs.WithTx(func(tx *Tx) error {
		return tx.SetSemantics("/views", &DirSemantics{
			OnMkdir: func(tx *Tx, dir, name string) error {
				base := Join(dir, name)
				for _, sub := range []string{"hosts", "switches", "views"} {
					if err := tx.Mkdir(Join(base, sub), 0o755, 0, 0); err != nil {
						return err
					}
				}
				return nil
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Mkdir("/views/new_view", 0o755); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"hosts", "switches", "views"} {
		if !p.IsDir("/views/new_view/" + sub) {
			t.Errorf("auto child %s missing", sub)
		}
	}
}

func TestSemanticMkdirVeto(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	if err := p.Mkdir("/flows", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WithTx(func(tx *Tx) error {
		return tx.SetSemantics("/flows", &DirSemantics{
			OnMkdir: func(tx *Tx, dir, name string) error {
				if strings.HasPrefix(name, "bad") {
					return ErrInvalid
				}
				return nil
			},
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Mkdir("/flows/bad1", 0o755); !errors.Is(err, ErrInvalid) {
		t.Errorf("vetoed mkdir = %v", err)
	}
	if p.Exists("/flows/bad1") {
		t.Fatal("vetoed dir was left behind")
	}
	if err := p.Mkdir("/flows/good", 0o755); err != nil {
		t.Fatal(err)
	}
}

func TestRecursiveRmdirSemantics(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	if err := p.MkdirAll("/switches/sw1/flows/f1", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WithTx(func(tx *Tx) error {
		return tx.SetSemantics("/switches", &DirSemantics{RecursiveRmdir: true})
	}); err != nil {
		t.Fatal(err)
	}
	// Children need not be removed prior to removing the object (§3.2).
	if err := p.Remove("/switches/sw1"); err != nil {
		t.Fatal(err)
	}
	if p.Exists("/switches/sw1") {
		t.Fatal("switch not removed")
	}
}

func TestValidateSymlinkSemantics(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	if err := p.MkdirAll("/ports/1", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := p.MkdirAll("/other", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.WithTx(func(tx *Tx) error {
		return tx.SetSemantics("/ports/1", &DirSemantics{
			ValidateSymlink: func(tx *Tx, dir, name, target string) error {
				if name == "peer" && !strings.Contains(target, "ports") {
					return ErrInvalid
				}
				return nil
			},
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Symlink("/other", "/ports/1/peer"); !errors.Is(err, ErrInvalid) {
		t.Errorf("invalid peer target = %v", err)
	}
	if err := p.Symlink("/ports/1", "/ports/1/peer"); err != nil {
		t.Errorf("valid peer target = %v", err)
	}
}

func TestProtectedChildren(t *testing.T) {
	fs := New()
	root := fs.RootProc()
	if err := root.MkdirAll("/sw1/flows", 0o777); err != nil {
		t.Fatal(err)
	}
	if err := fs.WithTx(func(tx *Tx) error {
		return tx.SetSemantics("/sw1", &DirSemantics{Protected: map[string]bool{"flows": true}})
	}); err != nil {
		t.Fatal(err)
	}
	alice := fs.Proc(Cred{UID: 7})
	if err := root.Chmod("/sw1", 0o777); err != nil {
		t.Fatal(err)
	}
	if err := alice.Remove("/sw1/flows"); !errors.Is(err, ErrPerm) {
		t.Errorf("remove protected = %v", err)
	}
	if err := alice.Rename("/sw1/flows", "/sw1/flows2"); !errors.Is(err, ErrPerm) {
		t.Errorf("rename protected = %v", err)
	}
	if err := root.Remove("/sw1/flows"); err != nil {
		t.Errorf("root remove protected = %v", err)
	}
}

func TestSyntheticFile(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	if err := p.Mkdir("/counters", 0o755); err != nil {
		t.Fatal(err)
	}
	reads := 0
	var written []byte
	if err := fs.WithTx(func(tx *Tx) error {
		return tx.SetSynthetic("/counters/rx_packets", &Synthetic{
			Read: func() ([]byte, error) {
				reads++
				return []byte("42\n"), nil
			},
			Write: func(data []byte) error {
				written = append([]byte(nil), data...)
				return nil
			},
		}, 0o644, 0, 0)
	}); err != nil {
		t.Fatal(err)
	}
	s, err := p.ReadString("/counters/rx_packets")
	if err != nil || s != "42" {
		t.Fatalf("synthetic read = %q %v", s, err)
	}
	if reads != 1 {
		t.Errorf("reads = %d", reads)
	}
	if err := p.WriteString("/counters/rx_packets", "0"); err != nil {
		t.Fatal(err)
	}
	if string(written) != "0" {
		t.Errorf("synthetic write got %q", written)
	}
	// Read-only synthetic: write hook nil → close fails.
	if err := fs.WithTx(func(tx *Tx) error {
		return tx.SetSynthetic("/counters/ro", &Synthetic{
			Read: func() ([]byte, error) { return []byte("x"), nil },
		}, 0o644, 0, 0)
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteString("/counters/ro", "y"); !errors.Is(err, ErrPerm) {
		t.Errorf("write read-only synthetic = %v", err)
	}
}

func TestChrootIsolation(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	if err := p.MkdirAll("/views/v1/switches", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteString("/secret", "top"); err != nil {
		t.Fatal(err)
	}
	jail, err := p.Chroot("/views/v1")
	if err != nil {
		t.Fatal(err)
	}
	if !jail.IsDir("/switches") {
		t.Fatal("jail can't see own subtree")
	}
	// ".." and absolute paths cannot escape.
	if jail.Exists("/../secret") || jail.Exists("/secret") {
		t.Fatal("jail escaped via ..")
	}
	if _, err := jail.ReadFile("/../../secret"); !errors.Is(err, ErrNotExist) {
		t.Errorf("escape read = %v", err)
	}
	// Absolute symlink inside the jail resolves relative to the jail root.
	if err := p.WriteString("/views/v1/data", "inner"); err != nil {
		t.Fatal(err)
	}
	if err := jail.Symlink("/data", "/switches/link"); err != nil {
		t.Fatal(err)
	}
	if s, err := jail.ReadString("/switches/link"); err != nil || s != "inner" {
		t.Errorf("jail symlink = %q %v", s, err)
	}
	// Chroot of a missing path fails.
	if _, err := p.Chroot("/nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("chroot missing = %v", err)
	}
}

func TestWalkAndGlob(t *testing.T) {
	p := New().RootProc()
	paths := []string{
		"/net/switches/sw1/flows/f1",
		"/net/switches/sw2/flows/f1",
		"/net/hosts",
	}
	for _, pa := range paths {
		if err := p.MkdirAll(pa, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.WriteString("/net/switches/sw1/flows/f1/match.tp_dst", "22"); err != nil {
		t.Fatal(err)
	}
	var visited []string
	if err := p.Walk("/net", func(path string, st Stat) error {
		visited = append(visited, path)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(visited) < 8 || visited[0] != "/net" {
		t.Errorf("walk visited %v", visited)
	}
	// SkipDir prunes.
	var pruned []string
	if err := p.Walk("/net", func(path string, st Stat) error {
		pruned = append(pruned, path)
		if path == "/net/switches" {
			return SkipDir
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, v := range pruned {
		if strings.HasPrefix(v, "/net/switches/") {
			t.Errorf("SkipDir did not prune %s", v)
		}
	}
	got, err := p.Glob("/net/switches/*/flows")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "/net/switches/sw1/flows" {
		t.Errorf("glob = %v", got)
	}
	got, _ = p.Glob("/net/switches/sw?")
	if len(got) != 2 {
		t.Errorf("glob ? = %v", got)
	}
}

func TestOpStatsCount(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	before := fs.Stats().Total()
	if err := p.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteString("/d/f", "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReadFile("/d/f"); err != nil {
		t.Fatal(err)
	}
	after := fs.Stats()
	if after.Total() <= before {
		t.Fatal("stats not counting")
	}
	if after.Creates == 0 || after.Writes == 0 || after.Reads == 0 || after.Opens == 0 {
		t.Errorf("stats = %+v", after)
	}
}

type denyLimiter struct{ after int }

func (d *denyLimiter) Charge(op string, n int) error {
	if d.after <= 0 {
		return ErrQuota
	}
	d.after--
	return nil
}

func TestLimiter(t *testing.T) {
	fs := New()
	p := fs.RootProc().WithLimiter(&denyLimiter{after: 2})
	if err := p.Mkdir("/a", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := p.Mkdir("/b", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := p.Mkdir("/c", 0o755); !errors.Is(err, ErrQuota) {
		t.Errorf("limited mkdir = %v", err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	if err := p.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := "/d/f" + string(rune('a'+i))
			for j := 0; j < 200; j++ {
				if err := p.WriteString(name, "v"); err != nil {
					t.Error(err)
					return
				}
				if _, err := p.ReadFile(name); err != nil {
					t.Error(err)
					return
				}
				if _, err := p.ReadDir("/d"); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	entries, err := p.ReadDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 8 {
		t.Errorf("entries = %d", len(entries))
	}
}

func TestTxWriteAndEvents(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	if err := p.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	w, _ := p.AddWatch("/d", OpAll, Recursive())
	defer w.Close()
	err := fs.WithTx(func(tx *Tx) error {
		if err := tx.Mkdir("/d/obj", 0o755, 0, 0); err != nil {
			return err
		}
		if err := tx.WriteFile("/d/obj/a", []byte("1"), 0o644, 0, 0); err != nil {
			return err
		}
		return tx.WriteFile("/d/obj/version", []byte("1"), 0o644, 0, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := collectEvents(w, 5, time.Second)
	if len(evs) != 5 {
		t.Fatalf("tx events = %+v", evs)
	}
	if evs[0].Op != OpCreate || evs[0].Path != "/d/obj" {
		t.Errorf("first event = %+v", evs[0])
	}
}

func TestStatVersionBumps(t *testing.T) {
	p := New().RootProc()
	if err := p.WriteString("/f", "a"); err != nil {
		t.Fatal(err)
	}
	st1, _ := p.Stat("/f")
	if err := p.WriteString("/f", "b"); err != nil {
		t.Fatal(err)
	}
	st2, _ := p.Stat("/f")
	if st2.Version <= st1.Version {
		t.Errorf("version did not advance: %d -> %d", st1.Version, st2.Version)
	}
}
