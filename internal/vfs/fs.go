// Package vfs implements an in-memory POSIX-like virtual file system: the
// substrate yanc needs in place of the Linux VFS + FUSE. It provides
// inodes, directories, regular files, symbolic links, hard links, rename,
// Unix permissions, extended attributes, inotify-style watches, synthetic
// (procfs-like) files, and semantic-directory hooks that let the yanc
// layer auto-create typed children on mkdir(), exactly as §3.1 of the
// paper describes.
//
// The API is deliberately syscall-shaped (Mkdir, Create, Open, Rename,
// Symlink, Stat, ...) and every call is counted, because the paper's §8.1
// performance argument is about the number of such calls.
//
// Concurrency: the tree scales on multicore through two lock levels — a
// structural tree lock plus ino-sharded inode-state stripes (see lock.go
// and DESIGN.md §8). Non-structural operations on distinct inodes never
// serialize on a global mutex.
package vfs

import (
	"errors"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// maxSymlinkHops bounds symlink resolution, mirroring Linux's ELOOP limit.
const maxSymlinkHops = 40

// Synthetic makes a file behave like a procfs entry: content is produced
// on open-for-read and consumed on close-after-write. Either func may be
// nil, making the file write-only or read-only respectively. Providers run
// outside all tree locks (from the open/close path) and may perform
// arbitrary file I/O of their own.
type Synthetic struct {
	Read  func() ([]byte, error)
	Write func(data []byte) error
}

// DirSemantics attaches yanc object behaviour to a directory. Hooks run
// with the tree lock held in write mode and must only touch the tree
// through the Tx they are handed: calling a Proc-level entry point from a
// hook re-acquires the tree lock and self-deadlocks.
type DirSemantics struct {
	// OnMkdir runs after a child directory of this directory was created.
	// yanc uses it to populate typed children ("mkdir views/new_view"
	// also creates hosts/, switches/, views/).
	OnMkdir func(tx *Tx, dir, name string) error
	// OnCreate runs after a child regular file was created.
	OnCreate func(tx *Tx, dir, name string) error
	// OnRemove runs after a child was removed (for either rmdir or unlink).
	OnRemove func(tx *Tx, dir, name string, kind NodeKind)
	// ValidateSymlink vets a symlink created in this directory; yanc uses
	// it to enforce that a port's "peer" link points at another port.
	ValidateSymlink func(tx *Tx, dir, name, target string) error
	// RecursiveRmdir permits rmdir on non-empty child directories,
	// removing the subtree ("the rmdir() call for switches is
	// automatically recursive").
	RecursiveRmdir bool
	// Protected children cannot be removed or renamed by non-root.
	Protected map[string]bool
}

// inode field locking:
//
//   - ino, kind, target: immutable after creation.
//   - mode, uid, gid: atomics, read lock-free during path resolution.
//   - children, parent, name, nlink, sem, synth: structural — mutated only
//     under the tree write lock, readable under either tree mode.
//   - data, atime, mtime, ctime, version, xattrs: inode-local — under the
//     tree read lock they require the inode's shard stripe; under the
//     tree write lock the stripe is optional (writers are excluded).
type inode struct {
	ino   uint64
	kind  NodeKind
	mode  atomic.Uint32 // FileMode bits
	uid   atomic.Int32
	gid   atomic.Int32
	nlink int

	atime   time.Time
	mtime   time.Time
	ctime   time.Time
	version uint64
	xattrs  map[string][]byte

	// Directory state. parent/name give directories a unique path;
	// regular files may have multiple names via hard links.
	children map[string]*inode
	parent   *inode
	name     string
	sem      *DirSemantics

	// File state.
	data  []byte
	synth *Synthetic

	// Symlink state.
	target string
}

func (n *inode) isDir() bool { return n.kind == KindDir }

func (n *inode) loadMode() FileMode   { return FileMode(n.mode.Load()) }
func (n *inode) storeMode(m FileMode) { n.mode.Store(uint32(m)) }
func (n *inode) loadUID() int         { return int(n.uid.Load()) }
func (n *inode) loadGID() int         { return int(n.gid.Load()) }
func (n *inode) storeOwner(uid, gid int) {
	n.uid.Store(int32(uid))
	n.gid.Store(int32(gid))
}

// touchC updates ctime and version (metadata change). Caller must hold the
// inode's stripe in write mode, or the tree lock in write mode.
func (n *inode) touchC(now time.Time) {
	n.ctime = now
	n.version++
}

// touchM updates mtime+ctime and version (content change). Same locking
// contract as touchC.
func (n *inode) touchM(now time.Time) {
	n.mtime = now
	n.ctime = now
	n.version++
}

// OpStats counts VFS entry points, the in-process analog of the system
// calls (and thus context switches) §8.1 of the paper is concerned with.
type OpStats struct {
	Lookups  uint64
	Opens    uint64
	Reads    uint64
	Writes   uint64
	Creates  uint64
	Removes  uint64
	Renames  uint64
	Stats    uint64
	Links    uint64
	Attrs    uint64
	ReadDirs uint64
	Watches  uint64
}

// Total returns the total number of counted entry points — the in-process
// stand-in for system calls / context switches in §8.1's cost model.
// Per-component Lookups are excluded: path resolution happens inside the
// "kernel" and does not cross the boundary on its own.
func (s OpStats) Total() uint64 {
	return s.Opens + s.Reads + s.Writes + s.Creates + s.Removes +
		s.Renames + s.Stats + s.Links + s.Attrs + s.ReadDirs + s.Watches
}

// Sub returns the counter deltas s - prev, for reporting the operation
// mix of a measured interval.
func (s OpStats) Sub(prev OpStats) OpStats {
	return OpStats{
		Lookups:  s.Lookups - prev.Lookups,
		Opens:    s.Opens - prev.Opens,
		Reads:    s.Reads - prev.Reads,
		Writes:   s.Writes - prev.Writes,
		Creates:  s.Creates - prev.Creates,
		Removes:  s.Removes - prev.Removes,
		Renames:  s.Renames - prev.Renames,
		Stats:    s.Stats - prev.Stats,
		Links:    s.Links - prev.Links,
		Attrs:    s.Attrs - prev.Attrs,
		ReadDirs: s.ReadDirs - prev.ReadDirs,
		Watches:  s.Watches - prev.Watches,
	}
}

type statCounters struct {
	lookups, opens, reads, writes, creates, removes atomic.Uint64
	renames, stats, links, attrs, readdirs, watches atomic.Uint64
}

func (c *statCounters) snapshot() OpStats {
	return OpStats{
		Lookups:  c.lookups.Load(),
		Opens:    c.opens.Load(),
		Reads:    c.reads.Load(),
		Writes:   c.writes.Load(),
		Creates:  c.creates.Load(),
		Removes:  c.removes.Load(),
		Renames:  c.renames.Load(),
		Stats:    c.stats.Load(),
		Links:    c.links.Load(),
		Attrs:    c.attrs.Load(),
		ReadDirs: c.readdirs.Load(),
		Watches:  c.watches.Load(),
	}
}

// FS is a single in-memory file system instance.
type FS struct {
	tree    sync.RWMutex // structural lock; see lock.go
	shards  [LockShards]shardLock
	lockCtr lockCounters

	root    *inode
	nextIno atomic.Uint64
	clock   func() time.Time
	watches watchSet
	stats   statCounters
	lat     latencySet
}

// New creates an empty file system whose root is owned by root:root with
// mode 0755.
func New() *FS {
	fs := &FS{clock: time.Now}
	fs.root = fs.newInode(KindDir, 0o755, 0, 0)
	fs.root.name = "/"
	return fs
}

// SetClock replaces the time source (tests use a fake clock).
func (fs *FS) SetClock(clock func() time.Time) {
	fs.lockTree()
	defer fs.unlockTree()
	fs.clock = clock
}

// Now returns the file system's notion of the current time — the clock
// installed via SetClock. Components that stamp times into files (e.g.
// the driver's last_seen) must use this rather than time.Now so that
// simulated time in tests stays consistent with inode timestamps.
func (fs *FS) Now() time.Time {
	fs.rlockTree()
	defer fs.runlockTree()
	return fs.clock()
}

// Stats returns a snapshot of the operation counters.
func (fs *FS) Stats() OpStats { return fs.stats.snapshot() }

func (fs *FS) newInode(kind NodeKind, mode FileMode, uid, gid int) *inode {
	now := fs.clock()
	n := &inode{
		ino:   fs.nextIno.Add(1),
		kind:  kind,
		nlink: 1,
		atime: now,
		mtime: now,
		ctime: now,
	}
	n.storeMode(mode)
	n.storeOwner(uid, gid)
	if kind == KindDir {
		n.children = make(map[string]*inode)
		n.nlink = 2
	}
	return n
}

// splitPath cleans a slash-separated path into components, dropping empty
// and "." segments. ".." is kept and handled during resolution.
func splitPath(path string) []string {
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, p := range parts {
		if p == "" || p == "." {
			continue
		}
		out = append(out, p)
	}
	return out
}

// Clean normalizes a path to an absolute, "/"-rooted form without "." or
// ".." components (".." above the root clamps to the root).
func Clean(path string) string {
	var stack []string
	for _, p := range splitPath(path) {
		if p == ".." {
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
			continue
		}
		stack = append(stack, p)
	}
	return "/" + strings.Join(stack, "/")
}

// Base returns the last element of path.
func Base(path string) string {
	parts := splitPath(path)
	if len(parts) == 0 {
		return "/"
	}
	return parts[len(parts)-1]
}

// Dir returns all but the last element of path.
func Dir(path string) string {
	parts := splitPath(path)
	if len(parts) <= 1 {
		return "/"
	}
	return "/" + strings.Join(parts[:len(parts)-1], "/")
}

// Join joins path elements with slashes and cleans the result.
func Join(elem ...string) string {
	return Clean(strings.Join(elem, "/"))
}

// pathOf reconstructs the absolute path of a directory (directories have
// unique parents). Must be called with the tree lock held in either mode.
func pathOf(n *inode) string {
	if n.parent == nil {
		return "/"
	}
	var parts []string
	for cur := n; cur.parent != nil; cur = cur.parent {
		parts = append(parts, cur.name)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return "/" + strings.Join(parts, "/")
}

// resolveOpts controls path resolution.
type resolveOpts struct {
	followLast bool   // follow a symlink in the final component
	root       *inode // resolution root ("" = fs.root); namespaces set this
}

// resolve walks path from root, enforcing exec permission on every
// directory traversed, following symlinks (up to maxSymlinkHops). It
// returns the parent directory, the final name, and the node itself (nil
// if the final component does not exist). The tree lock must be held in
// either mode; resolution touches only structural state and lock-free
// permission atomics, so it takes no stripe locks.
func (fs *FS) resolve(cred Cred, path string, opt resolveOpts) (parent *inode, name string, node *inode, err error) {
	root := opt.root
	if root == nil {
		root = fs.root
	}
	hops := 0
	var walk func(dir *inode, parts []string) (*inode, string, *inode, error)
	walk = func(dir *inode, parts []string) (*inode, string, *inode, error) {
		cur := dir
		for i := 0; i < len(parts); i++ {
			p := parts[i]
			if !cur.isDir() {
				return nil, "", nil, ErrNotDir
			}
			if !allows(cur, cred, wantExec) {
				return nil, "", nil, ErrAccess
			}
			if p == ".." {
				if cur != root && cur.parent != nil {
					cur = cur.parent
				}
				continue
			}
			fs.stats.lookups.Add(1)
			child, ok := cur.children[p]
			last := i == len(parts)-1
			if !ok {
				if last {
					return cur, p, nil, nil
				}
				return nil, "", nil, ErrNotExist
			}
			if child.kind == KindSymlink && (!last || opt.followLast) {
				hops++
				if hops > maxSymlinkHops {
					return nil, "", nil, ErrTooManyLinks
				}
				tparts := splitPath(child.target)
				start := cur
				if strings.HasPrefix(child.target, "/") {
					start = root
				}
				par, nm, nd, werr := walk(start, tparts)
				if werr != nil {
					return nil, "", nil, werr
				}
				if nd == nil {
					if last {
						// Dangling symlink as final component: report the
						// link's own parent/name so create-through-symlink
						// lands at the target location.
						return par, nm, nil, nil
					}
					return nil, "", nil, ErrNotExist
				}
				if last {
					return par, nm, nd, nil
				}
				cur = nd
				continue
			}
			if last {
				return cur, p, child, nil
			}
			cur = child
		}
		// Empty path: the node is the starting directory itself.
		return cur.parent, cur.name, cur, nil
	}
	parts := splitPath(path)
	if len(parts) == 0 {
		return root.parent, root.name, root, nil
	}
	return walk(root, parts)
}

// Tx is a transactional view of the tree handed to semantic hooks and to
// the yanc layer for multi-step structural operations that must be atomic
// with respect to other file-system users. All Tx methods run with the
// tree lock held and bypass permission checks (they are "kernel code").
type Tx struct {
	fs      *FS
	events  []Event
	creator Cred
	hasCred bool
	ro      bool // opened by ReadTx: tree lock held in read mode
}

// Creator returns the credential of the process whose operation triggered
// the current hook (Root when the transaction was opened directly).
// Semantic-mkdir hooks use it so skeleton entries belong to the user who
// made the object, the way mkdir(2) ownership works.
func (tx *Tx) Creator() Cred {
	if tx.hasCred {
		return tx.creator
	}
	return Root
}

// WithTx runs fn while holding the tree lock in write mode, then delivers
// the events fn queued. This is the primitive libyanc's batch fastpath
// builds on. Note that a transaction serializes against every other
// file-system operation — it is the whole-tree critical section; the
// syscall-shaped entry points are the scalable path.
func (fs *FS) WithTx(fn func(tx *Tx) error) error {
	fs.lockTree()
	tx := &Tx{fs: fs}
	err := fn(tx)
	events := tx.events
	fs.unlockTree()
	fs.watches.dispatch(events)
	return err
}

// ReadTx runs fn while holding the tree lock in read mode. fn must not
// mutate the tree: only the read-only Tx methods are safe.
func (fs *FS) ReadTx(fn func(tx *Tx) error) error {
	fs.rlockTree()
	tx := &Tx{fs: fs, ro: true}
	err := fn(tx)
	fs.runlockTree()
	return err
}

func (tx *Tx) queue(ev Event) { tx.events = append(tx.events, ev) }

// node resolves path (following symlinks) with root credentials.
func (tx *Tx) node(path string) (*inode, error) {
	_, _, n, err := tx.fs.resolve(Root, path, resolveOpts{followLast: true})
	if err != nil {
		return nil, err
	}
	if n == nil {
		return nil, ErrNotExist
	}
	return n, nil
}

// Exists reports whether path resolves to a node.
func (tx *Tx) Exists(path string) bool {
	n, err := tx.node(path)
	return err == nil && n != nil
}

// IsDir reports whether path resolves to a directory.
func (tx *Tx) IsDir(path string) bool {
	n, err := tx.node(path)
	return err == nil && n != nil && n.isDir()
}

// Mkdir creates a directory. Parent hooks are NOT invoked (hooks create
// structure themselves and must not recurse).
func (tx *Tx) Mkdir(path string, mode FileMode, uid, gid int) error {
	parent, name, node, err := tx.fs.resolve(Root, path, resolveOpts{})
	if err != nil {
		return pathErr("mkdir", path, err)
	}
	if node != nil {
		return pathErr("mkdir", path, ErrExist)
	}
	d := tx.fs.newInode(KindDir, mode, uid, gid)
	d.parent = parent
	d.name = name
	parent.children[name] = d
	parent.nlink++
	parent.touchM(tx.fs.clock())
	tx.queue(Event{Op: OpCreate, Path: Join(pathOf(parent), name), IsDir: true})
	return nil
}

// MkdirAll creates path and any missing parents.
func (tx *Tx) MkdirAll(path string, mode FileMode, uid, gid int) error {
	parts := splitPath(path)
	cur := "/"
	for _, p := range parts {
		cur = Join(cur, p)
		if tx.Exists(cur) {
			continue
		}
		if err := tx.Mkdir(cur, mode, uid, gid); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile creates or replaces a regular file's content.
func (tx *Tx) WriteFile(path string, data []byte, mode FileMode, uid, gid int) error {
	parent, name, node, err := tx.fs.resolve(Root, path, resolveOpts{followLast: true})
	if err != nil {
		return pathErr("write", path, err)
	}
	now := tx.fs.clock()
	if node == nil {
		f := tx.fs.newInode(KindFile, mode, uid, gid)
		f.data = append([]byte(nil), data...)
		parent.children[name] = f
		parent.touchM(now)
		full := Join(pathOf(parent), name)
		tx.queue(Event{Op: OpCreate, Path: full})
		tx.queue(Event{Op: OpWrite, Path: full})
		return nil
	}
	if node.isDir() {
		return pathErr("write", path, ErrIsDir)
	}
	node.data = append(node.data[:0], data...)
	node.touchM(now)
	tx.queue(Event{Op: OpWrite, Path: Join(pathOf(parent), name)})
	return nil
}

// ReadFile returns a copy of a file's content. Synthetic files are
// returned as their stored bytes: a Synthetic.Read provider may itself
// perform file I/O and must never run under the tree lock (see the
// lock-ordering rules in lock.go), so transactional reads see the raw
// storage and the open path is the only one that materializes provider
// content.
func (tx *Tx) ReadFile(path string) ([]byte, error) {
	n, err := tx.node(path)
	if err != nil {
		return nil, pathErr("read", path, err)
	}
	if n.isDir() {
		return nil, pathErr("read", path, ErrIsDir)
	}
	if tx.ro {
		s := tx.fs.rlockNode(n)
		defer s.mu.RUnlock()
	}
	return append([]byte(nil), n.data...), nil
}

// Symlink creates a symbolic link without semantic validation.
func (tx *Tx) Symlink(target, linkPath string, uid, gid int) error {
	parent, name, node, err := tx.fs.resolve(Root, linkPath, resolveOpts{})
	if err != nil {
		return pathErr("symlink", linkPath, err)
	}
	if node != nil {
		return pathErr("symlink", linkPath, ErrExist)
	}
	l := tx.fs.newInode(KindSymlink, 0o777, uid, gid)
	l.target = target
	parent.children[name] = l
	parent.touchM(tx.fs.clock())
	tx.queue(Event{Op: OpCreate, Path: Join(pathOf(parent), name)})
	return nil
}

// Remove unlinks a file/symlink or removes a directory subtree.
func (tx *Tx) Remove(path string) error {
	parent, name, node, err := tx.fs.resolve(Root, path, resolveOpts{})
	if err != nil {
		return pathErr("remove", path, err)
	}
	if node == nil {
		return pathErr("remove", path, ErrNotExist)
	}
	tx.fs.unlinkLocked(parent, name, node, tx)
	return nil
}

// SetSemantics attaches (or clears) directory semantics.
func (tx *Tx) SetSemantics(path string, sem *DirSemantics) error {
	n, err := tx.node(path)
	if err != nil {
		return pathErr("semantics", path, err)
	}
	if !n.isDir() {
		return pathErr("semantics", path, ErrNotDir)
	}
	n.sem = sem
	return nil
}

// SetSynthetic makes (or creates) a synthetic file at path.
func (tx *Tx) SetSynthetic(path string, synth *Synthetic, mode FileMode, uid, gid int) error {
	parent, name, node, err := tx.fs.resolve(Root, path, resolveOpts{followLast: true})
	if err != nil {
		return pathErr("synthetic", path, err)
	}
	if node == nil {
		f := tx.fs.newInode(KindFile, mode, uid, gid)
		f.synth = synth
		parent.children[name] = f
		parent.touchM(tx.fs.clock())
		tx.queue(Event{Op: OpCreate, Path: Join(pathOf(parent), name)})
		return nil
	}
	if node.isDir() {
		return pathErr("synthetic", path, ErrIsDir)
	}
	node.synth = synth
	return nil
}

// SetXattr sets an extended attribute.
func (tx *Tx) SetXattr(path, attr string, value []byte) error {
	n, err := tx.node(path)
	if err != nil {
		return pathErr("setxattr", path, err)
	}
	if n.xattrs == nil {
		n.xattrs = make(map[string][]byte)
	}
	n.xattrs[attr] = append([]byte(nil), value...)
	n.touchC(tx.fs.clock())
	return nil
}

// GetXattr reads an extended attribute.
func (tx *Tx) GetXattr(path, attr string) ([]byte, error) {
	n, err := tx.node(path)
	if err != nil {
		return nil, pathErr("getxattr", path, err)
	}
	if tx.ro {
		s := tx.fs.rlockNode(n)
		defer s.mu.RUnlock()
	}
	v, ok := n.xattrs[attr]
	if !ok {
		return nil, pathErr("getxattr", path, ErrNoAttr)
	}
	return append([]byte(nil), v...), nil
}

// Chmod changes permission bits.
func (tx *Tx) Chmod(path string, mode FileMode) error {
	n, err := tx.node(path)
	if err != nil {
		return pathErr("chmod", path, err)
	}
	n.storeMode(mode)
	n.touchC(tx.fs.clock())
	tx.queue(Event{Op: OpChmod, Path: Clean(path), IsDir: n.isDir()})
	return nil
}

// Chown changes ownership.
func (tx *Tx) Chown(path string, uid, gid int) error {
	n, err := tx.node(path)
	if err != nil {
		return pathErr("chown", path, err)
	}
	n.storeOwner(uid, gid)
	n.touchC(tx.fs.clock())
	tx.queue(Event{Op: OpChmod, Path: Clean(path), IsDir: n.isDir()})
	return nil
}

// ReadDir lists a directory in name order.
func (tx *Tx) ReadDir(path string) ([]DirEntry, error) {
	n, err := tx.node(path)
	if err != nil {
		return nil, pathErr("readdir", path, err)
	}
	if !n.isDir() {
		return nil, pathErr("readdir", path, ErrNotDir)
	}
	return listDir(n), nil
}

// Stat describes the node at path (following symlinks).
func (tx *Tx) Stat(path string) (Stat, error) {
	n, err := tx.node(path)
	if err != nil {
		return Stat{}, pathErr("stat", path, err)
	}
	if tx.ro {
		s := tx.fs.rlockNode(n)
		defer s.mu.RUnlock()
	}
	return statOf(n, Base(path)), nil
}

func listDir(n *inode) []DirEntry {
	out := make([]DirEntry, 0, len(n.children))
	for name, c := range n.children {
		out = append(out, DirEntry{Name: name, Kind: c.kind, Ino: c.ino})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// statOf snapshots an inode. The caller must hold either the tree write
// lock, or the tree read lock plus the inode's stripe (read mode is
// enough) — inode-local times/version/data are read here.
func statOf(n *inode, name string) Stat {
	size := int64(len(n.data))
	if n.isDir() {
		size = int64(len(n.children))
	}
	return Stat{
		Ino:     n.ino,
		Kind:    n.kind,
		Mode:    n.loadMode(),
		UID:     n.loadUID(),
		GID:     n.loadGID(),
		Nlink:   n.nlink,
		Size:    size,
		Atime:   n.atime,
		Mtime:   n.mtime,
		Ctime:   n.ctime,
		Name:    name,
		Target:  n.target,
		Version: n.version,
	}
}

// unlinkLocked removes node (recursively for directories) from parent and
// queues Remove events. The tree write lock must be held.
func (fs *FS) unlinkLocked(parent *inode, name string, node *inode, tx *Tx) {
	full := Join(pathOf(parent), name)
	if node.isDir() {
		for cname, c := range node.children {
			fs.unlinkLocked(node, cname, c, tx)
		}
		parent.nlink--
	}
	delete(parent.children, name)
	node.nlink--
	node.parent = nil
	parent.touchM(fs.clock())
	tx.queue(Event{Op: OpRemove, Path: full, IsDir: node.isDir()})
	if parent.sem != nil && parent.sem.OnRemove != nil {
		parent.sem.OnRemove(tx, pathOf(parent), name, node.kind)
	}
}

// errIsAny reports whether err wraps any of the targets.
func errIsAny(err error, targets ...error) bool {
	for _, t := range targets {
		if errors.Is(err, t) {
			return true
		}
	}
	return false
}
