// Package vfs implements an in-memory POSIX-like virtual file system: the
// substrate yanc needs in place of the Linux VFS + FUSE. It provides
// inodes, directories, regular files, symbolic links, hard links, rename,
// Unix permissions, extended attributes, inotify-style watches, synthetic
// (procfs-like) files, and semantic-directory hooks that let the yanc
// layer auto-create typed children on mkdir(), exactly as §3.1 of the
// paper describes.
//
// The API is deliberately syscall-shaped (Mkdir, Create, Open, Rename,
// Symlink, Stat, ...) and every call is counted, because the paper's §8.1
// performance argument is about the number of such calls.
//
// Concurrency: the tree scales on multicore through three levels — lock-
// free path resolution over immutable children-map snapshots (see
// resolve_rcu.go), a structural tree lock for writers, and ino-sharded
// inode-state stripes (see lock.go and DESIGN.md §8). The read-mostly
// hot paths (stat, readdir, open-existing, xattr reads) take no tree
// lock at all.
package vfs

import (
	"errors"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// maxSymlinkHops bounds symlink resolution, mirroring Linux's ELOOP limit.
const maxSymlinkHops = 40

// Synthetic makes a file behave like a procfs entry: content is produced
// on open-for-read and consumed on close-after-write. Either func may be
// nil, making the file write-only or read-only respectively. Providers run
// outside all tree locks (from the open/close path) and may perform
// arbitrary file I/O of their own.
type Synthetic struct {
	Read  func() ([]byte, error)
	Write func(data []byte) error
}

// DirSemantics attaches yanc object behaviour to a directory. Hooks run
// with the tree lock held in write mode and must only touch the tree
// through the Tx they are handed: calling a Proc-level entry point from a
// hook re-acquires the tree lock and self-deadlocks.
type DirSemantics struct {
	// OnMkdir runs after a child directory of this directory was created.
	// yanc uses it to populate typed children ("mkdir views/new_view"
	// also creates hosts/, switches/, views/).
	OnMkdir func(tx *Tx, dir, name string) error
	// OnCreate runs after a child regular file was created.
	OnCreate func(tx *Tx, dir, name string) error
	// OnRemove runs after a child was removed (for either rmdir or unlink).
	OnRemove func(tx *Tx, dir, name string, kind NodeKind)
	// ValidateSymlink vets a symlink created in this directory; yanc uses
	// it to enforce that a port's "peer" link points at another port.
	ValidateSymlink func(tx *Tx, dir, name, target string) error
	// RecursiveRmdir permits rmdir on non-empty child directories,
	// removing the subtree ("the rmdir() call for switches is
	// automatically recursive").
	RecursiveRmdir bool
	// Protected children cannot be removed or renamed by non-root.
	Protected map[string]bool
}

// inode field locking:
//
//   - ino, kind, target: immutable after creation.
//   - mode, uid, gid, nlink, synth: atomics, read lock-free (resolution
//     and stat touch them with no locks held); stored under the tree
//     write lock.
//   - children, gen: the published children-map snapshot and its
//     generation. Replaced (never mutated) via setKids under the tree
//     write lock; read lock-free by the RCU walker (resolve_rcu.go).
//   - parent, name, sem: structural — mutated only under the tree write
//     lock, readable under either tree mode. The lock-free walker never
//     touches them (it bails on "..").
//   - data, dataShared, atime, mtime, ctime, version, xattrs:
//     inode-local — every access, read or write, requires the inode's
//     shard stripe. The tree write lock is NOT enough on its own:
//     lock-free resolution means stripe-only readers (File.Read/Write,
//     lock-free Stat) can run concurrently with structural operations.
//     dataShared marks data as an interned slice shared across inodes
//     (see intern.go): writers must replace it, never mutate in place.
type inode struct {
	ino   uint64
	kind  NodeKind
	mode  atomic.Uint32 // FileMode bits
	uid   atomic.Int32
	gid   atomic.Int32
	nlink atomic.Int64

	// Timestamps are kept as Unix nanoseconds, not time.Time: a
	// time.Time is 24 bytes and carries a monotonic-clock word and a
	// location pointer no inode needs, so three of them cost 72 bytes
	// per inode. At the 10⁶-flow-dir scale yancload drives, the int64
	// form saves ~48 bytes per inode (statOf converts back on demand).
	atime   int64 // unix nanoseconds
	mtime   int64
	ctime   int64
	version uint64
	xattrs  map[string][]byte

	// Directory state. parent/name give directories a unique path;
	// regular files may have multiple names via hard links. children is
	// the immutable snapshot + generation pair — access via kids/setKids.
	children atomic.Pointer[kidsSnap]
	gen      atomic.Uint64
	parent   *inode
	name     string
	sem      *DirSemantics

	// File state. dataShared marks data as an interned copy-on-write
	// slice (stripe-guarded like data itself).
	data       []byte
	dataShared bool
	synth      atomic.Pointer[Synthetic]

	// Symlink state.
	target string
}

func (n *inode) isDir() bool { return n.kind == KindDir }

func (n *inode) loadMode() FileMode   { return FileMode(n.mode.Load()) }
func (n *inode) storeMode(m FileMode) { n.mode.Store(uint32(m)) }
func (n *inode) loadUID() int         { return int(n.uid.Load()) }
func (n *inode) loadGID() int         { return int(n.gid.Load()) }
func (n *inode) storeOwner(uid, gid int) {
	n.uid.Store(int32(uid))
	n.gid.Store(int32(gid))
}

// touchC updates ctime and version (metadata change). Caller must hold
// the inode's stripe in write mode (the tree write lock alone is NOT
// sufficient once the inode is published — see touchCS/touchMS). The
// only exception is an inode not yet inserted into the tree, which no
// other goroutine can reach.
func (n *inode) touchC(now time.Time) {
	n.ctime = now.UnixNano()
	n.version++
}

// touchM updates mtime+ctime and version (content change). Same locking
// contract as touchC.
func (n *inode) touchM(now time.Time) {
	ns := now.UnixNano()
	n.mtime = ns
	n.ctime = ns
	n.version++
}

// OpStats counts VFS entry points, the in-process analog of the system
// calls (and thus context switches) §8.1 of the paper is concerned with.
type OpStats struct {
	Lookups  uint64
	Opens    uint64
	Reads    uint64
	Writes   uint64
	Creates  uint64
	Removes  uint64
	Renames  uint64
	Stats    uint64
	Links    uint64
	Attrs    uint64
	ReadDirs uint64
	Watches  uint64
}

// Total returns the total number of counted entry points — the in-process
// stand-in for system calls / context switches in §8.1's cost model.
// Per-component Lookups are excluded: path resolution happens inside the
// "kernel" and does not cross the boundary on its own.
func (s OpStats) Total() uint64 {
	return s.Opens + s.Reads + s.Writes + s.Creates + s.Removes +
		s.Renames + s.Stats + s.Links + s.Attrs + s.ReadDirs + s.Watches
}

// Sub returns the counter deltas s - prev, for reporting the operation
// mix of a measured interval.
func (s OpStats) Sub(prev OpStats) OpStats {
	return OpStats{
		Lookups:  s.Lookups - prev.Lookups,
		Opens:    s.Opens - prev.Opens,
		Reads:    s.Reads - prev.Reads,
		Writes:   s.Writes - prev.Writes,
		Creates:  s.Creates - prev.Creates,
		Removes:  s.Removes - prev.Removes,
		Renames:  s.Renames - prev.Renames,
		Stats:    s.Stats - prev.Stats,
		Links:    s.Links - prev.Links,
		Attrs:    s.Attrs - prev.Attrs,
		ReadDirs: s.ReadDirs - prev.ReadDirs,
		Watches:  s.Watches - prev.Watches,
	}
}

type statCounters struct {
	lookups, opens, reads, writes, creates, removes atomic.Uint64
	renames, stats, links, attrs, readdirs, watches atomic.Uint64
}

func (c *statCounters) snapshot() OpStats {
	return OpStats{
		Lookups:  c.lookups.Load(),
		Opens:    c.opens.Load(),
		Reads:    c.reads.Load(),
		Writes:   c.writes.Load(),
		Creates:  c.creates.Load(),
		Removes:  c.removes.Load(),
		Renames:  c.renames.Load(),
		Stats:    c.stats.Load(),
		Links:    c.links.Load(),
		Attrs:    c.attrs.Load(),
		ReadDirs: c.readdirs.Load(),
		Watches:  c.watches.Load(),
	}
}

// FS is a single in-memory file system instance.
type FS struct {
	tree    sync.RWMutex // structural lock; see lock.go
	shards  [LockShards]shardLock
	lockCtr lockCounters

	root    *inode
	nextIno atomic.Uint64
	clock   atomic.Pointer[func() time.Time]
	watches watchSet
	stats   statCounters
	lat     latencySet
}

// New creates an empty file system whose root is owned by root:root with
// mode 0755.
func New() *FS {
	fs := &FS{}
	clk := time.Now
	fs.clock.Store(&clk)
	fs.root = fs.newInode(KindDir, 0o755, 0, 0)
	fs.root.name = "/"
	return fs
}

// now returns the current time from the installed clock. The clock
// pointer is atomic so stripe-only writers (File.Write) and lock-free
// readers never need a tree lock to read time.
func (fs *FS) now() time.Time { return (*fs.clock.Load())() }

// SetClock replaces the time source (tests use a fake clock).
func (fs *FS) SetClock(clock func() time.Time) {
	fs.clock.Store(&clock)
}

// Now returns the file system's notion of the current time — the clock
// installed via SetClock. Components that stamp times into files (e.g.
// the driver's last_seen) must use this rather than time.Now so that
// simulated time in tests stays consistent with inode timestamps.
func (fs *FS) Now() time.Time { return fs.now() }

// Stats returns a snapshot of the operation counters.
func (fs *FS) Stats() OpStats { return fs.stats.snapshot() }

// bareInode creates an inode without a children map, for batch callers
// that supply their own (pre-sized or bulk-cloned) map and timestamp.
func (fs *FS) bareInode(kind NodeKind, mode FileMode, uid, gid int, now time.Time) *inode {
	ns := now.UnixNano()
	//yancvet:alloc the inode is the operation's product, adopted by the tree
	n := &inode{
		ino:   fs.nextIno.Add(1),
		kind:  kind,
		atime: ns,
		mtime: ns,
		ctime: ns,
	}
	links := int64(1)
	if kind == KindDir {
		links = 2
	}
	n.nlink.Store(links)
	n.storeMode(mode)
	n.storeOwner(uid, gid)
	return n
}

// newInode creates an unpublished inode. Directories start with no
// children snapshot (kids is nil-safe); the first cowInsert publishes
// one.
func (fs *FS) newInode(kind NodeKind, mode FileMode, uid, gid int) *inode {
	return fs.bareInode(kind, mode, uid, gid, fs.now())
}

// splitPath cleans a slash-separated path into components, dropping empty
// and "." segments. ".." is kept and handled during resolution.
func splitPath(path string) []string {
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, p := range parts {
		if p == "" || p == "." {
			continue
		}
		out = append(out, p)
	}
	return out
}

// isClean reports whether path is already in Clean's canonical form: it
// begins with "/", ends with a non-slash (except the root itself), and has
// no empty, "." or ".." components. Paths built by the fs itself (event
// paths, resolved names) are always canonical, so the common case of
// re-cleaning them can return the input without allocating.
func isClean(path string) bool {
	if len(path) == 0 || path[0] != '/' {
		return false
	}
	if path == "/" {
		return true
	}
	start := 1
	for i := 1; i <= len(path); i++ {
		if i < len(path) && path[i] != '/' {
			continue
		}
		n := i - start
		if n == 0 {
			return false // "//" or trailing "/"
		}
		if path[start] == '.' && (n == 1 || (n == 2 && path[start+1] == '.')) {
			return false
		}
		start = i + 1
	}
	return true
}

// isCleanName reports whether name is a single canonical path component.
func isCleanName(name string) bool {
	if name == "" || name == "." || name == ".." {
		return false
	}
	return !strings.ContainsRune(name, '/')
}

// Clean normalizes a path to an absolute, "/"-rooted form without "." or
// ".." components (".." above the root clamps to the root).
func Clean(path string) string {
	if isClean(path) {
		return path
	}
	var stack []string
	for _, p := range splitPath(path) {
		if p == ".." {
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
			continue
		}
		stack = append(stack, p)
	}
	return "/" + strings.Join(stack, "/")
}

// Base returns the last element of path.
func Base(path string) string {
	if isClean(path) {
		if path == "/" {
			return "/"
		}
		return path[strings.LastIndexByte(path, '/')+1:]
	}
	parts := splitPath(path)
	if len(parts) == 0 {
		return "/"
	}
	return parts[len(parts)-1]
}

// Dir returns all but the last element of path.
func Dir(path string) string {
	if isClean(path) {
		i := strings.LastIndexByte(path, '/')
		if i <= 0 {
			return "/"
		}
		return path[:i]
	}
	parts := splitPath(path)
	if len(parts) <= 1 {
		return "/"
	}
	return "/" + strings.Join(parts[:len(parts)-1], "/")
}

// Join joins path elements with slashes and cleans the result. The
// dominant caller shape — an already-clean directory plus one component —
// is a single concatenation.
func Join(elem ...string) string {
	if len(elem) == 2 && isClean(elem[0]) && isCleanName(elem[1]) {
		if elem[0] == "/" {
			return "/" + elem[1]
		}
		return elem[0] + "/" + elem[1]
	}
	return Clean(strings.Join(elem, "/"))
}

// pathOf reconstructs the absolute path of a directory (directories have
// unique parents). Must be called with the tree lock held in either mode.
func pathOf(n *inode) string {
	if n.parent == nil {
		return "/"
	}
	var parts []string
	for cur := n; cur.parent != nil; cur = cur.parent {
		parts = append(parts, cur.name)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return "/" + strings.Join(parts, "/")
}

// pathTo returns Join(pathOf(dir), name) in one allocation: the write path
// builds an event path per mutation, so this is hot. Must be called with
// the tree lock held in either mode.
func pathTo(dir *inode, name string) string {
	var anc [16]*inode
	stack := anc[:0]
	size := 1 + len(name)
	for cur := dir; cur.parent != nil; cur = cur.parent {
		size += len(cur.name) + 1
		stack = append(stack, cur)
	}
	var b strings.Builder
	b.Grow(size) //yancvet:alloc one owned event-path string per mutation, by the Event contract
	for i := len(stack) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(stack[i].name)
	}
	b.WriteByte('/')
	b.WriteString(name)
	return b.String()
}

// resolveOpts controls path resolution.
type resolveOpts struct {
	followLast bool   // follow a symlink in the final component
	root       *inode // resolution root ("" = fs.root); namespaces set this
}

// resolve walks path from root, enforcing exec permission on every
// directory traversed, following symlinks (up to maxSymlinkHops). It
// returns the parent directory, the final name, and the node itself (nil
// if the final component does not exist). The tree lock must be held in
// either mode; resolution touches only structural state and lock-free
// permission atomics, so it takes no stripe locks.
func (fs *FS) resolve(cred Cred, path string, opt resolveOpts) (parent *inode, name string, node *inode, err error) {
	root := opt.root
	if root == nil {
		root = fs.root
	}
	hops := 0
	return fs.walkFrom(root, path, cred, opt, root, &hops)
}

// nextComp scans path from offset i for the next component, skipping
// slashes and "." entries. It returns the component as a substring (no
// allocation), the offset to resume from, and whether one was found.
func nextComp(path string, i int) (string, int, bool) {
	n := len(path)
	for i < n {
		for i < n && path[i] == '/' {
			i++
		}
		j := i
		for j < n && path[j] != '/' {
			j++
		}
		if j > i && path[i:j] != "." {
			return path[i:j], j, true
		}
		i = j
	}
	return "", n, false
}

// walkFrom is resolve's iterative walker: it scans path components in
// place (no split allocation) and recurses only to follow symlink targets.
func (fs *FS) walkFrom(cur *inode, path string, cred Cred, opt resolveOpts, root *inode, hops *int) (*inode, string, *inode, error) {
	p, off, ok := nextComp(path, 0)
	if !ok {
		// Empty path: the node is the starting directory itself.
		return cur.parent, cur.name, cur, nil
	}
	for {
		if !cur.isDir() {
			return nil, "", nil, ErrNotDir
		}
		if !allows(cur, cred, wantExec) {
			return nil, "", nil, ErrAccess
		}
		np, noff, more := nextComp(path, off)
		last := !more
		if p == ".." {
			if cur != root && cur.parent != nil {
				cur = cur.parent
			}
			if last {
				return cur.parent, cur.name, cur, nil
			}
			p, off = np, noff
			continue
		}
		fs.stats.lookups.Add(1)
		child, okc := cur.lookupChild(p)
		if !okc {
			if last {
				return cur, p, nil, nil
			}
			return nil, "", nil, ErrNotExist
		}
		if child.kind == KindSymlink && (!last || opt.followLast) {
			*hops++
			if *hops > maxSymlinkHops {
				return nil, "", nil, ErrTooManyLinks
			}
			start := cur
			if strings.HasPrefix(child.target, "/") {
				start = root
			}
			par, nm, nd, werr := fs.walkFrom(start, child.target, cred, opt, root, hops)
			if werr != nil {
				return nil, "", nil, werr
			}
			if nd == nil {
				if last {
					// Dangling symlink as final component: report the
					// link's own parent/name so create-through-symlink
					// lands at the target location.
					return par, nm, nil, nil
				}
				return nil, "", nil, ErrNotExist
			}
			if last {
				return par, nm, nd, nil
			}
			cur = nd
			p, off = np, noff
			continue
		}
		if last {
			return cur, p, child, nil
		}
		cur = child
		p, off = np, noff
	}
}

// Tx is a transactional view of the tree handed to semantic hooks and to
// the yanc layer for multi-step structural operations that must be atomic
// with respect to other file-system users. All Tx methods run with the
// tree lock held and bypass permission checks (they are "kernel code").
type Tx struct {
	fs      *FS
	events  []Event
	creator Cred
	hasCred bool
	ro      bool // opened by ReadTx: tree lock held in read mode
}

// Creator returns the credential of the process whose operation triggered
// the current hook (Root when the transaction was opened directly).
// Semantic-mkdir hooks use it so skeleton entries belong to the user who
// made the object, the way mkdir(2) ownership works.
func (tx *Tx) Creator() Cred {
	if tx.hasCred {
		return tx.creator
	}
	return Root
}

// WithTx runs fn while holding the tree lock in write mode, then delivers
// the events fn queued. This is the primitive libyanc's batch fastpath
// builds on. Note that a transaction serializes against every other
// file-system operation — it is the whole-tree critical section; the
// syscall-shaped entry points are the scalable path.
func (fs *FS) WithTx(fn func(tx *Tx) error) error {
	fs.lockTree()
	tx := &Tx{fs: fs, events: fs.watches.getBuf()}
	err := fn(tx)
	events := tx.events
	fs.unlockTree()
	fs.watches.dispatch(events)
	return err
}

// ReadTx runs fn while holding the tree lock in read mode. fn must not
// mutate the tree: only the read-only Tx methods are safe.
func (fs *FS) ReadTx(fn func(tx *Tx) error) error {
	fs.rlockTree()
	tx := &Tx{fs: fs, ro: true}
	err := fn(tx)
	fs.runlockTree()
	return err
}

func (tx *Tx) queue(ev Event) { tx.events = append(tx.events, ev) }

// ReserveEvents pre-sizes the transaction's event queue. Batch writers
// that know roughly how many events they will generate (the packet-in
// fan-out queues ~20 per message) call this once to avoid repeated
// slice growth inside the tree-lock critical section.
func (tx *Tx) ReserveEvents(n int) {
	if n > cap(tx.events)-len(tx.events) {
		grown := make([]Event, len(tx.events), len(tx.events)+n)
		copy(grown, tx.events)
		tx.events = grown
	}
}

// node resolves path (following symlinks) with root credentials.
func (tx *Tx) node(path string) (*inode, error) {
	_, _, n, err := tx.fs.resolve(Root, path, resolveOpts{followLast: true})
	if err != nil {
		return nil, err
	}
	if n == nil {
		return nil, ErrNotExist
	}
	return n, nil
}

// Exists reports whether path resolves to a node.
func (tx *Tx) Exists(path string) bool {
	n, err := tx.node(path)
	return err == nil && n != nil
}

// IsDir reports whether path resolves to a directory.
func (tx *Tx) IsDir(path string) bool {
	n, err := tx.node(path)
	return err == nil && n != nil && n.isDir()
}

// Mkdir creates a directory. Parent hooks are NOT invoked (hooks create
// structure themselves and must not recurse).
func (tx *Tx) Mkdir(path string, mode FileMode, uid, gid int) error {
	parent, name, node, err := tx.fs.resolve(Root, path, resolveOpts{})
	if err != nil {
		return pathErr("mkdir", path, err)
	}
	if node != nil {
		return pathErr("mkdir", path, ErrExist)
	}
	name = internName(name)
	d := tx.fs.newInode(KindDir, mode, uid, gid)
	d.parent = parent
	d.name = name
	parent.cowInsert(name, d)
	parent.nlink.Add(1)
	tx.fs.touchMS(parent, tx.fs.now())
	tx.queue(Event{Op: OpCreate, Path: pathTo(parent, name), IsDir: true})
	return nil
}

// MkdirAll creates path and any missing parents.
func (tx *Tx) MkdirAll(path string, mode FileMode, uid, gid int) error {
	parts := splitPath(path)
	cur := "/"
	for _, p := range parts {
		cur = Join(cur, p)
		if tx.Exists(cur) {
			continue
		}
		if err := tx.Mkdir(cur, mode, uid, gid); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile creates or replaces a regular file's content.
func (tx *Tx) WriteFile(path string, data []byte, mode FileMode, uid, gid int) error {
	parent, name, node, err := tx.fs.resolve(Root, path, resolveOpts{followLast: true})
	if err != nil {
		return pathErr("write", path, err)
	}
	now := tx.fs.now()
	if node == nil {
		f := tx.fs.newInode(KindFile, mode, uid, gid)
		if d, ok := internBytes(data); ok {
			f.data, f.dataShared = d, true
		} else {
			f.data = append([]byte(nil), data...)
		}
		name = internName(name)
		parent.cowInsert(name, f)
		tx.fs.touchMS(parent, now)
		full := pathTo(parent, name)
		tx.queue(Event{Op: OpCreate, Path: full})
		tx.queue(Event{Op: OpWrite, Path: full})
		return nil
	}
	if node.isDir() {
		return pathErr("write", path, ErrIsDir)
	}
	s := tx.fs.lockNode(node)
	if d, ok := internBytes(data); ok {
		node.data, node.dataShared = d, true
	} else if node.dataShared {
		node.data = append([]byte(nil), data...)
		node.dataShared = false
	} else {
		node.data = append(node.data[:0], data...)
	}
	node.touchM(now)
	s.mu.Unlock()
	tx.queue(Event{Op: OpWrite, Path: pathTo(parent, name)})
	return nil
}

// ReadFile returns a copy of a file's content. Synthetic files are
// returned as their stored bytes: a Synthetic.Read provider may itself
// perform file I/O and must never run under the tree lock (see the
// lock-ordering rules in lock.go), so transactional reads see the raw
// storage and the open path is the only one that materializes provider
// content.
func (tx *Tx) ReadFile(path string) ([]byte, error) {
	n, err := tx.node(path)
	if err != nil {
		return nil, pathErr("read", path, err)
	}
	if n.isDir() {
		return nil, pathErr("read", path, ErrIsDir)
	}
	// The stripe is required in BOTH transaction modes: File.Write runs
	// stripe-only (no tree lock), so even the tree write lock does not
	// exclude concurrent content writers.
	s := tx.fs.rlockNode(n)
	defer s.mu.RUnlock()
	return append([]byte(nil), n.data...), nil
}

// Symlink creates a symbolic link without semantic validation.
func (tx *Tx) Symlink(target, linkPath string, uid, gid int) error {
	parent, name, node, err := tx.fs.resolve(Root, linkPath, resolveOpts{})
	if err != nil {
		return pathErr("symlink", linkPath, err)
	}
	if node != nil {
		return pathErr("symlink", linkPath, ErrExist)
	}
	l := tx.fs.newInode(KindSymlink, 0o777, uid, gid)
	l.target = target
	parent.cowInsert(name, l)
	tx.fs.touchMS(parent, tx.fs.now())
	tx.queue(Event{Op: OpCreate, Path: pathTo(parent, name)})
	return nil
}

// Link creates newPath as an additional name (hard link) for the regular
// file at oldPath, following symlinks on the source. The two names share
// one inode: the data exists once no matter how many directories link it,
// and Stat.Nlink counts the names. Directories cannot be hard-linked
// (ErrPerm, as in link(2)). This is the zero-copy primitive the event
// fan-out builds on: a payload block is written once and linked into
// each subscriber buffer.
func (tx *Tx) Link(oldPath, newPath string) error {
	_, _, src, err := tx.fs.resolve(Root, oldPath, resolveOpts{followLast: true})
	if err != nil {
		return &LinkError{Op: "link", Old: oldPath, New: newPath, Err: err}
	}
	if src == nil {
		return &LinkError{Op: "link", Old: oldPath, New: newPath, Err: ErrNotExist}
	}
	if src.isDir() {
		return &LinkError{Op: "link", Old: oldPath, New: newPath, Err: ErrPerm}
	}
	parent, name, node, err := tx.fs.resolve(Root, newPath, resolveOpts{})
	if err != nil {
		return &LinkError{Op: "link", Old: oldPath, New: newPath, Err: err}
	}
	if node != nil {
		return &LinkError{Op: "link", Old: oldPath, New: newPath, Err: ErrExist}
	}
	now := tx.fs.now()
	parent.cowInsert(name, src)
	src.nlink.Add(1)
	tx.fs.touchCS(src, now)
	tx.fs.touchMS(parent, now)
	tx.queue(Event{Op: OpCreate, Path: pathTo(parent, name)})
	return nil
}

// LinkDir creates dstDir as a new directory and hard-links every
// regular-file child of srcDir into it, resolving both paths once. It is
// the batched form of Link for fanning a staged message directory out to
// N subscribers: one directory inode and N map inserts per subscriber,
// zero payload copies. Symlink and directory children are skipped. A
// single Create event is queued for dstDir — watchers of its parent see
// the message appear atomically; the linked children share inodes with
// srcDir's files and announce nothing of their own.
func (tx *Tx) LinkDir(srcDir, dstDir string, mode FileMode, uid, gid int) error {
	_, _, src, err := tx.fs.resolve(Root, srcDir, resolveOpts{followLast: true})
	if err != nil {
		return &LinkError{Op: "linkdir", Old: srcDir, New: dstDir, Err: err}
	}
	if src == nil {
		return &LinkError{Op: "linkdir", Old: srcDir, New: dstDir, Err: ErrNotExist}
	}
	if !src.isDir() {
		return &LinkError{Op: "linkdir", Old: srcDir, New: dstDir, Err: ErrNotDir}
	}
	parent, name, node, err := tx.fs.resolve(Root, dstDir, resolveOpts{})
	if err != nil {
		return &LinkError{Op: "linkdir", Old: srcDir, New: dstDir, Err: err}
	}
	if node != nil {
		return &LinkError{Op: "linkdir", Old: srcDir, New: dstDir, Err: ErrExist}
	}
	d := tx.fs.newInode(KindDir, mode, uid, gid)
	d.parent = parent
	d.name = name
	srcKids := src.kids()
	m := make(map[string]*inode, len(srcKids))
	now := tx.fs.now()
	for cname, c := range srcKids {
		if c.kind != KindFile {
			continue
		}
		m[cname] = c
		c.nlink.Add(1)
		tx.fs.touchCS(c, now)
	}
	d.setKids(m)
	parent.cowInsert(name, d)
	parent.nlink.Add(1)
	tx.fs.touchMS(parent, now)
	tx.queue(Event{Op: OpCreate, Path: pathTo(parent, name), IsDir: true})
	return nil
}

// LinkDirFanout is LinkDir amortized over many destinations: srcDir is
// resolved once, its linkable children are collected once, and every
// destination directory receives a bulk-cloned child map instead of
// per-entry inserts. linked(i) is called (under the tree lock — it must
// not call back into the fs) for each dsts[i] that was created; a
// destination whose parent is gone or whose name is taken is skipped, so
// one stale subscriber buffer cannot abort delivery to the rest. Child
// nlink/ctime updates are batched: one increment pass no matter how many
// destinations were linked.
//
//yancvet:hotalloc
func (tx *Tx) LinkDirFanout(srcDir string, dsts []string, mode FileMode, uid, gid int, linked func(i int)) error {
	tmpl, err := tx.fanoutSrc(srcDir)
	if err != nil {
		return err
	}
	now := tx.fs.now()
	links := 0
	root := tx.fs.root
	for i, dst := range dsts {
		hops := 0
		parent, name, node, err := tx.fs.walkFrom(root, dst, Root, resolveOpts{}, root, &hops)
		if err != nil || node != nil {
			continue
		}
		d := tx.fs.bareInode(KindDir, mode, uid, gid, now)
		d.parent = parent
		d.name = name
		d.setKids(tmpl)
		parent.cowInsert(name, d)
		parent.nlink.Add(1)
		tx.fs.touchMS(parent, now)
		// Event paths must be real paths: reuse the caller's dst string
		// only when resolution crossed no symlink and dst is canonical.
		evPath := dst
		if hops != 0 || !isClean(dst) {
			evPath = pathTo(parent, name)
		}
		tx.queue(Event{Op: OpCreate, Path: evPath, IsDir: true})
		links++
		if linked != nil {
			linked(i)
		}
	}
	if links > 0 {
		for _, c := range tmpl {
			c.nlink.Add(int64(links))
			tx.fs.touchCS(c, now)
		}
	}
	return nil
}

// fanoutSrc resolves a fan-out source directory and prepares the child
// template every destination will receive. When every child is a regular
// file — always true for packet-in spool entries — all destinations share
// the source's published snapshot instead of each cloning it. Snapshots
// are immutable after publish (copy-on-write replaces them), so sharing
// one map across N directories is always safe: a later insert into or
// unlink from any one of them publishes a fresh map for that directory
// alone, giving ordinary hard-link semantics with zero aliasing quirks.
func (tx *Tx) fanoutSrc(srcDir string) (map[string]*inode, error) {
	_, _, src, err := tx.fs.resolve(Root, srcDir, resolveOpts{followLast: true})
	if err != nil {
		return nil, &LinkError{Op: "linkdir", Old: srcDir, New: "", Err: err} //yancvet:alloc error path
	}
	if src == nil {
		return nil, &LinkError{Op: "linkdir", Old: srcDir, New: "", Err: ErrNotExist} //yancvet:alloc error path
	}
	if !src.isDir() {
		return nil, &LinkError{Op: "linkdir", Old: srcDir, New: "", Err: ErrNotDir} //yancvet:alloc error path
	}
	srcKids := src.kids()
	for _, c := range srcKids {
		if c.kind != KindFile {
			//yancvet:alloc mixed-kind source clones the template once per fan-out, shared by every destination
			tmpl := make(map[string]*inode, len(srcKids))
			for cname, cc := range srcKids {
				if cc.kind == KindFile {
					tmpl[cname] = cc
				}
			}
			return tmpl, nil
		}
	}
	return srcKids, nil
}

// DirRef is an opaque handle to a resolved directory, letting hot paths
// that repeatedly target the same directories (packet-in fan-out into
// cached subscriber buffers) skip per-message path resolution. A ref pins
// nothing: every use re-validates under the calling transaction's lock,
// and a ref whose directory has since been removed simply stops matching.
type DirRef struct{ ino *inode }

// Valid reports whether the referenced directory was still attached to the
// tree when the ref was last used. Zero refs are invalid.
func (r DirRef) Valid() bool { return r.ino != nil }

// DirRef resolves path to a directory handle for later fan-out use.
func (p *Proc) DirRef(path string) (DirRef, error) {
	n, err := p.fs.lookupRO(p.cred, path, p.opts(true))
	if err != nil {
		return DirRef{}, pathErr("dirref", path, err)
	}
	if n == nil {
		return DirRef{}, pathErr("dirref", path, ErrNotExist)
	}
	if !n.isDir() {
		return DirRef{}, pathErr("dirref", path, ErrNotDir)
	}
	return DirRef{ino: n}, nil
}

// LinkDirFanoutRefs is LinkDirFanout over pre-resolved destinations: each
// parents[i] receives a child directory named name linking the source's
// files. A ref whose directory has been detached (subscriber unsubscribed
// since the caller's cache was built) or already holds name is skipped.
// Every node of a removed subtree has its parent pointer cleared, so
// detachment is one pointer test instead of a path walk.
//
//yancvet:hotalloc
func (tx *Tx) LinkDirFanoutRefs(srcDir string, parents []DirRef, name string, mode FileMode, uid, gid int, linked func(i int)) error {
	tmpl, err := tx.fanoutSrc(srcDir)
	if err != nil {
		return err
	}
	if !isCleanName(name) {
		return pathErr("linkdir", name, ErrInvalid)
	}
	now := tx.fs.now()
	links := 0
	for i, r := range parents {
		parent := r.ino
		if parent == nil || !parent.isDir() ||
			(parent.parent == nil && parent != tx.fs.root) {
			continue
		}
		if _, exists := parent.lookupChild(name); exists {
			continue
		}
		d := tx.fs.bareInode(KindDir, mode, uid, gid, now)
		d.parent = parent
		d.name = name
		d.setKids(tmpl)
		parent.cowInsert(name, d)
		parent.nlink.Add(1)
		tx.fs.touchMS(parent, now)
		tx.queue(Event{Op: OpCreate, Path: pathTo(parent, name), IsDir: true})
		links++
		if linked != nil {
			linked(i)
		}
	}
	if links > 0 {
		for _, c := range tmpl {
			c.nlink.Add(int64(links))
			tx.fs.touchCS(c, now)
		}
	}
	return nil
}

// FileData names one entry of a WriteTree subtree. With only Name and
// Data set it is a regular file. Synth makes it a synthetic file (Data
// is ignored). A non-nil Children makes it a subdirectory populated
// recursively (Data and Synth are ignored; an empty non-nil slice is an
// empty directory). Mode, when non-zero, overrides the tree-wide
// default file or directory mode for this entry. Owned marks Data as
// transferred to the file system: WriteTree may alias the slice instead
// of copying, so the caller must not touch it afterwards.
type FileData struct {
	Name     string
	Data     []byte
	Synth    *Synthetic
	Children []FileData
	Mode     FileMode
	Owned    bool
}

// countTree returns the number of inodes a FileData forest needs.
func countTree(files []FileData) int {
	n := len(files)
	for i := range files {
		if files[i].Children != nil {
			n += countTree(files[i].Children)
		}
	}
	return n
}

// WriteTree creates dir as a new directory populated with the given
// subtree — regular files, synthetic files, nested directories — in one
// pass: one path resolution, one slab allocation for every inode, and
// one inode-map fill per directory, where the call-per-file path pays a
// full root walk and a heap allocation each. Per-entry Create/Write
// events are queued only when some watch could actually observe them —
// the packet-in spool stages messages in a dot-directory nobody
// watches, and event-path construction would otherwise dominate staging
// cost.
func (tx *Tx) WriteTree(dir string, files []FileData, dirMode, fileMode FileMode, uid, gid int) error {
	parent, name, node, err := tx.fs.resolve(Root, dir, resolveOpts{})
	if err != nil {
		return pathErr("writetree", dir, err)
	}
	if node != nil {
		return pathErr("writetree", dir, ErrExist)
	}
	now := tx.fs.now()
	ns := now.UnixNano()
	name = internName(name)
	// All inodes for the subtree come from one slab: a 1k-flow ring
	// drain would otherwise malloc ~15 inodes per flow, and the GC cost
	// of those little objects dominates the commit.
	slab := make([]inode, 1+countTree(files))
	next := 0
	alloc := func(kind NodeKind, mode FileMode) *inode {
		n := &slab[next]
		next++
		n.ino = tx.fs.nextIno.Add(1)
		n.kind = kind
		n.atime, n.mtime, n.ctime = ns, ns, ns
		links := int64(1)
		if kind == KindDir {
			links = 2
		}
		n.nlink.Store(links)
		n.storeMode(mode)
		n.storeOwner(uid, gid)
		return n
	}
	var build func(d *inode, files []FileData) error
	build = func(d *inode, files []FileData) error {
		m := make(map[string]*inode, len(files))
		for i := range files {
			f := &files[i]
			if !isCleanName(f.Name) {
				return pathErr("writetree", Join(dir, f.Name), ErrInvalid)
			}
			entryName := internName(f.Name)
			switch {
			case f.Children != nil:
				mode := dirMode
				if f.Mode != 0 {
					mode = f.Mode
				}
				sub := alloc(KindDir, mode)
				sub.parent = d
				sub.name = entryName
				if err := build(sub, f.Children); err != nil {
					return err
				}
				d.nlink.Add(1)
				m[entryName] = sub
			default:
				mode := fileMode
				if f.Mode != 0 {
					mode = f.Mode
				}
				fi := alloc(KindFile, mode)
				switch {
				case f.Synth != nil:
					fi.synth.Store(f.Synth)
				case f.Owned:
					// Owned slices are adopted without the intern probe:
					// callers pack a whole subtree's values into one arena,
					// so the arena stays pinned by its unique entries no
					// matter how many common values the pool could share —
					// the two map lookups per file would buy nothing.
					fi.data = f.Data
				default:
					if shared, ok := internBytes(f.Data); ok {
						fi.data, fi.dataShared = shared, true
					} else {
						fi.data = append([]byte(nil), f.Data...)
					}
				}
				m[entryName] = fi
			}
		}
		d.setKids(m)
		return nil
	}
	d := alloc(KindDir, dirMode)
	d.parent = parent
	d.name = name
	if err := build(d, files); err != nil {
		return err
	}
	parent.cowInsert(name, d)
	parent.nlink.Add(1)
	tx.fs.touchMS(parent, now)
	full := Clean(dir) // identical to pathTo(parent, name), minus the walk
	tx.queue(Event{Op: OpCreate, Path: full, IsDir: true})
	if tx.fs.watches.interestedInChildren(full) {
		var announce func(prefix string, files []FileData)
		announce = func(prefix string, files []FileData) {
			for i := range files {
				f := &files[i]
				p := prefix + "/" + f.Name
				if f.Children != nil {
					tx.queue(Event{Op: OpCreate, Path: p, IsDir: true})
					announce(p, f.Children)
					continue
				}
				tx.queue(Event{Op: OpCreate, Path: p})
				if f.Synth == nil {
					tx.queue(Event{Op: OpWrite, Path: p})
				}
			}
		}
		announce(full, files)
	}
	return nil
}

// Remove unlinks a file/symlink or removes a directory subtree.
func (tx *Tx) Remove(path string) error {
	parent, name, node, err := tx.fs.resolve(Root, path, resolveOpts{})
	if err != nil {
		return pathErr("remove", path, err)
	}
	if node == nil {
		return pathErr("remove", path, ErrNotExist)
	}
	tx.fs.unlinkLocked(parent, name, node, tx)
	return nil
}

// renameLocked is the shared rename core behind Proc.Rename and
// Tx.Rename: it moves node from (oldParent, oldName) onto (newParent,
// newName), replacing target if present. The tree write lock must be
// held; the caller has already done permission and protection checks.
// It performs the structural compatibility checks (replace rules, cycle
// check) because those depend only on tree shape, not credentials.
func (fs *FS) renameLocked(tx *Tx, oldParent *inode, oldName string, node *inode, newParent *inode, newName string, target *inode) error {
	if target != nil {
		if target.isDir() {
			if !node.isDir() {
				return ErrIsDir
			}
			if target.childCount() > 0 {
				return ErrNotEmpty
			}
		} else if node.isDir() {
			return ErrNotDir
		}
	}
	// A directory may not be moved into its own subtree.
	if node.isDir() {
		for d := newParent; d != nil; d = d.parent {
			if d == node {
				return ErrInvalid
			}
		}
	}
	oldFull := pathTo(oldParent, oldName)
	if target != nil {
		fs.unlinkLocked(newParent, newName, target, tx)
	}
	newName = internName(newName)
	oldParent.cowDelete(oldName)
	newParent.cowInsert(newName, node)
	if node.isDir() {
		oldParent.nlink.Add(-1)
		newParent.nlink.Add(1)
		node.parent = newParent
		node.name = newName
	}
	// Invalidate in-flight lock-free walkers that resolved node through
	// the old parent's snapshot: their next validated hop below it must
	// retry and re-observe the new location. This is what makes a
	// lock-free walk unable to combine a stale parent entry with state
	// the moved directory only reached after the move.
	node.bumpGen()
	now := fs.now()
	fs.touchMS(oldParent, now)
	fs.touchMS(newParent, now)
	fs.touchCS(node, now)
	newFull := pathTo(newParent, newName)
	tx.queue(Event{Op: OpRename, Path: oldFull, NewPath: newFull, IsDir: node.isDir()})
	tx.queue(Event{Op: OpCreate, Path: newFull, IsDir: node.isDir()})
	return nil
}

// Rename moves oldPath to newPath with root credentials, atomically with
// the rest of the transaction — the primitive that lets a hook or batch
// caller restructure the tree and adjust its contents in one critical
// section. Replace rules match rename(2) (and Proc.Rename).
func (tx *Tx) Rename(oldPath, newPath string) error {
	lerr := func(err error) error {
		return &LinkError{Op: "rename", Old: oldPath, New: newPath, Err: err}
	}
	oldParent, oldName, node, err := tx.fs.resolve(Root, oldPath, resolveOpts{})
	if err != nil {
		return lerr(err)
	}
	if node == nil {
		return lerr(ErrNotExist)
	}
	if oldParent == nil {
		return lerr(ErrBusy)
	}
	newParent, newName, target, err := tx.fs.resolve(Root, newPath, resolveOpts{})
	if err != nil {
		return lerr(err)
	}
	if target == node {
		return nil
	}
	if err := tx.fs.renameLocked(tx, oldParent, oldName, node, newParent, newName, target); err != nil {
		return lerr(err)
	}
	return nil
}

// RemoveChildren removes the named children of dir, resolving dir once —
// the batched form of Remove for evicting many entries from one
// directory (the event buffers' drop-oldest path). Missing names are
// skipped; the number actually removed is returned.
func (tx *Tx) RemoveChildren(dir string, names []string) (int, error) {
	_, _, d, err := tx.fs.resolve(Root, dir, resolveOpts{followLast: true})
	if err != nil {
		return 0, pathErr("remove", dir, err)
	}
	if d == nil {
		return 0, pathErr("remove", dir, ErrNotExist)
	}
	if !d.isDir() {
		return 0, pathErr("remove", dir, ErrNotDir)
	}
	now := tx.fs.now()
	// One watch-list scan decides descendant-event interest for the whole
	// batch: every removed child shares this parent, so if no watch can see
	// inside any child, none of the subtree removals need per-entry events.
	// Watch paths are real paths, so compare against the resolved dir, not
	// the possibly symlinked argument.
	interest := interestUnknown
	if !tx.fs.watches.interestedInGrandchildren(pathOf(d)) {
		interest = interestNone
	}
	removed := 0
	for _, name := range names {
		c, ok := d.lookupChild(name)
		if !ok {
			continue
		}
		tx.fs.removeNode(d, name, c, tx, now, true, true, interest)
		removed++
	}
	return removed, nil
}

// DirNames appends dir's child names to buf in unspecified order: ReadDir
// without the sort and entry materialization, for callers that only need
// membership.
func (tx *Tx) DirNames(path string, buf []string) ([]string, error) {
	_, _, n, err := tx.fs.resolve(Root, path, resolveOpts{followLast: true})
	if err != nil {
		return buf, pathErr("readdir", path, err)
	}
	if n == nil {
		return buf, pathErr("readdir", path, ErrNotExist)
	}
	if !n.isDir() {
		return buf, pathErr("readdir", path, ErrNotDir)
	}
	for name := range n.kids() {
		buf = append(buf, name)
	}
	return buf, nil
}

// SetSemantics attaches (or clears) directory semantics.
func (tx *Tx) SetSemantics(path string, sem *DirSemantics) error {
	n, err := tx.node(path)
	if err != nil {
		return pathErr("semantics", path, err)
	}
	if !n.isDir() {
		return pathErr("semantics", path, ErrNotDir)
	}
	n.sem = sem
	return nil
}

// SetSynthetic makes (or creates) a synthetic file at path.
func (tx *Tx) SetSynthetic(path string, synth *Synthetic, mode FileMode, uid, gid int) error {
	parent, name, node, err := tx.fs.resolve(Root, path, resolveOpts{followLast: true})
	if err != nil {
		return pathErr("synthetic", path, err)
	}
	if node == nil {
		f := tx.fs.newInode(KindFile, mode, uid, gid)
		f.synth.Store(synth)
		parent.cowInsert(name, f)
		tx.fs.touchMS(parent, tx.fs.now())
		tx.queue(Event{Op: OpCreate, Path: pathTo(parent, name)})
		return nil
	}
	if node.isDir() {
		return pathErr("synthetic", path, ErrIsDir)
	}
	node.synth.Store(synth)
	return nil
}

// SetXattr sets an extended attribute.
func (tx *Tx) SetXattr(path, attr string, value []byte) error {
	n, err := tx.node(path)
	if err != nil {
		return pathErr("setxattr", path, err)
	}
	s := tx.fs.lockNode(n)
	defer s.mu.Unlock()
	if n.xattrs == nil {
		n.xattrs = make(map[string][]byte)
	}
	n.xattrs[attr] = append([]byte(nil), value...)
	n.touchC(tx.fs.now())
	return nil
}

// GetXattr reads an extended attribute.
func (tx *Tx) GetXattr(path, attr string) ([]byte, error) {
	n, err := tx.node(path)
	if err != nil {
		return nil, pathErr("getxattr", path, err)
	}
	s := tx.fs.rlockNode(n)
	defer s.mu.RUnlock()
	v, ok := n.xattrs[attr]
	if !ok {
		return nil, pathErr("getxattr", path, ErrNoAttr)
	}
	return append([]byte(nil), v...), nil
}

// Chmod changes permission bits.
func (tx *Tx) Chmod(path string, mode FileMode) error {
	n, err := tx.node(path)
	if err != nil {
		return pathErr("chmod", path, err)
	}
	n.storeMode(mode)
	tx.fs.touchCS(n, tx.fs.now())
	tx.queue(Event{Op: OpChmod, Path: Clean(path), IsDir: n.isDir()})
	return nil
}

// Chown changes ownership.
func (tx *Tx) Chown(path string, uid, gid int) error {
	n, err := tx.node(path)
	if err != nil {
		return pathErr("chown", path, err)
	}
	n.storeOwner(uid, gid)
	tx.fs.touchCS(n, tx.fs.now())
	tx.queue(Event{Op: OpChmod, Path: Clean(path), IsDir: n.isDir()})
	return nil
}

// ReadDir lists a directory in name order.
func (tx *Tx) ReadDir(path string) ([]DirEntry, error) {
	n, err := tx.node(path)
	if err != nil {
		return nil, pathErr("readdir", path, err)
	}
	if !n.isDir() {
		return nil, pathErr("readdir", path, ErrNotDir)
	}
	return listDir(n), nil
}

// Stat describes the node at path (following symlinks).
func (tx *Tx) Stat(path string) (Stat, error) {
	n, err := tx.node(path)
	if err != nil {
		return Stat{}, pathErr("stat", path, err)
	}
	s := tx.fs.rlockNode(n)
	defer s.mu.RUnlock()
	return statOf(n, Base(path)), nil
}

// listDir materializes a directory listing from the published children
// snapshot. Lock-free: the snapshot is immutable. The sorted listing is
// memoized on the snapshot, so repeated readdir of an unchanged
// directory — a monitor polling a 10⁵-entry flow directory — costs one
// atomic load instead of an O(n log n) rebuild. Callers receive the
// shared cached slice and must treat it as immutable.
func listDir(n *inode) []DirEntry {
	s := n.snap()
	if s == nil {
		return nil
	}
	if p := s.listing.Load(); p != nil {
		return *p
	}
	kids := s.fold()
	out := make([]DirEntry, 0, len(kids))
	for name, c := range kids {
		out = append(out, DirEntry{Name: name, Kind: c.kind, Ino: c.ino})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	s.listing.Store(&out)
	return out
}

// statOf snapshots an inode. The caller must hold the inode's stripe
// (read mode is enough) — inode-local times/version/data are read here.
// Everything else it touches is atomic, immutable, or a published
// snapshot, so no tree lock is needed in any mode.
func statOf(n *inode, name string) Stat {
	size := int64(len(n.data))
	if n.isDir() {
		size = int64(n.childCount())
	}
	return Stat{
		Ino:     n.ino,
		Kind:    n.kind,
		Mode:    n.loadMode(),
		UID:     n.loadUID(),
		GID:     n.loadGID(),
		Nlink:   int(n.nlink.Load()),
		Size:    size,
		Atime:   time.Unix(0, n.atime),
		Mtime:   time.Unix(0, n.mtime),
		Ctime:   time.Unix(0, n.ctime),
		Name:    name,
		Target:  n.target,
		Version: n.version,
	}
}

// unlinkLocked removes node (recursively for directories) from parent and
// queues Remove events. The tree write lock must be held.
func (fs *FS) unlinkLocked(parent *inode, name string, node *inode, tx *Tx) {
	fs.removeNode(parent, name, node, tx, fs.now(), true, true, interestUnknown)
}

// removeNode implements unlinkLocked. queueEvents gates watch-event
// queueing: when a directory is torn down and no watch is rooted inside
// it (nor recursively covers it), events for its descendants can match
// nothing, so queueing — and the path construction it requires — is
// skipped for the whole subtree. The top-level removal always announces
// itself; semantic OnRemove hooks always fire regardless (they are tree
// bookkeeping, not watch delivery). detach is false for the children of a
// directory that is itself being destroyed: unhooking them from its dying
// map (and touching its mtime) would be wasted work.
// Descendant-event interest hints for removeNode. interestUnknown makes
// removeNode consult the watch set itself; interestNone asserts the caller
// already proved no watch can observe events inside this node.
const (
	interestUnknown int8 = iota
	interestNone
)

func (fs *FS) removeNode(parent *inode, name string, node *inode, tx *Tx, now time.Time, queueEvents, detach bool, interest int8) {
	var full string
	if queueEvents {
		full = pathTo(parent, name)
	}
	if node.isDir() {
		kids := node.kids()
		childEvents := queueEvents
		if childEvents && len(kids) > 0 {
			if interest == interestNone {
				childEvents = false
			} else {
				childEvents = fs.watches.interestedInChildren(full)
			}
		}
		// Dying subtrees keep their published snapshots: an in-flight
		// lock-free walker below this node still resolves the (stale but
		// once-valid) structure instead of fabricating ENOENTs.
		for cname, c := range kids {
			fs.removeNode(node, cname, c, tx, now, childEvents, false, interestUnknown)
		}
		parent.nlink.Add(-1)
	}
	if detach {
		parent.cowDelete(name)
		fs.touchMS(parent, now)
		// Invalidate walkers that already resolved node through the old
		// parent snapshot but have not validated the hop yet.
		node.bumpGen()
	}
	node.nlink.Add(-1)
	node.parent = nil
	if queueEvents {
		tx.queue(Event{Op: OpRemove, Path: full, IsDir: node.isDir()})
	}
	if parent.sem != nil && parent.sem.OnRemove != nil {
		dirPath := ""
		if full != "" {
			dirPath = full[:len(full)-len(name)-1]
			if dirPath == "" {
				dirPath = "/"
			}
		} else {
			dirPath = pathOf(parent)
		}
		parent.sem.OnRemove(tx, dirPath, name, node.kind)
	}
}

// errIsAny reports whether err wraps any of the targets.
func errIsAny(err error, targets ...error) bool {
	for _, t := range targets {
		if errors.Is(err, t) {
			return true
		}
	}
	return false
}
