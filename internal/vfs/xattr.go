package vfs

import "sort"

// Extended attributes (§5.1): arbitrary metadata developers can attach to
// network resources. yanc's distributed layer uses them to request
// per-subtree consistency levels (§6).

// SetXattr sets an extended attribute on the node at path. Requires write
// permission on the node.
func (p *Proc) SetXattr(path, attr string, value []byte) error {
	if err := p.charge("setxattr", len(value)); err != nil {
		return err
	}
	p.fs.stats.attrs.Add(1)
	fs := p.fs
	// Lock-free resolve: xattr state itself is stripe-protected.
	n, err := fs.lookupRO(p.cred, path, p.opts(true))
	if err != nil {
		return pathErr("setxattr", path, err)
	}
	if n == nil {
		return pathErr("setxattr", path, ErrNotExist)
	}
	if !allows(n, p.cred, wantWrite) {
		return pathErr("setxattr", path, ErrAccess)
	}
	s := fs.lockNode(n)
	defer s.mu.Unlock()
	if n.xattrs == nil {
		n.xattrs = make(map[string][]byte)
	}
	n.xattrs[attr] = append([]byte(nil), value...)
	n.touchC(fs.now())
	return nil
}

// GetXattr reads an extended attribute.
func (p *Proc) GetXattr(path, attr string) ([]byte, error) {
	if err := p.charge("getxattr", 0); err != nil {
		return nil, err
	}
	p.fs.stats.attrs.Add(1)
	fs := p.fs
	n, err := fs.lookupRO(p.cred, path, p.opts(true))
	if err != nil {
		return nil, pathErr("getxattr", path, err)
	}
	if n == nil {
		return nil, pathErr("getxattr", path, ErrNotExist)
	}
	if !allows(n, p.cred, wantRead) {
		return nil, pathErr("getxattr", path, ErrAccess)
	}
	s := fs.rlockNode(n)
	defer s.mu.RUnlock()
	v, ok := n.xattrs[attr]
	if !ok {
		return nil, pathErr("getxattr", path, ErrNoAttr)
	}
	return append([]byte(nil), v...), nil
}

// ListXattr returns attribute names in sorted order.
func (p *Proc) ListXattr(path string) ([]string, error) {
	if err := p.charge("listxattr", 0); err != nil {
		return nil, err
	}
	p.fs.stats.attrs.Add(1)
	fs := p.fs
	n, err := fs.lookupRO(p.cred, path, p.opts(true))
	if err != nil {
		return nil, pathErr("listxattr", path, err)
	}
	if n == nil {
		return nil, pathErr("listxattr", path, ErrNotExist)
	}
	s := fs.rlockNode(n)
	defer s.mu.RUnlock()
	names := make([]string, 0, len(n.xattrs))
	for k := range n.xattrs {
		names = append(names, k)
	}
	sort.Strings(names)
	return names, nil
}

// RemoveXattr deletes an extended attribute.
func (p *Proc) RemoveXattr(path, attr string) error {
	if err := p.charge("removexattr", 0); err != nil {
		return err
	}
	p.fs.stats.attrs.Add(1)
	fs := p.fs
	n, err := fs.lookupRO(p.cred, path, p.opts(true))
	if err != nil {
		return pathErr("removexattr", path, err)
	}
	if n == nil {
		return pathErr("removexattr", path, ErrNotExist)
	}
	if !allows(n, p.cred, wantWrite) {
		return pathErr("removexattr", path, ErrAccess)
	}
	s := fs.lockNode(n)
	defer s.mu.Unlock()
	if _, ok := n.xattrs[attr]; !ok {
		return pathErr("removexattr", path, ErrNoAttr)
	}
	delete(n.xattrs, attr)
	n.touchC(fs.now())
	return nil
}

// GetXattrString is a convenience for string-valued attributes.
func (p *Proc) GetXattrString(path, attr string) (string, error) {
	v, err := p.GetXattr(path, attr)
	if err != nil {
		return "", err
	}
	return string(v), nil
}
