package vfs

import (
	"sort"
	"strings"
)

// Limiter is charged for every operation a Proc performs. The namespace
// package implements cgroup-style accounting and rate limits on top of
// it; a nil Limiter means unlimited.
type Limiter interface {
	// Charge records one operation of the named kind moving n bytes.
	// Returning an error aborts the operation with ErrQuota semantics.
	Charge(op string, n int) error
}

// Proc is a process's view of a file system: a credential, a root
// directory (which a namespace may pin to a subtree, the chroot/mount-
// namespace analog from §5.3), and an optional resource limiter.
type Proc struct {
	fs      *FS
	cred    Cred
	root    *inode
	limiter Limiter
}

// Proc returns a process context with the given credential rooted at the
// file system root.
func (fs *FS) Proc(cred Cred) *Proc {
	return &Proc{fs: fs, cred: cred, root: fs.root}
}

// RootProc returns a superuser process context.
func (fs *FS) RootProc() *Proc { return fs.Proc(Root) }

// FS returns the underlying file system.
func (p *Proc) FS() *FS { return p.fs }

// Cred returns the process credential.
func (p *Proc) Cred() Cred { return p.cred }

// WithCred returns a Proc sharing this Proc's root but a new credential.
func (p *Proc) WithCred(cred Cred) *Proc {
	return &Proc{fs: p.fs, cred: cred, root: p.root, limiter: p.limiter}
}

// WithLimiter returns a Proc with resource accounting attached.
func (p *Proc) WithLimiter(l Limiter) *Proc {
	return &Proc{fs: p.fs, cred: p.cred, root: p.root, limiter: l}
}

// Chroot returns a Proc whose root is pinned to the subtree at path. Path
// resolution (including absolute symlink targets and "..") cannot escape
// it — the isolation primitive views and slices rely on.
func (p *Proc) Chroot(path string) (*Proc, error) {
	n, err := p.fs.lookupRO(p.cred, path, resolveOpts{followLast: true, root: p.root})
	if err != nil {
		return nil, pathErr("chroot", path, err)
	}
	if n == nil {
		return nil, pathErr("chroot", path, ErrNotExist)
	}
	if !n.isDir() {
		return nil, pathErr("chroot", path, ErrNotDir)
	}
	return &Proc{fs: p.fs, cred: p.cred, root: n, limiter: p.limiter}, nil
}

// realPath reconstructs the root-absolute path of a resolved (parent,
// name) pair; events must carry real paths regardless of the caller's
// namespace.
func realPath(parent *inode, name string) string {
	if parent == nil {
		return "/"
	}
	return pathTo(parent, name)
}

func (p *Proc) charge(op string, n int) error {
	if p.limiter == nil {
		return nil
	}
	if err := p.limiter.Charge(op, n); err != nil {
		return pathErr(op, "", ErrQuota)
	}
	return nil
}

// opts returns resolution options for this Proc.
func (p *Proc) opts(followLast bool) resolveOpts {
	return resolveOpts{followLast: followLast, root: p.root}
}

// Mkdir creates a directory and fires the parent's OnMkdir semantics, so
// creating a yanc object directory automatically populates its typed
// children (§3.1).
func (p *Proc) Mkdir(path string, mode FileMode) error {
	if err := p.charge("mkdir", 0); err != nil {
		return err
	}
	p.fs.stats.creates.Add(1)
	defer p.fs.observe(LatMkdir, latStart())
	fs := p.fs
	fs.lockTree()
	tx := &Tx{fs: fs}
	err := p.mkdirLocked(tx, path, mode)
	events := tx.events
	fs.unlockTree()
	fs.watches.dispatch(events)
	return err
}

func (p *Proc) mkdirLocked(tx *Tx, path string, mode FileMode) error {
	parent, name, node, err := p.fs.resolve(p.cred, path, p.opts(false))
	if err != nil {
		return pathErr("mkdir", path, err)
	}
	if node != nil {
		return pathErr("mkdir", path, ErrExist)
	}
	if !allows(parent, p.cred, wantWrite) {
		return pathErr("mkdir", path, ErrAccess)
	}
	name = internName(name)
	d := p.fs.newInode(KindDir, mode.Perm(), p.cred.UID, p.cred.GID)
	d.parent = parent
	d.name = name
	parent.cowInsert(name, d)
	parent.nlink.Add(1)
	p.fs.touchMS(parent, p.fs.now())
	tx.queue(Event{Op: OpCreate, Path: pathTo(parent, name), IsDir: true})
	if parent.sem != nil && parent.sem.OnMkdir != nil {
		tx.creator = p.cred
		tx.hasCred = true
		if err := parent.sem.OnMkdir(tx, pathOf(parent), name); err != nil {
			// Semantic veto: roll the directory back out.
			parent.cowDelete(name)
			parent.nlink.Add(-1)
			tx.events = tx.events[:0]
			return pathErr("mkdir", path, err)
		}
	}
	return nil
}

// MkdirAll creates path and any missing parents (like mkdir -p).
func (p *Proc) MkdirAll(path string, mode FileMode) error {
	parts := splitPath(path)
	cur := "/"
	for _, part := range parts {
		cur = Join(cur, part)
		err := p.Mkdir(cur, mode)
		if err != nil && !errIsAny(err, ErrExist) {
			return err
		}
	}
	return nil
}

// Symlink creates a symbolic link, subject to the containing directory's
// ValidateSymlink semantics (yanc rejects a port "peer" link that does not
// point at another port).
func (p *Proc) Symlink(target, linkPath string) error {
	if err := p.charge("symlink", 0); err != nil {
		return err
	}
	p.fs.stats.links.Add(1)
	fs := p.fs
	fs.lockTree()
	tx := &Tx{fs: fs}
	err := func() error {
		parent, name, node, err := fs.resolve(p.cred, linkPath, p.opts(false))
		if err != nil {
			return pathErr("symlink", linkPath, err)
		}
		if node != nil {
			return pathErr("symlink", linkPath, ErrExist)
		}
		if !allows(parent, p.cred, wantWrite) {
			return pathErr("symlink", linkPath, ErrAccess)
		}
		if parent.sem != nil && parent.sem.ValidateSymlink != nil {
			if verr := parent.sem.ValidateSymlink(tx, pathOf(parent), name, target); verr != nil {
				return pathErr("symlink", linkPath, verr)
			}
		}
		l := fs.newInode(KindSymlink, 0o777, p.cred.UID, p.cred.GID)
		l.target = target
		parent.cowInsert(name, l)
		fs.touchMS(parent, fs.now())
		tx.queue(Event{Op: OpCreate, Path: pathTo(parent, name)})
		return nil
	}()
	events := tx.events
	fs.unlockTree()
	fs.watches.dispatch(events)
	return err
}

// Readlink returns the target of a symbolic link. Lock-free: the target
// is immutable and resolution walks snapshots.
func (p *Proc) Readlink(path string) (string, error) {
	p.fs.stats.stats.Add(1)
	n, err := p.fs.lookupRO(p.cred, path, p.opts(false))
	if err != nil {
		return "", pathErr("readlink", path, err)
	}
	if n == nil {
		return "", pathErr("readlink", path, ErrNotExist)
	}
	if n.kind != KindSymlink {
		return "", pathErr("readlink", path, ErrInvalid)
	}
	return n.target, nil
}

// Link creates a hard link to a regular file.
func (p *Proc) Link(oldPath, newPath string) error {
	if err := p.charge("link", 0); err != nil {
		return err
	}
	p.fs.stats.links.Add(1)
	fs := p.fs
	fs.lockTree()
	tx := &Tx{fs: fs}
	err := func() error {
		_, _, src, err := fs.resolve(p.cred, oldPath, p.opts(true))
		if err != nil {
			return &LinkError{Op: "link", Old: oldPath, New: newPath, Err: err}
		}
		if src == nil {
			return &LinkError{Op: "link", Old: oldPath, New: newPath, Err: ErrNotExist}
		}
		if src.isDir() {
			return &LinkError{Op: "link", Old: oldPath, New: newPath, Err: ErrPerm}
		}
		parent, name, node, err := fs.resolve(p.cred, newPath, p.opts(false))
		if err != nil {
			return &LinkError{Op: "link", Old: oldPath, New: newPath, Err: err}
		}
		if node != nil {
			return &LinkError{Op: "link", Old: oldPath, New: newPath, Err: ErrExist}
		}
		if !allows(parent, p.cred, wantWrite) {
			return &LinkError{Op: "link", Old: oldPath, New: newPath, Err: ErrAccess}
		}
		parent.cowInsert(name, src)
		src.nlink.Add(1)
		now := fs.now()
		fs.touchCS(src, now)
		fs.touchMS(parent, now)
		tx.queue(Event{Op: OpCreate, Path: pathTo(parent, name)})
		return nil
	}()
	events := tx.events
	fs.unlockTree()
	fs.watches.dispatch(events)
	return err
}

// Remove unlinks a file or symlink, or removes a directory. Directories
// must be empty unless the parent's semantics set RecursiveRmdir (§3.2:
// "the rmdir() call for switches is automatically recursive").
func (p *Proc) Remove(path string) error {
	if err := p.charge("remove", 0); err != nil {
		return err
	}
	p.fs.stats.removes.Add(1)
	defer p.fs.observe(LatRemove, latStart())
	fs := p.fs
	fs.lockTree()
	tx := &Tx{fs: fs}
	err := func() error {
		parent, name, node, err := fs.resolve(p.cred, path, p.opts(false))
		if err != nil {
			return pathErr("remove", path, err)
		}
		if node == nil {
			return pathErr("remove", path, ErrNotExist)
		}
		if parent == nil {
			return pathErr("remove", path, ErrBusy) // the root itself
		}
		if !allows(parent, p.cred, wantWrite) {
			return pathErr("remove", path, ErrAccess)
		}
		if parent.sem != nil && parent.sem.Protected[name] && p.cred.UID != 0 {
			return pathErr("remove", path, ErrPerm)
		}
		if node.isDir() && node.childCount() > 0 {
			recursive := parent.sem != nil && parent.sem.RecursiveRmdir
			if !recursive {
				return pathErr("remove", path, ErrNotEmpty)
			}
		}
		fs.unlinkLocked(parent, name, node, tx)
		return nil
	}()
	events := tx.events
	fs.unlockTree()
	fs.watches.dispatch(events)
	return err
}

// RemoveAll removes path and any children it contains, succeeding
// trivially if the path does not exist (like os.RemoveAll).
func (p *Proc) RemoveAll(path string) error {
	if err := p.charge("remove", 0); err != nil {
		return err
	}
	p.fs.stats.removes.Add(1)
	defer p.fs.observe(LatRemove, latStart())
	fs := p.fs
	fs.lockTree()
	tx := &Tx{fs: fs}
	err := func() error {
		parent, name, node, err := fs.resolve(p.cred, path, p.opts(false))
		if err != nil {
			return pathErr("removeall", path, err)
		}
		if node == nil {
			return nil
		}
		if parent == nil {
			return pathErr("removeall", path, ErrBusy)
		}
		if !allows(parent, p.cred, wantWrite) {
			return pathErr("removeall", path, ErrAccess)
		}
		fs.unlinkLocked(parent, name, node, tx)
		return nil
	}()
	events := tx.events
	fs.unlockTree()
	fs.watches.dispatch(events)
	return err
}

// Rename moves old to new (within this file system). Directories move
// with their subtrees; an existing empty target directory or target file
// is replaced, as rename(2) does.
func (p *Proc) Rename(oldPath, newPath string) error {
	if err := p.charge("rename", 0); err != nil {
		return err
	}
	p.fs.stats.renames.Add(1)
	defer p.fs.observe(LatRename, latStart())
	fs := p.fs
	fs.lockTree()
	tx := &Tx{fs: fs}
	err := func() error {
		lerr := func(err error) error {
			return &LinkError{Op: "rename", Old: oldPath, New: newPath, Err: err}
		}
		oldParent, oldName, node, err := fs.resolve(p.cred, oldPath, p.opts(false))
		if err != nil {
			return lerr(err)
		}
		if node == nil {
			return lerr(ErrNotExist)
		}
		if oldParent == nil {
			return lerr(ErrBusy)
		}
		newParent, newName, target, err := fs.resolve(p.cred, newPath, p.opts(false))
		if err != nil {
			return lerr(err)
		}
		if !allows(oldParent, p.cred, wantWrite) || !allows(newParent, p.cred, wantWrite) {
			return lerr(ErrAccess)
		}
		if oldParent.sem != nil && oldParent.sem.Protected[oldName] && p.cred.UID != 0 {
			return lerr(ErrPerm)
		}
		if target == node {
			return nil
		}
		if err := fs.renameLocked(tx, oldParent, oldName, node, newParent, newName, target); err != nil {
			return lerr(err)
		}
		return nil
	}()
	events := tx.events
	fs.unlockTree()
	fs.watches.dispatch(events)
	return err
}

// Stat describes the node at path, following symlinks. Lock-free on the
// common path: resolution walks published snapshots and only the node's
// own stripe is taken to read its times/size.
func (p *Proc) Stat(path string) (Stat, error) {
	if err := p.charge("stat", 0); err != nil {
		return Stat{}, err
	}
	p.fs.stats.stats.Add(1)
	defer p.fs.observe(LatStat, latStart())
	n, err := p.fs.lookupRO(p.cred, path, p.opts(true))
	if err != nil {
		return Stat{}, pathErr("stat", path, err)
	}
	if n == nil {
		return Stat{}, pathErr("stat", path, ErrNotExist)
	}
	s := p.fs.rlockNode(n)
	defer s.mu.RUnlock()
	return statOf(n, Base(path)), nil
}

// Lstat describes the node at path without following a final symlink.
func (p *Proc) Lstat(path string) (Stat, error) {
	if err := p.charge("stat", 0); err != nil {
		return Stat{}, err
	}
	p.fs.stats.stats.Add(1)
	defer p.fs.observe(LatStat, latStart())
	n, err := p.fs.lookupRO(p.cred, path, p.opts(false))
	if err != nil {
		return Stat{}, pathErr("lstat", path, err)
	}
	if n == nil {
		return Stat{}, pathErr("lstat", path, ErrNotExist)
	}
	s := p.fs.rlockNode(n)
	defer s.mu.RUnlock()
	return statOf(n, Base(path)), nil
}

// Exists reports whether path resolves (following symlinks).
func (p *Proc) Exists(path string) bool {
	_, err := p.Stat(path)
	return err == nil
}

// IsDir reports whether path is a directory.
func (p *Proc) IsDir(path string) bool {
	st, err := p.Stat(path)
	return err == nil && st.IsDir()
}

// ReadDir lists a directory in name order. Requires read permission.
// Fully lock-free: the listing materializes from the directory's
// immutable published snapshot.
func (p *Proc) ReadDir(path string) ([]DirEntry, error) {
	if err := p.charge("readdir", 0); err != nil {
		return nil, err
	}
	p.fs.stats.readdirs.Add(1)
	defer p.fs.observe(LatReadDir, latStart())
	n, err := p.fs.lookupRO(p.cred, path, p.opts(true))
	if err != nil {
		return nil, pathErr("readdir", path, err)
	}
	if n == nil {
		return nil, pathErr("readdir", path, ErrNotExist)
	}
	if !n.isDir() {
		return nil, pathErr("readdir", path, ErrNotDir)
	}
	if !allows(n, p.cred, wantRead) {
		return nil, pathErr("readdir", path, ErrAccess)
	}
	return listDir(n), nil
}

// Chmod changes permission bits; only the owner or root may do so.
func (p *Proc) Chmod(path string, mode FileMode) error {
	if err := p.charge("chmod", 0); err != nil {
		return err
	}
	p.fs.stats.attrs.Add(1)
	// Metadata-only change: the tree read lock suffices (mode is atomic,
	// ctime/version go under the inode's stripe).
	fs := p.fs
	var events []Event
	err := func() error {
		fs.rlockTree()
		defer fs.runlockTree()
		parent, name, n, err := fs.resolve(p.cred, path, p.opts(true))
		if err != nil {
			return pathErr("chmod", path, err)
		}
		if n == nil {
			return pathErr("chmod", path, ErrNotExist)
		}
		if p.cred.UID != 0 && p.cred.UID != n.loadUID() {
			return pathErr("chmod", path, ErrPerm)
		}
		n.storeMode(mode)
		s := fs.lockNode(n)
		n.touchC(fs.now())
		s.mu.Unlock()
		events = append(events, Event{Op: OpChmod, Path: realPath(parent, name), IsDir: n.isDir()})
		return nil
	}()
	fs.watches.dispatch(events)
	return err
}

// Chown changes ownership; only root may change the owner.
func (p *Proc) Chown(path string, uid, gid int) error {
	if err := p.charge("chown", 0); err != nil {
		return err
	}
	p.fs.stats.attrs.Add(1)
	fs := p.fs
	var events []Event
	err := func() error {
		fs.rlockTree()
		defer fs.runlockTree()
		parent, name, n, err := fs.resolve(p.cred, path, p.opts(true))
		if err != nil {
			return pathErr("chown", path, err)
		}
		if n == nil {
			return pathErr("chown", path, ErrNotExist)
		}
		if p.cred.UID != 0 {
			return pathErr("chown", path, ErrPerm)
		}
		n.storeOwner(uid, gid)
		s := fs.lockNode(n)
		n.touchC(fs.now())
		s.mu.Unlock()
		events = append(events, Event{Op: OpChmod, Path: realPath(parent, name), IsDir: n.isDir()})
		return nil
	}()
	fs.watches.dispatch(events)
	return err
}

// WalkFunc visits a path during Walk. Returning SkipDir skips a
// directory's children.
type WalkFunc func(path string, st Stat) error

// SkipDir is the WalkFunc sentinel to skip a directory subtree.
var SkipDir = &PathError{Op: "walk", Path: "", Err: ErrInvalid}

// Walk traverses the tree depth-first in name order starting at root,
// calling fn for every visitable node. Symlinks are reported, not
// followed (matching filepath.Walk).
func (p *Proc) Walk(root string, fn WalkFunc) error {
	st, err := p.Lstat(root)
	if err != nil {
		return err
	}
	return p.walk(Clean(root), st, fn)
}

func (p *Proc) walk(path string, st Stat, fn WalkFunc) error {
	err := fn(path, st)
	if err == SkipDir {
		return nil
	}
	if err != nil {
		return err
	}
	if !st.IsDir() {
		return nil
	}
	entries, err := p.ReadDir(path)
	if err != nil {
		return err
	}
	for _, e := range entries {
		child := Join(path, e.Name)
		cst, err := p.Lstat(child)
		if err != nil {
			continue // removed concurrently
		}
		if err := p.walk(child, cst, fn); err != nil {
			return err
		}
	}
	return nil
}

// Glob returns paths matching a shell pattern with "*" wildcards in any
// component (no "**"). The pattern must be absolute.
func (p *Proc) Glob(pattern string) ([]string, error) {
	parts := splitPath(pattern)
	cur := []string{"/"}
	for _, part := range parts {
		var next []string
		for _, dir := range cur {
			if !strings.ContainsAny(part, "*?[") {
				cand := Join(dir, part)
				if _, err := p.Lstat(cand); err == nil {
					next = append(next, cand)
				}
				continue
			}
			entries, err := p.ReadDir(dir)
			if err != nil {
				continue
			}
			for _, e := range entries {
				if ok, _ := matchPattern(part, e.Name); ok {
					next = append(next, Join(dir, e.Name))
				}
			}
		}
		cur = next
	}
	sort.Strings(cur)
	return cur, nil
}

// matchPattern implements a small glob: '*' any run, '?' any char.
func matchPattern(pattern, name string) (bool, error) {
	var match func(p, s string) bool
	match = func(p, s string) bool {
		for len(p) > 0 {
			switch p[0] {
			case '*':
				for i := 0; i <= len(s); i++ {
					if match(p[1:], s[i:]) {
						return true
					}
				}
				return false
			case '?':
				if len(s) == 0 {
					return false
				}
				p, s = p[1:], s[1:]
			default:
				if len(s) == 0 || s[0] != p[0] {
					return false
				}
				p, s = p[1:], s[1:]
			}
		}
		return len(s) == 0
	}
	return match(pattern, name), nil
}
