package vfs

import (
	"fmt"
	"sync"
	"testing"
)

// TestOverflowMarkerNeverLost is the regression test for the silent event
// loss bug: when a watch queue saturates, the Overflow marker send itself
// used to go through a non-blocking attempt that could fail while the
// overflowed flag stayed set — so the consumer would drain the queue and
// never learn events were lost. The marker slot must be reserved
// unconditionally: after any saturation episode, the first thing the
// consumer sees past the queued prefix is OpOverflow.
func TestOverflowMarkerNeverLost(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	w, err := p.AddWatch("/", OpAll, Recursive(), BufferSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// Saturate: with capacity 1, the second write must overflow.
	for i := 0; i < 10; i++ {
		if err := p.WriteString(fmt.Sprintf("/f%d", i), "x"); err != nil {
			t.Fatal(err)
		}
	}
	fs.SyncWatches()

	info := w.Info()
	if info.Overflows == 0 {
		t.Fatal("no overflow episode recorded on a saturated BufferSize(1) watch")
	}
	if info.Drops == 0 {
		t.Fatal("no drops recorded despite saturation")
	}
	if info.Capacity != 1 {
		t.Fatalf("capacity = %d, want 1", info.Capacity)
	}

	// The single queued slot must hold the overflow marker — the old code
	// could leave a stale data event there with the marker silently dropped.
	sawOverflow := false
	for {
		select {
		case ev := <-w.C:
			if ev.Op == OpOverflow {
				sawOverflow = true
			}
			continue
		default:
		}
		break
	}
	if !sawOverflow {
		t.Fatal("queue drained without an OpOverflow marker: events were lost silently")
	}
}

// TestOverflowMarkerSurvivesConsumerRace hammers the exact interleaving
// the old code lost: a consumer draining concurrently with producers that
// keep saturating the queue. Every time the consumer observes a gap in
// the event stream, an OpOverflow must have been delivered before it.
func TestOverflowMarkerSurvivesConsumerRace(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	w, err := p.AddWatch("/", OpAll, Recursive(), BufferSize(1))
	if err != nil {
		t.Fatal(err)
	}

	const writes = 500
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			_ = p.WriteString("/spin", "x")
		}
		// Wait for the async dispatcher to finish before closing: events
		// still in its queue at Close would be neither delivered nor
		// counted as drops, breaking the conservation check below.
		fs.SyncWatches()
		w.Close()
	}()

	delivered, overflows := 0, 0
	for ev := range w.C {
		if ev.Op == OpOverflow {
			overflows++
		} else {
			delivered++
		}
	}
	wg.Wait()

	info := w.Info()
	// Conservation: every event was either delivered, or accounted as a
	// drop; overflow markers delivered must match episodes recorded.
	// (+1: the create event for /spin's first write.)
	if uint64(delivered)+info.Drops < writes {
		t.Fatalf("lost events unaccounted: delivered %d + drops %d < %d writes",
			delivered, info.Drops, writes)
	}
	if info.Drops > 0 && overflows == 0 {
		t.Fatalf("%d events dropped but no OpOverflow ever delivered", info.Drops)
	}
	if uint64(overflows) != info.Overflows {
		t.Fatalf("delivered %d overflow markers, recorded %d episodes", overflows, info.Overflows)
	}
}
