package vfs

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"
)

// The giant-directory battery pins the O(1)-amortized behavior yancload
// depends on: a flow directory with 10⁵ children must support readdir,
// rename, and unlink without copying or rescanning the whole children
// map per operation (tombstone overlay cells + per-snapshot fold and
// listing memoization, resolve_rcu.go). The Stress/Alloc names put
// these in ci.sh's -race battery.

const giantN = 100_000

// giantDir builds /big with n file children named c000000..c0n in one
// WriteTree batch (incremental population is not what these tests pin).
func giantDir(t testing.TB, fs *FS, n int) {
	t.Helper()
	files := make([]FileData, n)
	for i := range files {
		files[i] = FileData{Name: fmt.Sprintf("c%06d", i), Data: []byte("5")}
	}
	err := fs.WithTx(func(tx *Tx) error {
		return tx.WriteTree("/big", files, 0o755, 0o644, 0, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStressGiantDirOps pins readdir/rename/Remove correctness at 10⁵
// children: listings stay sorted and complete, renames move exactly one
// entry, removals shrink the directory, and Stat's size tracks the
// child count without a fold.
func TestStressGiantDirOps(t *testing.T) {
	fs := New()
	giantDir(t, fs, giantN)
	p := fs.RootProc()

	entries, err := p.ReadDir("/big")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != giantN {
		t.Fatalf("readdir: %d entries, want %d", len(entries), giantN)
	}
	if !sort.SliceIsSorted(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name }) {
		t.Fatal("readdir result not sorted")
	}
	if entries[0].Name != "c000000" || entries[giantN-1].Name != fmt.Sprintf("c%06d", giantN-1) {
		t.Fatalf("readdir endpoints: %q .. %q", entries[0].Name, entries[giantN-1].Name)
	}
	st, err := p.Stat("/big")
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != giantN {
		t.Fatalf("dir size = %d, want %d", st.Size, giantN)
	}

	// Rename a scatter of entries: old names gone, new names present,
	// count unchanged.
	for i := 0; i < 100; i++ {
		old := fmt.Sprintf("/big/c%06d", i*997)
		if err := p.Rename(old, fmt.Sprintf("/big/r%06d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if p.Exists(fmt.Sprintf("/big/c%06d", i*997)) {
			t.Fatalf("renamed entry %d still present under old name", i)
		}
		if !p.Exists(fmt.Sprintf("/big/r%06d", i)) {
			t.Fatalf("renamed entry %d missing under new name", i)
		}
	}
	if st, _ := p.Stat("/big"); st.Size != giantN {
		t.Fatalf("dir size after renames = %d, want %d", st.Size, giantN)
	}

	// Remove a block (skipping indices the rename pass moved away); the
	// listing and count shrink exactly.
	removed := 0
	for i := 1000; i < 2000; i++ {
		if i%997 == 0 {
			continue
		}
		if err := p.Remove(fmt.Sprintf("/big/c%06d", i)); err != nil {
			t.Fatal(err)
		}
		removed++
	}
	entries, err = p.ReadDir("/big")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != giantN-removed {
		t.Fatalf("readdir after removes: %d entries, want %d", len(entries), giantN-removed)
	}
	if p.Exists("/big/c001500") {
		t.Fatal("removed entry still resolvable")
	}
}

// TestAllocGiantDirReaddirCached pins the listing memoization: repeated
// ReadDir of an unchanged 10⁵-entry directory returns the cached sorted
// slice — a handful of allocations per call, never an O(n) rebuild
// (rebuilding would cost thousands of allocations for the entry slice
// and sort machinery). Dynamic cross-check of the //yancvet:hotalloc
// static rule (DESIGN.md §11): the analyzer proves the annotated resolve
// fastpath can't allocate; this pin bounds the adjacent cached-readdir
// path the static rule doesn't cover. Keep both.
func TestAllocGiantDirReaddirCached(t *testing.T) {
	fs := New()
	giantDir(t, fs, giantN)
	p := fs.RootProc()
	if _, err := p.ReadDir("/big"); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		entries, err := p.ReadDir("/big")
		if err != nil || len(entries) != giantN {
			t.Fatalf("readdir: %d entries, err %v", len(entries), err)
		}
	})
	if allocs > 8 {
		t.Fatalf("cached readdir allocates %.0f objects per call, want <= 8", allocs)
	}
}

// TestAllocGiantDirRenameBounded pins the tombstone overlay: renames in
// a 10⁵-entry directory must not fold (copy) the whole children map per
// op. 128 renames touch 256 overlay cells and therefore at most ~4
// amortized folds; with a per-op fold the same loop copies the map 256
// times (gigabytes). The bound is on allocated bytes, which is what an
// O(n)-per-op regression actually moves.
func TestAllocGiantDirRenameBounded(t *testing.T) {
	fs := New()
	giantDir(t, fs, giantN)
	p := fs.RootProc()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < 128; i++ {
		old := fmt.Sprintf("/big/c%06d", 50_000+i)
		if err := p.Rename(old, fmt.Sprintf("/big/m%06d", i)); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)
	total := after.TotalAlloc - before.TotalAlloc
	// ~4 folds of a 100k-entry map plus per-op cells is well under
	// 64 MiB even with -race inflation; per-op folding needs >500 MiB.
	const limit = 64 << 20
	if total > limit {
		t.Fatalf("128 renames in a %d-entry dir allocated %d bytes, want <= %d", giantN, total, limit)
	}
}

// TestStressGiantDirChurnVsReaddr races structural churn (rename,
// remove, create) against lock-free readers (ReadDir, Stat, Exists) on
// one 2·10⁴-entry directory. Assertions: no race (-race leg), no
// deadlock (canary), readers always see internally consistent listings
// (sorted, no duplicate names), and the final state matches the churn's
// net effect.
func TestStressGiantDirChurnVsReaddr(t *testing.T) {
	fs := New()
	const n = 20_000
	giantDir(t, fs, n)
	p := fs.RootProc()
	runWithDeadline(t, stressDeadline, func() {
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					j := rng.Intn(n)
					switch i % 3 {
					case 0:
						_ = p.Rename(fmt.Sprintf("/big/c%06d", j), fmt.Sprintf("/big/w%d-%06d", w, i))
					case 1:
						_ = p.Remove(fmt.Sprintf("/big/w%d-%06d", w, i-1))
					default:
						_ = p.WriteFile(fmt.Sprintf("/big/c%06d", j), []byte("5"), 0o644)
					}
				}
			}(w)
		}
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(100 + r)))
				for {
					select {
					case <-stop:
						return
					default:
					}
					entries, err := p.ReadDir("/big")
					if err != nil {
						t.Errorf("readdir: %v", err)
						return
					}
					for i := 1; i < len(entries); i++ {
						if entries[i-1].Name >= entries[i].Name {
							t.Errorf("listing unsorted or duplicated at %d: %q >= %q",
								i, entries[i-1].Name, entries[i].Name)
							return
						}
					}
					_, _ = p.Stat("/big")
					p.Exists(fmt.Sprintf("/big/c%06d", rng.Intn(n)))
				}
			}(r)
		}
		time.Sleep(500 * time.Millisecond)
		close(stop)
		wg.Wait()
	})
	// Churn only ever replaces or removes entries, so the directory can
	// never exceed its initial population.
	entries, err := p.ReadDir("/big")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 || len(entries) > n {
		t.Fatalf("final entry count %d out of range (0, %d]", len(entries), n)
	}
}

// TestStressOverlayTombstoneModel drives a seeded random op mix
// (create, delete, re-create, rename) through one directory and checks
// the published snapshot against a model map every few ops — across
// many fold boundaries — so newest-wins overlay semantics (duplicate
// names, tombstones, re-inserts after tombstones) are pinned exactly.
func TestStressOverlayTombstoneModel(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	if err := p.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	model := map[string]bool{}
	names := func(i int) string { return fmt.Sprintf("/d/n%03d", i) }
	for op := 0; op < 5000; op++ {
		i := rng.Intn(200)
		switch rng.Intn(3) {
		case 0: // create or overwrite
			if err := p.WriteFile(names(i), []byte("x"), 0o644); err != nil {
				t.Fatalf("op %d write: %v", op, err)
			}
			model[fmt.Sprintf("n%03d", i)] = true
		case 1: // delete
			err := p.Remove(names(i))
			if model[fmt.Sprintf("n%03d", i)] {
				if err != nil {
					t.Fatalf("op %d remove existing: %v", op, err)
				}
				delete(model, fmt.Sprintf("n%03d", i))
			} else if err == nil {
				t.Fatalf("op %d removed nonexistent entry", op)
			}
		default: // rename onto a (possibly occupied) slot
			j := rng.Intn(200)
			err := p.Rename(names(i), names(j))
			src, dst := fmt.Sprintf("n%03d", i), fmt.Sprintf("n%03d", j)
			if model[src] {
				if err != nil {
					t.Fatalf("op %d rename existing: %v", op, err)
				}
				if i != j {
					delete(model, src)
					model[dst] = true
				}
			} else if err == nil {
				t.Fatalf("op %d renamed nonexistent entry", op)
			}
		}
		if op%50 == 0 {
			entries, err := p.ReadDir("/d")
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != len(model) {
				t.Fatalf("op %d: %d entries, model has %d", op, len(entries), len(model))
			}
			for _, e := range entries {
				if !model[e.Name] {
					t.Fatalf("op %d: phantom entry %q", op, e.Name)
				}
			}
			if st, _ := p.Stat("/d"); int(st.Size) != len(model) {
				t.Fatalf("op %d: dir size %d, model %d", op, st.Size, len(model))
			}
		}
	}
}
