package vfs

import (
	"sync"
	"sync/atomic"
)

// The VFS concurrency model (DESIGN.md §8) has three levels:
//
//   - Atomic snapshots (no lock at all): each directory inode publishes
//     its children map as an immutable snapshot behind an atomic pointer,
//     paired with a generation counter (resolve_rcu.go). Read-only path
//     resolution walks these snapshots lock-free, validating each hop
//     against the generation counter and retrying (then falling back to
//     the read-locked slow path) on concurrent structural change.
//     Permission state (mode, uid, gid), nlink, and the synth attachment
//     are likewise atomic, so the per-component permission check and the
//     open fast path touch no lock.
//
//   - The tree lock (FS.tree) serializes *structural mutation*: the
//     copy-on-write replacement of children snapshots, parent/name
//     back-links, and DirSemantics hooks. Structural operations (mkdir,
//     create, remove, rename, link, symlink, WithTx) hold it in write
//     mode; locked readers (ReadTx, the resolve fallback path, watch-path
//     reconstruction) hold it in read mode. Snapshots are replaced only
//     via setKids/cowInsert/cowDelete under the write lock — never
//     mutated in place after publish (the snapshotpub vet rule enforces
//     this).
//
//   - Inode-state locks, sharded by inode number over LockShards stripes
//     (FS.shards), protect the *content* of one inode: data, mtime/ctime/
//     atime, version, and xattrs. Because lock-free readers reach inodes
//     without touching the tree lock, the tree lock — even in write mode —
//     no longer excludes readers of inode-local state: every access to a
//     published inode's content fields must take its stripe. Only inodes
//     not yet published (no snapshot anywhere references them) may be
//     initialized stripe-free; the atomic snapshot swap that publishes
//     them provides the happens-before edge.
//
// The lock-free resolve protocol (resolve_rcu.go): writers bump the
// directory generation before swapping in the new snapshot, so a reader
// that loads a new map is guaranteed to see a new generation and retry
// its hop; a reader that validated the old generation used a consistent
// pre-change snapshot. The walker retries a hop at most maxRCURetries
// times, charging each retry one symlink hop (so rename storms surface as
// ErrTooManyLinks), and bails to the read-locked walkFrom path on ".."
// and on symlinks it would have to follow.
//
// Telemetry: resolveLockfree/resolveFallback count read-path resolutions
// (Stat, ReadDir, xattrs, Readlink, the open fast path) that completed
// lock-free vs. took the locked fallback. Intentionally-locked resolves
// on write paths are not counted — the ratio measures how often the
// lock-free walk succeeds, not how often the tree lock is taken.
//
// Lock-ordering discipline (violations deadlock; the stress battery's
// canary tests enforce it):
//
//  1. tree lock before shard lock, never the reverse: a goroutine holding
//     a shard must not acquire the tree lock in any mode.
//  2. at most one shard lock at a time; if a future operation ever needs
//     two, it must take them in ascending shard-index order.
//  3. DirSemantics hooks and Synthetic providers invoked under the tree
//     write lock must only touch the tree through the Tx they are handed.
//     Calling a Proc-level entry point re-acquires the tree lock and
//     self-deadlocks (sync.RWMutex is not reentrant).
//  4. Synthetic.Read/Write providers run *outside* all tree locks (from
//     the open/close path) and may perform arbitrary Proc I/O.
//  5. children snapshots are immutable after publish; replace them only
//     via setKids (or the cow helpers) under the tree write lock. The
//     single exception is a snapshot's memoization fields (folded,
//     listing): atomic pointers caching derived views that are pure
//     functions of the immutable state, fillable by any reader.
//  6. interned payload slices (intern.go) are shared across inodes and
//     immutable: a writer that finds dataShared set must replace the
//     slice (copy-on-write under the stripe), never write into it.

// LockShards is the number of inode-state lock stripes. A power of two so
// the shard index is a mask of the inode number.
const LockShards = 64

// shardLock is one inode-state stripe. The padding keeps hot stripes on
// separate cache lines.
type shardLock struct {
	mu  sync.RWMutex
	acq atomic.Uint64 // total acquisitions (read + write), for .proc
	_   [64]byte
}

// lockCounters accumulates acquisition and contention telemetry for the
// .proc/vfs/{lock_shards,contention} files. A "contended" acquisition is
// one whose initial TryLock failed and had to block.
type lockCounters struct {
	treeRead           atomic.Uint64
	treeWrite          atomic.Uint64
	treeReadContended  atomic.Uint64
	treeWriteContended atomic.Uint64
	shardRead          atomic.Uint64
	shardWrite         atomic.Uint64
	shardContended     atomic.Uint64
	resolveLockfree    atomic.Uint64 // read-path resolutions served lock-free
	resolveFallback    atomic.Uint64 // read-path resolutions that took the locked slow path
}

// lockTree acquires the tree lock in write mode (structural operations).
func (fs *FS) lockTree() {
	if !fs.tree.TryLock() {
		fs.lockCtr.treeWriteContended.Add(1)
		fs.tree.Lock()
	}
	fs.lockCtr.treeWrite.Add(1)
}

func (fs *FS) unlockTree() { fs.tree.Unlock() }

// rlockTree acquires the tree lock in read mode (all non-structural
// operations).
func (fs *FS) rlockTree() {
	if !fs.tree.TryRLock() {
		fs.lockCtr.treeReadContended.Add(1)
		fs.tree.RLock()
	}
	fs.lockCtr.treeRead.Add(1)
}

func (fs *FS) runlockTree() { fs.tree.RUnlock() }

// shardOf returns the inode-state stripe for n.
func (fs *FS) shardOf(n *inode) *shardLock { return &fs.shards[n.ino&(LockShards-1)] }

// lockNode write-locks n's inode-state stripe. The caller must not
// already hold any stripe; the tree lock is not a prerequisite (open file
// handles and lock-free lookups reach stripes with no tree lock held).
func (fs *FS) lockNode(n *inode) *shardLock {
	s := fs.shardOf(n)
	if !s.mu.TryLock() {
		fs.lockCtr.shardContended.Add(1)
		s.mu.Lock()
	}
	fs.lockCtr.shardWrite.Add(1)
	s.acq.Add(1)
	return s
}

// rlockNode read-locks n's inode-state stripe under the same rules.
func (fs *FS) rlockNode(n *inode) *shardLock {
	s := fs.shardOf(n)
	if !s.mu.TryRLock() {
		fs.lockCtr.shardContended.Add(1)
		s.mu.RLock()
	}
	fs.lockCtr.shardRead.Add(1)
	s.acq.Add(1)
	return s
}

// LockStats is a point-in-time snapshot of lock telemetry, the data
// behind /.proc/vfs/lock_shards and /.proc/vfs/contention.
type LockStats struct {
	Shards             int
	TreeRead           uint64 // tree read-mode acquisitions
	TreeWrite          uint64 // tree write-mode acquisitions
	TreeReadContended  uint64
	TreeWriteContended uint64
	ShardRead          uint64 // stripe read-mode acquisitions
	ShardWrite         uint64 // stripe write-mode acquisitions
	ShardContended     uint64
	ResolveLockfree    uint64             // read-path resolutions served entirely lock-free
	ResolveFallback    uint64             // read-path resolutions that fell back to the locked walk
	PerShard           [LockShards]uint64 // total acquisitions per stripe
}

// Contended returns the total number of blocking acquisitions.
func (s LockStats) Contended() uint64 {
	return s.TreeReadContended + s.TreeWriteContended + s.ShardContended
}

// LockStats snapshots the lock telemetry counters.
func (fs *FS) LockStats() LockStats {
	s := LockStats{
		Shards:             LockShards,
		TreeRead:           fs.lockCtr.treeRead.Load(),
		TreeWrite:          fs.lockCtr.treeWrite.Load(),
		TreeReadContended:  fs.lockCtr.treeReadContended.Load(),
		TreeWriteContended: fs.lockCtr.treeWriteContended.Load(),
		ShardRead:          fs.lockCtr.shardRead.Load(),
		ShardWrite:         fs.lockCtr.shardWrite.Load(),
		ShardContended:     fs.lockCtr.shardContended.Load(),
		ResolveLockfree:    fs.lockCtr.resolveLockfree.Load(),
		ResolveFallback:    fs.lockCtr.resolveFallback.Load(),
	}
	for i := range fs.shards {
		s.PerShard[i] = fs.shards[i].acq.Load()
	}
	return s
}
