package vfs

import (
	"sync"
	"sync/atomic"
)

// The VFS locking model (DESIGN.md §8) has two levels:
//
//   - The tree lock (FS.tree) protects the *structure* of the tree: the
//     children maps, parent/name back-links, nlink, and the sem/synth
//     attachment points. Structural operations (mkdir, create, remove,
//     rename, link, symlink, WithTx and every DirSemantics hook) hold it
//     in write mode; every other operation holds it in read mode, so any
//     number of non-structural operations run concurrently.
//
//   - Inode-state locks, sharded by inode number over LockShards stripes
//     (FS.shards), protect the *content* of one inode: data, mtime/ctime/
//     atime, version, and xattrs. They are taken under the tree lock
//     (either mode), so two writers to different files — or a writer and
//     a reader of unrelated files — never serialize on a global mutex.
//
// Permission state (mode, uid, gid) is atomic and read lock-free during
// path resolution, which keeps the per-component permission check off
// every lock.
//
// Lock-ordering discipline (violations deadlock; the stress battery's
// canary tests enforce it):
//
//  1. tree lock before shard lock, never the reverse: a goroutine holding
//     a shard must not acquire the tree lock in any mode.
//  2. at most one shard lock at a time; if a future operation ever needs
//     two, it must take them in ascending shard-index order.
//  3. DirSemantics hooks and Synthetic providers invoked under the tree
//     write lock must only touch the tree through the Tx they are handed.
//     Calling a Proc-level entry point re-acquires the tree lock and
//     self-deadlocks (sync.RWMutex is not reentrant).
//  4. Synthetic.Read/Write providers run *outside* all tree locks (from
//     the open/close path) and may perform arbitrary Proc I/O.

// LockShards is the number of inode-state lock stripes. A power of two so
// the shard index is a mask of the inode number.
const LockShards = 64

// shardLock is one inode-state stripe. The padding keeps hot stripes on
// separate cache lines.
type shardLock struct {
	mu  sync.RWMutex
	acq atomic.Uint64 // total acquisitions (read + write), for .proc
	_   [64]byte
}

// lockCounters accumulates acquisition and contention telemetry for the
// .proc/vfs/{lock_shards,contention} files. A "contended" acquisition is
// one whose initial TryLock failed and had to block.
type lockCounters struct {
	treeRead           atomic.Uint64
	treeWrite          atomic.Uint64
	treeReadContended  atomic.Uint64
	treeWriteContended atomic.Uint64
	shardRead          atomic.Uint64
	shardWrite         atomic.Uint64
	shardContended     atomic.Uint64
}

// lockTree acquires the tree lock in write mode (structural operations).
func (fs *FS) lockTree() {
	if !fs.tree.TryLock() {
		fs.lockCtr.treeWriteContended.Add(1)
		fs.tree.Lock()
	}
	fs.lockCtr.treeWrite.Add(1)
}

func (fs *FS) unlockTree() { fs.tree.Unlock() }

// rlockTree acquires the tree lock in read mode (all non-structural
// operations).
func (fs *FS) rlockTree() {
	if !fs.tree.TryRLock() {
		fs.lockCtr.treeReadContended.Add(1)
		fs.tree.RLock()
	}
	fs.lockCtr.treeRead.Add(1)
}

func (fs *FS) runlockTree() { fs.tree.RUnlock() }

// shardOf returns the inode-state stripe for n.
func (fs *FS) shardOf(n *inode) *shardLock { return &fs.shards[n.ino&(LockShards-1)] }

// lockNode write-locks n's inode-state stripe. Caller must hold the tree
// lock in some mode and must not already hold any stripe.
func (fs *FS) lockNode(n *inode) *shardLock {
	s := fs.shardOf(n)
	if !s.mu.TryLock() {
		fs.lockCtr.shardContended.Add(1)
		s.mu.Lock()
	}
	fs.lockCtr.shardWrite.Add(1)
	s.acq.Add(1)
	return s
}

// rlockNode read-locks n's inode-state stripe under the same rules.
func (fs *FS) rlockNode(n *inode) *shardLock {
	s := fs.shardOf(n)
	if !s.mu.TryRLock() {
		fs.lockCtr.shardContended.Add(1)
		s.mu.RLock()
	}
	fs.lockCtr.shardRead.Add(1)
	s.acq.Add(1)
	return s
}

// LockStats is a point-in-time snapshot of lock telemetry, the data
// behind /.proc/vfs/lock_shards and /.proc/vfs/contention.
type LockStats struct {
	Shards             int
	TreeRead           uint64 // tree read-mode acquisitions
	TreeWrite          uint64 // tree write-mode acquisitions
	TreeReadContended  uint64
	TreeWriteContended uint64
	ShardRead          uint64 // stripe read-mode acquisitions
	ShardWrite         uint64 // stripe write-mode acquisitions
	ShardContended     uint64
	PerShard           [LockShards]uint64 // total acquisitions per stripe
}

// Contended returns the total number of blocking acquisitions.
func (s LockStats) Contended() uint64 {
	return s.TreeReadContended + s.TreeWriteContended + s.ShardContended
}

// LockStats snapshots the lock telemetry counters.
func (fs *FS) LockStats() LockStats {
	s := LockStats{
		Shards:             LockShards,
		TreeRead:           fs.lockCtr.treeRead.Load(),
		TreeWrite:          fs.lockCtr.treeWrite.Load(),
		TreeReadContended:  fs.lockCtr.treeReadContended.Load(),
		TreeWriteContended: fs.lockCtr.treeWriteContended.Load(),
		ShardRead:          fs.lockCtr.shardRead.Load(),
		ShardWrite:         fs.lockCtr.shardWrite.Load(),
		ShardContended:     fs.lockCtr.shardContended.Load(),
	}
	for i := range fs.shards {
		s.PerShard[i] = fs.shards[i].acq.Load()
	}
	return s
}
