package vfs

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestQuickCleanProperties checks the algebra of path normalization.
func TestQuickCleanProperties(t *testing.T) {
	gen := func(r *rand.Rand) string {
		parts := []string{"", ".", "..", "a", "b", "c", "dir", "file.txt"}
		n := r.Intn(8)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte('/')
			sb.WriteString(parts[r.Intn(len(parts))])
		}
		return sb.String()
	}
	cfg := &quick.Config{MaxCount: 2000}
	// Clean is idempotent.
	if err := quick.Check(func(seed int64) bool {
		p := gen(rand.New(rand.NewSource(seed)))
		return Clean(Clean(p)) == Clean(p)
	}, cfg); err != nil {
		t.Error(err)
	}
	// Clean output is absolute and contains no "." or ".." components.
	if err := quick.Check(func(seed int64) bool {
		c := Clean(gen(rand.New(rand.NewSource(seed))))
		if !strings.HasPrefix(c, "/") {
			return false
		}
		for _, part := range strings.Split(c, "/") {
			if part == "." || part == ".." {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
	// Join(Dir(p), Base(p)) == p for cleaned non-root paths.
	if err := quick.Check(func(seed int64) bool {
		p := Clean(gen(rand.New(rand.NewSource(seed))))
		if p == "/" {
			return true
		}
		return Join(Dir(p), Base(p)) == p
	}, cfg); err != nil {
		t.Error(err)
	}
}

// treeModel is the reference model: a flat map of cleaned paths.
type treeModel struct {
	dirs  map[string]bool
	files map[string]string
}

func newTreeModel() *treeModel {
	return &treeModel{dirs: map[string]bool{"/": true}, files: map[string]string{}}
}

func (m *treeModel) parentExists(p string) bool { return m.dirs[Dir(p)] }

func (m *treeModel) exists(p string) bool {
	_, f := m.files[p]
	return m.dirs[p] || f
}

func (m *treeModel) hasChildren(p string) bool {
	prefix := p + "/"
	for d := range m.dirs {
		if strings.HasPrefix(d, prefix) {
			return true
		}
	}
	for f := range m.files {
		if strings.HasPrefix(f, prefix) {
			return true
		}
	}
	return false
}

// TestQuickTreeModel runs random operation sequences against both the
// VFS and a trivial model and checks they agree — the core correctness
// property of the substrate everything else builds on.
func TestQuickTreeModel(t *testing.T) {
	const ops = 3000
	r := rand.New(rand.NewSource(42))
	fs := New()
	p := fs.RootProc()
	model := newTreeModel()

	paths := func() []string {
		// A small universe of paths so operations collide often.
		names := []string{"a", "b", "c"}
		var out []string
		for _, x := range names {
			out = append(out, "/"+x)
			for _, y := range names {
				out = append(out, "/"+x+"/"+y)
				for _, z := range names {
					out = append(out, "/"+x+"/"+y+"/"+z)
				}
			}
		}
		return out
	}()
	pick := func() string { return paths[r.Intn(len(paths))] }

	for i := 0; i < ops; i++ {
		switch r.Intn(6) {
		case 0: // mkdir
			path := pick()
			err := p.Mkdir(path, 0o755)
			wantOK := model.parentExists(path) && !model.exists(path)
			if (err == nil) != wantOK {
				t.Fatalf("op %d mkdir %s: err=%v wantOK=%v", i, path, err, wantOK)
			}
			if err == nil {
				model.dirs[path] = true
			}
		case 1: // write file
			path := pick()
			content := fmt.Sprintf("v%d", i)
			err := p.WriteString(path, content)
			wantOK := model.parentExists(path) && !model.dirs[path]
			if (err == nil) != wantOK {
				t.Fatalf("op %d write %s: err=%v wantOK=%v", i, path, err, wantOK)
			}
			if err == nil {
				model.files[path] = content
			}
		case 2: // read file
			path := pick()
			got, err := p.ReadString(path)
			want, isFile := model.files[path]
			if isFile {
				if err != nil || got != want {
					t.Fatalf("op %d read %s: got %q,%v want %q", i, path, got, err, want)
				}
			} else if err == nil && !model.dirs[path] {
				t.Fatalf("op %d read %s: unexpectedly succeeded", i, path)
			}
		case 3: // remove
			path := pick()
			err := p.Remove(path)
			var wantOK bool
			switch {
			case model.files[path] != "":
				wantOK = true
			case model.dirs[path]:
				wantOK = !model.hasChildren(path)
			default:
				wantOK = false
			}
			if (err == nil) != wantOK {
				t.Fatalf("op %d remove %s: err=%v wantOK=%v (children=%v)",
					i, path, err, wantOK, model.hasChildren(path))
			}
			if err == nil {
				delete(model.dirs, path)
				delete(model.files, path)
			}
		case 4: // stat agreement
			path := pick()
			st, err := p.Stat(path)
			switch {
			case model.dirs[path]:
				if err != nil || !st.IsDir() {
					t.Fatalf("op %d stat dir %s: %+v %v", i, path, st, err)
				}
			case model.files[path] != "":
				if err != nil || st.IsDir() {
					t.Fatalf("op %d stat file %s: %+v %v", i, path, st, err)
				}
			default:
				// ENOENT normally; ENOTDIR when an ancestor component is
				// a regular file, matching POSIX.
				if !errors.Is(err, ErrNotExist) && !errors.Is(err, ErrNotDir) {
					t.Fatalf("op %d stat missing %s: %v", i, path, err)
				}
			}
		case 5: // readdir agreement
			path := pick()
			entries, err := p.ReadDir(path)
			if !model.dirs[path] {
				if err == nil {
					t.Fatalf("op %d readdir non-dir %s succeeded", i, path)
				}
				continue
			}
			if err != nil {
				t.Fatalf("op %d readdir %s: %v", i, path, err)
			}
			want := map[string]bool{}
			prefix := path + "/"
			if path == "/" {
				prefix = "/"
			}
			for d := range model.dirs {
				if Dir(d) == path && d != "/" {
					want[strings.TrimPrefix(d, prefix)] = true
				}
			}
			for f := range model.files {
				if Dir(f) == path {
					want[strings.TrimPrefix(f, prefix)] = true
				}
			}
			if len(entries) != len(want) {
				t.Fatalf("op %d readdir %s: got %d entries want %d", i, path, len(entries), len(want))
			}
			for _, e := range entries {
				if !want[e.Name] {
					t.Fatalf("op %d readdir %s: unexpected entry %s", i, path, e.Name)
				}
			}
		}
	}
}

// TestQuickWalkVisitsEverything checks that Walk visits exactly the
// model's set of nodes after random construction.
func TestQuickWalkVisitsEverything(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	fs := New()
	p := fs.RootProc()
	created := map[string]bool{"/": true}
	for i := 0; i < 300; i++ {
		depth := 1 + r.Intn(4)
		path := ""
		for d := 0; d < depth; d++ {
			path += fmt.Sprintf("/n%d", r.Intn(5))
		}
		if r.Intn(2) == 0 {
			if err := p.MkdirAll(path, 0o755); err == nil {
				cur := ""
				for _, part := range strings.Split(strings.Trim(path, "/"), "/") {
					cur += "/" + part
					created[cur] = true
				}
			}
		} else {
			if created[Dir(path)] && !created[path] {
				if err := p.WriteString(path, "x"); err == nil {
					created[path] = true
				}
			}
		}
	}
	visited := map[string]bool{}
	if err := p.Walk("/", func(path string, st Stat) error {
		visited[path] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for c := range created {
		if !visited[c] {
			t.Errorf("walk missed %s", c)
		}
	}
	for v := range visited {
		if !created[v] {
			t.Errorf("walk invented %s", v)
		}
	}
}

// TestQuickNlinkInvariant checks that a directory's nlink always equals
// 2 + number of subdirectories, across random mkdir/remove sequences.
func TestQuickNlinkInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	fs := New()
	p := fs.RootProc()
	if err := p.Mkdir("/root", 0o755); err != nil {
		t.Fatal(err)
	}
	children := map[string]bool{}
	for i := 0; i < 500; i++ {
		name := fmt.Sprintf("/root/c%d", r.Intn(20))
		if r.Intn(2) == 0 {
			if err := p.Mkdir(name, 0o755); err == nil {
				children[name] = true
			}
		} else {
			if err := p.Remove(name); err == nil {
				delete(children, name)
			}
		}
		st, err := p.Stat("/root")
		if err != nil {
			t.Fatal(err)
		}
		if st.Nlink != 2+len(children) {
			t.Fatalf("op %d: nlink = %d, want %d", i, st.Nlink, 2+len(children))
		}
	}
}

// TestQuickRenamePreservesContent moves files around randomly and checks
// content is never lost or duplicated.
func TestQuickRenamePreservesContent(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	fs := New()
	p := fs.RootProc()
	for _, d := range []string{"/a", "/b"} {
		if err := p.Mkdir(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	where := map[string]string{} // content -> current path
	for i := 0; i < 20; i++ {
		content := fmt.Sprintf("content-%d", i)
		path := fmt.Sprintf("/a/f%d", i)
		if err := p.WriteString(path, content); err != nil {
			t.Fatal(err)
		}
		where[content] = path
	}
	dirs := []string{"/a", "/b"}
	for i := 0; i < 500; i++ {
		// Pick a random content and move its file somewhere random.
		var contents []string
		for c := range where {
			contents = append(contents, c)
		}
		c := contents[r.Intn(len(contents))]
		src := where[c]
		dst := fmt.Sprintf("%s/m%d", dirs[r.Intn(2)], r.Intn(40))
		err := p.Rename(src, dst)
		if err != nil {
			// Destination occupied by another tracked file is the only
			// acceptable failure... rename onto a file actually replaces
			// it, so any error here is a bug unless src == dst conflict.
			t.Fatalf("op %d rename %s -> %s: %v", i, src, dst, err)
		}
		// If dst held other content, that content was replaced: drop it.
		for oc, op := range where {
			if op == dst && oc != c {
				delete(where, oc)
			}
		}
		where[c] = dst
		got, err := p.ReadString(dst)
		if err != nil || got != c {
			t.Fatalf("op %d after rename: %q %v want %q", i, got, err, c)
		}
	}
}
