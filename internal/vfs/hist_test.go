package vfs

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{1023, 9}, {1024, 10}, {1 << 39, 39}, {1 << 45, 39}, {^uint64(0), 39},
	}
	for _, c := range cases {
		if got := histBucketOf(c.ns); got != c.want {
			t.Errorf("histBucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{1, 100, 1000, 10000, 100000} {
		h.Observe(d)
	}
	h.Observe(-5 * time.Second) // clamped to zero, must not corrupt sum
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Sum != 111101 {
		t.Fatalf("sum = %d, want 111101", s.Sum)
	}
	if s.Max != 100000 {
		t.Fatalf("max = %v, want 100µs", s.Max)
	}
	if avg := s.Avg(); avg != 111101/6 {
		t.Fatalf("avg = %v", avg)
	}
	// p50 of {0,1,100,1000,10000,100000}: rank 3 lands in 100's bucket.
	if q := s.Quantile(0.5); q < 100 || q > 256 {
		t.Fatalf("p50 = %v, want within (100, 256]", q)
	}
	if q := s.Quantile(1.0); q < 100000 {
		t.Fatalf("p100 = %v, want >= 100µs", q)
	}
}

func TestHistogramSub(t *testing.T) {
	var h Histogram
	h.Observe(10)
	before := h.Snapshot()
	h.Observe(20)
	h.Observe(30)
	delta := h.Snapshot().Sub(before)
	if delta.Count != 2 || delta.Sum != 50 {
		t.Fatalf("delta = %+v, want count 2 sum 50", delta)
	}
}

func TestFSLatencyInstrumentation(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	if err := p.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteString("/d/f", "hello"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReadFile("/d/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Stat("/d/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReadDir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := p.Rename("/d/f", "/d/g"); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove("/d/g"); err != nil {
		t.Fatal(err)
	}
	lat := fs.Latency()
	for _, op := range []LatencyOp{LatOpen, LatRead, LatWrite, LatMkdir, LatRemove, LatRename, LatStat, LatReadDir} {
		if lat.Ops[op].Count == 0 {
			t.Errorf("no %v latency recorded", op)
		}
	}
	if tot := lat.Total(); tot.Count == 0 || tot.Sum < 0 {
		t.Fatalf("bad total %+v", tot)
	}
	r := lat.Render()
	for _, col := range []string{"op", "count", "avg", "p50", "p99", "max", "open", "readdir"} {
		if !strings.Contains(r, col) {
			t.Errorf("render missing %q:\n%s", col, r)
		}
	}
}

func TestLatencySnapshotDeltaAcrossOps(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	_ = p.WriteString("/a", "1")
	before := fs.Latency()
	_ = p.WriteString("/b", "2")
	_, _ = p.ReadFile("/b")
	delta := fs.Latency().Sub(before)
	if delta.Ops[LatOpen].Count != 2 {
		t.Fatalf("open delta = %d, want 2", delta.Ops[LatOpen].Count)
	}
	if delta.Ops[LatRead].Count == 0 {
		t.Fatal("read delta empty")
	}
}
