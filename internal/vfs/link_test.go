package vfs

import (
	"errors"
	"testing"
)

// TestTxLinkSharesInode checks the hard-link contract: both names resolve
// to one inode, nlink counts the names, and removing one name leaves the
// data reachable through the other.
func TestTxLinkSharesInode(t *testing.T) {
	fs := New()
	err := fs.WithTx(func(tx *Tx) error {
		if err := tx.MkdirAll("/a/b", 0o755, 0, 0); err != nil {
			return err
		}
		if err := tx.WriteFile("/a/f", []byte("payload"), 0o444, 0, 0); err != nil {
			return err
		}
		return tx.Link("/a/f", "/a/b/g")
	})
	if err != nil {
		t.Fatal(err)
	}
	p := fs.RootProc()
	st1, err := p.Stat("/a/f")
	if err != nil {
		t.Fatal(err)
	}
	st2, err := p.Stat("/a/b/g")
	if err != nil {
		t.Fatal(err)
	}
	if st1.Ino != st2.Ino {
		t.Fatalf("link created a new inode: %d vs %d", st1.Ino, st2.Ino)
	}
	if st1.Nlink != 2 || st2.Nlink != 2 {
		t.Fatalf("nlink = %d/%d, want 2/2", st1.Nlink, st2.Nlink)
	}
	if err := p.Remove("/a/f"); err != nil {
		t.Fatal(err)
	}
	data, err := p.ReadFile("/a/b/g")
	if err != nil || string(data) != "payload" {
		t.Fatalf("surviving link unreadable: %q, %v", data, err)
	}
	st2, err = p.Stat("/a/b/g")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Nlink != 1 {
		t.Fatalf("nlink after unlink = %d, want 1", st2.Nlink)
	}
}

// TestTxLinkErrors checks link(2)-style failure modes.
func TestTxLinkErrors(t *testing.T) {
	fs := New()
	err := fs.WithTx(func(tx *Tx) error {
		if err := tx.Mkdir("/d", 0o755, 0, 0); err != nil {
			return err
		}
		if err := tx.WriteFile("/f", []byte("x"), 0o644, 0, 0); err != nil {
			return err
		}
		if err := tx.Link("/d", "/d2"); !errors.Is(err, ErrPerm) {
			t.Errorf("linking a directory: got %v, want ErrPerm", err)
		}
		if err := tx.Link("/missing", "/g"); !errors.Is(err, ErrNotExist) {
			t.Errorf("linking a missing source: got %v, want ErrNotExist", err)
		}
		if err := tx.Link("/f", "/d"); !errors.Is(err, ErrExist) {
			t.Errorf("linking onto an existing name: got %v, want ErrExist", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTxLinkDirFanOut checks the batched fan-out primitive: every regular
// file of the source directory is shared by inode into the new directory,
// and tearing down one copy decrements nlink without touching the others.
func TestTxLinkDirFanOut(t *testing.T) {
	fs := New()
	err := fs.WithTx(func(tx *Tx) error {
		if err := tx.MkdirAll("/spool/m", 0o755, 0, 0); err != nil {
			return err
		}
		for _, f := range []string{"data", "switch", "in_port"} {
			if err := tx.WriteFile("/spool/m/"+f, []byte(f), 0o444, 0, 0); err != nil {
				return err
			}
		}
		// A sub-directory and a symlink must not be linked.
		if err := tx.Mkdir("/spool/m/sub", 0o755, 0, 0); err != nil {
			return err
		}
		if err := tx.Symlink("data", "/spool/m/alias", 0, 0); err != nil {
			return err
		}
		for _, dst := range []string{"/buf1/m", "/buf2/m"} {
			if err := tx.Mkdir(Dir(dst), 0o755, 0, 0); err != nil {
				return err
			}
			if err := tx.LinkDir("/spool/m", dst, 0o755, 0, 0); err != nil {
				return err
			}
		}
		// Dropping the spool entry keeps the linked copies alive.
		return tx.Remove("/spool/m")
	})
	if err != nil {
		t.Fatal(err)
	}
	p := fs.RootProc()
	st1, err := p.Stat("/buf1/m/data")
	if err != nil {
		t.Fatal(err)
	}
	st2, err := p.Stat("/buf2/m/data")
	if err != nil {
		t.Fatal(err)
	}
	if st1.Ino != st2.Ino {
		t.Fatalf("fan-out copied instead of linked: ino %d vs %d", st1.Ino, st2.Ino)
	}
	if st1.Nlink != 2 {
		t.Fatalf("nlink = %d, want 2 (spool name removed)", st1.Nlink)
	}
	for _, skipped := range []string{"/buf1/m/sub", "/buf1/m/alias"} {
		if p.Exists(skipped) {
			t.Errorf("%s: non-regular child was linked", skipped)
		}
	}
	if err := p.RemoveAll("/buf1/m"); err != nil {
		t.Fatal(err)
	}
	data, err := p.ReadFile("/buf2/m/data")
	if err != nil || string(data) != "data" {
		t.Fatalf("surviving copy unreadable: %q, %v", data, err)
	}
	st2, err = p.Stat("/buf2/m/data")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Nlink != 1 {
		t.Fatalf("nlink after buf1 teardown = %d, want 1", st2.Nlink)
	}
	if err := fs.WithTx(func(tx *Tx) error {
		if err := tx.LinkDir("/buf2/m", "/buf2/m", 0o755, 0, 0); !errors.Is(err, ErrExist) {
			t.Errorf("LinkDir onto existing path: got %v, want ErrExist", err)
		}
		if err := tx.LinkDir("/buf2/m/data", "/x", 0o755, 0, 0); !errors.Is(err, ErrNotDir) {
			t.Errorf("LinkDir from a file: got %v, want ErrNotDir", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
