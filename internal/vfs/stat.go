package vfs

import (
	"io/fs"
	"time"
)

// NodeKind distinguishes the three object kinds the yanc schema uses.
type NodeKind uint8

const (
	KindFile NodeKind = iota
	KindDir
	KindSymlink
)

func (k NodeKind) String() string {
	switch k {
	case KindFile:
		return "file"
	case KindDir:
		return "dir"
	case KindSymlink:
		return "symlink"
	default:
		return "unknown"
	}
}

// FileMode holds the permission bits (rwxrwxrwx). Kind is carried
// separately on the inode; the exported Stat merges the two into an
// io/fs.FileMode for interoperability with the standard library.
type FileMode uint16

const (
	ModeSetUID FileMode = 0o4000
	ModeSetGID FileMode = 0o2000
	ModeSticky FileMode = 0o1000
)

// Perm returns just the rwx permission bits.
func (m FileMode) Perm() FileMode { return m & 0o777 }

// Stat describes an inode, analogous to struct stat.
type Stat struct {
	Ino     uint64
	Kind    NodeKind
	Mode    FileMode
	UID     int
	GID     int
	Nlink   int
	Size    int64
	Atime   time.Time
	Mtime   time.Time
	Ctime   time.Time
	Name    string // base name at the path used for the lookup
	Target  string // symlink target, if Kind == KindSymlink
	Version uint64 // bumped on every data or metadata change
}

// IsDir reports whether the stat describes a directory.
func (s Stat) IsDir() bool { return s.Kind == KindDir }

// FSMode converts to an io/fs.FileMode.
func (s Stat) FSMode() fs.FileMode {
	m := fs.FileMode(s.Mode.Perm())
	switch s.Kind {
	case KindDir:
		m |= fs.ModeDir
	case KindSymlink:
		m |= fs.ModeSymlink
	}
	if s.Mode&ModeSetUID != 0 {
		m |= fs.ModeSetuid
	}
	if s.Mode&ModeSetGID != 0 {
		m |= fs.ModeSetgid
	}
	if s.Mode&ModeSticky != 0 {
		m |= fs.ModeSticky
	}
	return m
}

// DirEntry is a single directory listing entry.
type DirEntry struct {
	Name string
	Kind NodeKind
	Ino  uint64
}

// IsDir reports whether the entry is a directory.
func (d DirEntry) IsDir() bool { return d.Kind == KindDir }

// Cred identifies the subject performing file-system operations, the way a
// process's uid/gid/groups do under Linux. UID 0 bypasses permission
// checks, matching the superuser convention the paper's examples rely on
// ("# echo 1 > port_2/config.port_down" runs as root).
type Cred struct {
	UID    int
	GID    int
	Groups []int
}

// Root is the superuser credential.
var Root = Cred{UID: 0, GID: 0}

func (c Cred) inGroup(gid int) bool {
	if c.GID == gid {
		return true
	}
	for _, g := range c.Groups {
		if g == gid {
			return true
		}
	}
	return false
}

// accessWant is the permission being requested against an inode.
type accessWant uint8

const (
	wantRead  accessWant = 4
	wantWrite accessWant = 2
	wantExec  accessWant = 1
)

// allows implements the classic Unix owner/group/other check. It reads
// only atomic permission state, so it is safe during path resolution with
// no stripe lock held.
func allows(st *inode, c Cred, want accessWant) bool {
	mode := st.loadMode()
	if c.UID == 0 {
		// Root: exec still requires some x bit on files, like Linux.
		if want == wantExec && st.kind == KindFile && mode&0o111 == 0 {
			return false
		}
		return true
	}
	var shift uint
	switch {
	case c.UID == st.loadUID():
		shift = 6
	case c.inGroup(st.loadGID()):
		shift = 3
	default:
		shift = 0
	}
	bits := uint8(mode>>shift) & 7
	return bits&uint8(want) == uint8(want)
}
