package vfs

import (
	"sync/atomic"
	"testing"
	"time"
)

// Audit result for the locking rewrite: every DirSemantics hook in the
// repo (internal/yancfs) touches the tree only through its Tx, which is
// safe under rule 3 of the lock-ordering discipline. The one re-entrancy
// hazard found was in the VFS itself — Tx.ReadFile used to invoke
// Synthetic.Read while holding the tree write lock, so any provider that
// performs Proc file I/O (the standard procfs-renderer shape) would
// re-acquire the tree lock and self-deadlock. Tx.ReadFile now returns the
// stored bytes and never calls the provider; these are the regression
// tests pinning that behavior.

// TestTxReadFileSyntheticNoProviderReentry creates a synthetic file whose
// Read provider performs Proc I/O, then reads it transactionally. Before
// the fix this deadlocked (provider blocks on rlockTree under lockTree);
// now the provider must not run at all.
func TestTxReadFileSyntheticNoProviderReentry(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	if err := p.WriteString("/source", "provider-output"); err != nil {
		t.Fatal(err)
	}
	var providerCalls atomic.Uint64
	err := fs.WithTx(func(tx *Tx) error {
		return tx.SetSynthetic("/synth", &Synthetic{
			Read: func() ([]byte, error) {
				providerCalls.Add(1)
				return p.ReadFile("/source") // Proc I/O: takes the tree lock
			},
		}, 0o444, 0, 0)
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var txContent []byte
	go func() {
		defer close(done)
		err = fs.WithTx(func(tx *Tx) error {
			b, rerr := tx.ReadFile("/synth")
			txContent = b
			return rerr
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Tx.ReadFile on a Proc-reading synthetic file deadlocked")
	}
	if err != nil {
		t.Fatal(err)
	}
	if providerCalls.Load() != 0 {
		t.Fatalf("Tx.ReadFile invoked Synthetic.Read %d times under the tree lock", providerCalls.Load())
	}
	if len(txContent) != 0 {
		t.Fatalf("Tx.ReadFile returned provider content %q; want stored bytes", txContent)
	}

	// The open path is where provider content materializes — outside all
	// tree locks, so the same provider is safe there.
	got, err := p.ReadString("/synth")
	if err != nil {
		t.Fatal(err)
	}
	if got != "provider-output" {
		t.Fatalf("open-path read = %q, want provider output", got)
	}
	if providerCalls.Load() != 1 {
		t.Fatalf("provider ran %d times via open; want 1", providerCalls.Load())
	}
}

// TestHookTxOnlyContract documents rule 3 by demonstrating the safe
// pattern: an OnMkdir hook that does everything through its Tx, including
// reading a synthetic sibling, while holding the tree write lock.
func TestHookTxOnlyContract(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	if err := p.Mkdir("/sw", 0o755); err != nil {
		t.Fatal(err)
	}
	err := fs.WithTx(func(tx *Tx) error {
		if err := tx.SetSynthetic("/sw/ctl", &Synthetic{
			Read: func() ([]byte, error) { return []byte("live"), nil },
		}, 0o444, 0, 0); err != nil {
			return err
		}
		return tx.SetSemantics("/sw", &DirSemantics{
			OnMkdir: func(tx *Tx, dir, name string) error {
				// Tx-only: reads (raw bytes for the synthetic), stats and
				// writes, all without re-entering an entry point.
				if _, err := tx.ReadFile(Join(dir, "ctl")); err != nil {
					return err
				}
				if _, err := tx.Stat(dir); err != nil {
					return err
				}
				return tx.WriteFile(Join(dir, name, "state"), []byte("new"), 0o644, 0, 0)
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		err = p.Mkdir("/sw/s1", 0o755)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Tx-only hook deadlocked")
	}
	if err != nil {
		t.Fatal(err)
	}
	if s, err := p.ReadString("/sw/s1/state"); err != nil || s != "new" {
		t.Fatalf("hook output = %q, %v", s, err)
	}
}
