package vfs

import (
	"sync/atomic"
	"time"
)

// Lock-free (RCU-style) path resolution.
//
// Every directory inode publishes its children as an immutable snapshot
// (a folded map plus a bounded insert overlay — see kidsSnap) behind an
// atomic pointer (inode.children) paired with a generation counter
// (inode.gen). Writers never mutate a published snapshot: they build a
// replacement, bump the generation, and atomically swap it in — all
// under the tree write lock, which serializes writers against each
// other (see setSnap). Readers walk
// snapshots with no locks at all, validating each hop against the
// generation counter the way Linux's rcu-walk validates dentry seqcounts:
// if a directory's generation moved between loading its snapshot and
// using the result, the hop is retried. After a bounded number of retries
// — or on any construct the lock-free walker does not handle (symlinks,
// "..") — resolution falls back to the read-locked walkFrom slow path.
//
// What a successful lock-free walk guarantees: for every hop, the parent
// directory contained the child at some instant during the walk, and
// adjacent hops overlapped in time (the child's generation is captured
// before the parent's is revalidated). It does NOT serialize against
// WithTx transactions the way locked readers do: a lock-free walk can
// observe the individual structural mutations of an in-flight transaction
// in order, exactly as Linux rcu-walk observes individual rename/unlink
// steps. What it can never observe is a "frankenstein" path mixing a
// stale parent snapshot with a child state the tree only reached after
// the parent entry was gone — the generation protocol rejects those.

// maxRCURetries bounds lock-free retry attempts before a resolution gives
// up and takes the locked slow path. Each retry also charges one hop
// against maxSymlinkHops, so a sustained rename storm surfaces as
// ErrTooManyLinks instead of an unbounded retry loop (see lookupRO).
const maxRCURetries = 4

// rcuLookupHook, when non-nil, runs between a lock-free walker loading a
// directory snapshot and validating the directory's generation. Tests
// install it to force generation conflicts deterministically; it must be
// set before any concurrent fs use and may mutate the tree through the
// normal locked entry points.
var rcuLookupHook func(dir *inode, name string)

// maxKidOverlay bounds the insert overlay chain on one snapshot. Larger
// means cheaper inserts (the O(len) map fold amortizes over more of
// them) but longer lock-free lookup scans. 64 keeps the E15 fan-out
// gate comfortably flat — the fold is the dominant marginal cost of a
// link into a near-full buffer — while an overlay scan stays a few
// hundred nanoseconds of pointer chasing, and only insert-hot
// directories ever carry a deep overlay.
const maxKidOverlay = 64

// kidsSnap is one published children snapshot: a folded immutable map
// plus a bounded persistent overlay of mutations since the last fold.
// Folding every map copy-on-write made hot-path mutations O(dir size) —
// fan-out delivery into a near-full event buffer paid the whole buffer
// per message, and churn deleting from a 10⁵-entry flow directory paid
// the whole directory per unlink — so inserts AND deletes instead cons
// an overlay cell (O(1), a delete is a tombstone cell with c == nil)
// and the map is re-folded only every maxKidOverlay mutations,
// amortizing to O(size/maxKidOverlay) per op. The map and every overlay
// cell are immutable after publish.
//
// Invariant: the overlay may carry multiple cells for one name and
// names that shadow m; the NEWEST cell (nearest the chain head) is
// authoritative. Lookups therefore take the first match scanning from
// the head, and folds must apply cells oldest-first.
//
// folded and listing are per-snapshot memoizations, the only mutable
// words in a published snapshot: they cache derived views (the merged
// map; the sorted listing) that are pure functions of the immutable
// state, so racing fillers compute identical values and a torn
// publish is impossible (atomic pointer). They make repeated
// readdir/DirNames on an unchanged giant directory O(1).
type kidsSnap struct {
	m    map[string]*inode // folded entries; immutable after publish
	over *kidOver          // mutations since the last fold, newest first
	n    int               // entry count of the merged view

	folded  atomic.Pointer[map[string]*inode] // memoized fold() result
	listing atomic.Pointer[[]DirEntry]        // memoized sorted listing
}

// kidOver is one immutable overlay cell (a persistent cons list). A nil
// c is a tombstone: the name was deleted after the last fold.
type kidOver struct {
	name  string
	c     *inode // nil = tombstone
	prev  *kidOver
	depth int // chain length up to and including this cell
}

// snap returns the directory's current published snapshot (nil when the
// directory never had a child).
func (n *inode) snap() *kidsSnap { return n.children.Load() }

// lookup finds one name in the snapshot: overlay first (newest cell
// wins), then the folded map. A tombstone cell is an authoritative
// miss. Nil-safe — a nil snapshot has no entries.
//
// When some earlier reader already folded this snapshot (a ReadDir,
// say), the memoized map answers directly instead of re-walking the
// overlay chain — a bulk push resolving 1k paths through a directory
// with a dozens-deep overlay pays one map probe per hop. lookup never
// folds on its own: folding here would charge O(dir) to the next probe
// after every mutation, which is exactly the cost the overlay exists
// to amortize.
func (s *kidsSnap) lookup(name string) (*inode, bool) {
	if s == nil {
		return nil, false
	}
	if s.over != nil {
		if p := s.folded.Load(); p != nil {
			c, ok := (*p)[name]
			return c, ok
		}
	}
	for o := s.over; o != nil; o = o.prev {
		if o.name == name {
			if o.c == nil {
				return nil, false
			}
			return o.c, true
		}
	}
	c, ok := s.m[name]
	return c, ok
}

// fold materializes the merged view as a map, memoized per snapshot.
// When the overlay is empty the folded map itself is returned —
// zero-copy, and callers rely on that for fan-out aliasing — so the
// result is immutable either way: callers may read and range, never
// mutate. Overlay cells apply oldest-first so that a newer cell
// (re-insert or tombstone) overrides an older one for the same name.
func (s *kidsSnap) fold() map[string]*inode {
	if s == nil {
		return nil
	}
	if s.over == nil {
		return s.m
	}
	if p := s.folded.Load(); p != nil {
		return *p
	}
	m := make(map[string]*inode, s.n) //yancvet:alloc amortized re-fold: one map copy per maxKidOverlay mutations, memoized
	for k, v := range s.m {
		m[k] = v
	}
	cells := make([]*kidOver, 0, s.over.depth) //yancvet:alloc bounded by maxKidOverlay, only on the memoized fold
	for o := s.over; o != nil; o = o.prev {
		cells = append(cells, o)
	}
	for i := len(cells) - 1; i >= 0; i-- {
		o := cells[i]
		if o.c == nil {
			delete(m, o.name)
		} else {
			m[o.name] = o.c
		}
	}
	s.folded.Store(&m)
	return m
}

// kids returns the directory's current children as an immutable map
// (nil-safe: a directory that never had a child has no snapshot).
// Callers may read and range, never mutate. Single-name probes should
// prefer lookupChild, which never pays a fold.
func (n *inode) kids() map[string]*inode { return n.snap().fold() }

// lookupChild finds one name in n's children without folding.
func (n *inode) lookupChild(name string) (*inode, bool) {
	return n.snap().lookup(name)
}

// childCount returns the number of children without folding.
func (n *inode) childCount() int {
	if s := n.snap(); s != nil {
		return s.n
	}
	return 0
}

// setSnap publishes s as n's children snapshot. The caller must hold the
// tree write lock and must never mutate s (or anything it references)
// afterwards. The generation is bumped BEFORE the snapshot is swapped: a
// lock-free reader that observes the new snapshot is then guaranteed to
// observe the new generation too and retry its hop, while a reader that
// captured the old generation and still loads the old snapshot sees a
// valid pre-change state. (The opposite order would let a reader
// validate new contents against the stale generation and assemble a
// path that never existed.)
func (n *inode) setSnap(s *kidsSnap) {
	n.gen.Add(1)
	n.children.Store(s)
}

// setKids publishes m as n's new (fully folded) children snapshot. Tree
// write lock required; m must never be mutated afterwards.
func (n *inode) setKids(m map[string]*inode) {
	n.setSnap(&kidsSnap{m: m, n: len(m)})
}

// bumpGen invalidates in-flight lock-free walkers holding n without
// changing its snapshot: rename and detach use it so a walker that
// resolved n through a now-stale parent entry retries instead of
// continuing below a moved/removed directory. Tree write lock required.
func (n *inode) bumpGen() { n.gen.Add(1) }

// cowInsert adds name→c to n's children. Tree write lock required. The
// fast path conses one overlay cell onto the current snapshot (newest
// wins, so an insert over an existing or tombstoned name needs no
// fold); the map is re-folded only when the overlay is full.
func (n *inode) cowInsert(name string, c *inode) {
	old := n.snap()
	if old == nil {
		n.setSnap(&kidsSnap{m: map[string]*inode{name: c}, n: 1})
		return
	}
	_, existed := old.lookup(name)
	nn := old.n
	if !existed {
		nn++
	}
	depth := 1
	if old.over != nil {
		depth = old.over.depth + 1
	}
	if depth > maxKidOverlay {
		m := old.fold()
		cp := make(map[string]*inode, len(m)+1) //yancvet:alloc amortized: one map copy per maxKidOverlay inserts
		for k, v := range m {
			cp[k] = v
		}
		cp[name] = c
		n.setSnap(&kidsSnap{m: cp, n: len(cp)})
		return
	}
	n.setSnap(&kidsSnap{
		m:    old.m,
		over: &kidOver{name: name, c: c, prev: old.over, depth: depth},
		n:    nn,
	})
}

// cowDelete removes name from n's children. Tree write lock required.
// The fast path conses a tombstone cell (O(1)) — churn deleting from a
// 10⁵-entry flow directory must not pay the whole directory per unlink
// — and the map is re-folded only when the overlay is full, exactly
// like cowInsert.
func (n *inode) cowDelete(name string) {
	old := n.snap()
	if _, ok := old.lookup(name); !ok {
		return
	}
	depth := 1
	if old.over != nil {
		depth = old.over.depth + 1
	}
	if depth > maxKidOverlay {
		m := old.fold()
		cp := make(map[string]*inode, len(m)-1)
		for k, v := range m {
			if k != name {
				cp[k] = v
			}
		}
		n.setSnap(&kidsSnap{m: cp, n: len(cp)})
		return
	}
	n.setSnap(&kidsSnap{
		m:    old.m,
		over: &kidOver{name: name, prev: old.over, depth: depth},
		n:    old.n - 1,
	})
}

// loadSynth returns the node's synthetic provider, lock-free.
func (n *inode) loadSynth() *Synthetic { return n.synth.Load() }

// touchMS stamps a content change on a published inode under its stripe.
// With lock-free readers in play, the tree write lock alone no longer
// excludes readers of inode-local state, so every mutation of a published
// inode's times/version must take the stripe — even from under the tree
// write lock. Acquire-and-release keeps the one-stripe-at-a-time rule.
func (fs *FS) touchMS(n *inode, now time.Time) {
	s := fs.lockNode(n)
	n.touchM(now)
	s.mu.Unlock()
}

// touchCS is touchMS for metadata-only changes (ctime+version).
func (fs *FS) touchCS(n *inode, now time.Time) {
	s := fs.lockNode(n)
	n.touchC(now)
	s.mu.Unlock()
}

// rcuStatus classifies the outcome of one lock-free walk attempt.
type rcuStatus uint8

const (
	rcuOK    rcuStatus = iota // walk completed; node may be nil (final component absent)
	rcuFail                   // walk completed with a definitive error
	rcuRetry                  // a generation conflict invalidated a hop
	rcuBail                   // construct the lock-free walker does not handle
)

// walkRCU is the lock-free walker: it resolves path from opt.root (or the
// fs root) touching only immutable snapshots, generation counters, and
// permission atomics. On rcuOK it returns the resolved node, or nil if
// the final component does not exist in its (validated) parent. It bails
// to the locked path on ".." (needs parent back-links) and on any symlink
// it would have to follow (hop accounting and dangling-link create
// semantics live in walkFrom).
//
//yancvet:hotalloc
func (fs *FS) walkRCU(cred Cred, path string, opt resolveOpts) (*inode, rcuStatus, error) {
	root := opt.root
	if root == nil {
		root = fs.root
	}
	cur := root
	curGen := cur.gen.Load()
	p, off, ok := nextComp(path, 0)
	if !ok {
		return cur, rcuOK, nil
	}
	for {
		if !cur.isDir() {
			return nil, rcuFail, ErrNotDir
		}
		if !allows(cur, cred, wantExec) {
			return nil, rcuFail, ErrAccess
		}
		np, noff, more := nextComp(path, off)
		last := !more
		if p == ".." {
			return nil, rcuBail, nil
		}
		fs.stats.lookups.Add(1)
		s := cur.snap()
		if h := rcuLookupHook; h != nil {
			h(cur, p)
		}
		child, okc := s.lookup(p)
		if !okc {
			// A miss is only believable if cur's snapshot is still current:
			// the entry may live in a newer snapshot.
			if cur.gen.Load() != curGen {
				return nil, rcuRetry, nil
			}
			if last {
				return nil, rcuOK, nil
			}
			return nil, rcuFail, ErrNotExist
		}
		// Capture the child's generation before revalidating cur: this
		// hand-over-hand order proves the parent entry and the child state
		// we proceed with coexisted.
		childGen := child.gen.Load()
		if cur.gen.Load() != curGen {
			return nil, rcuRetry, nil
		}
		if child.kind == KindSymlink && (!last || opt.followLast) {
			return nil, rcuBail, nil
		}
		if last {
			return child, rcuOK, nil
		}
		cur, curGen = child, childGen
		p, off = np, noff
	}
}

// lookupRO resolves path for read-only entry points (Stat, ReadDir,
// xattrs, the open fast path): lock-free first, with a bounded retry
// budget, then the read-locked walkFrom. It returns the resolved node —
// nil with a nil error means the final component does not exist but its
// parent path does. Symlink-hop accounting spans both phases: every
// lock-free retry charges one hop, and the accumulated count carries into
// the fallback walk, so a concurrent-rename storm that keeps invalidating
// hops surfaces as ErrTooManyLinks exactly like a symlink loop would.
//
//yancvet:hotalloc
func (fs *FS) lookupRO(cred Cred, path string, opt resolveOpts) (*inode, error) {
	hops := 0
	attempt := 0
walk:
	for {
		n, st, err := fs.walkRCU(cred, path, opt)
		switch st {
		case rcuOK:
			fs.lockCtr.resolveLockfree.Add(1)
			return n, nil
		case rcuFail:
			fs.lockCtr.resolveLockfree.Add(1)
			return nil, err
		case rcuRetry:
			hops++
			if hops > maxSymlinkHops {
				fs.lockCtr.resolveFallback.Add(1)
				return nil, ErrTooManyLinks
			}
			if attempt < maxRCURetries {
				attempt++
				continue walk
			}
			break walk
		default: // rcuBail
			break walk
		}
	}
	fs.lockCtr.resolveFallback.Add(1)
	root := opt.root
	if root == nil {
		root = fs.root
	}
	fs.rlockTree()
	_, _, n, err := fs.walkFrom(root, path, cred, opt, root, &hops)
	fs.runlockTree()
	return n, err
}
