package vfs

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// fuzzFS builds the resolution fixture: a few nested directories, a
// dangling link, a self-loop, a mutual two-link loop, and a long (but
// legal) symlink chain, so fuzzed paths can reach every branch of the
// resolver — "..", absolute and relative targets, loops, and the ELOOP
// bound.
func fuzzFS(tb testing.TB) *FS {
	tb.Helper()
	fs := New()
	p := fs.RootProc()
	must := func(err error) {
		if err != nil {
			tb.Fatal(err)
		}
	}
	must(p.MkdirAll("/a/b/c", 0o755))
	must(p.WriteString("/a/b/c/file", "data"))
	must(p.Symlink("/a/b", "/a/abs"))
	must(p.Symlink("b/c", "/a/rel"))
	must(p.Symlink("/nowhere", "/a/dangling"))
	must(p.Symlink("/self", "/self"))
	must(p.Symlink("/loop2", "/loop1"))
	must(p.Symlink("/loop1", "/loop2"))
	must(p.Symlink("../a", "/a/up"))
	// A chain of maxSymlinkHops-1 links: legal, one short of ELOOP.
	must(p.Symlink("/a/b/c", "/chain0"))
	for i := 1; i < maxSymlinkHops-1; i++ {
		must(p.Symlink("/chain"+itoa(i-1), "/chain"+itoa(i)))
	}
	return fs
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// resolveErrOK is the closed set of errors path resolution may return;
// anything else (or a panic) is a bug.
func resolveErrOK(err error) bool {
	if err == nil {
		return true
	}
	return errIsAny(err, ErrNotExist, ErrNotDir, ErrIsDir, ErrAccess,
		ErrTooManyLinks, ErrInvalid, ErrExist)
}

// FuzzPathResolve feeds arbitrary path strings through every resolving
// entry point. Invariants: never panic, never hang (the hop bound is the
// only loop breaker for /loop1 <-> /loop2), and errors stay in the closed
// resolveErrOK set.
func FuzzPathResolve(f *testing.F) {
	for _, seed := range []string{
		"/",
		"",
		"/a/b/c/file",
		"/a/./b/../b/c//file",
		"../../..",
		"/a/abs/c/file",
		"/a/rel/file",
		"/a/dangling",
		"/self",
		"/loop1",
		"/loop1/deeper/path",
		"/chain" + itoa(maxSymlinkHops-2) + "/file",
		"/a/up/up/up/b",
		strings.Repeat("/a/b/..", 50) + "/b/c",
		strings.Repeat("../", 60) + "a/b",
		"/a/b/c/file/not-a-dir",
		"//a///b/./c/",
	} {
		f.Add(seed)
	}
	fs := fuzzFS(f)
	p := fs.RootProc()
	user := fs.Proc(Cred{UID: 7, GID: 7})
	f.Fuzz(func(t *testing.T, path string) {
		if _, err := p.Stat(path); !resolveErrOK(err) {
			t.Fatalf("Stat(%q): unexpected error class %v", path, err)
		}
		// Structural mutation between resolver calls: moving /a/b away and
		// back publishes fresh snapshots and bumps generations mid-corpus,
		// so replays exercise the resolver against a tree whose COW maps
		// just changed — errors must stay in the closed set either way.
		if err := p.Rename("/a/b", "/a/bmv"); err != nil {
			t.Fatalf("churn rename: %v", err)
		}
		if _, err := p.Lstat(path); !resolveErrOK(err) {
			t.Fatalf("Lstat(%q): unexpected error class %v", path, err)
		}
		if _, err := p.ReadDir(path); !resolveErrOK(err) {
			t.Fatalf("ReadDir(%q): unexpected error class %v", path, err)
		}
		if err := p.Rename("/a/bmv", "/a/b"); err != nil {
			t.Fatalf("churn rename back: %v", err)
		}
		if _, err := p.ReadFile(path); !resolveErrOK(err) {
			t.Fatalf("ReadFile(%q): unexpected error class %v", path, err)
		}
		if _, err := user.Stat(path); !resolveErrOK(err) {
			t.Fatalf("user Stat(%q): unexpected error class %v", path, err)
		}
		// Clean must be idempotent and always produce an absolute path.
		c := Clean(path)
		if !strings.HasPrefix(c, "/") || Clean(c) != c {
			t.Fatalf("Clean(%q) = %q, not an idempotent absolute path", path, c)
		}
	})
}

// TestResolveLoopHitsELOOPBound pins the exact bound: a chain of
// maxSymlinkHops-1 links resolves, the true loops fail with
// ErrTooManyLinks, and neither hangs. The retry subtest pins the
// generation-conflict accounting: every lock-free retry charges one hop
// against the same budget (lookupRO), so a resolution that sits exactly
// at the bound is pushed over it by a concurrent-rename storm — the
// livelock surfaces as ELOOP instead of spinning.
func TestResolveLoopHitsELOOPBound(t *testing.T) {
	fs := fuzzFS(t)
	p := fs.RootProc()
	if _, err := p.Stat("/chain" + itoa(maxSymlinkHops-2)); err != nil {
		t.Fatalf("legal %d-hop chain rejected: %v", maxSymlinkHops-1, err)
	}
	for _, path := range []string{"/self", "/loop1", "/loop2", "/loop1/x/y"} {
		_, err := p.Stat(path)
		if !errors.Is(err, ErrTooManyLinks) {
			t.Fatalf("Stat(%q) = %v, want ErrTooManyLinks", path, err)
		}
	}

	// /r/link resolves through the full chain: 1 + (maxSymlinkHops-1)
	// hops — exactly at the bound, legal when uncontended.
	if err := p.Mkdir("/r", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := p.Symlink("/chain"+itoa(maxSymlinkHops-2), "/r/link"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Stat("/r/link"); err != nil {
		t.Fatalf("legal %d-hop chain via /r/link rejected: %v", maxSymlinkHops, err)
	}

	// Simulate a rename storm on /r: the hook bumps /r's generation on
	// every lock-free lookup of "link", so each walkRCU attempt ends in
	// rcuRetry. lookupRO charges maxRCURetries+1 retry hops before falling
	// back, and the fallback walk inherits them: at-the-bound + retries
	// must yield ErrTooManyLinks, not success and not a spin.
	conflicts := 0
	rcuLookupHook = func(dir *inode, name string) {
		if name == "link" {
			conflicts++
			dir.gen.Add(1) // what a concurrent rename of /r/link's home does
		}
	}
	defer func() { rcuLookupHook = nil }()
	if _, err := p.Stat("/r/link"); !errors.Is(err, ErrTooManyLinks) {
		t.Fatalf("Stat(/r/link) under retry storm = %v, want ErrTooManyLinks", err)
	}
	if conflicts != maxRCURetries+1 {
		t.Fatalf("hook fired %d times, want %d (maxRCURetries+1)", conflicts, maxRCURetries+1)
	}
}

// TestFuzzPathResolveRandom complements the fuzz harness in normal `go
// test` runs (which only replay the corpus): 20k random path strings in
// the openflow fuzz-test style, biased toward resolver-relevant tokens.
func TestFuzzPathResolveRandom(t *testing.T) {
	fs := fuzzFS(t)
	p := fs.RootProc()
	r := rand.New(rand.NewSource(2))
	tokens := []string{"a", "b", "c", "file", "..", ".", "abs", "rel",
		"dangling", "self", "loop1", "loop2", "up", "chain0", "", "x"}
	for i := 0; i < 20000; i++ {
		var sb strings.Builder
		if r.Intn(2) == 0 {
			sb.WriteByte('/')
		}
		for j := r.Intn(8); j >= 0; j-- {
			sb.WriteString(tokens[r.Intn(len(tokens))])
			sb.WriteByte('/')
		}
		path := sb.String()
		if _, err := p.Stat(path); !resolveErrOK(err) {
			t.Fatalf("Stat(%q): unexpected error class %v", path, err)
		}
	}
}

// TestStressResolveChurnRandomPaths is the concurrent sibling of
// TestFuzzPathResolveRandom, named TestStress so the ci.sh -race leg
// picks it up: a mutator churns the fixture's structure (rename, create,
// remove) through the locked write paths while readers resolve random
// token paths lock-free. Invariants: no race, no panic, no hang, and
// every resolver error stays in the closed set. ErrBusy joins the set
// here only because a Stat can land on a directory mid-removal.
func TestStressResolveChurnRandomPaths(t *testing.T) {
	fs := fuzzFS(t)
	p := fs.RootProc()
	tokens := []string{"a", "b", "c", "file", "..", ".", "abs", "rel",
		"dangling", "self", "loop1", "loop2", "up", "chain0", "bmv", "d", ""}
	deadline := 60 * time.Second
	done := make(chan struct{})
	go func() {
		defer close(done)
		stop := make(chan struct{})
		var moverWG sync.WaitGroup
		moverWG.Add(1)
		go func() { // mutator: structural churn via locked entry points
			defer moverWG.Done()
			r := rand.New(rand.NewSource(7))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch r.Intn(4) {
				case 0:
					_ = p.Rename("/a/b", "/a/bmv")
				case 1:
					_ = p.Rename("/a/bmv", "/a/b")
				case 2:
					_ = p.Mkdir("/a/d", 0o755)
				case 3:
					_ = p.RemoveAll("/a/d")
				}
			}
		}()
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				for i := 0; i < 5000; i++ {
					var sb strings.Builder
					sb.WriteByte('/')
					for j := r.Intn(6); j >= 0; j-- {
						sb.WriteString(tokens[r.Intn(len(tokens))])
						sb.WriteByte('/')
					}
					path := sb.String()
					_, err := p.Stat(path)
					if !resolveErrOK(err) && !errors.Is(err, ErrBusy) {
						t.Errorf("Stat(%q): unexpected error class %v", path, err)
						return
					}
				}
			}(int64(g) + 11)
		}
		wg.Wait()
		close(stop)
		moverWG.Wait()
	}()
	select {
	case <-done:
	case <-time.After(deadline):
		t.Fatal("resolve churn stress hung (possible lock-free retry livelock)")
	}
	if fs.LockStats().ResolveLockfree == 0 {
		t.Error("no lock-free resolutions recorded under churn")
	}
}
