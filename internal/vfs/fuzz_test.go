package vfs

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// fuzzFS builds the resolution fixture: a few nested directories, a
// dangling link, a self-loop, a mutual two-link loop, and a long (but
// legal) symlink chain, so fuzzed paths can reach every branch of the
// resolver — "..", absolute and relative targets, loops, and the ELOOP
// bound.
func fuzzFS(tb testing.TB) *FS {
	tb.Helper()
	fs := New()
	p := fs.RootProc()
	must := func(err error) {
		if err != nil {
			tb.Fatal(err)
		}
	}
	must(p.MkdirAll("/a/b/c", 0o755))
	must(p.WriteString("/a/b/c/file", "data"))
	must(p.Symlink("/a/b", "/a/abs"))
	must(p.Symlink("b/c", "/a/rel"))
	must(p.Symlink("/nowhere", "/a/dangling"))
	must(p.Symlink("/self", "/self"))
	must(p.Symlink("/loop2", "/loop1"))
	must(p.Symlink("/loop1", "/loop2"))
	must(p.Symlink("../a", "/a/up"))
	// A chain of maxSymlinkHops-1 links: legal, one short of ELOOP.
	must(p.Symlink("/a/b/c", "/chain0"))
	for i := 1; i < maxSymlinkHops-1; i++ {
		must(p.Symlink("/chain"+itoa(i-1), "/chain"+itoa(i)))
	}
	return fs
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// resolveErrOK is the closed set of errors path resolution may return;
// anything else (or a panic) is a bug.
func resolveErrOK(err error) bool {
	if err == nil {
		return true
	}
	return errIsAny(err, ErrNotExist, ErrNotDir, ErrIsDir, ErrAccess,
		ErrTooManyLinks, ErrInvalid, ErrExist)
}

// FuzzPathResolve feeds arbitrary path strings through every resolving
// entry point. Invariants: never panic, never hang (the hop bound is the
// only loop breaker for /loop1 <-> /loop2), and errors stay in the closed
// resolveErrOK set.
func FuzzPathResolve(f *testing.F) {
	for _, seed := range []string{
		"/",
		"",
		"/a/b/c/file",
		"/a/./b/../b/c//file",
		"../../..",
		"/a/abs/c/file",
		"/a/rel/file",
		"/a/dangling",
		"/self",
		"/loop1",
		"/loop1/deeper/path",
		"/chain" + itoa(maxSymlinkHops-2) + "/file",
		"/a/up/up/up/b",
		strings.Repeat("/a/b/..", 50) + "/b/c",
		strings.Repeat("../", 60) + "a/b",
		"/a/b/c/file/not-a-dir",
		"//a///b/./c/",
	} {
		f.Add(seed)
	}
	fs := fuzzFS(f)
	p := fs.RootProc()
	user := fs.Proc(Cred{UID: 7, GID: 7})
	f.Fuzz(func(t *testing.T, path string) {
		if _, err := p.Stat(path); !resolveErrOK(err) {
			t.Fatalf("Stat(%q): unexpected error class %v", path, err)
		}
		if _, err := p.Lstat(path); !resolveErrOK(err) {
			t.Fatalf("Lstat(%q): unexpected error class %v", path, err)
		}
		if _, err := p.ReadDir(path); !resolveErrOK(err) {
			t.Fatalf("ReadDir(%q): unexpected error class %v", path, err)
		}
		if _, err := p.ReadFile(path); !resolveErrOK(err) {
			t.Fatalf("ReadFile(%q): unexpected error class %v", path, err)
		}
		if _, err := user.Stat(path); !resolveErrOK(err) {
			t.Fatalf("user Stat(%q): unexpected error class %v", path, err)
		}
		// Clean must be idempotent and always produce an absolute path.
		c := Clean(path)
		if !strings.HasPrefix(c, "/") || Clean(c) != c {
			t.Fatalf("Clean(%q) = %q, not an idempotent absolute path", path, c)
		}
	})
}

// TestResolveLoopHitsELOOPBound pins the exact bound: a chain of
// maxSymlinkHops-1 links resolves, the true loops fail with
// ErrTooManyLinks, and neither hangs.
func TestResolveLoopHitsELOOPBound(t *testing.T) {
	fs := fuzzFS(t)
	p := fs.RootProc()
	if _, err := p.Stat("/chain" + itoa(maxSymlinkHops-2)); err != nil {
		t.Fatalf("legal %d-hop chain rejected: %v", maxSymlinkHops-1, err)
	}
	for _, path := range []string{"/self", "/loop1", "/loop2", "/loop1/x/y"} {
		_, err := p.Stat(path)
		if !errors.Is(err, ErrTooManyLinks) {
			t.Fatalf("Stat(%q) = %v, want ErrTooManyLinks", path, err)
		}
	}
}

// TestFuzzPathResolveRandom complements the fuzz harness in normal `go
// test` runs (which only replay the corpus): 20k random path strings in
// the openflow fuzz-test style, biased toward resolver-relevant tokens.
func TestFuzzPathResolveRandom(t *testing.T) {
	fs := fuzzFS(t)
	p := fs.RootProc()
	r := rand.New(rand.NewSource(2))
	tokens := []string{"a", "b", "c", "file", "..", ".", "abs", "rel",
		"dangling", "self", "loop1", "loop2", "up", "chain0", "", "x"}
	for i := 0; i < 20000; i++ {
		var sb strings.Builder
		if r.Intn(2) == 0 {
			sb.WriteByte('/')
		}
		for j := r.Intn(8); j >= 0; j-- {
			sb.WriteString(tokens[r.Intn(len(tokens))])
			sb.WriteByte('/')
		}
		path := sb.String()
		if _, err := p.Stat(path); !resolveErrOK(err) {
			t.Fatalf("Stat(%q): unexpected error class %v", path, err)
		}
	}
}
