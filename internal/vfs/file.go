package vfs

import (
	"errors"
	"io"
	"sync"
)

// Open flags, matching the os package values where the paper's examples
// would use open(2).
const (
	O_RDONLY = 0x0
	O_WRONLY = 0x1
	O_RDWR   = 0x2
	O_APPEND = 0x400
	O_CREATE = 0x40
	O_EXCL   = 0x80
	O_TRUNC  = 0x200
)

// File is an open file handle. Handles on regular files read and write
// the inode directly; handles on synthetic files snapshot on open and
// flush on close, the way a procfs read/write behaves.
type File struct {
	mu     sync.Mutex
	proc   *Proc
	node   *inode
	path   string
	flags  int
	pos    int64
	closed bool
	wrote  bool

	// synthetic buffering. synth is the provider captured at open time
	// (the node's attachment may be swapped while the handle is open).
	synth         *Synthetic
	synthBuf      []byte
	synthMode     bool
	needSynthRead bool
}

// Open opens path read-only.
func (p *Proc) Open(path string) (*File, error) {
	return p.OpenFile(path, O_RDONLY, 0)
}

// Create creates or truncates path for writing with the given mode.
func (p *Proc) Create(path string, mode FileMode) (*File, error) {
	return p.OpenFile(path, O_RDWR|O_CREATE|O_TRUNC, mode)
}

// errNeedCreate routes an open from the read-locked fast path to the
// write-locked slow path when the file must be created.
var errNeedCreate = errors.New("vfs: open needs create")

// OpenFile is the generalized open call. Opens of existing files run
// under the tree read lock (the hot path for every flow read/write);
// only an open that has to create the file takes the tree write lock.
func (p *Proc) OpenFile(path string, flags int, mode FileMode) (*File, error) {
	if err := p.charge("open", 0); err != nil {
		return nil, err
	}
	p.fs.stats.opens.Add(1)
	defer p.fs.observe(LatOpen, latStart())

	f, events, err := p.openFast(path, flags)
	if errors.Is(err, errNeedCreate) {
		f, events, err = p.openSlow(path, flags, mode)
	}
	p.fs.watches.dispatch(events)
	if err != nil {
		return nil, err
	}
	// Synthetic content is produced outside the tree lock: a provider may
	// perform slow work (the OpenFlow driver queries the switch here) and
	// must not stall unrelated file-system operations.
	if f.needSynthRead {
		data, rerr := f.synth.Read()
		if rerr != nil {
			return nil, pathErr("open", path, rerr)
		}
		f.synthBuf = data
	}
	return f, nil
}

// openFast handles opens that do not create. A clean path in the root
// namespace goes through the lock-free resolver (openRCU); everything
// else — chroots, uncleaned paths, symlinks, generation-conflict retries
// — takes the tree read lock, so opens of distinct existing files still
// proceed in parallel at worst. Returns errNeedCreate when the path does
// not exist and O_CREATE was given.
func (p *Proc) openFast(path string, flags int) (*File, []Event, error) {
	fs := p.fs
	if p.root == fs.root && isClean(path) {
		if f, events, err, ok := p.openRCU(path, flags); ok {
			return f, events, err
		}
	}
	fs.lockCtr.resolveFallback.Add(1)
	fs.rlockTree()
	defer fs.runlockTree()
	parent, name, node, err := fs.resolve(p.cred, path, p.opts(true))
	if err != nil {
		return nil, nil, pathErr("open", path, err)
	}
	if node == nil {
		if flags&O_CREATE == 0 {
			return nil, nil, pathErr("open", path, ErrNotExist)
		}
		return nil, nil, errNeedCreate
	}
	if node.isDir() {
		// Checked before pathTo: the root has no parent entry to name.
		return nil, nil, pathErr("open", path, ErrIsDir)
	}
	// The handle records the real root-absolute path, not the caller's
	// (possibly chroot-relative) spelling: events carry this path, and
	// watchers outside the namespace must see the true location.
	return p.openExisting(node, pathTo(parent, name), flags)
}

// openRCU is the lock-free open fast path: a canonical, non-chrooted
// path that resolves without symlinks, "..", or a generation-conflict
// retry opens with no tree lock at all. ok=false sends the caller to the
// read-locked path (which handles all of the above). The caller's path
// spelling doubles as the handle's real path: it is canonical, the Proc
// is rooted at the fs root, and no symlink was crossed.
func (p *Proc) openRCU(path string, flags int) (*File, []Event, error, bool) {
	fs := p.fs
	node, st, err := fs.walkRCU(p.cred, path, resolveOpts{followLast: true, root: fs.root})
	if st == rcuRetry || st == rcuBail {
		return nil, nil, nil, false
	}
	fs.lockCtr.resolveLockfree.Add(1)
	if err != nil {
		return nil, nil, pathErr("open", path, err), true
	}
	if node == nil {
		if flags&O_CREATE == 0 {
			return nil, nil, pathErr("open", path, ErrNotExist), true
		}
		return nil, nil, errNeedCreate, true
	}
	f, events, err := p.openExisting(node, path, flags)
	return f, events, err, true
}

// openExisting applies the existing-file open rules (flag and permission
// checks, synthetic capture, O_TRUNC) and builds the handle. It requires
// no tree lock: permissions are atomics, the synthetic attachment is
// atomic, and truncation takes the node's stripe.
func (p *Proc) openExisting(node *inode, realPath string, flags int) (*File, []Event, error) {
	fs := p.fs
	if flags&O_CREATE != 0 && flags&O_EXCL != 0 {
		return nil, nil, pathErr("open", realPath, ErrExist)
	}
	if node.isDir() {
		return nil, nil, pathErr("open", realPath, ErrIsDir)
	}
	wantsWrite := flags&(O_WRONLY|O_RDWR) != 0
	wantsRead := flags&O_WRONLY == 0
	if wantsWrite && !allows(node, p.cred, wantWrite) {
		return nil, nil, pathErr("open", realPath, ErrAccess)
	}
	if wantsRead && !allows(node, p.cred, wantRead) {
		return nil, nil, pathErr("open", realPath, ErrAccess)
	}
	f := &File{proc: p, node: node, path: realPath, flags: flags}
	var events []Event
	if syn := node.loadSynth(); syn != nil {
		f.synth = syn
		f.synthMode = true
		f.needSynthRead = wantsRead && syn.Read != nil
	} else if flags&O_TRUNC != 0 {
		s := fs.lockNode(node)
		node.data = node.data[:0]
		node.touchM(fs.now())
		s.mu.Unlock()
		events = []Event{{Op: OpWrite, Path: f.path}}
	}
	return f, events, nil
}

// openSlow creates the file under the tree write lock, running the parent
// directory's OnCreate hook. It re-resolves from scratch: another open may
// have created the file between the fast path's read lock and here.
func (p *Proc) openSlow(path string, flags int, mode FileMode) (*File, []Event, error) {
	fs := p.fs
	fs.lockTree()
	tx := &Tx{fs: fs}
	f, err := func() (*File, error) {
		parent, name, node, err := fs.resolve(p.cred, path, p.opts(true))
		if err != nil {
			return nil, pathErr("open", path, err)
		}
		created := false
		if node == nil {
			if !allows(parent, p.cred, wantWrite) {
				return nil, pathErr("open", path, ErrAccess)
			}
			node = fs.newInode(KindFile, mode.Perm(), p.cred.UID, p.cred.GID)
			name = internName(name)
			parent.cowInsert(name, node)
			fs.touchMS(parent, fs.now())
			created = true
			fs.stats.creates.Add(1)
			tx.queue(Event{Op: OpCreate, Path: pathTo(parent, name)})
		} else {
			// Lost the create race: apply the existing-file rules.
			if flags&O_CREATE != 0 && flags&O_EXCL != 0 {
				return nil, pathErr("open", path, ErrExist)
			}
			if node.isDir() {
				return nil, pathErr("open", path, ErrIsDir)
			}
		}
		wantsWrite := flags&(O_WRONLY|O_RDWR) != 0
		wantsRead := flags&O_WRONLY == 0
		if wantsWrite && !allows(node, p.cred, wantWrite) {
			return nil, pathErr("open", path, ErrAccess)
		}
		if wantsRead && !created && !allows(node, p.cred, wantRead) {
			return nil, pathErr("open", path, ErrAccess)
		}
		f := &File{proc: p, node: node, path: pathTo(parent, name), flags: flags}
		if syn := node.loadSynth(); syn != nil {
			f.synth = syn
			f.synthMode = true
			f.needSynthRead = wantsRead && syn.Read != nil
		} else if flags&O_TRUNC != 0 && !created {
			s := fs.lockNode(node)
			node.data = node.data[:0]
			node.touchM(fs.now())
			s.mu.Unlock()
			tx.queue(Event{Op: OpWrite, Path: f.path})
		}
		if created && parent.sem != nil && parent.sem.OnCreate != nil {
			if herr := parent.sem.OnCreate(tx, pathOf(parent), name); herr != nil {
				parent.cowDelete(name)
				tx.events = tx.events[:0]
				return nil, pathErr("open", path, herr)
			}
		}
		return f, nil
	}()
	events := tx.events
	fs.unlockTree()
	return f, events, err
}

// Name returns the path the file was opened with.
func (f *File) Name() string { return f.path }

// Read reads from the current offset.
func (f *File) Read(b []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, pathErr("read", f.path, ErrClosed)
	}
	if f.flags&O_WRONLY != 0 {
		return 0, pathErr("read", f.path, ErrBadHandle)
	}
	f.proc.fs.stats.reads.Add(1)
	defer f.proc.fs.observe(LatRead, latStart())
	if err := f.proc.charge("read", len(b)); err != nil {
		return 0, err
	}
	if f.synthMode {
		if f.pos >= int64(len(f.synthBuf)) {
			return 0, io.EOF
		}
		n := copy(b, f.synthBuf[f.pos:])
		f.pos += int64(n)
		return n, nil
	}
	// Stripe-only: content I/O on an open handle needs no tree lock at
	// any level (the node was pinned at open time).
	fs := f.proc.fs
	s := fs.rlockNode(f.node)
	src := f.node.data
	if f.pos < int64(len(src)) {
		n := copy(b, src[f.pos:])
		f.pos += int64(n)
		s.mu.RUnlock()
		return n, nil
	}
	s.mu.RUnlock()
	return 0, io.EOF
}

// Write writes at the current offset (or the end, with O_APPEND).
func (f *File) Write(b []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, pathErr("write", f.path, ErrClosed)
	}
	if f.flags&(O_WRONLY|O_RDWR) == 0 {
		return 0, pathErr("write", f.path, ErrBadHandle)
	}
	f.proc.fs.stats.writes.Add(1)
	defer f.proc.fs.observe(LatWrite, latStart())
	if err := f.proc.charge("write", len(b)); err != nil {
		return 0, err
	}
	f.wrote = true
	if f.synthMode {
		if f.flags&O_APPEND != 0 {
			f.pos = int64(len(f.synthBuf))
		}
		f.synthBuf = writeAt(f.synthBuf, b, f.pos)
		f.pos += int64(len(b))
		return len(b), nil
	}
	fs := f.proc.fs
	s := fs.lockNode(f.node)
	n := f.node
	if f.flags&O_APPEND != 0 {
		f.pos = int64(len(n.data))
	}
	if f.pos == 0 && int64(len(b)) >= int64(len(n.data)) {
		// Whole-content replace — the dominant shape for single-value
		// attribute files. Small repeated payloads are interned and
		// shared copy-on-write across inodes.
		if d, ok := internBytes(b); ok {
			n.data, n.dataShared = d, true
		} else {
			if n.dataShared {
				n.data, n.dataShared = nil, false
			}
			n.data = writeAt(n.data, b, 0)
		}
	} else {
		if n.dataShared {
			// Copy-on-write: never scribble on a shared interned slice.
			n.data = append([]byte(nil), n.data...)
			n.dataShared = false
		}
		n.data = writeAt(n.data, b, f.pos)
	}
	f.pos += int64(len(b))
	n.touchM(fs.now())
	s.mu.Unlock()
	fs.watches.dispatch([]Event{{Op: OpWrite, Path: f.path}})
	return len(b), nil
}

func writeAt(dst, b []byte, pos int64) []byte {
	end := pos + int64(len(b))
	if int64(len(dst)) < end {
		grown := make([]byte, end)
		copy(grown, dst)
		dst = grown
	}
	copy(dst[pos:end], b)
	return dst
}

// WriteString writes a string.
func (f *File) WriteString(s string) (int, error) { return f.Write([]byte(s)) }

// Seek sets the offset for the next Read or Write.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, pathErr("seek", f.path, ErrClosed)
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.pos
	case io.SeekEnd:
		if f.synthMode {
			base = int64(len(f.synthBuf))
		} else {
			fs := f.proc.fs
			s := fs.rlockNode(f.node)
			base = int64(len(f.node.data))
			s.mu.RUnlock()
		}
	default:
		return 0, pathErr("seek", f.path, ErrInvalid)
	}
	np := base + offset
	if np < 0 {
		return 0, pathErr("seek", f.path, ErrInvalid)
	}
	f.pos = np
	return np, nil
}

// Truncate resizes the file.
func (f *File) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return pathErr("truncate", f.path, ErrClosed)
	}
	if f.flags&(O_WRONLY|O_RDWR) == 0 {
		return pathErr("truncate", f.path, ErrBadHandle)
	}
	if f.synthMode {
		if size <= int64(len(f.synthBuf)) {
			f.synthBuf = f.synthBuf[:size]
		} else {
			f.synthBuf = append(f.synthBuf, make([]byte, size-int64(len(f.synthBuf)))...)
		}
		f.wrote = true
		return nil
	}
	fs := f.proc.fs
	s := fs.lockNode(f.node)
	if size <= int64(len(f.node.data)) {
		// A reslice never writes, so a shared slice may stay shared.
		f.node.data = f.node.data[:size]
	} else {
		if f.node.dataShared {
			f.node.data = append([]byte(nil), f.node.data...)
			f.node.dataShared = false
		}
		f.node.data = append(f.node.data, make([]byte, size-int64(len(f.node.data)))...)
	}
	f.node.touchM(fs.now())
	s.mu.Unlock()
	fs.watches.dispatch([]Event{{Op: OpWrite, Path: f.path}})
	return nil
}

// Stat describes the open file.
func (f *File) Stat() (Stat, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return Stat{}, pathErr("stat", f.path, ErrClosed)
	}
	fs := f.proc.fs
	s := fs.rlockNode(f.node)
	defer s.mu.RUnlock()
	return statOf(f.node, Base(f.path)), nil
}

// Close releases the handle. For synthetic files opened for writing this
// is the moment the buffered content is handed to the Write hook; for
// regular files a CloseWrite event fires if the handle wrote, which is
// what fanotify-style consumers (drivers) key on.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return pathErr("close", f.path, ErrClosed)
	}
	f.closed = true
	if f.synthMode && f.wrote {
		if f.synth.Write == nil {
			return pathErr("close", f.path, ErrPerm)
		}
		if err := f.synth.Write(f.synthBuf); err != nil {
			return pathErr("close", f.path, err)
		}
	}
	if f.wrote {
		f.proc.fs.watches.dispatch([]Event{{Op: OpCloseWrite, Path: f.path}})
	}
	return nil
}

// ReadFile returns the content of the file at path.
func (p *Proc) ReadFile(path string) ([]byte, error) {
	f, err := p.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []byte
	buf := make([]byte, 4096)
	for {
		n, err := f.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
	}
}

// ReadFileShared returns the content of the file at path WITHOUT
// copying: the returned slice aliases the inode's backing store. It
// exists for the libyanc packet-out spool, where frames are staged
// once, hard-linked per switch, and consumed by reference — copying
// them again in the driver would defeat the zero-copy path.
//
// The no-copy contract is only safe for write-once files: a later
// whole-content rewrite of equal or larger size reuses the backing
// array in place and would be visible through the returned slice.
// Callers that cannot guarantee write-once content must use ReadFile.
// Synthetic files return the provider's snapshot, which is already
// caller-owned.
func (p *Proc) ReadFileShared(path string) ([]byte, error) {
	f, err := p.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.synthMode {
		if err := f.proc.charge("read", len(f.synthBuf)); err != nil {
			return nil, err
		}
		f.proc.fs.stats.reads.Add(1)
		return f.synthBuf, nil
	}
	fs := f.proc.fs
	s := fs.rlockNode(f.node)
	data := f.node.data
	s.mu.RUnlock()
	if err := f.proc.charge("read", len(data)); err != nil {
		return nil, err
	}
	fs.stats.reads.Add(1)
	return data, nil
}

// ReadString returns the file content as a whitespace-trimmed string,
// the natural shape for single-value yanc files like "priority".
func (p *Proc) ReadString(path string) (string, error) {
	b, err := p.ReadFile(path)
	if err != nil {
		return "", err
	}
	return trimSpace(string(b)), nil
}

func trimSpace(s string) string {
	start, end := 0, len(s)
	for start < end && (s[start] == ' ' || s[start] == '\n' || s[start] == '\t' || s[start] == '\r') {
		start++
	}
	for end > start && (s[end-1] == ' ' || s[end-1] == '\n' || s[end-1] == '\t' || s[end-1] == '\r') {
		end--
	}
	return s[start:end]
}

// WriteFile creates or truncates path with data.
func (p *Proc) WriteFile(path string, data []byte, mode FileMode) error {
	f, err := p.OpenFile(path, O_WRONLY|O_CREATE|O_TRUNC, mode)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteString writes a string to path, creating it if needed ("echo 1 >
// port_2/config.port_down").
func (p *Proc) WriteString(path, s string) error {
	return p.WriteFile(path, []byte(s), 0o644)
}

// AppendFile appends data to path, creating it if needed.
func (p *Proc) AppendFile(path string, data []byte, mode FileMode) error {
	f, err := p.OpenFile(path, O_WRONLY|O_CREATE|O_APPEND, mode)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
