package vfs

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTxAPI exercises the transactional (hook-level) surface directly.
func TestTxAPI(t *testing.T) {
	fs := New()
	err := fs.WithTx(func(tx *Tx) error {
		if err := tx.MkdirAll("/a/b/c", 0o755, 0, 0); err != nil {
			return err
		}
		if !tx.Exists("/a/b/c") || !tx.IsDir("/a/b") {
			t.Error("Exists/IsDir inside tx")
		}
		if tx.Exists("/nope") || tx.IsDir("/a/b/c/nope") {
			t.Error("phantom existence")
		}
		if err := tx.WriteFile("/a/b/c/f", []byte("x"), 0o644, 0, 0); err != nil {
			return err
		}
		// Overwrite path.
		if err := tx.WriteFile("/a/b/c/f", []byte("yz"), 0o644, 0, 0); err != nil {
			return err
		}
		b, err := tx.ReadFile("/a/b/c/f")
		if err != nil || string(b) != "yz" {
			t.Errorf("tx read = %q %v", b, err)
		}
		if _, err := tx.ReadFile("/a/b"); !errors.Is(err, ErrIsDir) {
			t.Errorf("tx read dir = %v", err)
		}
		if err := tx.Symlink("/a/b", "/link", 0, 0); err != nil {
			return err
		}
		if err := tx.Symlink("/a/b", "/link", 0, 0); !errors.Is(err, ErrExist) {
			t.Errorf("tx symlink exist = %v", err)
		}
		entries, err := tx.ReadDir("/a/b/c")
		if err != nil || len(entries) != 1 {
			t.Errorf("tx readdir = %v %v", entries, err)
		}
		if _, err := tx.ReadDir("/a/b/c/f"); !errors.Is(err, ErrNotDir) {
			t.Errorf("tx readdir file = %v", err)
		}
		st, err := tx.Stat("/a/b/c/f")
		if err != nil || st.Size != 2 {
			t.Errorf("tx stat = %+v %v", st, err)
		}
		if err := tx.Chmod("/a/b/c/f", 0o600); err != nil {
			return err
		}
		if err := tx.Chown("/a/b/c/f", 7, 8); err != nil {
			return err
		}
		st, _ = tx.Stat("/a/b/c/f")
		if st.Mode.Perm() != 0o600 || st.UID != 7 || st.GID != 8 {
			t.Errorf("tx chmod/chown = %+v", st)
		}
		if err := tx.SetXattr("/a/b/c/f", "user.k", []byte("v")); err != nil {
			return err
		}
		v, err := tx.GetXattr("/a/b/c/f", "user.k")
		if err != nil || string(v) != "v" {
			t.Errorf("tx xattr = %q %v", v, err)
		}
		if _, err := tx.GetXattr("/a/b/c/f", "user.missing"); !errors.Is(err, ErrNoAttr) {
			t.Errorf("tx missing xattr = %v", err)
		}
		if err := tx.Remove("/a/b/c"); err != nil { // recursive in Tx
			return err
		}
		if tx.Exists("/a/b/c") {
			t.Error("tx remove did not remove")
		}
		if err := tx.Remove("/a/b/c"); !errors.Is(err, ErrNotExist) {
			t.Errorf("tx remove missing = %v", err)
		}
		if c := tx.Creator(); c.UID != 0 || c.GID != 0 {
			t.Errorf("tx creator = %+v", c)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// ReadTx sees the committed state.
	if err := fs.ReadTx(func(tx *Tx) error {
		if !tx.IsDir("/a/b") {
			t.Error("readtx missing dir")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSetClockAffectsTimestamps(t *testing.T) {
	fs := New()
	base := time.Unix(1_700_000_000, 0)
	fs.SetClock(func() time.Time { return base })
	p := fs.RootProc()
	if err := p.WriteString("/f", "x"); err != nil {
		t.Fatal(err)
	}
	st, _ := p.Stat("/f")
	if !st.Mtime.Equal(base) {
		t.Errorf("mtime = %v want %v", st.Mtime, base)
	}
}

func TestFileHandleStatNameWriteString(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	f, err := p.Create("/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "/f" {
		t.Errorf("name = %q", f.Name())
	}
	if _, err := f.WriteString("hello"); err != nil {
		t.Fatal(err)
	}
	st, err := f.Stat()
	if err != nil || st.Size != 5 {
		t.Errorf("handle stat = %+v %v", st, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat(); !errors.Is(err, ErrClosed) {
		t.Errorf("stat closed = %v", err)
	}
	if err := f.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double close = %v", err)
	}
	// Name records the real path even when opened via a namespace.
	if err := p.MkdirAll("/jail/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	jail, err := p.Chroot("/jail")
	if err != nil {
		t.Fatal(err)
	}
	jf, err := jail.Create("/sub/x", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if jf.Name() != "/jail/sub/x" {
		t.Errorf("jail file name = %q", jf.Name())
	}
	jf.Close()
}

func TestPathAndLinkErrorStrings(t *testing.T) {
	pe := &PathError{Op: "open", Path: "/x", Err: ErrNotExist}
	if pe.Error() == "" || !errors.Is(pe, ErrNotExist) {
		t.Error("PathError surface")
	}
	le := &LinkError{Op: "rename", Old: "/a", New: "/b", Err: ErrExist}
	if le.Error() == "" || !errors.Is(le, ErrExist) {
		t.Error("LinkError surface")
	}
}

func TestAppendFileCreatesWhenMissing(t *testing.T) {
	p := New().RootProc()
	if err := p.AppendFile("/log", []byte("a\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := p.AppendFile("/log", []byte("b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, _ := p.ReadFile("/log")
	if string(b) != "a\nb\n" {
		t.Errorf("appended = %q", b)
	}
	// Append into an unwritable location fails.
	if err := p.Mkdir("/ro", 0o555); err != nil {
		t.Fatal(err)
	}
	alice := p.WithCred(Cred{UID: 9})
	if err := alice.AppendFile("/ro/f", []byte("x"), 0o644); !errors.Is(err, ErrAccess) {
		t.Errorf("append denied = %v", err)
	}
}

// TestStressTxTortureVersionCommit is the transaction torture test for
// the version-file commit protocol yancfs uses (PutFlowTx): concurrent
// transactions rewrite a flow directory's match.* files and bump its
// version file, while concurrent readers assert they only ever observe
// all-or-nothing states. A transaction also stages a scratch match file
// and removes it before returning — no reader may ever see it, which
// pins the "uncommitted match.* files are never visible" guarantee.
func TestStressTxTortureVersionCommit(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	const flow = "/flows/f1"
	err := fs.WithTx(func(tx *Tx) error {
		if err := tx.MkdirAll(flow, 0o755, 0, 0); err != nil {
			return err
		}
		if err := tx.WriteFile(flow+"/match.nw_dst", []byte("gen0"), 0o644, 0, 0); err != nil {
			return err
		}
		if err := tx.WriteFile(flow+"/actions", []byte("gen0"), 0o644, 0, 0); err != nil {
			return err
		}
		return tx.WriteFile(flow+"/version", []byte("0"), 0o644, 0, 0)
	})
	if err != nil {
		t.Fatal(err)
	}

	const committers = 4
	const commitsEach = 150
	var gen atomic.Uint64
	stop := make(chan struct{})
	var readerErr atomic.Value

	var rwg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Atomic snapshot: all files must carry the same generation
				// tag as the version file, and the staging file must be
				// invisible.
				var version, match, actions string
				var stagingSeen bool
				_ = fs.ReadTx(func(tx *Tx) error {
					v, err := tx.ReadFile(flow + "/version")
					if err != nil {
						return err
					}
					m, err := tx.ReadFile(flow + "/match.nw_dst")
					if err != nil {
						return err
					}
					a, err := tx.ReadFile(flow + "/actions")
					if err != nil {
						return err
					}
					version, match, actions = string(v), string(m), string(a)
					stagingSeen = tx.Exists(flow + "/match.staging")
					return nil
				})
				if stagingSeen {
					readerErr.Store(fmt.Errorf("uncommitted match.staging visible to reader"))
					return
				}
				want := "gen" + version
				if match != want || actions != want {
					readerErr.Store(fmt.Errorf("torn commit: version=%s match=%s actions=%s",
						version, match, actions))
					return
				}
				// The Proc seqlock read (yancfs.ReadFlow style) must agree:
				// version stable across the field reads implies consistency.
				v1, err1 := p.ReadString(flow + "/version")
				m2, _ := p.ReadString(flow + "/match.nw_dst")
				v2, err2 := p.ReadString(flow + "/version")
				if err1 == nil && err2 == nil && v1 == v2 && m2 != "gen"+v1 {
					readerErr.Store(fmt.Errorf("seqlock read torn: version=%s match=%s", v1, m2))
					return
				}
			}
		}()
	}

	var cwg sync.WaitGroup
	for c := 0; c < committers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for i := 0; i < commitsEach; i++ {
				g := gen.Add(1)
				tag := []byte(fmt.Sprintf("gen%d", g))
				err := fs.WithTx(func(tx *Tx) error {
					// Stage, then commit fields + version, then unstage:
					// everything inside one transaction, so readers see
					// none of the intermediate states.
					if err := tx.WriteFile(flow+"/match.staging", tag, 0o644, 0, 0); err != nil {
						return err
					}
					if err := tx.WriteFile(flow+"/match.nw_dst", tag, 0o644, 0, 0); err != nil {
						return err
					}
					if err := tx.WriteFile(flow+"/actions", tag, 0o644, 0, 0); err != nil {
						return err
					}
					if err := tx.WriteFile(flow+"/version", []byte(fmt.Sprintf("%d", g)), 0o644, 0, 0); err != nil {
						return err
					}
					return tx.Remove(flow + "/match.staging")
				})
				if err != nil {
					t.Errorf("commit %d: %v", g, err)
					return
				}
			}
		}()
	}
	cwg.Wait()
	close(stop)
	rwg.Wait()
	if e := readerErr.Load(); e != nil {
		t.Fatal(e)
	}

	// Final state: the last generation fully committed.
	v, err := p.ReadString(flow + "/version")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := p.ReadString(flow + "/match.nw_dst")
	if m != "gen"+v {
		t.Fatalf("final state torn: version=%s match=%s", v, m)
	}
	if p.Exists(flow + "/match.staging") {
		t.Fatal("staging file leaked out of transactions")
	}
}
