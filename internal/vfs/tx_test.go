package vfs

import (
	"errors"
	"testing"
	"time"
)

// TestTxAPI exercises the transactional (hook-level) surface directly.
func TestTxAPI(t *testing.T) {
	fs := New()
	err := fs.WithTx(func(tx *Tx) error {
		if err := tx.MkdirAll("/a/b/c", 0o755, 0, 0); err != nil {
			return err
		}
		if !tx.Exists("/a/b/c") || !tx.IsDir("/a/b") {
			t.Error("Exists/IsDir inside tx")
		}
		if tx.Exists("/nope") || tx.IsDir("/a/b/c/nope") {
			t.Error("phantom existence")
		}
		if err := tx.WriteFile("/a/b/c/f", []byte("x"), 0o644, 0, 0); err != nil {
			return err
		}
		// Overwrite path.
		if err := tx.WriteFile("/a/b/c/f", []byte("yz"), 0o644, 0, 0); err != nil {
			return err
		}
		b, err := tx.ReadFile("/a/b/c/f")
		if err != nil || string(b) != "yz" {
			t.Errorf("tx read = %q %v", b, err)
		}
		if _, err := tx.ReadFile("/a/b"); !errors.Is(err, ErrIsDir) {
			t.Errorf("tx read dir = %v", err)
		}
		if err := tx.Symlink("/a/b", "/link", 0, 0); err != nil {
			return err
		}
		if err := tx.Symlink("/a/b", "/link", 0, 0); !errors.Is(err, ErrExist) {
			t.Errorf("tx symlink exist = %v", err)
		}
		entries, err := tx.ReadDir("/a/b/c")
		if err != nil || len(entries) != 1 {
			t.Errorf("tx readdir = %v %v", entries, err)
		}
		if _, err := tx.ReadDir("/a/b/c/f"); !errors.Is(err, ErrNotDir) {
			t.Errorf("tx readdir file = %v", err)
		}
		st, err := tx.Stat("/a/b/c/f")
		if err != nil || st.Size != 2 {
			t.Errorf("tx stat = %+v %v", st, err)
		}
		if err := tx.Chmod("/a/b/c/f", 0o600); err != nil {
			return err
		}
		if err := tx.Chown("/a/b/c/f", 7, 8); err != nil {
			return err
		}
		st, _ = tx.Stat("/a/b/c/f")
		if st.Mode.Perm() != 0o600 || st.UID != 7 || st.GID != 8 {
			t.Errorf("tx chmod/chown = %+v", st)
		}
		if err := tx.SetXattr("/a/b/c/f", "user.k", []byte("v")); err != nil {
			return err
		}
		v, err := tx.GetXattr("/a/b/c/f", "user.k")
		if err != nil || string(v) != "v" {
			t.Errorf("tx xattr = %q %v", v, err)
		}
		if _, err := tx.GetXattr("/a/b/c/f", "user.missing"); !errors.Is(err, ErrNoAttr) {
			t.Errorf("tx missing xattr = %v", err)
		}
		if err := tx.Remove("/a/b/c"); err != nil { // recursive in Tx
			return err
		}
		if tx.Exists("/a/b/c") {
			t.Error("tx remove did not remove")
		}
		if err := tx.Remove("/a/b/c"); !errors.Is(err, ErrNotExist) {
			t.Errorf("tx remove missing = %v", err)
		}
		if c := tx.Creator(); c.UID != 0 || c.GID != 0 {
			t.Errorf("tx creator = %+v", c)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// ReadTx sees the committed state.
	if err := fs.ReadTx(func(tx *Tx) error {
		if !tx.IsDir("/a/b") {
			t.Error("readtx missing dir")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSetClockAffectsTimestamps(t *testing.T) {
	fs := New()
	base := time.Unix(1_700_000_000, 0)
	fs.SetClock(func() time.Time { return base })
	p := fs.RootProc()
	if err := p.WriteString("/f", "x"); err != nil {
		t.Fatal(err)
	}
	st, _ := p.Stat("/f")
	if !st.Mtime.Equal(base) {
		t.Errorf("mtime = %v want %v", st.Mtime, base)
	}
}

func TestFileHandleStatNameWriteString(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	f, err := p.Create("/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "/f" {
		t.Errorf("name = %q", f.Name())
	}
	if _, err := f.WriteString("hello"); err != nil {
		t.Fatal(err)
	}
	st, err := f.Stat()
	if err != nil || st.Size != 5 {
		t.Errorf("handle stat = %+v %v", st, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat(); !errors.Is(err, ErrClosed) {
		t.Errorf("stat closed = %v", err)
	}
	if err := f.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double close = %v", err)
	}
	// Name records the real path even when opened via a namespace.
	if err := p.MkdirAll("/jail/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	jail, err := p.Chroot("/jail")
	if err != nil {
		t.Fatal(err)
	}
	jf, err := jail.Create("/sub/x", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if jf.Name() != "/jail/sub/x" {
		t.Errorf("jail file name = %q", jf.Name())
	}
	jf.Close()
}

func TestPathAndLinkErrorStrings(t *testing.T) {
	pe := &PathError{Op: "open", Path: "/x", Err: ErrNotExist}
	if pe.Error() == "" || !errors.Is(pe, ErrNotExist) {
		t.Error("PathError surface")
	}
	le := &LinkError{Op: "rename", Old: "/a", New: "/b", Err: ErrExist}
	if le.Error() == "" || !errors.Is(le, ErrExist) {
		t.Error("LinkError surface")
	}
}

func TestAppendFileCreatesWhenMissing(t *testing.T) {
	p := New().RootProc()
	if err := p.AppendFile("/log", []byte("a\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := p.AppendFile("/log", []byte("b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, _ := p.ReadFile("/log")
	if string(b) != "a\nb\n" {
		t.Errorf("appended = %q", b)
	}
	// Append into an unwritable location fails.
	if err := p.Mkdir("/ro", 0o555); err != nil {
		t.Fatal(err)
	}
	alice := p.WithCred(Cred{UID: 9})
	if err := alice.AppendFile("/ro/f", []byte("x"), 0o644); !errors.Is(err, ErrAccess) {
		t.Errorf("append denied = %v", err)
	}
}
