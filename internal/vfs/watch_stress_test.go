package vfs

import (
	"fmt"
	"sync"
	"testing"
)

// TestWatchLifecycleStress interleaves AddWatch, Close, event dispatch,
// and the queue-depth gauges from every direction. Run under -race (ci.sh
// does), it locks in the watchSet invariants the .proc/watch files report:
// no send on a closed channel, no double close, and Info/WatchInfos safe
// against concurrent delivery and teardown.
func TestWatchLifecycleStress(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	const (
		writers  = 4
		churners = 4
		rounds   = 200
	)
	var bg, churn sync.WaitGroup
	stop := make(chan struct{})

	// Writers: generate events continuously.
	for i := 0; i < writers; i++ {
		bg.Add(1)
		go func(id int) {
			defer bg.Done()
			path := fmt.Sprintf("/w%d", id)
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = p.WriteString(path, "x")
				_ = p.Remove(path)
			}
		}(i)
	}

	// Churners: add watches, drain a little, close them — racing dispatch.
	for i := 0; i < churners; i++ {
		churn.Add(1)
		go func() {
			defer churn.Done()
			for r := 0; r < rounds; r++ {
				w, err := p.AddWatch("/", OpAll, Recursive(), BufferSize(2))
				if err != nil {
					t.Error(err)
					return
				}
				for j := 0; j < 3; j++ {
					select {
					case <-w.C:
					default:
					}
				}
				_ = w.Info()
				w.Close()
				w.Close() // double close must be safe
			}
		}()
	}

	// Gauge reader: snapshot the whole set while it churns.
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, info := range fs.WatchInfos() {
				if info.Depth > info.Capacity {
					t.Errorf("depth %d exceeds capacity %d", info.Depth, info.Capacity)
					return
				}
			}
		}
	}()

	// Let churners finish their rounds, then stop writers and the reader.
	churn.Wait()
	close(stop)
	bg.Wait()

	if n := len(fs.WatchInfos()); n != 0 {
		t.Fatalf("%d watches leaked", n)
	}
}
