package vfs

import (
	"errors"
	"fmt"
)

// Errno mirrors the POSIX error set the paper's file-system API surfaces.
// Errors returned by the VFS wrap one of these sentinels so callers can use
// errors.Is the way C code would compare errno values.
var (
	ErrNotExist     = errors.New("no such file or directory")         // ENOENT
	ErrExist        = errors.New("file exists")                       // EEXIST
	ErrNotDir       = errors.New("not a directory")                   // ENOTDIR
	ErrIsDir        = errors.New("is a directory")                    // EISDIR
	ErrNotEmpty     = errors.New("directory not empty")               // ENOTEMPTY
	ErrPerm         = errors.New("operation not permitted")           // EPERM
	ErrAccess       = errors.New("permission denied")                 // EACCES
	ErrInvalid      = errors.New("invalid argument")                  // EINVAL
	ErrTooManyLinks = errors.New("too many levels of symbolic links") // ELOOP
	ErrBadHandle    = errors.New("bad file descriptor")               // EBADF
	ErrNoAttr       = errors.New("no such attribute")                 // ENODATA
	ErrBusy         = errors.New("device or resource busy")           // EBUSY
	ErrClosed       = errors.New("file already closed")
	ErrCrossDevice  = errors.New("invalid cross-device link") // EXDEV
	ErrQuota        = errors.New("resource quota exceeded")   // EDQUOT
	ErrReadOnly     = errors.New("read-only file system")     // EROFS
)

// PathError records an error, the operation that caused it, and the path.
// It has the same shape as os.PathError so tooling built on the VFS reads
// naturally.
type PathError struct {
	Op   string
	Path string
	Err  error
}

func (e *PathError) Error() string { return e.Op + " " + e.Path + ": " + e.Err.Error() }

func (e *PathError) Unwrap() error { return e.Err }

func pathErr(op, path string, err error) error {
	return &PathError{Op: op, Path: path, Err: err} //yancvet:alloc error construction is off the success path
}

// LinkError records an error during a rename, link, or symlink involving
// two paths.
type LinkError struct {
	Op  string
	Old string
	New string
	Err error
}

func (e *LinkError) Error() string {
	return fmt.Sprintf("%s %s %s: %v", e.Op, e.Old, e.New, e.Err)
}

func (e *LinkError) Unwrap() error { return e.Err }
