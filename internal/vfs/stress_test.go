package vfs

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The stress battery exercises the two-level locking scheme (lock.go)
// under -race: mixed structural and non-structural operations from many
// goroutines over overlapping subtrees. Every test runs inside a deadlock
// canary — a lock-ordering violation shows up as a hung test, and the
// canary converts the hang into a failure with full goroutine stacks
// instead of a silent suite timeout.

// runWithDeadline is the deadlock canary: fn must finish within d or the
// test fails with a dump of all goroutine stacks.
func runWithDeadline(t *testing.T, d time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		buf := make([]byte, 1<<22)
		n := runtime.Stack(buf, true)
		t.Fatalf("deadlock canary tripped after %v; goroutine stacks:\n%s", d, buf[:n])
	}
}

// stressDeadline leaves ample headroom for -race -count=2 on a loaded
// 1-core CI machine while still catching a genuine deadlock quickly.
const stressDeadline = 60 * time.Second

// TestStressMixedStructuralOps runs mkdir/rename/rmdir/readdir/symlink/
// write/stat from 12 goroutines against a small set of overlapping
// subtrees, so structural operations constantly collide on the same
// parents. The assertions are (a) no data race (the -race leg), (b) no
// deadlock (canary), and (c) errors stay within the expected set —
// concurrent structural races surface as ENOENT/EEXIST/ENOTEMPTY, never
// as corruption or panic.
func TestStressMixedStructuralOps(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	const tops = 4
	for i := 0; i < tops; i++ {
		if err := p.MkdirAll(fmt.Sprintf("/t%d/a/b", i), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	allowed := []error{ErrNotExist, ErrExist, ErrNotEmpty, ErrNotDir, ErrIsDir, ErrInvalid, ErrBusy, ErrAccess, ErrTooManyLinks}
	checkErr := func(err error) error {
		if err == nil || errIsAny(err, allowed...) {
			return nil
		}
		return err
	}

	const workers = 12
	const opsPerWorker = 400
	runWithDeadline(t, stressDeadline, func() {
		var wg sync.WaitGroup
		var bad atomic.Value
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < opsPerWorker; i++ {
					top := fmt.Sprintf("/t%d", rng.Intn(tops))
					sub := fmt.Sprintf("%s/a/d%d", top, rng.Intn(6))
					var err error
					switch rng.Intn(8) {
					case 0:
						err = p.Mkdir(sub, 0o755)
					case 1:
						err = p.Remove(sub)
					case 2:
						err = p.Rename(sub, fmt.Sprintf("%s/a/r%d", top, rng.Intn(6)))
					case 3:
						_, err = p.ReadDir(top + "/a")
					case 4:
						err = p.Symlink(top+"/a/b", fmt.Sprintf("%s/a/l%d", top, rng.Intn(6)))
					case 5:
						err = p.WriteString(fmt.Sprintf("%s/a/b/f%d", top, rng.Intn(6)), "x")
					case 6:
						_, err = p.Stat(top + "/a/b")
					case 7:
						err = p.RemoveAll(fmt.Sprintf("%s/a/r%d", top, rng.Intn(6)))
					}
					if e := checkErr(err); e != nil {
						bad.Store(e)
						return
					}
				}
			}(int64(w) + 1)
		}
		wg.Wait()
		if e := bad.Load(); e != nil {
			t.Errorf("unexpected error class under stress: %v", e)
		}
	})

	// The tree must still be coherent: every top-level skeleton readable.
	for i := 0; i < tops; i++ {
		if _, err := p.ReadDir(fmt.Sprintf("/t%d/a", i)); err != nil {
			t.Fatalf("tree corrupt after stress: %v", err)
		}
	}
}

// TestStressRenameVsLookup interleaves a renamer bouncing a directory
// between two names with readers resolving paths through it. A lookup
// must see exactly one of the two names — never both, never neither (the
// rename is atomic under the tree write lock) — and file content reached
// through the moving directory must stay intact.
func TestStressRenameVsLookup(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	if err := p.MkdirAll("/mv/one/leaf", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteString("/mv/one/leaf/payload", "intact"); err != nil {
		t.Fatal(err)
	}

	runWithDeadline(t, stressDeadline, func() {
		stop := make(chan struct{})
		renamerDone := make(chan struct{})
		go func() { // renamer: bounce the directory until the lookers finish
			defer close(renamerDone)
			names := [2]string{"/mv/one", "/mv/two"}
			cur := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				next := 1 - cur
				if err := p.Rename(names[cur], names[next]); err != nil {
					t.Errorf("rename: %v", err)
					return
				}
				cur = next
			}
		}()
		var found atomic.Uint64
		var wg sync.WaitGroup
		for r := 0; r < 8; r++ {
			wg.Add(1)
			go func() { // lookers
				defer wg.Done()
				for i := 0; i < 2000; i++ {
					// The payload lives under exactly one of the two names
					// at any instant. Two separate Stats can both miss when
					// a rename lands between them, so the exactly-one
					// invariant is asserted inside a single read
					// transaction — an atomic snapshot no rename can
					// interleave.
					var one, two bool
					_ = fs.ReadTx(func(tx *Tx) error {
						one = tx.Exists("/mv/one/leaf/payload")
						two = tx.Exists("/mv/two/leaf/payload")
						return nil
					})
					if one == two {
						t.Errorf("payload visibility one=%v two=%v; want exactly one name live", one, two)
						return
					}
					found.Add(1)
					// Plain lookups through the moving directory must fail
					// only with ENOENT, never see a half-renamed state.
					if _, err := p.Stat("/mv/one/leaf/payload"); err != nil && !errors.Is(err, ErrNotExist) {
						t.Errorf("lookup during rename: %v", err)
						return
					}
					if b, err := p.ReadFile("/mv/one/leaf/payload"); err == nil && string(b) != "intact" {
						t.Errorf("payload corrupted: %q", b)
						return
					}
				}
			}()
		}
		wg.Wait()
		close(stop)
		<-renamerDone
		if found.Load() == 0 {
			t.Error("no successful lookups recorded")
		}
	})
}

// TestStressHooksUnderLoad drives semantic mkdirs (whose OnMkdir hook
// populates children through the Tx, under the tree write lock) while
// readers walk the same subtree and a recursive watch consumes events.
// This is the lock-ordering rule-3 regression test: a hook that touched
// anything but its Tx would self-deadlock here.
func TestStressHooksUnderLoad(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	if err := p.Mkdir("/objs", 0o755); err != nil {
		t.Fatal(err)
	}
	sem := &DirSemantics{
		OnMkdir: func(tx *Tx, dir, name string) error {
			base := Join(dir, name)
			if err := tx.Mkdir(Join(base, "ports"), 0o755, 0, 0); err != nil {
				return err
			}
			return tx.WriteFile(Join(base, "state"), []byte("init"), 0o644, 0, 0)
		},
		RecursiveRmdir: true,
	}
	if err := fs.WithTx(func(tx *Tx) error { return tx.SetSemantics("/objs", sem) }); err != nil {
		t.Fatal(err)
	}
	w, err := p.AddWatch("/objs", OpAll, Recursive())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	go func() {
		for range w.C { // slow-ish consumer; must never stall writers
			time.Sleep(10 * time.Microsecond)
		}
	}()

	runWithDeadline(t, stressDeadline, func() {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					obj := fmt.Sprintf("/objs/o%d_%d", g, i)
					if err := p.Mkdir(obj, 0o755); err != nil {
						t.Errorf("mkdir %s: %v", obj, err)
						return
					}
					if s, err := p.ReadString(obj + "/state"); err != nil || s != "init" {
						t.Errorf("hook children missing for %s: %q %v", obj, s, err)
						return
					}
					if i%3 == 0 {
						if err := p.Remove(obj); err != nil {
							t.Errorf("recursive rmdir %s: %v", obj, err)
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
	})
}

// TestStressSharedFileHandles hammers one inode through independent
// handles (stripe-level contention) while another goroutine stats it and
// a third truncates. Guards the File fast paths that hold the tree read
// lock plus a stripe.
func TestStressSharedFileHandles(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	if err := p.WriteString("/shared", "seed"); err != nil {
		t.Fatal(err)
	}
	runWithDeadline(t, stressDeadline, func() {
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 300; i++ {
					if err := p.AppendFile("/shared", []byte("x"), 0o644); err != nil {
						t.Errorf("append: %v", err)
						return
					}
				}
			}(g)
		}
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if _, err := p.Stat("/shared"); err != nil {
					t.Errorf("stat: %v", err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				f, err := p.OpenFile("/shared", O_WRONLY, 0)
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				if err := f.Truncate(1); err != nil {
					t.Errorf("truncate: %v", err)
				}
				f.Close()
			}
		}()
		wg.Wait()
	})
	if _, err := p.ReadFile("/shared"); err != nil {
		t.Fatalf("file unreadable after stress: %v", err)
	}
}

// TestStressOpenCreateRace opens the same not-yet-existing path with
// O_CREATE from many goroutines: exactly the fast-path/slow-path handoff
// in OpenFile. All opens must succeed (or lose the race benignly with
// O_EXCL), and exactly one create event may result per path generation.
func TestStressOpenCreateRace(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	runWithDeadline(t, stressDeadline, func() {
		for round := 0; round < 50; round++ {
			path := fmt.Sprintf("/race%d", round)
			var wg sync.WaitGroup
			var exclWins atomic.Uint64
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					flags := O_RDWR | O_CREATE
					if g%2 == 0 {
						flags |= O_EXCL
					}
					f, err := p.OpenFile(path, flags, 0o644)
					if err != nil {
						if flags&O_EXCL != 0 && errors.Is(err, ErrExist) {
							return // lost the exclusive race: expected
						}
						t.Errorf("open %s: %v", path, err)
						return
					}
					if flags&O_EXCL != 0 {
						exclWins.Add(1)
					}
					f.Close()
				}(g)
			}
			wg.Wait()
			if exclWins.Load() > 1 {
				t.Fatalf("%d O_EXCL winners for %s; want at most 1", exclWins.Load(), path)
			}
			if !p.Exists(path) {
				t.Fatalf("%s missing after create race", path)
			}
		}
	})
}

// TestStressRenameVsLockfreeLookup is the rename-vs-RCU torture: a mover
// shuttles directory x between /a and /b through a /t staging area,
// swapping x's marker file only while x is detached from both homes. The
// true states a lock-free walker may observe are therefore exactly
// {/a/x/in_a, /t/x/*, /b/x/in_b}; observing /a/x/in_b or /b/x/in_a would
// be a "frankenstein" path — a stale parent snapshot combined with child
// state the tree only reached after the parent entry was gone — which the
// generation-validation protocol (resolve_rcu.go) exists to forbid.
// Lock-free readers MAY see true mid-transaction states, so the
// assertions use only the wrong-parent combinations, which appear in no
// published state at all.
func TestStressRenameVsLockfreeLookup(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	for _, d := range []string{"/a", "/b", "/t"} {
		if err := p.Mkdir(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Mkdir("/a/x", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteString("/a/x/in_a", "marker"); err != nil {
		t.Fatal(err)
	}
	before := fs.LockStats()

	runWithDeadline(t, stressDeadline, func() {
		stop := make(chan struct{})
		moverDone := make(chan struct{})
		go func() { // mover: a->b then b->a, markers swapped while detached
			defer close(moverDone)
			move := func(from, to, oldMarker, newMarker string) error {
				return fs.WithTx(func(tx *Tx) error {
					if err := tx.Rename(from+"/x", "/t/x"); err != nil {
						return err
					}
					if err := tx.Remove("/t/x/" + oldMarker); err != nil {
						return err
					}
					if err := tx.WriteFile("/t/x/"+newMarker, []byte("marker"), 0o644, 0, 0); err != nil {
						return err
					}
					return tx.Rename("/t/x", to+"/x")
				})
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := move("/a", "/b", "in_a", "in_b"); err != nil {
					t.Errorf("move a->b: %v", err)
					return
				}
				if err := move("/b", "/a", "in_b", "in_a"); err != nil {
					t.Errorf("move b->a: %v", err)
					return
				}
			}
		}()
		var wg sync.WaitGroup
		var hits atomic.Uint64
		for r := 0; r < 8; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 4000; i++ {
					// Frankenstein paths: must fail, always, with ENOENT.
					for _, ghost := range []string{"/a/x/in_b", "/b/x/in_a"} {
						if _, err := p.Stat(ghost); err == nil {
							t.Errorf("observed %s: path existed in no linearization", ghost)
							return
						} else if !errors.Is(err, ErrNotExist) {
							t.Errorf("Stat(%s): %v, want ErrNotExist", ghost, err)
							return
						}
					}
					// True states: succeed or miss benignly, never corrupt.
					for _, real := range []string{"/a/x/in_a", "/b/x/in_b"} {
						b, err := p.ReadFile(real)
						switch {
						case err == nil:
							if string(b) != "marker" {
								t.Errorf("ReadFile(%s) = %q, want %q", real, b, "marker")
								return
							}
							hits.Add(1)
						case errors.Is(err, ErrNotExist):
						default:
							t.Errorf("ReadFile(%s): %v", real, err)
							return
						}
					}
				}
			}()
		}
		wg.Wait()
		close(stop)
		<-moverDone
		if hits.Load() == 0 {
			t.Error("readers never caught x at rest; torture did not overlap")
		}
	})

	after := fs.LockStats()
	if after.ResolveLockfree == before.ResolveLockfree {
		t.Error("no lock-free resolutions recorded; torture exercised only the fallback path")
	}
}

// TestStressOpenCreateConvergence pins the OpenFile rlock-lookup ->
// wlock-create TOCTOU window (wider now that the lookup is lock-free):
// racing creators of one path must converge on a single inode with
// exactly one create watch event, and content written through any
// winning handle must be visible through the others' inode.
func TestStressOpenCreateConvergence(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	w, err := p.AddWatch("/", OpCreate)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	runWithDeadline(t, stressDeadline, func() {
		for round := 0; round < 50; round++ {
			path := fmt.Sprintf("/conv%d", round)
			const racers = 8
			var wg sync.WaitGroup
			files := make([]*File, racers)
			for g := 0; g < racers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					f, err := p.OpenFile(path, O_RDWR|O_CREATE, 0o644)
					if err != nil {
						t.Errorf("open %s: %v", path, err)
						return
					}
					files[g] = f
				}(g)
			}
			wg.Wait()
			inos := make(map[uint64]bool)
			for _, f := range files {
				if f == nil {
					t.Fatalf("racer for %s got no handle", path)
				}
				st, err := f.Stat()
				if err != nil {
					t.Fatal(err)
				}
				inos[st.Ino] = true
			}
			if len(inos) != 1 {
				t.Fatalf("%s: racers diverged onto %d inodes, want 1", path, len(inos))
			}
			if _, err := files[0].Write([]byte("winner")); err != nil {
				t.Fatal(err)
			}
			for _, f := range files {
				f.Close()
			}
			// Cross-handle visibility: everyone converged on the inode that
			// holds the write.
			if s, err := p.ReadString(path); err != nil || s != "winner" {
				t.Fatalf("ReadString(%s) = %q, %v; want %q", path, s, err, "winner")
			}
			fs.SyncWatches()
			creates := 0
			for len(w.C) > 0 {
				ev := <-w.C
				if ev.Op == OpCreate && ev.Path == path {
					creates++
				}
			}
			if creates != 1 {
				t.Fatalf("%s: %d create events, want exactly 1", path, creates)
			}
		}
	})
}

// TestStressWatchPostSwapVisibility checks the watch/RCU ordering
// contract: dispatch runs after the structural swap is published, so by
// the time an event is delivered, a lock-free lookup of the event path
// must already succeed. A violation (event before snapshot publish) would
// make watchers chase paths that do not resolve yet.
func TestStressWatchPostSwapVisibility(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	if err := p.Mkdir("/w", 0o755); err != nil {
		t.Fatal(err)
	}
	w, err := p.AddWatch("/w", OpCreate)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	runWithDeadline(t, stressDeadline, func() {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // unrelated churn keeps snapshots swapping
			defer wg.Done()
			for i := 0; i < 400; i++ {
				_ = p.Mkdir(fmt.Sprintf("/noise%d", i), 0o755)
				_ = p.Remove(fmt.Sprintf("/noise%d", i))
			}
		}()
		for i := 0; i < 400; i++ {
			path := fmt.Sprintf("/w/f%d", i)
			if err := p.WriteString(path, "x"); err != nil {
				t.Fatal(err)
			}
			ev := <-w.C
			if ev.Op != OpCreate {
				continue
			}
			// The event is the happens-after edge: the lock-free walk must
			// observe the post-swap snapshot immediately, no retry excuse.
			if _, err := p.Stat(ev.Path); err != nil {
				t.Fatalf("Stat(%s) after its create event: %v", ev.Path, err)
			}
		}
		wg.Wait()
	})
}

// TestStressChaosAttrsAndXattrs mixes metadata paths that now run under
// the tree read lock (chmod/chown/xattr) with structural churn on the
// same nodes. Named Chaos so the CI -run 'Stress|Chaos' leg picks it up
// alongside the Stress tests.
func TestStressChaosAttrsAndXattrs(t *testing.T) {
	fs := New()
	p := fs.RootProc()
	if err := p.MkdirAll("/meta/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteString("/meta/d/f", "x"); err != nil {
		t.Fatal(err)
	}
	allowed := []error{ErrNotExist, ErrExist, ErrNoAttr, ErrNotEmpty}
	runWithDeadline(t, stressDeadline, func() {
		var wg sync.WaitGroup
		for g := 0; g < 10; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < 300; i++ {
					var err error
					switch rng.Intn(6) {
					case 0:
						err = p.Chmod("/meta/d/f", FileMode(0o600+rng.Intn(0o100)))
					case 1:
						err = p.Chown("/meta/d/f", rng.Intn(4), rng.Intn(4))
					case 2:
						err = p.SetXattr("/meta/d/f", "user.k", []byte{byte(i)})
					case 3:
						_, err = p.GetXattr("/meta/d/f", "user.k")
					case 4:
						_, err = p.ListXattr("/meta/d/f")
					case 5:
						_, err = p.Stat("/meta/d/f")
					}
					if err != nil && !errIsAny(err, allowed...) {
						t.Errorf("metadata op: %v", err)
						return
					}
				}
			}(int64(g) + 99)
		}
		wg.Wait()
	})
	st, err := p.Stat("/meta/d/f")
	if err != nil {
		t.Fatal(err)
	}
	if st.Version == 0 {
		t.Fatal("metadata churn never bumped the version")
	}
}
