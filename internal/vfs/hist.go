package vfs

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of fixed log-scale latency buckets. Bucket i
// covers durations in [2^i, 2^(i+1)) nanoseconds (bucket 0 also absorbs
// 0ns), so 40 buckets span one nanosecond to about nine minutes — wide
// enough for any in-process operation without ever reallocating.
const HistBuckets = 40

// Histogram is a fixed-bucket log-scale latency histogram. All fields are
// atomics, so Observe is lock-free and safe to call from any goroutine —
// the near-zero-overhead property the VFS hot paths need, mirroring how
// statCounters already count operations.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	max     atomic.Uint64 // nanoseconds
	buckets [HistBuckets]atomic.Uint64
}

// histBucketOf maps a duration in nanoseconds to its bucket index.
func histBucketOf(ns uint64) int {
	b := bits.Len64(ns)
	if b > 0 {
		b--
	}
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// HistBucketBound returns the exclusive upper bound of bucket i.
func HistBucketBound(i int) time.Duration {
	if i >= 63 {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(uint64(1) << uint(i+1))
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			break
		}
	}
	h.buckets[histBucketOf(ns)].Add(1)
}

// Snapshot returns a consistent-enough copy for reporting (buckets are
// read individually; the histogram may be concurrently updated).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	s.Max = time.Duration(h.max.Load())
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram.
type HistSnapshot struct {
	Count   uint64
	Sum     time.Duration
	Max     time.Duration
	Buckets [HistBuckets]uint64
}

// Sub returns the delta between two snapshots (s - prev), the primitive a
// benchmark collector uses to attribute latency to one experiment window.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	out := HistSnapshot{
		Count: s.Count - prev.Count,
		Sum:   s.Sum - prev.Sum,
		Max:   s.Max, // max is not subtractable; keep the later high-water mark
	}
	for i := range s.Buckets {
		out.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
	}
	return out
}

// Avg returns the mean observed duration.
func (s HistSnapshot) Avg() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) from the buckets,
// reporting the upper bound of the bucket containing the target rank.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range s.Buckets {
		seen += c
		if seen >= rank {
			return HistBucketBound(i)
		}
	}
	return s.Max
}

// LatencyOp names one instrumented VFS entry point. The set mirrors the
// OpStats categories §8.1's cost model counts, minus internal lookups.
type LatencyOp uint8

// Instrumented operations.
const (
	LatOpen LatencyOp = iota
	LatRead
	LatWrite
	LatMkdir
	LatRemove
	LatRename
	LatStat
	LatReadDir
	NumLatencyOps // sentinel: number of instrumented ops
)

func (op LatencyOp) String() string {
	switch op {
	case LatOpen:
		return "open"
	case LatRead:
		return "read"
	case LatWrite:
		return "write"
	case LatMkdir:
		return "mkdir"
	case LatRemove:
		return "remove"
	case LatRename:
		return "rename"
	case LatStat:
		return "stat"
	case LatReadDir:
		return "readdir"
	default:
		return "unknown"
	}
}

// latencySet holds one histogram per instrumented op.
type latencySet struct {
	hist [NumLatencyOps]Histogram
}

// latStart begins a latency measurement at an op entry point. Latency is
// a measurement of real elapsed time — it deliberately bypasses the fake
// clock tests install with SetClock, which is why every entry point says
// `defer fs.observe(op, latStart())` instead of reading fs.clock.
func latStart() time.Time {
	return time.Now() //yancvet:wallclock latency measures real elapsed time
}

// observe records the latency of op measured from start (obtained from
// latStart). time.Since reads the monotonic clock.
func (fs *FS) observe(op LatencyOp, start time.Time) {
	fs.lat.hist[op].Observe(time.Since(start)) //yancvet:wallclock monotonic elapsed since latStart
}

// LatencySnapshot is a point-in-time copy of every op histogram.
type LatencySnapshot struct {
	Ops [NumLatencyOps]HistSnapshot
}

// Latency snapshots all per-op latency histograms.
func (fs *FS) Latency() LatencySnapshot {
	var s LatencySnapshot
	for i := range fs.lat.hist {
		s.Ops[i] = fs.lat.hist[i].Snapshot()
	}
	return s
}

// Sub returns the per-op delta (s - prev).
func (s LatencySnapshot) Sub(prev LatencySnapshot) LatencySnapshot {
	var out LatencySnapshot
	for i := range s.Ops {
		out.Ops[i] = s.Ops[i].Sub(prev.Ops[i])
	}
	return out
}

// Total aggregates every op histogram into one snapshot.
func (s LatencySnapshot) Total() HistSnapshot {
	var out HistSnapshot
	for i := range s.Ops {
		o := s.Ops[i]
		out.Count += o.Count
		out.Sum += o.Sum
		if o.Max > out.Max {
			out.Max = o.Max
		}
		for b := range o.Buckets {
			out.Buckets[b] += o.Buckets[b]
		}
	}
	return out
}

// Render writes the snapshot in the .proc/vfs/latency table format: one
// line per op with count, avg, p50, p99, and max columns.
func (s LatencySnapshot) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %10s %10s %10s %10s\n", "op", "count", "avg", "p50", "p99", "max")
	for i := range s.Ops {
		o := s.Ops[i]
		fmt.Fprintf(&b, "%-8s %10d %10v %10v %10v %10v\n",
			LatencyOp(i), o.Count, o.Avg(), o.Quantile(0.50), o.Quantile(0.99), o.Max)
	}
	return b.String()
}
