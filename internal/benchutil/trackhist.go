package benchutil

import (
	"math"
	"sync/atomic"
	"time"

	"yanc/internal/vfs"
)

// TrackingHistogram is a log-scale latency tracking histogram: the
// lock-free vfs.Histogram (40 power-of-two buckets, count/sum/max)
// extended with min tracking, snapshot merging, and a JSON report form.
// yancload records every create→installed latency through one of these
// per worker and merges them into the final report; the merge identity
// (merge of two histograms == histogram of the union of their samples)
// is pinned by the property tests in trackhist_test.go.
type TrackingHistogram struct {
	h   vfs.Histogram
	min atomic.Uint64 // nanoseconds; MaxUint64 until the first sample
}

// NewTrackingHistogram returns an empty histogram.
func NewTrackingHistogram() *TrackingHistogram {
	t := &TrackingHistogram{}
	t.min.Store(math.MaxUint64)
	return t
}

// Observe records one duration. Lock-free; safe from any goroutine.
func (t *TrackingHistogram) Observe(d time.Duration) {
	t.h.Observe(d)
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	for {
		old := t.min.Load()
		if ns >= old || t.min.CompareAndSwap(old, ns) {
			return
		}
	}
}

// Snapshot returns a point-in-time copy.
func (t *TrackingHistogram) Snapshot() TrackSnapshot {
	s := TrackSnapshot{HistSnapshot: t.h.Snapshot()}
	if min := t.min.Load(); min != math.MaxUint64 {
		s.Min = time.Duration(min)
	}
	return s
}

// TrackSnapshot is a TrackingHistogram snapshot: a vfs.HistSnapshot
// (count, sum, max, buckets — and its Avg/Quantile estimators) plus the
// minimum observed sample.
type TrackSnapshot struct {
	vfs.HistSnapshot
	Min time.Duration
}

// Merge returns the snapshot representing the union of both sample
// sets: counts, sums, and buckets add; min and max take the extremes.
// An empty snapshot is the identity.
func (s TrackSnapshot) Merge(o TrackSnapshot) TrackSnapshot {
	out := s
	out.Count += o.Count
	out.Sum += o.Sum
	if o.Max > out.Max {
		out.Max = o.Max
	}
	for i := range out.Buckets {
		out.Buckets[i] += o.Buckets[i]
	}
	switch {
	case s.Count == 0:
		out.Min = o.Min
	case o.Count == 0:
		out.Min = s.Min
	case o.Min < s.Min:
		out.Min = o.Min
	}
	return out
}

// HistReport is the JSON form of a snapshot: headline statistics in
// nanoseconds plus the non-empty buckets with their bounds, so a report
// stays compact no matter how wide the histogram's range is.
type HistReport struct {
	Count uint64 `json:"count"`
	MinNS int64  `json:"min_ns"`
	AvgNS int64  `json:"avg_ns"`
	P50NS int64  `json:"p50_ns"`
	P90NS int64  `json:"p90_ns"`
	P99NS int64  `json:"p99_ns"`
	MaxNS int64  `json:"max_ns"`
	// Buckets lists only non-empty buckets: [lo_ns, hi_ns) and count.
	Buckets []HistReportBucket `json:"buckets,omitempty"`
}

// HistReportBucket is one non-empty bucket of a HistReport.
type HistReportBucket struct {
	LoNS  int64  `json:"lo_ns"`
	HiNS  int64  `json:"hi_ns"`
	Count uint64 `json:"count"`
}

// Report converts the snapshot to its JSON form.
func (s TrackSnapshot) Report() HistReport {
	r := HistReport{
		Count: s.Count,
		MinNS: int64(s.Min),
		AvgNS: int64(s.Avg()),
		P50NS: int64(s.Quantile(0.50)),
		P90NS: int64(s.Quantile(0.90)),
		P99NS: int64(s.Quantile(0.99)),
		MaxNS: int64(s.Max),
	}
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		lo := int64(0)
		if i > 0 {
			lo = int64(vfs.HistBucketBound(i - 1))
		}
		r.Buckets = append(r.Buckets, HistReportBucket{
			LoNS: lo, HiNS: int64(vfs.HistBucketBound(i)), Count: c,
		})
	}
	return r
}
