// Package benchutil builds the standard measurement rigs shared by the
// yancbench experiment harness and the root benchmark suite, so both
// measure exactly the same code paths.
package benchutil

import (
	"fmt"
	"net"

	"yanc/internal/driver"
	"yanc/internal/openflow"
	"yanc/internal/switchsim"
	"yanc/internal/yancfs"
)

// Rig is a controller connected to a simulated network over in-memory
// pipes.
type Rig struct {
	Y      *yancfs.FS
	Driver *driver.Driver
	Net    *switchsim.Network
	Hosts  []*switchsim.Host

	pipes []net.Conn
}

// NewLinearRig builds a k-switch linear network attached to a fresh
// controller; every host is registered under hosts/.
func NewLinearRig(k int, version uint8) (*Rig, error) {
	y, err := yancfs.New()
	if err != nil {
		return nil, err
	}
	n, hosts := switchsim.BuildLinear(k, version)
	r := &Rig{Y: y, Driver: driver.New(y), Net: n, Hosts: hosts}
	for _, sw := range n.Switches() {
		a, b := net.Pipe()
		sw := sw
		go func() { _ = sw.ServeController(b) }()
		if _, err := r.Driver.Attach(a); err != nil {
			return nil, err
		}
		r.pipes = append(r.pipes, a, b)
	}
	p := y.Root()
	for _, h := range hosts {
		dpid, port := h.Attachment()
		if err := yancfs.AddHost(p, "/", h.Name, h.MAC.String(), h.IP.String(),
			fmt.Sprintf("sw%d", dpid), port); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// NewFSOnlyRig builds a controller file system with k switch directories
// and no dataplane — for measuring pure file-system costs.
func NewFSOnlyRig(k int) (*yancfs.FS, error) {
	y, err := yancfs.New()
	if err != nil {
		return nil, err
	}
	p := y.Root()
	for i := 1; i <= k; i++ {
		if _, err := yancfs.CreateSwitch(p, "/", fmt.Sprintf("sw%d", i)); err != nil {
			return nil, err
		}
	}
	// Sanity-check the build with one listing. This also folds the
	// /switches directory snapshot, so the measured workload starts
	// from a settled tree instead of paying the construction overlay.
	ents, err := p.ReadDir("/switches")
	if err != nil {
		return nil, err
	}
	if len(ents) != k {
		return nil, fmt.Errorf("benchutil: rig has %d switches, want %d", len(ents), k)
	}
	return y, nil
}

// Close tears the rig down.
func (r *Rig) Close() {
	r.Driver.Close()
	for _, c := range r.pipes {
		c.Close()
	}
}

// SampleFlowSpec returns the i-th deterministic realistic flow spec (an
// exact 5-tuple TCP match with one rewrite and one output).
func SampleFlowSpec(i int) yancfs.FlowSpec {
	var m openflow.Match
	must := func(f openflow.Field, v string) {
		if err := m.SetField(f, v); err != nil {
			panic(err)
		}
	}
	must(openflow.FieldDLType, "0x0800")
	must(openflow.FieldNWProto, "6")
	must(openflow.FieldNWSrc, fmt.Sprintf("10.%d.%d.%d", i>>16&0xff, i>>8&0xff, i&0xff))
	must(openflow.FieldNWDst, "192.168.0.1")
	must(openflow.FieldTPSrc, fmt.Sprintf("%d", 1024+i%60000))
	must(openflow.FieldTPDst, "80")
	return yancfs.FlowSpec{
		Match:       m,
		Priority:    uint16(100 + i%1000),
		IdleTimeout: 60,
		Actions: []openflow.Action{
			{Type: openflow.ActSetNWTos, TOS: 16},
			openflow.Output(uint32(1 + i%3)),
		},
	}
}
