package benchutil

import (
	"fmt"
	"strings"

	"yanc/internal/vfs"
)

// Collector snapshots a file system's .proc-style counters so an
// experiment can report the operation mix and latency profile of exactly
// the interval it measured. Take one with NewCollector before the work
// and call Report after it; the report is the delta.
type Collector struct {
	fs    *vfs.FS
	ops   vfs.OpStats
	lat   vfs.LatencySnapshot
	taken bool
}

// NewCollector records the starting snapshot.
func NewCollector(fs *vfs.FS) *Collector {
	return &Collector{fs: fs, ops: fs.Stats(), lat: fs.Latency(), taken: true}
}

// Report is what happened between NewCollector and Report.
type Report struct {
	Ops vfs.OpStats
	Lat vfs.LatencySnapshot
}

// Report returns the counter deltas since the collector was created.
func (c *Collector) Report() Report {
	if !c.taken {
		return Report{}
	}
	return Report{
		Ops: c.fs.Stats().Sub(c.ops),
		Lat: c.fs.Latency().Sub(c.lat),
	}
}

// String renders the report as two compact lines: the op totals and the
// aggregate latency profile, suitable for appending under an
// experiment's result rows.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  vfs ops: total %d (opens %d reads %d writes %d creates %d removes %d stats %d)\n",
		r.Ops.Total(), r.Ops.Opens, r.Ops.Reads, r.Ops.Writes, r.Ops.Creates, r.Ops.Removes, r.Ops.Stats)
	t := r.Lat.Total()
	fmt.Fprintf(&b, "  vfs latency: count %d avg %v p50 %v p99 %v max %v",
		t.Count, t.Avg(), t.Quantile(0.50), t.Quantile(0.99), t.Max)
	return b.String()
}
