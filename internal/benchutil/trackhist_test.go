package benchutil

import (
	"math/rand"
	"testing"
	"time"

	"yanc/internal/vfs"
)

// bucketBounds returns the [lo, hi) nanosecond range of bucket i, per
// the documented vfs.Histogram contract (bucket i covers [2^i, 2^(i+1))
// with bucket 0 also absorbing 0).
func bucketBounds(i int) (lo, hi uint64) {
	if i > 0 {
		lo = uint64(vfs.HistBucketBound(i - 1))
	}
	return lo, uint64(vfs.HistBucketBound(i))
}

// boundaryCases enumerates the latencies most likely to land in the
// wrong bucket: zero, one, and ±1 around every power of two, plus
// seeded random fill.
func boundaryCases() []time.Duration {
	ds := []time.Duration{0, 1, 2, 3}
	for k := 1; k < 62; k++ {
		v := int64(1) << uint(k)
		ds = append(ds, time.Duration(v-1), time.Duration(v), time.Duration(v+1))
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		ds = append(ds, time.Duration(rng.Int63n(int64(10*time.Minute))))
	}
	return ds
}

// TestTrackingHistogramBucketBoundaries: every observed latency lands
// in exactly one bucket, and that bucket's [lo, hi) range contains it
// (the last bucket absorbs overflow). Each case uses a fresh histogram
// so the incremented bucket is unambiguous.
func TestTrackingHistogramBucketBoundaries(t *testing.T) {
	for _, d := range boundaryCases() {
		th := NewTrackingHistogram()
		th.Observe(d)
		s := th.Snapshot()
		hit := -1
		var total uint64
		for i, c := range s.Buckets {
			total += c
			if c > 0 {
				if hit != -1 {
					t.Fatalf("latency %v landed in buckets %d and %d", d, hit, i)
				}
				hit = i
			}
		}
		if total != 1 || hit == -1 {
			t.Fatalf("latency %v: bucket total %d, hit %d", d, total, hit)
		}
		lo, hi := bucketBounds(hit)
		ns := uint64(d)
		last := hit == vfs.HistBuckets-1
		if ns < lo || (ns >= hi && !last) {
			t.Fatalf("latency %v in bucket %d [%d, %d)", d, hit, lo, hi)
		}
		if s.Min != d || s.Max != d || s.Count != 1 || s.Sum != d {
			t.Fatalf("latency %v: snapshot %+v", d, s)
		}
	}
}

// TestTrackingHistogramMergeEqualsUnion: merge(hist(A), hist(B)) must
// equal hist(A ∪ B) in every field, for seeded random splits including
// the empty-side edge cases.
func TestTrackingHistogramMergeEqualsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(400)
		samples := make([]time.Duration, n)
		for i := range samples {
			samples[i] = time.Duration(rng.Int63n(int64(time.Minute)))
		}
		cut := 0
		if n > 0 {
			cut = rng.Intn(n + 1)
		}
		a, b, u := NewTrackingHistogram(), NewTrackingHistogram(), NewTrackingHistogram()
		for i, d := range samples {
			if i < cut {
				a.Observe(d)
			} else {
				b.Observe(d)
			}
			u.Observe(d)
		}
		merged := a.Snapshot().Merge(b.Snapshot())
		union := u.Snapshot()
		if merged != union {
			t.Fatalf("trial %d (n=%d cut=%d): merged %+v != union %+v", trial, n, cut, merged, union)
		}
		// Merge must be symmetric too.
		if rev := b.Snapshot().Merge(a.Snapshot()); rev != union {
			t.Fatalf("trial %d: reverse merge %+v != union %+v", trial, rev, union)
		}
	}
}

// TestTrackingHistogramReport sanity-checks the JSON form: bucket
// counts cover every sample, bounds nest, and headline stats order.
func TestTrackingHistogramReport(t *testing.T) {
	th := NewTrackingHistogram()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		th.Observe(time.Duration(rng.Int63n(int64(time.Second))) + time.Microsecond)
	}
	r := th.Snapshot().Report()
	if r.Count != 1000 {
		t.Fatalf("count %d", r.Count)
	}
	var total uint64
	for _, b := range r.Buckets {
		if b.LoNS >= b.HiNS {
			t.Fatalf("bucket bounds [%d, %d)", b.LoNS, b.HiNS)
		}
		total += b.Count
	}
	if total != r.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, r.Count)
	}
	if !(r.MinNS <= r.P50NS && r.P50NS <= r.P90NS && r.P90NS <= r.P99NS) {
		t.Fatalf("quantiles out of order: %+v", r)
	}
	if r.MaxNS < r.AvgNS || r.MinNS > r.AvgNS {
		t.Fatalf("avg outside [min, max]: %+v", r)
	}
}
