package benchutil

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"yanc/internal/backoff"
	"yanc/internal/driver"
	"yanc/internal/libyanc"
	"yanc/internal/openflow"
	"yanc/internal/procfs"
	"yanc/internal/switchsim"
	"yanc/internal/yancfs"
)

// ChurnConfig parameterises one city-scale churn run: an in-process
// controller, cfg.Switches simulated switches dialing it over real TCP,
// and a single deterministic op stream creating, modifying, and deleting
// flow directories while every create→installed latency is tracked from
// the WriteFlow call to the moment the switch applies the FlowAdd.
type ChurnConfig struct {
	Switches int // simulated switches dialing the controller
	Flows    int // flow dirs created in the initial create phase
	ChurnOps int // ops in the churn phase, drawn from Ratio
	// Ratio weighs the churn-phase op mix create:modify:delete.
	// Zero value means the default 2:1:1.
	Ratio   [3]int
	Seed    int64 // op-stream RNG seed; same seed, same op stream
	Version uint8 // OpenFlow version, default 1.3
	Rate    int   // approximate churn ops/sec cap; 0 = unthrottled

	// Clock, when set, replaces the wall clock for every timestamp the
	// engine takes (latency samples, phase durations). The deterministic
	// yancload tests inject a counting clock here; production runs leave
	// it nil and measure real time.
	Clock func() time.Time

	// Fastpath routes the op stream through a libyanc flow ring —
	// batched transactional commits plus installed completions — instead
	// of per-field file I/O. The op stream, conservation accounting, and
	// result shape are identical; only the write path changes, which is
	// exactly what the E17 file-I/O vs libyanc comparison measures.
	Fastpath bool

	// Progress, when set, is called from the op goroutine every
	// ProgressEvery ops and at phase transitions. Keep it cheap.
	Progress      func(ChurnProgress)
	ProgressEvery int // default 2048

	// Expose, when set, is called once with the rig's controller file
	// system right after the /.proc/load/progress synthetic is
	// installed — yancload reads its live progress line through it, the
	// same file I/O any shell or remote mount would use.
	Expose func(*yancfs.FS)

	ConnectTimeout time.Duration // default 120s
	DrainTimeout   time.Duration // default 180s
	Stagger        time.Duration // dial stagger window, default 2ms/switch capped at 2s
	EchoInterval   time.Duration // driver echo cadence, default 30s
}

// ChurnProgress is one progress sample for live display.
type ChurnProgress struct {
	Phase    string // "connect", "create", "churn", "drain", "done"
	Done     int    // ops finished in the current phase
	Total    int    // ops planned for the current phase
	Creates  int
	Modifies int
	Deletes  int
	Installs uint64
	Pending  int
}

// ChurnResult is the outcome of one churn run.
type ChurnResult struct {
	Switches int `json:"switches"`
	Flows    int `json:"flows"`
	ChurnOps int `json:"churn_ops"`

	Creates  int `json:"creates"`
	Modifies int `json:"modifies"`
	Deletes  int `json:"deletes"`

	// Installs counts every FlowAdd the switches applied, including
	// resync duplicates; Resolved counts the latency samples recorded
	// (one per create/modify whose flow survived to installation);
	// Aborted counts creates/modifies whose flow was deleted by a later
	// churn op before the switch saw it. Resolved+Aborted always equals
	// Creates+Modifies; Lost is what was still outstanding when the
	// drain timed out — the zero-lost gate pins it at 0.
	Installs uint64 `json:"installs"`
	Resolved uint64 `json:"resolved"`
	Aborted  uint64 `json:"aborted"`
	Lost     int    `json:"lost"`

	Connect     time.Duration `json:"connect_ns"`
	CreatePhase time.Duration `json:"create_phase_ns"`
	ChurnPhase  time.Duration `json:"churn_phase_ns"`
	Drain       time.Duration `json:"drain_ns"`

	Hist TrackSnapshot `json:"-"`
}

// installTracker matches WriteFlow calls to the FlowAdds the switches
// later apply. Keys are exact-match strings (globally unique per flow
// index by construction, see SampleFlowSpec); each key holds a FIFO of
// start timestamps. A FlowAdd resolves every outstanding start for its
// key at once: the driver's version dedup may coalesce back-to-back
// modifies into a single push, and all of them became switch state the
// moment that one FlowAdd landed. A delete op aborts every outstanding
// start for its key: the flow can legitimately vanish before the switch
// ever saw those writes, and that is churn, not loss. Every start is
// thus consumed exactly once — resolved, aborted, or (a bug) left over
// as Lost.
type installTracker struct {
	mu       sync.Mutex
	pending  map[string][]int64
	npending int
	hist     *TrackingHistogram
	resolved atomic.Uint64
	aborted  atomic.Uint64
}

func newInstallTracker() *installTracker {
	return &installTracker{pending: make(map[string][]int64), hist: NewTrackingHistogram()}
}

func (t *installTracker) add(key string, startNS int64) {
	t.mu.Lock()
	t.pending[key] = append(t.pending[key], startNS)
	t.npending++
	t.mu.Unlock()
}

func (t *installTracker) resolve(key string, nowNS int64) {
	t.mu.Lock()
	starts := t.pending[key]
	if len(starts) > 0 {
		delete(t.pending, key)
		t.npending -= len(starts)
	}
	t.mu.Unlock()
	for _, s := range starts {
		t.hist.Observe(time.Duration(nowNS - s))
	}
	t.resolved.Add(uint64(len(starts)))
}

func (t *installTracker) abort(key string) {
	t.mu.Lock()
	n := len(t.pending[key])
	if n > 0 {
		delete(t.pending, key)
		t.npending -= n
	}
	t.mu.Unlock()
	t.aborted.Add(uint64(n))
}

func (t *installTracker) remaining() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.npending
}

// RunChurn builds the rig, runs the three phases (create, churn, drain),
// and returns the accounting. The op stream is a pure function of the
// config: one goroutine draws from a seeded RNG, so two runs with the
// same config perform the identical sequence of fs operations.
func RunChurn(cfg ChurnConfig) (*ChurnResult, error) {
	if cfg.Switches <= 0 || cfg.Flows <= 0 {
		return nil, fmt.Errorf("churn: need at least one switch and one flow (got %d, %d)", cfg.Switches, cfg.Flows)
	}
	if cfg.Ratio == [3]int{} {
		cfg.Ratio = [3]int{2, 1, 1}
	}
	if cfg.Ratio[0] <= 0 {
		return nil, fmt.Errorf("churn: create weight must be positive, got %v", cfg.Ratio)
	}
	if cfg.Version == 0 {
		cfg.Version = openflow.Version13
	}
	if cfg.ProgressEvery <= 0 {
		cfg.ProgressEvery = 2048
	}
	if cfg.ConnectTimeout <= 0 {
		cfg.ConnectTimeout = 120 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 180 * time.Second
	}
	if cfg.Stagger <= 0 {
		cfg.Stagger = time.Duration(cfg.Switches) * 2 * time.Millisecond
		if cfg.Stagger > 2*time.Second {
			cfg.Stagger = 2 * time.Second
		}
	}
	if cfg.EchoInterval <= 0 {
		cfg.EchoInterval = 30 * time.Second
	}
	now := cfg.Clock
	if now == nil {
		now = time.Now // value, not a call: the default for the injectable clock
	}

	res := &ChurnResult{Switches: cfg.Switches, Flows: cfg.Flows, ChurnOps: cfg.ChurnOps}
	tr := newInstallTracker()
	var installs atomic.Uint64
	var creates, modifies, deletes atomic.Int64
	var phase atomic.Value
	phase.Store("connect")

	// Controller side.
	y, err := yancfs.New()
	if err != nil {
		return nil, err
	}
	if err := procfs.InstallLoad(y.VFS(), func() ([]byte, error) {
		return []byte(fmt.Sprintf(
			"phase    %s\nswitches %d\nflows    %d\ncreates  %d\nmodifies %d\ndeletes  %d\ninstalls %d\nresolved %d\naborted  %d\npending  %d\n",
			phase.Load(), cfg.Switches, cfg.Flows,
			creates.Load(), modifies.Load(), deletes.Load(),
			installs.Load(), tr.resolved.Load(), tr.aborted.Load(), tr.remaining())), nil
	}); err != nil {
		return nil, err
	}
	if cfg.Expose != nil {
		cfg.Expose(y)
	}
	p := y.Root()
	d := driver.New(y)
	d.EchoInterval = cfg.EchoInterval

	// Fastpath: all flow writes go through one ring; a reaper discards
	// completions (the tracker already accounts installs via the switch
	// hook) but keeps the first per-entry error for the final verdict.
	var ring *libyanc.FlowRing
	var reapDone chan error
	writeFlow := func(path string, spec yancfs.FlowSpec) error {
		_, werr := yancfs.WriteFlow(p, path, spec)
		return werr
	}
	deleteFlow := func(path string) error { return yancfs.DeleteFlow(p, path) }
	if cfg.Fastpath {
		ring = libyanc.New(y).NewFlowRing(libyanc.RingConfig{SQDepth: 1024, Clock: now})
		defer func() {
			//yancvet:allow errdrop error-path teardown; the success path closed the ring and checked the error already
			_ = ring.Close()
		}()
		if err := procfs.InstallLibyanc(y.VFS(), ring); err != nil {
			return nil, err
		}
		d.FlowInstalledHook = ring.InstallHook()
		reapDone = make(chan error, 1)
		go func() {
			var first error
			for {
				e, ok := ring.Reap(true)
				if !ok {
					reapDone <- first
					return
				}
				if e.Err != nil && first == nil {
					first = e.Err
				}
			}
		}()
		writeFlow = func(path string, spec yancfs.FlowSpec) error {
			return ring.Submit(libyanc.SQE{Op: libyanc.OpPut, Path: path, Spec: spec})
		}
		deleteFlow = func(path string) error {
			return ring.Submit(libyanc.SQE{Op: libyanc.OpDelete, Path: path})
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); _ = d.Serve(ln) }()

	// Switch side: hooks installed before dialing so the very first
	// pushed flow is already timed.
	n := switchsim.NewNetwork()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	pol := backoff.Policy{Min: 20 * time.Millisecond, Max: 500 * time.Millisecond, Jitter: -1}
	for i := 1; i <= cfg.Switches; i++ {
		n.AddSwitch(uint64(i), fmt.Sprintf("sw%d", i), cfg.Version, 2)
		sw := n.Switch(uint64(i))
		sw.SetFlowModHook(func(fm *openflow.FlowMod) {
			if fm.Command != openflow.FlowAdd {
				return
			}
			installs.Add(1)
			tr.resolve(fm.Match.Key(), now().UnixNano())
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			sw.DialRetryStaggered(ln.Addr().String(), pol, cfg.Stagger, stop, nil)
		}()
	}
	defer func() {
		close(stop)
		d.Close()
		ln.Close()
		<-serveDone
		wg.Wait()
	}()

	report := func(ph string, done, total int) {
		if cfg.Progress == nil {
			return
		}
		cfg.Progress(ChurnProgress{
			Phase: ph, Done: done, Total: total,
			Creates: int(creates.Load()), Modifies: int(modifies.Load()), Deletes: int(deletes.Load()),
			Installs: installs.Load(), Pending: tr.remaining(),
		})
	}

	// Connect phase: wait for every switch to report "connected". The
	// deadline is real elapsed time — this is TCP against a real
	// listener — regardless of any injected clock.
	connectStart := now()
	deadline := time.Now().Add(cfg.ConnectTimeout) //yancvet:wallclock real TCP connect deadline
	for up := 0; up < cfg.Switches; {
		up = 0
		for i := 1; i <= cfg.Switches; i++ {
			if s, _ := p.ReadString(fmt.Sprintf("/switches/sw%d/status", i)); s == "connected" {
				up++
			}
		}
		if up == cfg.Switches {
			break
		}
		if time.Now().After(deadline) { //yancvet:wallclock real TCP connect deadline
			return nil, fmt.Errorf("churn: only %d/%d switches connected within %v", up, cfg.Switches, cfg.ConnectTimeout)
		}
		report("connect", up, cfg.Switches)
		time.Sleep(20 * time.Millisecond) //yancvet:wallclock poll pacing against real sockets
	}
	res.Connect = now().Sub(connectStart)

	flowPath := func(idx int) string {
		return fmt.Sprintf("/switches/sw%d/flows/f%07d", 1+idx%cfg.Switches, idx)
	}

	// Create phase.
	phase.Store("create")
	createStart := now()
	live := make([]int, 0, cfg.Flows)
	for i := 0; i < cfg.Flows; i++ {
		spec := SampleFlowSpec(i)
		tr.add(spec.Match.Key(), now().UnixNano())
		if err := writeFlow(flowPath(i), spec); err != nil {
			return nil, fmt.Errorf("churn: create f%07d: %w", i, err)
		}
		creates.Add(1)
		live = append(live, i)
		if (i+1)%cfg.ProgressEvery == 0 {
			report("create", i+1, cfg.Flows)
		}
	}
	res.CreatePhase = now().Sub(createStart)

	// Churn phase: one goroutine, one RNG, deterministic op stream.
	phase.Store("churn")
	churnStart := now()
	rng := rand.New(rand.NewSource(cfg.Seed))
	next := cfg.Flows
	totalW := cfg.Ratio[0] + cfg.Ratio[1] + cfg.Ratio[2]
	for op := 0; op < cfg.ChurnOps; op++ {
		r := rng.Intn(totalW)
		switch {
		case r < cfg.Ratio[0] || len(live) == 0:
			idx := next
			next++
			spec := SampleFlowSpec(idx)
			tr.add(spec.Match.Key(), now().UnixNano())
			if err := writeFlow(flowPath(idx), spec); err != nil {
				return nil, fmt.Errorf("churn: create f%07d: %w", idx, err)
			}
			creates.Add(1)
			live = append(live, idx)
		case r < cfg.Ratio[0]+cfg.Ratio[1]:
			idx := live[rng.Intn(len(live))]
			spec := SampleFlowSpec(idx)
			// A modify keeps match and priority — so the switch updates
			// the same entry in place — and rewrites the action list.
			spec.Actions[0].TOS = uint8(4 * (1 + op%32))
			tr.add(spec.Match.Key(), now().UnixNano())
			if err := writeFlow(flowPath(idx), spec); err != nil {
				return nil, fmt.Errorf("churn: modify f%07d: %w", idx, err)
			}
			modifies.Add(1)
		default:
			j := rng.Intn(len(live))
			idx := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			tr.abort(SampleFlowSpec(idx).Match.Key())
			if err := deleteFlow(flowPath(idx)); err != nil {
				return nil, fmt.Errorf("churn: delete f%07d: %w", idx, err)
			}
			deletes.Add(1)
		}
		if (op+1)%cfg.ProgressEvery == 0 {
			report("churn", op+1, cfg.ChurnOps)
		}
		if cfg.Rate > 0 && (op+1)%16 == 0 {
			time.Sleep(16 * time.Second / time.Duration(cfg.Rate)) //yancvet:wallclock op-rate pacing
		}
	}
	res.ChurnPhase = now().Sub(churnStart)

	// Fastpath: the op stream is only submitted at this point; wait for
	// every entry's commit completion before draining the install side.
	if ring != nil {
		if err := ring.Flush(); err != nil {
			return nil, fmt.Errorf("churn: ring flush: %w", err)
		}
	}

	// Drain phase: the op stream has stopped; wait for the driver to
	// work through its backlog until every outstanding start has been
	// resolved or aborted. Again a real-time deadline — the backlog is
	// real goroutines doing real socket I/O.
	phase.Store("drain")
	drainStart := now()
	drainDeadline := time.Now().Add(cfg.DrainTimeout) //yancvet:wallclock real drain deadline
	for tr.remaining() > 0 {
		if time.Now().After(drainDeadline) { //yancvet:wallclock real drain deadline
			break
		}
		report("drain", int(tr.resolved.Load()+tr.aborted.Load()), int(creates.Load()+modifies.Load()))
		time.Sleep(5 * time.Millisecond) //yancvet:wallclock poll pacing for the driver backlog
	}
	res.Drain = now().Sub(drainStart)
	phase.Store("done")

	if ring != nil {
		if err := ring.Close(); err != nil {
			return nil, fmt.Errorf("churn: ring: %w", err)
		}
		if err := <-reapDone; err != nil {
			return nil, fmt.Errorf("churn: ring completion: %w", err)
		}
	}

	res.Creates = int(creates.Load())
	res.Modifies = int(modifies.Load())
	res.Deletes = int(deletes.Load())
	res.Installs = installs.Load()
	res.Resolved = tr.resolved.Load()
	res.Aborted = tr.aborted.Load()
	res.Lost = tr.remaining()
	res.Hist = tr.hist.Snapshot()
	report("done", res.Creates+res.Modifies, res.Creates+res.Modifies)
	return res, nil
}
