package benchutil

import (
	"strings"
	"testing"
)

func TestCollectorReportsDelta(t *testing.T) {
	y, err := NewFSOnlyRig(1)
	if err != nil {
		t.Fatal(err)
	}
	p := y.Root()
	if err := p.MkdirAll("/scratch", 0o755); err != nil {
		t.Fatal(err)
	}
	// Pre-collector traffic must not appear in the report.
	for i := 0; i < 50; i++ {
		if err := p.WriteString("/scratch/warm", "x"); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCollector(y.VFS())
	if err := p.WriteString("/scratch/one", "v"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReadString("/scratch/one"); err != nil {
		t.Fatal(err)
	}
	r := c.Report()
	if r.Ops.Writes != 1 || r.Ops.Reads == 0 {
		t.Fatalf("delta ops = %+v", r.Ops)
	}
	if got := r.Lat.Total().Count; got == 0 {
		t.Fatalf("latency delta empty: %+v", got)
	}
	s := r.String()
	for _, want := range []string{"vfs ops:", "vfs latency:", "p99"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestZeroCollector(t *testing.T) {
	var c Collector
	r := c.Report()
	if r.Ops.Total() != 0 {
		t.Fatalf("zero collector reported ops: %+v", r.Ops)
	}
}
