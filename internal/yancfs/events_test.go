package yancfs

import (
	"fmt"
	"runtime"
	"testing"

	"yanc/internal/openflow"
)

func testPacketIn(n int) *openflow.PacketIn {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i)
	}
	return &openflow.PacketIn{
		BufferID: 7, InPort: 2, Reason: openflow.ReasonNoMatch,
		TotalLen: uint16(n), Data: data,
	}
}

// TestEventBufferLifecycle walks a buffer through the full arc: subscribe,
// receive, consume (rmdir of the message directory), unsubscribe, and
// re-subscribe under the same name — each stage must leave the next one
// working.
func TestEventBufferLifecycle(t *testing.T) {
	y := newFS(t)
	p := y.Root()

	buf, w, err := Subscribe(p, "/", "app")
	if err != nil {
		t.Fatal(err)
	}
	if err := y.DeliverPacketIn("/", "sw1", testPacketIn(32)); err != nil {
		t.Fatal(err)
	}
	msgs, err := PendingEvents(p, buf)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("pending = %v %v", msgs, err)
	}
	// Consume = rmdir the message directory.
	if _, err := ConsumePacketIn(p, msgs[0]); err != nil {
		t.Fatal(err)
	}
	if left, _ := PendingEvents(p, buf); len(left) != 0 {
		t.Fatalf("consume left %v", left)
	}

	// Unsubscribe: tear down the buffer (messages still queued and all).
	if err := y.DeliverPacketIn("/", "sw1", testPacketIn(32)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := p.Remove(buf); err != nil {
		t.Fatalf("unsubscribe: %v", err)
	}

	// A delivery with no subscribers must not fail.
	if err := y.DeliverPacketIn("/", "sw1", testPacketIn(32)); err != nil {
		t.Fatal(err)
	}

	// Re-subscribe under the same name: a fresh, empty buffer that
	// receives again.
	buf2, w2, err := Subscribe(p, "/", "app")
	if err != nil {
		t.Fatalf("re-subscribe: %v", err)
	}
	defer w2.Close()
	if buf2 != buf {
		t.Fatalf("re-subscribe path = %q, want %q", buf2, buf)
	}
	if left, _ := PendingEvents(p, buf2); len(left) != 0 {
		t.Fatalf("stale messages in fresh buffer: %v", left)
	}
	if err := y.DeliverPacketIn("/", "sw1", testPacketIn(32)); err != nil {
		t.Fatal(err)
	}
	if msgs, _ := PendingEvents(p, buf2); len(msgs) != 1 {
		t.Fatalf("fresh buffer pending = %v", msgs)
	}
}

// TestEventBlocksReclaimed proves shared payload blocks are not stranded:
// once every subscriber has consumed (or been torn down), the refcount
// hits zero and the live-block accounting drains.
func TestEventBlocksReclaimed(t *testing.T) {
	y := newFS(t)
	p := y.Root()

	var bufs []string
	for i := 0; i < 3; i++ {
		buf, w, err := Subscribe(p, "/", fmt.Sprintf("app%d", i))
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		bufs = append(bufs, buf)
	}
	for i := 0; i < 5; i++ {
		if err := y.DeliverPacketIn("/", "sw1", testPacketIn(128)); err != nil {
			t.Fatal(err)
		}
	}
	s := y.EventStats()
	if s.BlocksLive != 5 || s.BytesLive == 0 {
		t.Fatalf("after delivery: blocks=%d bytes=%d", s.BlocksLive, s.BytesLive)
	}
	if s.Deliveries != 15 {
		t.Fatalf("deliveries = %d, want 15", s.Deliveries)
	}

	// App 0 and 1 consume message-by-message; app 2 is torn down whole.
	for _, buf := range bufs[:2] {
		msgs, _ := PendingEvents(p, buf)
		for _, m := range msgs {
			if _, err := ConsumePacketIn(p, m); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s = y.EventStats(); s.BlocksLive != 5 {
		t.Fatalf("blocks live after partial consume = %d, want 5", s.BlocksLive)
	}
	if err := p.Remove(bufs[2]); err != nil {
		t.Fatal(err)
	}
	if s = y.EventStats(); s.BlocksLive != 0 || s.BytesLive != 0 {
		t.Fatalf("stranded blocks: blocks=%d bytes=%d", s.BlocksLive, s.BytesLive)
	}
}

// TestEventOverflowDropOldest pins the backpressure policy: a buffer at
// its depth bound sheds its oldest quarter, gains an overflow marker, and
// newest messages survive.
func TestEventOverflowDropOldest(t *testing.T) {
	y := newFS(t)
	y.SetEventBufferDepth(16)
	p := y.Root()
	buf, w, err := Subscribe(p, "/", "slow")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 40; i++ {
		if err := y.DeliverPacketIn("/", "sw1", testPacketIn(16)); err != nil {
			t.Fatal(err)
		}
	}
	msgs, _ := PendingEvents(p, buf)
	if len(msgs) > 16 {
		t.Fatalf("depth bound not enforced: %d pending", len(msgs))
	}
	if !p.Exists(buf + "/" + OverflowMarker) {
		t.Fatal("no overflow marker")
	}
	s := y.EventStats()
	if s.Drops == 0 {
		t.Fatal("no drops counted")
	}
	apps := y.EventApps()
	if len(apps) != 1 || apps[0].Drops == 0 || apps[0].Depth != int64(len(msgs)) {
		t.Fatalf("per-app accounting = %+v (pending %d)", apps, len(msgs))
	}
}

// TestPacketInDeliveryAllocs pins the zero-copy property: bytes allocated
// per delivered message must not scale with the subscriber count, because
// the payload is written once into the spool and hard-linked everywhere
// else. A copying fan-out would allocate ~subscribers x payload bytes.
func TestPacketInDeliveryAllocs(t *testing.T) {
	const payload = 32 << 10
	const msgs = 64
	perMsgBytes := func(subs int) uint64 {
		y := newFS(t)
		p := y.Root()
		for i := 0; i < subs; i++ {
			_, w, err := Subscribe(p, "/", fmt.Sprintf("app%d", i))
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
		}
		pi := testPacketIn(payload)
		// Warm up caches (subscriber list, spool dir) outside the window.
		if err := y.DeliverPacketIn("/", "sw1", pi); err != nil {
			t.Fatal(err)
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		for i := 0; i < msgs; i++ {
			if err := y.DeliverPacketIn("/", "sw1", pi); err != nil {
				t.Fatal(err)
			}
		}
		runtime.ReadMemStats(&after)
		return (after.TotalAlloc - before.TotalAlloc) / msgs
	}
	one := perMsgBytes(1)
	sixteen := perMsgBytes(16)
	// One payload copy (the spool write) plus per-subscriber link state is
	// fine; sixteen payload copies is the regression this guards against
	// (16x32KiB = 512KiB per message). Link state under lock-free
	// resolution (DESIGN.md §8) is an overlay cell plus a snapshot cell
	// per link, with a map re-fold amortized across maxKidOverlay
	// inserts — ~0.5KiB per link here, well under one payload.
	limit := one + 16<<10
	if sixteen > limit {
		t.Fatalf("per-message bytes grew with subscribers: 1 sub = %d, 16 subs = %d (limit %d)",
			one, sixteen, limit)
	}

	// Allocation-count pin: linking a message into an extra buffer costs a
	// constant handful of small allocations — inode link, event, snapshot
	// and overlay cells (the amortized re-fold adds a fraction of a map
	// copy) — never a fresh set of payload files. Eight per extra
	// subscriber is headroom over the ~7 measured; a copying fan-out
	// needs ~20+ (six file inodes with data copies plus directory and
	// snapshot plumbing). This is the dynamic half of the contract:
	// yancvet's hotalloc analyzer (DESIGN.md §11) statically verifies the
	// //yancvet:hotalloc-annotated feeders, and this pin bounds the path
	// the static rule deliberately exempts. Keep both.
	perMsgAllocs := func(subs int) float64 {
		y := newFS(t)
		p := y.Root()
		for i := 0; i < subs; i++ {
			_, w, err := Subscribe(p, "/", fmt.Sprintf("app%d", i))
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
		}
		pi := testPacketIn(256)
		if err := y.DeliverPacketIn("/", "sw1", pi); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(100, func() {
			if err := y.DeliverPacketIn("/", "sw1", pi); err != nil {
				t.Fatal(err)
			}
		})
	}
	a1 := perMsgAllocs(1)
	a16 := perMsgAllocs(16)
	if a16 > a1+15*8 {
		t.Fatalf("allocs per message: 1 sub = %.0f, 16 subs = %.0f (want <= %.0f)",
			a1, a16, a1+15*8)
	}
}
