package yancfs

import (
	"fmt"
	"math/rand"
	"testing"

	"yanc/internal/ethernet"
	"yanc/internal/openflow"
	"yanc/internal/vfs"
)

// randomSpec builds a random but valid flow spec.
func randomSpec(r *rand.Rand) FlowSpec {
	var m openflow.Match
	set := func(f openflow.Field, v string) {
		if err := m.SetField(f, v); err != nil {
			panic(err)
		}
	}
	if r.Intn(2) == 0 {
		set(openflow.FieldInPort, fmt.Sprint(r.Intn(48)+1))
	}
	if r.Intn(2) == 0 {
		set(openflow.FieldDLSrc, fmt.Sprintf("02:00:00:00:%02x:%02x", r.Intn(256), r.Intn(256)))
	}
	if r.Intn(2) == 0 {
		set(openflow.FieldDLVLAN, fmt.Sprint(r.Intn(4095)))
		set(openflow.FieldDLVLANPCP, fmt.Sprint(r.Intn(8)))
	}
	if r.Intn(2) == 0 {
		set(openflow.FieldDLType, "0x0800")
		if r.Intn(2) == 0 {
			set(openflow.FieldNWTos, fmt.Sprint(r.Intn(64)<<2))
		}
		if r.Intn(2) == 0 {
			set(openflow.FieldNWProto, fmt.Sprint([]int{1, 6, 17}[r.Intn(3)]))
			if r.Intn(2) == 0 {
				set(openflow.FieldTPSrc, fmt.Sprint(r.Intn(65536)))
			}
			if r.Intn(2) == 0 {
				set(openflow.FieldTPDst, fmt.Sprint(r.Intn(65536)))
			}
		}
		if r.Intn(2) == 0 {
			bits := r.Intn(25) + 8
			addr := fmt.Sprintf("10.%d.%d.0", r.Intn(256), r.Intn(256))
			pm, err := openflow.ParseMatch("nw_src=" + addr + "/" + fmt.Sprint(bits))
			if err == nil {
				// Canonicalize: mask off host bits so round trips compare.
				pfx := pm.NWSrc
				pfx.Addr = ethernet.IP4FromUint32(pfx.Addr.Uint32() & pfx.Mask())
				m.NWSrc = pfx
				m.Set |= openflow.FieldNWSrc
			}
		}
	}
	spec := FlowSpec{
		Match:       m,
		Priority:    uint16(r.Intn(65536)),
		IdleTimeout: uint16(r.Intn(1000)),
		HardTimeout: uint16(r.Intn(1000)),
		Cookie:      uint64(r.Intn(1 << 30)),
	}
	// One of each action kind at most (file names are unique per kind).
	if r.Intn(2) == 0 {
		spec.Actions = append(spec.Actions, openflow.Action{Type: openflow.ActSetNWTos, TOS: uint8(r.Intn(64) << 2)})
	}
	if r.Intn(2) == 0 {
		spec.Actions = append(spec.Actions, openflow.Action{Type: openflow.ActStripVLAN})
	}
	spec.Actions = append(spec.Actions, openflow.Output(uint32(r.Intn(48)+1)))
	return spec
}

// specsEquivalent compares a written spec against its read-back form,
// tolerating the canonical action reordering.
func specsEquivalent(a, b FlowSpec) bool {
	if !a.Match.Equal(b.Match) || a.Priority != b.Priority ||
		a.IdleTimeout != b.IdleTimeout || a.HardTimeout != b.HardTimeout ||
		a.Cookie != b.Cookie || len(a.Actions) != len(b.Actions) {
		return false
	}
	have := map[string]bool{}
	for _, act := range b.Actions {
		have[act.String()] = true
	}
	for _, act := range a.Actions {
		if !have[act.String()] {
			return false
		}
	}
	return true
}

// TestQuickFlowRoundTrip checks WriteFlow → ReadFlow identity for random
// specs, and that the fastpath produces an equivalent read-back.
func TestQuickFlowRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	y := newFS(t)
	p := y.Root()
	if _, err := CreateSwitch(p, "/", "sw1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		spec := randomSpec(r)
		flowPath := fmt.Sprintf("/switches/sw1/flows/q%d", i%10) // reuse paths: rewrites
		if _, err := WriteFlow(p, flowPath, spec); err != nil {
			t.Fatalf("iter %d write: %v (spec %+v)", i, err, spec)
		}
		got, err := ReadFlow(p, flowPath)
		if err != nil {
			t.Fatalf("iter %d read: %v", i, err)
		}
		if !specsEquivalent(spec, got) {
			t.Fatalf("iter %d: round trip mismatch\nwrote %+v\nread  %+v", i, spec, got)
		}
		// Fastpath equivalence on the same spec.
		fastPath := fmt.Sprintf("/switches/sw1/flows/fast%d", i%10)
		if err := y.VFS().WithTx(func(tx *vfs.Tx) error {
			_, err := y.PutFlowTx(tx, fastPath, spec)
			return err
		}); err != nil {
			t.Fatalf("iter %d fastpath: %v", i, err)
		}
		fgot, err := ReadFlow(p, fastPath)
		if err != nil {
			t.Fatalf("iter %d fast read: %v", i, err)
		}
		if !specsEquivalent(spec, fgot) {
			t.Fatalf("iter %d: fastpath mismatch\nwrote %+v\nread  %+v", i, spec, fgot)
		}
	}
}

// TestQuickVersionMonotonic checks that rewrites always advance the
// version, regardless of path.
func TestQuickVersionMonotonic(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	y := newFS(t)
	p := y.Root()
	if _, err := CreateSwitch(p, "/", "sw1"); err != nil {
		t.Fatal(err)
	}
	last := map[string]uint64{}
	for i := 0; i < 200; i++ {
		flowPath := fmt.Sprintf("/switches/sw1/flows/v%d", r.Intn(5))
		v, err := WriteFlow(p, flowPath, randomSpec(r))
		if err != nil {
			t.Fatal(err)
		}
		if v <= last[flowPath] {
			t.Fatalf("iter %d: version did not advance: %d after %d", i, v, last[flowPath])
		}
		last[flowPath] = v
	}
}
