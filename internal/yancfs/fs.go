// Package yancfs implements the yanc file system: the paper's central
// abstraction of exposing network configuration and state as files (§3).
// It installs the semantic directory behaviours on a vfs.FS — mkdir of a
// view auto-creates its typed children, rmdir of a switch is recursive,
// a port's "peer" symlink must point at another port — and provides the
// flow commit protocol (stage fields, bump "version") that drivers key
// on, plus per-application packet-in event buffers (§3.5).
//
// The file system is conventionally mounted at /net; paths here are
// relative to that mount point.
package yancfs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"yanc/internal/vfs"
)

// Top-level directories (Figure 2).
const (
	DirSwitches = "/switches"
	DirHosts    = "/hosts"
	DirViews    = "/views"
	DirEvents   = "/events"
)

// Well-known file names inside flow directories (Figure 3).
const (
	FilePriority    = "priority"
	FileIdleTimeout = "idle_timeout"
	FileHardTimeout = "hard_timeout"
	FileCookie      = "cookie"
	FileVersion     = "version"
	MatchPrefix     = "match."
	ActionPrefix    = "action."
)

// CounterSource supplies live counters for a switch; the driver binds one
// so that reading a counters/ file pulls fresh hardware state, the way
// procfs files read kernel state.
type CounterSource interface {
	FlowCounters(flowName string) (packets, bytes uint64, ok bool)
	PortCounters(portNo uint32) (PortCounterSet, bool)
}

// PortCounterSet is the counter set exposed under a port's counters/.
type PortCounterSet struct {
	RxPackets uint64
	TxPackets uint64
	RxBytes   uint64
	TxBytes   uint64
	RxDropped uint64
	TxDropped uint64
}

// FS is a yanc file system instance.
type FS struct {
	vfs  *vfs.FS
	root *vfs.Proc

	mu       sync.RWMutex
	counters map[string]CounterSource // switch path -> source

	// ev holds the packet-in delivery state: cached subscriber lists,
	// payload-block refcounts, and the /.proc/events counters (events.go).
	ev eventState
}

// New builds an empty yanc file system with the full top-level hierarchy
// and semantics installed.
func New() (*FS, error) {
	y := &FS{
		vfs:      vfs.New(),
		counters: make(map[string]CounterSource),
	}
	y.root = y.vfs.RootProc()
	err := y.vfs.WithTx(func(tx *vfs.Tx) error {
		return y.installRegion(tx, "/")
	})
	if err != nil {
		return nil, err
	}
	return y, nil
}

// VFS returns the underlying virtual file system.
func (y *FS) VFS() *vfs.FS { return y.vfs }

// Root returns a superuser process context on the file system.
func (y *FS) Root() *vfs.Proc { return y.root }

// Proc returns a process context with the given credential.
func (y *FS) Proc(cred vfs.Cred) *vfs.Proc { return y.vfs.Proc(cred) }

// installRegion creates the four typed children of a region (the root or
// a view) and installs their semantics. Views nest arbitrarily (Figure 2
// shows views/management-net itself holding hosts/switches/views), so
// this is reused for every created view.
func (y *FS) installRegion(tx *vfs.Tx, base string) error {
	for _, d := range []string{DirSwitches, DirHosts, DirViews, DirEvents} {
		p := vfs.Join(base, d)
		if !tx.Exists(p) {
			if err := tx.Mkdir(p, 0o755, 0, 0); err != nil {
				return err
			}
		}
	}
	if base == "/" {
		// The four top-level object directories may not be removed.
		if err := tx.SetSemantics("/", &vfs.DirSemantics{
			Protected: map[string]bool{"switches": true, "hosts": true, "views": true, "events": true},
		}); err != nil {
			return err
		}
	}
	if err := tx.SetSemantics(vfs.Join(base, DirSwitches), &vfs.DirSemantics{
		RecursiveRmdir: true,
		OnMkdir:        y.onSwitchMkdir,
	}); err != nil {
		return err
	}
	if err := tx.SetSemantics(vfs.Join(base, DirViews), &vfs.DirSemantics{
		RecursiveRmdir: true,
		OnMkdir: func(tx *vfs.Tx, dir, name string) error {
			return y.installRegion(tx, vfs.Join(dir, name))
		},
	}); err != nil {
		return err
	}
	return tx.SetSemantics(vfs.Join(base, DirEvents), &vfs.DirSemantics{
		RecursiveRmdir: true,
		OnMkdir:        y.onEventBufferMkdir,
		OnRemove:       y.onEventBufferRemove,
	})
}

// onSwitchMkdir populates a new switch directory with its object skeleton
// (Figure 3): counters/, flows/, ports/ plus the info files.
func (y *FS) onSwitchMkdir(tx *vfs.Tx, dir, name string) error {
	base := vfs.Join(dir, name)
	for _, sub := range []string{"counters", "flows", "ports"} {
		if err := tx.Mkdir(vfs.Join(base, sub), 0o755, 0, 0); err != nil {
			return err
		}
	}
	for file, content := range map[string]string{
		"actions":      "output,set_vlan_vid,set_vlan_pcp,strip_vlan,set_dl_src,set_dl_dst,set_nw_src,set_nw_dst,set_nw_tos,set_tp_src,set_tp_dst\n",
		"capabilities": "flow_stats,port_stats\n",
		"id":           "0\n",
		"num_buffers":  "0\n",
		"num_tables":   "1\n",
		"protocol":     "\n",
	} {
		if err := tx.WriteFile(vfs.Join(base, file), []byte(content), 0o644, 0, 0); err != nil {
			return err
		}
	}
	// flows/: each child is a flow object; removal is recursive; a new
	// flow directory gets its version file staged at 0 (uncommitted).
	if err := tx.SetSemantics(vfs.Join(base, "flows"), &vfs.DirSemantics{
		RecursiveRmdir: true,
		OnMkdir:        y.onFlowMkdir,
	}); err != nil {
		return err
	}
	// ports/: each child is a port object with peer-symlink validation.
	if err := tx.SetSemantics(vfs.Join(base, "ports"), &vfs.DirSemantics{
		RecursiveRmdir: true,
		OnMkdir:        y.onPortMkdir,
	}); err != nil {
		return err
	}
	switchPath := base
	y.bindSwitchCounters(tx, switchPath)
	return nil
}

// onFlowMkdir stages a new flow: counters/ and version=0. Match and
// action files are created by the application; absence of a match file
// means wildcard (§3.4).
func (y *FS) onFlowMkdir(tx *vfs.Tx, dir, name string) error {
	base := vfs.Join(dir, name)
	// The skeleton belongs to whoever created the flow, so an application
	// that may mkdir in flows/ can also stage fields and commit.
	cred := tx.Creator()
	if err := tx.Mkdir(vfs.Join(base, "counters"), 0o755, cred.UID, cred.GID); err != nil {
		return err
	}
	if err := tx.WriteFile(vfs.Join(base, FileVersion), []byte("0\n"), 0o644, cred.UID, cred.GID); err != nil {
		return err
	}
	switchPath := vfs.Dir(vfs.Dir(base)) // .../<switch>/flows/<flow>
	flowName := name
	y.bindFlowCounters(tx, switchPath, base, flowName)
	return nil
}

// onPortMkdir populates a new port directory. The port number is the
// directory name.
func (y *FS) onPortMkdir(tx *vfs.Tx, dir, name string) error {
	base := vfs.Join(dir, name)
	if err := tx.Mkdir(vfs.Join(base, "counters"), 0o755, 0, 0); err != nil {
		return err
	}
	for file, content := range map[string]string{
		"config.port_down":   "0\n",
		"config.port_status": "up\n",
		"hw_addr":            "00:00:00:00:00:00\n",
		"name":               name + "\n",
		"speed":              "0\n",
	} {
		if err := tx.WriteFile(vfs.Join(base, file), []byte(content), 0o644, 0, 0); err != nil {
			return err
		}
	}
	// The peer symlink, when created, must point at another port
	// directory ("It is currently an error to point this symbolic link at
	// anything other than a port", §3.3).
	if err := tx.SetSemantics(base, &vfs.DirSemantics{
		ValidateSymlink: func(tx *vfs.Tx, d, linkName, target string) error {
			if linkName != "peer" {
				return nil
			}
			resolved := target
			if !strings.HasPrefix(target, "/") {
				resolved = vfs.Join(d, target)
			}
			if !tx.IsDir(resolved) || !isPortPath(resolved) {
				return fmt.Errorf("peer must point at a port: %w", vfs.ErrInvalid)
			}
			return nil
		},
	}); err != nil {
		return err
	}
	switchPath := vfs.Dir(vfs.Dir(base))
	portName := name
	y.bindPortCounters(tx, switchPath, base, portName)
	return nil
}

// isPortPath reports whether p looks like .../ports/<n>.
func isPortPath(p string) bool {
	return vfs.Base(vfs.Dir(p)) == "ports"
}

// BindCounters attaches a live counter source to a switch path (e.g.
// "/switches/sw1"). Reads of that switch's counters/ files then pull
// from the source.
func (y *FS) BindCounters(switchPath string, src CounterSource) {
	y.mu.Lock()
	defer y.mu.Unlock()
	y.counters[vfs.Clean(switchPath)] = src
}

func (y *FS) counterSource(switchPath string) CounterSource {
	y.mu.RLock()
	defer y.mu.RUnlock()
	return y.counters[switchPath]
}

func (y *FS) bindSwitchCounters(tx *vfs.Tx, switchPath string) {
	for _, name := range []string{"rx_packets", "tx_packets", "rx_bytes", "tx_bytes"} {
		file := name
		//yancvet:allow errdrop counters dir was created earlier in this same Tx, so the bind cannot miss
		_ = tx.SetSynthetic(vfs.Join(switchPath, "counters", file), &vfs.Synthetic{
			Read: func() ([]byte, error) {
				src := y.counterSource(switchPath)
				if src == nil {
					return []byte("0\n"), nil
				}
				var total uint64
				// Aggregate over ports the source knows about (1..64).
				for no := uint32(1); no <= 64; no++ {
					pc, ok := src.PortCounters(no)
					if !ok {
						continue
					}
					switch file {
					case "rx_packets":
						total += pc.RxPackets
					case "tx_packets":
						total += pc.TxPackets
					case "rx_bytes":
						total += pc.RxBytes
					case "tx_bytes":
						total += pc.TxBytes
					}
				}
				return []byte(strconv.FormatUint(total, 10) + "\n"), nil
			},
		}, 0o444, 0, 0)
	}
}

func (y *FS) bindFlowCounters(tx *vfs.Tx, switchPath, flowPath, flowName string) {
	packets, bytes := y.flowCounterSynths(switchPath, flowName)
	for _, bind := range []struct {
		name  string
		synth *vfs.Synthetic
	}{{"packets", packets}, {"bytes", bytes}} {
		//yancvet:allow errdrop counters dir was created earlier in this same Tx, so the bind cannot miss
		_ = tx.SetSynthetic(vfs.Join(flowPath, "counters", bind.name), bind.synth, 0o444, 0, 0)
	}
}

// flowCounterBind is the shared capture behind one flow's pair of live
// counter files: both synthetics point into a single allocation, which
// matters when a ring drain creates a thousand flows per transaction.
type flowCounterBind struct {
	y                    *FS
	switchPath, flowName string
	packets, bytes       vfs.Synthetic
}

func (b *flowCounterBind) read(wantBytes bool) ([]byte, error) {
	src := b.y.counterSource(b.switchPath)
	if src == nil {
		return []byte("0\n"), nil
	}
	packets, bytes, ok := src.FlowCounters(b.flowName)
	if !ok {
		return []byte("0\n"), nil
	}
	v := packets
	if wantBytes {
		v = bytes
	}
	return []byte(strconv.FormatUint(v, 10) + "\n"), nil
}

// flowCounterSynths builds both live counter files for one flow —
// packets and bytes, read through the switch's attached counter source,
// zero while disconnected. Shared by bindFlowCounters and the PutFlowTx
// fastpath (which plants the synthetics directly via WriteTree).
func (y *FS) flowCounterSynths(switchPath, flowName string) (packets, bytes *vfs.Synthetic) {
	b := &flowCounterBind{y: y, switchPath: switchPath, flowName: flowName}
	b.packets.Read = func() ([]byte, error) { return b.read(false) }
	b.bytes.Read = func() ([]byte, error) { return b.read(true) }
	return &b.packets, &b.bytes
}

func (y *FS) bindPortCounters(tx *vfs.Tx, switchPath, portPath, portName string) {
	no64, err := strconv.ParseUint(portName, 10, 32)
	if err != nil {
		return // named ports get no live counters
	}
	no := uint32(no64)
	for _, name := range []string{"rx_packets", "tx_packets", "rx_bytes", "tx_bytes", "rx_dropped", "tx_dropped"} {
		file := name
		//yancvet:allow errdrop counters dir was created earlier in this same Tx, so the bind cannot miss
		_ = tx.SetSynthetic(vfs.Join(portPath, "counters", file), &vfs.Synthetic{
			Read: func() ([]byte, error) {
				src := y.counterSource(switchPath)
				if src == nil {
					return []byte("0\n"), nil
				}
				pc, ok := src.PortCounters(no)
				if !ok {
					return []byte("0\n"), nil
				}
				var v uint64
				switch file {
				case "rx_packets":
					v = pc.RxPackets
				case "tx_packets":
					v = pc.TxPackets
				case "rx_bytes":
					v = pc.RxBytes
				case "tx_bytes":
					v = pc.TxBytes
				case "rx_dropped":
					v = pc.RxDropped
				case "tx_dropped":
					v = pc.TxDropped
				}
				return []byte(strconv.FormatUint(v, 10) + "\n"), nil
			},
		}, 0o444, 0, 0)
	}
}

// SwitchPath returns the path of a switch in the master region.
func SwitchPath(name string) string { return vfs.Join(DirSwitches, name) }

// FlowPath returns the path of a flow under a switch in the master region.
func FlowPath(switchName, flowName string) string {
	return vfs.Join(DirSwitches, switchName, "flows", flowName)
}

// PortPath returns the path of a port under a switch in the master region.
func PortPath(switchName string, port uint32) string {
	return vfs.Join(DirSwitches, switchName, "ports", strconv.FormatUint(uint64(port), 10))
}
